package pmsf_test

import (
	"testing"

	"pmsf"
)

func TestNewDynamicMaintainsMSF(t *testing.T) {
	g := pmsf.RandomGraph(500, 2000, 21)
	for _, algo := range []pmsf.Algorithm{pmsf.BorEL, pmsf.MSTBC, pmsf.SeqKruskal} {
		dyn, err := pmsf.NewDynamic(g, algo, pmsf.Options{Workers: 2, Seed: 3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		// A few mixed batches, verified against the full pipeline.
		batches := []struct {
			add, del []pmsf.Edge
		}{
			{add: []pmsf.Edge{{U: 0, V: 499, W: 1e-9}, {U: 7, V: 300, W: 0.5}}},
			{del: []pmsf.Edge{{U: 0, V: 499, W: 1e-9}}},
			{add: []pmsf.Edge{{U: 1, V: 2, W: -5}}, del: []pmsf.Edge{g.Edges[0]}},
		}
		for i, b := range batches {
			if _, err := dyn.ApplyEdges(b.add, b.del); err != nil {
				t.Fatalf("%v batch %d: %v", algo, i, err)
			}
			sg, sf := dyn.SnapshotWithForest()
			if err := pmsf.Verify(sg, sf); err != nil {
				t.Fatalf("%v batch %d: %v", algo, i, err)
			}
		}
	}
}

func TestNewDynamicRejectsBadInput(t *testing.T) {
	if _, err := pmsf.NewDynamic(nil, pmsf.BorEL, pmsf.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := pmsf.NewGraph(2, []pmsf.Edge{{U: 0, V: 9, W: 1}})
	if _, err := pmsf.NewDynamic(bad, pmsf.BorEL, pmsf.Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
	g := pmsf.RandomGraph(50, 100, 1)
	if _, err := pmsf.NewDynamic(g, pmsf.Algorithm(99), pmsf.Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestNewDynamicDoesNotMutateCaller(t *testing.T) {
	g := pmsf.RandomGraph(100, 300, 9)
	before := len(g.Edges)
	e0 := g.Edges[0]
	dyn, err := pmsf.NewDynamic(g, pmsf.BorEL, pmsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dyn.ApplyEdges([]pmsf.Edge{{U: 0, V: 1, W: 0.5}}, []pmsf.Edge{e0}); err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != before || g.Edges[0] != e0 {
		t.Fatal("NewDynamic mutated the caller's graph")
	}
}
