package pmsf_test

import (
	"bytes"
	"testing"

	"pmsf"
)

// TestFingerprintDeterministic: the same graph serialized and re-parsed
// must hash identically — the property the forest cache depends on when
// a client re-uploads the same file.
func TestFingerprintDeterministic(t *testing.T) {
	g := pmsf.RandomGraph(500, 2000, 7)
	want := pmsf.Fingerprint(g)

	if got := pmsf.Fingerprint(g); got != want {
		t.Fatalf("Fingerprint not stable across calls: %#x then %#x", want, got)
	}

	for _, format := range []pmsf.GraphFormat{pmsf.FormatBinary, pmsf.FormatText} {
		var buf bytes.Buffer
		if err := pmsf.WriteGraph(&buf, g, format); err != nil {
			t.Fatalf("WriteGraph(%v): %v", format, err)
		}
		g2, err := pmsf.ReadGraph(&buf, format)
		if err != nil {
			t.Fatalf("ReadGraph(%v): %v", format, err)
		}
		if got := pmsf.Fingerprint(g2); got != want {
			t.Errorf("%v round trip changed the fingerprint: %#x -> %#x", format, want, got)
		}
	}

	if got := pmsf.Fingerprint(g.Clone()); got != want {
		t.Errorf("Clone changed the fingerprint: %#x -> %#x", want, got)
	}
}

// TestFingerprintNearCollisions: minimal edits — one weight nudged, one
// endpoint flipped, one vertex added — must change the hash.
func TestFingerprintNearCollisions(t *testing.T) {
	base := pmsf.RandomGraph(200, 800, 11)
	want := pmsf.Fingerprint(base)

	mutate := func(name string, f func(g *pmsf.Graph)) {
		g := base.Clone()
		f(g)
		if got := pmsf.Fingerprint(g); got == want {
			t.Errorf("%s: fingerprint unchanged (%#x)", name, got)
		}
	}
	mutate("one weight flipped", func(g *pmsf.Graph) { g.Edges[397].W += 0.5 })
	mutate("one endpoint flipped", func(g *pmsf.Graph) {
		e := &g.Edges[42]
		e.U, e.V = e.V, e.U
	})
	mutate("one endpoint moved", func(g *pmsf.Graph) { g.Edges[0].U = (g.Edges[0].U + 1) % 200 })
	mutate("vertex count changed", func(g *pmsf.Graph) { g.N++ })
	mutate("last edge dropped", func(g *pmsf.Graph) { g.Edges = g.Edges[:len(g.Edges)-1] })
	mutate("two edges swapped", func(g *pmsf.Graph) {
		g.Edges[1], g.Edges[2] = g.Edges[2], g.Edges[1]
	})
}

// TestFingerprintEmptyAndTiny pins the edge cases: empty graphs of
// different N differ, and a self-loop still contributes.
func TestFingerprintEmptyAndTiny(t *testing.T) {
	e0 := pmsf.Fingerprint(pmsf.NewGraph(0, nil))
	e1 := pmsf.Fingerprint(pmsf.NewGraph(1, nil))
	if e0 == e1 {
		t.Errorf("empty graphs with N=0 and N=1 collide: %#x", e0)
	}
	loop := pmsf.NewGraph(1, []pmsf.Edge{{U: 0, V: 0, W: 1}})
	if got := pmsf.Fingerprint(loop); got == e1 {
		t.Errorf("self-loop graph collides with empty graph: %#x", got)
	}
}

// TestHashOptions: instrumentation toggles must not change the hash
// (cached forests stay valid), semantic fields must.
func TestHashOptions(t *testing.T) {
	base := pmsf.Options{Workers: 4, Seed: 42}
	want := pmsf.HashOptions(pmsf.BorEL, base)

	same := base
	same.CollectStats = true
	same.Metrics = true
	same.Trace = pmsf.NewTrace()
	if got := pmsf.HashOptions(pmsf.BorEL, same); got != want {
		t.Errorf("instrumentation options changed the hash: %#x -> %#x", want, got)
	}

	diff := func(name string, algo pmsf.Algorithm, opt pmsf.Options) {
		if got := pmsf.HashOptions(algo, opt); got == want {
			t.Errorf("%s: hash unchanged (%#x)", name, got)
		}
	}
	diff("different algorithm", pmsf.MSTBC, base)
	w2 := base
	w2.Workers = 2
	diff("different workers", pmsf.BorEL, w2)
	s2 := base
	s2.Seed = 43
	diff("different seed", pmsf.BorEL, s2)
	e2 := base
	e2.SortEngine = pmsf.SortSampleSort
	diff("different sort engine", pmsf.BorEL, e2)
	b2 := base
	b2.BaseSize = 128
	diff("different base size", pmsf.BorEL, b2)
}
