package pmsf_test

// The conformance matrix: every algorithm × every input family ×
// several worker counts, each result checked by the full oracle
// (structure + independent reference weight + cycle property). This is
// the repository's release gate; run with -short to skip the slow cells.

import (
	"fmt"
	"testing"

	"pmsf"
	"pmsf/internal/gen"
)

type familySpec struct {
	name string
	make func() *pmsf.Graph
}

func families() []familySpec {
	return []familySpec{
		{"random-4x", func() *pmsf.Graph { return pmsf.RandomGraph(1200, 4800, 1) }},
		{"random-6x", func() *pmsf.Graph { return pmsf.RandomGraph(1200, 7200, 2) }},
		{"random-10x", func() *pmsf.Graph { return pmsf.RandomGraph(1200, 12000, 3) }},
		{"random-sparse", func() *pmsf.Graph { return pmsf.RandomGraph(1500, 1600, 4) }},
		{"disconnected", func() *pmsf.Graph { return pmsf.RandomGraph(1500, 800, 5) }},
		{"mesh", func() *pmsf.Graph { return pmsf.MeshGraph(35, 35, 6) }},
		{"2D60", func() *pmsf.Graph { return pmsf.Mesh2D60Graph(35, 35, 7) }},
		{"3D40", func() *pmsf.Graph { return pmsf.Mesh3D40Graph(11, 8) }},
		{"geometric-k6", func() *pmsf.Graph { return pmsf.GeometricGraph(900, 6, 9) }},
		{"str0", func() *pmsf.Graph { return pmsf.Str0Graph(1024, 10) }},
		{"str1", func() *pmsf.Graph { return pmsf.Str1Graph(1000, 11) }},
		{"str2", func() *pmsf.Graph { return pmsf.Str2Graph(1000, 12) }},
		{"str3", func() *pmsf.Graph { return pmsf.Str3Graph(1000, 13) }},
		// Elementary adversarial shapes.
		{"star", func() *pmsf.Graph { return gen.Star(1500, 14) }},
		{"path", func() *pmsf.Graph { return gen.Path(1500, 15) }},
		{"cycle", func() *pmsf.Graph { return gen.Cycle(1500, 16) }},
		{"caterpillar", func() *pmsf.Graph { return gen.Caterpillar(150, 9, 17) }},
		{"bipartite", func() *pmsf.Graph { return gen.CompleteBipartite(40, 35, 18) }},
		{"binary-tree", func() *pmsf.Graph { return gen.Binary(1365, 19) }},
		{"parallel-gen", func() *pmsf.Graph { return pmsf.RandomGraphParallel(1200, 6000, 20, 4) }},
	}
}

func TestConformanceMatrix(t *testing.T) {
	workerCounts := []int{1, 4}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, fam := range families() {
		g := fam.make()
		for _, algo := range pmsf.Algorithms() {
			for _, p := range workerCounts {
				if !algo.Parallel() && p != workerCounts[0] {
					continue // sequential algorithms ignore p
				}
				name := fmt.Sprintf("%s/%v/p=%d", fam.name, algo, p)
				t.Run(name, func(t *testing.T) {
					forest, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
						Workers: p, Seed: 99,
					})
					if err != nil {
						t.Fatal(err)
					}
					if err := pmsf.Verify(g, forest); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
