// Command msf-verify checks a saved forest against its graph: structural
// spanning-forest validity, weight equality with an independently
// computed reference MSF, and the cycle property (every non-forest edge
// is T-heavy). Exit status 0 means the forest is a minimum spanning
// forest of the graph.
//
// Usage:
//
//	msf-verify [-format binary|text|dimacs|metis] [-algo ENGINE] [-p N] graph.pmsf forest.txt
//
// With -algo, the forest is additionally cross-checked against a fresh
// run of the named engine (any algorithm from the library's catalog):
// the recomputed forest must match in size, component count, and total
// weight.
//
// With -replay, the second argument is a mutation stream (graphgen
// -mutations emits one) instead of a forest:
//
//	msf-verify -replay [-format ...] graph.pmsf stream.txt
//
// The stream is applied batch by batch through the dynamic-MSF
// subsystem, and after EVERY batch the maintained forest is checked
// against a from-scratch sequential Kruskal of the mutated graph —
// matching size, component count, and total weight (relative weight
// tolerance 1e-9, since summation orders differ). Exit status 0 means
// the dynamic forest stayed a minimum spanning forest through the whole
// stream.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"pmsf"
)

// algoNames renders the canonical engine list for flag help —
// pmsf.Algorithms() is the single source of truth.
func algoNames() string {
	names := make([]string, 0, len(pmsf.Algorithms()))
	for _, a := range pmsf.Algorithms() {
		names = append(names, a.String())
	}
	return strings.Join(names, ", ")
}

func main() {
	formatName := flag.String("format", "binary", "graph format: binary, text, dimacs or metis")
	algoFlag := flag.String("algo", "", "also cross-check against a fresh run of this engine ("+algoNames()+")")
	workers := flag.Int("p", 1, "with -algo: worker count for the cross-check run")
	replay := flag.Bool("replay", false, "treat the second argument as a mutation stream and verify the dynamic MSF after every batch")
	flag.Parse()
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("want <graph file> <%s file>, got %d args", secondArg(*replay), flag.NArg()))
	}

	format, err := pmsf.ParseGraphFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	g, err := pmsf.ReadGraphFile(flag.Arg(0), format)
	if err != nil {
		fatal(err)
	}
	if *replay {
		if err := replayStream(g, flag.Arg(1)); err != nil {
			fatal(err)
		}
		return
	}
	ff, err := os.Open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	forest, err := pmsf.ReadForest(ff)
	ff.Close()
	if err != nil {
		fatal(err)
	}

	if err := pmsf.Verify(g, forest); err != nil {
		fatal(err)
	}
	fmt.Printf("OK: %d-edge forest over n=%d m=%d, weight %.6f, %d components — verified minimum\n",
		forest.Size(), g.N, len(g.Edges), forest.Weight, forest.Components)

	if *algoFlag != "" {
		if err := crossCheck(g, forest, *algoFlag, *workers); err != nil {
			fatal(err)
		}
	}
}

// crossCheck recomputes the MSF with the named engine and compares it
// to the saved forest. Weights are compared with a relative tolerance:
// engines sum edge weights in different orders, so the floating-point
// totals can differ in the last bits.
func crossCheck(g *pmsf.Graph, forest *pmsf.Forest, name string, workers int) error {
	algo, err := pmsf.ParseAlgorithm(name)
	if err != nil {
		return fmt.Errorf("%v (want one of %s)", err, algoNames())
	}
	ref, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: workers})
	if err != nil {
		return err
	}
	if ref.Size() != forest.Size() {
		return fmt.Errorf("%s cross-check: forest size %d, %s computed %d", algo, forest.Size(), algo, ref.Size())
	}
	if ref.Components != forest.Components {
		return fmt.Errorf("%s cross-check: %d components, %s computed %d", algo, forest.Components, algo, ref.Components)
	}
	tol := 1e-9 * math.Max(1, math.Abs(ref.Weight))
	if d := ref.Weight - forest.Weight; d > tol || d < -tol {
		return fmt.Errorf("%s cross-check: weight %.9f, %s computed %.9f", algo, forest.Weight, algo, ref.Weight)
	}
	fmt.Printf("OK: %s agrees (size %d, %d components, weight %.6f)\n",
		algo, ref.Size(), ref.Components, ref.Weight)
	return nil
}

func secondArg(replay bool) string {
	if replay {
		return "stream"
	}
	return "forest"
}

// replayStream applies the mutation stream through the dynamic-MSF
// subsystem and verifies the maintained forest against a from-scratch
// sequential Kruskal after every batch.
func replayStream(g *pmsf.Graph, path string) error {
	s, err := pmsf.ReadEdgeStreamFile(path)
	if err != nil {
		return err
	}
	if s.N != g.N {
		return fmt.Errorf("replay: stream is for n=%d, graph has n=%d", s.N, g.N)
	}
	dyn, err := pmsf.NewDynamic(g, pmsf.SeqKruskal, pmsf.Options{})
	if err != nil {
		return err
	}
	for i, b := range s.Batches {
		d, err := dyn.ApplyEdges(b.Add, b.Del)
		if err != nil {
			return fmt.Errorf("replay: batch %d/%d: %w", i+1, len(s.Batches), err)
		}
		snap, forest := dyn.SnapshotWithForest()
		if err := pmsf.Verify(snap, forest); err != nil {
			return fmt.Errorf("replay: batch %d/%d: maintained forest: %w", i+1, len(s.Batches), err)
		}
		ref, _, err := pmsf.MinimumSpanningForest(snap, pmsf.SeqKruskal, pmsf.Options{})
		if err != nil {
			return fmt.Errorf("replay: batch %d/%d: reference recompute: %w", i+1, len(s.Batches), err)
		}
		if ref.Size() != forest.Size() || ref.Components != forest.Components {
			return fmt.Errorf("replay: batch %d/%d: dynamic forest size %d/%d comps, scratch Kruskal %d/%d",
				i+1, len(s.Batches), forest.Size(), forest.Components, ref.Size(), ref.Components)
		}
		tol := 1e-9 * math.Max(1, math.Abs(ref.Weight))
		if diff := ref.Weight - forest.Weight; diff > tol || diff < -tol {
			return fmt.Errorf("replay: batch %d/%d: dynamic weight %.12f, scratch Kruskal %.12f",
				i+1, len(s.Batches), forest.Weight, ref.Weight)
		}
		fmt.Printf("batch %d/%d OK: +%d -%d, m=%d, weight %.6f, %d components (delta: %d links, %d swaps, %d replacements, %d fallbacks)\n",
			i+1, len(s.Batches), len(b.Add), len(b.Del), len(snap.Edges),
			forest.Weight, forest.Components, d.Links, d.Swaps, d.Replacements, d.FallbackRecomputes)
	}
	fmt.Printf("OK: replayed %d batches (%d mutations) — dynamic forest matched scratch Kruskal after every batch\n",
		len(s.Batches), s.Mutations())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-verify:", err)
	os.Exit(1)
}
