// Command msf-verify checks a saved forest against its graph: structural
// spanning-forest validity, weight equality with an independently
// computed reference MSF, and the cycle property (every non-forest edge
// is T-heavy). Exit status 0 means the forest is a minimum spanning
// forest of the graph.
//
// Usage:
//
//	msf-verify [-format binary|text|dimacs|metis] graph.pmsf forest.txt
package main

import (
	"flag"
	"fmt"
	"os"

	"pmsf"
)

func main() {
	formatName := flag.String("format", "binary", "graph format: binary, text, dimacs or metis")
	flag.Parse()
	if flag.NArg() != 2 {
		fatal(fmt.Errorf("want <graph file> <forest file>, got %d args", flag.NArg()))
	}

	format, err := pmsf.ParseGraphFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	g, err := pmsf.ReadGraphFile(flag.Arg(0), format)
	if err != nil {
		fatal(err)
	}
	ff, err := os.Open(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	forest, err := pmsf.ReadForest(ff)
	ff.Close()
	if err != nil {
		fatal(err)
	}

	if err := pmsf.Verify(g, forest); err != nil {
		fatal(err)
	}
	fmt.Printf("OK: %d-edge forest over n=%d m=%d, weight %.6f, %d components — verified minimum\n",
		forest.Size(), g.N, len(g.Edges), forest.Weight, forest.Components)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-verify:", err)
	os.Exit(1)
}
