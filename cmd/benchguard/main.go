// Command benchguard is the perf guard for the compact-graph kernel: it
// re-runs the engine study and compares it against the committed
// baseline (results/BENCH_PR2.json).
//
// The primary signal is dimensionless and therefore machine- and
// scale-independent: the speedup of the packed-key parallel radix
// compactor over the sample-sort baseline at each (workload, p). The
// guard has two tiers:
//
//   - a ratio degraded beyond -threshold (default 1.3x) prints a WARN
//     line — CI machines are noisy, so moderate drift is reported but
//     does not gate;
//   - a ratio degraded beyond -fail (default 2.0x) is a hard
//     regression no amount of scheduler noise explains, and benchguard
//     exits 1 so CI fails.
//
// When the fresh run uses the same scale as the baseline, absolute
// ns/op drifts are compared with the same two tiers. The fresh report
// can be written with -out for archival (the CI bench artifact).
//
// Baselines carrying MSF engine-matrix rows (results/BENCH_PR6.json)
// additionally get per-(family, p) speedup checks of the lock-free
// engines over Bor-EL; those rows are always warn-only — end-to-end
// engine times are noisier than the isolated kernel. -warnonly demotes
// every hard failure to a warning (exit 0), for advisory CI steps.
//
// Usage:
//
//	benchguard [-baseline results/BENCH_PR2.json] [-scale small]
//	           [-threshold 1.3] [-fail 2.0] [-out fresh.json] [-warnonly]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"

	"pmsf/internal/bench"
)

func main() {
	baselinePath := flag.String("baseline", "results/BENCH_PR2.json", "committed baseline report")
	scaleFlag := flag.String("scale", "small", "scale for the fresh run: small, medium or paper")
	threshold := flag.Float64("threshold", 1.3, "warn when a ratio degrades by more than this factor")
	failAt := flag.Float64("fail", 2.0, "exit 1 when a ratio degrades by more than this factor")
	outPath := flag.String("out", "", "write the fresh report as JSON to this path")
	warnOnly := flag.Bool("warnonly", false, "demote hard failures to warnings (always exit 0)")
	flag.Parse()

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{Scale: scale, Seed: base.Seed, Workers: workerSet(base)}
	fresh := bench.CompactBench(cfg)
	if len(base.Engines) > 0 {
		fresh.EngineBaseline = base.EngineBaseline
		fresh.Engines = bench.EngineMatrixBench(cfg)
	}
	if *outPath != "" {
		if err := writeReport(*outPath, fresh); err != nil {
			fatal(err)
		}
	}

	warns, fails := 0, 0
	w, f := compareSpeedups(base, fresh, *threshold, *failAt)
	warns, fails = warns+w, fails+f
	if fresh.Scale == base.Scale {
		w, f = compareAbsolute(base, fresh, *threshold, *failAt)
		warns, fails = warns+w, fails+f
	} else {
		fmt.Printf("note: fresh run at scale %s, baseline at %s; absolute ns/op not compared\n",
			fresh.Scale, base.Scale)
	}
	if len(base.Engines) > 0 {
		warns += compareEngines(base, fresh, *threshold)
	}
	if *warnOnly && fails > 0 {
		fmt.Printf("note: -warnonly, demoting %d hard failure(s) to warnings\n", fails)
		warns, fails = warns+fails, 0
	}
	switch {
	case fails > 0:
		fmt.Printf("benchguard: %d hard regression(s) beyond %.1fx (and %d warning(s))\n",
			fails, *failAt, warns)
		os.Exit(1)
	case warns > 0:
		fmt.Printf("benchguard: %d warning(s) — investigate before trusting the perf numbers\n", warns)
	default:
		fmt.Println("benchguard: no regressions beyond threshold")
	}
}

func loadBaseline(path string) (*bench.CompactBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var rep bench.CompactBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("baseline %s has no entries", path)
	}
	return &rep, nil
}

func writeReport(path string, rep *bench.CompactBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// workerSet extracts the distinct worker counts the baseline measured.
func workerSet(rep *bench.CompactBenchReport) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range rep.Entries {
		if !seen[e.Workers] {
			seen[e.Workers] = true
			out = append(out, e.Workers)
		}
	}
	sort.Ints(out)
	return out
}

// key identifies one measurement across reports.
type key struct {
	engine   string
	workers  int
	workload string
}

func index(rep *bench.CompactBenchReport) map[key]int64 {
	m := map[key]int64{}
	for _, e := range rep.Entries {
		m[key{e.Engine, e.Workers, e.Workload}] = e.NsPerOp
	}
	return m
}

// compareSpeedups checks the candidate-over-baseline-engine speedup at
// each (workload, p) in both reports: degradation beyond warnAt warns,
// beyond failAt fails.
func compareSpeedups(base, fresh *bench.CompactBenchReport, warnAt, failAt float64) (warns, fails int) {
	bi, fi := index(base), index(fresh)
	fmt.Printf("speedup of %s over %s (baseline vs fresh):\n", base.Candidate, base.Baseline)
	for _, e := range base.Entries {
		if e.Engine != base.Candidate {
			continue
		}
		k := key{base.Candidate, e.Workers, e.Workload}
		bref := bi[key{base.Baseline, e.Workers, e.Workload}]
		fref := fi[key{base.Baseline, e.Workers, e.Workload}]
		fcand := fi[k]
		if bref == 0 || fref == 0 || fcand == 0 || e.NsPerOp == 0 {
			continue // configuration not present in the fresh run
		}
		bs := float64(bref) / float64(e.NsPerOp)
		fs := float64(fref) / float64(fcand)
		line := fmt.Sprintf("  %-14s p=%-2d  %.2fx -> %.2fx", e.Workload, e.Workers, bs, fs)
		switch {
		case fs*failAt < bs:
			line += "   FAIL: speedup degraded beyond the hard limit"
			fails++
		case fs*warnAt < bs || fs < 1.0:
			line += "   WARN: speedup degraded"
			warns++
		}
		fmt.Println(line)
	}
	return warns, fails
}

// engineKey identifies one engine-matrix measurement across reports.
type engineKey struct {
	algo    string
	workers int
	family  string
}

func engineIndex(rows []bench.EngineBenchEntry) map[engineKey]int64 {
	m := map[engineKey]int64{}
	for _, e := range rows {
		m[engineKey{e.Algo, e.Workers, e.Family}] = e.NsPerOp
	}
	return m
}

// compareEngines checks the lock-free engines' speedup over the Bor-EL
// reference at each (family, p) in both reports. Always warn-only:
// end-to-end engine times carry more scheduler noise than the isolated
// compact-graph kernel, so these rows track trends without gating.
func compareEngines(base, fresh *bench.CompactBenchReport, warnAt float64) (warns int) {
	bi, fi := engineIndex(base.Engines), engineIndex(fresh.Engines)
	ref := base.EngineBaseline
	fmt.Printf("engine-matrix speedups over %s (baseline vs fresh, warn-only):\n", ref)
	for _, e := range base.Engines {
		if e.Algo == ref {
			continue
		}
		bref := bi[engineKey{ref, e.Workers, e.Family}]
		fref := fi[engineKey{ref, e.Workers, e.Family}]
		fcand := fi[engineKey{e.Algo, e.Workers, e.Family}]
		if bref == 0 || fref == 0 || fcand == 0 || e.NsPerOp == 0 {
			continue // configuration not present in the fresh run
		}
		bs := float64(bref) / float64(e.NsPerOp)
		fs := float64(fref) / float64(fcand)
		line := fmt.Sprintf("  %-16s %-8s p=%-2d  %.2fx -> %.2fx", e.Family, e.Algo, e.Workers, bs, fs)
		if fs*warnAt < bs {
			line += "   WARN: speedup degraded"
			warns++
		}
		fmt.Println(line)
	}
	return warns
}

// compareAbsolute reports per-entry ns/op drift when the scales match.
func compareAbsolute(base, fresh *bench.CompactBenchReport, warnAt, failAt float64) (warns, fails int) {
	fi := index(fresh)
	fmt.Println("absolute ns/op (baseline vs fresh, same scale):")
	for _, e := range base.Entries {
		f, ok := fi[key{e.Engine, e.Workers, e.Workload}]
		if !ok || f == 0 || e.NsPerOp == 0 {
			continue
		}
		ratio := float64(f) / float64(e.NsPerOp)
		line := fmt.Sprintf("  %-14s %-14s p=%-2d  %12d -> %12d  (%+.1f%%)",
			e.Workload, e.Engine, e.Workers, e.NsPerOp, f, (ratio-1)*100)
		switch {
		case ratio > failAt:
			line += "   FAIL: slower than baseline beyond the hard limit"
			fails++
		case ratio > warnAt:
			line += "   WARN: slower than baseline"
			warns++
		}
		fmt.Println(line)
	}
	return warns, fails
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
