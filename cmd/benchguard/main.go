// Command benchguard is the perf guard for the compact-graph kernel: it
// re-runs the engine study and compares it against the committed
// baseline (results/BENCH_PR7.json).
//
// The primary signal is dimensionless and therefore machine- and
// scale-independent: the speedup of the packed-key parallel radix
// compactor over the sample-sort baseline at each (workload, p). The
// guard has two tiers:
//
//   - a ratio degraded beyond -threshold (default 1.3x) prints a WARN
//     line — CI machines are noisy, so moderate drift is reported but
//     does not gate;
//   - a ratio degraded beyond -fail (default 2.0x) is a hard
//     regression no amount of scheduler noise explains, and benchguard
//     exits 1 so CI fails.
//
// When the fresh run uses the same scale as the baseline, absolute
// ns/op drifts are compared with the same two tiers. The fresh report
// can be written with -out for archival (the CI bench artifact).
//
// Two honesty rules guard the guard itself:
//
//   - a baseline whose recorded workers exceed its recorded GOMAXPROCS
//     is rejected outright: such a file (BENCH_PR2.json was one) was
//     measured on a scheduler that could never run the workers it
//     claims, so every "scaling" number in it is an artifact;
//   - on baselines and fresh runs recorded with at least 4 CPUs, the
//     packed-radix compactor at p=4 must be strictly faster than p=1
//     on every uniform compaction of >= 2.4M elements (hard fail). On
//     narrower machines the gate reports itself skipped, loudly.
//
// -scaling replaces the full study with the dedicated scaling slice
// (bench.CompactScalingBench at p = 1 and 4) and applies only the
// speedup gate to the fresh numbers — the CI compact-scaling smoke
// step.
//
// Baselines carrying MSF engine-matrix rows additionally get
// per-(family, p) speedup checks of the lock-free engines over Bor-EL;
// those rows are always warn-only — end-to-end engine times are
// noisier than the isolated kernel. -warnonly demotes every hard
// failure to a warning (exit 0), for advisory CI steps.
//
// Usage:
//
//	benchguard [-baseline results/BENCH_PR7.json] [-scale small]
//	           [-threshold 1.3] [-fail 2.0] [-out fresh.json]
//	           [-seed 42] [-warnonly] [-scaling]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"

	"pmsf/internal/bench"
)

// scalingMinElements is the workload size above which the p=4-beats-p=1
// gate applies: the 2.4M-element uniform compaction of the medium scale.
const scalingMinElements = 2_400_000

// scalingMinCPUs is the parallelism the scaling gate needs to be
// meaningful; below it the gate reports itself skipped.
const scalingMinCPUs = 4

func main() {
	baselinePath := flag.String("baseline", "results/BENCH_PR7.json", "committed baseline report")
	scaleFlag := flag.String("scale", "small", "scale for the fresh run: small, medium or paper")
	threshold := flag.Float64("threshold", 1.3, "warn when a ratio degrades by more than this factor")
	failAt := flag.Float64("fail", 2.0, "exit 1 when a ratio degrades by more than this factor")
	outPath := flag.String("out", "", "write the fresh report as JSON to this path")
	seed := flag.Uint64("seed", 0, "override the input seed (0: use the baseline's)")
	warnOnly := flag.Bool("warnonly", false, "demote hard failures to warnings (always exit 0)")
	scaling := flag.Bool("scaling", false, "run only the fresh compact-scaling gate (no baseline comparison)")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	if *scaling {
		os.Exit(runScalingGate(scale, *seed, *outPath, *warnOnly))
	}

	base, err := loadBaseline(*baselinePath)
	if err != nil {
		fatal(err)
	}
	if err := validateProcs(base); err != nil {
		fatal(fmt.Errorf("baseline %s: %w", *baselinePath, err))
	}
	cfgSeed := base.Seed
	if *seed != 0 {
		cfgSeed = *seed
	}
	cfg := bench.Config{Scale: scale, Seed: cfgSeed, Workers: capWorkers(workerSet(base))}
	fresh := bench.CompactBench(cfg)
	if len(base.Engines) > 0 {
		fresh.EngineBaseline = base.EngineBaseline
		fresh.Engines = bench.EngineMatrixBench(cfg)
	}
	if *outPath != "" {
		if err := writeReport(*outPath, fresh); err != nil {
			fatal(err)
		}
	}

	warns, fails := 0, 0
	w, f := compareSpeedups(base, fresh, *threshold, *failAt)
	warns, fails = warns+w, fails+f
	if fresh.Scale == base.Scale {
		w, f = compareAbsolute(base, fresh, *threshold, *failAt)
		warns, fails = warns+w, fails+f
	} else {
		fmt.Printf("note: fresh run at scale %s, baseline at %s; absolute ns/op not compared\n",
			fresh.Scale, base.Scale)
	}
	// The scaling gate runs against both the committed numbers and the
	// fresh run, when their workloads are big enough to qualify.
	fails += checkScaling(base, "baseline")
	fails += checkScaling(fresh, "fresh run")
	if len(base.Engines) > 0 {
		warns += compareEngines(base, fresh, *threshold)
	}
	if *warnOnly && fails > 0 {
		fmt.Printf("note: -warnonly, demoting %d hard failure(s) to warnings\n", fails)
		warns, fails = warns+fails, 0
	}
	switch {
	case fails > 0:
		fmt.Printf("benchguard: %d hard failure(s) (and %d warning(s))\n", fails, warns)
		os.Exit(1)
	case warns > 0:
		fmt.Printf("benchguard: %d warning(s) — investigate before trusting the perf numbers\n", warns)
	default:
		fmt.Println("benchguard: no regressions beyond threshold")
	}
}

// runScalingGate runs the fresh compact-scaling slice at p = 1 and 4
// and applies the p=4-beats-p=1 gate to it. Returns the process exit
// code.
func runScalingGate(scale bench.Scale, seed uint64, outPath string, warnOnly bool) int {
	if seed == 0 {
		seed = 42
	}
	cfg := bench.Config{Scale: scale, Seed: seed, Workers: []int{1, scalingMinCPUs}}
	if runtime.GOMAXPROCS(0) < scalingMinCPUs {
		fmt.Printf("benchguard: SCALING GATE SKIPPED: GOMAXPROCS=%d < %d — this machine cannot measure p=%d scaling; run on a wider machine to enforce the gate\n",
			runtime.GOMAXPROCS(0), scalingMinCPUs, scalingMinCPUs)
		return 0
	}
	fresh := bench.CompactScalingBench(cfg)
	if outPath != "" {
		if err := writeReport(outPath, fresh); err != nil {
			fatal(err)
		}
	}
	qualifying := 0
	for _, e := range fresh.Entries {
		if e.Elements >= scalingMinElements {
			qualifying++
		}
	}
	if qualifying == 0 {
		fatal(fmt.Errorf("scaling gate: scale %s yields %d elements, below the %d-element floor — use -scale medium or larger",
			fresh.Scale, fresh.Entries[0].Elements, scalingMinElements))
	}
	fails := checkScaling(fresh, "fresh scaling run")
	if warnOnly && fails > 0 {
		fmt.Printf("note: -warnonly, demoting %d hard failure(s) to warnings\n", fails)
		fails = 0
	}
	if fails > 0 {
		fmt.Printf("benchguard: %d scaling failure(s)\n", fails)
		return 1
	}
	fmt.Println("benchguard: scaling gate passed")
	return 0
}

// entryProcs returns the parallelism budget recorded for one entry,
// falling back to the report-level field for files written before the
// per-entry fields existed.
func entryProcs(rep *bench.CompactBenchReport, e bench.CompactBenchEntry) (gomaxprocs, numcpu int) {
	gomaxprocs, numcpu = e.GoMaxProcs, e.NumCPU
	if gomaxprocs == 0 {
		gomaxprocs = rep.GoMaxProcs
	}
	if numcpu == 0 {
		numcpu = rep.NumCPU
	}
	return gomaxprocs, numcpu
}

// validateProcs rejects reports whose measured worker counts exceed the
// GOMAXPROCS they were recorded under: those "parallel" entries ran
// time-sliced on too few scheduler slots and measure nothing but
// context-switch overhead.
func validateProcs(rep *bench.CompactBenchReport) error {
	for _, e := range rep.Entries {
		gmp, _ := entryProcs(rep, e)
		if gmp > 0 && e.Workers > gmp {
			return fmt.Errorf("entry %s/%s/p=%d was recorded with GOMAXPROCS=%d: workers exceed the scheduler slots, so its scaling numbers are artifacts; re-record on a machine with >= %d procs",
				e.Workload, e.Engine, e.Workers, gmp, e.Workers)
		}
	}
	return nil
}

// capWorkers drops worker counts above the live GOMAXPROCS from the
// fresh-run set, so this run never produces the kind of oversubscribed
// artifact validateProcs rejects.
func capWorkers(ws []int) []int {
	gmp := runtime.GOMAXPROCS(0)
	var out []int
	for _, p := range ws {
		if p <= gmp {
			out = append(out, p)
		}
	}
	if len(out) < len(ws) {
		fmt.Printf("note: GOMAXPROCS=%d, dropping baseline worker counts above it: measuring them would oversubscribe\n", gmp)
	}
	if len(out) == 0 {
		out = []int{1}
	}
	return out
}

// checkScaling applies the hard scaling gate to one report: on every
// qualifying workload (packed-radix candidate, uniform, >= 2.4M
// elements) measured with >= 4 CPUs, p=4 must be strictly faster than
// p=1. Reports measured on narrower machines are loudly skipped rather
// than silently passed.
func checkScaling(rep *bench.CompactBenchReport, label string) (fails int) {
	type pair struct{ p1, p4 bench.CompactBenchEntry }
	byWorkload := map[string]*pair{}
	for _, e := range rep.Entries {
		if e.Engine != "parallel-radix" || e.Workload != "uniform" || e.Elements < scalingMinElements {
			continue
		}
		pr := byWorkload[e.Workload]
		if pr == nil {
			pr = &pair{}
			byWorkload[e.Workload] = pr
		}
		switch e.Workers {
		case 1:
			pr.p1 = e
		case scalingMinCPUs:
			pr.p4 = e
		}
	}
	for workload, pr := range byWorkload {
		if pr.p1.NsPerOp == 0 || pr.p4.NsPerOp == 0 {
			continue
		}
		_, ncpu := entryProcs(rep, pr.p4)
		if ncpu > 0 && ncpu < scalingMinCPUs {
			fmt.Printf("note: SCALING GATE SKIPPED for %s (%s, %d elements): recorded on %d CPU(s); p=%d vs p=1 is meaningless there\n",
				label, workload, pr.p4.Elements, ncpu, scalingMinCPUs)
			continue
		}
		speedup := float64(pr.p1.NsPerOp) / float64(pr.p4.NsPerOp)
		line := fmt.Sprintf("scaling gate (%s): %s %d elements, p=1 %dns -> p=%d %dns (%.2fx)",
			label, workload, pr.p4.Elements, pr.p1.NsPerOp, scalingMinCPUs, pr.p4.NsPerOp, speedup)
		if pr.p4.NsPerOp >= pr.p1.NsPerOp {
			line += "   FAIL: parallel compaction must beat serial at this scale"
			fails++
		}
		fmt.Println(line)
	}
	return fails
}

func loadBaseline(path string) (*bench.CompactBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	var rep bench.CompactBenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("baseline %s: %w", path, err)
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("baseline %s has no entries", path)
	}
	return &rep, nil
}

func writeReport(path string, rep *bench.CompactBenchReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// workerSet extracts the distinct worker counts the baseline measured.
func workerSet(rep *bench.CompactBenchReport) []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range rep.Entries {
		if !seen[e.Workers] {
			seen[e.Workers] = true
			out = append(out, e.Workers)
		}
	}
	sort.Ints(out)
	return out
}

// key identifies one measurement across reports.
type key struct {
	engine   string
	workers  int
	workload string
}

func index(rep *bench.CompactBenchReport) map[key]int64 {
	m := map[key]int64{}
	for _, e := range rep.Entries {
		m[key{e.Engine, e.Workers, e.Workload}] = e.NsPerOp
	}
	return m
}

// compareSpeedups checks the candidate-over-baseline-engine speedup at
// each (workload, p) in both reports: degradation beyond warnAt warns,
// beyond failAt fails.
func compareSpeedups(base, fresh *bench.CompactBenchReport, warnAt, failAt float64) (warns, fails int) {
	bi, fi := index(base), index(fresh)
	fmt.Printf("speedup of %s over %s (baseline vs fresh):\n", base.Candidate, base.Baseline)
	for _, e := range base.Entries {
		if e.Engine != base.Candidate {
			continue
		}
		k := key{base.Candidate, e.Workers, e.Workload}
		bref := bi[key{base.Baseline, e.Workers, e.Workload}]
		fref := fi[key{base.Baseline, e.Workers, e.Workload}]
		fcand := fi[k]
		if bref == 0 || fref == 0 || fcand == 0 || e.NsPerOp == 0 {
			continue // configuration not present in the fresh run
		}
		bs := float64(bref) / float64(e.NsPerOp)
		fs := float64(fref) / float64(fcand)
		line := fmt.Sprintf("  %-14s p=%-2d  %.2fx -> %.2fx", e.Workload, e.Workers, bs, fs)
		switch {
		case fs*failAt < bs:
			line += "   FAIL: speedup degraded beyond the hard limit"
			fails++
		case fs*warnAt < bs || fs < 1.0:
			line += "   WARN: speedup degraded"
			warns++
		}
		fmt.Println(line)
	}
	return warns, fails
}

// engineKey identifies one engine-matrix measurement across reports.
type engineKey struct {
	algo    string
	workers int
	family  string
}

func engineIndex(rows []bench.EngineBenchEntry) map[engineKey]int64 {
	m := map[engineKey]int64{}
	for _, e := range rows {
		m[engineKey{e.Algo, e.Workers, e.Family}] = e.NsPerOp
	}
	return m
}

// compareEngines checks the lock-free engines' speedup over the Bor-EL
// reference at each (family, p) in both reports. Always warn-only:
// end-to-end engine times carry more scheduler noise than the isolated
// compact-graph kernel, so these rows track trends without gating.
func compareEngines(base, fresh *bench.CompactBenchReport, warnAt float64) (warns int) {
	bi, fi := engineIndex(base.Engines), engineIndex(fresh.Engines)
	ref := base.EngineBaseline
	fmt.Printf("engine-matrix speedups over %s (baseline vs fresh, warn-only):\n", ref)
	for _, e := range base.Engines {
		if e.Algo == ref {
			continue
		}
		bref := bi[engineKey{ref, e.Workers, e.Family}]
		fref := fi[engineKey{ref, e.Workers, e.Family}]
		fcand := fi[engineKey{e.Algo, e.Workers, e.Family}]
		if bref == 0 || fref == 0 || fcand == 0 || e.NsPerOp == 0 {
			continue // configuration not present in the fresh run
		}
		bs := float64(bref) / float64(e.NsPerOp)
		fs := float64(fref) / float64(fcand)
		line := fmt.Sprintf("  %-16s %-8s p=%-2d  %.2fx -> %.2fx", e.Family, e.Algo, e.Workers, bs, fs)
		if fs*warnAt < bs {
			line += "   WARN: speedup degraded"
			warns++
		}
		fmt.Println(line)
	}
	return warns
}

// compareAbsolute reports per-entry ns/op drift when the scales match.
func compareAbsolute(base, fresh *bench.CompactBenchReport, warnAt, failAt float64) (warns, fails int) {
	fi := index(fresh)
	fmt.Println("absolute ns/op (baseline vs fresh, same scale):")
	for _, e := range base.Entries {
		f, ok := fi[key{e.Engine, e.Workers, e.Workload}]
		if !ok || f == 0 || e.NsPerOp == 0 {
			continue
		}
		ratio := float64(f) / float64(e.NsPerOp)
		line := fmt.Sprintf("  %-14s %-14s p=%-2d  %12d -> %12d  (%+.1f%%)",
			e.Workload, e.Engine, e.Workers, e.NsPerOp, f, (ratio-1)*100)
		switch {
		case ratio > failAt:
			line += "   FAIL: slower than baseline beyond the hard limit"
			fails++
		case ratio > warnAt:
			line += "   WARN: slower than baseline"
			warns++
		}
		fmt.Println(line)
	}
	return warns, fails
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
