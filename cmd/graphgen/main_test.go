package main

import (
	"testing"

	"pmsf/internal/graph"
)

func TestBuildAllFamilies(t *testing.T) {
	families := []string{"random", "mesh2d", "2d60", "3d40", "geometric",
		"str0", "str1", "str2", "str3"}
	for _, fam := range families {
		g, err := build(fam, 500, 0, 4, 1)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if g.N == 0 {
			t.Fatalf("%s: empty graph", fam)
		}
	}
}

func TestBuildRandomDefaultsM(t *testing.T) {
	g, err := build("random", 100, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 600 {
		t.Fatalf("default m = %d, want 6n", len(g.Edges))
	}
	g, err = build("random", 100, 250, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 250 {
		t.Fatalf("explicit m = %d", len(g.Edges))
	}
}

func TestBuildUnknownFamily(t *testing.T) {
	if _, err := build("nope", 10, 0, 0, 1); err == nil {
		t.Fatal("unknown family accepted")
	}
}

func TestBuildMeshShapes(t *testing.T) {
	g, err := build("mesh2d", 100, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 100 { // 10x10
		t.Fatalf("mesh2d n = %d", g.N)
	}
	g, err = build("3d40", 1000, 0, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 1000 { // 10^3
		t.Fatalf("3d40 n = %d", g.N)
	}
}

func TestIsqrtIcbrt(t *testing.T) {
	if isqrt(100) != 10 || isqrt(101) != 11 || isqrt(1) != 1 {
		t.Fatal("isqrt wrong")
	}
	if icbrt(1000) != 10 || icbrt(1001) != 11 || icbrt(1) != 1 {
		t.Fatal("icbrt wrong")
	}
}

var _ = graph.EdgeList{} // keep the import for the helpers' signatures

func TestParseWeights(t *testing.T) {
	d, err := parseWeights("exponential")
	if err != nil {
		t.Fatal(err)
	}
	if d.String() != "exponential" {
		t.Fatalf("parsed %v", d)
	}
	if _, err := parseWeights("gamma"); err == nil {
		t.Fatal("unknown distribution accepted")
	}
}
