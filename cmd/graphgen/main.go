// Command graphgen generates the paper's input graph families and writes
// them to a file in the library's binary format (or text with -text).
//
// Usage:
//
//	graphgen -family random -n 1000000 -m 6000000 -o g1.pmsf
//	graphgen -family mesh2d -n 1000000 -o mesh.pmsf
//	graphgen -family geometric -n 1000000 -k 6 -o geo.pmsf
//	graphgen -family str0 -n 1000000 -o str0.pmsf
//
// Families: random, mesh2d, 2d60, 3d40, geometric, str0, str1, str2, str3.
//
// With -mutations N the command emits a dynamic-MSF workload instead of
// a graph: a sliding-window mutation stream over the base graph the
// other flags describe. Each batch (-batch edges at a time) adds fresh
// uniform-random edges and deletes the oldest live ones so that at most
// -window edges stay live (default: the base edge count, i.e. steady
// size). The output is the text stream format consumed by
// msf-verify -replay and msf-bench -stream:
//
//	pmsf-stream 1
//	n <vertices>
//	batch <adds> <dels>
//	+ <u> <v> <w>
//	- <u> <v> <w>
//
// The stream references the base graph's edges by value, so replay it
// against a graph generated with the SAME family/n/m/seed flags:
//
//	graphgen -family random -n 100000 -m 600000 -seed 7 -o base.pmsf
//	graphgen -family random -n 100000 -m 600000 -seed 7 -mutations 50000 -o base.stream
package main

import (
	"flag"
	"fmt"
	"os"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
)

func main() {
	family := flag.String("family", "random", "graph family")
	n := flag.Int("n", 100000, "vertex count (meshes round to the nearest grid)")
	m := flag.Int("m", 0, "edge count (random family; default 6n)")
	k := flag.Int("k", 6, "degree (geometric family)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	formatName := flag.String("format", "binary", "output format: binary, text, dimacs or metis")
	weightsName := flag.String("weights", "", "re-draw edge weights: uniform, exponential, small-ints or structured (default: the family's native weights)")
	mutations := flag.Int("mutations", 0, "emit a sliding-window mutation stream with this many edge additions instead of a graph (see package docs)")
	window := flag.Int("window", 0, "live-edge window of the mutation stream (default: the base edge count)")
	batch := flag.Int("batch", 1024, "mutations per batch in the stream")
	flag.Parse()

	g, err := build(*family, *n, *m, *k, *seed)
	if err != nil {
		fatal(err)
	}
	if *weightsName != "" {
		dist, err := parseWeights(*weightsName)
		if err != nil {
			fatal(err)
		}
		g = gen.Reweight(g, dist, *seed+1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	if *mutations > 0 {
		s := gen.SlidingWindowStream(g, *mutations, *window, *batch, *seed+2)
		if err := graph.WriteEdgeStream(w, s); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "graphgen: %s n=%d base m=%d stream: %d batches, %d mutations\n",
			*family, g.N, len(g.Edges), len(s.Batches), s.Mutations())
		return
	}
	format, err := graph.ParseFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	if err := format.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d\n", *family, g.N, len(g.Edges))
}

func build(family string, n, m, k int, seed uint64) (*graph.EdgeList, error) {
	switch family {
	case "random":
		if m == 0 {
			m = 6 * n
		}
		return gen.Random(n, m, seed), nil
	case "mesh2d":
		side := isqrt(n)
		return gen.Mesh2D(side, side, seed), nil
	case "2d60":
		side := isqrt(n)
		return gen.Mesh2D60(side, side, seed), nil
	case "3d40":
		return gen.Mesh3D40(icbrt(n), seed), nil
	case "geometric":
		return gen.Geometric(n, k, seed), nil
	case "str0":
		return gen.Str0(n, seed), nil
	case "str1":
		return gen.Str1(n, seed), nil
	case "str2":
		return gen.Str2(n, seed), nil
	case "str3":
		return gen.Str3(n, seed), nil
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func parseWeights(name string) (gen.WeightDist, error) {
	for _, d := range gen.WeightDists() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown weight distribution %q", name)
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func icbrt(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
