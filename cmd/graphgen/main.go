// Command graphgen generates the paper's input graph families and writes
// them to a file in the library's binary format (or text with -text).
//
// Usage:
//
//	graphgen -family random -n 1000000 -m 6000000 -o g1.pmsf
//	graphgen -family mesh2d -n 1000000 -o mesh.pmsf
//	graphgen -family geometric -n 1000000 -k 6 -o geo.pmsf
//	graphgen -family str0 -n 1000000 -o str0.pmsf
//
// Families: random, mesh2d, 2d60, 3d40, geometric, str0, str1, str2, str3.
package main

import (
	"flag"
	"fmt"
	"os"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
)

func main() {
	family := flag.String("family", "random", "graph family")
	n := flag.Int("n", 100000, "vertex count (meshes round to the nearest grid)")
	m := flag.Int("m", 0, "edge count (random family; default 6n)")
	k := flag.Int("k", 6, "degree (geometric family)")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("o", "", "output file (default stdout)")
	formatName := flag.String("format", "binary", "output format: binary, text, dimacs or metis")
	weightsName := flag.String("weights", "", "re-draw edge weights: uniform, exponential, small-ints or structured (default: the family's native weights)")
	flag.Parse()

	g, err := build(*family, *n, *m, *k, *seed)
	if err != nil {
		fatal(err)
	}
	if *weightsName != "" {
		dist, err := parseWeights(*weightsName)
		if err != nil {
			fatal(err)
		}
		g = gen.Reweight(g, dist, *seed+1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		w = f
	}
	format, err := graph.ParseFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	if err := format.Write(w, g); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "graphgen: %s n=%d m=%d\n", *family, g.N, len(g.Edges))
}

func build(family string, n, m, k int, seed uint64) (*graph.EdgeList, error) {
	switch family {
	case "random":
		if m == 0 {
			m = 6 * n
		}
		return gen.Random(n, m, seed), nil
	case "mesh2d":
		side := isqrt(n)
		return gen.Mesh2D(side, side, seed), nil
	case "2d60":
		side := isqrt(n)
		return gen.Mesh2D60(side, side, seed), nil
	case "3d40":
		return gen.Mesh3D40(icbrt(n), seed), nil
	case "geometric":
		return gen.Geometric(n, k, seed), nil
	case "str0":
		return gen.Str0(n, seed), nil
	case "str1":
		return gen.Str1(n, seed), nil
	case "str2":
		return gen.Str2(n, seed), nil
	case "str3":
		return gen.Str3(n, seed), nil
	}
	return nil, fmt.Errorf("unknown family %q", family)
}

func parseWeights(name string) (gen.WeightDist, error) {
	for _, d := range gen.WeightDists() {
		if d.String() == name {
			return d, nil
		}
	}
	return 0, fmt.Errorf("unknown weight distribution %q", name)
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func icbrt(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	return r
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "graphgen:", err)
	os.Exit(1)
}
