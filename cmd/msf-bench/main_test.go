package main

import "testing"

func TestParseWorkers(t *testing.T) {
	got, err := parseWorkers("1,2, 8")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 8 {
		t.Fatalf("parsed %v", got)
	}
}

func TestParseWorkersTrailingComma(t *testing.T) {
	got, err := parseWorkers("4,")
	if err != nil || len(got) != 1 || got[0] != 4 {
		t.Fatalf("parsed %v, %v", got, err)
	}
}

func TestParseWorkersErrors(t *testing.T) {
	for _, in := range []string{"", "x", "0", "-1", "1,x"} {
		if _, err := parseWorkers(in); err == nil {
			t.Errorf("%q accepted", in)
		}
	}
}
