// Command msf-bench regenerates the paper's evaluation artifacts: Table 1
// and Figures 2-6, plus the Section 3 cost-model comparison.
//
// Usage:
//
//	msf-bench [-exp all|table1|fig2|fig3|fig4|fig5|fig6|model]
//	          [-scale small|medium|paper] [-seed N] [-p 1,2,4,8] [-csv]
//
// The paper's inputs are 1M-vertex graphs (-scale paper); the default
// small scale runs every experiment in seconds. Wall-clock parallel
// speedups require as many hardware cores as the largest -p entry.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pmsf/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id (all, "+strings.Join(bench.ExperimentIDs(), ", ")+")")
	scaleFlag := flag.String("scale", "small", "input scale: small, medium or paper")
	seed := flag.Uint64("seed", 42, "random seed for generators and algorithms")
	workers := flag.String("p", "1,2,4,8", "comma-separated worker counts for the parallel sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonFlag := flag.Bool("json", false, "emit JSON instead of aligned text")
	outDir := flag.String("o", "", "also write each table to <dir>/<table id>.{txt,csv}")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	ps, err := parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}
	cfg := bench.Config{Scale: scale, Seed: *seed, Workers: ps}

	ids := bench.ExperimentIDs()
	if *exp != "all" {
		if _, ok := bench.Experiments()[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (want all, %s)", *exp, strings.Join(ids, ", ")))
		}
		ids = []string{*exp}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		for _, table := range bench.Experiments()[id](cfg) {
			var err error
			switch {
			case *jsonFlag:
				err = table.WriteJSON(os.Stdout)
			case *csv:
				err = table.WriteCSV(os.Stdout)
			default:
				err = table.WriteText(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			if *outDir != "" {
				if err := saveTable(*outDir, table, *csv); err != nil {
					fatal(err)
				}
			}
		}
	}
}

// saveTable writes the table to <dir>/<id>.txt or .csv.
func saveTable(dir string, table *bench.Table, csv bool) error {
	ext := ".txt"
	if csv {
		ext = ".csv"
	}
	f, err := os.Create(filepath.Join(dir, table.ID+ext))
	if err != nil {
		return err
	}
	if csv {
		err = table.WriteCSV(f)
	} else {
		err = table.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-bench:", err)
	os.Exit(1)
}
