// Command msf-bench regenerates the paper's evaluation artifacts: Table 1
// and Figures 2-6, plus the Section 3 cost-model comparison.
//
// Usage:
//
//	msf-bench [-exp all|table1|fig2|fig3|fig4|fig5|fig6|model]
//	          [-scale small|medium|paper] [-seed N] [-p 1,2,4,8] [-csv]
//	msf-bench -algo Bor-FAL [-trace out.json] [-metrics] [-scale ...]
//
// The paper's inputs are 1M-vertex graphs (-scale paper); the default
// small scale runs every experiment in seconds. Wall-clock parallel
// speedups require as many hardware cores as the largest -p entry.
//
// The -algo form runs one algorithm once with full span tracing and
// prints its per-phase report; -trace additionally writes a Chrome
// trace-event file (load in chrome://tracing or Perfetto), -metrics
// enables the process-wide kernel counters and prints the run summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"pmsf"
	"pmsf/internal/bench"
	"pmsf/internal/report"
)

// algoNames renders the canonical engine list for flag help —
// pmsf.Algorithms() is the single source of truth, so a new engine
// shows up here without touching this file.
func algoNames() string {
	names := make([]string, 0, len(pmsf.Algorithms()))
	for _, a := range pmsf.Algorithms() {
		names = append(names, a.String())
	}
	return strings.Join(names, ", ")
}

// sortNames renders the compact-graph engine list for flag help.
func sortNames() string {
	names := make([]string, 0, len(pmsf.SortEngines()))
	for _, e := range pmsf.SortEngines() {
		names = append(names, e.String())
	}
	return strings.Join(names, ", ")
}

func main() {
	exp := flag.String("exp", "all", "experiment id (all, "+strings.Join(bench.ExperimentIDs(), ", ")+")")
	scaleFlag := flag.String("scale", "small", "input scale: small, medium or paper")
	seed := flag.Uint64("seed", 42, "random seed for generators and algorithms")
	workers := flag.String("p", "1,2,4,8", "comma-separated worker counts for the parallel sweeps")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned text")
	jsonFlag := flag.Bool("json", false, "emit JSON instead of aligned text")
	outDir := flag.String("o", "", "also write each table to <dir>/<table id>.{txt,csv}")
	algoFlag := flag.String("algo", "", "run one algorithm with span tracing instead of the experiment suite ("+algoNames()+")")
	traceOut := flag.String("trace", "", "with -algo: write a Chrome trace-event JSON file to this path")
	metricsFlag := flag.Bool("metrics", false, "with -algo: enable process-wide counters and print the run summary")
	sortFlag := flag.String("sort", "", "Bor-EL compact-graph engine ("+sortNames()+"; default parallel-radix)")
	benchJSON := flag.String("benchjson", "", "run the compact-graph engine study and write machine-readable results to this path (e.g. results/BENCH_PR2.json)")
	dynJSON := flag.String("dynjson", "", "run the dynamic-MSF workload study (sliding-window mutation stream vs per-batch recompute) and write machine-readable results to this path (e.g. results/BENCH_PR10.json)")
	flag.Parse()

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fatal(err)
	}
	ps, err := parseWorkers(*workers)
	if err != nil {
		fatal(err)
	}
	if *algoFlag != "" {
		if err := profileRun(*algoFlag, scale, *seed, ps[0], *traceOut, *metricsFlag, *jsonFlag, *sortFlag); err != nil {
			fatal(err)
		}
		return
	}
	cfg := bench.Config{Scale: scale, Seed: *seed, Workers: ps}
	if *benchJSON != "" {
		if err := writeBenchJSON(*benchJSON, cfg); err != nil {
			fatal(err)
		}
		return
	}
	if *dynJSON != "" {
		if err := writeDynJSON(*dynJSON, cfg); err != nil {
			fatal(err)
		}
		return
	}

	ids := bench.ExperimentIDs()
	if *exp != "all" {
		if _, ok := bench.Experiments()[*exp]; !ok {
			fatal(fmt.Errorf("unknown experiment %q (want all, %s)", *exp, strings.Join(ids, ", ")))
		}
		ids = []string{*exp}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		for _, table := range bench.Experiments()[id](cfg) {
			var err error
			switch {
			case *jsonFlag:
				err = table.WriteJSON(os.Stdout)
			case *csv:
				err = table.WriteCSV(os.Stdout)
			default:
				err = table.WriteText(os.Stdout)
			}
			if err != nil {
				fatal(err)
			}
			if *outDir != "" {
				if err := saveTable(*outDir, table, *csv); err != nil {
					fatal(err)
				}
			}
		}
	}
}

// profileRun executes the -algo path: one traced run, per-phase report
// on stdout, optional Chrome trace file and metrics summary.
func profileRun(algo string, scale bench.Scale, seed uint64, workers int, traceOut string, metrics, jsonOut bool, sortEngine string) error {
	res, err := bench.ProfileRun(bench.ProfileConfig{
		Algo: algo, Scale: scale, Seed: seed, Workers: workers, Metrics: metrics,
		Sort: sortEngine,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s: n=%d m=%d, forest weight %.4f, %d component(s)\n",
		res.Algorithm, res.Graph.N, len(res.Graph.Edges), res.Forest.Weight, res.Forest.Components)
	switch {
	case res.Stats.Boruvka != nil:
		err = report.Boruvka(os.Stdout, res.Stats.Boruvka)
	case res.Stats.MSTBC != nil:
		err = report.MSTBC(os.Stdout, res.Stats.MSTBC)
	case res.Stats.Filter != nil:
		err = report.Filter(os.Stdout, res.Stats.Filter)
	case res.Stats.CASHook != nil:
		err = report.CASHook(os.Stdout, res.Stats.CASHook)
	}
	if err != nil {
		return err
	}
	if metrics {
		if jsonOut {
			err = res.Summary.WriteJSON(os.Stdout)
		} else {
			err = report.Summary(os.Stdout, res.Summary)
		}
		if err != nil {
			return err
		}
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := res.Trace.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("trace: %d spans written to %s\n", len(res.Trace.Spans()), traceOut)
	}
	return nil
}

// writeBenchJSON runs the compact-graph engine study plus the MSF
// engine matrix and writes the machine-readable report (the repo's perf
// trajectory baseline).
func writeBenchJSON(path string, cfg bench.Config) error {
	rep := bench.CompactBench(cfg)
	rep.EngineBaseline = bench.EngineAlgos()[0].String()
	rep.Engines = bench.EngineMatrixBench(cfg)
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("compact-graph engine study: %d measurements (+%d engine-matrix rows) written to %s\n",
		len(rep.Entries), len(rep.Engines), path)
	return nil
}

// writeDynJSON runs the dynamic workload study (batch mutation stream
// through the dynamic-MSF subsystem vs from-scratch per-batch
// recompute) and writes the machine-readable report.
func writeDynJSON(path string, cfg bench.Config) error {
	rep, err := bench.DynamicBench(cfg)
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := rep.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("dynamic workload study: %d batches (%d mutations), %.1fx vs %s per-batch recompute (verified=%v) written to %s\n",
		rep.Batches, rep.Mutations, rep.SpeedupX, rep.BaselineEngine, rep.Verified, path)
	return nil
}

// saveTable writes the table to <dir>/<id>.txt or .csv.
func saveTable(dir string, table *bench.Table, csv bool) error {
	ext := ".txt"
	if csv {
		ext = ".csv"
	}
	f, err := os.Create(filepath.Join(dir, table.ID+ext))
	if err != nil {
		return err
	}
	if csv {
		err = table.WriteCSV(f)
	} else {
		err = table.WriteText(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("invalid worker count %q", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no worker counts given")
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-bench:", err)
	os.Exit(1)
}
