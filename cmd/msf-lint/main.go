// Command msf-lint runs the repo's static-analysis suite — the
// invariants the compiler cannot check: atomic access disciplines,
// zero-alloc round loops, Team lifecycles, span pairing, arena escape.
//
// Standalone (the supported CI entry point):
//
//	msf-lint ./...
//	msf-lint -tests ./...
//	msf-lint -only noalloc,atomicslice ./internal/boruvka
//	msf-lint -json ./... > findings.json
//	msf-lint -list ./...
//
// It also speaks the `go vet -vettool` unitchecker protocol, so
//
//	go vet -vettool=$(which msf-lint) ./...
//
// works from an ordinary go toolchain: when invoked with a single
// *.cfg argument it type-checks the one package described by the
// config against the export data the go command already built and
// reports diagnostics on stderr.
//
// Exit status: 0 clean, 1 diagnostics reported, 2 operational error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/checker"
	"pmsf/internal/analysis/load"
	"pmsf/internal/analysis/suite"
)

func main() {
	// go vet probes its vettool with -V=full before anything else (the
	// reply doubles as the tool's cache key), then with -flags for the
	// JSON list of analyzer flags the driver may forward. The suite
	// exposes none to the driver, so the list is empty.
	if len(os.Args) == 2 && strings.HasPrefix(os.Args[1], "-V") {
		fmt.Printf("msf-lint version 1 msf-lint-suite-v1\n")
		return
	}
	if len(os.Args) == 2 && os.Args[1] == "-flags" {
		fmt.Println("[]")
		return
	}

	list := flag.Bool("list", false, "list the analyzers and exit; with packages, include per-analyzer //msf:ignore counts")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	disable := flag.String("disable", "", "comma-separated analyzer names to skip")
	tests := flag.Bool("tests", false, "also load and analyze _test.go sources")
	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON on stdout instead of text on stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: msf-lint [flags] packages...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers, err := selectAnalyzers(*only, *disable)
	if err != nil {
		fatal(err)
	}
	if *list {
		listAnalyzers(analyzers, *tests, flag.Args())
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}

	// Unitchecker mode: a single *.cfg argument from the go vet driver.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0], analyzers))
	}

	pkgs, err := loadPackages(*tests, args)
	if err != nil {
		fatal(err)
	}
	diags, err := checker.Run(pkgs, analyzers)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		if err := printJSON(os.Stdout, diags); err != nil {
			fatal(err)
		}
		if len(diags) > 0 {
			os.Exit(1)
		}
		return
	}
	if checker.Print(os.Stderr, diags) > 0 {
		os.Exit(1)
	}
}

// loadPackages resolves the targets, with or without test sources.
func loadPackages(tests bool, patterns []string) ([]*load.Package, error) {
	if tests {
		return load.LoadTests("", patterns...)
	}
	return load.Load("", patterns...)
}

// listAnalyzers prints the suite; given packages it also loads them and
// shows how many //msf:ignore suppressions each analyzer carries there.
func listAnalyzers(analyzers []*analysis.Analyzer, tests bool, patterns []string) {
	var counts map[string]int
	if len(patterns) > 0 {
		pkgs, err := loadPackages(tests, patterns)
		if err != nil {
			fatal(err)
		}
		counts = checker.IgnoreStats(pkgs)
	}
	for _, a := range analyzers {
		if counts != nil {
			fmt.Printf("%-14s %3d ignored  %s\n", a.Name, counts[a.Name], a.Doc)
			continue
		}
		fmt.Printf("%-14s %s\n", a.Name, a.Doc)
	}
}

// jsonDiagnostic is the -json wire form of one finding.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// printJSON renders diagnostics as a JSON array (always an array, so
// consumers need no null handling on a clean run).
func printJSON(w io.Writer, diags []checker.Diagnostic) error {
	out := make([]jsonDiagnostic, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiagnostic{
			File:     d.Position.Filename,
			Line:     d.Position.Line,
			Column:   d.Position.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func selectAnalyzers(only, disable string) ([]*analysis.Analyzer, error) {
	analyzers := suite.All()
	if only != "" {
		var picked []*analysis.Analyzer
		for _, name := range strings.Split(only, ",") {
			a := suite.ByName(strings.TrimSpace(name))
			if a == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}
	if disable != "" {
		skip := map[string]bool{}
		for _, name := range strings.Split(disable, ",") {
			name = strings.TrimSpace(name)
			if suite.ByName(name) == nil {
				return nil, fmt.Errorf("unknown analyzer %q", name)
			}
			skip[name] = true
		}
		var kept []*analysis.Analyzer
		for _, a := range analyzers {
			if !skip[a.Name] {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}
	return analyzers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-lint:", err)
	os.Exit(2)
}
