// The `go vet -vettool` unitchecker protocol: the go command invokes
// the tool once per package with a single JSON config argument naming
// the package's files and the export data of its dependencies, and
// expects a facts file to be written to VetxOutput. The analyzers here
// are fact-free, so the vetx payload is an empty placeholder; the
// type-check itself reuses the gc export data exactly like
// x/tools/go/analysis/unitchecker does.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/checker"
	"pmsf/internal/analysis/load"
)

// vetConfig mirrors the cmd/go vet config JSON (the fields msf-lint
// needs).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	NonGoFiles                []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msf-lint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "msf-lint: %s: %v\n", cfgPath, err)
		return 2
	}

	// The facts file must exist even though the suite exports none; the
	// go command caches and feeds it to dependents.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("msf-lint: no facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "msf-lint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, "msf-lint:", err)
			return 2
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	pkg := &load.Package{
		ImportPath: cfg.ImportPath,
		Dir:        cfg.Dir,
		Fset:       fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, pkg.TypesInfo)
	if err != nil && tpkg == nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "msf-lint:", err)
		return 2
	}
	pkg.Types = tpkg
	if len(pkg.TypeErrors) > 0 && cfg.SucceedOnTypecheckFailure {
		return 0
	}

	diags, err := checker.Run([]*load.Package{pkg}, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "msf-lint:", err)
		return 2
	}
	if checker.Print(os.Stderr, diags) > 0 {
		return 2
	}
	return 0
}
