package main

import (
	"testing"

	"pmsf"
)

// printStats must handle both stats families and empty stats without
// panicking (output goes to stdout; correctness of the numbers is tested
// at the library level).
func TestPrintStats(t *testing.T) {
	g := pmsf.RandomGraph(200, 800, 1)
	for _, algo := range []pmsf.Algorithm{pmsf.BorEL, pmsf.MSTBC, pmsf.SeqPrim} {
		_, stats, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{CollectStats: true})
		if err != nil {
			t.Fatal(err)
		}
		printStats(stats)
	}
	printStats(&pmsf.Stats{})
}
