// Command msf computes the minimum spanning forest of a graph file and
// prints the forest weight, edge count and component count.
//
// Usage:
//
//	msf -algo Bor-FAL -p 8 [-verify] [-stats] [-format binary|text|dimacs] graph.pmsf
//
// Algorithms: Bor-EL, Bor-AL, Bor-ALM, Bor-FAL, MST-BC, Prim, Kruskal,
// Boruvka. Input defaults to the binary format written by graphgen.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pmsf"
	"pmsf/internal/graph"
	"pmsf/internal/report"
)

func main() {
	algoName := flag.String("algo", "MST-BC", "algorithm name")
	workers := flag.Int("p", 0, "parallel workers (0 = GOMAXPROCS)")
	seed := flag.Uint64("seed", 42, "seed for randomized components")
	verifyFlag := flag.Bool("verify", false, "verify the result against a sequential reference")
	statsFlag := flag.Bool("stats", false, "print per-iteration instrumentation")
	formatName := flag.String("format", "binary", "input format: binary, text, dimacs or metis")
	outPath := flag.String("o", "", "write the forest (edge ids) to this file")
	flag.Parse()

	if flag.NArg() != 1 {
		fatal(fmt.Errorf("want exactly one input file, got %d args", flag.NArg()))
	}
	algo, err := pmsf.ParseAlgorithm(*algoName)
	if err != nil {
		fatal(err)
	}

	format, err := graph.ParseFormat(*formatName)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	g, err := format.Read(f)
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	forest, stats, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
		Workers: *workers, Seed: *seed, CollectStats: *statsFlag,
	})
	if err != nil {
		fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("algorithm:  %s\n", algo)
	fmt.Printf("graph:      n=%d m=%d\n", g.N, len(g.Edges))
	fmt.Printf("forest:     %d edges, %d components\n", forest.Size(), forest.Components)
	fmt.Printf("weight:     %.6f\n", forest.Weight)
	fmt.Printf("time:       %v\n", elapsed)

	if *statsFlag && stats != nil {
		printStats(stats)
	}
	if *outPath != "" {
		of, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		if err := graph.WriteForest(of, forest); err != nil {
			fatal(err)
		}
		if err := of.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("forest out:  %s\n", *outPath)
	}
	if *verifyFlag {
		if err := pmsf.Verify(g, forest); err != nil {
			fatal(err)
		}
		fmt.Println("verify:     OK (matches reference MSF)")
	}
}

func printStats(stats *pmsf.Stats) {
	var err error
	switch {
	case stats.Boruvka != nil:
		err = report.Boruvka(os.Stdout, stats.Boruvka)
	case stats.MSTBC != nil:
		err = report.MSTBC(os.Stdout, stats.MSTBC)
	case stats.Filter != nil:
		err = report.Filter(os.Stdout, stats.Filter)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf:", err)
	os.Exit(1)
}
