// Command msf-serve runs the MSF library as a long-running HTTP+JSON
// service: upload graphs once, query them many times with any engine,
// and read live metrics. See docs/SERVICE.md for the API reference.
//
// Usage:
//
//	msf-serve [-addr :8080] [-workers K] [-queue-depth N]
//	          [-cache-entries N] [-registry-cap-mb N] [-max-upload-mb N]
//	          [-rate N] [-burst N] [-drain-timeout 30s]
//
// SIGINT/SIGTERM triggers a graceful shutdown: new admissions are
// refused (503), queued jobs are canceled, and in-flight engine runs
// finish (their synchronous clients still receive results) before the
// process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmsf/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (host:port; :0 picks a free port)")
	workers := flag.Int("workers", 0, "max concurrent engine runs K (0 = GOMAXPROCS/2)")
	queueDepth := flag.Int("queue-depth", 64, "queued jobs beyond the K running ones")
	cacheEntries := flag.Int("cache-entries", 128, "LRU forest cache capacity (-1 disables)")
	registryCapMB := flag.Int64("registry-cap-mb", 2048, "graph registry byte cap in MiB (-1 = unlimited)")
	maxUploadMB := flag.Int64("max-upload-mb", 256, "per-upload graph size cap in MiB")
	rate := flag.Float64("rate", 50, "per-client requests/second (-1 disables rate limiting)")
	burst := flag.Int("burst", 100, "per-client burst size")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight runs on shutdown")
	flag.Parse()

	srv := serve.New(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		CacheEntries:     *cacheEntries,
		RegistryCapBytes: scaleMB(*registryCapMB),
		MaxUploadBytes:   scaleMB(*maxUploadMB),
		RatePerSecond:    *rate,
		Burst:            *burst,
		DrainTimeout:     *drainTimeout,
	})
	srv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	fmt.Printf("msf-serve: listening on %s (K=%d workers)\n", ln.Addr(), srv.Queue().Workers())

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("msf-serve: %v — draining (timeout %v)\n", s, *drainTimeout)
	case err := <-errCh:
		fatal(err)
	}

	// Drain order: stop admission and finish in-flight engine runs
	// first (their handlers are still writing responses), then close
	// the HTTP listener once those responses are out.
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout+5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "msf-serve: drain incomplete: %v\n", err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "msf-serve: http shutdown: %v\n", err)
	}
	fmt.Println("msf-serve: shutdown complete")
}

// scaleMB converts a MiB flag to bytes, passing the sentinel values
// through (-1 unlimited, 0 default).
func scaleMB(mb int64) int64 {
	if mb <= 0 {
		return mb
	}
	return mb << 20
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "msf-serve:", err)
	os.Exit(1)
}
