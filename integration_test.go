package pmsf_test

// Cross-algorithm integration tests: every implementation must agree on
// arbitrary inputs, including adversarial weight patterns, across worker
// counts. These are the repository's end-to-end safety net.

import (
	"math"
	"testing"
	"testing/quick"

	"pmsf"
	"pmsf/internal/rng"
)

// randomInstance decodes a quick-generated seed into a graph plus run
// parameters covering the full option space.
func randomInstance(seed uint64) (*pmsf.Graph, int) {
	r := rng.New(seed)
	n := 2 + r.Intn(400)
	maxM := n * (n - 1) / 2
	m := r.Intn(maxM + 1)
	g := pmsf.RandomGraph(n, m, r.Uint64())
	// Occasionally inject adversarial weights.
	switch r.Intn(4) {
	case 0: // heavy ties
		for i := range g.Edges {
			g.Edges[i].W = float64(i % 3)
		}
	case 1: // negative weights
		for i := range g.Edges {
			g.Edges[i].W -= 0.5
		}
	case 2: // huge dynamic range
		for i := range g.Edges {
			g.Edges[i].W = math.Exp(20 * (g.Edges[i].W - 0.5))
		}
	}
	workers := 1 + r.Intn(8)
	return g, workers
}

func TestAllAlgorithmsAgreeProperty(t *testing.T) {
	algos := pmsf.Algorithms()
	f := func(seed uint64) bool {
		g, workers := randomInstance(seed)
		var refWeight float64
		var refSize, refComps int
		for i, algo := range algos {
			forest, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
				Workers: workers, Seed: seed, BaseSize: 1 + int(seed%100),
			})
			if err != nil {
				return false
			}
			if i == 0 {
				refWeight, refSize, refComps = forest.Weight, forest.Size(), forest.Components
				continue
			}
			if forest.Size() != refSize || forest.Components != refComps {
				return false
			}
			d := forest.Weight - refWeight
			scale := math.Max(math.Abs(refWeight), 1)
			if d > 1e-9*scale || d < -1e-9*scale {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The full oracle (structure + reference weight + cycle property) on a
// sample of instances per algorithm.
func TestFullOracleSample(t *testing.T) {
	for s := uint64(0); s < 8; s++ {
		g, workers := randomInstance(s * 977)
		for _, algo := range pmsf.Algorithms() {
			forest, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: workers, Seed: s})
			if err != nil {
				t.Fatalf("seed %d %v: %v", s, algo, err)
			}
			if err := pmsf.Verify(g, forest); err != nil {
				t.Fatalf("seed %d %v: %v", s, algo, err)
			}
		}
	}
}

// A larger end-to-end run, skipped in -short mode.
func TestLargeEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	g := pmsf.RandomGraph(50_000, 300_000, 123)
	ref, _, err := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range pmsf.ParallelAlgorithms() {
		forest, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: 8, Seed: 7})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		d := forest.Weight - ref.Weight
		if d > 1e-6 || d < -1e-6 {
			t.Fatalf("%v: weight %f != %f", algo, forest.Weight, ref.Weight)
		}
		if forest.Size() != ref.Size() {
			t.Fatalf("%v: %d edges != %d", algo, forest.Size(), ref.Size())
		}
	}
}
