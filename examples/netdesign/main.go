// Netdesign: minimum-cost backbone for a wireless sensor network — one of
// the paper's motivating applications (coverage and routing in ad-hoc
// sensor networks).
//
// Sensors are placed uniformly at random in the unit square; each sensor
// can talk to its k nearest neighbors, and link cost is transmission
// distance. The minimum spanning forest of this geometric graph is the
// cheapest wiring that keeps every reachable sensor connected; per-
// component statistics show how coverage degrades when the radio degree
// k shrinks.
package main

import (
	"fmt"
	"log"

	"pmsf"
)

func main() {
	const sensors = 30_000

	fmt.Println("wireless backbone cost vs radio degree k")
	fmt.Printf("%-4s %-10s %-12s %-14s %-12s\n", "k", "links", "components", "backbone cost", "avg link")
	for _, k := range []int{2, 3, 4, 6, 8} {
		g := pmsf.GeometricGraph(sensors, k, 7)
		forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{Workers: 4})
		if err != nil {
			log.Fatal(err)
		}
		avg := 0.0
		if forest.Size() > 0 {
			avg = forest.Weight / float64(forest.Size())
		}
		fmt.Printf("%-4d %-10d %-12d %-14.4f %-12.6f\n",
			k, len(g.Edges), forest.Components, forest.Weight, avg)
	}

	// With a healthy degree the network is (almost) fully connected; the
	// backbone picks the short links: compare the mean MSF link length to
	// the mean candidate link length.
	g := pmsf.GeometricGraph(sensors, 6, 7)
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.MSTBC, pmsf.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	var candidate float64
	for _, e := range g.Edges {
		candidate += e.W
	}
	fmt.Printf("\nk=6: mean candidate link %.6f, mean backbone link %.6f (%.1f%% shorter)\n",
		candidate/float64(len(g.Edges)),
		forest.Weight/float64(forest.Size()),
		100*(1-forest.Weight/float64(forest.Size())/(candidate/float64(len(g.Edges)))))
}
