// Scaling: a self-contained scaling study using only the public API —
// the experiment a user runs first on their own hardware. It sweeps the
// worker count for every parallel algorithm on one random sparse graph,
// reports wall times, speedup against the best sequential baseline, and
// the per-step attribution that explains WHERE the time goes (the
// paper's Fig. 2 lens applied to your machine).
//
// On a single-core host the sweep is flat (there is nothing to scale
// onto); on an 8-core machine the same binary reproduces the paper's
// Fig. 4 curves.
package main

import (
	"fmt"
	"log"
	"runtime"
	"time"

	"pmsf"
)

func main() {
	const n, ratio = 100_000, 6
	g := pmsf.RandomGraphParallel(n, ratio*n, 42, 0)
	fmt.Printf("graph: random n=%d m=%d; GOMAXPROCS=%d\n\n", g.N, len(g.Edges), runtime.GOMAXPROCS(0))

	// Best sequential baseline.
	bestSeq, bestName := time.Duration(0), ""
	for _, algo := range []pmsf.Algorithm{pmsf.SeqPrim, pmsf.SeqKruskal, pmsf.SeqBoruvka} {
		d := timeRun(g, algo, 0)
		fmt.Printf("%-9s (sequential)  %8.1f ms\n", algo, ms(d))
		if bestName == "" || d < bestSeq {
			bestSeq, bestName = d, algo.String()
		}
	}
	fmt.Printf("\nbest sequential: %s (%.1f ms)\n\n", bestName, ms(bestSeq))

	ps := []int{1, 2, 4, 8}
	fmt.Printf("%-9s", "algo")
	for _, p := range ps {
		fmt.Printf("  p=%-2d (ms)", p)
	}
	fmt.Printf("  speedup(p=%d)\n", ps[len(ps)-1])
	for _, algo := range pmsf.ParallelAlgorithms() {
		fmt.Printf("%-9s", algo)
		var last time.Duration
		for _, p := range ps {
			last = timeRun(g, algo, p)
			fmt.Printf("  %9.1f", ms(last))
		}
		fmt.Printf("  %.2f\n", float64(bestSeq)/float64(last))
	}

	// Per-step attribution for the representation the paper recommends
	// on random graphs.
	_, stats, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{CollectStats: true})
	if err != nil {
		log.Fatal(err)
	}
	s := stats.Boruvka
	fmt.Printf("\nBor-FAL step attribution over %d iterations: find-min %.1f ms, connect %.1f ms, compact %.1f ms\n",
		len(s.Iters), ms(s.Total.FindMin), ms(s.Total.ConnectComponents), ms(s.Total.CompactGraph))
}

func timeRun(g *pmsf.Graph, algo pmsf.Algorithm, p int) time.Duration {
	start := time.Now()
	if _, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: p, Seed: 1}); err != nil {
		log.Fatal(err)
	}
	return time.Since(start)
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
