// Imaging: MSF-guided phase unwrapping on a pixel mesh — the medical-
// imaging application the paper cites (An, Xiang & Chavez, IEEE Trans.
// Med. Imaging 2000): unwrap a wrapped phase image by processing pixels
// along a minimum spanning tree of the pixel grid, where edge weights are
// phase-gradient magnitudes, so unwrapping crosses reliable (smooth)
// boundaries first and noisy ones last.
//
// The example synthesizes a smooth phase surface with additive noise,
// wraps it to (-π, π], builds the 4-connected pixel mesh weighted by
// wrapped phase differences, computes its MST in parallel, and unwraps by
// propagating along tree edges. It reports the reconstruction error
// against naive row-major unwrapping.
package main

import (
	"fmt"
	"log"
	"math"

	"pmsf"
	"pmsf/internal/rng"
)

const side = 256 // image is side×side pixels

func main() {
	n := side * side
	truth := make([]float64, n) // the smooth surface we try to recover
	wrapped := make([]float64, n)
	r := rng.New(11)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			fx, fy := float64(x)/side, float64(y)/side
			v := 14*math.Sin(2.2*fx+0.5) + 11*math.Cos(3.1*fy) + 6*fx*fy
			v += 0.08 * (r.Float64() - 0.5) // background sensor noise
			if r.Float64() < 0.02 {
				// Heavy-tailed speckle: corrupted pixels whose gradients
				// look like wraps. Row-major unwrapping drags the error
				// across the rest of the row; the MST routes around them.
				v += 2 * math.Pi * (r.Float64() - 0.5)
			}
			truth[y*side+x] = v
			wrapped[y*side+x] = wrap(v)
		}
	}

	// Pixel mesh: 4-connectivity, weight = |wrapped gradient|. Small
	// weights mean the true gradient almost surely did not wrap.
	var edges []pmsf.Edge
	at := func(x, y int) int32 { return int32(y*side + x) }
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				w := math.Abs(wrap(wrapped[at(x+1, y)] - wrapped[at(x, y)]))
				edges = append(edges, pmsf.Edge{U: at(x, y), V: at(x+1, y), W: w})
			}
			if y+1 < side {
				w := math.Abs(wrap(wrapped[at(x, y+1)] - wrapped[at(x, y)]))
				edges = append(edges, pmsf.Edge{U: at(x, y), V: at(x, y+1), W: w})
			}
		}
	}
	g := pmsf.NewGraph(n, edges)

	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.BorALM, pmsf.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pixel mesh: n=%d m=%d, MST edges=%d, components=%d\n",
		n, len(edges), forest.Size(), forest.Components)

	// Unwrap along the tree: BFS from pixel 0, each step adds the wrapped
	// difference (which, on smooth edges, equals the true difference).
	unwrapped := unwrapAlongTree(g, forest, wrapped)
	naive := unwrapRowMajor(wrapped)

	fmt.Printf("mean |error| via MST unwrap:      %.4f rad\n", meanAbsError(unwrapped, truth))
	fmt.Printf("mean |error| via row-major unwrap: %.4f rad\n", meanAbsError(naive, truth))
}

func wrap(v float64) float64 {
	for v > math.Pi {
		v -= 2 * math.Pi
	}
	for v <= -math.Pi {
		v += 2 * math.Pi
	}
	return v
}

func unwrapAlongTree(g *pmsf.Graph, forest *pmsf.Forest, wrapped []float64) []float64 {
	n := g.N
	adj := make([][]int32, n) // neighbor pixel per tree edge
	for _, id := range forest.EdgeIDs {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	out := make([]float64, n)
	seen := make([]bool, n)
	for root := 0; root < n; root++ {
		if seen[root] {
			continue
		}
		out[root] = wrapped[root]
		seen[root] = true
		queue := []int32{int32(root)}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range adj[u] {
				if seen[v] {
					continue
				}
				seen[v] = true
				out[v] = out[u] + wrap(wrapped[v]-wrapped[u])
				queue = append(queue, v)
			}
		}
	}
	return out
}

func unwrapRowMajor(wrapped []float64) []float64 {
	out := make([]float64, len(wrapped))
	out[0] = wrapped[0]
	for i := 1; i < len(wrapped); i++ {
		prev := i - 1
		if i%side == 0 {
			prev = i - side // first pixel of a row chains to the row above
		}
		out[i] = out[prev] + wrap(wrapped[i]-wrapped[prev])
	}
	return out
}

func meanAbsError(got, want []float64) float64 {
	// Phase is recovered up to a global constant; remove the mean offset.
	var offset float64
	for i := range got {
		offset += got[i] - want[i]
	}
	offset /= float64(len(got))
	var sum float64
	for i := range got {
		sum += math.Abs(got[i] - want[i] - offset)
	}
	return sum / float64(len(got))
}
