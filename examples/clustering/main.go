// Clustering: single-linkage clustering via the MSF — the mechanism
// behind the paper's cancer-detection and proteomics citations (minimum
// spanning tree analysis of cell populations). Cutting the k-1 heaviest
// edges of an MST partitions the data into exactly the k clusters that
// single-linkage hierarchical clustering produces, but computing it
// through the parallel MSF costs O(m log n) instead of the naive O(n²)
// dendrogram.
//
// The example plants Gaussian-ish point clusters in the plane, builds a
// k-nearest-neighbor graph, computes its MSF in parallel, cuts it, and
// reports how well the recovered clusters match the planted ones.
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	"pmsf"
	"pmsf/internal/rng"
)

const (
	pointsPerCluster = 4000
	plantedClusters  = 6
	knn              = 8
)

func main() {
	r := rng.New(17)
	n := pointsPerCluster * plantedClusters
	xs := make([]float64, n)
	ys := make([]float64, n)
	truth := make([]int, n)
	// Cluster centers on a circle; points jittered around them.
	for c := 0; c < plantedClusters; c++ {
		angle := 2 * math.Pi * float64(c) / plantedClusters
		cx, cy := 0.5+0.35*math.Cos(angle), 0.5+0.35*math.Sin(angle)
		for i := 0; i < pointsPerCluster; i++ {
			id := c*pointsPerCluster + i
			xs[id] = cx + 0.05*gauss(r)
			ys[id] = cy + 0.05*gauss(r)
			truth[id] = c
		}
	}

	g := knnGraph(xs, ys, knn)
	fmt.Printf("points: %d in %d planted clusters; k-NN graph: %d edges\n",
		n, plantedClusters, len(g.Edges))

	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{Workers: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MSF: %d edges, %d graph components\n", forest.Size(), forest.Components)

	// Zahn's criterion: delete "inconsistent" MSF edges — those much
	// heavier than the typical tree edge. (Cutting exactly k-1 heaviest
	// edges is the textbook rule but is famously fragile to outliers,
	// whose stub edges are heavier than the true inter-cluster bridges.)
	mean := forest.Weight / float64(forest.Size())
	threshold := 3.5 * mean
	labels, cut := cutHeavierThan(g, forest, threshold)
	fmt.Printf("cut %d MSF edges heavier than 3.5x the mean (%.5f)\n", cut, threshold)

	// Score over the plantedClusters largest recovered clusters: purity
	// and coverage (outlier singletons fall outside).
	size := map[int32]int{}
	for v := 0; v < n; v++ {
		size[labels[v]]++
	}
	type cl struct {
		label int32
		size  int
	}
	var all []cl
	for l, s := range size {
		all = append(all, cl{l, s})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].size > all[j].size })
	top := map[int32]bool{}
	for i := 0; i < plantedClusters && i < len(all); i++ {
		top[all[i].label] = true
	}
	counts := map[int32]map[int]int{}
	covered := 0
	for v := 0; v < n; v++ {
		if !top[labels[v]] {
			continue
		}
		covered++
		if counts[labels[v]] == nil {
			counts[labels[v]] = map[int]int{}
		}
		counts[labels[v]][truth[v]]++
	}
	correct := 0
	for _, byTruth := range counts {
		best := 0
		for _, c := range byTruth {
			if c > best {
				best = c
			}
		}
		correct += best
	}
	fmt.Printf("recovered groups: %d total, scoring the %d largest\n", len(all), len(top))
	fmt.Printf("coverage: %.1f%% of points in the %d largest clusters\n",
		100*float64(covered)/float64(n), plantedClusters)
	fmt.Printf("cluster purity (within covered points): %.1f%%\n",
		100*float64(correct)/float64(covered))
}

func gauss(r *rng.Xoshiro256) float64 {
	// Box-Muller.
	u1, u2 := r.Float64(), r.Float64()
	if u1 < 1e-12 {
		u1 = 1e-12
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// knnGraph connects each point to its k nearest neighbors (brute force
// over a cell grid would be overkill for an example; we reuse the
// library's geometric generator pattern with explicit points instead).
func knnGraph(xs, ys []float64, k int) *pmsf.Graph {
	n := len(xs)
	type cand struct {
		d2 float64
		v  int32
	}
	seen := map[uint64]bool{}
	var edges []pmsf.Edge
	// Simple grid bucketing for near-linear k-NN.
	side := int(math.Sqrt(float64(n) / 2))
	if side < 1 {
		side = 1
	}
	cellOf := func(i int) (int, int) {
		cx, cy := int(xs[i]*float64(side)), int(ys[i]*float64(side))
		if cx < 0 {
			cx = 0
		}
		if cy < 0 {
			cy = 0
		}
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	buckets := make([][]int32, side*side)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		buckets[cx*side+cy] = append(buckets[cx*side+cy], int32(i))
	}
	best := make([]cand, 0, k+4)
	for u := 0; u < n; u++ {
		best = best[:0]
		ucx, ucy := cellOf(u)
		for ring := 0; ring <= side; ring++ {
			if len(best) >= k {
				minD := float64(ring-1) / float64(side)
				if minD > 0 && minD*minD > best[len(best)-1].d2 {
					break
				}
			}
			for cx := ucx - ring; cx <= ucx+ring; cx++ {
				for cy := ucy - ring; cy <= ucy+ring; cy++ {
					if cx < 0 || cy < 0 || cx >= side || cy >= side {
						continue
					}
					if cx != ucx-ring && cx != ucx+ring && cy != ucy-ring && cy != ucy+ring {
						continue
					}
					for _, v := range buckets[cx*side+cy] {
						if int(v) == u {
							continue
						}
						dx, dy := xs[u]-xs[v], ys[u]-ys[v]
						best = append(best, cand{dx*dx + dy*dy, v})
					}
				}
			}
			sort.Slice(best, func(i, j int) bool { return best[i].d2 < best[j].d2 })
			if len(best) > k {
				best = best[:k]
			}
		}
		for _, c := range best {
			a, b := int32(u), c.v
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if !seen[key] {
				seen[key] = true
				edges = append(edges, pmsf.Edge{U: a, V: b, W: math.Sqrt(c.d2)})
			}
		}
	}
	return pmsf.NewGraph(n, edges)
}

// cutHeavierThan removes every forest edge heavier than the threshold
// and labels the resulting groups via union-find over the remaining
// ones. It returns the labels and the number of edges cut.
func cutHeavierThan(g *pmsf.Graph, forest *pmsf.Forest, threshold float64) ([]int32, int) {
	keep := make([]int32, 0, len(forest.EdgeIDs))
	cut := 0
	for _, id := range forest.EdgeIDs {
		if g.Edges[id].W > threshold {
			cut++
			continue
		}
		keep = append(keep, id)
	}
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, id := range keep {
		e := g.Edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	labels := make([]int32, g.N)
	for v := range labels {
		labels[v] = find(int32(v))
	}
	return labels, cut
}
