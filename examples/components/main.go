// Components: minimum spanning FORESTS on disconnected inputs — the
// paper's algorithms handle disconnected graphs natively, returning an
// MST per connected component. This example models outbreak clusters
// (the paper's bioterrorism motivation: tracking toxin spread through
// populations): contacts exist only within clusters, and the MSF yields
// one minimal "transmission tree" per cluster plus per-cluster cost
// statistics.
package main

import (
	"fmt"
	"log"
	"sort"

	"pmsf"
	"pmsf/internal/rng"
)

func main() {
	// Build a population of isolated contact clusters with random sizes;
	// intra-cluster contact graphs are random with average degree 5.
	r := rng.New(3)
	var edges []pmsf.Edge
	base := int32(0)
	clusters := 0
	for base < 40_000 {
		size := 50 + r.Intn(2000)
		m := size * 5 / 2
		sub := pmsf.RandomGraph(size, m, r.Uint64())
		for _, e := range sub.Edges {
			edges = append(edges, pmsf.Edge{U: base + e.U, V: base + e.V, W: e.W})
		}
		base += int32(size)
		clusters++
	}
	g := pmsf.NewGraph(int(base), edges)

	forest, stats, err := pmsf.MinimumSpanningForest(g, pmsf.MSTBC, pmsf.Options{
		Workers:      4,
		CollectStats: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population: %d individuals, %d contacts, %d planted clusters\n",
		g.N, len(g.Edges), clusters)
	fmt.Printf("MSF: %d edges across %d components (isolated individuals: %d)\n",
		forest.Size(), forest.Components, forest.Components-clusters)

	// Per-component weights: group selected edges by component.
	comp := componentOf(g, forest)
	weight := map[int32]float64{}
	size := map[int32]int{}
	for _, id := range forest.EdgeIDs {
		e := g.Edges[id]
		weight[comp[e.U]] += e.W
	}
	for v := 0; v < g.N; v++ {
		size[comp[v]]++
	}
	type cl struct {
		size int
		w    float64
	}
	var all []cl
	for c, s := range size {
		all = append(all, cl{s, weight[c]})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].size > all[j].size })
	fmt.Println("\nlargest clusters (size, transmission-tree cost):")
	for i := 0; i < 5 && i < len(all); i++ {
		fmt.Printf("  #%d: %5d individuals, cost %.2f\n", i+1, all[i].size, all[i].w)
	}

	if stats.MSTBC != nil {
		fmt.Printf("\nMST-BC ran %d parallel levels, grew %d trees at level 1\n",
			len(stats.MSTBC.Levels), stats.MSTBC.Levels[0].Trees)
	}
	if err := pmsf.Verify(g, forest); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: one MST per component")
}

// componentOf labels each vertex with its component via union-find over
// the forest edges (the forest spans every component by construction).
func componentOf(g *pmsf.Graph, forest *pmsf.Forest) []int32 {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, id := range forest.EdgeIDs {
		e := g.Edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	out := make([]int32, g.N)
	for v := range out {
		out[v] = find(int32(v))
	}
	return out
}
