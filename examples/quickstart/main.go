// Quickstart: build a graph, compute its minimum spanning forest with
// every algorithm in the library, and verify the results agree.
package main

import (
	"fmt"
	"log"

	"pmsf"
)

func main() {
	// A random sparse graph: 50,000 vertices, 300,000 edges, weights
	// uniform in [0,1). Generators are deterministic in the seed.
	g := pmsf.RandomGraph(50_000, 300_000, 42)
	fmt.Printf("graph: n=%d m=%d\n\n", g.N, len(g.Edges))

	// Every algorithm computes the same forest weight (the MSF is unique
	// for distinct weights).
	for _, algo := range pmsf.Algorithms() {
		forest, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
			Workers: 4, // parallel algorithms only; ignored by Prim etc.
			Seed:    1,
		})
		if err != nil {
			log.Fatalf("%v: %v", algo, err)
		}
		fmt.Printf("%-9s weight=%.4f edges=%d components=%d\n",
			algo, forest.Weight, forest.Size(), forest.Components)
	}

	// Forests carry the indices of the selected input edges, so the
	// actual edges are easy to materialize.
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{})
	if err != nil {
		log.Fatal(err)
	}
	edges := forest.Edges(g)
	fmt.Printf("\nfirst three MSF edges: %v %v %v\n", edges[0], edges[1], edges[2])

	// Verify checks the result against an independent reference.
	if err := pmsf.Verify(g, forest); err != nil {
		log.Fatal(err)
	}
	fmt.Println("verified: result is a minimum spanning forest")
}
