package pmsf_test

// FuzzEngineParity decodes an arbitrary byte string into a small
// multigraph — with a weight alphabet biased toward duplicates, zeros,
// negatives and extremes — and asserts that the two lock-free engines
// (Bor-CAS, Bor-WM) agree with SeqKruskal on forest weight, edge count
// and component count. Run continuously by the CI fuzz-smoke job.

import (
	"math"
	"testing"

	"pmsf"
)

// decodeFuzzGraph maps data to a graph: byte 0 picks the vertex count in
// [1, 64], then each 4-byte record is one edge (u, v, weight selector,
// weight operand). Self-loops and parallel edges come out of the decoder
// naturally; the record count is capped to keep single cases fast.
func decodeFuzzGraph(data []byte) *pmsf.Graph {
	if len(data) == 0 {
		return nil
	}
	n := 1 + int(data[0])%64
	rest := data[1:]
	const maxEdges = 2048
	if len(rest) > 4*maxEdges {
		rest = rest[:4*maxEdges]
	}
	var edges []pmsf.Edge
	for i := 0; i+4 <= len(rest); i += 4 {
		u := int32(int(rest[i]) % n)
		v := int32(int(rest[i+1]) % n)
		op := float64(rest[i+3])
		var w float64
		switch rest[i+2] % 8 {
		case 0:
			w = 0
		case 1:
			w = 1
		case 2:
			w = -1
		case 3:
			w = op // small ints: heavy duplicates
		case 4:
			w = -op
		case 5:
			w = op + op/256 // fractional near-ties
		case 6:
			w = 1e9 * op
		default:
			w = -1e9 * op
		}
		edges = append(edges, pmsf.Edge{U: u, V: v, W: w})
	}
	return pmsf.NewGraph(n, edges)
}

func FuzzEngineParity(f *testing.F) {
	// Seed corpus: empty graph, a triangle with duplicate weights, a
	// star with all-equal weights, negatives, extremes, parallel edges.
	f.Add([]byte{4})
	f.Add([]byte{2, 0, 1, 3, 5, 1, 2, 3, 5, 0, 2, 3, 5})
	f.Add([]byte{7, 0, 1, 1, 0, 0, 2, 1, 0, 0, 3, 1, 0, 0, 4, 1, 0})
	f.Add([]byte{10, 1, 2, 2, 9, 2, 3, 4, 9, 3, 4, 7, 9, 4, 5, 6, 9})
	f.Add([]byte{5, 0, 1, 3, 200, 0, 1, 3, 200, 1, 1, 0, 0, 2, 3, 6, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		g := decodeFuzzGraph(data)
		if g == nil {
			t.Skip()
		}
		ref, _, err := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
		if err != nil {
			t.Skip() // decoder produced an invalid graph; not interesting
		}
		for _, algo := range []pmsf.Algorithm{pmsf.BorCAS, pmsf.BorWM} {
			f2, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: 4})
			if err != nil {
				t.Fatalf("%v: %v", algo, err)
			}
			if f2.Size() != ref.Size() || f2.Components != ref.Components {
				t.Fatalf("%v: got %d edges / %d components, Kruskal %d / %d",
					algo, f2.Size(), f2.Components, ref.Size(), ref.Components)
			}
			if d := math.Abs(f2.Weight - ref.Weight); d > 1e-9*(1+math.Abs(ref.Weight)) {
				t.Fatalf("%v: weight %v, Kruskal %v (Δ %g)", algo, f2.Weight, ref.Weight, d)
			}
		}
	})
}
