package pmsf_test

import (
	"fmt"
	"math"
	"runtime"
	"testing"

	"pmsf"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// The stress matrix: ~200 seeded graphs across random, geometric, mesh,
// structured and adversarial shapes (disconnected, self-loop-heavy,
// duplicate-edge, zero/negative-weight), each solved by every algorithm
// in Algorithms() — including the lock-free Bor-CAS and Bor-WM engines —
// at several worker counts. Every run must agree with the others on
// forest weight and component count, and one result per graph is fully
// verified against the library's independent checker.

// stressCase is one input graph of the matrix.
type stressCase struct {
	name string
	g    *graph.EdgeList
}

// mutate applies an adversarial transformation to roughly every third
// graph: self-loop injection, edge duplication, or weight flattening to
// zero/negative values. The RNG is seeded per graph, so the matrix is
// reproducible.
func mutate(g *graph.EdgeList, kind int, seed uint64) (*graph.EdgeList, string) {
	out := g.Clone()
	r := rng.New(seed)
	switch kind {
	case 1: // self-loop heavy: one loop per ~4 vertices
		if out.N > 0 {
			for i := 0; i < out.N/4+1; i++ {
				v := int32(r.Intn(out.N))
				out.Edges = append(out.Edges, graph.Edge{U: v, V: v, W: r.Float64()})
			}
		}
		return out, "selfloops"
	case 2: // duplicate ~half the edges, some with identical weights
		for i := 0; i < len(g.Edges)/2; i++ {
			e := g.Edges[r.Intn(len(g.Edges))]
			if r.Intn(2) == 0 {
				e.W = r.Float64()
			}
			out.Edges = append(out.Edges, e)
		}
		return out, "dupes"
	case 3: // zero and negative weights
		for i := range out.Edges {
			switch r.Intn(3) {
			case 0:
				out.Edges[i].W = 0
			case 1:
				out.Edges[i].W = -r.Float64()
			}
		}
		return out, "zeroneg"
	}
	return out, "plain"
}

// stressCases builds the seeded graph matrix. count bounds the number of
// cases (the -short run uses a small fraction).
func stressCases(count int) []stressCase {
	var cases []stressCase
	add := func(name string, g *graph.EdgeList) {
		if len(cases) < count {
			cases = append(cases, stressCase{name, g})
		}
	}
	seed := uint64(1)
	next := func() uint64 { seed++; return seed * 0x9e3779b97f4a7c15 }

	// Degenerate shapes first: they catch boundary bugs cheapest.
	add("empty", &graph.EdgeList{N: 0})
	add("one-vertex", &graph.EdgeList{N: 1})
	add("isolated", &graph.EdgeList{N: 17})
	add("single-edge", &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}})
	add("self-loop-only", &graph.EdgeList{N: 3, Edges: []graph.Edge{{U: 1, V: 1, W: 1}}})
	add("tied-weights", gen.Reweight(gen.Random(40, 120, next()), gen.WeightsSmallInts, 7))

	// Seeded sweeps over the generator families with mutations.
	for round := 0; ; round++ {
		if len(cases) >= count {
			break
		}
		s := next()
		n := 20 + int(s%240)
		family := []struct {
			name string
			g    *graph.EdgeList
		}{
			{"random", gen.Random(n, 3*n, s)},
			{"random-sparse", gen.Random(n, n/2, s)}, // usually disconnected
			{"geometric", gen.Geometric(n, 4, s)},
			{"mesh", gen.Mesh2D(isqrt(n), isqrt(n)+1, s)},
			{"path", gen.Path(n, s)},
			{"star", gen.Star(n, s)},
			{"cycle", gen.Cycle(n, s)},
			{"bipartite", gen.CompleteBipartite(n/8+1, n/8+2, s)},
			{"str1", gen.Str1(n, s)},
			{"str2", gen.Str2(n, s)},
			{"caterpillar", gen.Caterpillar(n/4+1, 3, s)},
		}
		for i, f := range family {
			g, tag := mutate(f.g, (round+i)%4, s+uint64(i))
			add(fmt.Sprintf("%s-%s-n%d-r%d", f.name, tag, g.N, round), g)
		}
	}
	return cases
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func TestStressAllAlgorithmsAgree(t *testing.T) {
	count := 200
	if testing.Short() {
		count = 40
	}
	workerSet := []int{1, 2, runtime.GOMAXPROCS(0)}
	cases := stressCases(count)
	if len(cases) < count {
		t.Fatalf("built %d cases, want %d", len(cases), count)
	}
	for i, tc := range cases {
		tc := tc
		verifySeed := uint64(i)
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			type result struct {
				algo    string
				weight  float64
				comps   int
				nEdges  int
				workers int
			}
			var ref *result
			check := func(algo pmsf.Algorithm, workers int) {
				f, _, err := pmsf.MinimumSpanningForest(tc.g, algo, pmsf.Options{
					Workers: workers, Seed: verifySeed + uint64(workers),
				})
				if err != nil {
					t.Fatalf("%v p=%d: %v", algo, workers, err)
				}
				got := &result{algo.String(), f.Weight, f.Components, len(f.EdgeIDs), workers}
				if ref == nil {
					ref = got
					// Full structural verification once per graph: the other
					// runs are checked for agreement against this one.
					if err := pmsf.Verify(tc.g, f); err != nil {
						t.Fatalf("%v p=%d: %v", algo, workers, err)
					}
					return
				}
				if got.comps != ref.comps || got.nEdges != ref.nEdges {
					t.Fatalf("%v p=%d: %d components / %d edges, want %d / %d (ref %s p=%d)",
						algo, workers, got.comps, got.nEdges, ref.comps, ref.nEdges, ref.algo, ref.workers)
				}
				if math.Abs(got.weight-ref.weight) > 1e-9*(1+math.Abs(ref.weight)) {
					t.Fatalf("%v p=%d: weight %v, want %v (ref %s p=%d)",
						algo, workers, got.weight, ref.weight, ref.algo, ref.workers)
				}
			}
			for _, algo := range pmsf.Algorithms() {
				if algo.Parallel() {
					for _, p := range workerSet {
						check(algo, p)
					}
				} else {
					check(algo, 1)
				}
			}
		})
	}
}
