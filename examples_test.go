package pmsf_test

// Every example program must build and run to completion. The examples
// are real programs (not Example functions), so they are executed via
// `go run`; skipped in -short mode.

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 3 {
		t.Fatalf("only %d examples", len(entries))
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		name := e.Name()
		t.Run(name, func(t *testing.T) {
			cmd := exec.Command("go", "run", "./"+filepath.Join("examples", name))
			cmd.Env = os.Environ()
			start := time.Now()
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("%v\noutput:\n%s", err, out)
			}
			if strings.TrimSpace(string(out)) == "" {
				t.Fatal("example produced no output")
			}
			t.Logf("%s ran in %v, %d bytes of output", name, time.Since(start), len(out))
		})
	}
}
