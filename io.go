package pmsf

import (
	"fmt"
	"io"
	"os"

	"pmsf/internal/graph"
)

// GraphFormat names an on-disk graph format: "binary" (the library's
// native format), "text" ("n m" header plus "u v w" lines), "dimacs"
// (DIMACS edge/arc challenge format) or "metis" (METIS adjacency
// format).
type GraphFormat = graph.Format

// Graph format constants.
const (
	FormatBinary = graph.FormatBinary
	FormatText   = graph.FormatText
	FormatDIMACS = graph.FormatDIMACS
	FormatMETIS  = graph.FormatMETIS
)

// ParseGraphFormat resolves a format name ("binary", "text", "dimacs",
// "metis", case insensitive).
func ParseGraphFormat(name string) (GraphFormat, error) {
	return graph.ParseFormat(name)
}

// ReadGraph reads a graph from r in the given format and validates it.
func ReadGraph(r io.Reader, format GraphFormat) (*Graph, error) {
	g, err := format.Read(r)
	if err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteGraph writes g to w in the given format.
func WriteGraph(w io.Writer, g *Graph, format GraphFormat) error {
	if g == nil {
		return fmt.Errorf("pmsf: nil graph")
	}
	return format.Write(w, g)
}

// ReadGraphFile reads a graph from a file.
func ReadGraphFile(path string, format GraphFormat) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadGraph(f, format)
}

// WriteGraphFile writes a graph to a file.
func WriteGraphFile(path string, g *Graph, format GraphFormat) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteGraph(f, g, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// GraphStatistics summarizes a graph's structure (density, degree
// distribution, components) — the Section 5.1 characterization of the
// paper's input families.
type GraphStatistics = graph.Stats

// ComputeGraphStatistics calculates GraphStatistics for g.
func ComputeGraphStatistics(g *Graph) GraphStatistics {
	return graph.ComputeStats(g)
}

// WriteForest writes a computed forest (its edge ids, component count
// and weight) in a small text format readable by ReadForest.
func WriteForest(w io.Writer, f *Forest) error {
	return graph.WriteForest(w, f)
}

// ReadForest reads a forest written by WriteForest. Use Verify with the
// original graph to validate it.
func ReadForest(r io.Reader) (*Forest, error) {
	return graph.ReadForest(r)
}

// MutationBatch is one batch of edge mutations against a graph: edges
// to add and edges to delete (identified by value, either orientation,
// exact weight). It is the unit Dynamic.ApplyEdges consumes.
type MutationBatch = graph.MutationBatch

// EdgeStream is a reproducible dynamic-MSF workload: an ordered
// sequence of mutation batches against a graph with N vertices.
// graphgen -mutations emits one; msf-verify -replay and msf-bench's
// dynamic mode consume one.
type EdgeStream = graph.EdgeStream

// WriteEdgeStream writes s in the library's text stream format
// ("pmsf-stream 1" header, "n", then "batch"/"+"/"-" lines).
func WriteEdgeStream(w io.Writer, s *EdgeStream) error {
	return graph.WriteEdgeStream(w, s)
}

// ReadEdgeStream parses the text stream format written by
// WriteEdgeStream, rejecting structural errors with line numbers.
func ReadEdgeStream(r io.Reader) (*EdgeStream, error) {
	return graph.ReadEdgeStream(r)
}

// ReadEdgeStreamFile reads a mutation stream from a file.
func ReadEdgeStreamFile(path string) (*EdgeStream, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.ReadEdgeStream(f)
}
