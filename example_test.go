package pmsf_test

// Godoc examples for the main public entry points.

import (
	"fmt"

	"pmsf"
)

func ExampleConnectedComponents() {
	// Two triangles and an isolated vertex: three components.
	g := pmsf.NewGraph(7, []pmsf.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 1}, {U: 0, V: 2, W: 1},
		{U: 3, V: 4, W: 1}, {U: 4, V: 5, W: 1}, {U: 3, V: 5, W: 1},
	})
	labels, k, err := pmsf.ConnectedComponents(g, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(k, labels)
	// Output: 3 [0 0 0 1 1 1 2]
}

func ExampleOptions_collectStats() {
	g := pmsf.RandomGraph(10_000, 60_000, 7)
	_, stats, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{
		CollectStats: true,
	})
	if err != nil {
		panic(err)
	}
	// Borůvka halves the supervertex count (at least) every iteration.
	first := stats.Boruvka.Iters[0]
	second := stats.Boruvka.Iters[1]
	fmt.Println(first.N == g.N, second.N <= first.N/2)
	// Output: true true
}

func ExampleVerify() {
	g := pmsf.RandomGraph(1_000, 5_000, 3)
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.MSTBC, pmsf.Options{Workers: 4})
	if err != nil {
		panic(err)
	}
	fmt.Println(pmsf.Verify(g, forest))
	// Output: <nil>
}

func ExampleParseAlgorithm() {
	algo, err := pmsf.ParseAlgorithm("bor-fal")
	if err != nil {
		panic(err)
	}
	fmt.Println(algo, algo.Parallel())
	// Output: Bor-FAL true
}

func ExampleForest_Edges() {
	g := pmsf.NewGraph(3, []pmsf.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	})
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
	if err != nil {
		panic(err)
	}
	for _, e := range forest.Edges(g) {
		fmt.Printf("%d-%d (%.0f)\n", e.U, e.V, e.W)
	}
	// Output:
	// 0-1 (1)
	// 1-2 (2)
}
