package pmsf

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus ablation benches for the design choices DESIGN.md calls out. The
// experiment harness (cmd/msf-bench) regenerates the full artifacts; the
// benches here are the stable, profileable entry points for each of them.
//
// Inputs are cached per size so graph generation is excluded from timing.

import (
	"fmt"
	"runtime"
	"sync"
	"testing"

	"pmsf/internal/boruvka"
	"pmsf/internal/concomp"
	"pmsf/internal/filter"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/mstbc"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/seq"
	"pmsf/internal/sorts"
)

const benchN = 10_000 // vertex count of the benchmark inputs

var (
	graphCacheMu sync.Mutex
	graphCache   = map[string]*graph.EdgeList{}
)

func cachedGraph(name string, make func() *graph.EdgeList) *graph.EdgeList {
	graphCacheMu.Lock()
	defer graphCacheMu.Unlock()
	g, ok := graphCache[name]
	if !ok {
		g = make()
		graphCache[name] = g
	}
	return g
}

func randomGraph(ratio int) *graph.EdgeList {
	return cachedGraph(fmt.Sprintf("random-%dx", ratio), func() *graph.EdgeList {
		return gen.Random(benchN, ratio*benchN, 42)
	})
}

func meshGraph(name string) *graph.EdgeList {
	return cachedGraph(name, func() *graph.EdgeList {
		switch name {
		case "mesh":
			side := 100
			return gen.Mesh2D(side, side, 42)
		case "geometric-k6":
			return gen.Geometric(benchN, 6, 42)
		case "2D60":
			return gen.Mesh2D60(100, 100, 42)
		default: // 3D40
			return gen.Mesh3D40(22, 42)
		}
	})
}

func strGraph(name string) *graph.EdgeList {
	return cachedGraph(name, func() *graph.EdgeList {
		switch name {
		case "str0":
			return gen.Str0(benchN, 42)
		case "str1":
			return gen.Str1(benchN, 42)
		case "str2":
			return gen.Str2(benchN, 42)
		default:
			return gen.Str3(benchN, 42)
		}
	})
}

type parVariant struct {
	name string
	run  func(*graph.EdgeList, int) *graph.Forest
}

func parVariants() []parVariant {
	return []parVariant{
		{"Bor-EL", func(g *graph.EdgeList, p int) *graph.Forest {
			f, _ := boruvka.EL(g, boruvka.Options{Workers: p, Seed: 1})
			return f
		}},
		{"Bor-AL", func(g *graph.EdgeList, p int) *graph.Forest {
			f, _ := boruvka.AL(g, boruvka.Options{Workers: p, Seed: 1})
			return f
		}},
		{"Bor-ALM", func(g *graph.EdgeList, p int) *graph.Forest {
			f, _ := boruvka.ALM(g, boruvka.Options{Workers: p, Seed: 1})
			return f
		}},
		{"Bor-FAL", func(g *graph.EdgeList, p int) *graph.Forest {
			f, _ := boruvka.FAL(g, boruvka.Options{Workers: p, Seed: 1})
			return f
		}},
		{"MST-BC", func(g *graph.EdgeList, p int) *graph.Forest {
			f, _ := mstbc.Run(g, mstbc.Options{Workers: p, Seed: 1})
			return f
		}},
	}
}

// BenchmarkTable1EdgeDecay regenerates Table 1's measurement: a full
// instrumented Bor-EL run on the G1-class random graph (n, 6n).
func BenchmarkTable1EdgeDecay(b *testing.B) {
	g := randomGraph(6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, stats := boruvka.EL(g, boruvka.Options{Stats: true, Seed: 1})
		if len(stats.Iters) == 0 {
			b.Fatal("no iterations recorded")
		}
	}
}

// BenchmarkFig2StepBreakdown times each Borůvka variant on the Fig. 2
// inputs (random graphs with m = 4n, 6n, 10n); per-step attribution comes
// from `msf-bench -exp fig2`.
func BenchmarkFig2StepBreakdown(b *testing.B) {
	for _, ratio := range []int{4, 6, 10} {
		g := randomGraph(ratio)
		for _, v := range parVariants()[:4] {
			b.Run(fmt.Sprintf("%s/m=%dx", v.name, ratio), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					v.run(g, 0)
				}
			})
		}
	}
}

// BenchmarkFig3Sequential ranks the sequential baselines across graph
// families (Fig. 3).
func BenchmarkFig3Sequential(b *testing.B) {
	inputs := map[string]*graph.EdgeList{
		"random-6x": randomGraph(6),
		"mesh":      meshGraph("mesh"),
		"geometric": meshGraph("geometric-k6"),
		"str0":      strGraph("str0"),
	}
	algos := []struct {
		name string
		run  func(*graph.EdgeList) *graph.Forest
	}{
		{"Prim", seq.Prim},
		{"Kruskal", seq.Kruskal},
		{"Boruvka", seq.Boruvka},
	}
	for gname, g := range inputs {
		for _, a := range algos {
			b.Run(fmt.Sprintf("%s/%s", a.name, gname), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					a.run(g)
				}
			})
		}
	}
}

// BenchmarkFig4Random sweeps the parallel algorithms over the Fig. 4
// random graphs (m = 4n, 6n, 10n, 20n) and worker counts.
func BenchmarkFig4Random(b *testing.B) {
	for _, ratio := range []int{4, 6, 10, 20} {
		g := randomGraph(ratio)
		for _, v := range parVariants() {
			for _, p := range []int{1, 4} {
				b.Run(fmt.Sprintf("m=%dx/%s/p=%d", ratio, v.name, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						v.run(g, p)
					}
				})
			}
		}
	}
}

// BenchmarkFig5Mesh sweeps the parallel algorithms over the Fig. 5 mesh
// and geometric inputs.
func BenchmarkFig5Mesh(b *testing.B) {
	for _, name := range []string{"mesh", "geometric-k6", "2D60", "3D40"} {
		g := meshGraph(name)
		for _, v := range parVariants() {
			for _, p := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/p=%d", name, v.name, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						v.run(g, p)
					}
				})
			}
		}
	}
}

// BenchmarkFig6Structured sweeps the parallel algorithms over the Fig. 6
// structured worst cases str0-str3.
func BenchmarkFig6Structured(b *testing.B) {
	for _, name := range []string{"str0", "str1", "str2", "str3"} {
		g := strGraph(name)
		for _, v := range parVariants() {
			for _, p := range []int{1, 4} {
				b.Run(fmt.Sprintf("%s/%s/p=%d", name, v.name, p), func(b *testing.B) {
					for i := 0; i < b.N; i++ {
						v.run(g, p)
					}
				})
			}
		}
	}
}

// BenchmarkAblationSortCutoff varies Bor-AL's insertion-sort cutoff (A1):
// the paper's profiling argument that most per-vertex lists are short and
// insertion sort should handle them.
func BenchmarkAblationSortCutoff(b *testing.B) {
	g := randomGraph(6)
	for _, cutoff := range []int{2, 8, 32, 128, 1 << 20} {
		b.Run(fmt.Sprintf("cutoff=%d", cutoff), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				boruvka.AL(g, boruvka.Options{InsertionCutoff: cutoff, Seed: 1})
			}
		})
	}
}

// BenchmarkAblationArena compares Bor-AL's shared-heap allocation against
// Bor-ALM's reused per-worker buffers (A2); -benchmem shows the
// allocation gap that models the paper's malloc-contention fix.
func BenchmarkAblationArena(b *testing.B) {
	g := randomGraph(6)
	b.Run("heap/Bor-AL", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			boruvka.AL(g, boruvka.Options{Seed: 1})
		}
	})
	b.Run("arena/Bor-ALM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			boruvka.ALM(g, boruvka.Options{Seed: 1})
		}
	})
}

// BenchmarkAblationPermutation toggles MST-BC's randomized claim order
// (A3), the paper's progress guarantee.
func BenchmarkAblationPermutation(b *testing.B) {
	g := randomGraph(6)
	for _, noPerm := range []bool{false, true} {
		name := "permuted"
		if noPerm {
			name = "natural-order"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mstbc.Run(g, mstbc.Options{Workers: 4, NoPermute: noPerm, Seed: 1})
			}
		})
	}
}

// BenchmarkAblationKruskalSort reproduces the paper's Section 5.2
// engineering comparison: Kruskal with a non-recursive merge sort (the
// paper's pick) against recursive merge sort, quicksort and the stdlib
// sort.
func BenchmarkAblationKruskalSort(b *testing.B) {
	g := randomGraph(10)
	for _, es := range seq.EdgeSorts() {
		b.Run(es.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.KruskalWithSort(g, es)
			}
		})
	}
	b.Run("filter-kruskal", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			seq.FilterKruskal(g)
		}
	})
}

// BenchmarkAblationPrimHeap compares Prim over the binary heap against
// the pairing heap (the Moret-Shapiro priority-queue comparison behind
// the paper's choice of sequential baseline).
func BenchmarkAblationPrimHeap(b *testing.B) {
	g := randomGraph(6)
	for _, pq := range seq.PrimPQs() {
		b.Run(pq.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				seq.PrimWithHeap(g, pq)
			}
		})
	}
}

// BenchmarkAblationTeam compares the fork-join Do primitive against a
// persistent SPMD worker team (the paper's SIMPLE runtime model) on a
// phase-heavy microworkload resembling a Borůvka iteration structure.
func BenchmarkAblationTeam(b *testing.B) {
	const phases, work = 64, 1 << 14
	data := make([]int64, work)
	body := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	}
	b.Run("fork-join", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for ph := 0; ph < phases; ph++ {
				par.For(4, work, func(_, lo, hi int) { body(lo, hi) })
			}
		}
	})
	b.Run("team", func(b *testing.B) {
		team := par.NewTeam(4)
		defer team.Close()
		for i := 0; i < b.N; i++ {
			for ph := 0; ph < phases; ph++ {
				team.For(work, func(_, lo, hi int) { body(lo, hi) })
			}
		}
	})
}

// BenchmarkFilter compares the sampling-based edge filter against plain
// Bor-FAL across densities (the Section 3 "exclude heavy edges early"
// extension): the filter's advantage grows with m/n.
func BenchmarkFilter(b *testing.B) {
	for _, ratio := range []int{6, 20} {
		g := randomGraph(ratio)
		b.Run(fmt.Sprintf("filter/m=%dx", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				filter.Run(g, filter.Options{Seed: 1})
			}
		})
		b.Run(fmt.Sprintf("bor-fal/m=%dx", ratio), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				boruvka.FAL(g, boruvka.Options{Seed: 1})
			}
		})
	}
}

// BenchmarkConnectedComponents times the follow-on connected-components
// algorithms built on the same substrate.
func BenchmarkConnectedComponents(b *testing.B) {
	g := randomGraph(6)
	b.Run("SV", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			concomp.SV(g, 0)
		}
	})
	b.Run("UnionFind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			concomp.UnionFind(g, 0)
		}
	})
}

// BenchmarkAblationBaseSize varies MST-BC's sequential cutoff n_b (A4).
func BenchmarkAblationBaseSize(b *testing.B) {
	g := randomGraph(6)
	for _, nb := range []int{16, 256, 4096, 1 << 16} {
		b.Run(fmt.Sprintf("nb=%d", nb), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				mstbc.Run(g, mstbc.Options{Workers: 4, BaseSize: nb, Seed: 1})
			}
		})
	}
}

// BenchmarkAblationParallelSort compares the two parallel sorting
// engines on the Bor-EL edge-sort workload: Helman-JáJá sample sort (the
// paper's choice) vs pairwise parallel merge sort.
func BenchmarkAblationParallelSort(b *testing.B) {
	g := randomGraph(10)
	lessW := func(x, y graph.WEdge) bool {
		if x.U != y.U {
			return x.U < y.U
		}
		if x.V != y.V {
			return x.V < y.V
		}
		if x.W != y.W {
			return x.W < y.W
		}
		return x.ID < y.ID
	}
	b.Run("sample-sort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			l := graph.DirectedWorkList(g)
			b.StartTimer()
			sorts.SampleSort(4, l, lessW, 1)
		}
	})
	b.Run("parallel-merge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			l := graph.DirectedWorkList(g)
			b.StartTimer()
			sorts.ParallelMergeSort(4, l, lessW)
		}
	})
}

// BenchmarkAblationELSortEngine runs Bor-EL end to end under each
// parallel sort engine (the compact-graph step is ~95% of its time, so
// this isolates the Helman-JáJá sample sort against parallel merge sort
// in situ).
func BenchmarkAblationELSortEngine(b *testing.B) {
	g := randomGraph(6)
	for _, engine := range boruvka.SortEngines() {
		b.Run(engine.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				boruvka.EL(g, boruvka.Options{SortEngine: engine, Seed: 1})
			}
		})
	}
}

// BenchmarkEngineMatrix runs the lock-free engines (Bor-CAS, Bor-WM)
// against the Bor-EL reference, end to end through the public API,
// across low-diameter and tie-heavy families — the stable entry point
// behind msf-bench -benchjson's engine rows (results/BENCH_PR6.json).
func BenchmarkEngineMatrix(b *testing.B) {
	families := []struct {
		name string
		g    *graph.EdgeList
	}{
		{"random-6x", randomGraph(6)},
		{"random-6x-ties", cachedGraph("random-6x-ties", func() *graph.EdgeList {
			return gen.Reweight(gen.Random(benchN, 6*benchN, 42), gen.WeightsSmallInts, 43)
		})},
		{"star", cachedGraph("star", func() *graph.EdgeList { return gen.Star(benchN, 42) })},
		{"mesh", meshGraph("mesh")},
	}
	for _, fam := range families {
		for _, algo := range []Algorithm{BorEL, BorCAS, BorWM} {
			for _, p := range []int{1, 4, 8} {
				b.Run(fmt.Sprintf("%s/%v/p=%d", fam.name, algo, p), func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						if _, _, err := MinimumSpanningForest(fam.g, algo, Options{
							Workers: p, Seed: 1,
						}); err != nil {
							b.Fatal(err)
						}
					}
				})
			}
		}
	}
}

// BenchmarkObsOverhead measures the observability tax on Bor-EL: the
// disabled path (nil collector, metrics off) must match the
// uninstrumented implementation within noise, while the traced run shows
// what full span collection costs. Allocation reporting pins the
// disabled path at zero obs-attributable allocations beyond the
// algorithm's own.
func BenchmarkObsOverhead(b *testing.B) {
	g := randomGraph(6)
	b.Run("disabled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			boruvka.EL(g, boruvka.Options{Seed: 1})
		}
	})
	b.Run("traced", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := obs.NewCollector()
			boruvka.EL(g, boruvka.Options{Seed: 1, Trace: c})
			if len(c.Spans()) == 0 {
				b.Fatal("no spans recorded")
			}
		}
	})
}

// BenchmarkCompactGraphEngines measures the compact-graph kernel in
// isolation: one CompactWorkListWith call per iteration, across the
// sample sort, the sequential ten-pass full-key radix, and the
// packed-key parallel radix compactor, at several worker counts and
// duplicate-run skew levels. skew=c folds the vertex space by c,
// simulating a late Borůvka round where each supervertex pair carries
// many parallel edges — the regime the (W, ID) min-reduction targets.
func BenchmarkCompactGraphEngines(b *testing.B) {
	base := randomGraph(6)
	for _, skew := range []int{1, 16, 256} {
		edges := graph.DirectedWorkList(base)
		n := base.N
		if skew > 1 {
			n = base.N / skew
			for i := range edges {
				edges[i].U %= int32(n)
				edges[i].V %= int32(n)
			}
		}
		for _, engine := range []boruvka.SortEngine{
			boruvka.SortSampleSort, boruvka.SortRadix, boruvka.SortParallelRadix,
		} {
			for _, p := range []int{1, 4, 8} {
				if engine == boruvka.SortRadix && p > 1 {
					continue // sequential engine; p changes nothing
				}
				b.Run(fmt.Sprintf("skew=%d/%s/p=%d", skew, engine, p), func(b *testing.B) {
					work := make([]graph.WEdge, len(edges))
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						b.StopTimer()
						copy(work, edges)
						b.StartTimer()
						boruvka.CompactWorkListWith(engine, p, work, n, 1)
					}
				})
			}
		}
	}
}

// BenchmarkCompactScaling is the p-scaling view of the packed-key
// parallel radix compactor alone: the same uniform working list at
// p = 1, 2, 4, with the runtime's actual parallelism budget reported
// per entry so a run on a starved scheduler is visible in the output
// (gomaxprocs/numcpu metrics) rather than masquerading as a scaling
// measurement. cmd/benchguard runs the bench.CompactScalingBench twin
// of this as a hard CI gate.
func BenchmarkCompactScaling(b *testing.B) {
	base := randomGraph(6)
	edges := graph.DirectedWorkList(base)
	n := base.N
	for _, p := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			work := make([]graph.WEdge, len(edges))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(work, edges)
				b.StartTimer()
				boruvka.CompactWorkListWith(boruvka.SortParallelRadix, p, work, n, 1)
			}
			b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
			b.ReportMetric(float64(runtime.NumCPU()), "numcpu")
		})
	}
}
