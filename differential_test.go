package pmsf_test

// The cross-engine differential matrix: every algorithm is checked
// against SeqKruskal — identical forest weight, edge count and component
// count — over inputs chosen to break tie handling and contraction:
// duplicate weights, all-equal weights, negative weights, cliques,
// disconnected shards, self-loops and parallel edges. Conformance checks
// each engine against the oracle; this file checks the engines against
// each other through the common reference, which is what pins the
// equal-weight matroid-exchange guarantees of Bor-CAS and the packed-key
// total order of Bor-WM.

import (
	"fmt"
	"math"
	"testing"

	"pmsf"
	"pmsf/internal/gen"
	"pmsf/internal/rng"
)

// reweightConst sets every edge weight to w.
func reweightConst(g *pmsf.Graph, w float64) *pmsf.Graph {
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W = w
	}
	return out
}

// reweightSigned redraws weights uniformly from (-1, 1).
func reweightSigned(g *pmsf.Graph, seed uint64) *pmsf.Graph {
	r := rng.New(seed)
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W = 2*r.Float64() - 1
	}
	return out
}

// clique returns K_n with small-integer weights (dense ties).
func clique(n int, seed uint64) *pmsf.Graph {
	r := rng.New(seed)
	var edges []pmsf.Edge
	for u := int32(0); u < int32(n); u++ {
		for v := u + 1; v < int32(n); v++ {
			edges = append(edges, pmsf.Edge{U: u, V: v, W: float64(r.Intn(5))})
		}
	}
	return pmsf.NewGraph(n, edges)
}

// shards returns k disjoint random blobs plus a tail of isolated
// vertices: the disconnected multi-component case.
func shards(k, n, m int, seed uint64) *pmsf.Graph {
	var edges []pmsf.Edge
	for s := 0; s < k; s++ {
		blob := gen.Random(n, m, seed+uint64(s))
		off := int32(s * n)
		for _, e := range blob.Edges {
			edges = append(edges, pmsf.Edge{U: e.U + off, V: e.V + off, W: e.W})
		}
	}
	return pmsf.NewGraph(k*n+17, edges)
}

// decorated adds a self-loop per tenth vertex and a heavier parallel
// twin per third edge.
func decorated(g *pmsf.Graph, seed uint64) *pmsf.Graph {
	r := rng.New(seed)
	out := g.Clone()
	for v := int32(0); v < int32(out.N); v += 10 {
		out.Edges = append(out.Edges, pmsf.Edge{U: v, V: v, W: r.Float64()})
	}
	for i := 0; i < len(g.Edges); i += 3 {
		e := g.Edges[i]
		out.Edges = append(out.Edges, pmsf.Edge{U: e.U, V: e.V, W: e.W + r.Float64()})
	}
	return out
}

func adversarialFamilies() []familySpec {
	return []familySpec{
		{"dup-weights", func() *pmsf.Graph {
			return gen.Reweight(gen.Random(900, 5400, 30), gen.WeightsSmallInts, 31)
		}},
		{"all-equal", func() *pmsf.Graph {
			return reweightConst(gen.Random(900, 4500, 32), 2.5)
		}},
		{"negative", func() *pmsf.Graph {
			return reweightSigned(gen.Random(900, 4500, 33), 34)
		}},
		{"all-negative", func() *pmsf.Graph {
			return reweightConst(gen.Random(700, 3500, 35), -1)
		}},
		{"structured", func() *pmsf.Graph {
			return gen.Reweight(gen.Random(900, 5400, 36), gen.WeightsStructured, 37)
		}},
		{"clique", func() *pmsf.Graph { return clique(45, 38) }},
		{"shards", func() *pmsf.Graph { return shards(6, 200, 700, 39) }},
		{"decorated", func() *pmsf.Graph {
			return decorated(gen.Random(800, 3200, 40), 41)
		}},
		{"decorated-ties", func() *pmsf.Graph {
			return decorated(gen.Reweight(gen.Random(800, 3200, 42), gen.WeightsSmallInts, 43), 44)
		}},
		{"star-ties", func() *pmsf.Graph {
			return gen.Reweight(gen.Star(1200, 45), gen.WeightsSmallInts, 46)
		}},
		{"path-ties", func() *pmsf.Graph {
			return gen.Reweight(gen.Path(1200, 47), gen.WeightsSmallInts, 48)
		}},
	}
}

func TestCrossEngineDifferential(t *testing.T) {
	workerCounts := []int{1, 2, 8}
	if testing.Short() {
		workerCounts = []int{4}
	}
	for _, fam := range adversarialFamilies() {
		g := fam.make()
		ref, _, err := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
		if err != nil {
			t.Fatalf("%s: reference: %v", fam.name, err)
		}
		for _, algo := range pmsf.Algorithms() {
			if algo == pmsf.SeqKruskal {
				continue
			}
			for _, p := range workerCounts {
				if !algo.Parallel() && p != workerCounts[0] {
					continue
				}
				t.Run(fmt.Sprintf("%s/%v/p=%d", fam.name, algo, p), func(t *testing.T) {
					f, _, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
						Workers: p, Seed: uint64(p) + 7,
					})
					if err != nil {
						t.Fatal(err)
					}
					if f.Size() != ref.Size() || f.Components != ref.Components {
						t.Fatalf("got %d edges / %d components, Kruskal %d / %d",
							f.Size(), f.Components, ref.Size(), ref.Components)
					}
					if d := math.Abs(f.Weight - ref.Weight); d > 1e-9*(1+math.Abs(ref.Weight)) {
						t.Fatalf("weight %v, Kruskal %v (Δ %g)", f.Weight, ref.Weight, d)
					}
					if err := pmsf.Verify(g, f); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
