package pmsf_test

import (
	"fmt"
	"strings"
	"testing"

	"pmsf"
)

func TestAllAlgorithmsAgree(t *testing.T) {
	graphs := map[string]*pmsf.Graph{
		"random":    pmsf.RandomGraph(2000, 8000, 1),
		"sparse":    pmsf.RandomGraph(2000, 2100, 2),
		"mesh":      pmsf.MeshGraph(40, 40, 3),
		"2d60":      pmsf.Mesh2D60Graph(40, 40, 4),
		"3d40":      pmsf.Mesh3D40Graph(11, 5),
		"geometric": pmsf.GeometricGraph(800, 6, 6),
		"str0":      pmsf.Str0Graph(512, 7),
		"str1":      pmsf.Str1Graph(500, 8),
		"str2":      pmsf.Str2Graph(500, 9),
		"str3":      pmsf.Str3Graph(500, 10),
	}
	for gname, g := range graphs {
		var refWeight float64
		var refEdges, refComps int
		for i, algo := range pmsf.Algorithms() {
			f, stats, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: 4, Seed: 11})
			if err != nil {
				t.Fatalf("%s/%v: %v", gname, algo, err)
			}
			if stats == nil {
				t.Fatalf("%s/%v: nil stats", gname, algo)
			}
			if i == 0 {
				refWeight, refEdges, refComps = f.Weight, f.Size(), f.Components
				if err := pmsf.Verify(g, f); err != nil {
					t.Fatalf("%s/%v: %v", gname, algo, err)
				}
				continue
			}
			if d := f.Weight - refWeight; d > 1e-9 || d < -1e-9 {
				t.Errorf("%s/%v: weight %g != %g", gname, algo, f.Weight, refWeight)
			}
			if f.Size() != refEdges || f.Components != refComps {
				t.Errorf("%s/%v: shape (%d,%d) != (%d,%d)",
					gname, algo, f.Size(), f.Components, refEdges, refComps)
			}
		}
	}
}

func TestCollectStats(t *testing.T) {
	g := pmsf.RandomGraph(1000, 4000, 1)
	f, stats, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if f.Size() != g.N-1 {
		t.Fatalf("forest size %d", f.Size())
	}
	if stats.Boruvka == nil || len(stats.Boruvka.Iters) == 0 {
		t.Fatal("Borůvka stats missing")
	}
	if stats.Boruvka.Algorithm != "Bor-FAL" {
		t.Fatalf("stats algorithm %q", stats.Boruvka.Algorithm)
	}
	if stats.MSTBC != nil {
		t.Fatal("unexpected MSTBC stats")
	}

	_, stats, err = pmsf.MinimumSpanningForest(g, pmsf.MSTBC, pmsf.Options{CollectStats: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.MSTBC == nil {
		t.Fatal("MSTBC stats missing")
	}
}

func TestStatsOffByDefault(t *testing.T) {
	g := pmsf.RandomGraph(500, 2000, 1)
	_, stats, err := pmsf.MinimumSpanningForest(g, pmsf.BorEL, pmsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Boruvka == nil {
		t.Fatal("stats object missing")
	}
	if len(stats.Boruvka.Iters) != 0 {
		t.Fatal("per-iteration stats collected without CollectStats")
	}
}

func TestInputValidation(t *testing.T) {
	if _, _, err := pmsf.MinimumSpanningForest(nil, pmsf.BorEL, pmsf.Options{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := pmsf.NewGraph(2, []pmsf.Edge{{U: 0, V: 9, W: 1}})
	if _, _, err := pmsf.MinimumSpanningForest(bad, pmsf.BorEL, pmsf.Options{}); err == nil {
		t.Fatal("invalid edge accepted")
	}
	g := pmsf.RandomGraph(10, 20, 1)
	if _, _, err := pmsf.MinimumSpanningForest(g, pmsf.Algorithm(99), pmsf.Options{}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
}

func TestParseAlgorithm(t *testing.T) {
	cases := map[string]pmsf.Algorithm{
		"Bor-EL":  pmsf.BorEL,
		"bor-el":  pmsf.BorEL,
		"BOREL":   pmsf.BorEL,
		"bor-fal": pmsf.BorFAL,
		"mstbc":   pmsf.MSTBC,
		"MST-BC":  pmsf.MSTBC,
		"prim":    pmsf.SeqPrim,
		"Kruskal": pmsf.SeqKruskal,
		"boruvka": pmsf.SeqBoruvka,
	}
	for in, want := range cases {
		got, err := pmsf.ParseAlgorithm(in)
		if err != nil || got != want {
			t.Errorf("ParseAlgorithm(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := pmsf.ParseAlgorithm("dijkstra"); err == nil {
		t.Error("unknown name accepted")
	}
}

// TestParseAlgorithmRoundTrip checks the full property behind the table
// above: for every algorithm, the canonical name and its case-folded and
// dash-stripped variants all parse back to the same value, and near-miss
// strings are rejected with the name echoed in the error.
func TestParseAlgorithmRoundTrip(t *testing.T) {
	for _, a := range pmsf.Algorithms() {
		name := a.String()
		variants := []string{
			name,
			strings.ToLower(name),
			strings.ToUpper(name),
			strings.ReplaceAll(name, "-", ""),
			strings.ToLower(strings.ReplaceAll(name, "-", "")),
		}
		for _, v := range variants {
			got, err := pmsf.ParseAlgorithm(v)
			if err != nil {
				t.Errorf("ParseAlgorithm(%q): %v", v, err)
				continue
			}
			if got != a {
				t.Errorf("ParseAlgorithm(%q) = %v, want %v", v, got, a)
			}
		}
	}
	for _, bad := range []string{"", " ", "bor", "bor-", "bor-el ", "el", "-", "mst_bc", "filter2"} {
		if got, err := pmsf.ParseAlgorithm(bad); err == nil {
			t.Errorf("ParseAlgorithm(%q) = %v, want error", bad, got)
		} else if bad != "" && !strings.Contains(err.Error(), bad) {
			t.Errorf("ParseAlgorithm(%q) error does not echo the input: %v", bad, err)
		}
	}
}

func TestAlgorithmMetadata(t *testing.T) {
	if len(pmsf.Algorithms()) != 11 || len(pmsf.ParallelAlgorithms()) != 8 {
		t.Fatal("algorithm lists wrong")
	}
	for _, a := range pmsf.ParallelAlgorithms() {
		if !a.Parallel() {
			t.Errorf("%v not marked parallel", a)
		}
	}
	if pmsf.SeqPrim.Parallel() {
		t.Error("Prim marked parallel")
	}
	if pmsf.Algorithm(99).String() == "" {
		t.Error("unknown algorithm has empty String")
	}
}

func TestDeterministicResults(t *testing.T) {
	// Same options → the same forest, for every algorithm. MST-BC is
	// non-deterministic in execution order (concurrent claiming), so its
	// weight may only agree up to floating-point summation order; the
	// Borůvka variants and sequential baselines are exactly repeatable.
	g := pmsf.RandomGraph(1000, 3000, 5)
	for _, algo := range pmsf.Algorithms() {
		f1, _, err1 := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: 3, Seed: 9})
		f2, _, err2 := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{Workers: 3, Seed: 9})
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if f1.Size() != f2.Size() {
			t.Errorf("%v: forest sizes differ", algo)
		}
		d := f1.Weight - f2.Weight
		if d > 1e-9 || d < -1e-9 {
			t.Errorf("%v: weights differ: %v vs %v", algo, f1.Weight, f2.Weight)
		}
		if algo != pmsf.MSTBC && f1.Weight != f2.Weight {
			t.Errorf("%v: not exactly repeatable", algo)
		}
	}
}

func ExampleMinimumSpanningForest() {
	g := pmsf.NewGraph(4, []pmsf.Edge{
		{U: 0, V: 1, W: 1.0},
		{U: 1, V: 2, W: 2.0},
		{U: 2, V: 3, W: 4.0},
		{U: 0, V: 3, W: 3.0},
		{U: 0, V: 2, W: 5.0},
	})
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.MSTBC, pmsf.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("weight=%.0f edges=%d components=%d\n",
		forest.Weight, forest.Size(), forest.Components)
	// Output: weight=6 edges=3 components=1
}

func ExampleAlgorithm_String() {
	fmt.Println(pmsf.BorFAL, pmsf.MSTBC, pmsf.SeqPrim)
	// Output: Bor-FAL MST-BC Prim
}

func TestPermuteGraph(t *testing.T) {
	g := pmsf.RandomGraph(300, 900, 1)
	pg := pmsf.PermuteGraph(g, 2)
	f1, _, err1 := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
	f2, _, err2 := pmsf.MinimumSpanningForest(pg, pmsf.SeqKruskal, pmsf.Options{})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	// Relabeling preserves the MSF weight exactly (same edge multiset).
	if f1.Weight != f2.Weight {
		t.Fatalf("permutation changed MSF weight: %g vs %g", f1.Weight, f2.Weight)
	}
}
