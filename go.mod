module pmsf

go 1.22
