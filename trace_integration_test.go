package pmsf_test

// Integration test of the tracing pipeline: one `msf-bench -algo` run
// must produce a Chrome trace whose per-step span totals agree exactly
// (at the report's µs rounding) with the per-iteration text table
// printed for the same run — both are views over one span tree, so any
// disagreement means the views have diverged.

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"pmsf/internal/obs"
)

func TestMSFBenchTraceMatchesReport(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "msf-bench")
	run(t, "go", "build", "-o", bin, "./cmd/msf-bench")

	tracePath := filepath.Join(dir, "out.json")
	out := run(t, bin, "-algo", "Bor-FAL", "-scale", "tiny", "-trace", tracePath)

	// Parse the report table's totals row: "total <find-min> <conn-comp> <compact>".
	var totals []time.Duration
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 4 && fields[0] == "total" {
			for _, f := range fields[1:] {
				d, err := time.ParseDuration(f)
				if err != nil {
					t.Fatalf("unparseable duration %q in totals row: %v", f, err)
				}
				totals = append(totals, d)
			}
		}
	}
	if len(totals) != 3 {
		t.Fatalf("no totals row in msf-bench output:\n%s", out)
	}

	f, err := os.Open(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	spans, err := obs.ReadChromeTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("empty trace")
	}
	foundRoot := false
	for _, r := range spans {
		if r.Parent == 0 && r.Name == "Bor-FAL" {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatal("trace has no Bor-FAL root span")
	}

	// Sum the exact (dur_ns) durations per step name and compare at the
	// report's µs rounding.
	sum := func(name string) time.Duration {
		var d time.Duration
		for _, r := range spans {
			if r.Name == name {
				d += r.Dur
			}
		}
		return d
	}
	steps := []string{"find-min", "connect-components", "compact-graph"}
	for i, name := range steps {
		got := sum(name).Round(time.Microsecond)
		if got != totals[i] {
			t.Errorf("%s: trace total %v, report total %v", name, got, totals[i])
		}
	}

	// Iteration spans must tile the table's per-iteration rows: count
	// data rows (lines starting with an iteration number) and compare.
	iterSpans := 0
	for _, r := range spans {
		if r.Name == "iteration" {
			iterSpans++
		}
	}
	iterRows := 0
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) != 6 {
			continue
		}
		if _, err := strconv.Atoi(fields[0]); err == nil {
			iterRows++
		}
	}
	if iterSpans == 0 || iterSpans != iterRows {
		t.Errorf("%d iteration spans vs %d table rows", iterSpans, iterRows)
	}
}

func TestMSFBenchMetricsSummary(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "msf-bench")
	run(t, "go", "build", "-o", bin, "./cmd/msf-bench")

	out := run(t, bin, "-algo", "MST-BC", "-scale", "tiny", "-metrics")
	for _, want := range []string{"edges_retired", "par_phases", "sort_elements", "supervertices"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics summary missing %q:\n%s", want, out)
		}
	}
}
