package pmsf_test

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"pmsf"
)

func TestGraphIORoundTrip(t *testing.T) {
	g := pmsf.RandomGraph(200, 800, 1)
	for _, format := range []pmsf.GraphFormat{
		pmsf.FormatBinary, pmsf.FormatText, pmsf.FormatDIMACS,
	} {
		var buf bytes.Buffer
		if err := pmsf.WriteGraph(&buf, g, format); err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		got, err := pmsf.ReadGraph(&buf, format)
		if err != nil {
			t.Fatalf("%v: %v", format, err)
		}
		if got.N != g.N || len(got.Edges) != len(g.Edges) {
			t.Fatalf("%v: shape changed", format)
		}
	}
}

func TestGraphFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.pmsf")
	g := pmsf.MeshGraph(12, 12, 2)
	if err := pmsf.WriteGraphFile(path, g, pmsf.FormatBinary); err != nil {
		t.Fatal(err)
	}
	got, err := pmsf.ReadGraphFile(path, pmsf.FormatBinary)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != g.N {
		t.Fatal("file round trip changed shape")
	}
	if _, err := pmsf.ReadGraphFile(filepath.Join(dir, "missing"), pmsf.FormatBinary); err == nil {
		t.Fatal("missing file accepted")
	}
	if err := pmsf.WriteGraphFile(filepath.Join(dir, "no", "such", "dir", "x"), g, pmsf.FormatBinary); err == nil {
		t.Fatal("bad path accepted")
	}
	if err := pmsf.WriteGraph(os.Stdout, nil, pmsf.FormatBinary); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestParseGraphFormat(t *testing.T) {
	f, err := pmsf.ParseGraphFormat("dimacs")
	if err != nil || f != pmsf.FormatDIMACS {
		t.Fatal("parse failed")
	}
	if _, err := pmsf.ParseGraphFormat("nope"); err == nil {
		t.Fatal("unknown accepted")
	}
}

func TestForestIOAndVerify(t *testing.T) {
	g := pmsf.RandomGraph(300, 1200, 3)
	forest, _, err := pmsf.MinimumSpanningForest(g, pmsf.BorFAL, pmsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pmsf.WriteForest(&buf, forest); err != nil {
		t.Fatal(err)
	}
	got, err := pmsf.ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := pmsf.Verify(g, got); err != nil {
		t.Fatalf("round-tripped forest failed verification: %v", err)
	}
}

func TestComputeGraphStatistics(t *testing.T) {
	g := pmsf.MeshGraph(10, 10, 1)
	s := pmsf.ComputeGraphStatistics(g)
	if s.N != 100 || s.Components != 1 || s.MaxDegree != 4 {
		t.Fatalf("stats %+v", s)
	}
}

func TestReweightGraphPublic(t *testing.T) {
	g := pmsf.RandomGraph(400, 1600, 1)
	for _, d := range []pmsf.WeightDistribution{
		pmsf.WeightsUniform, pmsf.WeightsExponential, pmsf.WeightsSmallInts, pmsf.WeightsStructured,
	} {
		rw := pmsf.ReweightGraph(g, d, 5)
		forest, _, err := pmsf.MinimumSpanningForest(rw, pmsf.BorFAL, pmsf.Options{Workers: 3})
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if err := pmsf.Verify(rw, forest); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
}
