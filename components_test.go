package pmsf_test

import (
	"testing"

	"pmsf"
)

func TestConnectedComponents(t *testing.T) {
	g := pmsf.RandomGraph(2000, 1200, 3) // deliberately disconnected
	labels, k, err := pmsf.ConnectedComponents(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-check against the forest's component count.
	f, _, err := pmsf.MinimumSpanningForest(g, pmsf.SeqKruskal, pmsf.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if k != f.Components {
		t.Fatalf("components = %d, MSF says %d", k, f.Components)
	}
	for _, e := range g.Edges {
		if labels[e.U] != labels[e.V] {
			t.Fatalf("edge endpoints in different components")
		}
	}
}

func TestConnectedComponentsValidation(t *testing.T) {
	if _, _, err := pmsf.ConnectedComponents(nil, 1); err == nil {
		t.Fatal("nil graph accepted")
	}
	bad := pmsf.NewGraph(1, []pmsf.Edge{{U: 0, V: 5}})
	if _, _, err := pmsf.ConnectedComponents(bad, 1); err == nil {
		t.Fatal("invalid graph accepted")
	}
}
