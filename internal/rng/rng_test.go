package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a := NewSplitMix64(7)
	b := NewSplitMix64(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the published splitmix64
	// reference implementation.
	s := NewSplitMix64(1234567)
	want := []uint64{
		6457827717110365317, // 0x599ed017fb08fc85
		3203168211198807973, // 0x2c73f08458540fa5
		9817491932198370423, // 0x883ebce5a3f27c77
	}
	for i, w := range want {
		if got := s.Uint64(); got != w {
			t.Errorf("value %d: got %#x, want %#x", i, got, w)
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := New(99), New(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverge at step %d", i)
		}
	}
	c := New(100)
	same := 0
	a2 := New(99)
	for i := 0; i < 1000; i++ {
		if a2.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical outputs of 1000", same)
	}
}

func TestXoshiroSplitDisjoint(t *testing.T) {
	parent := New(5)
	child := parent.Split()
	seen := make(map[uint64]bool, 4096)
	for i := 0; i < 2048; i++ {
		seen[child.Uint64()] = true
	}
	for i := 0; i < 2048; i++ {
		if seen[parent.Uint64()] {
			t.Fatalf("parent stream collided with child stream at step %d", i)
		}
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(1)
	f := func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwoFastPath(t *testing.T) {
	r := New(2)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(64); v >= 64 {
			t.Fatalf("Uint64n(64) = %d", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const trials = 100_000
	for i := 0; i < trials; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / trials; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("mean %g too far from 0.5", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	for _, n := range []int{0, 1, 2, 10, 1000} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || int(v) >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid entry %d", n, v)
			}
			seen[v] = true
		}
	}
}

func TestPermIsShuffled(t *testing.T) {
	// A 1000-element permutation equal to the identity has probability
	// 1/1000!; any fixed-point fraction near 1 indicates a broken shuffle.
	p := New(5).Perm(1000)
	fixed := 0
	for i, v := range p {
		if int(v) == i {
			fixed++
		}
	}
	if fixed > 50 {
		t.Fatalf("%d fixed points in a 1000-element shuffle", fixed)
	}
}

func TestShuffleUint64PreservesMultiset(t *testing.T) {
	r := New(6)
	orig := make([]uint64, 500)
	for i := range orig {
		orig[i] = r.Uint64() % 100
	}
	shuffled := make([]uint64, len(orig))
	copy(shuffled, orig)
	r.ShuffleUint64(shuffled)
	count := map[uint64]int{}
	for _, v := range orig {
		count[v]++
	}
	for _, v := range shuffled {
		count[v]--
	}
	for k, c := range count {
		if c != 0 {
			t.Fatalf("value %d count changed by %d", k, c)
		}
	}
}

func TestUniformity(t *testing.T) {
	// Chi-squared test over 16 buckets; threshold is the 99.9th
	// percentile of chi2 with 15 degrees of freedom (~37.7).
	r := New(7)
	const buckets, samples = 16, 160_000
	var counts [buckets]int
	for i := 0; i < samples; i++ {
		counts[r.Intn(buckets)]++
	}
	expected := float64(samples) / buckets
	var chi2 float64
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	if chi2 > 37.7 {
		t.Fatalf("chi-squared %g exceeds 37.7; counts %v", chi2, counts)
	}
}

func TestJumpChangesState(t *testing.T) {
	a := New(8)
	b := New(8)
	b.Jump()
	diverged := false
	for i := 0; i < 16; i++ {
		if a.Uint64() != b.Uint64() {
			diverged = true
			break
		}
	}
	if !diverged {
		t.Fatal("Jump did not move the stream")
	}
}

func TestBoolBalance(t *testing.T) {
	r := New(9)
	trues := 0
	const trials = 10_000
	for i := 0; i < trials; i++ {
		if r.Bool() {
			trues++
		}
	}
	if trues < trials*4/10 || trues > trials*6/10 {
		t.Fatalf("Bool produced %d/%d trues", trues, trials)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(10)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("negative Int63")
		}
	}
}
