// Package rng provides small, fast, deterministic pseudo-random number
// generators used throughout the library.
//
// All graph generators and randomized algorithm steps in this repository
// draw their randomness from these generators so that every experiment is
// reproducible from a single seed. The generators are splittable: a parent
// generator can derive independent child streams for worker goroutines
// without synchronization.
package rng

import "math"

// SplitMix64 is the splitmix64 generator of Steele, Lea and Flood. It is
// used both as a stand-alone generator and to seed Xoshiro256 streams.
//
// The zero value is a valid generator seeded with 0.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Uint64 returns the next value in the stream.
func (s *SplitMix64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 implements the xoshiro256** generator of Blackman and Vigna.
// It has a 256-bit state, passes stringent statistical tests, and is the
// workhorse generator for the graph generators.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a Xoshiro256 generator seeded from seed via splitmix64, per
// the authors' recommendation.
func New(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Uint64()
	}
	// Avoid the all-zero state, which is a fixed point.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next value in the stream.
func (x *Xoshiro256) Uint64() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls of
// Uint64. It is used to derive non-overlapping streams for parallel
// workers.
func (x *Xoshiro256) Jump() {
	jump := [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := uint(0); b < 64; b++ {
			if j&(1<<b) != 0 {
				s0 ^= x.s[0]
				s1 ^= x.s[1]
				s2 ^= x.s[2]
				s3 ^= x.s[3]
			}
			x.Uint64()
		}
	}
	x.s[0], x.s[1], x.s[2], x.s[3] = s0, s1, s2, s3
}

// Split returns a new generator whose stream is guaranteed disjoint from
// the receiver's next 2^128 outputs. The receiver is advanced past the
// child's stream.
func (x *Xoshiro256) Split() *Xoshiro256 {
	child := *x
	x.Jump()
	return &child
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (x *Xoshiro256) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(x.Uint64n(uint64(n)))
}

// Int63 returns a uniform non-negative int64.
func (x *Xoshiro256) Int63() int64 {
	return int64(x.Uint64() >> 1)
}

// Uint64n returns a uniform value in [0, n) using Lemire's nearly
// divisionless method with a rejection loop for exact uniformity.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return x.Uint64() & (n - 1)
	}
	// Rejection sampling on the top part of the range.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := x.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Float64 returns a uniform value in [0, 1) with 53 bits of precision.
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Uint64()>>11) / (1 << 53)
}

// Perm returns a uniformly random permutation of [0, n) as an int32 slice
// (vertex identifiers in this library are int32).
func (x *Xoshiro256) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	x.Shuffle32(p)
	return p
}

// Shuffle32 performs an in-place Fisher-Yates shuffle of p.
func (x *Xoshiro256) Shuffle32(p []int32) {
	for i := len(p) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// ShuffleUint64 performs an in-place Fisher-Yates shuffle of p.
func (x *Xoshiro256) ShuffleUint64(p []uint64) {
	for i := len(p) - 1; i > 0; i-- {
		j := x.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Bool returns a uniform boolean.
func (x *Xoshiro256) Bool() bool { return x.Uint64()&1 == 1 }
