// Package arena provides per-worker slab allocators. Bor-ALM is the
// paper's Bor-AL variant with private per-thread memory segments replacing
// the contended shared heap; here each worker owns Slabs that hand out
// subslices of large private pages, so the compact-graph hot path
// performs no shared-allocator work and generates no per-list garbage.
package arena

import (
	"unsafe"

	"pmsf/internal/obs"
)

// grew reports n freshly allocated elements of size elemSize to the
// process-wide arena-bytes counter when metrics are enabled.
func grew(n int, elemSize uintptr) {
	if obs.MetricsOn() {
		obs.ArenaBytes.Add(int64(n) * int64(elemSize))
	}
}

// Slab hands out subslices of type T carved from private pages. It is NOT
// safe for concurrent use: create one per worker.
//
// Alloc returns memory that may contain stale data from a previous Reset
// cycle; callers must fully overwrite what they use.
type Slab[T any] struct {
	pages    [][]T
	active   int // index of the page currently being carved
	off      int // next free slot in the active page
	pageSize int
	allocs   int64
	elems    int64
}

// NewSlab returns a slab whose pages hold pageSize elements each.
// Requests larger than pageSize get dedicated oversized pages.
func NewSlab[T any](pageSize int) *Slab[T] {
	if pageSize < 1 {
		pageSize = 1 << 16
	}
	return &Slab[T]{pageSize: pageSize, active: -1}
}

// Alloc returns a slice of n elements backed by the slab.
func (s *Slab[T]) Alloc(n int) []T {
	s.allocs++
	s.elems += int64(n)
	if n > s.pageSize {
		// Oversized request: dedicated page inserted behind the active one
		// so the active page keeps filling.
		page := make([]T, n)
		grew(n, unsafe.Sizeof(page[0]))
		if s.active < 0 {
			s.pages = append(s.pages, page)
			s.active = 0
			s.off = n
			return page
		}
		s.pages = append(s.pages, nil)
		copy(s.pages[s.active+1:], s.pages[s.active:])
		s.pages[s.active] = page
		s.active++
		return page
	}
	if s.active < 0 || s.off+n > len(s.pages[s.active]) {
		s.advance(n)
	}
	out := s.pages[s.active][s.off : s.off+n : s.off+n]
	s.off += n
	return out
}

// advance moves to the next page with room for n, allocating one if none
// exists yet.
func (s *Slab[T]) advance(n int) {
	for i := s.active + 1; i < len(s.pages); i++ {
		if len(s.pages[i]) >= n {
			s.active = i
			s.off = 0
			return
		}
	}
	page := make([]T, s.pageSize)
	grew(s.pageSize, unsafe.Sizeof(page[0]))
	s.pages = append(s.pages, page)
	s.active = len(s.pages) - 1
	s.off = 0
}

// Reset makes all previously allocated memory available again without
// returning pages to the garbage collector.
func (s *Slab[T]) Reset() {
	if len(s.pages) > 0 {
		s.active = 0
	} else {
		s.active = -1
	}
	s.off = 0
}

// Stats returns the number of Alloc calls and total elements handed out
// since creation (across Resets).
func (s *Slab[T]) Stats() (allocs, elems int64) { return s.allocs, s.elems }

// Pages returns how many pages the slab owns (for tests and memory
// accounting).
func (s *Slab[T]) Pages() int { return len(s.pages) }
