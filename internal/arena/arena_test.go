package arena

import (
	"testing"
	"testing/quick"
)

func TestAllocBasics(t *testing.T) {
	s := NewSlab[int](8)
	a := s.Alloc(3)
	b := s.Alloc(4)
	if len(a) != 3 || len(b) != 4 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		a[i] = 100 + i
	}
	for i := range b {
		b[i] = 200 + i
	}
	// Allocations from one page must not alias.
	if a[2] != 102 || b[0] != 200 {
		t.Fatal("allocations alias")
	}
}

func TestAllocSpansPages(t *testing.T) {
	s := NewSlab[byte](4)
	var slices [][]byte
	for i := 0; i < 10; i++ {
		x := s.Alloc(3)
		for j := range x {
			x[j] = byte(i)
		}
		slices = append(slices, x)
	}
	for i, x := range slices {
		for _, v := range x {
			if v != byte(i) {
				t.Fatalf("slice %d corrupted: %d", i, v)
			}
		}
	}
	if s.Pages() < 5 {
		t.Fatalf("expected several pages, got %d", s.Pages())
	}
}

func TestOversizedAlloc(t *testing.T) {
	s := NewSlab[int](8)
	small := s.Alloc(2)
	big := s.Alloc(100)
	small2 := s.Alloc(2)
	if len(big) != 100 {
		t.Fatalf("oversized len %d", len(big))
	}
	small[0], big[0], small2[0] = 1, 2, 3
	if small[0] != 1 || big[0] != 2 || small2[0] != 3 {
		t.Fatal("aliasing after oversized alloc")
	}
}

func TestOversizedFirst(t *testing.T) {
	s := NewSlab[int](4)
	big := s.Alloc(50)
	if len(big) != 50 {
		t.Fatalf("len %d", len(big))
	}
	next := s.Alloc(2)
	big[49], next[0] = 7, 8
	if big[49] != 7 || next[0] != 8 {
		t.Fatal("aliasing")
	}
}

func TestResetReusesPages(t *testing.T) {
	s := NewSlab[int](16)
	for i := 0; i < 100; i++ {
		s.Alloc(10)
	}
	pages := s.Pages()
	s.Reset()
	for i := 0; i < 100; i++ {
		s.Alloc(10)
	}
	if s.Pages() != pages {
		t.Fatalf("pages grew across Reset: %d -> %d", pages, s.Pages())
	}
}

func TestResetEmptySlab(t *testing.T) {
	s := NewSlab[int](16)
	s.Reset() // must not panic
	if x := s.Alloc(4); len(x) != 4 {
		t.Fatal("alloc after empty reset broken")
	}
}

func TestStats(t *testing.T) {
	s := NewSlab[int](16)
	s.Alloc(4)
	s.Alloc(6)
	allocs, elems := s.Stats()
	if allocs != 2 || elems != 10 {
		t.Fatalf("stats %d/%d, want 2/10", allocs, elems)
	}
	s.Reset()
	s.Alloc(1)
	allocs, elems = s.Stats()
	if allocs != 3 || elems != 11 {
		t.Fatalf("stats survive reset: %d/%d", allocs, elems)
	}
}

func TestDefaultPageSize(t *testing.T) {
	s := NewSlab[int](0)
	if x := s.Alloc(10); len(x) != 10 {
		t.Fatal("zero page size not defaulted")
	}
}

// Property: a long random sequence of Alloc/Reset hands out slices of the
// requested lengths, and writes through any live slice do not corrupt any
// other live slice from the same epoch.
func TestNoAliasingProperty(t *testing.T) {
	f := func(sizes []uint8) bool {
		s := NewSlab[int32](32)
		var live [][]int32
		for epoch := 0; epoch < 2; epoch++ {
			live = live[:0]
			for i, raw := range sizes {
				n := int(raw%40) + 1
				x := s.Alloc(n)
				if len(x) != n {
					return false
				}
				for j := range x {
					x[j] = int32(i)
				}
				live = append(live, x)
			}
			for i, x := range live {
				for _, v := range x {
					if v != int32(i) {
						return false
					}
				}
			}
			s.Reset()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
