package verify

import (
	"strings"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/seq"
)

func fixture() (*graph.EdgeList, *graph.Forest) {
	g := gen.Random(200, 800, 1)
	return g, seq.Kruskal(g)
}

func TestAcceptsCorrectForest(t *testing.T) {
	g, f := fixture()
	if err := Forest(g, f); err != nil {
		t.Fatal(err)
	}
	if err := Minimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestAcceptsDisconnected(t *testing.T) {
	g := gen.Random(300, 150, 2)
	f := seq.Prim(g)
	if err := Minimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func corrupt(t *testing.T, name string, mutate func(*graph.EdgeList, *graph.Forest), wantSub string) {
	t.Helper()
	g, f := fixture()
	mutate(g, f)
	err := Forest(g, f)
	if err == nil {
		err = Minimum(g, f)
	}
	if err == nil {
		t.Fatalf("%s: corruption accepted", name)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("%s: error %q does not mention %q", name, err, wantSub)
	}
}

func TestRejectsCorruptions(t *testing.T) {
	corrupt(t, "missing edge", func(g *graph.EdgeList, f *graph.Forest) {
		f.Weight -= g.Edges[f.EdgeIDs[len(f.EdgeIDs)-1]].W
		f.EdgeIDs = f.EdgeIDs[:len(f.EdgeIDs)-1]
	}, "edges")
	corrupt(t, "duplicate id", func(g *graph.EdgeList, f *graph.Forest) {
		f.EdgeIDs[1] = f.EdgeIDs[0]
	}, "")
	corrupt(t, "out of range id", func(g *graph.EdgeList, f *graph.Forest) {
		f.EdgeIDs[0] = int32(len(g.Edges)) + 5
	}, "out of range")
	corrupt(t, "negative id", func(g *graph.EdgeList, f *graph.Forest) {
		f.EdgeIDs[0] = -1
	}, "out of range")
	corrupt(t, "wrong weight", func(g *graph.EdgeList, f *graph.Forest) {
		f.Weight += 1
	}, "weight")
	corrupt(t, "wrong component count", func(g *graph.EdgeList, f *graph.Forest) {
		f.Components++
	}, "components")
}

func TestRejectsCycle(t *testing.T) {
	g := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	}}
	f := &graph.Forest{EdgeIDs: []int32{0, 1, 2}, Weight: 6, Components: 1}
	if err := Forest(g, f); err == nil || !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("cycle accepted: %v", err)
	}
}

func TestRejectsNonMinimal(t *testing.T) {
	// A valid spanning tree that is not minimum: triangle using the two
	// heavy edges.
	g := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	}}
	f := &graph.Forest{EdgeIDs: []int32{1, 2}, Weight: 5, Components: 1}
	if err := Forest(g, f); err != nil {
		t.Fatalf("structurally valid tree rejected: %v", err)
	}
	if err := Minimum(g, f); err == nil {
		t.Fatal("non-minimal tree accepted as minimum")
	}
}

func TestRejectsSelfLoopSelection(t *testing.T) {
	g := &graph.EdgeList{N: 2, Edges: []graph.Edge{
		{U: 0, V: 0, W: 0.5}, {U: 0, V: 1, W: 1},
	}}
	f := &graph.Forest{EdgeIDs: []int32{0, 1}, Weight: 1.5, Components: 1}
	if err := Forest(g, f); err == nil || !strings.Contains(err.Error(), "self-loop") {
		t.Fatalf("self-loop selection accepted: %v", err)
	}
}

func TestEmptyGraph(t *testing.T) {
	g := &graph.EdgeList{N: 0}
	f := &graph.Forest{}
	if err := Minimum(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestCloseEnough(t *testing.T) {
	if !closeEnough(1.0, 1.0+1e-12) {
		t.Fatal("tiny relative error rejected")
	}
	if closeEnough(1.0, 1.001) {
		t.Fatal("large error accepted")
	}
	if !closeEnough(0, 0) {
		t.Fatal("zero comparison broken")
	}
}
