package verify

import (
	"fmt"

	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/pathmax"
)

// CycleProperty verifies minimality through the cycle property instead of
// a reference computation: a spanning forest F of G is minimum iff every
// non-forest edge (u,v) is F-heavy — its weight is at least the maximum
// edge weight on the F-path between u and v. Comparisons are by weight
// only: with duplicate weights the MSF is not unique, and any forest
// where no non-forest edge is STRICTLY lighter than a path edge it could
// replace is minimum. This is the notion the paper's Lemma 3 argues
// with, and it is an oracle fully independent of the Kruskal reference
// used by Minimum.
//
// The check runs in O(n log n + m log n) via the binary-lifting path-max
// index (internal/pathmax). f must already be structurally valid (call
// Forest first, or use Full).
func CycleProperty(g *graph.EdgeList, f *graph.Forest) error {
	if g.N == 0 {
		return nil
	}
	inForest := make([]bool, len(g.Edges))
	for _, id := range f.EdgeIDs {
		inForest[id] = true
	}
	idx, err := pathmax.Build(g, f.EdgeIDs)
	if err != nil {
		// Forest passed structural validation but pathmax disagrees:
		// surface it as a verification failure, not a crash.
		return fmt.Errorf("verify: building path-max index: %w", err)
	}
	// Queries are independent; run them in parallel and keep the first
	// (lowest-id) failure for a deterministic error message.
	p := par.DefaultWorkers()
	fails := make([]error, par.Clamp(p, len(g.Edges)))
	par.For(p, len(g.Edges), func(w, lo, hi int) {
		for id := lo; id < hi; id++ {
			if inForest[id] {
				continue
			}
			e := g.Edges[id]
			if e.U == e.V {
				continue
			}
			hm := idx.Query(e.U, e.V)
			if hm < 0 {
				fails[w] = fmt.Errorf("verify: non-forest edge %d connects two trees", id)
				return
			}
			if e.W < g.Edges[hm].W {
				fails[w] = fmt.Errorf(
					"verify: cycle property violated: non-forest edge %d (w=%g) is lighter than forest edge %d (w=%g) on its path",
					id, e.W, hm, g.Edges[hm].W)
				return
			}
		}
	})
	for _, err := range fails {
		if err != nil {
			return err
		}
	}
	return nil
}

// Full runs every check: structural validity, weight cross-check against
// the independent Kruskal reference, and the cycle property.
func Full(g *graph.EdgeList, f *graph.Forest) error {
	if err := Minimum(g, f); err != nil {
		return err
	}
	return CycleProperty(g, f)
}
