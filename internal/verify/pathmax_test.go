package verify

import (
	"strings"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/seq"
)

func TestCyclePropertyAcceptsMSF(t *testing.T) {
	inputs := []*graph.EdgeList{
		gen.Random(500, 2500, 1),
		gen.Random(800, 500, 2), // disconnected
		gen.Mesh2D(25, 25, 3),
		gen.Geometric(400, 6, 4),
		gen.Str0(256, 5),
		{N: 0},
		{N: 3},
	}
	for i, g := range inputs {
		f := seq.Kruskal(g)
		if err := Forest(g, f); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if err := CycleProperty(g, f); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
		if err := Full(g, f); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
	}
}

func TestCyclePropertyRejectsNonMinimal(t *testing.T) {
	// Triangle: tree {2,3} (the two heavy edges) is spanning but not
	// minimum; edge 0 (w=1) is lighter than tree edge 2 (w=3) on its
	// path.
	g := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
	}}
	f := &graph.Forest{EdgeIDs: []int32{1, 2}, Weight: 5, Components: 1}
	err := CycleProperty(g, f)
	if err == nil || !strings.Contains(err.Error(), "cycle property") {
		t.Fatalf("non-minimal tree accepted: %v", err)
	}
}

func TestCyclePropertyRejectsSwappedEdge(t *testing.T) {
	// Take a real MSF and swap one tree edge for a heavier non-tree edge
	// that keeps the forest spanning (find one by brute force).
	g := gen.Random(200, 1000, 7)
	f := seq.Kruskal(g)
	inTree := map[int32]bool{}
	for _, id := range f.EdgeIDs {
		inTree[id] = true
	}
	for swapOut := range f.EdgeIDs {
		for id := range g.Edges {
			if inTree[int32(id)] {
				continue
			}
			candidate := append([]int32(nil), f.EdgeIDs...)
			candidate[swapOut] = int32(id)
			nf := &graph.Forest{EdgeIDs: candidate, Components: f.Components}
			nf.Weight = nf.SumWeights(g)
			if Forest(g, nf) != nil {
				continue // not spanning anymore
			}
			if nf.Weight <= f.Weight {
				continue // extremely unlikely (equal-weight alternative)
			}
			if err := CycleProperty(g, nf); err == nil {
				t.Fatal("heavier spanning tree passed the cycle property")
			}
			return
		}
	}
	t.Skip("no swappable edge pair found")
}

// Long path graphs exercise the binary-lifting depth.
func TestCyclePropertyDeepTree(t *testing.T) {
	const n = 1 << 12
	g := &graph.EdgeList{N: n}
	for i := 0; i < n-1; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1), W: float64(i)})
	}
	// Chords that are all heavy (valid) plus verification.
	for i := 0; i+100 < n; i += 97 {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 100), W: 1e9})
	}
	f := seq.Kruskal(g)
	if err := Full(g, f); err != nil {
		t.Fatal(err)
	}
	// Now make one chord light: the MSF changes, so the OLD forest must
	// fail the cycle property.
	lightID := int32(len(g.Edges) - 1)
	g.Edges[lightID].W = -1
	if err := CycleProperty(g, f); err == nil {
		t.Fatal("light chord not detected")
	}
}

func TestCyclePropertyWithTies(t *testing.T) {
	g := gen.Random(300, 1500, 9)
	for i := range g.Edges {
		g.Edges[i].W = float64(i % 4)
	}
	f := seq.Kruskal(g)
	if err := CycleProperty(g, f); err != nil {
		t.Fatal(err)
	}
}
