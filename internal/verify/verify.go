// Package verify is the correctness oracle for MSF results. It checks
// that a claimed forest (a) uses only valid edge identifiers without
// duplicates, (b) is acyclic, (c) spans every connected component of the
// input, (d) reports a consistent weight, and (e) matches the weight of
// an independently computed reference MSF (Kruskal). With distinct edge
// weights the MSF is unique, so weight equality implies edge-set
// equality; the checks still hold under ties because both sides break
// ties identically by edge id.
package verify

import (
	"fmt"
	"math"

	"pmsf/internal/graph"
	"pmsf/internal/seq"
	"pmsf/internal/uf"
)

// Forest checks the structural validity of f against g: edge ids in
// range, no duplicate ids, acyclic, and exactly N - Components edges with
// Components equal to the true component count of g. It returns nil when
// f is a spanning forest (not necessarily minimal; see Minimum).
func Forest(g *graph.EdgeList, f *graph.Forest) error {
	seen := make(map[int32]bool, len(f.EdgeIDs))
	u := uf.New(g.N)
	for _, id := range f.EdgeIDs {
		if id < 0 || int(id) >= len(g.Edges) {
			return fmt.Errorf("verify: edge id %d out of range [0,%d)", id, len(g.Edges))
		}
		if seen[id] {
			return fmt.Errorf("verify: duplicate edge id %d", id)
		}
		seen[id] = true
		e := g.Edges[id]
		if e.U == e.V {
			return fmt.Errorf("verify: self-loop %d selected", id)
		}
		if !u.Union(e.U, e.V) {
			return fmt.Errorf("verify: edge id %d (%d-%d) closes a cycle", id, e.U, e.V)
		}
	}
	trueComponents := graph.ComponentCount(g)
	if f.Components != trueComponents {
		return fmt.Errorf("verify: reported %d components, graph has %d", f.Components, trueComponents)
	}
	if got, want := len(f.EdgeIDs), g.N-trueComponents; got != want {
		return fmt.Errorf("verify: forest has %d edges, spanning forest needs %d", got, want)
	}
	// Spanning: the union-find over forest edges must produce exactly the
	// same partition cardinality as the graph itself.
	if u.Count() != trueComponents {
		return fmt.Errorf("verify: forest connects %d components, graph has %d", u.Count(), trueComponents)
	}
	// Weight consistency.
	if w := f.SumWeights(g); !closeEnough(w, f.Weight) {
		return fmt.Errorf("verify: reported weight %g, edges sum to %g", f.Weight, w)
	}
	return nil
}

// Minimum checks that f is a minimum spanning forest by comparing its
// weight against an independently computed Kruskal reference. It implies
// Forest's checks.
func Minimum(g *graph.EdgeList, f *graph.Forest) error {
	if err := Forest(g, f); err != nil {
		return err
	}
	ref := seq.Kruskal(g)
	if !closeEnough(ref.Weight, f.Weight) {
		return fmt.Errorf("verify: weight %.9g differs from reference MSF weight %.9g (delta %g)",
			f.Weight, ref.Weight, f.Weight-ref.Weight)
	}
	return nil
}

// closeEnough compares weights with a relative tolerance absorbing
// floating-point summation-order differences.
func closeEnough(a, b float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
