package verify

// Property-based adversarial testing of the oracle itself: random valid
// forests must pass; random single-edge corruptions must fail at least
// one layer.

import (
	"testing"
	"testing/quick"

	"pmsf/internal/gen"
	"pmsf/internal/rng"
	"pmsf/internal/seq"
)

func TestOracleProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(120)
		maxM := n * (n - 1) / 2
		m := 2 + r.Intn(maxM-1)
		g := gen.Random(n, m, r.Uint64())
		forest := seq.Kruskal(g)
		if Full(g, forest) != nil {
			return false // a correct forest must pass everything
		}
		if len(forest.EdgeIDs) == 0 {
			return true
		}
		// Corrupt: replace one forest edge id with a random non-forest id.
		inForest := map[int32]bool{}
		for _, id := range forest.EdgeIDs {
			inForest[id] = true
		}
		var candidates []int32
		for id := range g.Edges {
			if !inForest[int32(id)] && g.Edges[id].U != g.Edges[id].V {
				candidates = append(candidates, int32(id))
			}
		}
		if len(candidates) == 0 {
			return true // tree graph: nothing to corrupt with
		}
		bad := *forest
		bad.EdgeIDs = append([]int32(nil), forest.EdgeIDs...)
		bad.EdgeIDs[r.Intn(len(bad.EdgeIDs))] = candidates[r.Intn(len(candidates))]
		bad.Weight = bad.SumWeights(g)
		// The corruption either breaks the structure (cycle / not
		// spanning) or yields a spanning tree that is not minimum — or,
		// rarely, swaps in an equal-weight alternative MSF edge, which is
		// legitimately accepted. Accept "caught" or "equal weight".
		err := Full(g, &bad)
		if err != nil {
			return true
		}
		d := bad.Weight - forest.Weight
		return d < 1e-9 && d > -1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Weight tampering alone (ids untouched) is always caught.
func TestOracleWeightTamperProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed ^ 0x55aa)
		n := 3 + r.Intn(100)
		m := 2 * n
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := gen.Random(n, m, r.Uint64())
		forest := seq.Prim(g)
		bad := *forest
		bad.Weight += 1 + r.Float64()
		return Full(g, &bad) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
