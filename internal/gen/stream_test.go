package gen

import (
	"testing"

	"pmsf/internal/graph"
)

// applyValueStream replays a stream against a multiset of live edges,
// failing if any deletion misses — the contract the generator promises.
func applyValueStream(t *testing.T, g *graph.EdgeList, s *graph.EdgeStream) map[graph.Edge]int {
	t.Helper()
	live := map[graph.Edge]int{}
	for _, e := range g.Edges {
		live[e]++
	}
	for bi, b := range s.Batches {
		for _, e := range b.Add {
			live[e]++
		}
		for _, e := range b.Del {
			if live[e] == 0 {
				t.Fatalf("batch %d deletes %+v which is not live", bi, e)
			}
			live[e]--
			if live[e] == 0 {
				delete(live, e)
			}
		}
	}
	return live
}

func TestSlidingWindowStreamSteadyState(t *testing.T) {
	g := Random(200, 1000, 7)
	s := SlidingWindowStream(g, 500, len(g.Edges), 100, 99)
	if s.N != g.N {
		t.Fatalf("stream n=%d, want %d", s.N, g.N)
	}
	adds := 0
	for i, b := range s.Batches {
		adds += len(b.Add)
		if len(b.Add) != len(b.Del) {
			t.Fatalf("batch %d: %d adds vs %d dels — steady state should turn over exactly", i, len(b.Add), len(b.Del))
		}
	}
	if adds != 500 {
		t.Fatalf("total adds = %d, want 500", adds)
	}
	live := applyValueStream(t, g, s)
	total := 0
	for _, c := range live {
		total += c
	}
	if total != len(g.Edges) {
		t.Fatalf("live edges after replay = %d, want window size %d", total, len(g.Edges))
	}
}

func TestSlidingWindowStreamShrinkingWindow(t *testing.T) {
	g := Random(100, 600, 3)
	// Window smaller than the base: early batches delete more than they add.
	s := SlidingWindowStream(g, 120, 300, 40, 5)
	applyValueStream(t, g, s)
	first := s.Batches[0]
	if len(first.Del) <= len(first.Add) {
		t.Fatalf("first batch should shrink toward the window: %d adds, %d dels", len(first.Add), len(first.Del))
	}
}

func TestSlidingWindowStreamDeterministic(t *testing.T) {
	g := Random(50, 200, 1)
	a := SlidingWindowStream(g, 100, 200, 30, 42)
	b := SlidingWindowStream(g, 100, 200, 30, 42)
	if len(a.Batches) != len(b.Batches) {
		t.Fatal("batch counts differ across identical seeds")
	}
	for i := range a.Batches {
		for j := range a.Batches[i].Add {
			if a.Batches[i].Add[j] != b.Batches[i].Add[j] {
				t.Fatalf("batch %d add %d differs across identical seeds", i, j)
			}
		}
	}
	c := SlidingWindowStream(g, 100, 200, 30, 43)
	same := true
	for i := range a.Batches {
		for j := range a.Batches[i].Add {
			if a.Batches[i].Add[j] != c.Batches[i].Add[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSlidingWindowStreamNoSelfLoops(t *testing.T) {
	g := Random(10, 30, 2)
	s := SlidingWindowStream(g, 200, 30, 50, 11)
	for _, b := range s.Batches {
		for _, e := range b.Add {
			if e.U == e.V {
				t.Fatalf("generated self-loop %+v", e)
			}
		}
	}
}
