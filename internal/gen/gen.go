// Package gen implements the paper's input graph generators (Section
// 5.1): uniform random graphs, regular 2D meshes, the 2D60 and 3D40
// irregular meshes, fixed-degree geometric graphs, and the structured
// worst-case inputs str0-str3 of Chung and Condon. All generators are
// deterministic functions of their seed.
package gen

import (
	"fmt"
	"sort"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// Random returns an Erdős–Rényi-style G(n, m) graph: m unique undirected
// edges chosen uniformly at random among the n(n-1)/2 possibilities (no
// self-loops, no parallel edges), with uniform random weights in [0, 1).
// This matches the paper's "random graph" generator (the LEDA scheme).
func Random(n, m int, seed uint64) *graph.EdgeList {
	if n < 2 {
		return &graph.EdgeList{N: n}
	}
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic(fmt.Sprintf("gen: m=%d exceeds max %d for n=%d", m, maxM, n))
	}
	r := rng.New(seed)
	// Generate candidate endpoint pairs, dedupe by sorting packed keys,
	// and top up until exactly m unique edges exist. This is O(m log m)
	// without a giant hash table.
	keys := make([]uint64, 0, m+m/8)
	for len(keys) < m {
		need := m - len(keys)
		for i := 0; i < need+need/8+8; i++ {
			u := r.Intn(n)
			v := r.Intn(n - 1)
			if v >= u {
				v++
			}
			if u > v {
				u, v = v, u
			}
			keys = append(keys, uint64(u)<<32|uint64(v))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		keys = dedupeUint64(keys)
		if len(keys) > m {
			// Drop a deterministic random subset of the surplus.
			r.ShuffleUint64(keys)
			keys = keys[:m]
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		}
	}
	edges := make([]graph.Edge, m)
	for i, k := range keys {
		edges[i] = graph.Edge{
			U: int32(k >> 32),
			V: int32(k & 0xffffffff),
			W: r.Float64(),
		}
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

func dedupeUint64(a []uint64) []uint64 {
	if len(a) == 0 {
		return a
	}
	out := a[:1]
	for _, v := range a[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

// Mesh2D returns a rows×cols regular 2D mesh: each vertex connects to its
// right and down neighbors where they exist. Weights are uniform random.
func Mesh2D(rows, cols int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	n := rows * cols
	edges := make([]graph.Edge, 0, 2*n)
	at := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols {
				edges = append(edges, graph.Edge{U: at(i, j), V: at(i, j+1), W: r.Float64()})
			}
			if i+1 < rows {
				edges = append(edges, graph.Edge{U: at(i, j), V: at(i+1, j), W: r.Float64()})
			}
		}
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Mesh2D60 returns the paper's "2D60" input: a 2D mesh where each
// potential edge is present with probability 60%.
func Mesh2D60(rows, cols int, seed uint64) *graph.EdgeList {
	return sparseMesh2D(rows, cols, 0.60, seed)
}

func sparseMesh2D(rows, cols int, prob float64, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	n := rows * cols
	edges := make([]graph.Edge, 0, int(float64(2*n)*prob)+16)
	at := func(i, j int) int32 { return int32(i*cols + j) }
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if j+1 < cols && r.Float64() < prob {
				edges = append(edges, graph.Edge{U: at(i, j), V: at(i, j+1), W: r.Float64()})
			}
			if i+1 < rows && r.Float64() < prob {
				edges = append(edges, graph.Edge{U: at(i, j), V: at(i+1, j), W: r.Float64()})
			}
		}
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Mesh3D40 returns the paper's "3D40" input: a 3D mesh (6-neighbor
// connectivity) where each potential edge is present with probability
// 40%.
func Mesh3D40(side int, seed uint64) *graph.EdgeList {
	const prob = 0.40
	r := rng.New(seed)
	n := side * side * side
	edges := make([]graph.Edge, 0, int(float64(3*n)*prob)+16)
	at := func(x, y, z int) int32 { return int32((x*side+y)*side + z) }
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				if x+1 < side && r.Float64() < prob {
					edges = append(edges, graph.Edge{U: at(x, y, z), V: at(x+1, y, z), W: r.Float64()})
				}
				if y+1 < side && r.Float64() < prob {
					edges = append(edges, graph.Edge{U: at(x, y, z), V: at(x, y+1, z), W: r.Float64()})
				}
				if z+1 < side && r.Float64() < prob {
					edges = append(edges, graph.Edge{U: at(x, y, z), V: at(x, y, z+1), W: r.Float64()})
				}
			}
		}
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Permute relabels the vertices of g by a uniform random permutation,
// returning a new graph. The paper uses random vertex reordering both to
// decorrelate generator artifacts and as MST-BC's progress guarantee.
func Permute(g *graph.EdgeList, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	perm := r.Perm(g.N)
	edges := make([]graph.Edge, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = graph.Edge{U: perm[e.U], V: perm[e.V], W: e.W}
	}
	return &graph.EdgeList{N: g.N, Edges: edges}
}
