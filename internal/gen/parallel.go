package gen

import (
	"sort"

	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/rng"
)

// RandomParallel generates a G(n, m) random graph using p workers. The
// result is deterministic in (n, m, seed) and INDEPENDENT of p: workers
// draw from fixed per-shard xoshiro streams (derived by jumps from the
// seed), shards are deduplicated globally, and the same top-up stream
// resolves collisions. The distribution matches Random's (uniform unique
// edges), though the concrete graph for a given seed differs from
// Random's.
//
// Use it for the paper-scale 1M-vertex/20M-edge inputs where sequential
// generation becomes a noticeable fraction of experiment time.
func RandomParallel(n, m int, seed uint64, p int) *graph.EdgeList {
	if n < 2 {
		return &graph.EdgeList{N: n}
	}
	maxM := int64(n) * int64(n-1) / 2
	if int64(m) > maxM {
		panic("gen: m exceeds the maximum possible edge count")
	}
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	const shards = 64 // fixed shard count keeps the output p-independent
	base := rng.New(seed)
	streams := make([]*rng.Xoshiro256, shards)
	for i := range streams {
		streams[i] = base.Split()
	}

	perShard := m/shards + 1
	shardKeys := make([][]uint64, shards)
	par.ForDynamic(p, shards, 1, func(_, lo, hi int) {
		for s := lo; s < hi; s++ {
			r := streams[s]
			keys := make([]uint64, 0, perShard+perShard/8)
			for len(keys) < perShard {
				u := r.Intn(n)
				v := r.Intn(n - 1)
				if v >= u {
					v++
				}
				if u > v {
					u, v = v, u
				}
				keys = append(keys, uint64(u)<<32|uint64(v))
			}
			sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
			shardKeys[s] = dedupeUint64(keys)
		}
	})

	// Merge shards (sorted) and dedupe across shards.
	merged := shardKeys[0]
	for s := 1; s < shards; s++ {
		merged = mergeSortedUint64(merged, shardKeys[s])
	}

	// Top up (or trim) to exactly m unique edges using the base stream.
	for len(merged) < m {
		need := m - len(merged)
		extra := make([]uint64, 0, need+need/4+8)
		for len(extra) < need+need/4+8 {
			u := base.Intn(n)
			v := base.Intn(n - 1)
			if v >= u {
				v++
			}
			if u > v {
				u, v = v, u
			}
			extra = append(extra, uint64(u)<<32|uint64(v))
		}
		sort.Slice(extra, func(i, j int) bool { return extra[i] < extra[j] })
		merged = mergeSortedUint64(merged, dedupeUint64(extra))
	}
	if len(merged) > m {
		base.ShuffleUint64(merged)
		merged = merged[:m]
		sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	}

	// Weights are derived from each edge's key so they are independent of
	// both p and the merge order.
	edges := make([]graph.Edge, m)
	ranges := par.Split(m, par.Clamp(p, m))
	par.Do(par.Clamp(p, m), func(w int) {
		// Each worker owns a contiguous range; weights must not depend on
		// the range split, so derive them from the edge key itself.
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			k := merged[i]
			edges[i] = graph.Edge{
				U: int32(k >> 32),
				V: int32(k & 0xffffffff),
				W: keyWeight(k, seed),
			}
		}
	})
	return &graph.EdgeList{N: n, Edges: edges}
}

// keyWeight derives a uniform [0,1) weight deterministically from the
// edge key and seed (splitmix64 finalizer).
func keyWeight(key, seed uint64) float64 {
	z := key ^ (seed * 0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// mergeSortedUint64 merges two sorted unique slices into a sorted unique
// slice.
func mergeSortedUint64(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
