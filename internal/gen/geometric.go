package gen

import (
	"math"
	"sort"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// Geometric returns the fixed-degree geometric graphs of Moret and
// Shapiro used by the paper: n points uniform in the unit square, each
// vertex connected to its k nearest neighbors, with Euclidean distance as
// the edge weight. The k-NN search uses a uniform cell grid with
// expanding ring search, so generation is near-linear for uniform points.
func Geometric(n, k int, seed uint64) *graph.EdgeList {
	if k >= n {
		k = n - 1
	}
	if n <= 0 || k <= 0 {
		return &graph.EdgeList{N: n}
	}
	r := rng.New(seed)
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := 0; i < n; i++ {
		xs[i] = r.Float64()
		ys[i] = r.Float64()
	}

	// Cell grid sized for ~2 points per cell.
	side := int(math.Sqrt(float64(n) / 2))
	if side < 1 {
		side = 1
	}
	cellOf := func(i int) (int, int) {
		cx := int(xs[i] * float64(side))
		cy := int(ys[i] * float64(side))
		if cx >= side {
			cx = side - 1
		}
		if cy >= side {
			cy = side - 1
		}
		return cx, cy
	}
	// Bucket points by cell (counting sort).
	cellIdx := make([]int32, n)
	counts := make([]int32, side*side+1)
	for i := 0; i < n; i++ {
		cx, cy := cellOf(i)
		c := int32(cx*side + cy)
		cellIdx[i] = c
		counts[c+1]++
	}
	for c := 0; c < side*side; c++ {
		counts[c+1] += counts[c]
	}
	bucket := make([]int32, n)
	next := make([]int32, side*side)
	copy(next, counts[:side*side])
	for i := 0; i < n; i++ {
		c := cellIdx[i]
		bucket[next[c]] = int32(i)
		next[c]++
	}

	type cand struct {
		d2 float64
		v  int32
	}
	best := make([]cand, 0, k+8)
	keys := make([]uint64, 0, n*k)
	weights := make(map[uint64]float64, n*k)

	for u := 0; u < n; u++ {
		best = best[:0]
		ucx, ucy := cellOf(u)
		cellW := 1.0 / float64(side)
		for ring := 0; ; ring++ {
			// Once we have k candidates, stop when the ring cannot
			// contain anything closer than the current k-th distance.
			if len(best) >= k {
				minRingDist := float64(ring-1) * cellW
				if minRingDist > 0 && minRingDist*minRingDist > best[k-1].d2 {
					break
				}
			}
			if ring > 2*side {
				break
			}
			visited := false
			for cx := ucx - ring; cx <= ucx+ring; cx++ {
				if cx < 0 || cx >= side {
					continue
				}
				for cy := ucy - ring; cy <= ucy+ring; cy++ {
					if cy < 0 || cy >= side {
						continue
					}
					// Ring boundary only.
					if cx != ucx-ring && cx != ucx+ring && cy != ucy-ring && cy != ucy+ring {
						continue
					}
					visited = true
					c := cx*side + cy
					for bi := counts[c]; bi < counts[c+1]; bi++ {
						v := bucket[bi]
						if int(v) == u {
							continue
						}
						dx := xs[u] - xs[v]
						dy := ys[u] - ys[v]
						d2 := dx*dx + dy*dy
						if len(best) < k {
							best = append(best, cand{d2, v})
							if len(best) == k {
								sort.Slice(best, func(i, j int) bool { return best[i].d2 < best[j].d2 })
							}
						} else if d2 < best[k-1].d2 {
							// Insert in sorted order (k is small).
							pos := sort.Search(k, func(i int) bool { return best[i].d2 > d2 })
							copy(best[pos+1:], best[pos:k-1])
							best[pos] = cand{d2, v}
						}
					}
				}
			}
			if !visited && ring > 0 && len(best) >= k {
				break
			}
		}
		if len(best) > 1 && len(best) < k {
			sort.Slice(best, func(i, j int) bool { return best[i].d2 < best[j].d2 })
		}
		for _, c := range best {
			a, b := int32(u), c.v
			if a > b {
				a, b = b, a
			}
			key := uint64(a)<<32 | uint64(b)
			if _, ok := weights[key]; !ok {
				keys = append(keys, key)
				weights[key] = math.Sqrt(c.d2)
			}
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	edges := make([]graph.Edge, len(keys))
	for i, key := range keys {
		edges[i] = graph.Edge{
			U: int32(key >> 32),
			V: int32(key & 0xffffffff),
			W: weights[key],
		}
	}
	return &graph.EdgeList{N: n, Edges: edges}
}
