package gen

import (
	"testing"
)

func TestRandomParallelBasics(t *testing.T) {
	g := RandomParallel(2000, 12000, 1, 4)
	if g.N != 2000 || len(g.Edges) != 12000 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, e := range g.Edges {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
		key := uint64(e.U)<<32 | uint64(e.V)
		if seen[key] {
			t.Fatalf("duplicate edge %+v", e)
		}
		seen[key] = true
		if e.W < 0 || e.W >= 1 {
			t.Fatalf("weight %g", e.W)
		}
	}
}

// The defining property: output is identical for every worker count.
func TestRandomParallelIndependentOfP(t *testing.T) {
	ref := RandomParallel(1000, 6000, 7, 1)
	for _, p := range []int{2, 3, 8} {
		g := RandomParallel(1000, 6000, 7, p)
		if len(g.Edges) != len(ref.Edges) {
			t.Fatalf("p=%d: size differs", p)
		}
		for i := range g.Edges {
			if g.Edges[i] != ref.Edges[i] {
				t.Fatalf("p=%d: edge %d differs: %+v vs %+v", p, i, g.Edges[i], ref.Edges[i])
			}
		}
	}
}

func TestRandomParallelSeedsDiffer(t *testing.T) {
	a := RandomParallel(500, 3000, 1, 4)
	b := RandomParallel(500, 3000, 2, 4)
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == b.Edges[i] {
			same++
		}
	}
	if same == len(a.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomParallelEdgeCases(t *testing.T) {
	if g := RandomParallel(0, 0, 1, 4); g.N != 0 {
		t.Fatal("n=0 broken")
	}
	if g := RandomParallel(1, 0, 1, 4); g.N != 1 || len(g.Edges) != 0 {
		t.Fatal("n=1 broken")
	}
	// Dense request near the maximum.
	n := 50
	max := n * (n - 1) / 2
	g := RandomParallel(n, max-3, 1, 4)
	if len(g.Edges) != max-3 {
		t.Fatalf("dense m = %d, want %d", len(g.Edges), max-3)
	}
}

func TestRandomParallelTooManyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RandomParallel(10, 1000, 1, 2)
}

func TestMergeSortedUint64(t *testing.T) {
	got := mergeSortedUint64([]uint64{1, 3, 5}, []uint64{2, 3, 6})
	want := []uint64{1, 2, 3, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("merged %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged %v, want %v", got, want)
		}
	}
}
