package gen

import (
	"math"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// The structured graphs of Chung and Condon are degenerate inputs — each
// IS a spanning tree — whose recursive construction mirrors the Borůvka
// iteration: the groups that form at recursion level L are exactly the
// supervertices after Borůvka iteration L. Edge weights grow with level
// (with random jitter inside a level), so every level-L edge is lighter
// than every level-(L+1) edge, forcing Borůvka to contract exactly one
// level per iteration pattern:
//
//	str0: groups are pairs            -> n halves each iteration (worst case: log2 n iterations)
//	str1: groups are chains of √n     -> n -> √n each iteration
//	str2: half one chain, half pairs  -> n -> n/4 + 1
//	str3: groups are complete binary trees of √n vertices
//
// Within a group the weights are arranged so the whole group contracts in
// a single iteration (monotone chains; parent-lighter-than-children
// trees), matching the paper's description of the iteration counts.

// levelWeight returns a weight in [level, level+0.5) so levels never
// interleave but weights stay distinct with high probability.
func levelWeight(r *rng.Xoshiro256, level int) float64 {
	return float64(level) + 0.5*r.Float64()
}

// Str0 returns the str0 graph on n vertices (n rounded up to a power of
// two): at every level pairs of group representatives are joined, so
// parallel Borůvka needs exactly log2(n) iterations.
func Str0(n int, seed uint64) *graph.EdgeList {
	n = nextPow2(n)
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n-1)
	level := 0
	for stride := 1; stride < n; stride *= 2 {
		for i := 0; i+stride < n; i += 2 * stride {
			edges = append(edges, graph.Edge{
				U: int32(i), V: int32(i + stride), W: levelWeight(r, level),
			})
		}
		level++
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Str1 returns the str1 graph: at each level the current representatives
// are partitioned into chains of ~√(count) vertices. Chain weights are
// monotone increasing along the chain (within the level band) so every
// chain edge is selected by its right endpoint and the whole chain
// contracts in one iteration.
func Str1(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n-1)
	reps := identity(n)
	level := 0
	for len(reps) > 1 {
		chainLen := int(math.Ceil(math.Sqrt(float64(len(reps)))))
		if chainLen < 2 {
			chainLen = 2
		}
		var nextReps []int32
		for lo := 0; lo < len(reps); lo += chainLen {
			hi := lo + chainLen
			if hi > len(reps) {
				hi = len(reps)
			}
			appendChain(&edges, reps[lo:hi], level, r)
			nextReps = append(nextReps, reps[lo])
		}
		if len(nextReps) == len(reps) {
			// Guard against no progress (can only happen for tiny inputs).
			appendChain(&edges, reps, level, r)
			nextReps = reps[:1]
		}
		reps = nextReps
		level++
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Str2 returns the str2 graph: at each level half the representatives
// form one monotone chain and the other half form pairs.
func Str2(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n-1)
	reps := identity(n)
	level := 0
	for len(reps) > 1 {
		half := len(reps) / 2
		if half < 1 {
			half = 1
		}
		var nextReps []int32
		// First half: a single chain.
		appendChain(&edges, reps[:half], level, r)
		nextReps = append(nextReps, reps[0])
		// Second half: pairs.
		rest := reps[half:]
		for lo := 0; lo < len(rest); lo += 2 {
			if lo+1 < len(rest) {
				edges = append(edges, graph.Edge{U: rest[lo], V: rest[lo+1], W: levelWeight(r, level)})
			}
			nextReps = append(nextReps, rest[lo])
		}
		if len(nextReps) >= len(reps) {
			appendChain(&edges, reps, level, r)
			nextReps = reps[:1]
		}
		reps = nextReps
		level++
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// Str3 returns the str3 graph: at each level groups of ~√(count)
// representatives form complete binary trees whose edge weights increase
// with depth, so every edge is the minimum edge of its child endpoint and
// each tree contracts in one iteration.
func Str3(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	edges := make([]graph.Edge, 0, n-1)
	reps := identity(n)
	level := 0
	for len(reps) > 1 {
		groupLen := int(math.Ceil(math.Sqrt(float64(len(reps)))))
		if groupLen < 2 {
			groupLen = 2
		}
		var nextReps []int32
		for lo := 0; lo < len(reps); lo += groupLen {
			hi := lo + groupLen
			if hi > len(reps) {
				hi = len(reps)
			}
			group := reps[lo:hi]
			// Complete binary tree rooted at group[0] (heap indexing).
			// Weight band within the level rises with depth: the depth of
			// heap index i is floor(log2(i+1)); scale jitter inside
			// [level + depth*eps, ...) keeping the whole group inside the
			// level band below level+1.
			maxDepth := 1
			for 1<<maxDepth < len(group) {
				maxDepth++
			}
			depthBand := 0.5 / float64(maxDepth+1)
			for i := 1; i < len(group); i++ {
				d := 0
				for x := i + 1; x > 1; x >>= 1 {
					d++
				}
				w := float64(level) + float64(d)*depthBand + depthBand*r.Float64()
				edges = append(edges, graph.Edge{U: group[(i-1)/2], V: group[i], W: w})
			}
			nextReps = append(nextReps, group[0])
		}
		if len(nextReps) >= len(reps) {
			appendChain(&edges, reps, level, r)
			nextReps = reps[:1]
		}
		reps = nextReps
		level++
	}
	return &graph.EdgeList{N: n, Edges: edges}
}

// appendChain links ids into a path with weights monotone increasing
// along the path within the level band, so the whole path contracts in a
// single Borůvka iteration.
func appendChain(edges *[]graph.Edge, ids []int32, level int, r *rng.Xoshiro256) {
	k := len(ids) - 1
	if k <= 0 {
		return
	}
	band := 0.5 / float64(k)
	for i := 0; i < k; i++ {
		w := float64(level) + float64(i)*band + band*r.Float64()
		*edges = append(*edges, graph.Edge{U: ids[i], V: ids[i+1], W: w})
	}
}

func identity(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}
