package gen

import (
	"math"
	"testing"

	"pmsf/internal/rng"
)

func TestGeometricBasics(t *testing.T) {
	g := Geometric(2000, 6, 1)
	if g.N != 2000 {
		t.Fatalf("n = %d", g.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Undirected dedupe: between n*k/2 (all mutual) and n*k edges.
	if len(g.Edges) < 2000*6/2 || len(g.Edges) > 2000*6 {
		t.Fatalf("m = %d outside [%d,%d]", len(g.Edges), 2000*6/2, 2000*6)
	}
	for _, e := range g.Edges {
		if e.U >= e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
		if e.W <= 0 || e.W > math.Sqrt2 {
			t.Fatalf("distance weight %g outside (0, sqrt(2)]", e.W)
		}
	}
}

// Every vertex has degree >= k: it is connected to at least its own k
// nearest neighbors (more when it is someone else's neighbor).
func TestGeometricMinDegree(t *testing.T) {
	const n, k = 1000, 5
	g := Geometric(n, k, 2)
	deg := make([]int, n)
	for _, e := range g.Edges {
		deg[e.U]++
		deg[e.V]++
	}
	for v, d := range deg {
		if d < k {
			t.Fatalf("vertex %d has degree %d < k=%d", v, d, k)
		}
	}
}

// Cross-check the grid-accelerated k-NN against brute force on a small
// instance: the k nearest distances found must match exactly.
func TestGeometricMatchesBruteForce(t *testing.T) {
	const n, k = 300, 4
	g := Geometric(n, k, 3)

	// Rebuild the point set with the same RNG consumption order.
	pts := regeneratePoints(n, 3)

	// Brute-force k-NN edge set.
	type pair struct{ a, b int32 }
	want := map[pair]bool{}
	for u := 0; u < n; u++ {
		type cand struct {
			d2 float64
			v  int
		}
		var all []cand
		for v := 0; v < n; v++ {
			if v == u {
				continue
			}
			dx, dy := pts[u][0]-pts[v][0], pts[u][1]-pts[v][1]
			all = append(all, cand{dx*dx + dy*dy, v})
		}
		// Partial selection sort for the k smallest.
		for i := 0; i < k; i++ {
			min := i
			for j := i + 1; j < len(all); j++ {
				if all[j].d2 < all[min].d2 {
					min = j
				}
			}
			all[i], all[min] = all[min], all[i]
			a, b := int32(u), int32(all[i].v)
			if a > b {
				a, b = b, a
			}
			want[pair{a, b}] = true
		}
	}
	got := map[pair]bool{}
	for _, e := range g.Edges {
		got[pair{e.U, e.V}] = true
	}
	if len(got) != len(want) {
		t.Fatalf("edge count %d, brute force %d", len(got), len(want))
	}
	for p := range want {
		if !got[p] {
			t.Fatalf("missing edge %v", p)
		}
	}
}

// regeneratePoints replays the generator's point sampling (the first 2n
// Float64 draws of the seeded stream, x and y interleaved per point).
func regeneratePoints(n int, seed uint64) [][2]float64 {
	r := rng.New(seed)
	pts := make([][2]float64, n)
	for i := 0; i < n; i++ {
		pts[i][0] = r.Float64()
		pts[i][1] = r.Float64()
	}
	return pts
}

func TestGeometricEdgeCases(t *testing.T) {
	if g := Geometric(0, 3, 1); g.N != 0 || len(g.Edges) != 0 {
		t.Fatal("n=0 broken")
	}
	if g := Geometric(1, 3, 1); g.N != 1 || len(g.Edges) != 0 {
		t.Fatal("n=1 broken")
	}
	// k >= n clamps to n-1: the result is the complete graph.
	g := Geometric(5, 10, 1)
	if len(g.Edges) != 10 {
		t.Fatalf("complete geometric graph has %d edges, want 10", len(g.Edges))
	}
}
