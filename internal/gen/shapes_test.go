package gen

import (
	"testing"

	"pmsf/internal/graph"
)

func TestStar(t *testing.T) {
	g := Star(100, 1)
	if g.N != 100 || len(g.Edges) != 99 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	if graph.ComponentCount(g) != 1 {
		t.Fatal("star disconnected")
	}
	deg := degrees(g)
	if deg[0] != 99 {
		t.Fatalf("center degree %d", deg[0])
	}
	for v := 1; v < 100; v++ {
		if deg[v] != 1 {
			t.Fatalf("leaf %d degree %d", v, deg[v])
		}
	}
}

func TestPathAndCycle(t *testing.T) {
	p := Path(50, 1)
	if len(p.Edges) != 49 || graph.ComponentCount(p) != 1 {
		t.Fatal("path wrong")
	}
	c := Cycle(50, 1)
	if len(c.Edges) != 50 || graph.ComponentCount(c) != 1 {
		t.Fatal("cycle wrong")
	}
	for _, d := range degrees(c) {
		if d != 2 {
			t.Fatalf("cycle vertex degree %d", d)
		}
	}
	// Tiny cycles degenerate to paths.
	if len(Cycle(2, 1).Edges) != 1 {
		t.Fatal("2-cycle should be one edge")
	}
}

func TestCaterpillar(t *testing.T) {
	g := Caterpillar(10, 3, 1)
	if g.N != 40 || len(g.Edges) != 9+30 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	if graph.ComponentCount(g) != 1 {
		t.Fatal("caterpillar disconnected")
	}
}

func TestCompleteBipartite(t *testing.T) {
	g := CompleteBipartite(4, 7, 1)
	if g.N != 11 || len(g.Edges) != 28 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.U >= 4 || e.V < 4 {
			t.Fatalf("edge %+v crosses the parts wrongly", e)
		}
	}
}

func TestBinary(t *testing.T) {
	g := Binary(127, 1)
	if len(g.Edges) != 126 || graph.ComponentCount(g) != 1 {
		t.Fatal("binary tree wrong")
	}
	deg := degrees(g)
	if deg[0] != 2 {
		t.Fatalf("root degree %d", deg[0])
	}
}
