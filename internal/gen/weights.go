package gen

import (
	"math"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// WeightDist names an edge-weight distribution. The paper's Fig. 3
// discussion observes that the sequential ranking depends not only on
// density but on the weight assignment; ReweightGraph lets any input
// family be re-drawn under a different distribution to reproduce that
// sensitivity (msf-bench -exp weights).
type WeightDist int

const (
	// WeightsUniform draws from [0, 1) — the paper's default.
	WeightsUniform WeightDist = iota
	// WeightsExponential draws Exp(1): many light edges, a heavy tail.
	WeightsExponential
	// WeightsSmallInts draws uniformly from {0, 1, ..., 7}: massive
	// ties, stressing comparators and making Kruskal's sort cheap per
	// comparison but useless for early termination.
	WeightsSmallInts
	// WeightsStructured makes the weight equal to |u - v| scaled into
	// [0, 1): strongly correlated with the vertex numbering, the
	// adversarial case for algorithms that exploit weight randomness.
	WeightsStructured
)

// String names the distribution.
func (d WeightDist) String() string {
	switch d {
	case WeightsUniform:
		return "uniform"
	case WeightsExponential:
		return "exponential"
	case WeightsSmallInts:
		return "small-ints"
	case WeightsStructured:
		return "structured"
	}
	return "unknown"
}

// WeightDists lists all distributions.
func WeightDists() []WeightDist {
	return []WeightDist{WeightsUniform, WeightsExponential, WeightsSmallInts, WeightsStructured}
}

// Reweight returns a copy of g with edge weights re-drawn from the
// distribution (deterministic in seed). The graph structure is
// untouched.
func Reweight(g *graph.EdgeList, d WeightDist, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	out := g.Clone()
	n := float64(g.N)
	for i := range out.Edges {
		switch d {
		case WeightsExponential:
			u := r.Float64()
			if u >= 1 {
				u = math.Nextafter(1, 0)
			}
			out.Edges[i].W = -math.Log(1 - u)
		case WeightsSmallInts:
			out.Edges[i].W = float64(r.Intn(8))
		case WeightsStructured:
			diff := float64(out.Edges[i].U - out.Edges[i].V)
			if diff < 0 {
				diff = -diff
			}
			if n > 1 {
				out.Edges[i].W = diff / n
			} else {
				out.Edges[i].W = 0
			}
		default:
			out.Edges[i].W = r.Float64()
		}
	}
	return out
}
