package gen

import (
	"testing"

	"pmsf/internal/boruvka"
	"pmsf/internal/graph"
)

// The structured graphs are spanning trees by construction.
func TestStructuredAreTrees(t *testing.T) {
	makers := map[string]func(int, uint64) *graph.EdgeList{
		"str0": Str0, "str1": Str1, "str2": Str2, "str3": Str3,
	}
	for name, mk := range makers {
		for _, n := range []int{2, 3, 10, 100, 1000} {
			g := mk(n, 1)
			if err := g.Validate(); err != nil {
				t.Fatalf("%s(%d): %v", name, n, err)
			}
			if len(g.Edges) != g.N-1 {
				t.Fatalf("%s(%d): %d edges for %d vertices (not a tree)",
					name, n, len(g.Edges), g.N)
			}
			if c := graph.ComponentCount(g); c != 1 {
				t.Fatalf("%s(%d): %d components", name, n, c)
			}
		}
	}
}

// Str0 rounds n to the next power of two.
func TestStr0RoundsToPow2(t *testing.T) {
	g := Str0(1000, 1)
	if g.N != 1024 {
		t.Fatalf("n = %d, want 1024", g.N)
	}
}

// The defining property of str0: parallel Borůvka halves the vertex count
// EXACTLY each iteration, needing the full log2(n) iterations (the
// paper's worst case for the number of iterations).
func TestStr0ForcesLog2nIterations(t *testing.T) {
	const n = 256
	g := Str0(n, 3)
	_, stats := boruvka.AL(g, boruvka.Options{Stats: true})
	if len(stats.Iters) != 8 {
		t.Fatalf("str0(256) took %d iterations, want 8", len(stats.Iters))
	}
	for i, it := range stats.Iters {
		if want := n >> i; it.N != want {
			t.Fatalf("iteration %d started with %d supervertices, want exactly %d",
				i+1, it.N, want)
		}
	}
}

// str1 contracts chains of ~sqrt(n): the supervertex count should
// collapse much faster than halving (n -> ~sqrt(n) per iteration).
func TestStr1CollapsesFast(t *testing.T) {
	g := Str1(10_000, 4)
	_, stats := boruvka.AL(g, boruvka.Options{Stats: true})
	if len(stats.Iters) == 0 {
		t.Fatal("no iterations")
	}
	if len(stats.Iters) > 6 {
		t.Fatalf("str1(10000) took %d iterations; the sqrt-chain structure should finish in ~4", len(stats.Iters))
	}
	// The second iteration must start with roughly sqrt(n) supervertices.
	if len(stats.Iters) > 1 {
		n2 := stats.Iters[1].N
		if n2 > 400 {
			t.Fatalf("after one iteration %d supervertices remain; want ~sqrt(10000)", n2)
		}
	}
}

// str2's recurrence is n -> n/4 + 1.
func TestStr2Recurrence(t *testing.T) {
	g := Str2(4096, 5)
	_, stats := boruvka.AL(g, boruvka.Options{Stats: true})
	if len(stats.Iters) < 2 {
		t.Fatal("too few iterations")
	}
	n2 := stats.Iters[1].N
	if n2 < 4096/4 || n2 > 4096/4+64 {
		t.Fatalf("after one iteration %d supervertices, want ~%d", n2, 4096/4+1)
	}
}

// str3's complete binary trees contract in one iteration each, so the
// count drops to ~sqrt(n) per iteration like str1.
func TestStr3CollapsesFast(t *testing.T) {
	g := Str3(10_000, 6)
	_, stats := boruvka.AL(g, boruvka.Options{Stats: true})
	if len(stats.Iters) > 6 {
		t.Fatalf("str3(10000) took %d iterations", len(stats.Iters))
	}
}

func TestStructuredDeterministic(t *testing.T) {
	a, b := Str2(500, 9), Str2(500, 9)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("str2 not deterministic")
		}
	}
}

// Weight levels must be disjoint: every level-L edge lighter than every
// level-(L+1) edge. Str0 encodes level in the integer part.
func TestStr0WeightLevels(t *testing.T) {
	g := Str0(64, 7)
	for _, e := range g.Edges {
		frac := e.W - float64(int(e.W))
		if frac < 0 || frac >= 0.5 {
			t.Fatalf("weight %g outside its level band", e.W)
		}
	}
}
