package gen

import (
	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// SlidingWindowStream builds a reproducible dynamic-MSF workload over a
// base graph g: a FIFO window of live edges is seeded with g's edge
// list, then each batch appends `batch` fresh uniform-random edges
// (adds) and evicts edges from the front of the window (dels) until at
// most `window` live edges remain. With window = len(g.Edges) this is
// the classic sliding-window stream: every batch adds K edges and
// deletes the K oldest ones, so the live graph keeps a steady size
// while its content turns over — the "millions of users streaming small
// mutations" shape the dynamic subsystem exists for.
//
// Exactly `mutations` add-mutations are generated (the last batch may
// be short). Deletions always reference edges that are live at their
// batch (base edges first, then earlier adds), which is the contract
// dynmsf.ApplyEdges enforces.
func SlidingWindowStream(g *graph.EdgeList, mutations, window, batch int, seed uint64) *graph.EdgeStream {
	if batch <= 0 {
		batch = 1024
	}
	if window <= 0 {
		window = len(g.Edges)
	}
	r := rng.New(seed)
	s := &graph.EdgeStream{N: g.N}
	fifo := make([]graph.Edge, len(g.Edges), len(g.Edges)+batch)
	copy(fifo, g.Edges)
	head := 0 // fifo[head:] are live
	for produced := 0; produced < mutations; {
		k := batch
		if mutations-produced < k {
			k = mutations - produced
		}
		var b graph.MutationBatch
		for i := 0; i < k; i++ {
			b.Add = append(b.Add, randomEdge(g.N, r))
		}
		fifo = append(fifo, b.Add...)
		for len(fifo)-head > window {
			b.Del = append(b.Del, fifo[head])
			head++
		}
		// Reclaim consumed prefix occasionally so memory stays O(window).
		if head > window && head > len(fifo)/2 {
			fifo = append(fifo[:0:0], fifo[head:]...)
			head = 0
		}
		s.Batches = append(s.Batches, b)
		produced += k
	}
	return s
}

// randomEdge draws one uniform non-self-loop edge with a uniform [0,1)
// weight.
func randomEdge(n int, r *rng.Xoshiro256) graph.Edge {
	if n < 2 {
		return graph.Edge{U: 0, V: 0, W: r.Float64()}
	}
	u := int32(r.Intn(n))
	v := int32(r.Intn(n - 1))
	if v >= u {
		v++
	}
	return graph.Edge{U: u, V: v, W: r.Float64()}
}
