package gen

import (
	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// Elementary graph shapes. These are not the paper's benchmark families;
// they exist to stress specific algorithm behaviours in tests: stars
// (single supervertex absorbing everything in one iteration, maximum
// group size in compact-graph), paths (maximum Borůvka iteration depth
// per edge, deepest path-max queries), cycles (the MST-BC progress
// pathology), caterpillars (mixed degrees), and complete bipartite
// graphs (dense multi-edges between few supervertices after one
// contraction).

// Star returns a star with n-1 leaves centered at vertex 0, with uniform
// random weights.
func Star(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	g := &graph.EdgeList{N: n}
	for i := int32(1); i < int32(n); i++ {
		g.Edges = append(g.Edges, graph.Edge{U: 0, V: i, W: r.Float64()})
	}
	return g
}

// Path returns the path 0-1-...-n-1 with uniform random weights.
func Path(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	g := &graph.EdgeList{N: n}
	for i := int32(0); i+1 < int32(n); i++ {
		g.Edges = append(g.Edges, graph.Edge{U: i, V: i + 1, W: r.Float64()})
	}
	return g
}

// Cycle returns the n-cycle with uniform random weights — the structure
// behind the paper's MST-BC zero-progress example.
func Cycle(n int, seed uint64) *graph.EdgeList {
	g := Path(n, seed)
	if n >= 3 {
		r := rng.New(seed + 1)
		g.Edges = append(g.Edges, graph.Edge{U: int32(n - 1), V: 0, W: r.Float64()})
	}
	return g
}

// Caterpillar returns a path of spineLen vertices with legsPerSpine leaf
// legs attached to every spine vertex.
func Caterpillar(spineLen, legsPerSpine int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	n := spineLen * (1 + legsPerSpine)
	g := &graph.EdgeList{N: n}
	for i := 0; i+1 < spineLen; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1), W: r.Float64()})
	}
	leg := spineLen
	for i := 0; i < spineLen; i++ {
		for l := 0; l < legsPerSpine; l++ {
			g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(leg), W: r.Float64()})
			leg++
		}
	}
	return g
}

// CompleteBipartite returns K_{a,b} with uniform random weights: parts
// {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	g := &graph.EdgeList{N: a + b}
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			g.Edges = append(g.Edges, graph.Edge{
				U: int32(i), V: int32(a + j), W: r.Float64(),
			})
		}
	}
	return g
}

// Binary returns a complete binary tree on n vertices (heap indexing)
// with uniform random weights.
func Binary(n int, seed uint64) *graph.EdgeList {
	r := rng.New(seed)
	g := &graph.EdgeList{N: n}
	for i := 1; i < n; i++ {
		g.Edges = append(g.Edges, graph.Edge{
			U: int32((i - 1) / 2), V: int32(i), W: r.Float64(),
		})
	}
	return g
}
