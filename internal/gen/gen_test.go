package gen

import (
	"testing"

	"pmsf/internal/graph"
)

func TestRandomBasics(t *testing.T) {
	g := Random(1000, 5000, 1)
	if g.N != 1000 || len(g.Edges) != 5000 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for _, e := range g.Edges {
		if e.U == e.V {
			t.Fatalf("self-loop %+v", e)
		}
		if e.U > e.V {
			t.Fatalf("edge not normalized: %+v", e)
		}
		key := uint64(e.U)<<32 | uint64(e.V)
		if seen[key] {
			t.Fatalf("duplicate edge %+v", e)
		}
		seen[key] = true
		if e.W < 0 || e.W >= 1 {
			t.Fatalf("weight %g out of [0,1)", e.W)
		}
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(500, 2000, 7)
	b := Random(500, 2000, 7)
	c := Random(500, 2000, 8)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("same seed different sizes")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("same seed different graphs")
		}
	}
	same := 0
	for i := range a.Edges {
		if a.Edges[i] == c.Edges[i] {
			same++
		}
	}
	if same == len(a.Edges) {
		t.Fatal("different seeds produced identical graphs")
	}
}

func TestRandomDense(t *testing.T) {
	// Request nearly all possible edges; dedupe/top-up must still finish.
	n := 40
	max := n * (n - 1) / 2
	g := Random(n, max-5, 2)
	if len(g.Edges) != max-5 {
		t.Fatalf("m = %d, want %d", len(g.Edges), max-5)
	}
}

func TestRandomComplete(t *testing.T) {
	n := 20
	max := n * (n - 1) / 2
	g := Random(n, max, 3)
	if len(g.Edges) != max {
		t.Fatalf("complete graph has %d edges, want %d", len(g.Edges), max)
	}
}

func TestRandomTooManyEdgesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for impossible m")
		}
	}()
	Random(10, 100, 1)
}

func TestRandomTinyN(t *testing.T) {
	if g := Random(0, 0, 1); g.N != 0 || len(g.Edges) != 0 {
		t.Fatal("n=0 broken")
	}
	if g := Random(1, 0, 1); g.N != 1 || len(g.Edges) != 0 {
		t.Fatal("n=1 broken")
	}
	if g := Random(2, 1, 1); len(g.Edges) != 1 {
		t.Fatal("n=2 m=1 broken")
	}
}

func TestMesh2D(t *testing.T) {
	g := Mesh2D(5, 7, 1)
	if g.N != 35 {
		t.Fatalf("n = %d", g.N)
	}
	// rows*(cols-1) + (rows-1)*cols edges.
	want := 5*6 + 4*7
	if len(g.Edges) != want {
		t.Fatalf("m = %d, want %d", len(g.Edges), want)
	}
	if graph.ComponentCount(g) != 1 {
		t.Fatal("mesh not connected")
	}
	// Every edge joins 4-neighbors.
	for _, e := range g.Edges {
		du := int(e.V - e.U)
		if du != 1 && du != 7 {
			t.Fatalf("edge %+v is not a grid neighbor", e)
		}
	}
}

func TestMesh2D60(t *testing.T) {
	g := Mesh2D60(50, 50, 1)
	full := 50 * 49 * 2
	ratio := float64(len(g.Edges)) / float64(full)
	if ratio < 0.55 || ratio > 0.65 {
		t.Fatalf("edge retention %.3f, want ~0.60", ratio)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMesh3D40(t *testing.T) {
	g := Mesh3D40(12, 1)
	if g.N != 12*12*12 {
		t.Fatalf("n = %d", g.N)
	}
	full := 3 * 12 * 12 * 11
	ratio := float64(len(g.Edges)) / float64(full)
	if ratio < 0.35 || ratio > 0.45 {
		t.Fatalf("edge retention %.3f, want ~0.40", ratio)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPermutePreservesStructure(t *testing.T) {
	g := Random(200, 800, 5)
	pg := Permute(g, 6)
	if pg.N != g.N || len(pg.Edges) != len(g.Edges) {
		t.Fatal("shape changed")
	}
	if err := pg.Validate(); err != nil {
		t.Fatal(err)
	}
	// Weights travel with their edges.
	for i := range g.Edges {
		if pg.Edges[i].W != g.Edges[i].W {
			t.Fatal("weights reordered")
		}
	}
	// Degree multiset is invariant under relabeling.
	if !sameMultiset(degrees(g), degrees(pg)) {
		t.Fatal("degree multiset changed")
	}
	if graph.ComponentCount(g) != graph.ComponentCount(pg) {
		t.Fatal("component count changed")
	}
}

func degrees(g *graph.EdgeList) []int {
	d := make([]int, g.N)
	for _, e := range g.Edges {
		d[e.U]++
		d[e.V]++
	}
	return d
}

func sameMultiset(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	count := map[int]int{}
	for _, v := range a {
		count[v]++
	}
	for _, v := range b {
		count[v]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}
