package gen

import (
	"math"
	"testing"
)

func TestReweightPreservesStructure(t *testing.T) {
	g := Random(500, 2500, 1)
	for _, d := range WeightDists() {
		rw := Reweight(g, d, 7)
		if rw.N != g.N || len(rw.Edges) != len(g.Edges) {
			t.Fatalf("%v: shape changed", d)
		}
		for i := range rw.Edges {
			if rw.Edges[i].U != g.Edges[i].U || rw.Edges[i].V != g.Edges[i].V {
				t.Fatalf("%v: endpoints changed at %d", d, i)
			}
			if math.IsNaN(rw.Edges[i].W) {
				t.Fatalf("%v: NaN weight", d)
			}
		}
		if err := rw.Validate(); err != nil {
			t.Fatalf("%v: %v", d, err)
		}
	}
	// The original is untouched.
	if g.Edges[0].W < 0 || g.Edges[0].W >= 1 {
		t.Fatal("original graph modified")
	}
}

func TestReweightDistributions(t *testing.T) {
	g := Random(300, 20000, 2)

	exp := Reweight(g, WeightsExponential, 3)
	var mean float64
	for _, e := range exp.Edges {
		if e.W < 0 {
			t.Fatal("negative exponential weight")
		}
		mean += e.W
	}
	mean /= float64(len(exp.Edges))
	if mean < 0.9 || mean > 1.1 {
		t.Fatalf("exponential mean %.3f, want ~1", mean)
	}

	ints := Reweight(g, WeightsSmallInts, 4)
	seen := map[float64]bool{}
	for _, e := range ints.Edges {
		if e.W != math.Trunc(e.W) || e.W < 0 || e.W > 7 {
			t.Fatalf("small-int weight %g", e.W)
		}
		seen[e.W] = true
	}
	if len(seen) != 8 {
		t.Fatalf("only %d distinct small-int values", len(seen))
	}

	st := Reweight(g, WeightsStructured, 5)
	for _, e := range st.Edges {
		diff := float64(e.U - e.V)
		if diff < 0 {
			diff = -diff
		}
		if e.W != diff/float64(g.N) {
			t.Fatalf("structured weight mismatch: %g vs %g", e.W, diff/float64(g.N))
		}
	}
}

func TestReweightDeterministic(t *testing.T) {
	g := Random(200, 800, 6)
	a := Reweight(g, WeightsExponential, 9)
	b := Reweight(g, WeightsExponential, 9)
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("not deterministic")
		}
	}
}

func TestWeightDistNames(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range WeightDists() {
		n := d.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("bad name %q", n)
		}
		seen[n] = true
	}
	if WeightDist(99).String() != "unknown" {
		t.Fatal("unknown name")
	}
}
