package bench

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"
)

func TestParseScale(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Scale
	}{{"tiny", Tiny}, {"small", Small}, {"", Small}, {"MEDIUM", Medium}, {"paper", Paper}} {
		got, err := ParseScale(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseScale(%q) = %v, %v", c.in, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScaleStringRoundTrip(t *testing.T) {
	for _, s := range []Scale{Tiny, Small, Medium, Paper} {
		got, err := ParseScale(s.String())
		if err != nil || got != s {
			t.Errorf("round trip of %v failed", s)
		}
	}
}

func TestBaseNOrdering(t *testing.T) {
	if !(Tiny.BaseN() < Small.BaseN() && Small.BaseN() < Medium.BaseN() && Medium.BaseN() < Paper.BaseN()) {
		t.Fatal("BaseN not increasing with scale")
	}
	if Paper.BaseN() != 1_000_000 {
		t.Fatalf("paper scale BaseN = %d", Paper.BaseN())
	}
}

func TestTableWriteText(t *testing.T) {
	tb := &Table{
		ID: "t", Title: "demo",
		Header: []string{"a", "long-header"},
		Rows:   [][]string{{"x", "1"}, {"yyyyyyyy", "2"}},
		Notes:  []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tb.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== t: demo ==", "long-header", "yyyyyyyy", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
}

func TestTableWriteCSV(t *testing.T) {
	tb := &Table{
		Header: []string{"a", "b"},
		Rows:   [][]string{{"x,1", `say "hi"`}},
	}
	var buf bytes.Buffer
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n\"x,1\",\"say \"\"hi\"\"\"\n"
	if buf.String() != want {
		t.Fatalf("csv = %q, want %q", buf.String(), want)
	}
}

func TestWorkloadsProduceValidGraphs(t *testing.T) {
	all := append([]Workload{RandomWorkload(4)}, append(MeshWorkloads(), StructuredWorkloads()...)...)
	for _, w := range all {
		g := w.Make(Tiny, 1)
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", w.Name, err)
		}
		if g.N == 0 || len(g.Edges) == 0 {
			t.Errorf("%s: degenerate graph n=%d m=%d", w.Name, g.N, len(g.Edges))
		}
	}
}

func TestBestSequentialTimesAllThree(t *testing.T) {
	g := RandomWorkload(4).Make(Tiny, 1)
	name, best, times := BestSequential(g)
	if len(times) != 3 {
		t.Fatalf("timed %d algorithms", len(times))
	}
	if times[name] != best {
		t.Fatal("winner time inconsistent")
	}
	for _, d := range times {
		if d < best {
			t.Fatal("best is not minimal")
		}
	}
}

func cfg() Config { return Config{Scale: Tiny, Seed: 1, Workers: []int{1, 2}} }

func TestTable1Shape(t *testing.T) {
	tables := Table1(cfg())
	if len(tables) != 2 {
		t.Fatalf("%d tables, want 2 (G1, G2)", len(tables))
	}
	for i, tb := range tables {
		minIters := 4 // G1 at Tiny scale (n=2000, m=12000)
		if i == 1 {
			minIters = 2 // G2 is 100x smaller
		}
		if len(tb.Rows) < minIters {
			t.Fatalf("%s: only %d iterations", tb.ID, len(tb.Rows))
		}
		// 2m strictly decreases.
		prev := int64(1) << 62
		for _, row := range tb.Rows {
			v, err := strconv.ParseInt(row[1], 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			if v >= prev {
				t.Fatalf("%s: 2m not strictly decreasing (%d -> %d)", tb.ID, prev, v)
			}
			prev = v
		}
	}
}

func TestFig2Shape(t *testing.T) {
	tables := Fig2(cfg())
	if len(tables) != 3 {
		t.Fatalf("%d tables, want 3 densities", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) != 4 {
			t.Fatalf("%s: %d rows, want 4 variants", tb.ID, len(tb.Rows))
		}
		names := []string{}
		for _, r := range tb.Rows {
			names = append(names, r[0])
		}
		want := "Bor-EL Bor-AL Bor-ALM Bor-FAL"
		if strings.Join(names, " ") != want {
			t.Fatalf("%s: rows %v", tb.ID, names)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	tables := Fig3(cfg())
	if len(tables) != 1 {
		t.Fatal("fig3 must be one table")
	}
	tb := tables[0]
	if len(tb.Rows) != 11 { // 3 random + 4 mesh + 4 structured
		t.Fatalf("fig3 rows = %d, want 11", len(tb.Rows))
	}
	for _, row := range tb.Rows {
		best := row[len(row)-1]
		if best != "Prim" && best != "Kruskal" && best != "Boruvka" {
			t.Fatalf("unknown best algorithm %q", best)
		}
	}
}

func TestSweepFigures(t *testing.T) {
	for name, exp := range map[string]func(Config) []*Table{"fig4": Fig4, "fig5": Fig5, "fig6": Fig6} {
		tables := exp(cfg())
		if len(tables) != 4 {
			t.Fatalf("%s: %d tables, want 4", name, len(tables))
		}
		for _, tb := range tables {
			if len(tb.Rows) != 5 {
				t.Fatalf("%s/%s: %d rows, want 5 parallel algorithms", name, tb.ID, len(tb.Rows))
			}
			// Header: algorithm, one column per p, speedup.
			if len(tb.Header) != 2+len(cfg().workers()) {
				t.Fatalf("%s/%s: header %v", name, tb.ID, tb.Header)
			}
		}
	}
}

func TestModelExperiment(t *testing.T) {
	tables := Model(cfg())
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	// Every predicted AL/EL ratio must be < 1 (the paper's claim).
	for _, row := range tables[1].Rows {
		v, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			t.Fatal(err)
		}
		if v >= 1 {
			t.Fatalf("predicted ratio %g >= 1 at m/n=%s", v, row[0])
		}
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	reg := Experiments()
	for _, id := range ExperimentIDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("experiment %q missing from registry", id)
		}
	}
	if len(reg) != len(ExperimentIDs()) {
		t.Errorf("registry has %d entries, ids list %d", len(reg), len(ExperimentIDs()))
	}
}

func TestTableWriteJSON(t *testing.T) {
	tb := &Table{ID: "x", Title: "t", Header: []string{"a"}, Rows: [][]string{{"1"}}, Notes: []string{"n"}}
	var buf bytes.Buffer
	if err := tb.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		ID     string     `json:"id"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.ID != "x" || len(decoded.Rows) != 1 || decoded.Notes[0] != "n" {
		t.Fatalf("decoded %+v", decoded)
	}
}
