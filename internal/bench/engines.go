package bench

import (
	"math"
	"time"

	"pmsf"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
)

// The MSF engine matrix: the two lock-free engines (Bor-CAS, Bor-WM)
// against the Bor-EL reference, end to end, across low-diameter and
// tie-heavy families at several worker counts. msf-bench -benchjson
// attaches the rows to the compact-graph report (results/BENCH_PR6.json)
// and benchguard tracks them warn-only.

// EngineBenchEntry is one algorithm × workers × family measurement.
type EngineBenchEntry struct {
	Algo    string `json:"algo"`
	Workers int    `json:"workers"`
	Family  string `json:"family"`
	N       int    `json:"n"`
	M       int    `json:"m"`
	NsPerOp int64  `json:"ns_per_op"`
}

// engineFamily is one input of the matrix.
type engineFamily struct {
	name string
	g    *graph.EdgeList
}

// engineFamilies builds the matrix inputs: low-diameter random graphs
// (distinct and tied weights), a star (diameter 2), a geometric graph,
// and a mesh as the high-diameter control.
func engineFamilies(scale Scale, seed uint64) []engineFamily {
	n := scale.BaseN()
	side := int(math.Sqrt(float64(n)))
	return []engineFamily{
		{"random-6x", gen.Random(n, 6*n, seed)},
		{"random-6x-ties", gen.Reweight(gen.Random(n, 6*n, seed+1), gen.WeightsSmallInts, seed+2)},
		{"star", gen.Star(n, seed+3)},
		{"geometric-k6", gen.Geometric(n, 6, seed+4)},
		{"mesh", gen.Mesh2D(side, side, seed+5)},
	}
}

// EngineAlgos lists the matrix algorithms, reference first.
func EngineAlgos() []pmsf.Algorithm {
	return []pmsf.Algorithm{pmsf.BorEL, pmsf.BorCAS, pmsf.BorWM}
}

// EngineMatrixBench measures the engine matrix: best-of-reps wall time
// of a full MinimumSpanningForest call per (family, algorithm, p).
func EngineMatrixBench(cfg Config) []EngineBenchEntry {
	reps := 3
	if cfg.Scale >= Paper {
		reps = 1
	}
	var out []EngineBenchEntry
	for _, fam := range engineFamilies(cfg.Scale, cfg.Seed) {
		for _, algo := range EngineAlgos() {
			for _, p := range cfg.workers() {
				var best time.Duration
				for r := 0; r < reps; r++ {
					d := timeIt(func() {
						if _, _, err := pmsf.MinimumSpanningForest(fam.g, algo, pmsf.Options{
							Workers: p, Seed: cfg.Seed,
						}); err != nil {
							panic(err)
						}
					})
					if r == 0 || d < best {
						best = d
					}
				}
				out = append(out, EngineBenchEntry{
					Algo:    algo.String(),
					Workers: p,
					Family:  fam.name,
					N:       fam.g.N,
					M:       len(fam.g.Edges),
					NsPerOp: best.Nanoseconds(),
				})
			}
		}
	}
	return out
}
