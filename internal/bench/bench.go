// Package bench is the experiment harness that regenerates every table
// and figure of the paper's evaluation (Section 5): Table 1 (edge-list
// decay across Borůvka iterations), Fig. 2 (per-step time breakdown of
// the Borůvka variants), Fig. 3 (sequential algorithm ranking), and
// Figs. 4-6 (parallel algorithms vs the best sequential baseline on
// random graphs, meshes, and structured inputs).
//
// Experiments return structured Tables so the CLI can render text or CSV
// and tests can assert the paper's qualitative shapes.
package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"pmsf/internal/boruvka"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/mstbc"
	"pmsf/internal/seq"
)

// Scale selects the input sizes: Small for CI-speed runs, Medium for
// laptop-scale studies, Paper for the paper's 1M-vertex inputs.
type Scale int

const (
	// Tiny exists for fast automated tests of the harness itself.
	Tiny Scale = iota
	Small
	Medium
	Paper
)

// ParseScale resolves "tiny" / "small" / "medium" / "paper".
func ParseScale(s string) (Scale, error) {
	switch strings.ToLower(s) {
	case "tiny":
		return Tiny, nil
	case "small", "":
		return Small, nil
	case "medium":
		return Medium, nil
	case "paper":
		return Paper, nil
	}
	return 0, fmt.Errorf("bench: unknown scale %q (want tiny, small, medium or paper)", s)
}

func (s Scale) String() string {
	switch s {
	case Tiny:
		return "tiny"
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Paper:
		return "paper"
	}
	return fmt.Sprintf("Scale(%d)", int(s))
}

// BaseN returns the vertex count of the scale's "1M-class" input.
func (s Scale) BaseN() int {
	switch s {
	case Tiny:
		return 2_000
	case Small:
		return 20_000
	case Medium:
		return 200_000
	default:
		return 1_000_000
	}
}

// Table is one rendered experiment artifact.
type Table struct {
	ID     string // experiment id, e.g. "fig4.random-6m"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// WriteText renders the table with aligned columns.
func (t *Table) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	total := len(t.Header) - 1
	for _, wd := range widths {
		total += wd + 1
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON renders the table as a single JSON object with id, title,
// header, rows and notes — the machine-readable artifact format.
func (t *Table) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		ID     string     `json:"id"`
		Title  string     `json:"title"`
		Header []string   `json:"header"`
		Rows   [][]string `json:"rows"`
		Notes  []string   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Header, t.Rows, t.Notes})
}

// WriteCSV renders the table as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	rows := append([][]string{t.Header}, t.Rows...)
	for _, row := range rows {
		quoted := make([]string, len(row))
		for i, c := range row {
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			quoted[i] = c
		}
		if _, err := fmt.Fprintln(w, strings.Join(quoted, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Workload is one named input graph family instantiated at a scale.
type Workload struct {
	Name string
	Make func(scale Scale, seed uint64) *graph.EdgeList
}

// RandomWorkload builds a random graph whose edge count is ratio×n.
func RandomWorkload(ratio int) Workload {
	return Workload{
		Name: fmt.Sprintf("random-%dx", ratio),
		Make: func(s Scale, seed uint64) *graph.EdgeList {
			n := s.BaseN()
			return gen.Random(n, ratio*n, seed)
		},
	}
}

// MeshWorkloads returns the Fig. 5 input families.
func MeshWorkloads() []Workload {
	return []Workload{
		{Name: "mesh", Make: func(s Scale, seed uint64) *graph.EdgeList {
			side := isqrt(s.BaseN())
			return gen.Mesh2D(side, side, seed)
		}},
		{Name: "geometric-k6", Make: func(s Scale, seed uint64) *graph.EdgeList {
			return gen.Geometric(s.BaseN(), 6, seed)
		}},
		{Name: "2D60", Make: func(s Scale, seed uint64) *graph.EdgeList {
			side := isqrt(s.BaseN())
			return gen.Mesh2D60(side, side, seed)
		}},
		{Name: "3D40", Make: func(s Scale, seed uint64) *graph.EdgeList {
			return gen.Mesh3D40(icbrt(s.BaseN()), seed)
		}},
	}
}

// StructuredWorkloads returns the Fig. 6 input families.
func StructuredWorkloads() []Workload {
	return []Workload{
		{Name: "str0", Make: func(s Scale, seed uint64) *graph.EdgeList { return gen.Str0(s.BaseN(), seed) }},
		{Name: "str1", Make: func(s Scale, seed uint64) *graph.EdgeList { return gen.Str1(s.BaseN(), seed) }},
		{Name: "str2", Make: func(s Scale, seed uint64) *graph.EdgeList { return gen.Str2(s.BaseN(), seed) }},
		{Name: "str3", Make: func(s Scale, seed uint64) *graph.EdgeList { return gen.Str3(s.BaseN(), seed) }},
	}
}

func isqrt(n int) int {
	r := 1
	for r*r < n {
		r++
	}
	return r
}

func icbrt(n int) int {
	r := 1
	for r*r*r < n {
		r++
	}
	return r
}

// timeIt runs f and returns its wall time.
func timeIt(f func()) time.Duration {
	start := time.Now()
	f()
	return time.Since(start)
}

// SeqAlgo names a sequential baseline.
type SeqAlgo struct {
	Name string
	Run  func(*graph.EdgeList) *graph.Forest
}

// SeqAlgos returns the three sequential baselines.
func SeqAlgos() []SeqAlgo {
	return []SeqAlgo{
		{"Prim", seq.Prim},
		{"Kruskal", seq.Kruskal},
		{"Boruvka", seq.Boruvka},
	}
}

// BestSequential runs all three baselines on g and returns the winner's
// name and time (each timed once; inputs are large enough for stable
// ranking at Medium+ scale).
func BestSequential(g *graph.EdgeList) (string, time.Duration, map[string]time.Duration) {
	times := make(map[string]time.Duration, 3)
	bestName := ""
	var best time.Duration
	for _, a := range SeqAlgos() {
		d := timeIt(func() { a.Run(g) })
		times[a.Name] = d
		if bestName == "" || d < best {
			bestName, best = a.Name, d
		}
	}
	return bestName, best, times
}

// ParAlgo names a parallel algorithm.
type ParAlgo struct {
	Name string
	Run  func(g *graph.EdgeList, workers int, seed uint64) *graph.Forest
}

// ParAlgos returns the five parallel algorithms.
func ParAlgos() []ParAlgo {
	return []ParAlgo{
		{"Bor-EL", func(g *graph.EdgeList, p int, seed uint64) *graph.Forest {
			f, _ := boruvka.EL(g, boruvka.Options{Workers: p, Seed: seed})
			return f
		}},
		{"Bor-AL", func(g *graph.EdgeList, p int, seed uint64) *graph.Forest {
			f, _ := boruvka.AL(g, boruvka.Options{Workers: p, Seed: seed})
			return f
		}},
		{"Bor-ALM", func(g *graph.EdgeList, p int, seed uint64) *graph.Forest {
			f, _ := boruvka.ALM(g, boruvka.Options{Workers: p, Seed: seed})
			return f
		}},
		{"Bor-FAL", func(g *graph.EdgeList, p int, seed uint64) *graph.Forest {
			f, _ := boruvka.FAL(g, boruvka.Options{Workers: p, Seed: seed})
			return f
		}},
		{"MST-BC", func(g *graph.EdgeList, p int, seed uint64) *graph.Forest {
			f, _ := mstbc.Run(g, mstbc.Options{Workers: p, Seed: seed})
			return f
		}},
	}
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000)
}
