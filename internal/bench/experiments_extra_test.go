package bench

import (
	"strconv"
	"strings"
	"testing"
)

func TestProfileExperiment(t *testing.T) {
	tables := Profile(cfg())
	if len(tables) != 1 {
		t.Fatalf("%d tables", len(tables))
	}
	tb := tables[0]
	if len(tb.Rows) < 3 {
		t.Fatalf("only %d iterations profiled", len(tb.Rows))
	}
	// Bucket columns must sum to the list count on every row.
	for _, row := range tb.Rows {
		lists, _ := strconv.ParseInt(row[1], 10, 64)
		var sum int64
		for _, cell := range row[2:] {
			v, err := strconv.ParseInt(cell, 10, 64)
			if err != nil {
				t.Fatal(err)
			}
			sum += v
		}
		if sum != lists {
			t.Fatalf("bucket sum %d != lists %d", sum, lists)
		}
	}
	if len(tb.Notes) != 2 {
		t.Fatalf("notes %v", tb.Notes)
	}
}

func TestGraphStatsExperiment(t *testing.T) {
	tables := GraphStats(cfg())
	if len(tables) != 1 {
		t.Fatal("want one table")
	}
	tb := tables[0]
	if len(tb.Rows) != 12 { // 4 random + 4 mesh + 4 structured
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Structured inputs are trees: m = n-1 and one component.
	for _, row := range tb.Rows {
		if !strings.HasPrefix(row[0], "str") {
			continue
		}
		n, _ := strconv.Atoi(row[1])
		m, _ := strconv.Atoi(row[2])
		if m != n-1 || row[4] != "1" {
			t.Fatalf("structured row %v is not a spanning tree", row)
		}
	}
}

func TestFilterExperiment(t *testing.T) {
	tables := FilterExp(cfg())
	if len(tables) != 1 {
		t.Fatal("want one table")
	}
	tb := tables[0]
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows", len(tb.Rows))
	}
	// Survivors per vertex must stay roughly constant (the KKT lemma):
	// max/min ratio below 2 across densities 4x..20x.
	var lo, hi float64
	for i, row := range tb.Rows {
		v, err := strconv.ParseFloat(row[4], 64)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			lo, hi = v, v
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi/lo > 2 {
		t.Fatalf("survivors/n varies too much: %.2f..%.2f", lo, hi)
	}
}

func TestConfigWorkersDefault(t *testing.T) {
	c := Config{}
	if len(c.workers()) != 4 {
		t.Fatalf("default workers %v", c.workers())
	}
	c = Config{Workers: []int{3}}
	if len(c.workers()) != 1 || c.workers()[0] != 3 {
		t.Fatalf("explicit workers %v", c.workers())
	}
}

func TestAblationExperiment(t *testing.T) {
	tables := Ablation(cfg())
	if len(tables) != 6 {
		t.Fatalf("%d ablation tables, want 6", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) < 2 {
			t.Fatalf("%s: only %d rows", tb.ID, len(tb.Rows))
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Header) {
				t.Fatalf("%s: ragged row %v", tb.ID, row)
			}
		}
	}
}

func TestDenseExperiment(t *testing.T) {
	tables := Dense(cfg())
	if len(tables) != 1 || len(tables[0].Rows) == 0 {
		t.Fatal("dense experiment empty")
	}
}

func TestHybridExperiment(t *testing.T) {
	tables := Hybrid(cfg())
	if len(tables) != 1 || len(tables[0].Rows) < 4 {
		t.Fatal("hybrid experiment too small")
	}
	// p=1 row: exactly one tree spanning every vertex, zero collisions.
	row := tables[0].Rows[0]
	if row[0] != "1" || row[1] != "1" || row[3] != "100.0%" || row[4] != "0" {
		t.Fatalf("p=1 row is not pure Prim: %v", row)
	}
}

func TestWeightsAndCCBenchExperiments(t *testing.T) {
	w := WeightsExp(cfg())
	if len(w) != 1 || len(w[0].Rows) != 4 {
		t.Fatalf("weights experiment shape: %d tables", len(w))
	}
	c := CCBench(cfg())
	if len(c) != 1 || len(c[0].Rows) != 5 {
		t.Fatalf("ccbench experiment shape")
	}
}
