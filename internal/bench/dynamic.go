package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"pmsf"
	"pmsf/internal/gen"
)

// The dynamic-workload study: a sliding-window mutation stream applied
// through the incremental dynamic-MSF subsystem versus recomputing the
// forest from scratch after every batch with the library's default
// engine. msf-bench -dynjson writes the report
// (results/BENCH_PR10.json); the acceptance bar is >= 5x batch
// throughput at medium scale (1M-edge base graph, 100k mutations).

// DynamicBenchReport is the machine-readable result of one dynamic
// workload run.
type DynamicBenchReport struct {
	Scale      string `json:"scale"`
	Seed       uint64 `json:"seed"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"numcpu"`

	// Workload shape.
	N         int `json:"n"`
	BaseEdges int `json:"base_edges"`
	Mutations int `json:"mutations"`
	Window    int `json:"window"`
	Batch     int `json:"batch"`
	Batches   int `json:"batches"`

	// Incremental side: total ApplyEdges wall time across all batches.
	DynamicNsTotal    int64   `json:"dynamic_ns_total"`
	DynamicNsPerBatch int64   `json:"dynamic_ns_per_batch"`
	DynamicBatchQPS   float64 `json:"dynamic_batch_qps"`

	// Baseline side: from-scratch MinimumSpanningForest with the default
	// engine on the post-batch graph, sampled on BaselineSampled evenly
	// spaced batches (running it on every batch would dominate the
	// study without changing the per-batch estimate).
	BaselineEngine     string  `json:"baseline_engine"`
	BaselineWorkers    int     `json:"baseline_workers"`
	BaselineSampled    int     `json:"baseline_sampled_batches"`
	BaselineNsPerBatch int64   `json:"baseline_ns_per_batch"`
	BaselineBatchQPS   float64 `json:"baseline_batch_qps"`

	// SpeedupX is dynamic batch throughput over baseline batch
	// throughput; Verified reports that the final maintained forest
	// passed pmsf.Verify and every sampled batch matched the baseline
	// recompute's weight.
	SpeedupX float64 `json:"speedup_x"`
	Verified bool    `json:"verified"`

	// What the stream made the subsystem do.
	Links              int `json:"links"`
	Swaps              int `json:"swaps"`
	Replacements       int `json:"replacements"`
	Splits             int `json:"splits"`
	Rebuilds           int `json:"rebuilds"`
	FallbackRecomputes int `json:"fallback_recomputes"`
}

// WriteJSON writes the report as indented JSON.
func (r *DynamicBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(r)
}

// dynamicShape maps a scale to the workload: a random base graph of
// 5n edges and a steady-size stream. Medium is the acceptance shape
// (1M-edge base graph, 100k mutations in 1k batches).
func dynamicShape(s Scale) (n, m, mutations, batch int) {
	switch s {
	case Tiny:
		return 2_000, 10_000, 1_000, 250
	case Small:
		return 20_000, 100_000, 10_000, 1_000
	case Medium:
		return 200_000, 1_000_000, 100_000, 1_000
	default:
		return 1_000_000, 5_000_000, 100_000, 1_000
	}
}

// DynamicBench runs the dynamic workload study.
func DynamicBench(cfg Config) (*DynamicBenchReport, error) {
	n, m, mutations, batch := dynamicShape(cfg.Scale)
	baselineAlgo := pmsf.MSTBC
	workers := cfg.workers()[0]

	g := gen.Random(n, m, cfg.Seed)
	stream := gen.SlidingWindowStream(g, mutations, m, batch, cfg.Seed+2)

	dyn, err := pmsf.NewDynamic(g, baselineAlgo, pmsf.Options{Workers: workers, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	rep := &DynamicBenchReport{
		Scale:      cfg.Scale.String(),
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		N:          n,
		BaseEdges:  m,
		Mutations:  mutations,
		Window:     m,
		Batch:      batch,
		Batches:    len(stream.Batches),

		BaselineEngine:  baselineAlgo.String(),
		BaselineWorkers: workers,
		Verified:        true,
	}

	// Sample ~10 evenly spaced batches for the baseline recompute.
	sampleEvery := len(stream.Batches) / 10
	if sampleEvery < 1 {
		sampleEvery = 1
	}

	var dynTotal, baseTotal time.Duration
	for i, b := range stream.Batches {
		var d pmsf.DynamicDelta
		dynTotal += timeIt(func() {
			var applyErr error
			d, applyErr = dyn.ApplyEdges(b.Add, b.Del)
			if applyErr != nil {
				err = fmt.Errorf("bench: dynamic batch %d: %w", i+1, applyErr)
			}
		})
		if err != nil {
			return nil, err
		}
		rep.Links += d.Links
		rep.Swaps += d.Swaps
		rep.Replacements += d.Replacements
		rep.Splits += d.Splits
		rep.Rebuilds += d.Rebuilds
		rep.FallbackRecomputes += d.FallbackRecomputes

		if i%sampleEvery == 0 {
			// Snapshot outside both timed regions: the baseline is the
			// engine run alone, on an equal-content graph.
			snap, forest := dyn.SnapshotWithForest()
			var ref *pmsf.Forest
			baseTotal += timeIt(func() {
				var refErr error
				ref, _, refErr = pmsf.MinimumSpanningForest(snap, baselineAlgo, pmsf.Options{
					Workers: workers, Seed: cfg.Seed,
				})
				if refErr != nil {
					err = fmt.Errorf("bench: baseline batch %d: %w", i+1, refErr)
				}
			})
			if err != nil {
				return nil, err
			}
			rep.BaselineSampled++
			tol := 1e-9 * math.Max(1, math.Abs(ref.Weight))
			if diff := ref.Weight - forest.Weight; diff > tol || diff < -tol ||
				ref.Size() != forest.Size() || ref.Components != forest.Components {
				rep.Verified = false
			}
		}
	}

	snap, forest := dyn.SnapshotWithForest()
	if verr := pmsf.Verify(snap, forest); verr != nil {
		rep.Verified = false
	}

	rep.DynamicNsTotal = dynTotal.Nanoseconds()
	rep.DynamicNsPerBatch = dynTotal.Nanoseconds() / int64(len(stream.Batches))
	rep.BaselineNsPerBatch = baseTotal.Nanoseconds() / int64(rep.BaselineSampled)
	if rep.DynamicNsPerBatch > 0 {
		rep.DynamicBatchQPS = 1e9 / float64(rep.DynamicNsPerBatch)
	}
	if rep.BaselineNsPerBatch > 0 {
		rep.BaselineBatchQPS = 1e9 / float64(rep.BaselineNsPerBatch)
		rep.SpeedupX = float64(rep.BaselineNsPerBatch) / float64(rep.DynamicNsPerBatch)
	}
	return rep, nil
}
