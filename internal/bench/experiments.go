package bench

import (
	"fmt"
	"runtime"
	"time"

	"pmsf/internal/boruvka"
	"pmsf/internal/dense"
	"pmsf/internal/filter"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/model"
)

// Config parameterizes an experiment run.
type Config struct {
	Scale   Scale
	Seed    uint64
	Workers []int // processor counts for the parallel sweeps; nil = 1,2,4,8
}

func (c Config) workers() []int {
	if len(c.Workers) > 0 {
		return c.Workers
	}
	return []int{1, 2, 4, 8}
}

// Table1 regenerates Table 1: the rate of decrease of the edge-list size
// 2m across Borůvka iterations for two random sparse graphs (the paper's
// G1 = 1M vertices / 6M edges and G2 = 10K vertices / 30K edges,
// rescaled by Scale).
func Table1(cfg Config) []*Table {
	type spec struct {
		label string
		n, m  int
	}
	n1 := cfg.Scale.BaseN()
	specs := []spec{
		{"G1", n1, 6 * n1},
		{"G2", n1 / 100, 3 * n1 / 100},
	}
	var out []*Table
	for _, sp := range specs {
		g := gen.Random(sp.n, sp.m, cfg.Seed)
		_, stats := boruvka.EL(g, boruvka.Options{Stats: true, Seed: cfg.Seed})
		t := &Table{
			ID:     "table1." + sp.label,
			Title:  fmt.Sprintf("edge list decay, random n=%d m=%d (Bor-EL)", sp.n, sp.m),
			Header: []string{"iteration", "2m", "decrease", "% dec.", "m/n"},
		}
		var prev int64 = -1
		for i, it := range stats.Iters {
			dec, pct := "N/A", "N/A"
			if prev >= 0 {
				d := prev - it.ListSize
				dec = fmt.Sprintf("%d", d)
				pct = fmt.Sprintf("%.1f%%", 100*float64(d)/float64(prev))
			}
			t.Rows = append(t.Rows, []string{
				fmt.Sprintf("%d", i+1),
				fmt.Sprintf("%d", it.ListSize),
				dec, pct,
				fmt.Sprintf("%.1f", float64(it.ListSize)/2/float64(it.N)),
			})
			prev = it.ListSize
		}
		out = append(out, t)
	}
	return out
}

// Fig2 regenerates Fig. 2: the breakdown of running time into find-min,
// connect-components and compact-graph for Bor-EL, Bor-AL, Bor-ALM and
// Bor-FAL on random graphs with fixed n and m = 4n, 6n, 10n.
func Fig2(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	variants := []struct {
		name string
		run  func(*graph.EdgeList, boruvka.Options) (*graph.Forest, *boruvka.Stats)
	}{
		{"Bor-EL", boruvka.EL},
		{"Bor-AL", boruvka.AL},
		{"Bor-ALM", boruvka.ALM},
		{"Bor-FAL", boruvka.FAL},
	}
	var out []*Table
	for _, ratio := range []int{4, 6, 10} {
		g := gen.Random(n, ratio*n, cfg.Seed)
		t := &Table{
			ID:    fmt.Sprintf("fig2.random-%dx", ratio),
			Title: fmt.Sprintf("step breakdown, random n=%d m=%d (ms)", n, ratio*n),
			Header: []string{
				"algorithm", "find-min", "connect-comp", "compact-graph", "total", "iterations",
			},
		}
		for _, v := range variants {
			_, stats := v.run(g, boruvka.Options{Stats: true, Seed: cfg.Seed})
			t.Rows = append(t.Rows, []string{
				v.name,
				ms(stats.Total.FindMin),
				ms(stats.Total.ConnectComponents),
				ms(stats.Total.CompactGraph),
				ms(stats.Total.Total()),
				fmt.Sprintf("%d", len(stats.Iters)),
			})
		}
		out = append(out, t)
	}
	return out
}

// Fig3 regenerates Fig. 3: the relative performance of the three
// sequential algorithms across input graph families.
func Fig3(cfg Config) []*Table {
	workloads := append([]Workload{
		RandomWorkload(4), RandomWorkload(6), RandomWorkload(10),
	}, append(MeshWorkloads(), StructuredWorkloads()...)...)
	t := &Table{
		ID:     "fig3",
		Title:  "sequential algorithm ranking (ms)",
		Header: []string{"graph", "n", "m", "Prim", "Kruskal", "Boruvka", "best"},
	}
	for _, w := range workloads {
		g := w.Make(cfg.Scale, cfg.Seed)
		best, _, times := BestSequential(g)
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%d", g.N),
			fmt.Sprintf("%d", len(g.Edges)),
			ms(times["Prim"]), ms(times["Kruskal"]), ms(times["Boruvka"]),
			best,
		})
	}
	return []*Table{t}
}

// sweep runs every parallel algorithm over the worker counts on one
// workload, reporting times and speedup vs the best sequential baseline.
func sweep(id string, w Workload, cfg Config) *Table {
	g := w.Make(cfg.Scale, cfg.Seed)
	bestName, bestTime, _ := BestSequential(g)
	t := &Table{
		ID: id + "." + w.Name,
		Title: fmt.Sprintf("parallel MSF, %s n=%d m=%d (ms; best seq: %s %s; GOMAXPROCS=%d)",
			w.Name, g.N, len(g.Edges), bestName, ms(bestTime), runtime.GOMAXPROCS(0)),
		Header: []string{"algorithm"},
	}
	ps := cfg.workers()
	for _, p := range ps {
		t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
	}
	t.Header = append(t.Header, fmt.Sprintf("speedup(p=%d)", ps[len(ps)-1]))
	for _, a := range ParAlgos() {
		row := []string{a.Name}
		var last time.Duration
		for _, p := range ps {
			d := timeIt(func() { a.Run(g, p, cfg.Seed) })
			last = d
			row = append(row, ms(d))
		}
		row = append(row, fmt.Sprintf("%.2f", float64(bestTime)/float64(last)))
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speedup = best sequential (%s) / parallel time at p=%d; "+
			"wall-clock speedup requires that many hardware cores", bestName, ps[len(ps)-1]))
	return t
}

// Fig4 regenerates Fig. 4: random graphs with m = 4n, 6n, 10n, 20n.
func Fig4(cfg Config) []*Table {
	var out []*Table
	for _, ratio := range []int{4, 6, 10, 20} {
		out = append(out, sweep("fig4", RandomWorkload(ratio), cfg))
	}
	return out
}

// Fig5 regenerates Fig. 5: regular mesh, geometric k=6, 2D60, 3D40.
func Fig5(cfg Config) []*Table {
	var out []*Table
	for _, w := range MeshWorkloads() {
		out = append(out, sweep("fig5", w, cfg))
	}
	return out
}

// Fig6 regenerates Fig. 6: the structured inputs str0-str3.
func Fig6(cfg Config) []*Table {
	var out []*Table
	for _, w := range StructuredWorkloads() {
		out = append(out, sweep("fig6", w, cfg))
	}
	return out
}

// Model compares the Section 3 closed forms against measured quantities:
// iteration counts vs the log2(n) bound and the Eq. 5 / Eq. 6 ME ratio vs
// the measured Bor-AL / Bor-EL compact-graph time ratio.
func Model(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	var out []*Table
	t := &Table{
		ID:     "model.iterations",
		Title:  "Borůvka iteration counts vs the ceil(log2 n) model bound",
		Header: []string{"graph", "n", "m", "iters(EL)", "iters(AL)", "iters(FAL)", "bound"},
	}
	for _, ratio := range []int{4, 6} {
		g := gen.Random(n, ratio*n, cfg.Seed)
		_, sEL := boruvka.EL(g, boruvka.Options{Stats: true, Seed: cfg.Seed})
		_, sAL := boruvka.AL(g, boruvka.Options{Stats: true, Seed: cfg.Seed})
		_, sFAL := boruvka.FAL(g, boruvka.Options{Stats: true, Seed: cfg.Seed})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("random-%dx", ratio),
			fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", len(g.Edges)),
			fmt.Sprintf("%d", len(sEL.Iters)),
			fmt.Sprintf("%d", len(sAL.Iters)),
			fmt.Sprintf("%d", len(sFAL.Iters)),
			fmt.Sprintf("%d", model.PredictedIterations(g.N)),
		})
	}
	out = append(out, t)

	t2 := &Table{
		ID:     "model.first-iter",
		Title:  "Eq.5 vs Eq.6: predicted first-iteration ME ratio Bor-AL/Bor-EL",
		Header: []string{"m/n", "ME(Bor-AL)/ME(Bor-EL) predicted"},
	}
	for _, ratio := range []int{2, 4, 6, 10, 20} {
		pr := model.Params{N: float64(n), M: float64(ratio * n), P: 8}
		al := model.BorALFirstIter(pr)
		el := model.BorELFirstIter(pr)
		t2.Rows = append(t2.Rows, []string{
			fmt.Sprintf("%d", ratio),
			fmt.Sprintf("%.3f", al.ME/el.ME),
		})
	}
	t2.Notes = append(t2.Notes, "ratios < 1 reproduce the paper's claim that Bor-AL is the faster algorithm")
	out = append(out, t2)
	return out
}

// Profile reproduces the paper's Section 2.2 profiling: the distribution
// of adjacency-list lengths that Bor-AL's per-list sorts encounter
// ("80% of all lists to be sorted have between 1 to 100 elements" on the
// 1M-vertex 6M-edge random graph), which justifies the insertion-sort
// cutoff.
func Profile(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	g := gen.Random(n, 6*n, cfg.Seed)
	hists := boruvka.ProfileListLengths(g, boruvka.Options{})
	t := &Table{
		ID:     "profile.random-6x",
		Title:  fmt.Sprintf("adjacency-list lengths per Bor-AL iteration, random n=%d m=%d", n, 6*n),
		Header: []string{"iteration", "lists"},
	}
	if len(hists) > 0 {
		for _, b := range hists[0].UpTo {
			if b.Max >= 0 {
				t.Header = append(t.Header, fmt.Sprintf("<=%d", b.Max))
			} else {
				t.Header = append(t.Header, "longer")
			}
		}
	}
	for _, h := range hists {
		row := []string{fmt.Sprintf("%d", h.Iteration), fmt.Sprintf("%d", h.Lists)}
		for _, b := range h.UpTo {
			row = append(row, fmt.Sprintf("%d", b.Count))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("fraction of lists with <= 100 elements: %.1f%% (paper: ~80%% on 1M/6M)",
			100*boruvka.ShortListFraction(hists, 100)),
		fmt.Sprintf("suggested insertion-sort cutoff for 80%% coverage: %d",
			boruvka.SortCutoffSuggestion(hists, 0.8)))
	return []*Table{t}
}

// GraphStats characterizes every input family at the configured scale:
// the Section 5.1 summary of the workloads (density, degrees,
// components).
func GraphStats(cfg Config) []*Table {
	workloads := append([]Workload{
		RandomWorkload(4), RandomWorkload(6), RandomWorkload(10), RandomWorkload(20),
	}, append(MeshWorkloads(), StructuredWorkloads()...)...)
	t := &Table{
		ID:     "graphstats",
		Title:  fmt.Sprintf("input family characteristics at scale %v", cfg.Scale),
		Header: []string{"graph", "n", "m", "m/n", "components", "isolated", "deg min/med/avg/max"},
	}
	for _, w := range workloads {
		g := w.Make(cfg.Scale, cfg.Seed)
		s := graph.ComputeStats(g)
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%d", s.N),
			fmt.Sprintf("%d", s.M),
			fmt.Sprintf("%.2f", float64(s.M)/float64(s.N)),
			fmt.Sprintf("%d", s.Components),
			fmt.Sprintf("%d", s.Isolated),
			fmt.Sprintf("%d/%d/%.1f/%d", s.MinDegree, s.MedianDegree, s.AvgDegree, s.MaxDegree),
		})
	}
	return []*Table{t}
}

// FilterExp evaluates the sampling-based edge filter (the Section 3
// "exclude heavy edges early" extension) against plain Bor-FAL across
// densities: edges surviving the filter and end-to-end times.
func FilterExp(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	t := &Table{
		ID:    "filter",
		Title: fmt.Sprintf("sampling filter vs Bor-FAL, random n=%d", n),
		Header: []string{
			"m/n", "m", "sampled", "survivors", "survivors/n",
			"filter(ms)", "Bor-FAL(ms)",
		},
	}
	for _, ratio := range []int{4, 6, 10, 20} {
		g := gen.Random(n, ratio*n, cfg.Seed)
		var fstats *filter.Stats
		dFilter := timeIt(func() {
			_, fstats = filter.Run(g, filter.Options{Seed: cfg.Seed, Stats: true})
		})
		dFAL := timeIt(func() {
			boruvka.FAL(g, boruvka.Options{Seed: cfg.Seed})
		})
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ratio),
			fmt.Sprintf("%d", fstats.M),
			fmt.Sprintf("%d", fstats.Sampled),
			fmt.Sprintf("%d", fstats.FinalM),
			fmt.Sprintf("%.2f", float64(fstats.FinalM)/float64(n)),
			ms(dFilter), ms(dFAL),
		})
	}
	t.Notes = append(t.Notes,
		"survivors/n near constant across densities demonstrates the KKT sampling lemma: the final phase is O(n) regardless of m")
	return []*Table{t}
}

// Dense compares adjacency-matrix Boruvka (the JaJa/Dehne-Gotz dense
// formulation) with Bor-FAL across densities at fixed n, making the
// paper's motivation concrete: the matrix algorithm's Theta(n^2 log n)
// work is insensitive to m, so it only becomes competitive as the graph
// approaches completeness - and sparse graphs are exactly where it
// drowns.
func Dense(cfg Config) []*Table {
	// The matrix caps n; use a reduced vertex count per scale.
	n := cfg.Scale.BaseN() / 10
	if n > dense.MaxN {
		n = dense.MaxN
	}
	t := &Table{
		ID:     "dense",
		Title:  fmt.Sprintf("matrix Boruvka vs Bor-FAL, n=%d (ms)", n),
		Header: []string{"m/n", "m", "dense(ms)", "Bor-FAL(ms)", "dense/FAL"},
	}
	maxRatio := (n - 1) / 2
	for _, ratio := range []int{2, 8, 32, 128} {
		if ratio > maxRatio {
			continue
		}
		g := gen.Random(n, ratio*n, cfg.Seed)
		dDense := timeIt(func() { dense.Run(g, dense.Options{}) })
		dFAL := timeIt(func() { boruvka.FAL(g, boruvka.Options{Seed: cfg.Seed}) })
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", ratio),
			fmt.Sprintf("%d", len(g.Edges)),
			ms(dDense), ms(dFAL),
			fmt.Sprintf("%.1f", float64(dDense)/float64(dFAL)),
		})
	}
	t.Notes = append(t.Notes,
		"the dense/FAL ratio shrinking with density reproduces why the dense method cannot handle the sparse inputs this paper targets")
	return []*Table{t}
}

// Experiments maps experiment ids to runners.
func Experiments() map[string]func(Config) []*Table {
	return map[string]func(Config) []*Table{
		"table1":     Table1,
		"fig2":       Fig2,
		"fig3":       Fig3,
		"fig4":       Fig4,
		"fig5":       Fig5,
		"fig6":       Fig6,
		"model":      Model,
		"profile":    Profile,
		"graphstats": GraphStats,
		"filter":     FilterExp,
		"ablation":   Ablation,
		"dense":      Dense,
		"hybrid":     Hybrid,
		"weights":    WeightsExp,
		"ccbench":    CCBench,
		"compact":    CompactExp,
	}
}

// ExperimentIDs returns the ids in presentation order.
func ExperimentIDs() []string {
	return []string{
		"table1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"model", "profile", "graphstats", "filter", "ablation", "dense", "hybrid", "weights", "ccbench",
		"compact",
	}
}
