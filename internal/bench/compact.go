package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"pmsf/internal/boruvka"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
)

// The compact-graph engine study: CompactWorkList throughput of the
// sample sort, the sequential full-key radix and the packed-key parallel
// radix compactor, across worker counts and duplicate-run skew levels.
// This is the PR's perf trajectory baseline; msf-bench -benchjson writes
// the machine-readable form to results/BENCH_PR2.json.

// compactWorkload is one input to the engine study: a directed working
// list and the supervertex count it is compacted against. contraction
// simulates a late Borůvka round by folding the vertex space, which
// piles up duplicate (U, V) runs exactly like real contraction does.
type compactWorkload struct {
	name        string
	contraction int // 1 = first round; c > 1 folds ids into n/c supervertices
}

func compactWorkloads() []compactWorkload {
	return []compactWorkload{
		{"uniform", 1},
		{"contract-16x", 16},
		{"contract-256x", 256},
	}
}

// buildCompactInput materializes the working list of one workload.
func buildCompactInput(scale Scale, seed uint64, w compactWorkload) ([]graph.WEdge, int) {
	n := scale.BaseN()
	g := gen.Random(n, 6*n, seed)
	edges := graph.DirectedWorkList(g)
	if w.contraction > 1 {
		k := n / w.contraction
		if k < 2 {
			k = 2
		}
		for i := range edges {
			edges[i].U %= int32(k)
			edges[i].V %= int32(k)
		}
		n = k
	}
	return edges, n
}

// CompactBenchEntry is one engine × workers × workload measurement.
// GoMaxProcs and NumCPU record the runtime's actual parallelism budget
// at measurement time, so a result file can never again silently claim
// p-worker scaling measured on a one-slot scheduler (the BENCH_PR2.json
// artifact): benchguard rejects files whose workers exceed them.
type CompactBenchEntry struct {
	Engine     string `json:"engine"`
	Workers    int    `json:"workers"`
	Workload   string `json:"workload"`
	N          int    `json:"n"`
	Elements   int    `json:"elements"`
	NsPerOp    int64  `json:"ns_per_op"`
	GoMaxProcs int    `json:"gomaxprocs,omitempty"`
	NumCPU     int    `json:"numcpu,omitempty"`
}

// CompactBenchReport is the machine-readable artifact of the engine
// study (results/BENCH_PR2.json, and with the MSF engine matrix rows
// attached, results/BENCH_PR6.json).
type CompactBenchReport struct {
	Scale      string              `json:"scale"`
	Seed       uint64              `json:"seed"`
	GoMaxProcs int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"numcpu,omitempty"`
	Baseline   string              `json:"baseline_engine"`
	Candidate  string              `json:"candidate_engine"`
	Entries    []CompactBenchEntry `json:"entries"`
	// EngineBaseline names the MSF engine the matrix rows are judged
	// against (Bor-EL); Engines holds the end-to-end engine matrix.
	// Both are absent from reports written before the matrix existed.
	EngineBaseline string             `json:"engine_baseline,omitempty"`
	Engines        []EngineBenchEntry `json:"engines,omitempty"`
}

// WriteJSON writes the report as indented JSON.
func (r *CompactBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// compactEngines are the engines the study compares.
func compactEngines() []boruvka.SortEngine {
	return []boruvka.SortEngine{boruvka.SortSampleSort, boruvka.SortRadix, boruvka.SortParallelRadix}
}

// timeCompact measures one CompactWorkListWith configuration: best of
// reps runs, each on a fresh copy of the input (the compaction mutates
// its input list).
func timeCompact(engine boruvka.SortEngine, p int, edges []graph.WEdge, n int, seed uint64, reps int) time.Duration {
	work := make([]graph.WEdge, len(edges))
	best := time.Duration(0)
	for r := 0; r < reps; r++ {
		copy(work, edges)
		d := timeIt(func() {
			boruvka.CompactWorkListWith(engine, p, work, n, seed)
		})
		if r == 0 || d < best {
			best = d
		}
	}
	return best
}

// CompactBench runs the full engine study and returns the
// machine-readable report.
func CompactBench(cfg Config) *CompactBenchReport {
	rep := &CompactBenchReport{
		Scale:      cfg.Scale.String(),
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Baseline:   boruvka.SortSampleSort.String(),
		Candidate:  boruvka.SortParallelRadix.String(),
	}
	reps := 3
	if cfg.Scale >= Paper {
		reps = 1
	}
	for _, w := range compactWorkloads() {
		edges, n := buildCompactInput(cfg.Scale, cfg.Seed, w)
		for _, engine := range compactEngines() {
			for _, p := range cfg.workers() {
				d := timeCompact(engine, p, edges, n, cfg.Seed, reps)
				rep.Entries = append(rep.Entries, CompactBenchEntry{
					Engine:     engine.String(),
					Workers:    p,
					Workload:   w.name,
					N:          n,
					Elements:   len(edges),
					NsPerOp:    d.Nanoseconds(),
					GoMaxProcs: runtime.GOMAXPROCS(0),
					NumCPU:     runtime.NumCPU(),
				})
			}
		}
	}
	return rep
}

// CompactScalingBench is the scaling-focused slice of the engine study:
// only the packed-key parallel radix compactor, only the uniform
// workload, across cfg's worker counts. It is what the benchguard
// -scaling gate runs fresh in CI to enforce that p = 4 beats p = 1 on
// the 2.4M-element compaction.
func CompactScalingBench(cfg Config) *CompactBenchReport {
	rep := &CompactBenchReport{
		Scale:      cfg.Scale.String(),
		Seed:       cfg.Seed,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Baseline:   boruvka.SortParallelRadix.String(),
		Candidate:  boruvka.SortParallelRadix.String(),
	}
	reps := 3
	if cfg.Scale >= Paper {
		reps = 1
	}
	w := compactWorkloads()[0] // uniform
	edges, n := buildCompactInput(cfg.Scale, cfg.Seed, w)
	for _, p := range cfg.workers() {
		d := timeCompact(boruvka.SortParallelRadix, p, edges, n, cfg.Seed, reps)
		rep.Entries = append(rep.Entries, CompactBenchEntry{
			Engine:     boruvka.SortParallelRadix.String(),
			Workers:    p,
			Workload:   w.name,
			N:          n,
			Elements:   len(edges),
			NsPerOp:    d.Nanoseconds(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		})
	}
	return rep
}

// CompactExp renders the engine study as experiment tables (one per
// workload), with a speedup column of the packed-key parallel radix
// compactor over the sample-sort baseline at equal p.
func CompactExp(cfg Config) []*Table {
	rep := CompactBench(cfg)
	byWorkload := map[string][]CompactBenchEntry{}
	for _, e := range rep.Entries {
		byWorkload[e.Workload] = append(byWorkload[e.Workload], e)
	}
	var out []*Table
	for _, w := range compactWorkloads() {
		entries := byWorkload[w.name]
		if len(entries) == 0 {
			continue
		}
		t := &Table{
			ID: "compact." + w.name,
			Title: fmt.Sprintf("compact-graph engines, %s n=%d elements=%d (ms)",
				w.name, entries[0].N, entries[0].Elements),
			Header: []string{"engine"},
		}
		ps := cfg.workers()
		for _, p := range ps {
			t.Header = append(t.Header, fmt.Sprintf("p=%d", p))
		}
		base := map[int]int64{}
		for _, e := range entries {
			if e.Engine == rep.Baseline {
				base[e.Workers] = e.NsPerOp
			}
		}
		for _, engine := range compactEngines() {
			row := []string{engine.String()}
			for _, p := range ps {
				for _, e := range entries {
					if e.Engine == engine.String() && e.Workers == p {
						row = append(row, ms(time.Duration(e.NsPerOp)))
					}
				}
			}
			t.Rows = append(t.Rows, row)
		}
		// Speedup note: candidate vs baseline at the largest p.
		pMax := ps[len(ps)-1]
		var cand int64
		for _, e := range entries {
			if e.Engine == rep.Candidate && e.Workers == pMax {
				cand = e.NsPerOp
			}
		}
		if cand > 0 && base[pMax] > 0 {
			t.Notes = append(t.Notes, fmt.Sprintf("%s is %.2fx the %s baseline at p=%d",
				rep.Candidate, float64(base[pMax])/float64(cand), rep.Baseline, pMax))
		}
		out = append(out, t)
	}
	return out
}
