package bench

// The paper's qualitative claims, asserted as tests. Time-based shape
// checks use generous factors so scheduler noise cannot flip them, and
// run at Small scale where the effects are orders of magnitude; skipped
// in -short mode.

import (
	"testing"

	"pmsf/internal/boruvka"
	"pmsf/internal/gen"
)

// Fig. 2's shape: compact-graph dominates Bor-EL and Bor-AL; Bor-EL's
// compact-graph is slower than Bor-AL's; Bor-FAL's compact-graph is an
// order of magnitude below both while its find-min grows beyond
// Bor-AL's.
func TestFig2Claims(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-shape test")
	}
	n := Small.BaseN()
	g := gen.Random(n, 6*n, 42)
	// Fig. 2 describes the paper's formulation, where Bor-EL's compact
	// step is a full-key sample sort; the default packed-key radix engine
	// intentionally breaks this shape (it beats Bor-AL's compact), so the
	// paper engine is pinned here.
	_, el := boruvka.EL(g, boruvka.Options{Stats: true, SortEngine: boruvka.SortSampleSort})
	_, al := boruvka.AL(g, boruvka.Options{Stats: true})
	_, fal := boruvka.FAL(g, boruvka.Options{Stats: true})

	if el.Total.CompactGraph < 2*el.Total.FindMin {
		t.Errorf("Bor-EL compact-graph (%v) does not dominate find-min (%v)",
			el.Total.CompactGraph, el.Total.FindMin)
	}
	if al.Total.CompactGraph < 2*al.Total.FindMin {
		t.Errorf("Bor-AL compact-graph (%v) does not dominate find-min (%v)",
			al.Total.CompactGraph, al.Total.FindMin)
	}
	if el.Total.CompactGraph < al.Total.CompactGraph {
		t.Errorf("Bor-EL compact (%v) faster than Bor-AL's (%v)",
			el.Total.CompactGraph, al.Total.CompactGraph)
	}
	if 5*fal.Total.CompactGraph > el.Total.CompactGraph {
		t.Errorf("Bor-FAL compact (%v) not ≥5x below Bor-EL's (%v)",
			fal.Total.CompactGraph, el.Total.CompactGraph)
	}
	if fal.Total.FindMin < al.Total.FindMin {
		t.Errorf("Bor-FAL find-min (%v) did not exceed Bor-AL's (%v): the filtering cost is missing",
			fal.Total.FindMin, al.Total.FindMin)
	}
}

// Table 1's shape: the density m/n rises for several iterations and then
// collapses; the edge list decays slowly before the cliff.
func TestTable1Claims(t *testing.T) {
	n := Small.BaseN()
	g := gen.Random(n, 6*n, 42)
	_, stats := boruvka.EL(g, boruvka.Options{Stats: true})
	if len(stats.Iters) < 4 {
		t.Fatalf("only %d iterations", len(stats.Iters))
	}
	density := func(i int) float64 {
		return float64(stats.Iters[i].ListSize) / 2 / float64(stats.Iters[i].N)
	}
	// Density strictly rises over the first three iterations...
	if !(density(1) > density(0) && density(2) > density(1)) {
		t.Errorf("density not rising: %.1f %.1f %.1f", density(0), density(1), density(2))
	}
	// ...and the final iteration is far below the peak.
	peak := 0.0
	for i := range stats.Iters {
		if d := density(i); d > peak {
			peak = d
		}
	}
	if last := density(len(stats.Iters) - 1); last > peak/4 {
		t.Errorf("density did not collapse: last %.1f vs peak %.1f", last, peak)
	}
	// First-iteration decay is slow (paper: 12.5%): below 25%.
	dec := float64(stats.Iters[0].ListSize-stats.Iters[1].ListSize) / float64(stats.Iters[0].ListSize)
	if dec > 0.25 {
		t.Errorf("first-iteration decay %.2f, want slow (<0.25)", dec)
	}
}

// The Section 2.2 profiling claim: the large majority of per-vertex
// lists sorted after the first iteration are short (<= 100 entries).
func TestProfileClaim(t *testing.T) {
	n := Small.BaseN()
	g := gen.Random(n, 6*n, 42)
	hists := boruvka.ProfileListLengths(g, boruvka.Options{})
	if len(hists) < 2 {
		t.Fatal("too few iterations")
	}
	frac := boruvka.ShortListFraction(hists[1:], 100)
	if frac < 0.70 {
		t.Errorf("short-list fraction %.2f below the paper's ~0.80 claim band", frac)
	}
}
