package bench

import (
	"fmt"

	"pmsf"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
)

// ProfileConfig configures a single traced run (the msf-bench -algo
// path).
type ProfileConfig struct {
	Algo    string // paper-style algorithm name, e.g. "Bor-FAL"
	Scale   Scale
	Ratio   int // edges = Ratio × n for the random input; 0 means 3
	Seed    uint64
	Workers int    // 0 means GOMAXPROCS
	Metrics bool   // enable process-wide counters for the run
	Sort    string // Bor-EL compact-graph engine name; "" means the default
}

// ProfileResult is the artifact bundle of one traced run.
type ProfileResult struct {
	Algorithm pmsf.Algorithm
	Graph     *graph.EdgeList
	Forest    *graph.Forest
	Stats     *pmsf.Stats
	Trace     *obs.Collector
	Summary   *obs.Summary
}

// ProfileRun runs one algorithm on a random input with full span tracing
// and returns the trace, the per-phase stats, and the machine-readable
// summary. The counters in the summary are only populated when
// cfg.Metrics is set (they are reset at the start of the run so the
// summary describes this run alone).
func ProfileRun(cfg ProfileConfig) (*ProfileResult, error) {
	algo, err := pmsf.ParseAlgorithm(cfg.Algo)
	if err != nil {
		return nil, err
	}
	var engine pmsf.SortEngine
	if cfg.Sort != "" {
		engine, err = pmsf.ParseSortEngine(cfg.Sort)
		if err != nil {
			return nil, err
		}
	}
	ratio := cfg.Ratio
	if ratio <= 0 {
		ratio = 3
	}
	n := cfg.Scale.BaseN()
	g := gen.Random(n, ratio*n, cfg.Seed)

	var reg *obs.Registry
	if cfg.Metrics {
		reg = obs.Default()
		reg.Reset()
		obs.EnableMetrics(true)
		defer obs.EnableMetrics(false)
	}
	tr := obs.NewCollector()
	f, stats, err := pmsf.MinimumSpanningForest(g, algo, pmsf.Options{
		Workers: cfg.Workers, Seed: cfg.Seed, CollectStats: true, Trace: tr,
		SortEngine: engine,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: profile run failed: %w", err)
	}
	return &ProfileResult{
		Algorithm: algo,
		Graph:     g,
		Forest:    f,
		Stats:     stats,
		Trace:     tr,
		Summary:   tr.Summarize(reg),
	}, nil
}
