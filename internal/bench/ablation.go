package bench

import (
	"fmt"

	"pmsf/internal/boruvka"
	"pmsf/internal/concomp"
	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/mstbc"
	"pmsf/internal/par"
	"pmsf/internal/seq"
	"pmsf/internal/sorts"
)

// CCBench times the connected-components implementations — the paper's
// named follow-on problem — across input families: Shiloach-Vishkin
// hooking+jumping vs the lock-free union-find.
func CCBench(cfg Config) []*Table {
	workloads := append([]Workload{RandomWorkload(4)}, MeshWorkloads()...)
	t := &Table{
		ID:     "ccbench",
		Title:  "connected components: Shiloach-Vishkin vs lock-free union-find (ms)",
		Header: []string{"graph", "n", "m", "components", "SV", "UnionFind"},
	}
	for _, w := range workloads {
		g := w.Make(cfg.Scale, cfg.Seed)
		var k int
		dSV := timeIt(func() { _, k = concomp.SV(g, 0) })
		dUF := timeIt(func() { concomp.UnionFind(g, 0) })
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%d", g.N), fmt.Sprintf("%d", len(g.Edges)),
			fmt.Sprintf("%d", k),
			ms(dSV), ms(dUF),
		})
	}
	return []*Table{t}
}

// WeightsExp reproduces the paper's Fig. 3 observation that "different
// assignment of edge weights is also important": the sequential
// algorithm ranking on a FIXED graph structure changes when only the
// weight distribution changes. All parallel algorithms stay correct
// under every distribution (the conformance tests cover that); this
// experiment shows the performance sensitivity.
func WeightsExp(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	base := gen.Random(n, 6*n, cfg.Seed)
	t := &Table{
		ID:     "weights",
		Title:  fmt.Sprintf("sequential ranking vs weight distribution, random n=%d m=%d (ms)", n, 6*n),
		Header: []string{"weights", "Prim", "Kruskal", "Boruvka", "Bor-FAL(par)", "best seq"},
	}
	for _, d := range gen.WeightDists() {
		g := gen.Reweight(base, d, cfg.Seed+uint64(d))
		best, _, times := BestSequential(g)
		dFAL := timeIt(func() { boruvka.FAL(g, boruvka.Options{Seed: cfg.Seed}) })
		t.Rows = append(t.Rows, []string{
			d.String(),
			ms(times["Prim"]), ms(times["Kruskal"]), ms(times["Boruvka"]),
			ms(dFAL),
			best,
		})
	}
	t.Notes = append(t.Notes,
		"the winner column moving across distributions on one fixed graph reproduces the paper's claim that weight assignment, not just density, decides the sequential ranking")
	return []*Table{t}
}

// Hybrid demonstrates MST-BC's defining property (Section 4.1: "when run
// on one processor the algorithm behaves as Prim's, and on n processors
// becomes Borůvka's"): as p grows, the first parallel level grows more,
// smaller trees, with rising collision counts — the Prim → Borůvka
// continuum.
func Hybrid(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	g := gen.Random(n, 6*n, cfg.Seed)
	t := &Table{
		ID:    "hybrid",
		Title: fmt.Sprintf("MST-BC level-1 behaviour vs p, random n=%d m=%d", n, 6*n),
		Header: []string{
			"p", "trees", "avg tree size", "visited%", "collisions", "steals", "levels",
		},
	}
	for _, p := range []int{1, 2, 4, 8, 16, 64, 256} {
		if p > n {
			continue
		}
		_, stats := mstbc.Run(g, mstbc.Options{Workers: p, Seed: cfg.Seed, Stats: true})
		if len(stats.Levels) == 0 {
			t.Rows = append(t.Rows, []string{fmt.Sprintf("%d", p), "0", "-", "-", "-", "-", "0"})
			continue
		}
		lv := stats.Levels[0]
		avg := "-"
		if lv.Trees > 0 {
			avg = fmt.Sprintf("%.1f", float64(lv.Visited)/float64(lv.Trees))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p),
			fmt.Sprintf("%d", lv.Trees),
			avg,
			fmt.Sprintf("%.1f%%", 100*float64(lv.Visited)/float64(lv.N)),
			fmt.Sprintf("%d", lv.Collisions),
			fmt.Sprintf("%d", lv.Steals),
			fmt.Sprintf("%d", len(stats.Levels)),
		})
	}
	t.Notes = append(t.Notes,
		"p=1: one tree per component spanning ~100% of vertices (pure Prim); growing p: more, smaller trees with collisions (towards Borůvka)")
	return []*Table{t}
}

// Ablation runs the design-choice studies DESIGN.md enumerates (A1-A5
// plus the sort comparisons) and reports one table per ablation. The
// same studies are available as stable testing.B benchmarks at the
// repository root; this experiment renders them as harness tables.
func Ablation(cfg Config) []*Table {
	n := cfg.Scale.BaseN()
	g := gen.Random(n, 6*n, cfg.Seed)
	var out []*Table

	// A1: Bor-AL insertion-sort cutoff.
	t1 := &Table{
		ID:     "ablation.sort-cutoff",
		Title:  fmt.Sprintf("A1: Bor-AL insertion-sort cutoff, random n=%d m=%d (ms)", n, 6*n),
		Header: []string{"cutoff", "time"},
	}
	for _, cutoff := range []int{2, 8, 32, 128, 1 << 20} {
		d := timeIt(func() {
			boruvka.AL(g, boruvka.Options{InsertionCutoff: cutoff, Seed: cfg.Seed})
		})
		label := fmt.Sprintf("%d", cutoff)
		if cutoff == 1<<20 {
			label = "∞ (pure insertion)"
		}
		t1.Rows = append(t1.Rows, []string{label, ms(d)})
	}
	out = append(out, t1)

	// A2: arena vs heap (Bor-AL vs Bor-ALM).
	t2 := &Table{
		ID:     "ablation.arena",
		Title:  "A2: shared-heap allocation (Bor-AL) vs per-worker reuse (Bor-ALM) (ms)",
		Header: []string{"memory policy", "time"},
	}
	dAL := timeIt(func() { boruvka.AL(g, boruvka.Options{Seed: cfg.Seed}) })
	dALM := timeIt(func() { boruvka.ALM(g, boruvka.Options{Seed: cfg.Seed}) })
	t2.Rows = append(t2.Rows,
		[]string{"heap (Bor-AL)", ms(dAL)},
		[]string{"arena (Bor-ALM)", ms(dALM)})
	out = append(out, t2)

	// A3: MST-BC claim-order permutation.
	t3 := &Table{
		ID:     "ablation.permutation",
		Title:  "A3: MST-BC claim order (ms)",
		Header: []string{"order", "time"},
	}
	for _, noPerm := range []bool{false, true} {
		name := "random permutation"
		if noPerm {
			name = "natural order"
		}
		d := timeIt(func() {
			mstbc.Run(g, mstbc.Options{NoPermute: noPerm, Seed: cfg.Seed})
		})
		t3.Rows = append(t3.Rows, []string{name, ms(d)})
	}
	t3.Notes = append(t3.Notes, "the permutation buys the progress guarantee; cost should be small")
	out = append(out, t3)

	// A4: MST-BC sequential base size.
	t4 := &Table{
		ID:     "ablation.base-size",
		Title:  "A4: MST-BC sequential cutoff n_b (ms)",
		Header: []string{"n_b", "time"},
	}
	for _, nb := range []int{16, 256, 4096, 1 << 16} {
		d := timeIt(func() {
			mstbc.Run(g, mstbc.Options{BaseSize: nb, Seed: cfg.Seed})
		})
		t4.Rows = append(t4.Rows, []string{fmt.Sprintf("%d", nb), ms(d)})
	}
	out = append(out, t4)

	// Kruskal's edge sort (Section 5.2 engineering comparison).
	t5 := &Table{
		ID:     "ablation.kruskal-sort",
		Title:  "Kruskal edge sort comparison (ms)",
		Header: []string{"sort", "time"},
	}
	for _, es := range seq.EdgeSorts() {
		d := timeIt(func() { seq.KruskalWithSort(g, es) })
		t5.Rows = append(t5.Rows, []string{es.String(), ms(d)})
	}
	dFK := timeIt(func() { seq.FilterKruskal(g) })
	t5.Rows = append(t5.Rows, []string{"filter-kruskal", ms(dFK)})
	t5.Notes = append(t5.Notes,
		"filter-kruskal (Osipov-Sanders-Singler) is the modern cycle-property successor; it avoids sorting most edges")
	out = append(out, t5)

	// Parallel sort engine for the Bor-EL edge sort workload.
	t6 := &Table{
		ID:     "ablation.parallel-sort",
		Title:  fmt.Sprintf("parallel sort of the 2m-entry directed edge list (ms, %d entries)", 2*len(g.Edges)),
		Header: []string{"algorithm", "time"},
	}
	mkList := func() []graph.WEdge { return graph.DirectedWorkList(g) }
	lessW := func(a, b graph.WEdge) bool {
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.ID < b.ID
	}
	l1 := mkList()
	d6a := timeIt(func() { sorts.SampleSort(par.DefaultWorkers(), l1, lessW, cfg.Seed) })
	l2 := mkList()
	d6b := timeIt(func() { sorts.ParallelMergeSort(par.DefaultWorkers(), l2, lessW) })
	t6.Rows = append(t6.Rows,
		[]string{"sample sort", ms(d6a)},
		[]string{"parallel merge sort", ms(d6b)})
	out = append(out, t6)

	return out
}
