package uf

import (
	"testing"

	"pmsf/internal/par"
	"pmsf/internal/rng"
)

func TestSequentialBasics(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("initial count %d", u.Count())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("membership wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 2 {
		t.Fatalf("count %d, want 2", u.Count())
	}
	if !u.Same(1, 2) {
		t.Fatal("transitive union broken")
	}
}

func TestSequentialSingleton(t *testing.T) {
	u := New(1)
	if u.Find(0) != 0 || u.Count() != 1 {
		t.Fatal("singleton broken")
	}
}

// partitionSignature canonicalizes a partition as root-of-each-element,
// relabelled by first occurrence, so two structures can be compared.
func partitionSignature(find func(int32) int32, n int) []int32 {
	label := map[int32]int32{}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if _, ok := label[r]; !ok {
			label[r] = int32(len(label))
		}
		out[i] = label[r]
	}
	return out
}

func TestConcurrentMatchesSequential(t *testing.T) {
	const n = 2000
	r := rng.New(1)
	type pair struct{ a, b int32 }
	pairs := make([]pair, 5000)
	for i := range pairs {
		pairs[i] = pair{int32(r.Intn(n)), int32(r.Intn(n))}
	}

	seq := New(n)
	for _, p := range pairs {
		seq.Union(p.a, p.b)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		con := NewConcurrent(n)
		par.For(workers, len(pairs), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				con.Union(pairs[i].a, pairs[i].b)
			}
		})
		sigSeq := partitionSignature(seq.Find, n)
		sigCon := partitionSignature(con.Find, n)
		for i := range sigSeq {
			if sigSeq[i] != sigCon[i] {
				t.Fatalf("workers=%d: partitions differ at element %d", workers, i)
			}
		}
	}
}

func TestConcurrentUnionCount(t *testing.T) {
	// Exactly n-1 successful unions can occur when connecting n elements
	// into one set, no matter how racy the interleaving.
	const n = 1000
	con := NewConcurrent(n)
	var successes [8]int64
	par.Do(8, func(w int) {
		r := rng.New(uint64(w) + 10)
		for i := 0; i < 5000; i++ {
			if con.Union(int32(r.Intn(n)), int32(r.Intn(n))) {
				successes[w]++
			}
		}
		// Finish the job deterministically.
		for i := int32(1); i < n; i++ {
			if con.Union(0, i) {
				successes[w]++
			}
		}
	})
	var total int64
	for _, s := range successes {
		total += s
	}
	if total != n-1 {
		t.Fatalf("%d successful unions, want %d", total, n-1)
	}
	for i := int32(1); i < n; i++ {
		if !con.Same(0, i) {
			t.Fatalf("element %d not merged", i)
		}
	}
}

func TestConcurrentSame(t *testing.T) {
	c := NewConcurrent(4)
	c.Union(0, 1)
	if !c.Same(0, 1) || c.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestConcurrentStress(t *testing.T) {
	// Heavy contention on a small element set; run with -race.
	const n = 64
	c := NewConcurrent(n)
	par.Do(8, func(w int) {
		r := rng.New(uint64(w) * 7)
		for i := 0; i < 20_000; i++ {
			c.Union(int32(r.Intn(n)), int32(r.Intn(n)))
			c.Find(int32(r.Intn(n)))
		}
	})
	// Everything merged with overwhelming probability.
	root := c.Find(0)
	for i := int32(1); i < n; i++ {
		if c.Find(i) != root {
			t.Fatalf("element %d not in the single component", i)
		}
	}
}
