package uf

import (
	"testing"

	"pmsf/internal/par"
	"pmsf/internal/rng"
)

func TestSequentialBasics(t *testing.T) {
	u := New(5)
	if u.Count() != 5 {
		t.Fatalf("initial count %d", u.Count())
	}
	if !u.Union(0, 1) {
		t.Fatal("first union failed")
	}
	if u.Union(1, 0) {
		t.Fatal("repeat union succeeded")
	}
	if !u.Same(0, 1) || u.Same(0, 2) {
		t.Fatal("membership wrong")
	}
	u.Union(2, 3)
	u.Union(0, 3)
	if u.Count() != 2 {
		t.Fatalf("count %d, want 2", u.Count())
	}
	if !u.Same(1, 2) {
		t.Fatal("transitive union broken")
	}
}

func TestSequentialSingleton(t *testing.T) {
	u := New(1)
	if u.Find(0) != 0 || u.Count() != 1 {
		t.Fatal("singleton broken")
	}
}

// partitionSignature canonicalizes a partition as root-of-each-element,
// relabelled by first occurrence, so two structures can be compared.
func partitionSignature(find func(int32) int32, n int) []int32 {
	label := map[int32]int32{}
	out := make([]int32, n)
	for i := 0; i < n; i++ {
		r := find(int32(i))
		if _, ok := label[r]; !ok {
			label[r] = int32(len(label))
		}
		out[i] = label[r]
	}
	return out
}

func TestConcurrentMatchesSequential(t *testing.T) {
	const n = 2000
	r := rng.New(1)
	type pair struct{ a, b int32 }
	pairs := make([]pair, 5000)
	for i := range pairs {
		pairs[i] = pair{int32(r.Intn(n)), int32(r.Intn(n))}
	}

	seq := New(n)
	for _, p := range pairs {
		seq.Union(p.a, p.b)
	}

	for _, workers := range []int{1, 2, 4, 8} {
		con := NewConcurrent(n)
		par.For(workers, len(pairs), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				con.Union(pairs[i].a, pairs[i].b)
			}
		})
		sigSeq := partitionSignature(seq.Find, n)
		sigCon := partitionSignature(con.Find, n)
		for i := range sigSeq {
			if sigSeq[i] != sigCon[i] {
				t.Fatalf("workers=%d: partitions differ at element %d", workers, i)
			}
		}
	}
}

func TestConcurrentUnionCount(t *testing.T) {
	// Exactly n-1 successful unions can occur when connecting n elements
	// into one set, no matter how racy the interleaving.
	const n = 1000
	con := NewConcurrent(n)
	var successes [8]int64
	par.Do(8, func(w int) {
		r := rng.New(uint64(w) + 10)
		for i := 0; i < 5000; i++ {
			if con.Union(int32(r.Intn(n)), int32(r.Intn(n))) {
				successes[w]++
			}
		}
		// Finish the job deterministically.
		for i := int32(1); i < n; i++ {
			if con.Union(0, i) {
				successes[w]++
			}
		}
	})
	var total int64
	for _, s := range successes {
		total += s
	}
	if total != n-1 {
		t.Fatalf("%d successful unions, want %d", total, n-1)
	}
	for i := int32(1); i < n; i++ {
		if !con.Same(0, i) {
			t.Fatalf("element %d not merged", i)
		}
	}
}

func TestConcurrentSame(t *testing.T) {
	c := NewConcurrent(4)
	c.Union(0, 1)
	if !c.Same(0, 1) || c.Same(0, 2) {
		t.Fatal("Same wrong")
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func newHooks(n int) []int32 {
	hooks := make([]int32, n)
	for i := range hooks {
		hooks[i] = NoEdge
	}
	return hooks
}

func TestUnionEdgeSequential(t *testing.T) {
	c := NewConcurrent(4)
	hooks := newHooks(4)
	if !c.UnionEdge(0, 1, 7, hooks) {
		t.Fatal("first union failed")
	}
	if c.UnionEdge(1, 0, 8, hooks) {
		t.Fatal("repeat union succeeded")
	}
	if !c.UnionEdge(2, 3, 9, hooks) || !c.UnionEdge(0, 3, 10, hooks) {
		t.Fatal("unions failed")
	}
	// Exactly three hooks claimed, carrying the successful edge ids.
	var got []int32
	for _, h := range hooks {
		if h != NoEdge {
			got = append(got, h)
		}
	}
	if len(got) != 3 {
		t.Fatalf("%d hooks claimed, want 3 (%v)", len(got), hooks)
	}
	seen := map[int32]bool{7: false, 9: false, 10: false}
	for _, id := range got {
		if _, ok := seen[id]; !ok {
			t.Fatalf("hook carries unexpected edge id %d", id)
		}
		seen[id] = true
	}
}

func TestUnionEdgeConcurrentForest(t *testing.T) {
	// Hammer UnionEdge from 8 workers (run with -race): at quiescence the
	// claimed hooks must number exactly n - components, and replaying the
	// hooked edges through a sequential union-find must reproduce the same
	// partition without ever closing a cycle.
	const n = 2000
	r := rng.New(3)
	type edge struct{ a, b, id int32 }
	edges := make([]edge, 6000)
	for i := range edges {
		edges[i] = edge{int32(r.Intn(n)), int32(r.Intn(n)), int32(i)}
	}
	for _, workers := range []int{1, 2, 8} {
		con := NewConcurrent(n)
		hooks := newHooks(n)
		par.For(workers, len(edges), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				e := edges[i]
				if e.a == e.b {
					continue
				}
				con.UnionEdge(e.a, e.b, e.id, hooks)
			}
		})
		seq := New(n)
		claimed := 0
		for _, id := range hooks {
			if id == NoEdge {
				continue
			}
			claimed++
			e := edges[id]
			if !seq.Union(e.a, e.b) {
				t.Fatalf("workers=%d: hooked edge %d (%d-%d) closes a cycle", workers, id, e.a, e.b)
			}
		}
		if claimed != n-seq.Count() {
			t.Fatalf("workers=%d: %d hooks claimed, want %d", workers, claimed, n-seq.Count())
		}
		sigSeq := partitionSignature(seq.Find, n)
		sigCon := partitionSignature(con.Find, n)
		for i := range sigSeq {
			if sigSeq[i] != sigCon[i] {
				t.Fatalf("workers=%d: hooked forest partition differs at element %d", workers, i)
			}
		}
	}
}

func TestConcurrentStress(t *testing.T) {
	// Heavy contention on a small element set; run with -race.
	const n = 64
	c := NewConcurrent(n)
	par.Do(8, func(w int) {
		r := rng.New(uint64(w) * 7)
		for i := 0; i < 20_000; i++ {
			c.Union(int32(r.Intn(n)), int32(r.Intn(n)))
			c.Find(int32(r.Intn(n)))
		}
	})
	// Everything merged with overwhelming probability.
	root := c.Find(0)
	for i := int32(1); i < n; i++ {
		if c.Find(i) != root {
			t.Fatalf("element %d not in the single component", i)
		}
	}
}
