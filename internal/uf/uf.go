// Package uf provides union-find (disjoint set union) structures: a
// sequential version with union by rank and path compression for the
// Kruskal baseline and the verification oracle, and a lock-free
// CAS-based version used to merge the subtrees grown concurrently by
// MST-BC before contraction.
package uf

import "sync/atomic"

// UnionFind is the sequential disjoint-set structure.
type UnionFind struct {
	parent []int32
	rank   []int8
	count  int // number of disjoint sets
}

// New returns n singleton sets 0..n-1.
func New(n int) *UnionFind {
	u := &UnionFind{
		parent: make([]int32, n),
		rank:   make([]int8, n),
		count:  n,
	}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

// Find returns the representative of x with path halving.
func (u *UnionFind) Find(x int32) int32 {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// Union merges the sets of x and y; it reports whether a merge happened
// (false when they were already in the same set).
func (u *UnionFind) Union(x, y int32) bool {
	rx, ry := u.Find(x), u.Find(y)
	if rx == ry {
		return false
	}
	if u.rank[rx] < u.rank[ry] {
		rx, ry = ry, rx
	}
	u.parent[ry] = rx
	if u.rank[rx] == u.rank[ry] {
		u.rank[rx]++
	}
	u.count--
	return true
}

// Same reports whether x and y are in one set.
func (u *UnionFind) Same(x, y int32) bool { return u.Find(x) == u.Find(y) }

// Count returns the number of disjoint sets.
func (u *UnionFind) Count() int { return u.count }

// Concurrent is a lock-free union-find safe for use from many goroutines.
// It uses the classic CAS-on-parent scheme with union-by-id (the smaller
// root becomes the parent is NOT required; we always hang the larger id
// under the smaller to guarantee progress and avoid cycles) and path
// halving during finds. Linearizable unions; Find results are roots as of
// some point during the call.
type Concurrent struct {
	parent []atomic.Int32
}

// NewConcurrent returns n concurrent singleton sets.
func NewConcurrent(n int) *Concurrent {
	c := &Concurrent{parent: make([]atomic.Int32, n)}
	for i := range c.parent {
		c.parent[i].Store(int32(i))
	}
	return c
}

// Find returns a root of x's set, applying path halving.
func (c *Concurrent) Find(x int32) int32 {
	for {
		p := c.parent[x].Load()
		if p == x {
			return x
		}
		gp := c.parent[p].Load()
		if gp != p {
			// Path halving: best effort, failure is harmless.
			c.parent[x].CompareAndSwap(p, gp)
		}
		x = p
	}
}

// Union merges the sets containing x and y and reports whether a merge
// happened. Roots are ordered by id: the larger root is linked under the
// smaller, which (with CAS) prevents cycles among concurrent unions.
func (c *Concurrent) Union(x, y int32) bool {
	for {
		rx := c.Find(x)
		ry := c.Find(y)
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Link larger root ry under smaller root rx.
		if c.parent[ry].CompareAndSwap(ry, rx) {
			return true
		}
		// ry stopped being a root; retry with fresh roots.
	}
}

// NoEdge is the empty value of a CAS-hook slot: the vertex has not yet
// been linked under another root by UnionEdge.
const NoEdge int32 = -1

// UnionEdge merges the sets containing x and y like Union, but follows
// the GBBS nd.h CAS-hook protocol so the winning edge is recorded: the
// root r that is about to be linked is first claimed by a CompareAndSwap
// of id into hooks[r] (initialized to NoEdge), and only the winner of
// that CAS performs the parent link. Because a root can only stop being
// a root through its hook winner, the subsequent parent store cannot
// race with another link of r, and each vertex hooks at most one edge
// for the whole run — the non-NoEdge entries of hooks at quiescence are
// exactly the ids of a spanning forest of the edges passed in.
//
// All unions on one Concurrent must go through the same protocol: mixing
// UnionEdge and plain Union calls voids the single-linker guarantee.
//
//msf:atomic hooks
func (c *Concurrent) UnionEdge(x, y, id int32, hooks []int32) bool {
	for {
		rx := c.Find(x)
		ry := c.Find(y)
		if rx == ry {
			return false
		}
		if rx > ry {
			rx, ry = ry, rx
		}
		// Claim the larger root ry by hooking the edge id into its slot;
		// the winner (and only the winner) links ry under rx. Losers loop:
		// either ry is mid-link (Find will soon see the new parent) or a
		// different interleaving produced fresh roots.
		if atomic.LoadInt32(&hooks[ry]) == NoEdge &&
			atomic.CompareAndSwapInt32(&hooks[ry], NoEdge, id) {
			c.parent[ry].Store(rx)
			return true
		}
	}
}

// Same reports whether x and y are currently in one set. In the presence
// of concurrent unions the answer is only advisory; callers in this
// library invoke it after all unions have completed.
func (c *Concurrent) Same(x, y int32) bool {
	for {
		rx := c.Find(x)
		ry := c.Find(y)
		if rx == ry {
			return true
		}
		// rx may have been linked under something else meanwhile.
		if c.parent[rx].Load() == rx {
			return false
		}
	}
}

// Len returns the number of elements.
func (c *Concurrent) Len() int { return len(c.parent) }
