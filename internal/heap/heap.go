// Package heap implements an indexed binary min-heap with decrease-key,
// the priority queue behind the sequential Prim baseline and each
// processor's tree-growing loop in the MST-BC algorithm (Alg. 2 of the
// paper uses heap-insert, heap-extract-min and heap-decrease-key).
//
// Items are dense int32 identifiers in [0, capacity); each item carries a
// float64 key and an int32 payload (the edge that achieves the key).
package heap

// IndexedHeap is a binary min-heap over items 0..cap-1 keyed by float64.
//
// pos[item] is the item's slot in the heap array, or -1 when absent.
// The zero value is not usable; call New.
type IndexedHeap struct {
	items []int32 // heap array of item ids
	keys  []float64
	pay   []int32
	pos   []int32
}

// New returns an empty heap able to hold items 0..capacity-1.
func New(capacity int) *IndexedHeap {
	h := &IndexedHeap{
		items: make([]int32, 0, 64),
		keys:  make([]float64, capacity),
		pay:   make([]int32, capacity),
		pos:   make([]int32, capacity),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items currently in the heap.
func (h *IndexedHeap) Len() int { return len(h.items) }

// Contains reports whether item is in the heap.
func (h *IndexedHeap) Contains(item int32) bool { return h.pos[item] >= 0 }

// Key returns the current key of item, which must be in the heap.
func (h *IndexedHeap) Key(item int32) float64 { return h.keys[item] }

// Payload returns the payload recorded for item, which must be in the
// heap (or have been the most recent popped value of the item).
func (h *IndexedHeap) Payload(item int32) int32 { return h.pay[item] }

// Push inserts item with the given key and payload. The item must not
// already be present.
func (h *IndexedHeap) Push(item int32, key float64, payload int32) {
	if h.pos[item] >= 0 {
		panic("heap: duplicate push")
	}
	h.keys[item] = key
	h.pay[item] = payload
	h.pos[item] = int32(len(h.items))
	h.items = append(h.items, item)
	h.up(len(h.items) - 1)
}

// DecreaseKey lowers item's key to key (recording the new payload) if key
// is smaller than the current key; it reports whether an update occurred.
// The item must be present.
func (h *IndexedHeap) DecreaseKey(item int32, key float64, payload int32) bool {
	if key >= h.keys[item] {
		return false
	}
	h.keys[item] = key
	h.pay[item] = payload
	h.up(int(h.pos[item]))
	return true
}

// PushOrDecrease inserts the item if absent, otherwise applies
// DecreaseKey. This is the combined operation of Alg. 2's inner loop.
func (h *IndexedHeap) PushOrDecrease(item int32, key float64, payload int32) {
	if h.pos[item] >= 0 {
		h.DecreaseKey(item, key, payload)
		return
	}
	h.Push(item, key, payload)
}

// PopMin removes and returns the item with the smallest key along with
// its key and payload. It panics on an empty heap.
func (h *IndexedHeap) PopMin() (item int32, key float64, payload int32) {
	if len(h.items) == 0 {
		panic("heap: pop from empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, h.keys[top], h.pay[top]
}

// Reset empties the heap, leaving position bookkeeping consistent so the
// heap can be reused without reallocation (MST-BC grows many trees per
// worker from one heap).
func (h *IndexedHeap) Reset() {
	for _, it := range h.items {
		h.pos[it] = -1
	}
	h.items = h.items[:0]
}

func (h *IndexedHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b // deterministic tie-break
}

func (h *IndexedHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *IndexedHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *IndexedHeap) down(i int) {
	n := len(h.items)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		smallest := l
		if r := l + 1; r < n && h.less(r, l) {
			smallest = r
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
