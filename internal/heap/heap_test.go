package heap

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

func TestPushPopOrdered(t *testing.T) {
	h := New(10)
	keys := []float64{5, 1, 9, 3, 7}
	for i, k := range keys {
		h.Push(int32(i), k, int32(100+i))
	}
	want := []struct {
		item int32
		key  float64
	}{{1, 1}, {3, 3}, {0, 5}, {4, 7}, {2, 9}}
	for _, w := range want {
		item, key, pay := h.PopMin()
		if item != w.item || key != w.key || pay != 100+w.item {
			t.Fatalf("pop = (%d,%g,%d), want (%d,%g,%d)", item, key, pay, w.item, w.key, 100+w.item)
		}
	}
	if h.Len() != 0 {
		t.Fatal("heap not empty")
	}
}

func TestPopProperty(t *testing.T) {
	f := func(raw []float64) bool {
		// Deduplicate item keys don't matter; items are indices.
		if len(raw) > 200 {
			raw = raw[:200]
		}
		for i, v := range raw {
			if math.IsNaN(v) {
				raw[i] = float64(i)
			}
		}
		h := New(len(raw))
		for i, k := range raw {
			h.Push(int32(i), k, 0)
		}
		var popped []float64
		for h.Len() > 0 {
			_, k, _ := h.PopMin()
			popped = append(popped, k)
		}
		if len(popped) != len(raw) {
			return false
		}
		return sort.Float64sAreSorted(popped)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecreaseKey(t *testing.T) {
	h := New(4)
	h.Push(0, 10, 1)
	h.Push(1, 20, 2)
	h.Push(2, 30, 3)
	if !h.DecreaseKey(2, 5, 99) {
		t.Fatal("decrease to 5 rejected")
	}
	if h.DecreaseKey(2, 50, 0) {
		t.Fatal("increase accepted")
	}
	item, key, pay := h.PopMin()
	if item != 2 || key != 5 || pay != 99 {
		t.Fatalf("pop = (%d,%g,%d), want (2,5,99)", item, key, pay)
	}
}

func TestPushOrDecrease(t *testing.T) {
	h := New(2)
	h.PushOrDecrease(0, 10, 1)
	h.PushOrDecrease(0, 5, 2)  // decrease
	h.PushOrDecrease(0, 50, 3) // no-op
	item, key, pay := h.PopMin()
	if item != 0 || key != 5 || pay != 2 {
		t.Fatalf("pop = (%d,%g,%d), want (0,5,2)", item, key, pay)
	}
}

func TestDuplicatePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate push did not panic")
		}
	}()
	h := New(2)
	h.Push(0, 1, 0)
	h.Push(0, 2, 0)
}

func TestPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty pop did not panic")
		}
	}()
	New(1).PopMin()
}

func TestContains(t *testing.T) {
	h := New(3)
	h.Push(1, 5, 0)
	if !h.Contains(1) || h.Contains(0) || h.Contains(2) {
		t.Fatal("contains wrong")
	}
	h.PopMin()
	if h.Contains(1) {
		t.Fatal("popped item still contained")
	}
}

func TestReset(t *testing.T) {
	h := New(5)
	for i := int32(0); i < 5; i++ {
		h.Push(i, float64(i), 0)
	}
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset left items")
	}
	for i := int32(0); i < 5; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d contained after reset", i)
		}
	}
	// Reusable after reset.
	h.Push(3, 1, 7)
	item, _, pay := h.PopMin()
	if item != 3 || pay != 7 {
		t.Fatal("heap unusable after reset")
	}
}

func TestTieBreakDeterministic(t *testing.T) {
	h := New(10)
	for i := int32(9); i >= 0; i-- {
		h.Push(i, 1.0, 0)
	}
	for want := int32(0); want < 10; want++ {
		item, _, _ := h.PopMin()
		if item != want {
			t.Fatalf("equal keys popped %d before %d", item, want)
		}
	}
}

// TestRandomizedWorkload cross-checks a long random mixed workload
// against a naive reference implementation.
func TestRandomizedWorkload(t *testing.T) {
	const n = 300
	r := rng.New(8)
	h := New(n)
	ref := map[int32]float64{}

	refMin := func() int32 {
		best := int32(-1)
		for item, k := range ref {
			if best < 0 || k < ref[best] || (k == ref[best] && item < best) {
				best = item
			}
		}
		return best
	}

	for step := 0; step < 20_000; step++ {
		switch r.Intn(3) {
		case 0: // push
			item := int32(r.Intn(n))
			if _, ok := ref[item]; !ok {
				k := r.Float64()
				h.Push(item, k, int32(step))
				ref[item] = k
			}
		case 1: // decrease
			item := int32(r.Intn(n))
			if k, ok := ref[item]; ok {
				nk := k * r.Float64()
				if h.DecreaseKey(item, nk, int32(step)) {
					ref[item] = nk
				}
			}
		case 2: // pop
			if len(ref) > 0 {
				want := refMin()
				item, key, _ := h.PopMin()
				if item != want || key != ref[want] {
					t.Fatalf("step %d: pop (%d,%g), want (%d,%g)", step, item, key, want, ref[want])
				}
				delete(ref, item)
			}
		}
		if h.Len() != len(ref) {
			t.Fatalf("step %d: len %d, ref %d", step, h.Len(), len(ref))
		}
	}
}

func TestBinaryAccessors(t *testing.T) {
	h := New(3)
	h.Push(2, 1.5, 7)
	if h.Key(2) != 1.5 || h.Payload(2) != 7 {
		t.Fatalf("accessors (%g,%d)", h.Key(2), h.Payload(2))
	}
}
