package heap

import (
	"testing"

	"pmsf/internal/rng"
)

// PQ is the common interface of the two heap implementations, used to
// run identical test workloads against both.
type PQ interface {
	Len() int
	Contains(int32) bool
	Push(int32, float64, int32)
	DecreaseKey(int32, float64, int32) bool
	PushOrDecrease(int32, float64, int32)
	PopMin() (int32, float64, int32)
	Reset()
}

var (
	_ PQ = (*IndexedHeap)(nil)
	_ PQ = (*PairingHeap)(nil)
)

func TestPairingBasics(t *testing.T) {
	h := NewPairing(10)
	keys := []float64{5, 1, 9, 3, 7}
	for i, k := range keys {
		h.Push(int32(i), k, int32(100+i))
	}
	want := []int32{1, 3, 0, 4, 2}
	for _, w := range want {
		item, key, pay := h.PopMin()
		if item != w || key != keys[w] || pay != 100+w {
			t.Fatalf("pop = (%d,%g,%d), want (%d,%g,%d)", item, key, pay, w, keys[w], 100+w)
		}
	}
	if h.Len() != 0 {
		t.Fatal("not empty")
	}
}

func TestPairingDecreaseKey(t *testing.T) {
	h := NewPairing(5)
	for i := int32(0); i < 5; i++ {
		h.Push(i, float64(10+i), 0)
	}
	if !h.DecreaseKey(4, 1, 99) {
		t.Fatal("decrease rejected")
	}
	if h.DecreaseKey(4, 100, 0) {
		t.Fatal("increase accepted")
	}
	item, key, pay := h.PopMin()
	if item != 4 || key != 1 || pay != 99 {
		t.Fatalf("pop = (%d,%g,%d)", item, key, pay)
	}
	// Decrease the root: no structural change needed but key must move.
	if !h.DecreaseKey(0, 0.5, 7) {
		t.Fatal("root decrease rejected")
	}
	item, key, _ = h.PopMin()
	if item != 0 || key != 0.5 {
		t.Fatalf("root pop (%d,%g)", item, key)
	}
}

func TestPairingDuplicatePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	h := NewPairing(2)
	h.Push(1, 1, 0)
	h.Push(1, 2, 0)
}

func TestPairingPopEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPairing(1).PopMin()
}

func TestPairingReset(t *testing.T) {
	h := NewPairing(6)
	for i := int32(0); i < 6; i++ {
		h.Push(i, float64(i), 0)
	}
	h.PopMin() // detach one first, so Reset must clear a non-trivial forest
	h.Reset()
	if h.Len() != 0 {
		t.Fatal("reset left items")
	}
	for i := int32(0); i < 6; i++ {
		if h.Contains(i) {
			t.Fatalf("item %d contained after reset", i)
		}
	}
	h.Push(3, 1, 5)
	item, _, pay := h.PopMin()
	if item != 3 || pay != 5 {
		t.Fatal("unusable after reset")
	}
}

// Both heap implementations must behave identically on a long random
// mixed workload (push / decrease / pop with deterministic ties).
func TestPairingMatchesBinary(t *testing.T) {
	const n = 400
	r := rng.New(3)
	bin := New(n)
	pair := NewPairing(n)
	for step := 0; step < 50_000; step++ {
		switch r.Intn(4) {
		case 0, 1:
			item := int32(r.Intn(n))
			if !bin.Contains(item) {
				k := r.Float64()
				bin.Push(item, k, int32(step))
				pair.Push(item, k, int32(step))
			}
		case 2:
			item := int32(r.Intn(n))
			if bin.Contains(item) {
				k := bin.Key(item) * r.Float64()
				db := bin.DecreaseKey(item, k, int32(step))
				dp := pair.DecreaseKey(item, k, int32(step))
				if db != dp {
					t.Fatalf("step %d: decrease results differ", step)
				}
			}
		case 3:
			if bin.Len() > 0 {
				i1, k1, p1 := bin.PopMin()
				i2, k2, p2 := pair.PopMin()
				if i1 != i2 || k1 != k2 || p1 != p2 {
					t.Fatalf("step %d: pops differ: (%d,%g,%d) vs (%d,%g,%d)",
						step, i1, k1, p1, i2, k2, p2)
				}
			}
		}
		if bin.Len() != pair.Len() {
			t.Fatalf("step %d: lengths differ", step)
		}
	}
}

func TestPairingPushOrDecrease(t *testing.T) {
	h := NewPairing(2)
	h.PushOrDecrease(0, 10, 1)
	h.PushOrDecrease(0, 5, 2)
	h.PushOrDecrease(0, 50, 3)
	item, key, pay := h.PopMin()
	if item != 0 || key != 5 || pay != 2 {
		t.Fatalf("pop = (%d,%g,%d)", item, key, pay)
	}
}

func TestPairingAccessors(t *testing.T) {
	h := NewPairing(3)
	h.Push(1, 2.5, 42)
	if h.Key(1) != 2.5 || h.Payload(1) != 42 {
		t.Fatalf("accessors (%g,%d)", h.Key(1), h.Payload(1))
	}
}
