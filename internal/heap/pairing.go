package heap

// PairingHeap is an indexed pairing heap with decrease-key — the other
// classic priority queue in the Prim engineering literature (Moret and
// Shapiro's study, which the paper's experimental methodology follows,
// compares Prim over binary heaps against pairing heaps). It supports
// the same interface as IndexedHeap so the sequential Prim baseline can
// swap implementations (see seq.PrimWithHeap and
// BenchmarkAblationPrimHeap).
//
// Items are dense int32 identifiers in [0, capacity).
type PairingHeap struct {
	child   []int32
	sibling []int32
	prev    []int32 // parent if first child, else left sibling; -1 at root
	keys    []float64
	pay     []int32
	in      []bool
	root    int32
	size    int
	// scratch for the two-pass merge of PopMin
	pairs []int32
}

// NewPairing returns an empty pairing heap for items 0..capacity-1.
func NewPairing(capacity int) *PairingHeap {
	h := &PairingHeap{
		child:   make([]int32, capacity),
		sibling: make([]int32, capacity),
		prev:    make([]int32, capacity),
		keys:    make([]float64, capacity),
		pay:     make([]int32, capacity),
		in:      make([]bool, capacity),
		root:    -1,
	}
	for i := 0; i < capacity; i++ {
		h.child[i], h.sibling[i], h.prev[i] = -1, -1, -1
	}
	return h
}

// Len returns the number of items in the heap.
func (h *PairingHeap) Len() int { return h.size }

// Contains reports whether item is present.
func (h *PairingHeap) Contains(item int32) bool { return h.in[item] }

// Key returns item's current key; item must be present.
func (h *PairingHeap) Key(item int32) float64 { return h.keys[item] }

// Payload returns item's payload.
func (h *PairingHeap) Payload(item int32) int32 { return h.pay[item] }

// less orders items by (key, id) for deterministic ties.
func (h *PairingHeap) less(a, b int32) bool {
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b
}

// meld links two heap roots and returns the new root.
func (h *PairingHeap) meld(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	if h.less(b, a) {
		a, b = b, a
	}
	// b becomes a's first child.
	h.sibling[b] = h.child[a]
	if h.child[a] >= 0 {
		h.prev[h.child[a]] = b
	}
	h.child[a] = b
	h.prev[b] = a
	h.sibling[a] = -1
	h.prev[a] = -1
	return a
}

// Push inserts item; it must not be present.
func (h *PairingHeap) Push(item int32, key float64, payload int32) {
	if h.in[item] {
		panic("heap: duplicate push")
	}
	h.in[item] = true
	h.keys[item] = key
	h.pay[item] = payload
	h.child[item], h.sibling[item], h.prev[item] = -1, -1, -1
	h.root = h.meld(h.root, item)
	h.size++
}

// DecreaseKey lowers item's key if key is smaller; reports whether an
// update occurred. item must be present.
func (h *PairingHeap) DecreaseKey(item int32, key float64, payload int32) bool {
	if key >= h.keys[item] {
		return false
	}
	h.keys[item] = key
	h.pay[item] = payload
	if item == h.root {
		return true
	}
	// Cut item from its position.
	p := h.prev[item]
	if h.child[p] == item {
		h.child[p] = h.sibling[item]
	} else {
		h.sibling[p] = h.sibling[item]
	}
	if h.sibling[item] >= 0 {
		h.prev[h.sibling[item]] = p
	}
	h.sibling[item] = -1
	h.prev[item] = -1
	h.root = h.meld(h.root, item)
	return true
}

// PushOrDecrease inserts the item if absent, otherwise decreases.
func (h *PairingHeap) PushOrDecrease(item int32, key float64, payload int32) {
	if h.in[item] {
		h.DecreaseKey(item, key, payload)
		return
	}
	h.Push(item, key, payload)
}

// PopMin removes and returns the minimum item with its key and payload.
func (h *PairingHeap) PopMin() (item int32, key float64, payload int32) {
	if h.size == 0 {
		panic("heap: pop from empty heap")
	}
	top := h.root
	h.in[top] = false
	h.size--

	// Two-pass pairing of the children.
	h.pairs = h.pairs[:0]
	c := h.child[top]
	for c >= 0 {
		next := h.sibling[c]
		h.sibling[c] = -1
		h.prev[c] = -1
		h.pairs = append(h.pairs, c)
		c = next
	}
	h.child[top] = -1
	// First pass: pair left to right.
	var merged []int32 = h.pairs
	n := len(merged)
	for i := 0; i+1 < n; i += 2 {
		merged[i/2] = h.meld(merged[i], merged[i+1])
	}
	half := n / 2
	if n%2 == 1 {
		merged[half] = merged[n-1]
		half++
	}
	// Second pass: fold right to left.
	root := int32(-1)
	for i := half - 1; i >= 0; i-- {
		root = h.meld(root, merged[i])
	}
	h.root = root
	return top, h.keys[top], h.pay[top]
}

// Reset empties the heap for reuse.
func (h *PairingHeap) Reset() {
	// Lazily detach: mark everything reachable as absent.
	if h.root >= 0 {
		h.clear(h.root)
	}
	h.root = -1
	h.size = 0
}

func (h *PairingHeap) clear(v int32) {
	// Iterative DFS over child/sibling pointers.
	stack := append(h.pairs[:0], v)
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		h.in[x] = false
		if c := h.child[x]; c >= 0 {
			stack = append(stack, c)
		}
		if s := h.sibling[x]; s >= 0 {
			stack = append(stack, s)
		}
		h.child[x], h.sibling[x], h.prev[x] = -1, -1, -1
	}
	h.pairs = stack[:0]
}
