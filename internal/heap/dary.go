package heap

// DaryHeap is an indexed d-ary min-heap with decrease-key. Wider nodes
// trade more sift-down comparisons for a shallower tree and better cache
// behaviour on decrease-key-heavy workloads like Prim — the third
// contender in the priority-queue comparison (Moret and Shapiro's study
// includes d-heaps; see seq.PrimWithHeap and
// BenchmarkAblationPrimHeap).
type DaryHeap struct {
	d     int
	items []int32
	keys  []float64
	pay   []int32
	pos   []int32
}

// NewDary returns an empty d-ary heap over items 0..capacity-1. d must
// be at least 2 (4 is the classic cache-friendly choice).
func NewDary(d, capacity int) *DaryHeap {
	if d < 2 {
		panic("heap: d must be >= 2")
	}
	h := &DaryHeap{
		d:     d,
		items: make([]int32, 0, 64),
		keys:  make([]float64, capacity),
		pay:   make([]int32, capacity),
		pos:   make([]int32, capacity),
	}
	for i := range h.pos {
		h.pos[i] = -1
	}
	return h
}

// Len returns the number of items in the heap.
func (h *DaryHeap) Len() int { return len(h.items) }

// Contains reports whether item is present.
func (h *DaryHeap) Contains(item int32) bool { return h.pos[item] >= 0 }

// Key returns item's current key.
func (h *DaryHeap) Key(item int32) float64 { return h.keys[item] }

// Payload returns item's payload.
func (h *DaryHeap) Payload(item int32) int32 { return h.pay[item] }

// Push inserts item; it must not be present.
func (h *DaryHeap) Push(item int32, key float64, payload int32) {
	if h.pos[item] >= 0 {
		panic("heap: duplicate push")
	}
	h.keys[item] = key
	h.pay[item] = payload
	h.pos[item] = int32(len(h.items))
	h.items = append(h.items, item)
	h.up(len(h.items) - 1)
}

// DecreaseKey lowers item's key if key is smaller; reports whether an
// update occurred.
func (h *DaryHeap) DecreaseKey(item int32, key float64, payload int32) bool {
	if key >= h.keys[item] {
		return false
	}
	h.keys[item] = key
	h.pay[item] = payload
	h.up(int(h.pos[item]))
	return true
}

// PushOrDecrease inserts or decreases.
func (h *DaryHeap) PushOrDecrease(item int32, key float64, payload int32) {
	if h.pos[item] >= 0 {
		h.DecreaseKey(item, key, payload)
		return
	}
	h.Push(item, key, payload)
}

// PopMin removes and returns the minimum item.
func (h *DaryHeap) PopMin() (item int32, key float64, payload int32) {
	if len(h.items) == 0 {
		panic("heap: pop from empty heap")
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.swap(0, last)
	h.items = h.items[:last]
	h.pos[top] = -1
	if last > 0 {
		h.down(0)
	}
	return top, h.keys[top], h.pay[top]
}

// Reset empties the heap for reuse.
func (h *DaryHeap) Reset() {
	for _, it := range h.items {
		h.pos[it] = -1
	}
	h.items = h.items[:0]
}

func (h *DaryHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if h.keys[a] != h.keys[b] {
		return h.keys[a] < h.keys[b]
	}
	return a < b
}

func (h *DaryHeap) swap(i, j int) {
	h.items[i], h.items[j] = h.items[j], h.items[i]
	h.pos[h.items[i]] = int32(i)
	h.pos[h.items[j]] = int32(j)
}

func (h *DaryHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / h.d
		if !h.less(i, parent) {
			return
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *DaryHeap) down(i int) {
	n := len(h.items)
	for {
		first := h.d*i + 1
		if first >= n {
			return
		}
		smallest := first
		end := first + h.d
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if h.less(c, smallest) {
				smallest = c
			}
		}
		if !h.less(smallest, i) {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
