package heap

import (
	"fmt"
	"testing"

	"pmsf/internal/rng"
)

var _ PQ = (*DaryHeap)(nil)

func TestDaryMatchesBinary(t *testing.T) {
	for _, d := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("d=%d", d), func(t *testing.T) {
			const n = 300
			r := rng.New(uint64(d))
			bin := New(n)
			dary := NewDary(d, n)
			for step := 0; step < 30_000; step++ {
				switch r.Intn(4) {
				case 0, 1:
					item := int32(r.Intn(n))
					if !bin.Contains(item) {
						k := r.Float64()
						bin.Push(item, k, int32(step))
						dary.Push(item, k, int32(step))
					}
				case 2:
					item := int32(r.Intn(n))
					if bin.Contains(item) {
						k := bin.Key(item) * r.Float64()
						if bin.DecreaseKey(item, k, int32(step)) != dary.DecreaseKey(item, k, int32(step)) {
							t.Fatalf("step %d: decrease results differ", step)
						}
					}
				case 3:
					if bin.Len() > 0 {
						i1, k1, p1 := bin.PopMin()
						i2, k2, p2 := dary.PopMin()
						if i1 != i2 || k1 != k2 || p1 != p2 {
							t.Fatalf("step %d: pops differ", step)
						}
					}
				}
				if bin.Len() != dary.Len() {
					t.Fatalf("step %d: lengths differ", step)
				}
			}
		})
	}
}

func TestDaryBasics(t *testing.T) {
	h := NewDary(4, 8)
	for i := int32(7); i >= 0; i-- {
		h.Push(i, float64(i), i*10)
	}
	for want := int32(0); want < 8; want++ {
		item, key, pay := h.PopMin()
		if item != want || key != float64(want) || pay != want*10 {
			t.Fatalf("pop (%d,%g,%d)", item, key, pay)
		}
	}
}

func TestDaryReset(t *testing.T) {
	h := NewDary(4, 4)
	h.Push(0, 1, 0)
	h.Push(1, 2, 0)
	h.Reset()
	if h.Len() != 0 || h.Contains(0) || h.Contains(1) {
		t.Fatal("reset broken")
	}
	h.Push(2, 5, 3)
	if item, _, pay := h.PopMin(); item != 2 || pay != 3 {
		t.Fatal("unusable after reset")
	}
}

func TestDaryPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"d=1":       func() { NewDary(1, 4) },
		"dup push":  func() { h := NewDary(4, 2); h.Push(0, 1, 0); h.Push(0, 2, 0) },
		"empty pop": func() { NewDary(4, 1).PopMin() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestDaryAccessorsAndPushOrDecrease(t *testing.T) {
	h := NewDary(4, 4)
	h.PushOrDecrease(1, 3.5, 9)
	if h.Key(1) != 3.5 || h.Payload(1) != 9 {
		t.Fatalf("accessors (%g,%d)", h.Key(1), h.Payload(1))
	}
	h.PushOrDecrease(1, 1.5, 11) // decrease path
	h.PushOrDecrease(1, 9.0, 12) // no-op path
	item, key, pay := h.PopMin()
	if item != 1 || key != 1.5 || pay != 11 {
		t.Fatalf("pop (%d,%g,%d)", item, key, pay)
	}
}

func TestDaryTieBreak(t *testing.T) {
	h := NewDary(3, 6)
	for i := int32(5); i >= 0; i-- {
		h.Push(i, 1.0, 0)
	}
	for want := int32(0); want < 6; want++ {
		if item, _, _ := h.PopMin(); item != want {
			t.Fatalf("tie order broken: got %d want %d", item, want)
		}
	}
}
