// Package report renders algorithm instrumentation (the Borůvka
// per-iteration stats, MST-BC per-level stats, and filter stats) as
// human-readable text. The CLI uses it; keeping the formatting here
// makes it testable and reusable by examples.
package report

import (
	"fmt"
	"io"
	"sort"
	"time"

	"pmsf/internal/boruvka"
	"pmsf/internal/cashook"
	"pmsf/internal/filter"
	"pmsf/internal/mstbc"
	"pmsf/internal/obs"
)

// Boruvka writes a per-iteration table of a Borůvka run.
func Boruvka(w io.Writer, s *boruvka.Stats) error {
	if _, err := fmt.Fprintf(w, "%s, p=%d, %d iterations\n", s.Algorithm, s.Workers, len(s.Iters)); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-5s %12s %14s %12s %12s %12s\n",
		"iter", "supervertices", "list size", "find-min", "conn-comp", "compact"); err != nil {
		return err
	}
	for i, it := range s.Iters {
		if _, err := fmt.Fprintf(w, "%-5d %12d %14d %12v %12v %12v\n",
			i+1, it.N, it.ListSize,
			round(it.Steps.FindMin), round(it.Steps.ConnectComponents), round(it.Steps.CompactGraph)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-5s %12s %14s %12v %12v %12v\n",
		"total", "", "",
		round(s.Total.FindMin), round(s.Total.ConnectComponents), round(s.Total.CompactGraph))
	return err
}

// CASHook writes a summary of a Bor-CAS run: bucket shape and the three
// phase wall times.
func CASHook(w io.Writer, s *cashook.Stats) error {
	_, err := fmt.Fprintf(w,
		"%s, p=%d: %d weight bucket(s), max %d edge(s), %d hooked on the team\n  sort %v  hook %v  collect %v\n",
		s.Algorithm, s.Workers, s.Buckets, s.MaxBucket, s.ParallelBuckets,
		round(s.Sort), round(s.Hook), round(s.Collect))
	return err
}

// MSTBC writes a per-level table of an MST-BC run.
func MSTBC(w io.Writer, s *mstbc.Stats) error {
	if _, err := fmt.Fprintf(w, "MST-BC, p=%d, %d parallel levels, sequential base n=%d m=%d, total %v\n",
		s.Workers, len(s.Levels), s.SeqBaseN, s.SeqBaseM, round(s.TotalTime)); err != nil {
		return err
	}
	if len(s.Levels) == 0 {
		return nil
	}
	if _, err := fmt.Fprintf(w, "%-5s %10s %10s %8s %10s %8s %10s %10s\n",
		"level", "n", "m", "trees", "collisions", "steals", "visited", "grow"); err != nil {
		return err
	}
	for i, lv := range s.Levels {
		if _, err := fmt.Fprintf(w, "%-5d %10d %10d %8d %10d %8d %10d %10v\n",
			i+1, lv.N, lv.M, lv.Trees, lv.Collisions, lv.Steals, lv.Visited, round(lv.GrowTime)); err != nil {
			return err
		}
	}
	return nil
}

// Filter writes a summary of a filtered run.
func Filter(w io.Writer, s *filter.Stats) error {
	_, err := fmt.Fprintf(w,
		"filter: sampled %d of %d edges (p=%.2f, %d level(s)), discarded %d as heavy, final %d (%.2fx reduction)\n",
		s.Sampled, s.M, s.SampleProb, s.Levels, s.Discarded, s.FinalM, reduction(s.M, s.FinalM))
	return err
}

// Summary writes the machine-independent roll-up of a traced run: phase
// totals in name order, then counters (when the summary has any).
func Summary(w io.Writer, s *obs.Summary) error {
	if _, err := fmt.Fprintf(w, "%s, p=%d, %d spans, wall %v\n",
		s.Algorithm, s.Workers, s.SpanCount, round(time.Duration(s.WallNS))); err != nil {
		return err
	}
	names := make([]string, 0, len(s.PhaseTotalNS))
	for name := range s.PhaseTotalNS {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "  %-20s %12v\n", name, round(time.Duration(s.PhaseTotalNS[name]))); err != nil {
			return err
		}
	}
	cnames := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	for _, name := range cnames {
		if _, err := fmt.Fprintf(w, "  %-20s %12d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	return nil
}

func reduction(m, final int) float64 {
	if final <= 0 {
		return 0
	}
	return float64(m) / float64(final)
}

func round(d time.Duration) time.Duration { return d.Round(time.Microsecond) }
