package report

import (
	"bytes"
	"strings"
	"testing"

	"pmsf/internal/boruvka"
	"pmsf/internal/filter"
	"pmsf/internal/gen"
	"pmsf/internal/mstbc"
)

func TestBoruvkaReport(t *testing.T) {
	g := gen.Random(1000, 5000, 1)
	_, stats := boruvka.FAL(g, boruvka.Options{Stats: true})
	var buf bytes.Buffer
	if err := Boruvka(&buf, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Bor-FAL", "iterations", "find-min", "total"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// One line per iteration plus header, title and total.
	if lines := strings.Count(out, "\n"); lines != len(stats.Iters)+3 {
		t.Errorf("report has %d lines, want %d", lines, len(stats.Iters)+3)
	}
}

func TestMSTBCReport(t *testing.T) {
	g := gen.Random(2000, 8000, 2)
	_, stats := mstbc.Run(g, mstbc.Options{Workers: 4, BaseSize: 64, Stats: true})
	var buf bytes.Buffer
	if err := MSTBC(&buf, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"MST-BC", "levels", "collisions", "trees"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestMSTBCReportNoLevels(t *testing.T) {
	g := gen.Random(100, 300, 3)
	_, stats := mstbc.Run(g, mstbc.Options{Workers: 2, BaseSize: 1 << 20, Stats: true})
	var buf bytes.Buffer
	if err := MSTBC(&buf, stats); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 parallel levels") {
		t.Errorf("expected zero-level summary:\n%s", buf.String())
	}
}

func TestFilterReport(t *testing.T) {
	g := gen.Random(1000, 20000, 4)
	_, stats := filter.Run(g, filter.Options{Stats: true})
	var buf bytes.Buffer
	if err := Filter(&buf, stats); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "sampled") || !strings.Contains(out, "reduction") {
		t.Errorf("filter report incomplete:\n%s", out)
	}
}

func TestReduction(t *testing.T) {
	if reduction(100, 0) != 0 {
		t.Fatal("division by zero not guarded")
	}
	if reduction(100, 25) != 4 {
		t.Fatal("reduction wrong")
	}
}
