// Package writemin implements Bor-WM, a filter-Borůvka minimum spanning
// forest engine in the style of parlaylib's boruvka.h: the find-min step
// is a concurrent write-min race on a per-vertex atomic uint64, and the
// compact-graph step degenerates to a relabel plus a self-edge filter —
// no sort, no duplicate merging, no adjacency rebuild inside the round
// loop.
//
// A setup-time parallel sort by the library's canonical (weight, id)
// order assigns every edge a distinct rank; the race key packs that rank
// with the edge's current working-list index as rank<<32|index. Plain
// unsigned comparison of keys therefore realizes the exact (weight, id)
// total order, which is what makes the engine safe: with a total order
// on edge priorities the chosen-neighbor pointer graph contains only
// mutual 2-cycles (the classic Borůvka argument), the invariant
// cc.Resolver asserts. Racing on weight bits alone would admit longer
// cycles among tied edges.
//
// Memory ordering: the write-min CAS loop publishes only the winning key
// into best[v]; no payload is read through it until the race phase has
// quiesced behind the worker-team barrier, which establishes the
// happens-before edge for the winner-pick pass. The loop re-loads and
// retries only while its key is strictly smaller than the current value,
// so it is lock-free and each slot is monotonically decreasing.
package writemin

import (
	"sync/atomic"

	"pmsf/internal/boruvka"
	"pmsf/internal/cc"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// Options configures a Bor-WM run.
type Options struct {
	// Workers is the number of parallel workers p; 0 means GOMAXPROCS.
	Workers int
	// Stats enables per-iteration instrumentation.
	Stats bool
	// Seed drives the setup sample sort's splitter selection only; the
	// result is identical for every seed.
	Seed uint64
	// Trace, when non-nil, receives the iteration/step spans.
	Trace *obs.Collector
}

// wmEdge is a working edge: endpoints in current supervertex labels, the
// original edge id (for the forest), and the edge's rank in the global
// (weight, id) order — distinct per edge, assigned once at setup.
type wmEdge struct {
	U, V, ID, Rank int32
}

// noMin is the reset value of a best slot: no incident edge raced yet.
const noMin = ^uint64(0)

// raceKey packs an edge's priority for the write-min race: the distinct
// (weight, id) rank in the high half makes unsigned comparison exact,
// and the current working-list index in the low half lets the winner
// pass recover the edge without an id→index table.
//
//msf:packer
//msf:noalloc
func raceKey(rank int32, idx int) uint64 {
	return uint64(uint32(rank))<<32 | uint64(uint32(idx))
}

// raceIdx recovers the working-list index from a race key's low half —
// the only sanctioned decode of a best-slot value.
//
//msf:unpacker
//msf:noalloc
func raceIdx(key uint64) int {
	return int(uint32(key))
}

// writeMin lowers a toward key with a lock-free CAS loop; the slot value
// is monotonically decreasing so the loop terminates as soon as a
// smaller-or-equal key is observed.
//
//msf:packsink key
//msf:noalloc
func writeMin(a *atomic.Uint64, key uint64) {
	for {
		cur := a.Load()
		if key >= cur {
			return
		}
		if a.CompareAndSwap(cur, key) {
			return
		}
	}
}

// run is the round-loop state: every buffer is allocated in newRun and
// the phase bodies are prebound method values, so round() performs no
// heap allocation in steady state (pinned by TestBorWMRoundZeroAllocs).
type run struct {
	name string
	p    int
	c    *obs.Collector
	root obs.Span
	team *par.Team
	res  *cc.Resolver

	edges, spare []wmEdge // full-capacity ping-pong; live prefix is [:m]
	m            int
	// best holds the per-vertex write-min race slots, rank<<32|index
	// keys built by raceKey and decoded by raceIdx only.
	//
	//msf:packed
	best        []atomic.Uint64
	parent, sel []int32
	labels      []int32
	ids         []int32
	idsLen      int
	wcount      []int64
	n, k        int

	resetBody, raceBody, winnerBody func(worker, lo, hi int)
	harvestCountBody                func(int)
	harvestScatterBody              func(int)
	filterCountBody                 func(int)
	filterScatterBody               func(int)
	findMinFn                       func()
	connectFn                       func()
	compactFn                       func()
}

func workers(opt Options) int {
	if opt.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return opt.Workers
}

// weightLess is the canonical (weight, id) total order.
func weightLess(a, b graph.WEdge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.ID < b.ID
}

// newRun ranks the edges and allocates the round state.
func newRun(g *graph.EdgeList, opt Options) *run {
	p := workers(opt)
	c := opt.Trace
	if c == nil && opt.Stats {
		c = obs.NewCollector()
	}
	root := obs.StartUnder(c, obs.Span{}, "Bor-WM", "Bor-WM")
	root.SetInt("workers", int64(p))

	r := &run{name: "Bor-WM", p: p, c: c, root: root, n: g.N}
	r.team = par.NewTeam(p)
	r.res = cc.NewResolver(p, r.team)
	r.resetBody = r.resetWork
	r.raceBody = r.raceWork
	r.winnerBody = r.winnerWork
	r.harvestCountBody = r.harvestCountWork
	r.harvestScatterBody = r.harvestScatterWork
	r.filterCountBody = r.filterCountWork
	r.filterScatterBody = r.filterScatterWork
	r.findMinFn = r.findMinPhase
	r.connectFn = r.connectPhase
	r.compactFn = r.compactPhase

	setup := root.Child("setup")
	labeled(c, r.name, "setup", func() {
		tmp := make([]graph.WEdge, 0, len(g.Edges))
		for id, e := range g.Edges {
			if e.U == e.V {
				continue
			}
			tmp = append(tmp, graph.WEdge{U: e.U, V: e.V, ID: int32(id), W: e.W})
		}
		sorts.SampleSort(p, tmp, weightLess, opt.Seed)
		r.edges = make([]wmEdge, len(tmp))
		for i, e := range tmp {
			r.edges[i] = wmEdge{U: e.U, V: e.V, ID: e.ID, Rank: int32(i)}
		}
	})
	r.m = len(r.edges)
	r.spare = make([]wmEdge, r.m)
	r.best = make([]atomic.Uint64, g.N)
	r.parent = make([]int32, g.N)
	r.sel = make([]int32, g.N)
	r.ids = make([]int32, g.N) // a forest has at most n-1 edges
	r.wcount = make([]int64, p)
	setup.SetInt("elements", int64(r.m))
	setup.End()
	return r
}

// close releases the worker team.
func (r *run) close() { r.team.Close() }

// round runs one filter-Borůvka iteration and reports whether the
// working list still had edges.
//
//msf:noalloc
func (r *run) round() bool {
	if r.m == 0 {
		return false
	}
	it := r.root.Child("iteration")
	it.SetInt("n", int64(r.n))
	it.SetInt("list_size", int64(r.m))

	step := it.Child("find-min")
	labeled(r.c, r.name, "find-min", r.findMinFn)
	step.End()

	step = it.Child("connect-components")
	labeled(r.c, r.name, "connect-components", r.connectFn)
	step.End()

	step = it.Child("compact-graph")
	before := int64(r.m)
	labeled(r.c, r.name, "compact-graph", r.compactFn)
	if gone := before - int64(r.m); gone > 0 && obs.MetricsOn() {
		obs.EdgesRetired.Add(gone)
	}
	step.End()
	if obs.MetricsOn() {
		obs.Supervertices.Set(int64(r.n))
	}

	it.End()
	return true
}

// findMinPhase: reset the best slots, race every working edge into both
// endpoints' slots, pick the winners into (parent, sel), harvest.
//
//msf:noalloc
func (r *run) findMinPhase() {
	r.team.ForDynamic(r.n, 2048, r.resetBody)
	r.team.ForDynamic(r.m, 512, r.raceBody)
	r.team.ForDynamic(r.n, 1024, r.winnerBody)
	r.harvest()
}

//msf:noalloc
func (r *run) resetWork(_, lo, hi int) {
	best := r.best
	for v := lo; v < hi; v++ {
		best[v].Store(noMin)
	}
}

//msf:noalloc
func (r *run) raceWork(_, lo, hi int) {
	edges, best := r.edges, r.best
	for i := lo; i < hi; i++ {
		e := edges[i]
		key := raceKey(e.Rank, i)
		writeMin(&best[e.U], key)
		writeMin(&best[e.V], key)
	}
}

//msf:noalloc
func (r *run) winnerWork(_, lo, hi int) {
	edges, best, parent, sel := r.edges, r.best, r.parent, r.sel
	for v := lo; v < hi; v++ {
		b := best[v].Load()
		if b == noMin {
			parent[v] = int32(v)
			continue
		}
		e := edges[raceIdx(b)]
		sel[v] = e.ID
		if e.U == int32(v) {
			parent[v] = e.V
		} else {
			parent[v] = e.U
		}
	}
}

// picked reports whether supervertex v owns its selected edge this
// round: it chose a neighbor, and in the mutual-pair case the smaller
// endpoint owns the shared edge.
//
//msf:noalloc
func picked(parent []int32, v int) bool {
	pv := parent[v]
	if int(pv) == v {
		return false
	}
	return int(parent[pv]) != v || int(pv) >= v
}

// harvest appends each owned selection to the forest-id buffer via a
// per-worker count, an exclusive scan, and a scatter. parent must be the
// raw chosen-neighbor array BEFORE resolve.
//
//msf:noalloc
func (r *run) harvest() {
	r.team.Run(r.harvestCountBody)
	total := int64(r.idsLen)
	// O(p) coordinator scan over per-worker counters: serial by design
	// (see the scan taxonomy in par/scan.go) — unlike the Θ(nd·p)
	// histogram scans par.Scanner parallelizes, p adds cost less here
	// than one team barrier would.
	for w := 0; w < r.p; w++ {
		v := r.wcount[w]
		r.wcount[w] = total
		total += v
	}
	r.team.Run(r.harvestScatterBody)
	r.idsLen = int(total)
}

//msf:noalloc
func (r *run) harvestCountWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	parent := r.parent
	var c int64
	for v := lo; v < hi; v++ {
		if picked(parent, v) {
			c++
		}
	}
	r.wcount[w] = c
}

//msf:noalloc
func (r *run) harvestScatterWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	parent, sel, ids := r.parent, r.sel, r.ids
	pos := r.wcount[w]
	for v := lo; v < hi; v++ {
		if picked(parent, v) {
			ids[pos] = sel[v]
			pos++
		}
	}
}

//msf:noalloc
func (r *run) connectPhase() {
	r.labels, r.k = r.res.Resolve(r.parent[:r.n])
}

// compactPhase: relabel endpoints to the new supervertex ids and filter
// the now-self edges into the spare buffer — count, scan, scatter — then
// swap the ping-pong. Parallel edges between surviving supervertex pairs
// are kept: the write-min race makes duplicates harmless, which is the
// whole point of skipping the sort-based compact.
//
//msf:noalloc
func (r *run) compactPhase() {
	r.team.Run(r.filterCountBody)
	var total int64
	// O(p) coordinator scan, serial by design (see par/scan.go).
	for w := 0; w < r.p; w++ {
		v := r.wcount[w]
		r.wcount[w] = total
		total += v
	}
	r.team.Run(r.filterScatterBody)
	r.edges, r.spare = r.spare, r.edges
	r.m = int(total)
	r.n = r.k
}

//msf:noalloc
func (r *run) filterCountWork(w int) {
	lo, hi := par.Block(r.m, r.p, w)
	edges, labels := r.edges, r.labels
	var c int64
	for i := lo; i < hi; i++ {
		if labels[edges[i].U] != labels[edges[i].V] {
			c++
		}
	}
	r.wcount[w] = c
}

//msf:noalloc
func (r *run) filterScatterWork(w int) {
	lo, hi := par.Block(r.m, r.p, w)
	edges, spare, labels := r.edges, r.spare, r.labels
	pos := r.wcount[w]
	for i := lo; i < hi; i++ {
		e := edges[i]
		u, v := labels[e.U], labels[e.V]
		if u != v {
			e.U, e.V = u, v
			spare[pos] = e
			pos++
		}
	}
}

// Run computes the minimum spanning forest of g. Stats reuse the Borůvka
// schema (identical step names), so reporting and benching treat Bor-WM
// like the other round-loop engines.
func Run(g *graph.EdgeList, opt Options) (*graph.Forest, *boruvka.Stats) {
	r := newRun(g, opt)
	defer r.close()
	for r.round() {
	}
	r.root.End()
	f := &graph.Forest{EdgeIDs: r.ids[:r.idsLen], Components: r.n}
	for _, id := range f.EdgeIDs {
		f.Weight += g.Edges[id].W
	}
	return f, boruvka.StatsView(r.c, r.root, r.name, r.p, opt.Stats)
}

// labeled runs fn under the collector's pprof phase label when tracing
// is live, and directly otherwise.
//
//msf:noalloc
func labeled(c *obs.Collector, algo, phase string, fn func()) {
	if c != nil {
		c.Labeled(algo, phase, fn)
		return
	}
	fn()
}
