package writemin

import (
	"runtime"
	"testing"

	"pmsf/internal/gen"
)

// Zero-allocation contract of the round loop: all state is allocated in
// newRun (ranked edge copy, ping-pong spare, best slots, harvest
// buffers, worker team), so every round() must run without touching the
// heap once the resolver's lazily grown buffers have warmed up.

// roundAllocs runs next() until it reports completion (or maxRounds) and
// returns the per-round heap allocation counts.
func roundAllocs(next func() bool, maxRounds int) []uint64 {
	var out []uint64
	var before, after runtime.MemStats
	for i := 0; i < maxRounds; i++ {
		runtime.ReadMemStats(&before)
		ok := next()
		runtime.ReadMemStats(&after)
		if !ok {
			break
		}
		out = append(out, after.Mallocs-before.Mallocs)
	}
	return out
}

// pinZeroAfterWarmup asserts every round after the first allocated
// nothing.
func pinZeroAfterWarmup(t *testing.T, name string, allocs []uint64) {
	t.Helper()
	if len(allocs) < 3 {
		t.Fatalf("%s: only %d rounds ran; input too small to observe a steady state", name, len(allocs))
	}
	for i, a := range allocs[1:] {
		if a != 0 {
			t.Errorf("%s: round %d allocated %d objects (want 0)", name, i+2, a)
		}
	}
}

func TestBorWMRoundZeroAllocs(t *testing.T) {
	g := gen.Random(6000, 36000, 11)
	r := newRun(g, Options{Workers: 4})
	defer r.close()
	pinZeroAfterWarmup(t, "Bor-WM", roundAllocs(r.round, 64))
}
