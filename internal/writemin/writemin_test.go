package writemin

import (
	"math"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

// constWeights returns a copy of g with every edge at weight w — the
// worst case for the rank trick, since weight bits alone order nothing.
func constWeights(g *graph.EdgeList, w float64) *graph.EdgeList {
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W = w
	}
	return out
}

// parity checks a run against the sequential Kruskal reference: equal
// weight, equal component count, and full structural verification.
func parity(t *testing.T, name string, g *graph.EdgeList, opt Options) {
	t.Helper()
	f, stats := Run(g, opt)
	ref := seq.Kruskal(g)
	if f.Components != ref.Components || f.Size() != ref.Size() {
		t.Fatalf("%s: got %d components / %d edges, Kruskal %d / %d",
			name, f.Components, f.Size(), ref.Components, ref.Size())
	}
	if math.Abs(f.Weight-ref.Weight) > 1e-9*(1+math.Abs(ref.Weight)) {
		t.Fatalf("%s: weight %v, Kruskal %v", name, f.Weight, ref.Weight)
	}
	if err := verify.Forest(g, f); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if stats.Algorithm != "Bor-WM" {
		t.Fatalf("stats algorithm %q", stats.Algorithm)
	}
}

func TestKruskalParity(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.EdgeList
	}{
		{"empty", &graph.EdgeList{N: 0}},
		{"isolated", &graph.EdgeList{N: 9}},
		{"single", &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 3}}}},
		{"self-loops", &graph.EdgeList{N: 3, Edges: []graph.Edge{
			{U: 0, V: 0, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 2, W: 0}}}},
		{"parallel-edges", &graph.EdgeList{N: 3, Edges: []graph.Edge{
			{U: 0, V: 1, W: 5}, {U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 1},
			{U: 1, V: 2, W: 2}, {U: 1, V: 2, W: 2}}}},
		{"random", gen.Random(500, 2500, 1)},
		{"random-sparse", gen.Random(600, 300, 2)},
		{"geometric", gen.Geometric(400, 5, 3)},
		{"star", gen.Star(800, 4)},
		{"path", gen.Path(800, 5)},
		{"tied", gen.Reweight(gen.Random(400, 2400, 6), gen.WeightsSmallInts, 7)},
		{"all-equal", constWeights(gen.Random(400, 2000, 8), 2.5)},
		{"negative", constWeights(gen.Random(300, 1200, 9), -1)},
		{"mesh", gen.Mesh2D(22, 22, 10)},
	}
	for _, tc := range cases {
		for _, p := range []int{1, 2, 8} {
			parity(t, tc.name, tc.g, Options{Workers: p, Stats: true, Seed: uint64(p)})
		}
	}
}

func TestStatsIterations(t *testing.T) {
	g := gen.Random(2000, 12000, 11)
	_, stats := Run(g, Options{Workers: 4, Stats: true})
	if len(stats.Iters) == 0 {
		t.Fatal("no iterations recorded")
	}
	// Supervertex counts must strictly decrease across rounds.
	for i := 1; i < len(stats.Iters); i++ {
		if stats.Iters[i].N >= stats.Iters[i-1].N {
			t.Fatalf("iteration %d: n=%d did not shrink from %d",
				i, stats.Iters[i].N, stats.Iters[i-1].N)
		}
	}
	if stats.Iters[0].N != 2000 {
		t.Fatalf("first iteration n=%d, want 2000", stats.Iters[0].N)
	}
}

func TestTraceSpans(t *testing.T) {
	c := obs.NewCollector()
	g := gen.Random(200, 800, 14)
	Run(g, Options{Workers: 2, Trace: c})
	names := map[string]bool{}
	for _, s := range c.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"Bor-WM", "setup", "iteration",
		"find-min", "connect-components", "compact-graph"} {
		if !names[want] {
			t.Fatalf("missing span %q (got %v)", want, names)
		}
	}
}

func TestWriteMinKeyOrder(t *testing.T) {
	// raceKey must order by rank regardless of index.
	if raceKey(1, 0xFFFF) >= raceKey(2, 0) {
		t.Fatal("rank ordering broken by index bits")
	}
	if raceKey(0, 0) >= noMin {
		t.Fatal("smallest key not below the sentinel")
	}
}
