package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Var is the expvar-compatible variable interface: String must return a
// valid JSON value. Every registry variable satisfies expvar.Var and can
// be published into the process expvar table with PublishExpvar.
type Var interface {
	String() string
}

// Counter is a monotonically increasing int64 metric, safe for
// concurrent use.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d (d < 0 is ignored: counters are
// monotonic by contract).
func (c *Counter) Add(d int64) {
	if d > 0 {
		c.v.Add(d)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// String renders the count as a JSON number (expvar.Var).
func (c *Counter) String() string { return strconv.FormatInt(c.v.Load(), 10) }

// reset zeroes the counter (registry Reset only; not part of the
// monotonic public contract).
func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a settable int64 metric, safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// String renders the value as a JSON number (expvar.Var).
func (g *Gauge) String() string { return strconv.FormatInt(g.v.Load(), 10) }

func (g *Gauge) reset() { g.v.Store(0) }

// Registry is a named collection of metrics. The zero value is not
// usable; use NewRegistry or the process-wide Default registry.
type Registry struct {
	mu   sync.Mutex
	vars map[string]Var
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{vars: make(map[string]Var)}
}

// Counter returns the named counter, creating it on first use. It
// panics if the name is already registered as a different kind.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		c, ok := v.(*Counter)
		if !ok {
			panic(fmt.Sprintf("obs: %q is registered as %T, not a counter", name, v))
		}
		return c
	}
	c := &Counter{}
	r.vars[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use. It panics if
// the name is already registered as a different kind.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.vars[name]; ok {
		g, ok := v.(*Gauge)
		if !ok {
			panic(fmt.Sprintf("obs: %q is registered as %T, not a gauge", name, v))
		}
		return g
	}
	g := &Gauge{}
	r.vars[name] = g
	return g
}

// Do calls f for every registered variable in name order.
func (r *Registry) Do(f func(name string, v Var)) {
	r.mu.Lock()
	names := make([]string, 0, len(r.vars))
	for name := range r.vars {
		names = append(names, name)
	}
	sort.Strings(names)
	vars := make([]Var, len(names))
	for i, name := range names {
		vars[i] = r.vars[name]
	}
	r.mu.Unlock()
	for i, name := range names {
		f(name, vars[i])
	}
}

// Snapshot returns the current value of every variable.
func (r *Registry) Snapshot() map[string]int64 {
	out := make(map[string]int64)
	r.Do(func(name string, v Var) {
		switch m := v.(type) {
		case *Counter:
			out[name] = m.Value()
		case *Gauge:
			out[name] = m.Value()
		}
	})
	return out
}

// Reset zeroes every counter and gauge: the CLI calls it before a
// metered run so the snapshot covers exactly that run.
func (r *Registry) Reset() {
	r.Do(func(_ string, v Var) {
		switch m := v.(type) {
		case *Counter:
			m.reset()
		case *Gauge:
			m.reset()
		}
	})
}

// WriteJSON writes the registry as one sorted JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the algorithm kernels emit
// into.
func Default() *Registry { return defaultRegistry }

// metricsOn gates the kernel counters: a single atomic load on the hot
// paths keeps the disabled cost unmeasurable.
var metricsOn atomic.Bool

// EnableMetrics turns the process-wide kernel counters on or off.
func EnableMetrics(on bool) { metricsOn.Store(on) }

// MetricsOn reports whether the kernel counters are enabled.
func MetricsOn() bool { return metricsOn.Load() }

// The canonical process-wide metrics. Kernels update them only while
// MetricsOn.
var (
	// EdgesRetired counts working-list entries eliminated by the
	// compact-graph steps (self-loops, duplicates, contracted arcs).
	EdgesRetired = Default().Counter("edges_retired")
	// Supervertices tracks the current supervertex count of the most
	// recent contraction.
	Supervertices = Default().Gauge("supervertices")
	// StealAttempts counts MST-BC take-from-the-back claim attempts on
	// foreign partitions.
	StealAttempts = Default().Counter("steal_attempts")
	// StealSuccesses counts claims that actually obtained a vertex from a
	// foreign partition.
	StealSuccesses = Default().Counter("steal_successes")
	// ArenaBytes counts bytes served by the per-worker slab allocators.
	ArenaBytes = Default().Counter("arena_bytes")
	// SortComparisons counts comparator invocations of the parallel sort
	// kernels.
	SortComparisons = Default().Counter("sort_comparisons")
	// SortElements counts elements passed to the parallel sort kernels.
	SortElements = Default().Counter("sort_elements")
	// ParPhases counts fork-join phases launched by the par primitives.
	ParPhases = Default().Counter("par_phases")
	// ParChunks counts dynamically scheduled chunks claimed by ForDynamic.
	ParChunks = Default().Counter("par_chunks")
	// RadixPasses counts counting-sort passes executed by the packed-key
	// parallel radix compaction kernel.
	RadixPasses = Default().Counter("radix_passes")
	// ParScans counts team-parallel prefix-sum phases executed by
	// par.Scanner (the sequential small-input fallback is not counted,
	// so the ratio to RadixPasses shows which scan strategy ran).
	ParScans = Default().Counter("par_scans")
	// ScatterFlushes counts write-combining staging-buffer flushes of
	// the packed-radix scatter (full-buffer bulk copies plus the
	// end-of-pass drains).
	ScatterFlushes = Default().Counter("scatter_flushes")
	// WorkspaceReused counts bytes served from reusable round workspaces
	// (double-buffered edge arrays, keepIdx/starts/histogram slabs)
	// instead of fresh heap allocations.
	WorkspaceReused = Default().Counter("workspace_reused_bytes")
	// DynAppliedEdges counts edge mutations (adds plus deletes) applied
	// through dynmsf.ApplyEdges.
	DynAppliedEdges = Default().Counter("dyn_applied_edges")
	// DynReplacements counts non-tree edges promoted into the forest by
	// the replacement-edge search after tree-edge deletions.
	DynReplacements = Default().Counter("dyn_replacements")
	// DynRebuilds counts incremental path-max region rebuilds performed
	// by the dynamic layer (deletion repairs and dirty-tree refreshes).
	DynRebuilds = Default().Counter("dyn_rebuilds")
	// DynFallbackRecomputes counts trees a batch recomputed with a scoped
	// from-scratch Kruskal because the per-edge cycle-rule path was
	// projected to cost more (cutoff fraction exceeded or too many
	// rebuilds forced in one batch).
	DynFallbackRecomputes = Default().Counter("dyn_fallback_recomputes")
)

var publishOnce sync.Once

// PublishExpvar publishes every Default-registry variable into the
// process expvar table under "pmsf.<name>", so a running process that
// serves the expvar HTTP handler exposes the MSF metrics. Safe to call
// more than once; only the first call publishes.
func PublishExpvar() {
	publishOnce.Do(func() {
		Default().Do(func(name string, v Var) {
			expvar.Publish("pmsf."+name, v)
		})
	})
}
