package obs

import (
	"context"
	"runtime/pprof"
)

// Pprof label keys attached to every phase while a collector is active.
// `go tool pprof -tagfocus` or the web UI's tag views then attribute CPU
// samples to algorithm and phase.
const (
	LabelAlgo  = "pmsf_algo"
	LabelPhase = "pmsf_phase"
)

// Labeled runs f under pprof labels naming the algorithm and phase.
// Goroutines forked inside f (the par worker teams) inherit the labels,
// so whole parallel phases are attributed. When c is nil the function is
// invoked directly with no label overhead.
func (c *Collector) Labeled(algo, phase string, f func()) {
	if c == nil {
		f()
		return
	}
	pprof.Do(context.Background(), pprof.Labels(LabelAlgo, algo, LabelPhase, phase),
		func(context.Context) { f() })
}
