package obs

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// buildExportTrace records a small deterministic span tree: a root with
// two iterations, nested steps, args, and a worker tag.
func buildExportTrace() (*Collector, *Registry) {
	c := NewCollector()
	stubClock(c)
	root := c.Start("Bor-EL", "Bor-EL")
	root.SetInt("workers", 2)
	it1 := root.Child("iteration")
	it1.SetInt("list_size", 6000)
	fm := it1.Child("find-min")
	fm.SetWorker(1)
	fm.End()
	cg := it1.Child("compact-graph")
	cg.End()
	it1.End()
	it2 := root.Child("iteration")
	it2.SetInt("list_size", 900)
	it2.End()
	root.End()

	reg := NewRegistry()
	reg.Counter("edges_retired").Add(5100)
	reg.Gauge("supervertices").Set(130)
	return c, reg
}

func TestExportTreeStructure(t *testing.T) {
	c, reg := buildExportTrace()
	e := BuildExport(c, reg)

	if e.Algorithm != "Bor-EL" || e.Workers != 2 {
		t.Errorf("header = (%q, %d), want (Bor-EL, 2)", e.Algorithm, e.Workers)
	}
	if e.SpanCount != 5 {
		t.Errorf("SpanCount = %d, want 5", e.SpanCount)
	}
	if len(e.Tree) != 1 {
		t.Fatalf("got %d roots, want 1", len(e.Tree))
	}
	root := e.Tree[0]
	if len(root.Children) != 2 {
		t.Fatalf("root has %d children, want 2 iterations", len(root.Children))
	}
	it1, it2 := root.Children[0], root.Children[1]
	if it1.StartNS > it2.StartNS {
		t.Errorf("children not ordered by start: %d then %d", it1.StartNS, it2.StartNS)
	}
	if len(it1.Children) != 2 || it1.Children[0].Name != "find-min" || it1.Children[1].Name != "compact-graph" {
		t.Errorf("iteration 1 children wrong: %+v", it1.Children)
	}
	if it1.Children[0].Worker != 1 {
		t.Errorf("find-min worker = %d, want 1", it1.Children[0].Worker)
	}
	if it1.Args["list_size"] != 6000 || it2.Args["list_size"] != 900 {
		t.Errorf("iteration args wrong: %v / %v", it1.Args, it2.Args)
	}
	if e.Counters["edges_retired"] != 5100 || e.Counters["supervertices"] != 130 {
		t.Errorf("counters wrong: %v", e.Counters)
	}
	// Phase totals must match the Summary aggregation over the same spans.
	s := c.Summarize(nil)
	for name, ns := range s.PhaseTotalNS {
		if e.PhaseTotalNS[name] != ns {
			t.Errorf("PhaseTotalNS[%q] = %d, summary says %d", name, e.PhaseTotalNS[name], ns)
		}
	}
	if e.WallNS != s.WallNS {
		t.Errorf("WallNS = %d, summary says %d", e.WallNS, s.WallNS)
	}
}

func TestExportNilSafety(t *testing.T) {
	e := BuildExport(nil, nil)
	if e.SpanCount != 0 || len(e.Tree) != 0 || e.Counters != nil {
		t.Errorf("nil export not empty: %+v", e)
	}
	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}

	// Counters-only export: the live-process /metrics shape.
	reg := NewRegistry()
	reg.Counter("x").Add(3)
	e = BuildExport(nil, reg)
	if e.Counters["x"] != 3 || e.SpanCount != 0 {
		t.Errorf("counters-only export wrong: %+v", e)
	}
}

// TestExportOrphanSpans: a child whose parent never ended must surface
// as a root, not vanish — a live snapshot mid-run sees such spans.
func TestExportOrphanSpans(t *testing.T) {
	c := NewCollector()
	stubClock(c)
	root := c.Start("run", "x")
	child := root.Child("step")
	child.End()
	// root never ends; snapshot now.
	e := BuildExport(c, nil)
	if e.SpanCount != 1 || len(e.Tree) != 1 || e.Tree[0].Name != "step" {
		t.Errorf("orphan span not promoted to root: %+v", e)
	}
	root.End()
}

func TestGoldenExport(t *testing.T) {
	c, reg := buildExportTrace()
	var buf bytes.Buffer
	if err := BuildExport(c, reg).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_export.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("export JSON drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The golden bytes must round-trip through the public struct.
	var back Export
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden export does not unmarshal: %v", err)
	}
	if back.SpanCount != 5 || back.Counters["edges_retired"] != 5100 {
		t.Errorf("round-tripped export wrong: %+v", back)
	}
}
