package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Export is the one-shot JSON snapshot of a run (or of a live process):
// the span tree, the per-phase totals, and a counter snapshot, packed
// into a single marshalable struct. It is what a service endpoint
// returns instead of scraping expvar text: `/metrics` and `/status` in
// msf-serve marshal an Export directly.
type Export struct {
	// Algorithm and Workers mirror Summary (first root span).
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// WallNS is the end timestamp of the last-ending span.
	WallNS int64 `json:"wall_ns"`
	// SpanCount is the number of completed spans.
	SpanCount int `json:"span_count"`
	// PhaseTotalNS sums span durations by span name.
	PhaseTotalNS map[string]int64 `json:"phase_total_ns,omitempty"`
	// Tree is the completed span forest, children nested under parents
	// and ordered by start time.
	Tree []*ExportSpan `json:"tree,omitempty"`
	// Counters is a snapshot of the registry, when one was given.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// ExportSpan is one span of the exported tree.
type ExportSpan struct {
	Name     string           `json:"name"`
	Cat      string           `json:"cat,omitempty"`
	Worker   int              `json:"worker,omitempty"`
	StartNS  int64            `json:"start_ns"`
	DurNS    int64            `json:"dur_ns"`
	Args     map[string]int64 `json:"args,omitempty"`
	Children []*ExportSpan    `json:"children,omitempty"`
}

// BuildExport assembles the snapshot from a collector and a registry.
// Both are optional: a nil collector exports an empty tree (counters
// only — the live-process `/metrics` shape), a nil registry omits
// counters (the per-run `/jobs/{id}` shape).
func BuildExport(c *Collector, reg *Registry) *Export {
	e := &Export{}
	spans := c.Spans() // nil-safe
	if len(spans) > 0 {
		e.PhaseTotalNS = make(map[string]int64)
	}
	nodes := make(map[int64]*ExportSpan, len(spans))
	order := make(map[int64]int, len(spans)) // record order, for stable sibling sort on start ties
	for i, r := range spans {
		e.SpanCount++
		e.PhaseTotalNS[r.Name] += r.Dur.Nanoseconds()
		if end := r.End().Nanoseconds(); end > e.WallNS {
			e.WallNS = end
		}
		if r.Parent == 0 && e.Algorithm == "" {
			e.Algorithm = r.Name
			if w, ok := r.Arg("workers"); ok {
				e.Workers = int(w)
			}
		}
		n := &ExportSpan{
			Name:    r.Name,
			Cat:     r.Cat,
			Worker:  r.Worker,
			StartNS: r.Start.Nanoseconds(),
			DurNS:   r.Dur.Nanoseconds(),
		}
		if len(r.Args) > 0 {
			n.Args = make(map[string]int64, len(r.Args))
			for _, a := range r.Args {
				n.Args[a.Key] = a.Value
			}
		}
		nodes[r.ID] = n
		order[r.ID] = i
	}
	// Spans() returns end order (children before parents), so a second
	// pass can attach every child to its parent; orphans (parent span
	// never ended) become roots rather than being dropped.
	for _, r := range spans {
		n := nodes[r.ID]
		if p, ok := nodes[r.Parent]; ok && r.Parent != r.ID {
			p.Children = append(p.Children, n)
		} else {
			e.Tree = append(e.Tree, n)
		}
	}
	sortSpans(e.Tree, order, nodes)
	if reg != nil {
		e.Counters = reg.Snapshot()
	}
	return e
}

// sortSpans orders every sibling list by start time (record order on
// ties) so the export is deterministic for a deterministic trace.
func sortSpans(list []*ExportSpan, order map[int64]int, nodes map[int64]*ExportSpan) {
	pos := make(map[*ExportSpan]int, len(nodes))
	for id, n := range nodes {
		pos[n] = order[id]
	}
	var rec func(l []*ExportSpan)
	rec = func(l []*ExportSpan) {
		sort.Slice(l, func(i, j int) bool {
			if l[i].StartNS != l[j].StartNS {
				return l[i].StartNS < l[j].StartNS
			}
			return pos[l[i]] < pos[l[j]]
		})
		for _, n := range l {
			rec(n.Children)
		}
	}
	rec(list)
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}
