// Package obs is the observability layer shared by every MSF algorithm:
// hierarchical wall-clock spans, process-wide counters and gauges behind
// an expvar-compatible registry, pprof label propagation, and exporters
// (Chrome trace-event JSON, machine-readable run summaries).
//
// The package has no dependencies outside the standard library. All
// entry points are nil-safe: a nil *Collector (observability disabled)
// makes every span operation a zero-allocation no-op, so the algorithms
// carry their instrumentation unconditionally and pay nothing when it is
// off.
//
// The per-phase Stats structs the public API returns (boruvka.Stats,
// mstbc.Stats, filter.Stats) are derived views over the span tree
// recorded here, so the text reports, the Chrome trace, and the JSON
// summary of one run always agree exactly.
package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Collector gathers the spans of one run. Create one with NewCollector,
// pass it to the algorithm via its Options, then export with
// WriteChromeTrace or Summarize. A nil Collector is valid everywhere and
// disables collection.
//
// Span starts and ends may happen concurrently from any goroutine.
type Collector struct {
	start  time.Time
	clock  func() time.Duration // elapsed time source (monotonic); tests may stub it
	nextID atomic.Int64

	mu    sync.Mutex
	spans []SpanRecord
}

// NewCollector returns an empty collector whose timestamps are monotonic
// durations since this call.
func NewCollector() *Collector {
	c := &Collector{start: time.Now()}
	c.clock = func() time.Duration { return time.Since(c.start) }
	return c
}

// elapsed returns the monotonic time since the collector was created.
func (c *Collector) elapsed() time.Duration { return c.clock() }

// Arg is one integer attribute attached to a span (iteration sizes,
// level counters, ...).
type Arg struct {
	Key   string
	Value int64
}

// SpanRecord is one completed span. Records are appended when a span
// ends, so children always precede their parent in Spans().
type SpanRecord struct {
	ID     int64 // unique within the collector, starting at 1
	Parent int64 // 0 for root spans
	Name   string
	Cat    string // category, e.g. the algorithm name
	Worker int    // rendered as the Chrome trace "tid"
	Start  time.Duration
	Dur    time.Duration
	Args   []Arg
}

// End returns the span's end timestamp.
func (r SpanRecord) End() time.Duration { return r.Start + r.Dur }

// Arg returns the value of the named argument and whether it is present.
func (r SpanRecord) Arg(key string) (int64, bool) {
	for _, a := range r.Args {
		if a.Key == key {
			return a.Value, true
		}
	}
	return 0, false
}

// Spans returns a snapshot of every completed span, in end order.
func (c *Collector) Spans() []SpanRecord {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]SpanRecord, len(c.spans))
	copy(out, c.spans)
	return out
}

// Span is a live, not-yet-ended span. The zero Span (and any span
// started on a nil Collector) is inert: every method is a no-op, so
// callers never branch on whether observability is enabled.
type Span struct {
	c      *Collector
	id     int64
	parent int64
	name   string
	cat    string
	worker int
	start  time.Duration
	args   []Arg
	ended  bool
}

// Start opens a root span. cat is the Chrome trace category (the
// algorithm name, by convention). Returns an inert span when c is nil.
func (c *Collector) Start(name, cat string) Span {
	if c == nil {
		return Span{}
	}
	return Span{
		c:     c,
		id:    c.nextID.Add(1),
		name:  name,
		cat:   cat,
		start: c.elapsed(),
	}
}

// Live reports whether the span records into a collector.
func (s *Span) Live() bool { return s.c != nil }

// ID returns the span's record identifier (0 for an inert span).
func (s *Span) ID() int64 { return s.id }

// Collector returns the collector the span records into (nil for an
// inert span).
func (s *Span) Collector() *Collector { return s.c }

// Child opens a sub-span inheriting the category and worker id.
func (s *Span) Child(name string) Span {
	if s.c == nil {
		return Span{}
	}
	return Span{
		c:      s.c,
		id:     s.c.nextID.Add(1),
		parent: s.id,
		name:   name,
		cat:    s.cat,
		worker: s.worker,
		start:  s.c.elapsed(),
	}
}

// SetWorker tags the span with a worker id (the Chrome trace "tid").
func (s *Span) SetWorker(w int) *Span {
	if s.c != nil {
		s.worker = w
	}
	return s
}

// SetInt attaches an integer argument to the span. The last value wins
// when a key is set twice.
func (s *Span) SetInt(key string, v int64) *Span {
	if s.c == nil {
		return s
	}
	for i := range s.args {
		if s.args[i].Key == key {
			s.args[i].Value = v
			return s
		}
	}
	s.args = append(s.args, Arg{Key: key, Value: v})
	return s
}

// End closes the span and commits its record to the collector. Ending a
// span twice, or an inert span, is a no-op.
func (s *Span) End() {
	if s.c == nil || s.ended {
		return
	}
	s.ended = true
	rec := SpanRecord{
		ID:     s.id,
		Parent: s.parent,
		Name:   s.name,
		Cat:    s.cat,
		Worker: s.worker,
		Start:  s.start,
		Dur:    s.c.elapsed() - s.start,
		Args:   s.args,
	}
	s.c.mu.Lock()
	s.c.spans = append(s.c.spans, rec)
	s.c.mu.Unlock()
}

// StartUnder opens a child of parent when parent is live; otherwise a
// root span on c (which may itself be nil). It is how an algorithm nests
// its run under an enclosing span (e.g. the filter's inner MSF calls)
// while still working standalone.
func StartUnder(c *Collector, parent Span, name, cat string) Span {
	if parent.Live() {
		ch := parent.Child(name)
		ch.cat = cat
		return ch
	}
	return c.Start(name, cat)
}

// PhaseTotals sums span durations by name: the aggregation behind the
// run summary and behind the Stats views' "total" rows.
func (c *Collector) PhaseTotals() map[string]time.Duration {
	totals := make(map[string]time.Duration)
	for _, r := range c.Spans() {
		totals[r.Name] += r.Dur
	}
	return totals
}

// ChildrenOf returns the completed children of the span with the given
// id, in end order.
func ChildrenOf(spans []SpanRecord, id int64) []SpanRecord {
	var out []SpanRecord
	for _, r := range spans {
		if r.Parent == id {
			out = append(out, r)
		}
	}
	return out
}
