package obs

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// stubClock replaces the collector's monotonic clock with one that
// advances exactly 1ms per reading, making every timestamp and duration
// deterministic.
func stubClock(c *Collector) {
	var ticks time.Duration
	c.clock = func() time.Duration {
		ticks += time.Millisecond
		return ticks
	}
}

func TestSpanNestingInvariants(t *testing.T) {
	c := NewCollector()
	stubClock(c)

	root := c.Start("run", "algo")
	root.SetInt("workers", 4)
	itA := root.Child("iteration")
	stepA := itA.Child("find-min")
	stepA.End()
	itA.End()
	itB := root.Child("iteration")
	itB.End()
	root.End()

	spans := c.Spans()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want 4", len(spans))
	}
	byID := make(map[int64]SpanRecord, len(spans))
	seenAt := make(map[int64]int, len(spans))
	for i, r := range spans {
		if _, dup := byID[r.ID]; dup {
			t.Fatalf("duplicate span id %d", r.ID)
		}
		byID[r.ID] = r
		seenAt[r.ID] = i
	}
	for _, r := range spans {
		if r.Parent == 0 {
			continue
		}
		p, ok := byID[r.Parent]
		if !ok {
			t.Fatalf("span %d has unknown parent %d", r.ID, r.Parent)
		}
		if r.Start < p.Start {
			t.Errorf("span %d starts before its parent", r.ID)
		}
		if r.End() > p.End() {
			t.Errorf("span %d ends after its parent", r.ID)
		}
		if seenAt[r.ID] > seenAt[r.Parent] {
			t.Errorf("span %d recorded after its parent (End order violated)", r.ID)
		}
		if r.Cat != p.Cat {
			t.Errorf("span %d did not inherit category", r.ID)
		}
	}
	// The root carries its argument.
	rootRec := spans[len(spans)-1]
	if rootRec.Name != "run" {
		t.Fatalf("last-ended span is %q, want the root", rootRec.Name)
	}
	if v, ok := rootRec.Arg("workers"); !ok || v != 4 {
		t.Fatalf("root workers arg = %d,%v", v, ok)
	}
}

func TestSpanEndIdempotentAndInert(t *testing.T) {
	c := NewCollector()
	s := c.Start("x", "y")
	s.End()
	s.End()
	if n := len(c.Spans()); n != 1 {
		t.Fatalf("double End recorded %d spans", n)
	}

	var nilC *Collector
	inert := nilC.Start("a", "b")
	if inert.Live() {
		t.Fatal("span on nil collector is live")
	}
	ch := inert.Child("c")
	ch.SetInt("k", 1)
	ch.End()
	inert.End()
	if nilC.Spans() != nil {
		t.Fatal("nil collector has spans")
	}
}

func TestStartUnder(t *testing.T) {
	c := NewCollector()
	parent := c.Start("parent", "cat")
	child := StartUnder(nil, parent, "child", "childcat")
	if child.Collector() != c {
		t.Fatal("StartUnder did not adopt the parent's collector")
	}
	child.End()
	parent.End()
	spans := c.Spans()
	if spans[0].Parent != spans[1].ID {
		t.Fatal("StartUnder child not nested under parent")
	}
	if spans[0].Cat != "childcat" {
		t.Fatalf("StartUnder kept category %q, want override", spans[0].Cat)
	}

	root := StartUnder(c, Span{}, "root", "cat")
	root.End()
	if got := c.Spans()[2]; got.Parent != 0 {
		t.Fatal("StartUnder with inert parent is not a root span")
	}
}

func TestDisabledObservabilityAllocatesNothing(t *testing.T) {
	var c *Collector
	allocs := testing.AllocsPerRun(200, func() {
		root := c.Start("algo", "algo")
		root.SetInt("workers", 8)
		it := root.Child("iteration")
		it.SetInt("n", 100)
		step := it.Child("find-min")
		step.SetWorker(3)
		step.End()
		it.End()
		root.End()
		c.Labeled("algo", "phase", func() {})
	})
	if allocs != 0 {
		t.Fatalf("disabled path allocates %v times per run, want 0", allocs)
	}
}

func TestCounterMonotonicUnderConcurrency(t *testing.T) {
	reg := NewRegistry()
	ctr := reg.Counter("c")
	const workers = 8
	const each = 10_000
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		last := int64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			v := ctr.Value()
			if v < last {
				t.Errorf("counter went backwards: %d -> %d", last, v)
				return
			}
			last = v
		}
	}()
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				ctr.Add(1)
			}
		}()
	}
	wg.Wait()
	close(stop)
	watcher.Wait()
	if got := ctr.Value(); got != workers*each {
		t.Fatalf("counter = %d, want %d", got, workers*each)
	}
	ctr.Add(-5)
	if got := ctr.Value(); got != workers*each {
		t.Fatalf("negative Add changed the counter: %d", got)
	}
}

func TestRegistryKindsAndSnapshot(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("edges").Add(3)
	reg.Gauge("sv").Set(17)
	if reg.Counter("edges") != reg.Counter("edges") {
		t.Fatal("Counter not idempotent")
	}
	snap := reg.Snapshot()
	if snap["edges"] != 3 || snap["sv"] != 17 {
		t.Fatalf("snapshot = %v", snap)
	}
	reg.Reset()
	snap = reg.Snapshot()
	if snap["edges"] != 0 || snap["sv"] != 0 {
		t.Fatalf("post-reset snapshot = %v", snap)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	reg.Gauge("edges")
}

func TestGoldenChromeTrace(t *testing.T) {
	c := NewCollector()
	stubClock(c)
	root := c.Start("Bor-FAL", "Bor-FAL")
	root.SetInt("workers", 2)
	it := root.Child("iteration")
	it.SetInt("n", 1000)
	it.SetInt("list_size", 6000)
	fm := it.Child("find-min")
	fm.SetWorker(1)
	fm.End()
	it.End()
	root.End()

	var buf bytes.Buffer
	if err := c.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *update {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/obs -update` to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace JSON drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}

	// The trace must decode back to the recorded spans.
	recs, err := ReadChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Spans()
	if len(recs) != len(orig) {
		t.Fatalf("decoded %d spans, want %d", len(recs), len(orig))
	}
	byID := make(map[int64]SpanRecord, len(orig))
	for _, r := range orig {
		byID[r.ID] = r
	}
	for _, r := range recs {
		o, ok := byID[r.ID]
		if !ok {
			t.Fatalf("decoded unknown span id %d", r.ID)
		}
		if r.Name != o.Name || r.Cat != o.Cat || r.Parent != o.Parent ||
			r.Worker != o.Worker || r.Dur != o.Dur {
			t.Errorf("span %d decoded as %+v, want %+v", r.ID, r, o)
		}
		for _, a := range o.Args {
			if v, ok := r.Arg(a.Key); !ok || v != a.Value {
				t.Errorf("span %d lost arg %s=%d", r.ID, a.Key, a.Value)
			}
		}
	}
}

func TestPhaseTotalsAndSummary(t *testing.T) {
	c := NewCollector()
	stubClock(c)
	root := c.Start("MST-BC", "MST-BC")
	root.SetInt("workers", 3)
	for i := 0; i < 2; i++ {
		lv := root.Child("level")
		g := lv.Child("grow")
		g.End()
		lv.End()
	}
	root.End()

	totals := c.PhaseTotals()
	spans := c.Spans()
	var wantLevel time.Duration
	for _, r := range spans {
		if r.Name == "level" {
			wantLevel += r.Dur
		}
	}
	if totals["level"] != wantLevel {
		t.Fatalf("PhaseTotals[level] = %v, want %v", totals["level"], wantLevel)
	}

	reg := NewRegistry()
	reg.Counter("edges_retired").Add(42)
	s := c.Summarize(reg)
	if s.Algorithm != "MST-BC" || s.Workers != 3 {
		t.Fatalf("summary identity = %q/%d", s.Algorithm, s.Workers)
	}
	if s.SpanCount != len(spans) {
		t.Fatalf("SpanCount = %d, want %d", s.SpanCount, len(spans))
	}
	if s.PhaseTotal("level") != wantLevel {
		t.Fatalf("PhaseTotal(level) = %v, want %v", s.PhaseTotal("level"), wantLevel)
	}
	if s.Counters["edges_retired"] != 42 {
		t.Fatalf("counters = %v", s.Counters)
	}
	var root2 SpanRecord
	for _, r := range spans {
		if r.Parent == 0 {
			root2 = r
		}
	}
	if got, want := time.Duration(s.WallNS), root2.End(); got != want {
		t.Fatalf("WallNS = %v, want root end %v", got, want)
	}
}

func TestConcurrentSpansSafe(t *testing.T) {
	c := NewCollector()
	root := c.Start("run", "cat")
	var wg sync.WaitGroup
	const workers = 8
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				s := root.Child("work")
				s.SetWorker(w)
				s.SetInt("i", int64(i))
				s.End()
			}
		}(w)
	}
	wg.Wait()
	root.End()
	spans := c.Spans()
	if len(spans) != workers*200+1 {
		t.Fatalf("got %d spans, want %d", len(spans), workers*200+1)
	}
	ids := make(map[int64]bool, len(spans))
	for _, r := range spans {
		if ids[r.ID] {
			t.Fatalf("duplicate id %d", r.ID)
		}
		ids[r.ID] = true
	}
}
