package obs

import (
	"encoding/json"
	"io"
	"time"
)

// Summary is the machine-readable digest of one run: what the benchmark
// harness stores and what `msf-bench -metrics` prints.
type Summary struct {
	// Algorithm and Workers are taken from the first root span (name and
	// its "workers" argument) when present.
	Algorithm string `json:"algorithm,omitempty"`
	Workers   int    `json:"workers,omitempty"`
	// WallNS is the end timestamp of the last-ending span: the traced
	// wall clock of the run.
	WallNS int64 `json:"wall_ns"`
	// SpanCount is the number of completed spans.
	SpanCount int `json:"span_count"`
	// PhaseTotalNS sums span durations by span name.
	PhaseTotalNS map[string]int64 `json:"phase_total_ns"`
	// Counters is a snapshot of a metrics registry, when one was given.
	Counters map[string]int64 `json:"counters,omitempty"`
}

// Summarize aggregates the collected spans, plus a snapshot of reg when
// non-nil (pass Default() for the process-wide kernel counters).
func (c *Collector) Summarize(reg *Registry) *Summary {
	s := &Summary{PhaseTotalNS: make(map[string]int64)}
	for _, r := range c.Spans() {
		s.SpanCount++
		s.PhaseTotalNS[r.Name] += r.Dur.Nanoseconds()
		if end := r.End().Nanoseconds(); end > s.WallNS {
			s.WallNS = end
		}
		if r.Parent == 0 && s.Algorithm == "" {
			s.Algorithm = r.Name
			if w, ok := r.Arg("workers"); ok {
				s.Workers = int(w)
			}
		}
	}
	if reg != nil {
		s.Counters = reg.Snapshot()
	}
	return s
}

// PhaseTotal returns the summed duration of every span with the given
// name.
func (s *Summary) PhaseTotal(name string) time.Duration {
	return time.Duration(s.PhaseTotalNS[name])
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

func durationFromNS(ns int64) time.Duration { return time.Duration(ns) }

func durationFromUS(us float64) time.Duration {
	return time.Duration(us * float64(time.Microsecond))
}
