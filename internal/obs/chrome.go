package obs

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event export. The output loads in chrome://tracing and
// Perfetto: {"traceEvents": [...]} with one complete ("X") event per
// span. Timestamps and durations are microseconds; the exact span
// duration is preserved in args["dur_ns"] so machine consumers (and the
// integration tests) do not lose nanosecond precision to the µs scale.

type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat,omitempty"`
	Ph   string           `json:"ph"`
	Ts   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace writes every completed span in the Chrome trace-event
// JSON format. Events are ordered by start time (ties by span id) so the
// output is deterministic for a given set of spans.
func (c *Collector) WriteChromeTrace(w io.Writer) error {
	spans := c.Spans()
	sort.Slice(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].ID < spans[j].ID
	})
	trace := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(spans)),
		DisplayTimeUnit: "ms",
	}
	for _, r := range spans {
		args := make(map[string]int64, len(r.Args)+3)
		for _, a := range r.Args {
			args[a.Key] = a.Value
		}
		args["span_id"] = r.ID
		args["parent_id"] = r.Parent
		args["dur_ns"] = r.Dur.Nanoseconds()
		trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
			Name: r.Name,
			Cat:  r.Cat,
			Ph:   "X",
			Ts:   float64(r.Start.Nanoseconds()) / 1e3,
			Dur:  float64(r.Dur.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  r.Worker,
			Args: args,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(trace)
}

// ReadChromeTrace decodes a trace produced by WriteChromeTrace back into
// span records (id, parent, name, cat, worker, start, dur). It exists
// for the tooling and tests that post-process trace files.
func ReadChromeTrace(r io.Reader) ([]SpanRecord, error) {
	var trace chromeTrace
	if err := json.NewDecoder(r).Decode(&trace); err != nil {
		return nil, err
	}
	out := make([]SpanRecord, 0, len(trace.TraceEvents))
	for _, ev := range trace.TraceEvents {
		rec := SpanRecord{
			Name:   ev.Name,
			Cat:    ev.Cat,
			Worker: ev.Tid,
		}
		for k, v := range ev.Args {
			switch k {
			case "span_id":
				rec.ID = v
			case "parent_id":
				rec.Parent = v
			case "dur_ns":
				rec.Dur = durationFromNS(v)
			default:
				rec.Args = append(rec.Args, Arg{Key: k, Value: v})
			}
		}
		rec.Start = durationFromUS(ev.Ts)
		sort.Slice(rec.Args, func(i, j int) bool { return rec.Args[i].Key < rec.Args[j].Key })
		out = append(out, rec)
	}
	return out, nil
}
