package onceresp_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/onceresp"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, onceresp.Analyzer, antest.Fixture("a"))
}
