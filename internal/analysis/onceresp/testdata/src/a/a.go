// Package a is the onceresp fixture: handlers must write exactly one
// status on every path — no double writes from a missing return, no
// path that falls off the end silently. Streaming delegation and
// client-gone ctx.Done paths are exempt.
package a

import (
	"fmt"
	"net/http"
)

//msf:respwrite
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.WriteHeader(status)
	fmt.Fprintf(w, "%v", v)
}

//msf:respwrite
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}

type server struct {
	draining bool
	events   chan string
}

func (s *server) check() error {
	if s.draining {
		return fmt.Errorf("draining")
	}
	return nil
}

// good writes once on each of its three paths. Silent.
func (s *server) good(w http.ResponseWriter, r *http.Request) {
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	if err := s.check(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, "ok")
}

// missingReturn falls through after the error write: the OK write below
// lands on a response that already has a status.
func (s *server) missingReturn(w http.ResponseWriter, r *http.Request) {
	if err := s.check(); err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
	}
	writeJSON(w, http.StatusOK, "ok") // want "status already written on a path"
}

// silentPath answers only when draining; the happy path never writes.
func (s *server) silentPath(w http.ResponseWriter, r *http.Request) { // want "without writing a status on some path"
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
	}
}

// doubleHeader writes the header twice in straight-line code.
func (s *server) doubleHeader(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusOK) // want "status already written on a path"
}

// switchNoDefault: a switch that handles only some cases leaks the rest
// as an unanswered path.
func (s *server) switchNoDefault(w http.ResponseWriter, r *http.Request) { // want "without writing a status on some path"
	switch r.Method {
	case http.MethodGet:
		writeJSON(w, http.StatusOK, "ok")
	case http.MethodPost:
		writeJSON(w, http.StatusCreated, "made")
	}
}

// httpError uses the stdlib writer on one arm. Silent.
func (s *server) httpError(w http.ResponseWriter, r *http.Request) {
	if s.draining {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	http.NotFound(w, r)
}

// clientGone exits without a write only on the ctx.Done path. Silent.
func (s *server) clientGone(w http.ResponseWriter, r *http.Request) {
	if s.draining {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	select {
	case ev := <-s.events:
		writeJSON(w, http.StatusOK, ev)
	case <-r.Context().Done():
		return
	}
}

// stream delegates to the writer after the initial status; the
// streaming writes must not count as second statuses. Silent.
func (s *server) stream(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	for i := 0; i < 3; i++ {
		fmt.Fprintf(w, "chunk %d\n", i)
	}
}

// wrap is a middleware closure: one arm writes, the other delegates to
// the wrapped handler. Silent.
func wrap(h http.HandlerFunc, limit func() bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if !limit() {
			writeError(w, http.StatusTooManyRequests, "slow down")
			return
		}
		h(w, r)
	}
}

// notAHandler has a different signature; its zero writes are fine.
func notAHandler(w http.ResponseWriter, status int) {
	if status != 0 {
		w.WriteHeader(status)
	}
}
