// Package onceresp checks that every path through a serve handler
// writes exactly one HTTP status. A handler is any function or closure
// with the `(http.ResponseWriter, *http.Request)` signature. The two
// bug classes are the missing `return` after an error write (the
// response then carries two statuses and a concatenated body) and the
// forgotten path that falls off the end without answering at all.
//
// The analysis runs a forward dataflow over the set of possible
// write-counts on the paths reaching each point, saturating at 2
// (0, 1, and "too many" are the only distinctions that matter). A
// status write is a call to a //msf:respwrite-marked helper (serve's
// writeJSON/writeError), w.WriteHeader, or one of net/http's writing
// conveniences (Error, NotFound, Redirect, ServeFile, ServeContent).
//
// Two escapes keep the analysis honest on real handlers:
//
//   - Passing the ResponseWriter to any other function (w.Write,
//     Fprintf(w, ...), a streaming helper) delegates the response;
//     such paths become exempt rather than guessed at.
//     http.MaxBytesReader is known not to write and stays checked.
//   - A select case receiving from <-ctx.Done() (a context.Context's
//     cancellation) means the client is gone; writing nothing there
//     is correct and the path is exempt.
package onceresp

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/cfg"
	"pmsf/internal/analysis/dataflow"
)

// Analyzer is the onceresp analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "onceresp",
	Doc: "every path through an http handler must write exactly one status: " +
		"no fallthrough after an error write, no path that never answers",
	Run: run,
}

// exempt is the write-count meaning "this path delegated the response
// or the client is gone"; it absorbs all further writes.
const exempt = -1

// httpWriters are net/http package functions that write a status; the
// int is the index of the ResponseWriter argument.
var httpWriters = map[string]int{
	"Error":        0,
	"NotFound":     0,
	"Redirect":     0,
	"ServeFile":    0,
	"ServeContent": 0,
}

func run(pass *analysis.Pass) error {
	respwrite := collectRespWriters(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			var ftyp *ast.FuncType
			var body *ast.BlockStmt
			var pos ast.Node
			switch n := n.(type) {
			case *ast.FuncDecl:
				ftyp, body, pos = n.Type, n.Body, n.Name
			case *ast.FuncLit:
				ftyp, body, pos = n.Type, n.Body, n
			default:
				return true
			}
			if body == nil {
				return true
			}
			w := handlerWriter(pass.TypesInfo, ftyp)
			if w == nil {
				return true
			}
			checkHandler(pass, respwrite, w, body, pos)
			return true
		})
	}
	return nil
}

// collectRespWriters gathers the //msf:respwrite-marked functions of
// the package.
func collectRespWriters(pass *analysis.Pass) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "respwrite"); ok {
				if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// handlerWriter returns the ResponseWriter parameter object if ftyp is
// the two-parameter handler signature, else nil.
func handlerWriter(info *types.Info, ftyp *ast.FuncType) types.Object {
	if ftyp.Params == nil || ftyp.Params.NumFields() != 2 {
		return nil
	}
	var w types.Object
	var haveReq bool
	idx := 0
	for _, field := range ftyp.Params.List {
		names := field.Names
		if len(names) == 0 {
			names = []*ast.Ident{nil}
		}
		for _, name := range names {
			var t types.Type
			if tv, ok := info.Types[field.Type]; ok {
				t = tv.Type
			}
			if t == nil {
				return nil
			}
			switch {
			case idx == 0 && analysis.IsNamed(t, "net/http", "ResponseWriter"):
				if name != nil {
					w = info.Defs[name]
				}
			case idx == 1:
				if p, ok := t.(*types.Pointer); ok && analysis.IsNamed(p.Elem(), "net/http", "Request") {
					haveReq = true
				}
			}
			idx++
		}
	}
	if w == nil || !haveReq {
		return nil
	}
	return w
}

type state struct {
	pass      *analysis.Pass
	respwrite map[types.Object]bool
	w         types.Object
}

func checkHandler(pass *analysis.Pass, respwrite map[types.Object]bool, w types.Object, body *ast.BlockStmt, pos ast.Node) {
	st := &state{pass: pass, respwrite: respwrite, w: w}
	g := cfg.New(body)
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Set[int]]{
		Boundary: dataflow.NewSet(0),
		Init:     dataflow.Set[int]{},
		Join:     dataflow.Union[int],
		Equal:    dataflow.EqualSets[int],
		Transfer: st.transfer,
	})

	// Double writes: replay each block and flag the first status write
	// reachable with a write already behind it.
	reported := false
	for _, blk := range g.Blocks {
		counts := res.In[blk]
		for _, n := range blk.Nodes {
			if !reported && st.writesIn(n) > 0 && (counts.Has(1) || counts.Has(2)) {
				pass.Reportf(n.Pos(),
					"status already written on a path reaching this write "+
						"(missing return after the first write?)")
				reported = true
			}
			counts = st.transfer(n, counts)
		}
	}

	// Zero writes: a path reaches the handler's exit with count 0.
	if res.In[g.Exit].Has(0) {
		pass.Reportf(pos.Pos(),
			"handler returns without writing a status on some path")
	}
}

// transfer advances the write-count set across one CFG node.
func (st *state) transfer(n ast.Node, in dataflow.Set[int]) dataflow.Set[int] {
	hard, soft := st.classify(n)
	if soft {
		return dataflow.NewSet(exempt)
	}
	out := in
	for i := 0; i < hard; i++ {
		next := dataflow.Set[int]{}
		for c := range out {
			if c == exempt {
				next.Add(exempt)
			} else if c >= 2 {
				next.Add(2)
			} else {
				next.Add(c + 1)
			}
		}
		out = next
	}
	return out
}

// writesIn returns the number of hard status writes in n.
func (st *state) writesIn(n ast.Node) int {
	hard, _ := st.classify(n)
	return hard
}

// classify scans one CFG node for response writes: hard counts the
// definite status writes, soft reports delegation of the writer (or a
// client-gone ctx.Done receive) that exempts the path.
func (st *state) classify(n ast.Node) (hard int, soft bool) {
	switch n := n.(type) {
	case *ast.SelectStmt:
		// Case bodies are separate CFG blocks; the dispatch node itself
		// performs no write.
		return 0, false
	case *ast.RangeStmt:
		// Only the range expression evaluates here; the body has its
		// own blocks.
		return st.classifyExpr(n.X)
	}
	if stmt, ok := n.(ast.Stmt); ok && st.ctxDoneReceive(stmt) {
		return 0, true
	}
	return st.classifyExpr(n)
}

func (st *state) classifyExpr(root ast.Node) (hard int, soft bool) {
	ast.Inspect(root, func(n ast.Node) bool {
		if soft {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt:
			return false
		case *ast.CallExpr:
			h, s := st.classifyCall(n)
			hard += h
			soft = soft || s
		}
		return true
	})
	return hard, soft
}

func (st *state) classifyCall(call *ast.CallExpr) (hard int, soft bool) {
	info := st.pass.TypesInfo

	// w.WriteHeader / w.Write on the handler's writer.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && info.Uses[id] == st.w {
			switch sel.Sel.Name {
			case "WriteHeader":
				return 1, false
			case "Write":
				return 0, true // body write: status is implicit, stream follows
			case "Header":
				return 0, false
			}
		}
	}

	// Marked package-local writers.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && st.respwrite[info.Uses[id]] {
		return 1, false
	}

	// net/http's writing conveniences.
	if pkg, name, ok := analysis.CallPkg(info, call); ok && pkg == "net/http" {
		if _, isWriter := httpWriters[name]; isWriter {
			return 1, false
		}
		if name == "MaxBytesReader" {
			return 0, false // wraps the body; never writes the response
		}
	}

	// Any other call receiving w delegates the response.
	for _, arg := range call.Args {
		if id, ok := ast.Unparen(arg).(*ast.Ident); ok && info.Uses[id] == st.w {
			return 0, true
		}
	}
	return 0, false
}

// ctxDoneReceive reports whether stmt receives from a
// context.Context's Done() channel — the client-gone select case.
func (st *state) ctxDoneReceive(stmt ast.Stmt) bool {
	var recv ast.Expr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		recv = s.X
	case *ast.AssignStmt:
		if len(s.Rhs) == 1 {
			recv = s.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok || ue.Op != token.ARROW {
		return false
	}
	call, ok := ast.Unparen(ue.X).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Done" {
		return false
	}
	tv, ok := st.pass.TypesInfo.Types[sel.X]
	return ok && analysis.IsNamed(tv.Type, "context", "Context")
}
