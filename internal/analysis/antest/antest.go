// Package antest is the fixture harness for the msf-lint analyzers —
// the stdlib-only analogue of x/tools' analysistest. A fixture is an
// ordinary compilable package under the analyzer's testdata directory
// whose source carries `// want "regexp"` comments: every diagnostic
// the analyzer reports must match a want on its line, and every want
// must be matched by a diagnostic. A fixture with no want comments
// asserts the analyzer stays silent (the mandatory clean case).
package antest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/checker"
	"pmsf/internal/analysis/load"
)

// wantRe matches the trailing marker: // want "pattern" ["pattern" ...]
var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// patRe extracts the quoted patterns from a want marker.
var patRe = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run loads the fixture package rooted at dir (relative to the test's
// working directory), runs the analyzer on it, and compares the
// diagnostics against the fixture's want comments. The checker's
// //msf:ignore filtering is active, so fixtures can also assert that
// suppressions work (an ignored line simply carries no want).
func Run(t *testing.T, a *analysis.Analyzer, dir string) {
	t.Helper()
	abs, err := filepath.Abs(dir)
	if err != nil {
		t.Fatalf("antest: %v", err)
	}
	pkgs, err := load.Load("", abs)
	if err != nil {
		t.Fatalf("antest: loading %s: %v", dir, err)
	}

	var wants []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					m := wantRe.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					pats := patRe.FindAllStringSubmatch(m[1], -1)
					if len(pats) == 0 {
						t.Errorf("%s: malformed want comment (no quoted pattern)", pos)
						continue
					}
					for _, p := range pats {
						re, err := regexp.Compile(strings.ReplaceAll(p[1], `\"`, `"`))
						if err != nil {
							t.Errorf("%s: bad want pattern %q: %v", pos, p[1], err)
							continue
						}
						wants = append(wants, &expectation{pos.Filename, pos.Line, re, false})
					}
				}
			}
		}
	}

	diags, err := checker.Run(pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("antest: %v", err)
	}

	for _, d := range diags {
		if d.Analyzer == "typecheck" {
			t.Errorf("fixture does not type-check: %s", d)
			continue
		}
		if !match(wants, d.Position, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.pattern)
		}
	}
}

// match consumes the first unmatched expectation on the diagnostic's
// line whose pattern matches the message.
func match(wants []*expectation, pos token.Position, msg string) bool {
	for _, w := range wants {
		if !w.matched && w.file == pos.Filename && w.line == pos.Line && w.pattern.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// Fixture returns the conventional fixture path testdata/src/<name>.
func Fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}
