// Package suite registers the repo's analyzers in a stable order. It is
// the single list cmd/msf-lint, the CI job and the smoke test all run.
package suite

import (
	"pmsf/internal/analysis"
	"pmsf/internal/analysis/arenaescape"
	"pmsf/internal/analysis/atomicpack"
	"pmsf/internal/analysis/atomicslice"
	"pmsf/internal/analysis/ctxdone"
	"pmsf/internal/analysis/errflow"
	"pmsf/internal/analysis/lockhold"
	"pmsf/internal/analysis/noalloc"
	"pmsf/internal/analysis/onceresp"
	"pmsf/internal/analysis/spanpairing"
	"pmsf/internal/analysis/teamlifecycle"
)

// All returns every analyzer of the msf-lint suite.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		arenaescape.Analyzer,
		atomicpack.Analyzer,
		atomicslice.Analyzer,
		ctxdone.Analyzer,
		errflow.Analyzer,
		lockhold.Analyzer,
		noalloc.Analyzer,
		onceresp.Analyzer,
		spanpairing.Analyzer,
		teamlifecycle.Analyzer,
	}
}

// ByName returns the named analyzer, or nil.
func ByName(name string) *analysis.Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
