// Package noalloc enforces the zero-allocation contract of functions
// annotated //msf:noalloc — the Borůvka EL/ALM/FAL steady-state round
// loops, the packed-radix Compactor passes and the par.Team phase
// machinery. The annotation is intraprocedural: it promises the
// function body itself introduces no allocation sites, which is exactly
// what the Test*RoundZeroAllocs pins verify dynamically. Flagged
// constructs: make/new/append, capturing closures and method values
// (both allocate a closure object), slice/map/&composite literals,
// interface conversions (explicit or implicit argument boxing), string
// concatenation and conversions, and go statements.
package noalloc

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmsf/internal/analysis"
)

// Analyzer is the noalloc analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "noalloc",
	Doc: "functions annotated //msf:noalloc must not contain allocation " +
		"sites (make/append/new, capturing closures, boxing conversions, ...)",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if _, ok := analysis.FuncDirective(fn, "noalloc"); ok {
				checkBody(pass, fn)
			}
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkCall(pass, n)
		case *ast.FuncLit:
			if captured := capturedVars(info, n); len(captured) > 0 {
				pass.Reportf(n.Pos(),
					"closure captures %s and allocates per call; prebind it (method value stored at setup)",
					captured[0])
			}
		case *ast.CompositeLit:
			switch types.Unalias(typeOf(info, n)).(type) {
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates")
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates")
			default:
				if len(stack) > 0 {
					if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
						pass.Reportf(n.Pos(), "&composite literal allocates (escapes to the heap)")
					}
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isString(typeOf(info, n.X)) {
				pass.Reportf(n.Pos(), "string concatenation allocates")
			}
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "go statement allocates a goroutine")
		case *ast.SelectorExpr:
			// t.Method used as a value (not called) allocates a bound
			// method closure.
			if sel, ok := info.Selections[n]; ok && sel.Kind() == types.MethodVal {
				called := false
				if len(stack) > 0 {
					if call, ok := stack[len(stack)-1].(*ast.CallExpr); ok && call.Fun == ast.Expr(n) {
						called = true
					}
				}
				if !called {
					pass.Reportf(n.Pos(), "method value %s allocates a closure; prebind it at setup", n.Sel.Name)
				}
			}
		}
		return true
	})
}

// checkCall flags allocating builtins, allocating conversions, and
// implicit interface boxing of arguments.
func checkCall(pass *analysis.Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(call.Pos(), "%s allocates", b.Name())
			}
			return
		}
	}
	// Conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		target := types.Unalias(tv.Type)
		if len(call.Args) != 1 {
			return
		}
		opTV, ok := info.Types[call.Args[0]]
		if !ok || opTV.Type == nil {
			return
		}
		op := types.Unalias(opTV.Type)
		switch {
		case types.IsInterface(target) && !types.IsInterface(op) && !opTV.IsNil():
			pass.Reportf(call.Pos(), "conversion to interface boxes the value (allocates)")
		case isString(target) && !isString(op):
			pass.Reportf(call.Pos(), "conversion to string allocates")
		case isByteOrRuneSlice(target) && isString(op):
			pass.Reportf(call.Pos(), "string-to-slice conversion allocates")
		}
		return
	}
	// Ordinary call: implicit boxing of concrete arguments into
	// interface parameters (including variadic ...any).
	sig, ok := types.Unalias(typeOf(info, call.Fun)).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			last := types.Unalias(params.At(params.Len() - 1).Type())
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
			if call.Ellipsis.IsValid() {
				pt = last // s... passes the slice itself
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv, ok := info.Types[arg]
		if !ok || atv.Type == nil || atv.IsNil() || types.IsInterface(atv.Type) {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes into interface parameter (allocates)")
	}
}

// capturedVars returns the names of variables the literal references
// that are declared outside it (excluding package-level variables,
// which need no capture).
func capturedVars(info *types.Info, lit *ast.FuncLit) []string {
	var out []string
	seen := map[types.Object]bool{}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || seen[obj] || obj.IsField() {
			return true
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the literal
		}
		if pkgLevel(obj) {
			return true
		}
		seen[obj] = true
		out = append(out, obj.Name())
		return true
	})
	return out
}

func pkgLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	return types.Typ[types.Invalid]
}

func isString(t types.Type) bool {
	b, ok := types.Unalias(t).Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	sl, ok := types.Unalias(t).Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune || b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}
