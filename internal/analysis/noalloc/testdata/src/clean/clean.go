// Package clean is the noalloc negative fixture: the prebind-at-setup
// idiom the Borůvka round loops and the packed-radix Compactor use —
// allocation happens in the constructor, the annotated steady-state
// body only reuses it.
package clean

type worker struct {
	scratch []int64
	body    func(w, lo, hi int)
}

func newWorker(n int) *worker {
	wk := &worker{scratch: make([]int64, n)}
	wk.body = wk.sumRange // method value bound once at setup
	return wk
}

func (wk *worker) sumRange(w, lo, hi int) {
	var sum int64
	for i := lo; i < hi; i++ {
		sum += wk.scratch[i]
	}
	wk.scratch[w] = sum
}

//msf:noalloc
func (wk *worker) round(p, n int) {
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		wk.body(w, lo, hi)
	}
	wk.scratch = wk.scratch[:0]
	wk.scratch = wk.scratch[:cap(wk.scratch)]
}

// scatter mirrors the Compactor's write-combining scatter: per-digit
// staging in a preallocated slab, bulk-flushed with copy, with reslices
// and full-slice expressions of the reused buffers. None of it
// allocates in steady state.
type scatter struct {
	buf  []int64
	blen []int32
	dst  []int64
	off  []int32
}

const bufEdges = 4

func newScatter(nd, m int) *scatter {
	return &scatter{
		buf:  make([]int64, nd*bufEdges),
		blen: make([]int32, nd),
		dst:  make([]int64, m),
		off:  make([]int32, nd),
	}
}

//msf:noalloc
func (sc *scatter) pass(keys []int64, nd int) {
	buf := sc.buf[: nd*bufEdges : nd*bufEdges]
	blen := sc.blen[:nd]
	off := sc.off
	for _, k := range keys {
		d := int(k) & (nd - 1)
		s := d * bufEdges
		l := int(blen[d])
		buf[s+l] = k
		l++
		if l == bufEdges {
			copy(sc.dst[off[d]:int(off[d])+bufEdges], buf[s:s+bufEdges])
			off[d] += bufEdges
			l = 0
		}
		blen[d] = int32(l)
	}
	for d := 0; d < nd; d++ {
		if l := int(blen[d]); l > 0 {
			copy(sc.dst[off[d]:int(off[d])+l], buf[d*bufEdges:d*bufEdges+l])
			off[d] += int32(l)
			blen[d] = 0
		}
	}
}
