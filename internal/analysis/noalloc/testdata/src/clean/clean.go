// Package clean is the noalloc negative fixture: the prebind-at-setup
// idiom the Borůvka round loops and the packed-radix Compactor use —
// allocation happens in the constructor, the annotated steady-state
// body only reuses it.
package clean

type worker struct {
	scratch []int64
	body    func(w, lo, hi int)
}

func newWorker(n int) *worker {
	wk := &worker{scratch: make([]int64, n)}
	wk.body = wk.sumRange // method value bound once at setup
	return wk
}

func (wk *worker) sumRange(w, lo, hi int) {
	var sum int64
	for i := lo; i < hi; i++ {
		sum += wk.scratch[i]
	}
	wk.scratch[w] = sum
}

//msf:noalloc
func (wk *worker) round(p, n int) {
	for w := 0; w < p; w++ {
		lo := w * n / p
		hi := (w + 1) * n / p
		wk.body(w, lo, hi)
	}
	wk.scratch = wk.scratch[:0]
	wk.scratch = wk.scratch[:cap(wk.scratch)]
}
