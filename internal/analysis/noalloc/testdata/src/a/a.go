// Package a exercises the noalloc analyzer: every allocation shape the
// round loops must avoid, plus the patterns (prebound bodies, branchy
// float reductions) that must stay clean.
package a

type run struct {
	buf  []int
	body func(int)
}

func (r *run) step(int) {}

func sink(v interface{}) { _ = v }

//msf:noalloc
func bad(r *run, n int, s string, bs []byte) {
	r.buf = make([]int, n)   // want "make allocates"
	r.buf = append(r.buf, 1) // want "append allocates"
	x := new(int)            // want "new allocates"
	_ = x
	f := func() { _ = n } // want "closure captures n"
	f()
	_ = []int{1, 2}    // want "slice literal allocates"
	m := map[int]int{} // want "map literal allocates"
	_ = m
	_ = &run{}            // want "composite literal allocates"
	_ = s + "x"           // want "string concatenation allocates"
	_ = string(bs)        // want "conversion to string allocates"
	_ = []byte(s)         // want "string-to-slice conversion allocates"
	_ = interface{}(n)    // want "conversion to interface boxes"
	go func() {}()        // want "go statement"
	sink(n)               // want "boxes into interface parameter"
	r.body = r.step       // want "method value"
	tmp := make([]int, 8) //msf:ignore noalloc setup-time allocation outside the measured round loop
	_ = tmp
}

// minReduce is the mstbc/Compactor-style branchy min reduction over
// float weights; ties (including -0.0 vs 0.0, which compare equal)
// break by id. Nothing here allocates and nothing may be reported.
//
//msf:noalloc
func minReduce(w []float64, id []int32) (float64, int32) {
	best, bid := w[0], id[0]
	for i := 1; i < len(w); i++ {
		if w[i] < best || (w[i] == best && id[i] < bid) {
			best, bid = w[i], id[i]
		}
	}
	return best, bid
}

// unannotated may allocate freely.
func unannotated(n int) []int {
	out := make([]int, 0, n)
	return append(out, n)
}
