package noalloc_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/noalloc"
)

func TestFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	antest.Run(t, noalloc.Analyzer, antest.Fixture("a"))
	antest.Run(t, noalloc.Analyzer, antest.Fixture("clean"))
}
