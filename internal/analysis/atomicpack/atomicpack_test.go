package atomicpack_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/atomicpack"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, atomicpack.Analyzer, antest.Fixture("a"))
}
