// Package atomicpack enforces the packed-key access protocol on the
// lock-free engines' atomics. writemin and mstbc pack two 32-bit values
// into one atomic.Uint64 (rank<<32|index race keys, head<<32|tail claim
// ranges); the packing layout is an invariant shared by every reader
// and writer, so it must live in one blessed place. The directives:
//
//	//msf:packed          on an atomic field/var declaration: its values
//	                      are packed and subject to this protocol
//	//msf:packer          on a function: its result is a blessed packed
//	                      value (the pack helper)
//	//msf:unpacker        on a function: it decodes packed values; raw
//	                      bit operations are allowed inside it
//	//msf:packsink p ...  on a function: the named parameters receive
//	                      already-packed values (a CAS loop helper like
//	                      writemin.writeMin)
//
// Checked, per function, with reaching definitions deciding where a
// value came from:
//
//   - Store/Swap/CompareAndSwap on a packed atomic: every stored value
//     must flow from a packer call, a load of a packed atomic, a
//     packsink parameter, or a constant (sentinels like writemin's
//     noMin).
//   - No raw shifts, masks, or integer truncations of a packed value at
//     call sites — decoding goes through the matching //msf:unpacker.
//   - A packed atomic's address may only be passed to //msf:packsink
//     functions; anything else smuggles the slot out of the protocol.
//
// Unlike the other concurrency analyzers this one also runs in test
// files: a test that pokes raw bits into a packed slot corrupts the
// protocol just as effectively.
package atomicpack

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/cfg"
	"pmsf/internal/analysis/dataflow"
)

// Analyzer is the atomicpack analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicpack",
	Doc: "values stored to //msf:packed atomics must flow from //msf:packer " +
		"helpers and loads must decode through the matching //msf:unpacker — " +
		"no raw shifts at call sites",
	Run: run,
}

// storeMethods maps atomic mutators to the argument indexes carrying
// new packed values. CompareAndSwap's old value must also be blessed
// (it is, via Load) so both args are checked.
var storeMethods = map[string][]int{
	"Store":          {0},
	"Swap":           {0},
	"CompareAndSwap": {0, 1},
}

type facts struct {
	packed  map[types.Object]bool  // marked fields/vars
	exempt  map[types.Object]bool  // packer/unpacker funcs: raw ops allowed inside
	packers map[types.Object]bool  // funcs whose result is blessed
	sinks   map[types.Object][]int // packsink func -> blessed param indexes
	sinkPar map[types.Object]bool  // the blessed parameter objects themselves
}

func run(pass *analysis.Pass) error {
	fc := collect(pass)
	if len(fc.packed) == 0 {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil && fc.exempt[obj] {
				continue // the blessed implementation does raw bits by design
			}
			checkFunc(pass, fc, fn.Body)
		}
	}
	return nil
}

// collect gathers the directive-marked objects of the package.
func collect(pass *analysis.Pass) *facts {
	info := pass.TypesInfo
	fc := &facts{
		packed:  map[types.Object]bool{},
		exempt:  map[types.Object]bool{},
		packers: map[types.Object]bool{},
		sinks:   map[types.Object][]int{},
		sinkPar: map[types.Object]bool{},
	}
	hasDirective := func(cg *ast.CommentGroup, name string) ([]string, bool) {
		if cg == nil {
			return nil, false
		}
		for _, c := range cg.List {
			if d, ok := analysis.ParseDirective(c); ok && d.Name == name {
				return d.Args, true
			}
		}
		return nil, false
	}
	markNames := func(names []*ast.Ident) {
		for _, name := range names {
			if obj := info.Defs[name]; obj != nil {
				fc.packed[obj] = true
			}
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Field:
				if _, ok := hasDirective(n.Doc, "packed"); ok {
					markNames(n.Names)
				} else if _, ok := hasDirective(n.Comment, "packed"); ok {
					markNames(n.Names)
				}
			case *ast.ValueSpec:
				if _, ok := hasDirective(n.Doc, "packed"); ok {
					markNames(n.Names)
				} else if _, ok := hasDirective(n.Comment, "packed"); ok {
					markNames(n.Names)
				}
			case *ast.FuncDecl:
				obj := info.Defs[n.Name]
				if obj == nil {
					return true
				}
				if _, ok := analysis.FuncDirective(n, "packer"); ok {
					fc.packers[obj] = true
					fc.exempt[obj] = true
				}
				if _, ok := analysis.FuncDirective(n, "unpacker"); ok {
					fc.exempt[obj] = true
				}
				if args, ok := analysis.FuncDirective(n, "packsink"); ok {
					fc.registerSink(pass, n, obj, args)
				}
			}
			return true
		})
	}
	return fc
}

// registerSink resolves the packsink directive's parameter names.
func (fc *facts) registerSink(pass *analysis.Pass, fn *ast.FuncDecl, obj types.Object, args []string) {
	if len(args) == 0 {
		pass.Reportf(fn.Pos(), "//msf:packsink needs the packed parameter names")
		return
	}
	byName := map[string]int{}
	idx := 0
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			byName[name.Name] = idx
			idx++
		}
		if len(field.Names) == 0 {
			idx++
		}
	}
	var idxs []int
	for _, a := range args {
		i, ok := byName[a]
		if !ok {
			pass.Reportf(fn.Pos(), "//msf:packsink names unknown parameter %q", a)
			continue
		}
		idxs = append(idxs, i)
	}
	fc.sinks[obj] = idxs
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			for _, a := range args {
				if name.Name == a {
					if po := pass.TypesInfo.Defs[name]; po != nil {
						fc.sinkPar[po] = true
					}
				}
			}
		}
	}
}

// checkFunc walks one function body with reaching definitions live.
func checkFunc(pass *analysis.Pass, fc *facts, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body)
	defs := dataflow.ReachingDefs(g, info)
	c := &checkerState{pass: pass, fc: fc, info: info, defs: defs}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.BinaryExpr:
			switch n.Op {
			case token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
				if c.packedValue(n.X, 3) || c.packedValue(n.Y, 3) {
					pass.Reportf(n.OpPos,
						"raw %s on a packed value; decode through the //msf:unpacker helper", n.Op)
				}
			}
		}
		return true
	})
}

type checkerState struct {
	pass *analysis.Pass
	fc   *facts
	info *types.Info
	defs *dataflow.Defs
}

func (c *checkerState) checkCall(call *ast.CallExpr) {
	// Integer conversion of a packed value truncates half the key —
	// writemin's winnerWork bug class: edges[uint32(b)].
	if tv, ok := c.info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if b, isBasic := tv.Type.Underlying().(*types.Basic); isBasic &&
			b.Info()&types.IsInteger != 0 && c.packedValue(call.Args[0], 3) {
			c.pass.Reportf(call.Pos(),
				"raw integer conversion of a packed value; decode through the //msf:unpacker helper")
		}
		return
	}

	// Mutations of a packed atomic must store blessed values.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && c.markedAtomic(sel.X) {
		argIdx, isStore := storeMethods[sel.Sel.Name]
		if isStore {
			for _, i := range argIdx {
				if i < len(call.Args) && !c.blessed(call.Args[i], 4) {
					c.pass.Reportf(call.Args[i].Pos(),
						"value stored to packed atomic %s does not come from a //msf:packer helper",
						types.ExprString(sel.X))
				}
			}
			return
		}
	}

	// Passing a packed atomic's address to a function that is not a
	// declared packsink smuggles the slot out of the protocol. Calls to
	// packsinks additionally have their blessed-argument positions
	// checked.
	callee := c.calleeObj(call)
	sinkIdx, isSink := c.fc.sinks[callee]
	for i, arg := range call.Args {
		if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op == token.AND && c.markedAtomic(ue.X) {
			if !isSink {
				c.pass.Reportf(arg.Pos(),
					"packed atomic %s passed to a function not marked //msf:packsink",
					types.ExprString(ue.X))
			}
		}
		if isSink {
			for _, si := range sinkIdx {
				if si == i && !c.blessed(arg, 4) {
					c.pass.Reportf(arg.Pos(),
						"packed-value argument to %s does not come from a //msf:packer helper",
						types.ExprString(call.Fun))
				}
			}
		}
	}
}

func (c *checkerState) calleeObj(call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return c.info.Uses[fun]
	case *ast.SelectorExpr:
		return c.info.Uses[fun.Sel]
	}
	return nil
}

// markedAtomic reports whether e denotes a //msf:packed atomic slot:
// the marked variable/field itself or an index into a marked slice.
func (c *checkerState) markedAtomic(e ast.Expr) bool {
	e = ast.Unparen(e)
	if ix, ok := e.(*ast.IndexExpr); ok {
		e = ast.Unparen(ix.X)
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := c.info.Uses[e]
		if obj == nil {
			obj = c.info.Defs[e]
		}
		if c.fc.packed[obj] {
			return true
		}
		// Local aliases of a marked slice: best := r.best.
		for _, d := range c.defs.Of(e) {
			if d.Rhs != nil && c.markedAtomic(d.Rhs) {
				return true
			}
		}
	case *ast.SelectorExpr:
		return c.fc.packed[c.info.Uses[e.Sel]]
	}
	return false
}

// packedValue reports whether e may carry a packed key: a load of a
// packed atomic, a packer result, a packsink parameter, or a variable
// one of whose reaching definitions is any of those.
func (c *checkerState) packedValue(e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" && c.markedAtomic(sel.X) {
			return true
		}
		if c.fc.packers[c.calleeObj(e)] {
			return true
		}
	case *ast.Ident:
		obj := c.info.Uses[e]
		if c.fc.sinkPar[obj] {
			return true
		}
		for _, d := range c.defs.Of(e) {
			if d.Rhs != nil && c.packedValue(d.Rhs, depth-1) {
				return true
			}
		}
	}
	return false
}

// blessed reports whether e is an allowed source for a packed slot:
// constants (sentinels), packer calls, loads of packed atomics,
// packsink parameters, and variables ALL of whose reaching definitions
// are blessed.
func (c *checkerState) blessed(e ast.Expr, depth int) bool {
	if depth == 0 {
		return false
	}
	e = ast.Unparen(e)
	if tv, ok := c.info.Types[e]; ok && tv.Value != nil {
		return true // constant sentinel (noMin etc.)
	}
	switch e := e.(type) {
	case *ast.CallExpr:
		if c.fc.packers[c.calleeObj(e)] {
			return true
		}
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Load" && c.markedAtomic(sel.X) {
			return true
		}
	case *ast.Ident:
		obj := c.info.Uses[e]
		if c.fc.sinkPar[obj] {
			return true
		}
		ds := c.defs.Of(e)
		if len(ds) == 0 {
			return false
		}
		for _, d := range ds {
			if d.Rhs == nil || !c.blessed(d.Rhs, depth-1) {
				return false
			}
		}
		return true
	}
	return false
}
