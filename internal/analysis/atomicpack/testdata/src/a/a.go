// Package a is the atomicpack fixture: a writemin-shaped race-key
// protocol with a blessed packer/unpacker pair and a CAS-loop sink.
// Stores of hand-rolled bit math, raw decodes, and escapes of the
// packed slots must be flagged; the blessed paths stay silent.
package a

import "sync/atomic"

const noMin = ^uint64(0)

type races struct {
	//msf:packed
	best []atomic.Uint64
	lens []int
}

// raceKey packs (rank, index) into one 64-bit key.
//
//msf:packer
func raceKey(rank, idx uint32) uint64 {
	return uint64(rank)<<32 | uint64(idx)
}

// raceIdx recovers the edge index from a packed key.
//
//msf:unpacker
func raceIdx(key uint64) int {
	return int(uint32(key))
}

// writeMin is the CAS-loop sink; key arrives already packed.
//
//msf:packsink key
func writeMin(slot *atomic.Uint64, key uint64) {
	for {
		cur := slot.Load()
		if key >= cur {
			return
		}
		if slot.CompareAndSwap(cur, key) {
			return
		}
	}
}

func leak(slot *atomic.Uint64) {}

// goodStore uses the packer. Silent.
func (r *races) goodStore(i int, rank, idx uint32) {
	r.best[i].Store(raceKey(rank, idx))
}

// constStore resets to the sentinel. Silent.
func (r *races) constStore(i int) {
	r.best[i].Store(noMin)
}

// badStore hand-packs at the call site.
func (r *races) badStore(i int, rank, idx uint32) {
	r.best[i].Store(uint64(rank)<<32 | uint64(idx)) // want "does not come from a //msf:packer"
}

// badSwap routes an unblessed local through a variable.
func (r *races) badSwap(i int, rank uint32) {
	v := uint64(rank) << 32
	r.best[i].Swap(v) // want "does not come from a //msf:packer"
}

// goodCAS: both old and new are blessed. Silent.
func (r *races) goodCAS(i int, rank, idx uint32) {
	old := r.best[i].Load()
	r.best[i].CompareAndSwap(old, raceKey(rank, idx))
}

// badShift decodes with a raw shift instead of the unpacker.
func (r *races) badShift(i int) uint32 {
	k := r.best[i].Load()
	return uint32(k >> 32) // want "raw >> on a packed value"
}

// badTrunc truncates the packed key directly — the winnerWork bug.
func (r *races) badTrunc(i int) int {
	k := r.best[i].Load()
	return r.lens[uint32(k)] // want "raw integer conversion of a packed value"
}

// goodUnpack decodes through the blessed helper. Silent.
func (r *races) goodUnpack(i int) int {
	k := r.best[i].Load()
	return raceIdx(k)
}

// sinkCall passes the slot address to the declared sink. Silent.
func (r *races) sinkCall(i int, rank, idx uint32) {
	writeMin(&r.best[i], raceKey(rank, idx))
}

// badSinkArg reaches the sink with an unpacked value.
func (r *races) badSinkArg(i int, x uint64) {
	writeMin(&r.best[i], x+1) // want "packed-value argument to writeMin"
}

// badEscape hands the slot to a function outside the protocol.
func (r *races) badEscape(i int) {
	leak(&r.best[i]) // want "not marked //msf:packsink"
}

// aliasStore: a local alias of the packed slice is still packed.
func (r *races) aliasStore(i int, rank uint32) {
	best := r.best
	best[i].Store(uint64(rank)) // want "does not come from a //msf:packer"
}

// unrelated atomics are out of scope. Silent.
type plain struct {
	n atomic.Uint64
}

func (p *plain) bump(x uint64) {
	p.n.Store(x<<1 | 1)
	_ = p.n.Load() >> 3
}
