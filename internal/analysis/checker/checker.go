// Package checker runs a set of analyzers over loaded packages, applies
// the //msf:ignore suppression directives, and renders the surviving
// diagnostics. It is the engine behind cmd/msf-lint and the repo smoke
// test.
package checker

import (
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/load"
)

// Diagnostic is one rendered finding.
type Diagnostic struct {
	Position token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Position, d.Analyzer, d.Message)
}

// ignoreKey identifies one suppressible (file, line, analyzer) site.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

// Run executes every analyzer on every package and returns the
// diagnostics that survive //msf:ignore filtering, sorted by position.
// Soft type-check errors and malformed ignore directives are reported
// as diagnostics of the pseudo-analyzers "typecheck" and "directive",
// so a broken tree fails loudly instead of passing silently.
func Run(pkgs []*load.Package, analyzers []*analysis.Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, err := range pkg.TypeErrors {
			pos := token.Position{Filename: pkg.Dir}
			if terr, ok := err.(interface{ Pos() token.Pos }); ok {
				pos = pkg.Fset.Position(terr.Pos())
			}
			out = append(out, Diagnostic{Position: pos, Analyzer: "typecheck", Message: err.Error()})
		}

		ignores, malformed := ignoreDirectives(pkg)
		out = append(out, malformed...)
		for _, a := range analyzers {
			pass := &analysis.Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.TypesInfo,
			}
			pass.Report = func(d analysis.Diagnostic) {
				p := pkg.Fset.Position(d.Pos)
				if ignores[ignoreKey{p.Filename, p.Line, a.Name}] ||
					ignores[ignoreKey{p.Filename, p.Line - 1, a.Name}] {
					return
				}
				out = append(out, Diagnostic{Position: p, Analyzer: a.Name, Message: d.Message})
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// ignoreDirectives collects the //msf:ignore sites of a package. The
// grammar is "//msf:ignore <analyzer> <reason...>"; a missing analyzer
// name or reason makes the directive itself a finding, so suppressions
// always document themselves.
func ignoreDirectives(pkg *load.Package) (map[ignoreKey]bool, []Diagnostic) {
	ignores := map[ignoreKey]bool{}
	var malformed []Diagnostic
	for _, f := range pkg.Files {
		for _, d := range directivesOf(f) {
			if d.Name != "ignore" {
				continue
			}
			p := pkg.Fset.Position(d.Pos)
			if len(d.Args) < 2 {
				malformed = append(malformed, Diagnostic{
					Position: p, Analyzer: "directive",
					Message: "malformed ignore: want //msf:ignore <analyzer> <reason>",
				})
				continue
			}
			ignores[ignoreKey{p.Filename, p.Line, d.Args[0]}] = true
		}
	}
	return ignores, malformed
}

func directivesOf(f *ast.File) []analysis.Directive { return analysis.Directives(f) }

// IgnoreStats counts the //msf:ignore suppressions per analyzer across
// pkgs. Malformed directives (no analyzer name or reason) are not
// counted — they surface as "directive" diagnostics in Run instead.
func IgnoreStats(pkgs []*load.Package) map[string]int {
	counts := map[string]int{}
	for _, pkg := range pkgs {
		ignores, _ := ignoreDirectives(pkg)
		for k := range ignores {
			counts[k.analyzer]++
		}
	}
	return counts
}

// Print writes diagnostics one per line to w and returns how many were
// written.
func Print(w io.Writer, diags []Diagnostic) int {
	for _, d := range diags {
		fmt.Fprintln(w, d)
	}
	return len(diags)
}
