// Package analysis is a self-contained, standard-library-only analogue
// of golang.org/x/tools/go/analysis: named analyzers run over
// type-checked packages and report position-anchored diagnostics. It
// exists because this repository enforces invariants the Go compiler and
// go vet cannot see — benign-until-guarded atomic access disciplines,
// zero-allocation round loops, worker-team lifecycles, span pairing and
// arena escape rules — and vendors no third-party code, so the x/tools
// framework is rebuilt here in miniature.
//
// The moving parts mirror x/tools closely so the analyzers read like
// ordinary go/analysis code: an Analyzer has a Name, a Doc string and a
// Run function; Run receives a Pass with the token.FileSet, the parsed
// files, the *types.Package and the populated *types.Info, and calls
// Pass.Reportf to emit diagnostics. Package loading lives in the sibling
// load package (a `go list -export` driver), the multichecker loop in
// checker, and the fixture harness in antest.
//
// # Annotation grammar
//
// The analyzers understand three comment forms:
//
//   - "// accessed atomically" on (or directly above) a slice
//     declaration marks the slice for the atomicslice analyzer.
//   - "//msf:<directive> [args]" directives: //msf:noalloc on a
//     function's doc comment (noalloc analyzer), //msf:atomic p1 p2 on a
//     function's doc comment (marks parameters for atomicslice).
//   - "//msf:ignore <analyzer> <reason>" on the reported line or the
//     line directly above suppresses one analyzer there; the reason is
//     mandatory so every suppression documents itself.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //msf:ignore directives. By convention a short lowercase word.
	Name string
	// Doc is the one-paragraph description shown by `msf-lint -list`.
	Doc string
	// Run performs the check on one package and reports findings
	// through pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report receives every diagnostic. The checker installs a hook
	// that applies //msf:ignore filtering and collects the rest.
	Report func(Diagnostic)
}

// Diagnostic is one finding, anchored to a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Line returns the 1-based source line of pos.
func (p *Pass) Line(pos token.Pos) int { return p.Fset.Position(pos).Line }

// WithStack walks every node under root in depth-first order, calling
// fn with the node and the stack of its ancestors (outermost first, n's
// parent last). Returning false prunes the subtree below n. It is the
// stdlib-only stand-in for x/tools' inspector.WithStack.
func WithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
			return true
		}
		return false
	})
}

// Directive is one parsed //msf:name comment.
type Directive struct {
	Pos  token.Pos
	Name string   // the word after "msf:", e.g. "noalloc"
	Args []string // whitespace-separated arguments after the name
}

// ParseDirective parses a single comment as an //msf: directive;
// ok is false for ordinary comments.
func ParseDirective(c *ast.Comment) (Directive, bool) {
	text, found := strings.CutPrefix(c.Text, "//msf:")
	if !found {
		return Directive{}, false
	}
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return Directive{}, false
	}
	return Directive{Pos: c.Pos(), Name: fields[0], Args: fields[1:]}, true
}

// Directives returns every //msf: directive in the file, in source
// order.
func Directives(f *ast.File) []Directive {
	var out []Directive
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if d, ok := ParseDirective(c); ok {
				out = append(out, d)
			}
		}
	}
	return out
}

// FuncDirective reports whether fn's doc comment carries the named
// //msf: directive and returns its arguments.
func FuncDirective(fn *ast.FuncDecl, name string) ([]string, bool) {
	if fn.Doc == nil {
		return nil, false
	}
	for _, c := range fn.Doc.List {
		if d, ok := ParseDirective(c); ok && d.Name == name {
			return d.Args, true
		}
	}
	return nil, false
}

// MarkerLines returns the set of lines carrying a comment whose text
// contains marker. A marker on line L applies to declarations on L
// (trailing comment) and — when the marker sits on a line of its own —
// to L+1; deciding which is the caller's job, since it needs to know
// where declarations sit.
func MarkerLines(fset *token.FileSet, f *ast.File, marker string) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, marker) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// IsPkgCall reports whether call invokes the package-level function
// pkgpath.name (e.g. "sync/atomic".CompareAndSwapInt64), resolving the
// qualifier through the type info so import renames are handled.
func IsPkgCall(info *types.Info, call *ast.CallExpr, pkgpath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgpath
}

// CallPkg returns the import path and function name of a package-level
// call (ok is false for method calls, builtins and locals).
func CallPkg(info *types.Info, call *ast.CallExpr) (pkgpath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	id, isID := sel.X.(*ast.Ident)
	if !isID {
		return "", "", false
	}
	pn, isPkg := info.Uses[id].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// ReceiverNamed returns the *types.Named behind expr's type, looking
// through pointers and aliases, or nil.
func ReceiverNamed(info *types.Info, expr ast.Expr) *types.Named {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	return NamedOf(tv.Type)
}

// NamedOf unwraps pointers and aliases down to a *types.Named, or nil.
func NamedOf(t types.Type) *types.Named {
	for {
		switch tt := types.Unalias(t).(type) {
		case *types.Pointer:
			t = tt.Elem()
		case *types.Named:
			return tt
		default:
			return nil
		}
	}
}

// IsNamed reports whether t is (a pointer to) the named type
// pkgpath.name.
func IsNamed(t types.Type, pkgpath, name string) bool {
	n := NamedOf(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == pkgpath && obj.Name() == name
}
