// Package clean is the teamlifecycle negative fixture: the
// Workspace-style pattern of one team reused across phases and closed
// exactly once.
package clean

import "pmsf/internal/par"

func phases(p, n int, data []int64) int64 {
	t := par.NewTeam(p)
	defer t.Close()

	part := make([]int64, p)
	t.For(n, func(w, lo, hi int) {
		var sum int64
		for i := lo; i < hi; i++ {
			sum += data[i]
		}
		part[w] += sum
	})
	t.ForDynamic(n, 256, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i]++
		}
	})

	var total int64
	for _, s := range part {
		total += s
	}
	return total
}
