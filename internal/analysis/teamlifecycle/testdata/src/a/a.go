// Package a exercises the teamlifecycle analyzer: leaked teams,
// use-after-Close, and nested phase dispatch (which deadlocks because
// the workers serving the outer phase cannot run the inner one).
package a

import "pmsf/internal/par"

func leak(p int) {
	t := par.NewTeam(p) // want "never closed"
	t.Run(func(w int) {})
}

func closedDeferred(p int) {
	t := par.NewTeam(p)
	defer t.Close()
	t.Run(func(w int) {})
}

type holder struct{ team *par.Team }

func escape(p int) *holder {
	t := par.NewTeam(p) // ok: ownership moves to the holder
	return &holder{team: t}
}

func useAfterClose(p int) {
	t := par.NewTeam(p)
	t.Run(func(w int) {})
	t.Close()
	t.Run(func(w int) {}) // want "called after t.Close"
	t.Close()             // ok: Close is idempotent
}

func nested(p, n int) {
	t := par.NewTeam(p)
	defer t.Close()
	t.Run(func(w int) {
		t.ForDynamic(n, 64, func(_, lo, hi int) {}) // want "deadlocks"
	})
}

func suppressed(p int) {
	t := par.NewTeam(p) //msf:ignore teamlifecycle closed by the caller through a finalizer in this fixture
	t.Run(func(w int) {})
}
