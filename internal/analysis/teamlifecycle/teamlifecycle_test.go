package teamlifecycle_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/teamlifecycle"
)

func TestFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	antest.Run(t, teamlifecycle.Analyzer, antest.Fixture("a"))
	antest.Run(t, teamlifecycle.Analyzer, antest.Fixture("clean"))
}
