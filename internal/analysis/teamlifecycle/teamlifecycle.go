// Package teamlifecycle enforces the par.Team contract: every
// par.NewTeam result must reach a Close (directly, deferred, or by
// escaping to an owner that closes it), no Team method may be called
// lexically after a non-deferred Close in the same block, and a phase
// body passed to Run/For/ForDynamic must not call back into a Team —
// nested phases deadlock by construction (the workers that would serve
// the inner phase are all parked inside the outer one).
package teamlifecycle

import (
	"go/ast"
	"go/types"

	"pmsf/internal/analysis"
)

const parPath = "pmsf/internal/par"

// phaseMethods are the Team methods that dispatch work to the team's
// goroutines; calling one from inside a phase body deadlocks.
var phaseMethods = map[string]bool{"Run": true, "For": true, "ForDynamic": true}

// Analyzer is the teamlifecycle analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "teamlifecycle",
	Doc: "par.NewTeam results must be closed, not used after Close, " +
		"and phase bodies must not call back into a Team",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkUnclosed(pass, fn)
			checkUseAfterClose(pass, fn)
			checkNestedPhases(pass, fn)
		}
	}
	return nil
}

// isTeam reports whether e has type *par.Team (or par.Team).
func isTeam(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Type != nil && analysis.IsNamed(tv.Type, parPath, "Team")
}

// teamIdentObj resolves e to the object of a plain identifier of Team
// type, or nil.
func teamIdentObj(info *types.Info, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil || !analysis.IsNamed(obj.Type(), parPath, "Team") {
		return nil
	}
	return obj
}

// checkUnclosed flags local variables assigned from par.NewTeam that
// neither reach a Close call nor escape the function.
func checkUnclosed(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Collect team := par.NewTeam(...) bindings.
	type binding struct {
		obj  types.Object
		call *ast.CallExpr
	}
	var teams []binding
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !analysis.IsPkgCall(info, call, parPath, "NewTeam") {
			return true
		}
		if len(as.Lhs) == 1 {
			if obj := teamIdentObj(info, as.Lhs[0]); obj != nil {
				teams = append(teams, binding{obj, call})
			}
		}
		return true
	})

	for _, b := range teams {
		closed, escaped := false, false
		analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || info.Uses[id] != b.obj {
				return true
			}
			parent := stack[len(stack)-1]
			if sel, ok := parent.(*ast.SelectorExpr); ok && sel.X == ast.Expr(id) {
				if sel.Sel.Name == "Close" {
					closed = true
				}
				return true
			}
			// Any non-method use — call argument, return value, struct
			// field store, composite literal — hands ownership off.
			if as, ok := parent.(*ast.AssignStmt); ok {
				for _, lhs := range as.Lhs {
					if lhs == ast.Expr(id) {
						return true // being (re)assigned, not escaping
					}
				}
			}
			escaped = true
			return true
		})
		if !closed && !escaped {
			pass.Reportf(b.call.Pos(),
				"par.NewTeam result %s is never closed: missing %s.Close() (or defer)",
				b.obj.Name(), b.obj.Name())
		}
	}
}

// checkUseAfterClose flags Team method calls that appear lexically
// after a non-deferred t.Close() in the same statement list.
func checkUseAfterClose(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		block, ok := n.(*ast.BlockStmt)
		if !ok {
			return true
		}
		// closedAt: statement index of the first plain t.Close() per team.
		closedAt := map[types.Object]int{}
		for i, stmt := range block.List {
			es, ok := stmt.(*ast.ExprStmt)
			if ok {
				if obj, name := teamMethodCall(info, es.X); obj != nil && name == "Close" {
					if _, seen := closedAt[obj]; !seen {
						closedAt[obj] = i
					}
					continue
				}
			}
			if len(closedAt) == 0 {
				continue
			}
			ast.Inspect(stmt, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				obj, name := teamMethodCall(info, call)
				if obj == nil || name == "Close" { // Close is idempotent
					return true
				}
				if at, seen := closedAt[obj]; seen && at < i {
					pass.Reportf(call.Pos(),
						"%s.%s called after %s.Close(): the workers are gone",
						obj.Name(), name, obj.Name())
				}
				return true
			})
		}
		return true
	})
}

// teamMethodCall matches expressions of the form t.Method(...) where t
// is an identifier of Team type, returning t's object and the method
// name.
func teamMethodCall(info *types.Info, e ast.Expr) (types.Object, string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return nil, ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	obj := teamIdentObj(info, sel.X)
	if obj == nil {
		return nil, ""
	}
	return obj, sel.Sel.Name
}

// checkNestedPhases flags phase closures that call back into a Team.
func checkNestedPhases(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !phaseMethods[sel.Sel.Name] || !isTeam(info, sel.X) {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := arg.(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				isel, ok := inner.Fun.(*ast.SelectorExpr)
				if ok && phaseMethods[isel.Sel.Name] && isTeam(info, isel.X) {
					pass.Reportf(inner.Pos(),
						"Team.%s inside a phase body passed to Team.%s deadlocks: "+
							"the workers serving the outer phase cannot run the inner one",
						isel.Sel.Name, sel.Sel.Name)
				}
				return true
			})
		}
		return true
	})
}
