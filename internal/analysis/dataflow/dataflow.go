// Package dataflow is a small forward/backward worklist solver over the
// cfg package's block graphs, plus the fact-set and reaching-definitions
// helpers the msf-lint concurrency analyzers share. Like cfg it is the
// stdlib-only analogue of what golang.org/x/tools ships, rebuilt because
// the analysis framework vendors nothing.
//
// A Problem supplies the lattice (Join/Equal), the boundary fact, and a
// per-NODE transfer function; the solver iterates blocks to a fixed
// point and the Result answers "what holds immediately before/after
// this statement" by replaying transfers inside the block — the
// "facts held at program point" queries path-sensitive analyzers need.
package dataflow

import (
	"go/ast"

	"pmsf/internal/analysis/cfg"
)

// Problem describes one dataflow analysis over a cfg.Graph.
//
// Join, Equal and Transfer must treat their arguments as immutable:
// facts are shared between blocks, so a transfer that wants to change
// the fact must return a copy (Set.Clone makes this cheap to get right).
type Problem[F any] struct {
	// Backward runs the analysis against control flow (block facts
	// propagate from successors); Before/After still refer to execution
	// order, not analysis order.
	Backward bool
	// Boundary is the fact at the graph's entry (exit when Backward).
	Boundary F
	// Init is the initial fact everywhere else — the lattice bottom.
	Init F
	// Join merges facts at control-flow merges. Must be monotone,
	// commutative, and must not mutate its arguments.
	Join func(a, b F) F
	// Equal reports lattice equality; the solver stops when a pass
	// changes nothing.
	Equal func(a, b F) bool
	// Transfer produces the fact after executing one block node given
	// the fact before it (flipped when Backward). Must not mutate in.
	Transfer func(n ast.Node, in F) F
}

// Result holds the per-block fixed point and answers per-node queries.
type Result[F any] struct {
	// In and Out are the facts at block entry and block exit, in
	// execution order regardless of analysis direction.
	In, Out map[*cfg.Block]F

	p       Problem[F]
	blockOf map[ast.Node]*cfg.Block
}

// Solve runs p over g to a fixed point.
func Solve[F any](g *cfg.Graph, p Problem[F]) *Result[F] {
	r := &Result[F]{
		In:      make(map[*cfg.Block]F, len(g.Blocks)),
		Out:     make(map[*cfg.Block]F, len(g.Blocks)),
		p:       p,
		blockOf: make(map[ast.Node]*cfg.Block),
	}
	for _, b := range g.Blocks {
		r.In[b] = p.Init
		r.Out[b] = p.Init
		for _, n := range b.Nodes {
			r.blockOf[n] = b
		}
	}

	// edges in analysis direction: from -> to
	next := make(map[*cfg.Block][]*cfg.Block, len(g.Blocks))
	prev := make(map[*cfg.Block][]*cfg.Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if p.Backward {
				next[s] = append(next[s], b)
				prev[b] = append(prev[b], s)
			} else {
				next[b] = append(next[b], s)
				prev[s] = append(prev[s], b)
			}
		}
	}
	boundary := g.Entry
	if p.Backward {
		boundary = g.Exit
	}

	// in/out in ANALYSIS direction; mapped back to execution order at
	// the end.
	ain := make(map[*cfg.Block]F, len(g.Blocks))
	aout := make(map[*cfg.Block]F, len(g.Blocks))
	for _, b := range g.Blocks {
		ain[b] = p.Init
		aout[b] = p.Init
	}
	ain[boundary] = p.Boundary

	work := make([]*cfg.Block, len(g.Blocks))
	copy(work, g.Blocks)
	queued := make(map[*cfg.Block]bool, len(g.Blocks))
	for _, b := range work {
		queued[b] = true
	}
	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b] = false

		in := ain[b]
		if b != boundary {
			preds := prev[b]
			if len(preds) > 0 {
				in = aout[preds[0]]
				for _, pb := range preds[1:] {
					in = p.Join(in, aout[pb])
				}
			}
		}
		ain[b] = in
		out := r.transferBlock(b, in)
		if !p.Equal(out, aout[b]) {
			aout[b] = out
			for _, s := range next[b] {
				if !queued[s] {
					queued[s] = true
					work = append(work, s)
				}
			}
		}
	}

	for _, b := range g.Blocks {
		if p.Backward {
			r.In[b], r.Out[b] = aout[b], ain[b]
		} else {
			r.In[b], r.Out[b] = ain[b], aout[b]
		}
	}
	return r
}

// transferBlock applies the node transfers of b in analysis order.
func (r *Result[F]) transferBlock(b *cfg.Block, in F) F {
	f := in
	if r.p.Backward {
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			f = r.p.Transfer(b.Nodes[i], f)
		}
	} else {
		for _, n := range b.Nodes {
			f = r.p.Transfer(n, f)
		}
	}
	return f
}

// Before returns the fact holding immediately before n executes. n must
// be a block-level node (a member of some Block.Nodes); use cfg's block
// structure — or BlockNode — to map nested expressions to their
// statement first.
func (r *Result[F]) Before(n ast.Node) (F, bool) {
	return r.at(n, false)
}

// After returns the fact holding immediately after n executes.
func (r *Result[F]) After(n ast.Node) (F, bool) {
	return r.at(n, true)
}

func (r *Result[F]) at(n ast.Node, after bool) (F, bool) {
	b, ok := r.blockOf[n]
	if !ok {
		var zero F
		return zero, false
	}
	// Replay forward from block entry (or backward from block exit)
	// until the node is reached.
	if r.p.Backward {
		f := r.Out[b] // analysis-direction input
		for i := len(b.Nodes) - 1; i >= 0; i-- {
			if b.Nodes[i] == n {
				if after {
					return f, true // fact after n in execution order
				}
				return r.p.Transfer(n, f), true
			}
			f = r.p.Transfer(b.Nodes[i], f)
		}
		return f, false
	}
	f := r.In[b]
	for _, m := range b.Nodes {
		if m == n {
			if after {
				return r.p.Transfer(n, f), true
			}
			return f, true
		}
		f = r.p.Transfer(m, f)
	}
	return f, false
}

// Block returns the block holding block-level node n, or nil.
func (r *Result[F]) Block(n ast.Node) *cfg.Block { return r.blockOf[n] }
