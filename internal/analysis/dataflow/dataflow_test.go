package dataflow_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"pmsf/internal/analysis/cfg"
	"pmsf/internal/analysis/dataflow"
)

func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
		Types: map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, f, info
}

func funcNamed(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn
		}
	}
	t.Fatalf("no func %s", name)
	return nil
}

func TestSetOps(t *testing.T) {
	a := dataflow.NewSet(1, 2)
	b := dataflow.NewSet(2, 3)
	u := dataflow.Union(a, b)
	if !u.Has(1) || !u.Has(2) || !u.Has(3) || len(u) != 3 {
		t.Errorf("Union = %v", u.Keys())
	}
	if len(a) != 2 || len(b) != 2 {
		t.Errorf("Union mutated inputs: %v %v", a.Keys(), b.Keys())
	}
	if got := dataflow.Union(a, dataflow.NewSet(1)); len(got) != 2 {
		t.Errorf("subset union should be a no-op, got %v", got.Keys())
	}
	i := dataflow.Intersect(a, b)
	if len(i) != 1 || !i.Has(2) {
		t.Errorf("Intersect = %v", i.Keys())
	}
	if !dataflow.EqualSets(a, dataflow.NewSet(2, 1)) || dataflow.EqualSets(a, b) {
		t.Errorf("EqualSets wrong")
	}
	c := a.Clone()
	c.Add(9)
	c.Delete(1)
	if a.Has(9) || !a.Has(1) {
		t.Errorf("Clone shares storage")
	}
}

// TestReachingDefsMerge: both branch definitions reach the use after
// the merge; the pre-branch definition is killed on the reassigning
// path but survives the other.
func TestReachingDefsMerge(t *testing.T) {
	_, f, info := typecheck(t, `package p
func f(c bool) int {
	x := 1
	if c {
		x = 2
	}
	return x
}`)
	fn := funcNamed(t, f, "f")
	g := cfg.New(fn.Body)
	defs := dataflow.ReachingDefs(g, info)

	var useX *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			useX = ret.Results[0].(*ast.Ident)
		}
		return true
	})
	ds := defs.Of(useX)
	if len(ds) != 2 {
		t.Fatalf("defs reaching return = %d, want 2", len(ds))
	}
	rhs := map[string]bool{}
	for _, d := range ds {
		rhs[d.Rhs.(*ast.BasicLit).Value] = true
	}
	if !rhs["1"] || !rhs["2"] {
		t.Errorf("reaching rhs = %v, want {1,2}", rhs)
	}
}

// TestReachingDefsLoop: a definition made in a loop body reaches the
// loop condition on the back edge.
func TestReachingDefsLoop(t *testing.T) {
	_, f, info := typecheck(t, `package p
func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s = s + i
	}
	return s
}`)
	fn := funcNamed(t, f, "f")
	g := cfg.New(fn.Body)
	defs := dataflow.ReachingDefs(g, info)

	var useS *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if ret, ok := n.(*ast.ReturnStmt); ok {
			useS = ret.Results[0].(*ast.Ident)
		}
		return true
	})
	ds := defs.Of(useS)
	if len(ds) != 2 {
		t.Fatalf("defs of s at return = %d, want 2 (init + loop body)", len(ds))
	}
}

// TestReachingDefsMultiAssign: a, b := f() gives both objects the call
// as Rhs; var decls without values have nil Rhs.
func TestReachingDefsMultiAssign(t *testing.T) {
	_, f, info := typecheck(t, `package p
func two() (int, int) { return 1, 2 }
func f() int {
	var z int
	a, b := two()
	z = a + b
	return z
}`)
	fn := funcNamed(t, f, "f")
	g := cfg.New(fn.Body)
	defs := dataflow.ReachingDefs(g, info)

	var useA, useB *ast.Ident
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 {
			return true
		}
		if add, ok := as.Rhs[0].(*ast.BinaryExpr); ok {
			useA = add.X.(*ast.Ident)
			useB = add.Y.(*ast.Ident)
		}
		return true
	})
	for _, use := range []*ast.Ident{useA, useB} {
		ds := defs.Of(use)
		if len(ds) != 1 {
			t.Fatalf("defs of %s = %d, want 1", use.Name, len(ds))
		}
		if _, ok := ds[0].Rhs.(*ast.CallExpr); !ok {
			t.Errorf("Rhs of %s is %T, want *ast.CallExpr", use.Name, ds[0].Rhs)
		}
	}
}

// TestBackwardLiveness exercises the backward solver with a classic
// liveness problem: live-before = (live-after − defs) ∪ uses.
func TestBackwardLiveness(t *testing.T) {
	_, f, info := typecheck(t, `package p
func f(c bool) int {
	x := 1
	y := 2
	if c {
		return x
	}
	return y
}`)
	fn := funcNamed(t, f, "f")
	g := cfg.New(fn.Body)

	transfer := func(n ast.Node, after dataflow.Set[types.Object]) dataflow.Set[types.Object] {
		out := after.Clone()
		for _, d := range dataflow.DefsIn(n, info) {
			out.Delete(d.Obj)
		}
		ast.Inspect(n, func(m ast.Node) bool {
			if id, ok := m.(*ast.Ident); ok {
				if o, ok := info.Uses[id].(*types.Var); ok {
					out.Add(o)
				}
			}
			return true
		})
		return out
	}
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Set[types.Object]]{
		Backward: true,
		Join:     dataflow.Union[types.Object],
		Equal:    dataflow.EqualSets[types.Object],
		Transfer: transfer,
	})

	// After `x := 1` both x (taken branch) and y (other branch, defined
	// later... y is NOT yet defined, but liveness asks about uses):
	// live-after(x := 1) must contain x; live-before(x := 1) must not.
	var defX ast.Node
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					defX = n
				}
			}
		}
	}
	if defX == nil {
		t.Fatal("x := 1 not found in graph")
	}
	objX := func() types.Object {
		for id, o := range info.Defs {
			if id.Name == "x" {
				return o
			}
		}
		return nil
	}()
	after, ok := res.After(defX)
	if !ok || !after.Has(objX) {
		t.Errorf("x should be live after its definition (ok=%v, set=%v)", ok, after.Keys())
	}
	before, ok := res.Before(defX)
	if !ok || before.Has(objX) {
		t.Errorf("x should be dead before its definition (ok=%v)", ok)
	}
}
