package dataflow

// Set is the fact lattice most analyzers use: a finite set of
// comparable facts under union (may-analyses) or intersection
// (must-analyses). The zero value is an empty, immutable-by-convention
// set; mutate only sets you own via Clone.
type Set[K comparable] map[K]struct{}

// NewSet builds a set from ks.
func NewSet[K comparable](ks ...K) Set[K] {
	s := make(Set[K], len(ks))
	for _, k := range ks {
		s[k] = struct{}{}
	}
	return s
}

// Has reports membership. Safe on a nil set.
func (s Set[K]) Has(k K) bool { _, ok := s[k]; return ok }

// Add inserts k into s (s must be non-nil and owned by the caller).
func (s Set[K]) Add(k K) { s[k] = struct{}{} }

// Delete removes k from s.
func (s Set[K]) Delete(k K) { delete(s, k) }

// Clone returns an independent copy of s.
func (s Set[K]) Clone() Set[K] {
	t := make(Set[K], len(s))
	for k := range s {
		t[k] = struct{}{}
	}
	return t
}

// Keys returns the elements in unspecified order.
func (s Set[K]) Keys() []K {
	ks := make([]K, 0, len(s))
	for k := range s {
		ks = append(ks, k)
	}
	return ks
}

// Union returns a new set holding every element of a and b. Either
// input may be nil; neither is mutated, and one of the inputs may be
// returned when the other adds nothing.
func Union[K comparable](a, b Set[K]) Set[K] {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	sub := true
	for k := range b {
		if !a.Has(k) {
			sub = false
			break
		}
	}
	if sub {
		return a
	}
	u := a.Clone()
	for k := range b {
		u[k] = struct{}{}
	}
	return u
}

// Intersect returns a new set holding the elements in both a and b.
func Intersect[K comparable](a, b Set[K]) Set[K] {
	if len(a) > len(b) {
		a, b = b, a
	}
	out := make(Set[K])
	for k := range a {
		if b.Has(k) {
			out[k] = struct{}{}
		}
	}
	return out
}

// EqualSets reports whether a and b hold the same elements.
func EqualSets[K comparable](a, b Set[K]) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b.Has(k) {
			return false
		}
	}
	return true
}
