package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmsf/internal/analysis/cfg"
)

// Def is one definition of a variable: the block-level node that
// assigns it and the expression assigned. For a multi-value assignment
// `a, b := f()` both defs share the call as their Rhs; Rhs is nil when
// the definition has no expression (a `var x T` zero value, or a range
// clause binding).
type Def struct {
	Obj  types.Object
	Node ast.Node
	Rhs  ast.Expr
}

// DefsIn extracts the definitions performed by block-level node n
// itself (assignments inside nested function literals belong to the
// literal's own graph and are not included).
func DefsIn(n ast.Node, info *types.Info) []Def {
	var out []Def
	def := func(e ast.Expr, rhs ast.Expr) {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		o := info.Defs[id]
		if o == nil {
			o = info.Uses[id]
		}
		if _, ok := o.(*types.Var); ok {
			out = append(out, Def{Obj: o, Node: n, Rhs: rhs})
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
			for _, l := range n.Lhs {
				def(l, n.Rhs[0])
			}
		} else {
			for i, l := range n.Lhs {
				if i < len(n.Rhs) {
					def(l, n.Rhs[i])
				}
			}
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			break
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var rhs ast.Expr
				switch {
				case len(vs.Values) == 1 && len(vs.Names) > 1:
					rhs = vs.Values[0]
				case i < len(vs.Values):
					rhs = vs.Values[i]
				}
				def(name, rhs)
			}
		}
	case *ast.IncDecStmt:
		def(n.X, nil)
	case *ast.RangeStmt:
		if n.Key != nil {
			def(n.Key, nil)
		}
		if n.Value != nil {
			def(n.Value, nil)
		}
	}
	return out
}

// Defs answers reaching-definitions queries over one function graph.
type Defs struct {
	res    *Result[Set[Def]]
	info   *types.Info
	stmtOf map[ast.Node]ast.Node // descendant -> enclosing block-level node
}

// ReachingDefs solves the classic forward may-analysis over g: a Def
// reaches a point if some path from the definition arrives there
// without the variable being reassigned.
func ReachingDefs(g *cfg.Graph, info *types.Info) *Defs {
	transfer := func(n ast.Node, in Set[Def]) Set[Def] {
		ds := DefsIn(n, info)
		if len(ds) == 0 {
			return in
		}
		out := in.Clone()
		for _, d := range ds {
			for k := range out {
				if k.Obj == d.Obj {
					delete(out, k)
				}
			}
			out.Add(d)
		}
		return out
	}
	res := Solve(g, Problem[Set[Def]]{
		Join:     Union[Def],
		Equal:    EqualSets[Def],
		Transfer: transfer,
	})
	d := &Defs{res: res, info: info, stmtOf: make(map[ast.Node]ast.Node)}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			enclosing := n
			ast.Inspect(n, func(m ast.Node) bool {
				if m == nil {
					return false
				}
				d.stmtOf[m] = enclosing
				return true
			})
		}
	}
	return d
}

// Before returns the definitions reaching the start of the block-level
// node enclosing n (n itself may be any descendant expression).
func (d *Defs) Before(n ast.Node) Set[Def] {
	s, ok := d.stmtOf[n]
	if !ok {
		return nil
	}
	facts, _ := d.res.Before(s)
	return facts
}

// Of returns the definitions of id's object that reach id's use.
func (d *Defs) Of(id *ast.Ident) []Def {
	o := d.info.Uses[id]
	if o == nil {
		o = d.info.Defs[id]
	}
	if o == nil {
		return nil
	}
	var out []Def
	for def := range d.Before(id) {
		if def.Obj == o {
			out = append(out, def)
		}
	}
	return out
}
