package arenaescape_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/arenaescape"
)

func TestFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	antest.Run(t, arenaescape.Analyzer, antest.Fixture("a"))
	antest.Run(t, arenaescape.Analyzer, antest.Fixture("clean"))
}
