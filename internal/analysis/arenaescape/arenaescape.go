// Package arenaescape enforces the arena.Slab contract: memory handed
// out by Alloc is recycled wholesale at the next Reset, so a slice
// derived from an Alloc call must not be stored anywhere that outlives
// the reset cycle — struct fields, package-level variables, channels.
// The check is intraprocedural and flow-insensitive: it taints local
// variables bound (directly, by alias, or by subslicing) to an Alloc
// result and flags stores of tainted values into longer-lived homes.
// Returning an arena-backed slice is allowed — that is the documented
// hand-off idiom of alMem.concatScratch — because the caller's use is
// its own function's concern.
package arenaescape

import (
	"go/ast"
	"go/types"

	"pmsf/internal/analysis"
)

const arenaPath = "pmsf/internal/arena"

// Analyzer is the arenaescape analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "arenaescape",
	Doc: "slices carved from internal/arena slabs must not be stored " +
		"into structures that outlive the arena's Reset",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isAllocCall matches calls to (*arena.Slab[T]).Alloc.
func isAllocCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Alloc" {
		return false
	}
	recv := analysis.ReceiverNamed(info, sel.X)
	if recv == nil {
		return false
	}
	obj := recv.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Pkg().Path() == arenaPath && obj.Name() == "Slab"
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Taint pass (iterated to a fixpoint so later aliases of earlier
	// taints are found regardless of AST order; two rounds suffice for
	// straight-line taint chains, and the loop is bounded by the number
	// of assignments).
	tainted := map[types.Object]bool{}
	derived := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CallExpr:
			return isAllocCall(info, e)
		case *ast.Ident:
			obj := info.Uses[e]
			return obj != nil && tainted[obj]
		case *ast.SliceExpr:
			if id, ok := e.X.(*ast.Ident); ok {
				obj := info.Uses[id]
				return obj != nil && tainted[obj]
			}
		}
		return false
	}
	for changed := true; changed; {
		changed = false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !derived(rhs) {
					continue
				}
				id, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj != nil && !tainted[obj] {
					tainted[obj] = true
					changed = true
				}
			}
			return true
		})
	}

	// Violation pass.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !derived(rhs) {
					continue
				}
				switch lhs := n.Lhs[i].(type) {
				case *ast.SelectorExpr:
					pass.Reportf(n.Pos(),
						"arena-backed slice stored into field %s, which may outlive the slab's Reset",
						lhs.Sel.Name)
				case *ast.IndexExpr:
					// Storing into an element of another (non-tainted)
					// container extends the lifetime too.
					if id, ok := lhs.X.(*ast.Ident); ok {
						if obj := info.Uses[id]; obj != nil && tainted[obj] {
							continue
						}
					}
					pass.Reportf(n.Pos(),
						"arena-backed slice stored into a container element, which may outlive the slab's Reset")
				case *ast.Ident:
					if obj := info.Uses[lhs]; obj != nil && pkgLevel(obj) {
						pass.Reportf(n.Pos(),
							"arena-backed slice stored into package-level variable %s", lhs.Name)
					}
				}
			}
		case *ast.SendStmt:
			if derived(n.Value) {
				pass.Reportf(n.Pos(),
					"arena-backed slice sent on a channel escapes the slab's Reset cycle")
			}
		case *ast.CompositeLit:
			for _, el := range n.Elts {
				v := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					v = kv.Value
				}
				if derived(v) {
					pass.Reportf(v.Pos(),
						"arena-backed slice stored into a composite literal, which may outlive the slab's Reset")
				}
			}
		}
		return true
	})
}

func pkgLevel(obj types.Object) bool {
	return obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}
