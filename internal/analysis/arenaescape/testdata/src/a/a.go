// Package a exercises the arenaescape analyzer: slab-backed slices
// stored into fields, globals, channels, containers and composite
// literals (all outlive Reset), versus the legal copy-out and
// return-hand-off idioms.
package a

import "pmsf/internal/arena"

type cache struct {
	kept []int32
}

var global []int32

func bad(s *arena.Slab[int32], c *cache, ch chan []int32, table [][]int32) {
	buf := s.Alloc(16)
	c.kept = buf // want "stored into field kept"
	sub := buf[2:8]
	c.kept = sub         // want "stored into field kept"
	global = buf         // want "package-level variable global"
	ch <- buf            // want "sent on a channel"
	table[0] = buf       // want "container element"
	_ = cache{kept: buf} // want "composite literal"
	c.kept = s.Alloc(4)  // want "stored into field kept"
}

func good(s *arena.Slab[int32], dst []int32) []int32 {
	buf := s.Alloc(16)
	for i := range buf {
		buf[i] = int32(i)
	}
	copy(dst, buf) // ok: values are copied out of the slab
	head := buf[:8]
	head[0] = 1 // ok: writes through a tainted alias stay in the slab
	s.Reset()
	return s.Alloc(8) // ok: returning is the documented hand-off
}

func suppressed(s *arena.Slab[int32], c *cache) {
	buf := s.Alloc(16)
	c.kept = buf //msf:ignore arenaescape fixture cache is cleared before the slab resets
}
