// Package clean is the arenaescape negative fixture: the concatScratch
// idiom — carve, fill, hand the slice to the caller by return, recycle
// with Reset between rounds.
package clean

import "pmsf/internal/arena"

func concat(s *arena.Slab[int64], a, b []int64) []int64 {
	out := s.Alloc(len(a) + len(b))
	n := copy(out, a)
	copy(out[n:], b)
	return out
}

func rounds(s *arena.Slab[int64], data [][]int64) int64 {
	var total int64
	for i := 1; i < len(data); i++ {
		merged := concat(s, data[i-1], data[i])
		for _, v := range merged {
			total += v
		}
		s.Reset()
	}
	return total
}
