package spanpairing_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/spanpairing"
)

func TestFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	antest.Run(t, spanpairing.Analyzer, antest.Fixture("a"))
	antest.Run(t, spanpairing.Analyzer, antest.Fixture("clean"))
}
