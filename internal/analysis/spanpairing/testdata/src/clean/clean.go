// Package clean is the spanpairing negative fixture: the borel-style
// round shape — a root span, per-phase child spans ended before the
// next begins, and an early exit that still ends everything.
package clean

import "pmsf/internal/obs"

func round(c *obs.Collector, it obs.Span, empty bool) bool {
	step := it.Child("find-min")
	work(&step)
	step.End()
	if empty {
		it.End()
		return false
	}
	step = it.Child("connect-components")
	work(&step)
	step.End()
	it.End()
	return true
}

func work(s *obs.Span) { s.SetInt("n", 1) }
