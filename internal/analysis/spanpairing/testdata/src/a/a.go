// Package a exercises the spanpairing analyzer: leaked spans, missed
// early-return paths, reassign-before-End chains, and the patterns that
// must stay clean (defer, per-branch End, the Labeled closure, and the
// return hand-off).
package a

import "pmsf/internal/obs"

func missingEnd(c *obs.Collector) {
	sp := c.Start("root", "algo") // want "not ended on every path"
	sp.SetInt("n", 1)
}

func earlyReturn(c *obs.Collector, cond bool) {
	sp := c.Start("root", "algo")
	if cond {
		return // want "not ended on this return path"
	}
	sp.End()
}

func deferred(c *obs.Collector, cond bool) {
	sp := c.Start("root", "algo")
	defer sp.End()
	if cond {
		return
	}
}

func perBranch(c *obs.Collector, cond bool) int {
	it := c.Start("iteration", "algo")
	if cond {
		it.End()
		return 0
	}
	it.End()
	return 1
}

func reassign(c *obs.Collector) {
	root := c.Start("root", "algo")
	step := root.Child("find-min")
	step = root.Child("connect") // want "reassigned before"
	step.End()
	root.End()
}

func chained(c *obs.Collector) {
	root := c.Start("root", "algo")
	step := root.Child("find-min")
	step.End()
	step = root.Child("connect") // ok: previous span was ended
	step.End()
	root.End()
}

func labeled(c *obs.Collector) {
	sp := c.Start("root", "algo")
	c.Labeled("algo", "phase", func() { sp.End() }) // ok: End inside the synchronous closure
}

func handoff(c *obs.Collector) obs.Span {
	sp := c.Start("root", "algo") // ok: returned, the caller owns End
	return sp
}

func suppressed(c *obs.Collector) {
	sp := c.Start("root", "algo") //msf:ignore spanpairing fixture span is ended by the test harness
	_ = sp
}
