// Package spanpairing enforces the obs tracing contract from PR 1:
// every span a function starts (a local obs.Span assigned from a call —
// Collector.Start, Span.Child, obs.StartUnder or any helper returning a
// Span) must be ended on every path out of its declaring block, either
// by a dominating s.End(), a defer s.End(), or an End inside a
// synchronously-invoked closure in the same statement (the
// Collector.Labeled pattern). Reassigning a span variable before ending
// the previous span is also reported — that is how the
// step = it.Child(...) chains leak spans.
//
// Spans that escape the function (returned, stored into a struct or
// composite literal) are considered handed off and are not tracked; the
// new owner carries the obligation.
package spanpairing

import (
	"go/ast"
	"go/token"
	"go/types"

	"pmsf/internal/analysis"
)

const obsPath = "pmsf/internal/obs"

// Analyzer is the spanpairing analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "spanpairing",
	Doc: "every obs span started must be ended (or deferred) on all " +
		"return paths of its declaring block",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			fn, ok := n.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn)
			}
			return true
		})
	}
	return nil
}

func isSpanType(t types.Type) bool { return analysis.IsNamed(t, obsPath, "Span") }

// spanVarOf returns the object of a local span variable bound by this
// assignment from a call expression, or nil. Multi-value assignments
// (c, root := obsStart(...)) bind the Span-typed name.
func spanVarOf(info *types.Info, as *ast.AssignStmt) types.Object {
	if len(as.Rhs) != 1 {
		return nil
	}
	if _, ok := as.Rhs[0].(*ast.CallExpr); !ok {
		return nil
	}
	for _, lhs := range as.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			continue
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil && isSpanType(obj.Type()) {
			return obj
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo

	// Pass 1: find tracked span declarations — statement-level
	// assignments directly inside a block whose bound span never escapes
	// the function.
	type start struct {
		obj   types.Object
		block *ast.BlockStmt
		index int
	}
	var starts []start
	analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok && len(stack) > 0 {
			return true // literals are walked but starts inside them get their own block
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE {
			return true
		}
		obj := spanVarOf(info, as)
		if obj == nil || escapes(info, fn, obj) {
			return true
		}
		block, ok := stack[len(stack)-1].(*ast.BlockStmt)
		if !ok {
			return true
		}
		for i, stmt := range block.List {
			if stmt == ast.Stmt(as) {
				starts = append(starts, start{obj, block, i})
				break
			}
		}
		return true
	})

	for _, s := range starts {
		sim := &simulator{pass: pass, info: info, obj: s.obj}
		st := sim.stmts(s.block.List[s.index+1:], state{})
		if !st.ended && !st.terminated {
			pass.Reportf(s.block.List[s.index].Pos(),
				"span %s is not ended on every path out of its block; add %s.End() (or defer it)",
				s.obj.Name(), s.obj.Name())
		}
	}
}

// escapes reports whether the span object is returned, stored into a
// composite literal, struct field, index expression or package-level
// variable — all of which hand the End obligation to another owner.
func escapes(info *types.Info, fn *ast.FuncDecl, obj types.Object) bool {
	found := false
	analysis.WithStack(fn.Body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || (info.Uses[id] != obj && info.Defs[id] != obj) {
			return true
		}
		parent := stack[len(stack)-1]
		switch p := parent.(type) {
		case *ast.ReturnStmt:
			found = true
		case *ast.CompositeLit, *ast.KeyValueExpr:
			found = true
		case *ast.AssignStmt:
			for i, rhs := range p.Rhs {
				if rhs != ast.Expr(id) {
					continue
				}
				if i < len(p.Lhs) {
					if _, isIdent := p.Lhs[i].(*ast.Ident); !isIdent {
						found = true // stored through a selector/index
					}
				}
			}
		}
		return true
	})
	return found
}

// state is the abstract per-path state of one span variable.
type state struct {
	ended      bool // End() (or defer End()) definitely happened
	terminated bool // the path cannot fall through (return/panic)
}

type simulator struct {
	pass *analysis.Pass
	info *types.Info
	obj  types.Object
}

func (s *simulator) stmts(list []ast.Stmt, st state) state {
	for _, stmt := range list {
		if st.terminated {
			return st
		}
		st = s.stmt(stmt, st)
	}
	return st
}

func (s *simulator) stmt(stmt ast.Stmt, st state) state {
	switch n := stmt.(type) {
	case *ast.ExprStmt:
		if s.endsSpan(n.X) {
			st.ended = true
			return st
		}
		if call, ok := n.X.(*ast.CallExpr); ok {
			if isPanic(s.info, call) {
				st.terminated = true
			}
			// The Labeled pattern: End inside a closure argument that the
			// callee invokes synchronously.
			for _, arg := range call.Args {
				if lit, ok := arg.(*ast.FuncLit); ok && s.containsEnd(lit.Body) {
					st.ended = true
				}
			}
		}
		return st
	case *ast.DeferStmt:
		if s.isEndCall(n.Call) {
			st.ended = true
		}
		return st
	case *ast.AssignStmt:
		for _, lhs := range n.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || s.info.Uses[id] != s.obj {
				continue
			}
			if n.Tok == token.ASSIGN {
				if !st.ended {
					s.pass.Reportf(n.Pos(),
						"span %s reassigned before %s.End(): the previous span leaks",
						s.obj.Name(), s.obj.Name())
				}
				// A fresh span from a call restarts the obligation; anything
				// else (zero Span, copy) is treated as inert.
				st.ended = true
				if len(n.Rhs) == 1 {
					if _, ok := n.Rhs[0].(*ast.CallExpr); ok {
						st.ended = false
					}
				}
			}
		}
		return st
	case *ast.ReturnStmt:
		if !st.ended {
			s.pass.Reportf(n.Pos(),
				"span %s is not ended on this return path; call %s.End() before returning",
				s.obj.Name(), s.obj.Name())
		}
		st.terminated = true
		return st
	case *ast.BlockStmt:
		return s.stmts(n.List, st)
	case *ast.IfStmt:
		then := s.stmt(n.Body, st)
		els := st
		if n.Else != nil {
			els = s.stmt(n.Else, st)
		}
		return merge(then, els)
	case *ast.ForStmt:
		s.stmt(n.Body, st) // report inside; zero iterations possible
		return st
	case *ast.RangeStmt:
		s.stmt(n.Body, st)
		return st
	case *ast.SwitchStmt:
		return s.clauses(n.Body, st, hasDefault(n.Body))
	case *ast.TypeSwitchStmt:
		return s.clauses(n.Body, st, hasDefault(n.Body))
	case *ast.SelectStmt:
		return s.clauses(n.Body, st, true)
	case *ast.LabeledStmt:
		return s.stmt(n.Stmt, st)
	case *ast.BranchStmt:
		// break/continue/goto leave the straight-line path; treat as
		// terminated so the rest of the block is judged on other paths.
		st.terminated = true
		return st
	default:
		return st
	}
}

// clauses folds the case bodies of a switch/select: the fall-through
// state is the conjunction of all non-terminating cases, plus the
// incoming state when no default exists (the switch may match nothing).
func (s *simulator) clauses(body *ast.BlockStmt, st state, exhaustive bool) state {
	out := state{ended: true, terminated: true}
	any := false
	for _, c := range body.List {
		var list []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			list = cc.Body
		case *ast.CommClause:
			list = cc.Body
		default:
			continue
		}
		any = true
		out = merge(out, s.stmts(list, st))
	}
	if !any || !exhaustive {
		out = merge(out, st)
	}
	return out
}

func merge(a, b state) state {
	switch {
	case a.terminated && b.terminated:
		return state{ended: a.ended && b.ended, terminated: true}
	case a.terminated:
		return b
	case b.terminated:
		return a
	default:
		return state{ended: a.ended && b.ended}
	}
}

func hasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// endsSpan matches v.End() for the tracked object.
func (s *simulator) endsSpan(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	return ok && s.isEndCall(call)
}

func (s *simulator) isEndCall(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "End" {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && s.info.Uses[id] == s.obj
}

func (s *simulator) containsEnd(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && s.isEndCall(call) {
			found = true
		}
		return true
	})
	return found
}

func isPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
