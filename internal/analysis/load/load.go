// Package load resolves and type-checks packages for the msf-lint
// analyzers without any dependency outside the standard library. It
// shells out to `go list -export -deps -json`, which works offline and
// yields, for every package in the dependency closure, the compiled
// export data in the build cache; the target packages themselves are
// then parsed from source and type-checked with go/types, importing
// their dependencies through the export data (the same split the
// x/tools go/packages NeedSyntax|NeedTypes mode performs).
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// Package is one parsed and type-checked target package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TypeErrors holds soft type-check errors. Analysis proceeds on a
	// best-effort basis when they are non-empty; the checker surfaces
	// them so broken code fails loudly rather than silently passing.
	TypeErrors []error
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
	Match      []string
	ForTest    string
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns (plus their full dependency closure), parses the
// matched non-standard packages and type-checks them against the export
// data of their dependencies. dir is the working directory for the go
// tool ("" means the current one); patterns are anything `go list`
// accepts, including "./..." and absolute directories (which is how the
// antest fixture packages under testdata are reached).
func Load(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, false, patterns)
}

// LoadTests is Load with `go list -test`: every matched package that
// has test files is replaced by its test variant ("pkg [pkg.test]",
// whose file list includes the _test.go sources), and external test
// packages ("pkg_test") become targets of their own. The generated
// ".test" mains are never analyzed.
func LoadTests(dir string, patterns ...string) ([]*Package, error) {
	return load(dir, true, patterns)
}

func load(dir string, tests bool, patterns []string) ([]*Package, error) {
	args := []string{
		"list", "-export", "-deps",
		"-json=Dir,ImportPath,Export,Standard,GoFiles,ImportMap,Match,ForTest,Incomplete,Error",
	}
	if tests {
		args = append(args, "-test")
	}
	args = append(append(args, "--"), patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s",
			strings.Join(patterns, " "), err, stderr.String())
	}

	var all []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		lp := new(listPackage)
		if err := dec.Decode(lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		all = append(all, lp)
	}

	// Export data of the whole closure, keyed by resolved import path.
	exports := make(map[string]string, len(all))
	for _, lp := range all {
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
	}

	// In test mode a matched package with tests appears twice: as
	// itself and as the test variant whose GoFiles include the _test.go
	// sources. The variant supersedes the original.
	superseded := map[string]bool{}
	for _, lp := range all {
		if len(lp.Match) > 0 && lp.ForTest != "" {
			superseded[lp.ForTest] = true
		}
	}

	fset := token.NewFileSet()
	var out []*Package
	for _, lp := range all {
		// -deps lists the entire closure; only packages matched by the
		// patterns are analysis targets. (The generated ".test" mains
		// carry no Match and are skipped with the rest.)
		if len(lp.Match) == 0 || lp.Standard || superseded[lp.ImportPath] {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := check(fset, lp, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no packages matched %s", strings.Join(patterns, " "))
	}
	return out, nil
}

// check parses lp's files and type-checks them, importing dependencies
// from export data.
func check(fset *token.FileSet, lp *listPackage, exports map[string]string) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := lp.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}

	pkg := &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Implicits:  map[ast.Node]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Scopes:     map[ast.Node]*types.Scope{},
			Instances:  map[*ast.Ident]types.Instance{},
		},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, pkg.TypesInfo)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
	}
	pkg.Types = tpkg
	return pkg, nil
}
