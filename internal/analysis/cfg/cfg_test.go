package cfg_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"pmsf/internal/analysis/cfg"
)

// build parses src (a complete file), finds the function named name and
// returns its graph dump.
func build(t *testing.T, src, name string) string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return cfg.New(fn.Body).Dump(fset)
		}
	}
	t.Fatalf("no function %q in fixture", name)
	return ""
}

// check compares the dump against the golden text, both normalized.
func check(t *testing.T, got, want string) {
	t.Helper()
	norm := func(s string) string {
		var lines []string
		for _, l := range strings.Split(s, "\n") {
			if l = strings.TrimRight(l, " \t"); l != "" {
				lines = append(lines, l)
			}
		}
		return strings.Join(lines, "\n")
	}
	if norm(got) != norm(want) {
		t.Errorf("block graph mismatch\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	got := build(t, `package p
func f(xs [][]int) int {
	total := 0
outer:
	for i := 0; i < len(xs); i++ {
		for _, x := range xs[i] {
			if x < 0 {
				break outer
			}
			if x == 0 {
				continue outer
			}
			total += x
		}
	}
	return total
}`, "f")
	check(t, got, `
b0 entry: -> b2
	total := 0
b1 exit:
b2 label: -> b3
	i := 0
b3 for.head: -> b4 b5
	i < len(xs)
b4 for.body: -> b7
b5 for.done: -> b1
	return total
b6 for.post: -> b3
	i++
b7 range.head: -> b8 b9
	_, x := range xs[i]
b8 range.body: -> b10 b11
	x < 0
b9 range.done: -> b6
b10 if.then: -> b5
	break outer
b11 if.done: -> b13 b14
	x == 0
b12 unreachable: -> b11
b13 if.then: -> b6
	continue outer
b14 if.done: -> b7
	total += x
b15 unreachable: -> b14
`)
}

func TestGoto(t *testing.T) {
	got := build(t, `package p
func f(n int) int {
	i := 0
loop:
	if i < n {
		i++
		goto loop
	}
	return i
}`, "f")
	check(t, got, `
b0 entry: -> b2
	i := 0
b1 exit:
b2 label: -> b3 b4
	i < n
b3 if.then: -> b2
	i++
	goto loop
b4 if.done: -> b1
	return i
b5 unreachable: -> b4
`)
}

func TestSelectWithDefault(t *testing.T) {
	got := build(t, `package p
func f(ch chan int, quit chan struct{}) int {
	for {
		select {
		case v := <-ch:
			return v
		case <-quit:
			return 0
		default:
		}
	}
}`, "f")
	check(t, got, `
b0 entry: -> b2
b1 exit:
b2 for.head: -> b3
b3 for.body: -> b6 b8 b10
	select
b4 for.done: -> b1
b5 select.done: -> b2
b6 select.case: -> b1
	v := <-ch
	return v
b7 unreachable: -> b5
b8 select.case: -> b1
	<-quit
	return 0
b9 unreachable: -> b5
b10 select.default: -> b5
`)
	// A select with no default has no edge from the dispatching block
	// to anything but its cases: the statement blocks until one fires.
	got = build(t, `package p
func g(quit chan struct{}) {
	select {
	case <-quit:
	}
}`, "g")
	check(t, got, `
b0 entry: -> b3
	select
b1 exit:
b2 select.done: -> b1
b3 select.case: -> b2
	<-quit
`)
}

func TestDeferredClosureUnlock(t *testing.T) {
	// The deferred closure is a node in its declaring block AND is
	// collected on Graph.Defers; its body is not descended into.
	src := `package p
import "sync"
func f(mu *sync.Mutex, n int) int {
	mu.Lock()
	defer func() {
		mu.Unlock()
	}()
	if n > 0 {
		return n
	}
	return 0
}`
	got := build(t, src, "f")
	check(t, got, `
b0 entry: -> b2 b3
	mu.Lock()
	defer func() { mu.Unlock() }()
	n > 0
b1 exit:
b2 if.then: -> b1
	return n
b3 if.done: -> b1
	return 0
b4 unreachable: -> b3
`)

	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[1].(*ast.FuncDecl)
	g := cfg.New(fn.Body)
	if len(g.Defers) != 1 {
		t.Fatalf("Defers = %d, want 1", len(g.Defers))
	}
	if _, ok := g.Defers[0].Call.Fun.(*ast.FuncLit); !ok {
		t.Errorf("deferred call is %T, want *ast.FuncLit", g.Defers[0].Call.Fun)
	}
}

func TestPanicBranch(t *testing.T) {
	got := build(t, `package p
import "os"
func f(n int) int {
	if n < 0 {
		panic("negative")
	}
	if n == 0 {
		os.Exit(2)
	}
	return n
}`, "f")
	check(t, got, `
b0 entry: -> b2 b3
	n < 0
b1 exit:
b2 if.then: -> b1
	panic("negative")
b3 if.done: -> b5 b6
	n == 0
b4 unreachable: -> b3
b5 if.then: -> b1
	os.Exit(2)
b6 if.done: -> b1
	return n
b7 unreachable: -> b6
`)
}

func TestSwitchFallthrough(t *testing.T) {
	got := build(t, `package p
func f(n int) string {
	switch n {
	case 0:
		fallthrough
	case 1:
		return "small"
	default:
		return "big"
	}
}`, "f")
	check(t, got, `
b0 entry: -> b3 b4 b5
	n
b1 exit:
b2 switch.done: -> b1
b3 switch.case: -> b4
	0
	fallthrough
b4 switch.case: -> b1
	1
	return "small"
b5 switch.default: -> b1
	return "big"
b6 unreachable: -> b2
b7 unreachable: -> b2
b8 unreachable: -> b2
`)
}

// TestLoopsRecorded pins the Loop records the ctxdone analyzer uses.
func TestLoopsRecorded(t *testing.T) {
	src := `package p
func f(xs []int) {
	for {
		for _, x := range xs {
			_ = x
		}
	}
}`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	fn := file.Decls[0].(*ast.FuncDecl)
	g := cfg.New(fn.Body)
	if len(g.Loops) != 2 {
		t.Fatalf("Loops = %d, want 2", len(g.Loops))
	}
	outer := g.Loops[0]
	if _, ok := outer.Stmt.(*ast.ForStmt); !ok {
		t.Errorf("outer loop is %T, want *ast.ForStmt", outer.Stmt)
	}
	if outer.Head == nil || outer.Body == nil || outer.Follow == nil {
		t.Errorf("outer loop has nil fields: %+v", outer)
	}
	if g.LoopOf(outer.Stmt) != outer {
		t.Errorf("LoopOf does not round-trip")
	}
	preds := g.Preds()
	if len(preds[outer.Head]) < 2 {
		t.Errorf("loop head should have an entry edge and a back edge, got %d preds", len(preds[outer.Head]))
	}
}
