// Package cfg builds per-function control-flow graphs from go/ast for
// the msf-lint dataflow analyzers. It is the stdlib-only analogue of
// golang.org/x/tools/go/cfg, rebuilt here (like the rest of
// internal/analysis) because the repository vendors no third-party code.
//
// The graph is purely syntactic: a Block holds the statements and
// control expressions executed straight-line, in order, and Succs are
// the possible continuations. Branches (if/for/range/switch/select),
// labeled break/continue, goto, fallthrough, and panicking/terminating
// calls (panic, os.Exit, log.Fatal*, runtime.Goexit) all produce edges;
// defer statements are additionally collected on the Graph so analyzers
// can process the deferred calls at function exit, where they run.
//
// Select statements get one node for the SelectStmt itself (in the
// block that reaches it — its blocking-ness is what lockhold inspects)
// and one successor block per case whose first node is the case's comm
// statement; that comm is also exposed as Block.Comm so analyzers can
// tell "the receive that fired" apart from a free-standing blocking
// receive.
package cfg

import (
	"fmt"
	"go/ast"
	"go/printer"
	"go/token"
	"sort"
	"strings"
)

// Block is one straight-line run of nodes.
type Block struct {
	Index int
	// Kind names what created the block: entry, exit, if.then, if.else,
	// if.done, for.head, for.body, for.post, for.done, range.head,
	// range.body, range.done, switch.case, switch.default, switch.done,
	// select.case, select.default, select.done, label, unreachable.
	Kind string
	// Comm is the comm statement of a select.case block (also its first
	// node), nil for every other kind.
	Comm ast.Stmt
	// Nodes are the statements and control expressions of the block in
	// execution order. Condition expressions of if/for appear as bare
	// ast.Expr nodes; a RangeStmt or SelectStmt appears as its own node
	// in the head block (bodies are in successor blocks).
	Nodes []ast.Node
	Succs []*Block
}

// Loop records one for/range loop's skeleton.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Head is the block back edges land on (condition/range block).
	Head *Block
	// Body is the loop body's entry block.
	Body *Block
	// Follow is where break (and a false condition) lands.
	Follow *Block
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry, Exit *Block
	Blocks      []*Block
	// Defers lists every defer statement in source order; the deferred
	// calls run at Exit in LIFO order.
	Defers []*ast.DeferStmt
	// Loops lists every for/range loop, outermost first.
	Loops []*Loop

	loopOf map[ast.Stmt]*Loop
}

// LoopOf returns the Loop record of a ForStmt/RangeStmt, or nil.
func (g *Graph) LoopOf(s ast.Stmt) *Loop { return g.loopOf[s] }

// Preds computes the predecessor lists of every block.
func (g *Graph) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// New builds the CFG of body. body may come from a FuncDecl or a
// FuncLit; nested function literals are NOT descended into (each gets
// its own graph via its own New call).
func New(body *ast.BlockStmt) *Graph {
	b := &builder{
		g:      &Graph{loopOf: map[ast.Stmt]*Loop{}},
		labels: map[string]*Block{},
	}
	b.g.Entry = b.newBlock("entry")
	b.g.Exit = b.newBlock("exit")
	b.cur = b.g.Entry
	b.stmts(body.List)
	// A function whose last statement terminated leaves the builder
	// parked on an empty unreachable stub; drop it rather than give it
	// an exit edge.
	if b.cur.Kind == "unreachable" && len(b.cur.Nodes) == 0 && len(b.cur.Succs) == 0 &&
		len(b.g.Blocks) > 0 && b.g.Blocks[len(b.g.Blocks)-1] == b.cur {
		b.g.Blocks = b.g.Blocks[:len(b.g.Blocks)-1]
	} else {
		b.jump(b.g.Exit)
	}
	return b.g
}

// target is one enclosing breakable/continuable construct.
type target struct {
	label   string
	breakTo *Block
	contTo  *Block // nil for switch/select
}

type builder struct {
	g            *Graph
	cur          *Block
	targets      []target
	labels       map[string]*Block // goto/label targets, created on demand
	pendingLabel string
	fallTo       *Block // fallthrough target inside a switch case
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.g.Blocks), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// jump links the current block to blk (no-op when cur already ended in
// a terminator and was replaced by an unreachable stub — those still
// get the edge; unreachable stubs simply have no predecessors).
func (b *builder) jump(blk *Block) { edge(b.cur, blk) }

// terminated parks the builder on a fresh predecessor-less block after
// return/goto/break/panic.
func (b *builder) terminated() { b.cur = b.newBlock("unreachable") }

// labelBlock returns (creating on demand) the block a label names.
func (b *builder) labelBlock(name string) *Block {
	if blk, ok := b.labels[name]; ok {
		return blk
	}
	blk := b.newBlock("label")
	b.labels[name] = blk
	return blk
}

func (b *builder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *builder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		lb := b.labelBlock(s.Label.Name)
		b.jump(lb)
		b.cur = lb
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Cond)
		head := b.cur
		then := b.newBlock("if.then")
		done := b.newBlock("if.done")
		els := done
		if s.Else != nil {
			els = b.newBlock("if.else")
		}
		edge(head, then)
		edge(head, els)
		b.cur = then
		b.stmts(s.Body.List)
		b.jump(done)
		if s.Else != nil {
			b.cur = els
			b.stmt(s.Else)
			b.jump(done)
		}
		b.cur = done

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		head := b.newBlock("for.head")
		b.jump(head)
		body := b.newBlock("for.body")
		done := b.newBlock("for.done")
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
		}
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			edge(head, body)
			edge(head, done)
		} else {
			edge(head, body)
		}
		contTo := head
		if post != nil {
			contTo = post
		}
		lp := &Loop{Stmt: s, Head: head, Body: body, Follow: done}
		b.g.Loops = append(b.g.Loops, lp)
		b.g.loopOf[s] = lp
		b.targets = append(b.targets, target{label: label, breakTo: done, contTo: contTo})
		b.cur = body
		b.stmts(s.Body.List)
		b.jump(contTo)
		if post != nil {
			b.cur = post
			b.cur.Nodes = append(b.cur.Nodes, s.Post)
			b.jump(head)
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		head := b.newBlock("range.head")
		head.Nodes = append(head.Nodes, s)
		b.jump(head)
		body := b.newBlock("range.body")
		done := b.newBlock("range.done")
		edge(head, body)
		edge(head, done)
		lp := &Loop{Stmt: s, Head: head, Body: body, Follow: done}
		b.g.Loops = append(b.g.Loops, lp)
		b.g.loopOf[s] = lp
		b.targets = append(b.targets, target{label: label, breakTo: done, contTo: head})
		b.cur = body
		b.stmts(s.Body.List)
		b.jump(head)
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		if s.Tag != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Tag)
		}
		b.switchBody(label, s.Body, nil)

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.cur.Nodes = append(b.cur.Nodes, s.Init)
		}
		b.cur.Nodes = append(b.cur.Nodes, s.Assign)
		b.switchBody(label, s.Body, nil)

	case *ast.SelectStmt:
		label := b.takeLabel()
		b.cur.Nodes = append(b.cur.Nodes, s)
		head := b.cur
		done := b.newBlock("select.done")
		b.targets = append(b.targets, target{label: label, breakTo: done})
		hasDefault := false
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
				hasDefault = true
			}
			blk := b.newBlock(kind)
			blk.Comm = cc.Comm
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			edge(head, blk)
			b.cur = blk
			b.stmts(cc.Body)
			b.jump(done)
		}
		if len(s.Body.List) == 0 {
			// select {} blocks forever: no successors out of head.
			_ = hasDefault
		}
		b.targets = b.targets[:len(b.targets)-1]
		b.cur = done

	case *ast.ReturnStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		b.jump(b.g.Exit)
		b.terminated()

	case *ast.BranchStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		switch s.Tok {
		case token.BREAK:
			if t := b.findTarget(s.Label, false); t != nil {
				b.jump(t.breakTo)
			}
			b.terminated()
		case token.CONTINUE:
			if t := b.findTarget(s.Label, true); t != nil {
				b.jump(t.contTo)
			}
			b.terminated()
		case token.GOTO:
			b.jump(b.labelBlock(s.Label.Name))
			b.terminated()
		case token.FALLTHROUGH:
			if b.fallTo != nil {
				b.jump(b.fallTo)
			}
			b.terminated()
		}

	case *ast.DeferStmt:
		b.g.Defers = append(b.g.Defers, s)
		b.cur.Nodes = append(b.cur.Nodes, s)

	case *ast.ExprStmt:
		b.cur.Nodes = append(b.cur.Nodes, s)
		if call, ok := s.X.(*ast.CallExpr); ok && isTerminalCall(call) {
			b.jump(b.g.Exit)
			b.terminated()
		}

	case *ast.EmptyStmt:
		// nothing

	default:
		// AssignStmt, DeclStmt, IncDecStmt, GoStmt, SendStmt, ...
		b.cur.Nodes = append(b.cur.Nodes, s)
	}
}

// switchBody builds the case blocks of a (type) switch. The head is the
// current block; each clause gets its own block whose first nodes are
// the clause expressions.
func (b *builder) switchBody(label string, body *ast.BlockStmt, _ *Block) {
	head := b.cur
	done := b.newBlock("switch.done")
	b.targets = append(b.targets, target{label: label, breakTo: done})

	clauses := make([]*ast.CaseClause, 0, len(body.List))
	for _, c := range body.List {
		clauses = append(clauses, c.(*ast.CaseClause))
	}
	blocks := make([]*Block, len(clauses))
	hasDefault := false
	for i, cc := range clauses {
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		for _, e := range cc.List {
			blocks[i].Nodes = append(blocks[i].Nodes, e)
		}
		edge(head, blocks[i])
	}
	savedFall := b.fallTo
	for i, cc := range clauses {
		if i+1 < len(blocks) {
			b.fallTo = blocks[i+1]
		} else {
			b.fallTo = done
		}
		b.cur = blocks[i]
		b.stmts(cc.Body)
		b.jump(done)
	}
	b.fallTo = savedFall
	if !hasDefault {
		edge(head, done)
	}
	b.targets = b.targets[:len(b.targets)-1]
	b.cur = done
}

// findTarget resolves a break/continue to its enclosing construct.
func (b *builder) findTarget(label *ast.Ident, needCont bool) *target {
	for i := len(b.targets) - 1; i >= 0; i-- {
		t := &b.targets[i]
		if label != nil {
			if t.label == label.Name && (!needCont || t.contTo != nil) {
				return t
			}
			continue
		}
		if needCont && t.contTo == nil {
			continue
		}
		return t
	}
	return nil
}

// isTerminalCall reports whether call never returns: the panic builtin
// and the conventional process/goroutine terminators. Syntactic only —
// an import renamed away from "os"/"log"/"runtime" defeats it, which is
// acceptable for a lint CFG (the result is extra, not missing, paths).
func isTerminalCall(call *ast.CallExpr) bool {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch pkg.Name + "." + fun.Sel.Name {
		case "os.Exit", "runtime.Goexit",
			"log.Fatal", "log.Fatalf", "log.Fatalln":
			return true
		}
	}
	return false
}

// Dump renders the graph as stable text for golden tests and debugging:
// one paragraph per block, nodes rendered compactly via go/printer.
func (g *Graph) Dump(fset *token.FileSet) string {
	var sb strings.Builder
	blocks := append([]*Block(nil), g.Blocks...)
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Index < blocks[j].Index })
	for _, b := range blocks {
		fmt.Fprintf(&sb, "b%d %s:", b.Index, b.Kind)
		if len(b.Succs) > 0 {
			succ := make([]string, len(b.Succs))
			for i, s := range b.Succs {
				succ[i] = fmt.Sprintf("b%d", s.Index)
			}
			fmt.Fprintf(&sb, " -> %s", strings.Join(succ, " "))
		}
		sb.WriteByte('\n')
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, "\t%s\n", renderNode(fset, n))
		}
	}
	return sb.String()
}

// renderNode prints one node on one line, truncated; composite
// statements that own successor blocks get short custom forms.
func renderNode(fset *token.FileSet, n ast.Node) string {
	switch n := n.(type) {
	case *ast.RangeStmt:
		head := "range " + renderNode(fset, n.X)
		switch {
		case n.Key != nil && n.Value != nil:
			head = renderNode(fset, n.Key) + ", " + renderNode(fset, n.Value) + " := " + head
		case n.Key != nil:
			head = renderNode(fset, n.Key) + " := " + head
		}
		return head
	case *ast.SelectStmt:
		return "select"
	case *ast.DeferStmt:
		return "defer " + renderNode(fset, n.Call)
	case *ast.GoStmt:
		return "go " + renderNode(fset, n.Call)
	}
	var buf strings.Builder
	cfgPrinter.Fprint(&buf, fset, n)
	out := strings.Join(strings.Fields(buf.String()), " ")
	const max = 60
	if len(out) > max {
		out = out[:max] + "…"
	}
	return out
}

var cfgPrinter = printer.Config{Mode: printer.RawFormat}
