// Package brokenv2 deliberately violates the five v2 concurrency
// invariants with miniatures of the real engine and daemon code — a
// writemin-shaped race slot decoded raw, a serve-shaped queue that
// blocks under its mutex and leaks its worker goroutine, a handler
// that double-writes, and an error overwritten unchecked. The smoke
// test asserts each analyzer fires here, proving the CI gate would
// catch the same regression in internal/writemin or internal/serve.
package brokenv2

import (
	"net/http"
	"sync"
	"sync/atomic"
)

// --- atomicpack: writemin-shaped race slots with a raw decode.

type races struct {
	//msf:packed
	best []atomic.Uint64
	lens []int
}

//msf:packer
func raceKey(rank uint32, idx int) uint64 {
	return uint64(rank)<<32 | uint64(uint32(idx))
}

func (r *races) race(v int, rank uint32, idx int) {
	r.best[v].Store(raceKey(rank, idx))
}

func (r *races) winner(v int) int {
	b := r.best[v].Load()
	return r.lens[uint32(b)] // atomicpack: truncation outside the unpacker
}

// --- lockhold: a queue that publishes while holding its mutex.

type queue struct {
	mu   sync.Mutex
	jobs chan int
}

func (q *queue) submit(j int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.jobs <- j // lockhold: blocking send inside the critical section
}

// --- ctxdone: worker goroutine with no shutdown escape.

func (q *queue) start() {
	go func() {
		for { // ctxdone: loops forever, no quit channel
			j := <-q.jobs
			_ = j
		}
	}()
}

// --- onceresp: handler missing the return after its error write.

//msf:respwrite
func writeErr(w http.ResponseWriter, status int) {
	w.WriteHeader(status)
}

func (q *queue) handle(w http.ResponseWriter, r *http.Request) {
	if len(q.jobs) == 0 {
		writeErr(w, http.StatusNotFound)
	}
	writeErr(w, http.StatusOK) // onceresp: second status on the empty path
}

// --- errflow: error overwritten before any check.

func step() error { return nil }

func run() error {
	err := step()
	err = step() // errflow: first failure dropped unread
	return err
}
