// Package broken deliberately violates the repo invariants; the smoke
// test asserts msf-lint's checker reports it (the ISSUE's "plain read
// of a marked slice must fail" acceptance case).
package broken

import "sync/atomic"

func plainRead(n int) int64 {
	color := make([]int64, n) // accessed atomically
	atomic.StoreInt64(&color[0], 1)
	return color[0] // plain read: atomicslice must flag this
}
