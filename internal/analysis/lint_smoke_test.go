package analysis_test

import (
	"path/filepath"
	"strings"
	"testing"

	"pmsf/internal/analysis/checker"
	"pmsf/internal/analysis/load"
	"pmsf/internal/analysis/suite"
)

// TestRepoClean is the smoke test the CI gate relies on: the whole
// module must come back diagnostic-free from every analyzer (the exact
// work `msf-lint ./...` does).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	pkgs, err := load.Load("", "pmsf/...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("suspiciously few packages loaded: %d", len(pkgs))
	}
	diags, err := checker.Run(pkgs, suite.All())
	if err != nil {
		t.Fatalf("checker: %v", err)
	}
	for _, d := range diags {
		t.Errorf("repo is not lint-clean: %s", d)
	}
}

// TestBrokenInvariantReported pins the other half of the contract:
// deliberately breaking an invariant (a plain read of a slice marked
// "// accessed atomically") must produce a diagnostic.
func TestBrokenInvariantReported(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "broken"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load("", dir)
	if err != nil {
		t.Fatalf("loading broken fixture: %v", err)
	}
	diags, err := checker.Run(pkgs, suite.All())
	if err != nil {
		t.Fatalf("checker: %v", err)
	}
	found := false
	for _, d := range diags {
		if d.Analyzer == "atomicslice" && strings.Contains(d.Message, "non-atomic access") {
			found = true
		}
	}
	if !found {
		t.Errorf("expected an atomicslice diagnostic for the plain read, got %d diagnostics: %v", len(diags), diags)
	}
}

// TestSuiteSmoke seeds one violation per v2 concurrency analyzer —
// miniatures of the writemin race slots and the serve queue/handlers —
// and asserts every analyzer fires. This is the CI step proving the
// gate catches each regression class, not just that the tree is clean.
func TestSuiteSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "brokenv2"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := load.Load("", dir)
	if err != nil {
		t.Fatalf("loading brokenv2 fixture: %v", err)
	}
	diags, err := checker.Run(pkgs, suite.All())
	if err != nil {
		t.Fatalf("checker: %v", err)
	}
	want := map[string]string{
		"atomicpack": "raw integer conversion",
		"lockhold":   "blocking inside a critical section",
		"ctxdone":    "no ctx.Done()/quit escape",
		"onceresp":   "status already written",
		"errflow":    "overwritten before the previous error",
	}
	for analyzer, substr := range want {
		found := false
		for _, d := range diags {
			if d.Analyzer == analyzer && strings.Contains(d.Message, substr) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s did not fire on its seeded violation (want message containing %q); got: %v",
				analyzer, substr, diags)
		}
	}
	for _, d := range diags {
		if _, ok := want[d.Analyzer]; !ok {
			t.Errorf("unexpected analyzer fired on brokenv2: %s", d)
		}
	}
}
