// Package a exercises the atomicslice analyzer with the mstbc
// color/visited access patterns: CAS claims, atomic loads/stores, and
// the plain accesses that break the benign-race discipline.
package a

import "sync/atomic"

//msf:atomic color
func growTree(v int32, color []int64, my int64) {
	if !atomic.CompareAndSwapInt64(&color[v], 0, my) { // ok: the claim CAS
		return
	}
	_ = atomic.LoadInt64(&color[v]) // ok
	if color[v] == 0 {              // want "non-atomic access to color"
		return
	}
	color[v] = my // want "non-atomic access to color"
}

func roundLoop(n int) {
	visited := make([]int32, n) // accessed atomically
	color := make([]int64, n)   // accessed atomically

	atomic.StoreInt32(&visited[0], 1)
	if atomic.LoadInt32(&visited[1]) != 0 {
		_ = visited[2] // want "non-atomic access to visited"
	}
	for _, c := range color { // want "range over color"
		_ = c
	}
	tail := color[1:] // want "subslice of color"
	_ = tail
	alias := visited // want "alias alias of visited"
	_ = alias
	handoff(visited) // ok: whole-slice hand-off to a marked parameter
	_ = len(color)   // ok

	plain := make([]int64, n)
	plain[0] = 1 // ok: unmarked slice
	_ = plain

	suppressed := color[2:] //msf:ignore atomicslice fixture proves the suppression grammar works
	_ = suppressed
}

//msf:atomic visited
func handoff(visited []int32) {
	atomic.AddInt32(&visited[0], 1)
}
