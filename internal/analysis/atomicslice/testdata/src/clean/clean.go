// Package clean is the atomicslice negative fixture: a fully
// disciplined mstbc-style claim loop that must produce no diagnostics.
package clean

import "sync/atomic"

//msf:atomic color visited
func claim(order []int32, color []int64, visited []int32, my int64) int64 {
	var grown int64
	for _, v := range order {
		if !atomic.CompareAndSwapInt64(&color[v], 0, my) {
			continue
		}
		if atomic.LoadInt32(&visited[v]) == 0 {
			atomic.StoreInt32(&visited[v], 1)
			grown++
		}
	}
	return grown
}

func driver(n int) int64 {
	color := make([]int64, n)   // accessed atomically
	visited := make([]int32, n) // accessed atomically
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	return claim(order, color, visited, 1)
}
