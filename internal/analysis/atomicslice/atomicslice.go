// Package atomicslice enforces the repo's benign-race discipline: a
// slice declared with an "// accessed atomically" marker (the
// mstbc color/visited arrays of Bader & Cong §5) may only be read and
// written through sync/atomic calls on &s[i]. Plain element reads or
// writes, range statements and subslicing all alias elements outside
// the atomic protocol and are reported; passing the whole slice to
// another function is an explicit hand-off and is allowed, provided the
// receiving parameter is itself marked (via the //msf:atomic directive
// on the callee's doc comment).
package atomicslice

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"pmsf/internal/analysis"
)

// Marker is the comment text that marks a slice declaration.
const Marker = "accessed atomically"

// Analyzer is the atomicslice analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "atomicslice",
	Doc: "slices marked \"// accessed atomically\" must only be touched " +
		"through sync/atomic operations on &s[i]",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		marked := markedObjects(pass, f)
		if len(marked) == 0 {
			continue
		}
		checkFile(pass, f, marked)
	}
	return nil
}

// markedObjects collects the slice variables of one file carrying the
// marker: trailing or preceding "// accessed atomically" comments on
// := assignments, var specs and struct fields, plus parameters named by
// an //msf:atomic doc directive.
func markedObjects(pass *analysis.Pass, f *ast.File) map[types.Object]bool {
	lines := analysis.MarkerLines(pass.Fset, f, Marker)
	// A trailing marker belongs to the declaration on its own line; only
	// a marker on a line of its own applies to the line below. Record
	// which lines hold declarations so a marked decl doesn't bleed onto
	// its neighbour (visited/color sit on adjacent lines in mstbc).
	declLine := map[int]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.AssignStmt, *ast.ValueSpec:
			declLine[pass.Fset.Position(n.Pos()).Line] = true
		}
		return true
	})
	markedAt := func(pos token.Pos) bool {
		l := pass.Fset.Position(pos).Line
		return lines[l] || (lines[l-1] && !declLine[l-1])
	}
	marked := map[types.Object]bool{}
	add := func(id *ast.Ident) {
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		if _, ok := types.Unalias(obj.Type()).(*types.Slice); ok {
			marked[obj] = true
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if markedAt(n.Pos()) {
				for _, lhs := range n.Lhs {
					if id, ok := lhs.(*ast.Ident); ok {
						add(id)
					}
				}
			}
		case *ast.ValueSpec:
			if markedAt(n.Pos()) {
				for _, id := range n.Names {
					add(id)
				}
			}
		case *ast.FuncDecl:
			args, ok := analysis.FuncDirective(n, "atomic")
			if !ok {
				return true
			}
			for _, field := range n.Type.Params.List {
				for _, id := range field.Names {
					for _, want := range args {
						if id.Name == want {
							add(id)
						}
					}
				}
			}
		}
		return true
	})
	return marked
}

func checkFile(pass *analysis.Pass, f *ast.File, marked map[types.Object]bool) {
	info := pass.TypesInfo
	isMarked := func(e ast.Expr) (string, bool) {
		id, ok := e.(*ast.Ident)
		if !ok {
			return "", false
		}
		obj := info.Uses[id]
		if obj == nil || !marked[obj] {
			return "", false
		}
		return id.Name, true
	}

	analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
		switch n := n.(type) {
		case *ast.IndexExpr:
			name, ok := isMarked(n.X)
			if !ok {
				return true
			}
			if atomicArg(info, n, stack) {
				return true
			}
			pass.Reportf(n.Pos(),
				"non-atomic access to %s[...] (slice is marked %q); go through sync/atomic on &%s[i]",
				name, Marker, name)
		case *ast.SliceExpr:
			if name, ok := isMarked(n.X); ok {
				pass.Reportf(n.Pos(),
					"subslice of %s (marked %q) aliases its elements outside the atomic protocol", name, Marker)
			}
		case *ast.RangeStmt:
			if name, ok := isMarked(n.X); ok {
				pass.Reportf(n.X.Pos(),
					"range over %s (marked %q) reads elements non-atomically", name, Marker)
			}
		case *ast.AssignStmt:
			// A bare alias x := s silently drops the marker. Aliases are
			// fine when the new name is marked on its own declaration.
			for i, rhs := range n.Rhs {
				name, ok := isMarked(rhs)
				if !ok {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := objOf(info, id); obj != nil && marked[obj] {
							continue
						}
						pass.Reportf(n.Pos(),
							"alias %s of %s (marked %q) drops the marker; mark the new variable too",
							id.Name, name, Marker)
					}
				}
			}
		}
		return true
	})
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// atomicArg reports whether the indexed access appears as &s[i] passed
// directly to a sync/atomic operation.
func atomicArg(info *types.Info, ix *ast.IndexExpr, stack []ast.Node) bool {
	if len(stack) < 2 {
		return false
	}
	unary, ok := stack[len(stack)-1].(*ast.UnaryExpr)
	if !ok || unary.Op != token.AND || unary.X != ast.Expr(ix) {
		return false
	}
	call, ok := stack[len(stack)-2].(*ast.CallExpr)
	if !ok {
		return false
	}
	pkg, name, ok := analysis.CallPkg(info, call)
	if !ok || pkg != "sync/atomic" {
		return false
	}
	for _, prefix := range []string{"Load", "Store", "Add", "Swap", "CompareAndSwap", "And", "Or"} {
		if strings.HasPrefix(name, prefix) {
			return true
		}
	}
	return false
}
