package atomicslice_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/atomicslice"
)

func TestFixtures(t *testing.T) {
	if testing.Short() {
		t.Skip("invokes the go tool")
	}
	antest.Run(t, atomicslice.Analyzer, antest.Fixture("a"))
	antest.Run(t, atomicslice.Analyzer, antest.Fixture("clean"))
}
