// Package ctxdone keeps goroutines drainable: every `go func` whose
// body loops unboundedly must, on some path of every such loop, receive
// from a shutdown signal — ctx.Done(), a quit/stop channel — in a way
// that actually exits the loop. Without that, the serve daemon's
// graceful drain leaks the goroutine forever.
//
// The check is CFG-based, which lets it catch the classic trap: `break`
// inside a `select` case breaks the select, not the loop, so
//
//	for {
//		select {
//		case <-ctx.Done():
//			break // loops forever
//		...
//	}
//
// has a Done case yet no escape; the analyzer follows the case block's
// successors and reports when none of them leave the loop without
// passing its head again.
//
// Loops that terminate on their own are exempt: ranges (including
// range-over-channel, which ends when the producer closes the channel)
// and for loops with a condition. Only `for { ... }` inside a
// go-launched function literal is held to the rule.
package ctxdone

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/cfg"
)

// Analyzer is the ctxdone analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "ctxdone",
	Doc: "every goroutine launched with `go func` whose body loops forever " +
		"must select on a ctx.Done()/quit channel that exits the loop, so " +
		"shutdown cannot leak it",
	Run: run,
}

// doneName matches channel identifiers that conventionally signal
// shutdown.
var doneName = regexp.MustCompile(`(?i)(quit|done|stop|shut|clos|exit|cancel|drain)`)

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gs.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkGoroutine(pass, lit.Body)
			return true
		})
	}
	return nil
}

func checkGoroutine(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	for _, lp := range g.Loops {
		fs, ok := lp.Stmt.(*ast.ForStmt)
		if !ok || fs.Cond != nil {
			continue // range or conditioned loop: terminates on its own
		}
		inLoop := loopBlocks(g, lp)
		var trapped []*cfg.Block // done-receives that cannot exit the loop
		escaped := false
		for _, blk := range inLoop {
			n := doneReceiveIn(pass.TypesInfo, blk)
			if n == nil {
				continue
			}
			if exitsLoop(g, lp, blk) {
				escaped = true
				break
			}
			trapped = append(trapped, blk)
		}
		if escaped {
			continue
		}
		if len(trapped) > 0 {
			pass.Reportf(trapped[0].Comm.Pos(),
				"this shutdown-channel receive never exits the enclosing loop "+
					"(a plain `break` in a select case breaks the select, not the loop); "+
					"the goroutine leaks on drain")
			continue
		}
		pass.Reportf(fs.For,
			"goroutine loop has no ctx.Done()/quit escape on any path; "+
				"drain leaks this goroutine")
	}
}

// loopBlocks returns the candidate blocks of lp's body: everything
// reachable from the head without crossing the loop's follow block or
// the function exit. This keeps the escape blocks themselves (a select
// case whose body is `return` flows straight to exit and could never
// reach the head again) while excluding the code after the loop.
func loopBlocks(g *cfg.Graph, lp *cfg.Loop) []*cfg.Block {
	reach := map[*cfg.Block]bool{}
	var fwd func(b *cfg.Block)
	fwd = func(b *cfg.Block) {
		if reach[b] || b == g.Exit || b == lp.Follow {
			return
		}
		reach[b] = true
		for _, s := range b.Succs {
			fwd(s)
		}
	}
	fwd(lp.Head)

	var out []*cfg.Block
	for _, b := range g.Blocks {
		if reach[b] {
			out = append(out, b)
		}
	}
	return out
}

// doneReceiveIn returns a node of blk that receives from a shutdown
// signal: the comm of a select case, or a standalone receive statement.
func doneReceiveIn(info *types.Info, blk *cfg.Block) ast.Node {
	if blk.Comm != nil && commIsDoneReceive(info, blk.Comm) {
		return blk.Comm
	}
	for _, n := range blk.Nodes {
		if s, ok := n.(ast.Stmt); ok && commIsDoneReceive(info, s) {
			return n
		}
	}
	return nil
}

func commIsDoneReceive(info *types.Info, comm ast.Stmt) bool {
	var recv ast.Expr
	switch c := comm.(type) {
	case *ast.ExprStmt:
		recv = c.X
	case *ast.AssignStmt:
		if len(c.Rhs) == 1 {
			recv = c.Rhs[0]
		}
	}
	ue, ok := recv.(*ast.UnaryExpr)
	if !ok {
		return false
	}
	return isDoneChan(info, ue.X)
}

// isDoneChan reports whether e is a shutdown-signal channel: the result
// of a Done() method (context.Context, job handles, ...) or a channel
// variable/field whose name says quit/stop/done/....
func isDoneChan(info *types.Info, e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CallExpr:
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Done"
		}
	case *ast.Ident:
		return doneName.MatchString(e.Name)
	case *ast.SelectorExpr:
		return doneName.MatchString(e.Sel.Name)
	}
	return false
}

// exitsLoop reports whether control can flow from blk out of the loop —
// to the loop's follow block or the function exit — without first
// passing the loop head again.
func exitsLoop(g *cfg.Graph, lp *cfg.Loop, blk *cfg.Block) bool {
	seen := map[*cfg.Block]bool{lp.Head: true}
	var walk func(b *cfg.Block) bool
	walk = func(b *cfg.Block) bool {
		if b == g.Exit || b == lp.Follow {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	for _, s := range blk.Succs {
		if walk(s) {
			return true
		}
	}
	return false
}
