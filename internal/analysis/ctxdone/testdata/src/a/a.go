// Package a is the ctxdone fixture: go-launched infinite loops must
// have a shutdown-channel escape; naturally terminating loops and
// correct select-on-done patterns stay silent.
package a

import "context"

type svc struct {
	work chan int
	quit chan struct{}
}

// leaky loops forever with no shutdown signal at all.
func (s *svc) leaky() {
	go func() {
		for { // want "no ctx.Done../quit escape"
			v := <-s.work
			_ = v
		}
	}()
}

// breakTrap has the Done case but `break` only leaves the select: the
// loop (and the goroutine) survives drain.
func (s *svc) breakTrap(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done(): // want "never exits the enclosing loop"
				break
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// returnOnDone is the blessed pattern. Must stay silent.
func (s *svc) returnOnDone(ctx context.Context) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// labeledBreak exits through a labeled break: the CFG must see the
// escape even though the `break` names the loop, not the select.
func (s *svc) labeledBreak() {
	go func() {
	loop:
		for {
			select {
			case <-s.quit:
				break loop
			case v := <-s.work:
				_ = v
			}
		}
	}()
}

// rangeChan drains on close — inherently shutdown-safe. Must stay
// silent.
func (s *svc) rangeChan() {
	go func() {
		for v := range s.work {
			_ = v
		}
	}()
}

// boundedLoop terminates on its own condition. Must stay silent.
func (s *svc) boundedLoop(n int) {
	go func() {
		for i := 0; i < n; i++ {
			s.work <- i
		}
	}()
}

// standaloneRecv parks directly on the quit channel each round; the
// receive unblocks only at shutdown and the loop then returns. Silent.
func (s *svc) standaloneRecv() {
	go func() {
		for {
			select {
			case v := <-s.work:
				_ = v
			case <-s.quit:
				return
			}
		}
	}()
}

// notAGoroutine: the same leaky shape outside `go` is some caller's
// problem (it blocks the caller, which is visible); ctxdone stays
// silent.
func (s *svc) notAGoroutine() {
	for {
		v, ok := <-s.work
		if !ok {
			return
		}
		_ = v
	}
}
