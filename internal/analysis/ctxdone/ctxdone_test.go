package ctxdone_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/ctxdone"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, ctxdone.Analyzer, antest.Fixture("a"))
}
