// Package errflow tracks error values from their producing call to a
// check. An error variable becomes "unchecked" when a call assigns it
// and stays unchecked until any read — an `if err != nil`, an
// errors.Is, logging it, returning it — consumes the value. Two
// terminal sins are reported:
//
//   - the variable is overwritten by another call while still
//     unchecked (the first failure is silently dropped), and
//   - a `return nil` in the error position executes while an unchecked
//     error is live (the caller is told everything succeeded).
//
// The analysis is flow-sensitive over the CFG: an error checked on one
// branch but not the other is still unchecked at the join. Deliberate
// discards stay available — `_ = err` is a read. Variables captured by
// closures, goroutines, or defers are excluded (their reads happen on
// another control flow), as are named result parameters (naked returns
// read them implicitly). Test files are skipped.
package errflow

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/cfg"
	"pmsf/internal/analysis/dataflow"
)

// Analyzer is the errflow analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc: "an error assigned from a call must be read before it is " +
		"overwritten or control returns nil in the error position",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Type, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Type, n.Body)
			}
			return true
		})
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

type state struct {
	pass     *analysis.Pass
	info     *types.Info
	excluded map[types.Object]bool // captured by closures / named results
	errPos   []int                 // indexes of error results in the signature
	nresults int
}

func checkFunc(pass *analysis.Pass, ftyp *ast.FuncType, body *ast.BlockStmt) {
	st := &state{pass: pass, info: pass.TypesInfo, excluded: map[types.Object]bool{}}

	// Named results are read by naked returns and deferred recover
	// blocks; exclude them.
	if ftyp.Results != nil {
		idx := 0
		for _, field := range ftyp.Results.List {
			n := len(field.Names)
			if n == 0 {
				n = 1
			}
			for i := 0; i < n; i++ {
				if tv, ok := st.info.Types[field.Type]; ok && isErrorType(tv.Type) {
					st.errPos = append(st.errPos, idx)
				}
				idx++
			}
			for _, name := range field.Names {
				if obj := st.info.Defs[name]; obj != nil {
					st.excluded[obj] = true
				}
			}
		}
		st.nresults = idx
	}

	// Variables referenced inside nested function literals live on a
	// different control flow; exclude them wholesale.
	for _, stmt := range body.List {
		ast.Inspect(stmt, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if obj := st.info.Uses[id]; obj != nil && isErrorType(obj.Type()) {
						st.excluded[obj] = true
					}
				}
				return true
			})
			return false
		})
	}

	g := cfg.New(body)
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Set[types.Object]]{
		Boundary: dataflow.Set[types.Object]{},
		Init:     dataflow.Set[types.Object]{},
		Join:     dataflow.Union[types.Object],
		Equal:    dataflow.EqualSets[types.Object],
		Transfer: st.transfer,
	})

	reported := map[ast.Node]bool{}
	for _, blk := range g.Blocks {
		live := res.In[blk]
		for _, n := range blk.Nodes {
			st.report(n, live, reported)
			live = st.transfer(n, live)
		}
	}
}

// transfer: reads kill, call-assignments gen, nil/copy assignments
// reset.
func (st *state) transfer(n ast.Node, in dataflow.Set[types.Object]) dataflow.Set[types.Object] {
	out := in
	for _, obj := range st.reads(n) {
		if out.Has(obj) {
			out = out.Clone()
			break
		}
	}
	for _, obj := range st.reads(n) {
		out.Delete(obj)
	}
	gens, resets := st.writes(n)
	if len(gens) > 0 || len(resets) > 0 {
		out = out.Clone()
	}
	for _, obj := range resets {
		out.Delete(obj)
	}
	for _, obj := range gens {
		out.Add(obj)
	}
	return out
}

// report flags overwrites of live errors and nil returns past them.
func (st *state) report(n ast.Node, live dataflow.Set[types.Object], reported map[ast.Node]bool) {
	if reported[n] {
		return
	}
	// After this node's reads, which errors are still unchecked?
	after := live.Clone()
	for _, obj := range st.reads(n) {
		after.Delete(obj)
	}

	gens, resets := st.writes(n)
	for _, obj := range append(gens, resets...) {
		if after.Has(obj) {
			reported[n] = true
			st.pass.Reportf(n.Pos(),
				"%s is overwritten before the previous error in it is checked", obj.Name())
			return
		}
	}

	if ret, ok := n.(*ast.ReturnStmt); ok && len(after) > 0 && st.returnsNilError(ret) {
		reported[n] = true
		st.pass.Reportf(ret.Pos(),
			"return nil while the error in %s is unchecked: the failure is dropped",
			nameList(after))
	}
}

// reads returns the error-typed objects read by n (LHS targets of
// assignments excluded). Nested function literals, selects, and range
// bodies are not part of this node.
func (st *state) reads(n ast.Node) []types.Object {
	var out []types.Object
	lhs := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok {
				lhs[id] = true
			}
		}
	}
	root := n
	if rs, ok := n.(*ast.RangeStmt); ok {
		root = rs.X
	}
	if _, ok := n.(*ast.SelectStmt); ok {
		return nil
	}
	ast.Inspect(root, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if lhs[m] {
				return true
			}
			if obj := st.info.Uses[m]; obj != nil && isErrorType(obj.Type()) && !st.excluded[obj] {
				out = append(out, obj)
			}
		}
		return true
	})
	return out
}

// writes splits the error-typed objects written by n into gens (the
// right-hand side contains a call, so a live error may arrive) and
// resets (nil or a copy: the previous obligation moves or dies).
func (st *state) writes(n ast.Node) (gens, resets []types.Object) {
	classify := func(names []*ast.Ident, rhs []ast.Expr, def bool) {
		fromCall := false
		for _, r := range rhs {
			ast.Inspect(r, func(m ast.Node) bool {
				if _, ok := m.(*ast.FuncLit); ok {
					return false
				}
				if _, ok := m.(*ast.CallExpr); ok {
					fromCall = true
					return false
				}
				return true
			})
		}
		for _, id := range names {
			var obj types.Object
			if def {
				obj = st.info.Defs[id]
			} else {
				obj = st.info.Uses[id]
			}
			if obj == nil || !isErrorType(obj.Type()) || st.excluded[obj] {
				continue
			}
			if fromCall {
				gens = append(gens, obj)
			} else {
				resets = append(resets, obj)
			}
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		var names []*ast.Ident
		for _, l := range n.Lhs {
			if id, ok := ast.Unparen(l).(*ast.Ident); ok && id.Name != "_" {
				names = append(names, id)
			}
		}
		// := mixes defs and uses; resolve per ident.
		for _, id := range names {
			def := st.info.Defs[id] != nil
			classify([]*ast.Ident{id}, n.Rhs, def)
		}
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return nil, nil
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			classify(vs.Names, vs.Values, true)
		}
	}
	return gens, resets
}

// returnsNilError reports whether ret explicitly returns nil in an
// error result position.
func (st *state) returnsNilError(ret *ast.ReturnStmt) bool {
	if len(ret.Results) != st.nresults || len(st.errPos) == 0 {
		return false
	}
	for _, i := range st.errPos {
		if i >= len(ret.Results) {
			continue
		}
		if id, ok := ast.Unparen(ret.Results[i]).(*ast.Ident); ok && id.Name == "nil" {
			return true
		}
	}
	return false
}

func nameList(s dataflow.Set[types.Object]) string {
	var names []string
	for obj := range s {
		names = append(names, obj.Name())
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
