// Package a is the errflow fixture: errors produced by calls must be
// read before being overwritten or abandoned by a nil return. Checks on
// every path, deliberate discards, closure captures, and named results
// stay silent.
package a

import "errors"

var errSentinel = errors.New("sentinel")

func step1() error        { return nil }
func pair() (int, error)  { return 0, nil }
func use2(a, b int) error { _, _ = a, b; return nil }
func sink(err error)      { _ = err }

// overwrite drops step1's failure by reassigning before any read.
func overwrite() error {
	err := step1()
	err = step2() // want "err is overwritten before the previous error"
	return err
}

func step2() error { return nil }

// reuse does the same through a := that redeclares only w.
func reuse() error {
	v, err := pair()
	w, err := pair() // want "err is overwritten before the previous error"
	if err != nil {
		return err
	}
	return use2(v, w)
}

// drop checks err only under v > 0; the other path returns nil with the
// error still live.
func drop() error {
	v, err := pair()
	if v > 0 {
		if err != nil {
			return err
		}
	}
	return nil // want "return nil while the error in err is unchecked"
}

// checked is the straight-line happy path. Silent.
func checked() error {
	v, err := pair()
	if err != nil {
		return err
	}
	return use2(v, v)
}

// branchChecked kills the error on both arms before the nil return.
// Silent.
func branchChecked(b bool) error {
	err := step1()
	if b {
		if err != nil {
			return err
		}
	} else if err != nil {
		return err
	}
	return nil
}

// discard reads the error into the blank identifier — an explicit
// decision. Silent.
func discard() {
	err := step1()
	_ = err
}

// logged passes the error to a consumer; that is a read. Silent.
func logged() error {
	err := step1()
	sink(err)
	return nil
}

// sentinelCheck reads through errors.Is. Silent.
func sentinelCheck() error {
	err := step1()
	if errors.Is(err, errSentinel) {
		return nil
	}
	return err
}

// captured errors flow through another control flow entirely; excluded.
// Silent.
func captured() error {
	var err error
	fn := func() { err = step1() }
	fn()
	return err
}

// named results are read by the naked return. Silent.
func named() (err error) {
	err = step1()
	return
}
