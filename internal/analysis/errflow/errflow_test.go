package errflow_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/errflow"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, errflow.Analyzer, antest.Fixture("a"))
}
