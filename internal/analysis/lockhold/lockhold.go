// Package lockhold forbids blocking operations while a sync.Mutex or
// sync.RWMutex is held. A goroutine that parks inside a critical
// section — on a channel, a select with no default, a Team phase
// dispatch, an engine run, or an HTTP response write — extends the
// critical section by an unbounded wait and is one lock-ordering
// mistake away from deadlocking the serve daemon (a Team phase inside a
// lock is the nested-dispatch hazard teamlifecycle guards, with the
// lock as the second resource).
//
// The check is path-sensitive over the cfg package's graphs: the set of
// held mutexes is a forward dataflow fact, so a lock released on one
// branch but not another is tracked per path. Select statements that
// carry a default case do not block (the serve queue's admission and
// publish fast paths rely on exactly this), so their comm sends and
// receives are exempt. `defer mu.Unlock()` is recognized as holding the
// lock until function exit — blocking ops after it still fire, because
// the lock really is held there.
//
// The analysis is intraprocedural: a call to a helper that blocks
// internally is not seen. Goroutine and defer bodies are analyzed as
// their own functions with an empty lock set.
package lockhold

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"pmsf/internal/analysis"
	"pmsf/internal/analysis/cfg"
	"pmsf/internal/analysis/dataflow"
)

const (
	parPath  = "pmsf/internal/par"
	pmsfPath = "pmsf"
)

// Analyzer is the lockhold analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "lockhold",
	Doc: "no blocking operation (channel send/receive, select without default, " +
		"Team phase dispatch, engine invocation, HTTP response write) on any " +
		"path while a sync.Mutex/RWMutex is held",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					checkFunc(pass, n.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, n.Body)
			}
			return true
		})
	}
	return nil
}

// lockOp matches mu.Lock()/RLock()/Unlock()/RUnlock() on a sync mutex
// and returns the lock's identity (the rendered receiver expression)
// and whether the op acquires.
func lockOp(info *types.Info, n ast.Node) (key string, acquire, ok bool) {
	es, isExpr := n.(*ast.ExprStmt)
	if !isExpr {
		return "", false, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return "", false, false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
	default:
		return "", false, false
	}
	tv, hasType := info.Types[sel.X]
	if !hasType || tv.Type == nil {
		return "", false, false
	}
	if !analysis.IsNamed(tv.Type, "sync", "Mutex") && !analysis.IsNamed(tv.Type, "sync", "RWMutex") {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	g := cfg.New(body)

	transfer := func(n ast.Node, in dataflow.Set[string]) dataflow.Set[string] {
		key, acquire, ok := lockOp(info, n)
		if !ok {
			return in
		}
		if acquire && !in.Has(key) {
			out := in.Clone()
			out.Add(key)
			return out
		}
		if !acquire && in.Has(key) {
			out := in.Clone()
			out.Delete(key)
			return out
		}
		return in
	}
	res := dataflow.Solve(g, dataflow.Problem[dataflow.Set[string]]{
		Join:     dataflow.Union[string],
		Equal:    dataflow.EqualSets[string],
		Transfer: transfer,
	})

	reported := map[token.Pos]bool{}
	for _, blk := range g.Blocks {
		held := res.In[blk]
		for _, n := range blk.Nodes {
			if len(held) > 0 {
				reportBlocking(pass, n, blk, held, reported)
			}
			held = transfer(n, held)
		}
	}
}

// reportBlocking flags the blocking operations inside node n given the
// held-lock set.
func reportBlocking(pass *analysis.Pass, n ast.Node, blk *cfg.Block, held dataflow.Set[string], reported map[token.Pos]bool) {
	info := pass.TypesInfo

	report := func(pos token.Pos, what string) {
		if reported[pos] {
			return
		}
		reported[pos] = true
		keys := held.Keys()
		sort.Strings(keys)
		pass.Reportf(pos, "%s while %s is held: blocking inside a critical section",
			what, strings.Join(keys, ", "))
	}

	// A select's comm statements block only through the select itself,
	// which is judged by its default-lessness below.
	if blk.Comm != nil && n == blk.Comm {
		return
	}
	switch n := n.(type) {
	case *ast.SelectStmt:
		for _, c := range n.Body.List {
			if c.(*ast.CommClause).Comm == nil {
				return // has a default: never blocks
			}
		}
		report(n.Select, "select with no default case")
		return
	case *ast.RangeStmt:
		if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
			if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
				report(n.For, "range over a channel")
			}
		}
		return
	case *ast.GoStmt, *ast.DeferStmt:
		// The started goroutine blocks on its own stack; the deferred
		// call runs at exit. Neither blocks here.
		return
	}

	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt, *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			report(m.Arrow, "channel send")
		case *ast.UnaryExpr:
			if m.Op == token.ARROW {
				report(m.OpPos, "channel receive")
			}
		case *ast.CallExpr:
			if what, ok := blockingCall(info, m); ok {
				report(m.Pos(), what)
			}
		}
		return true
	})
}

// blockingCall classifies calls from the known blocking-op list.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		name := sel.Sel.Name
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			switch {
			case analysis.IsNamed(tv.Type, parPath, "Team") &&
				(name == "Run" || name == "For" || name == "ForDynamic"):
				return "Team." + name + " phase dispatch", true
			case analysis.IsNamed(tv.Type, "sync", "WaitGroup") && name == "Wait":
				return "WaitGroup.Wait", true
			case analysis.IsNamed(tv.Type, "net/http", "ResponseWriter") &&
				(name == "Write" || name == "WriteHeader"):
				return "HTTP response write", true
			}
		}
	}
	if pkg, name, ok := analysis.CallPkg(info, call); ok {
		if pkg == pmsfPath && (name == "MinimumSpanningForest" || name == "ConnectedComponents") {
			return "engine invocation pmsf." + name, true
		}
		if pkg == "net/http" && (name == "Error" || name == "NotFound" || name == "Redirect" || name == "ServeFile") {
			return "HTTP response write", true
		}
	}
	return "", false
}
