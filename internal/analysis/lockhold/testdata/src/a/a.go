// Package a is the lockhold fixture: blocking ops inside critical
// sections must be flagged; non-blocking patterns (select with default,
// unlock-before-block, goroutine bodies) must stay silent.
package a

import (
	"sync"

	"pmsf/internal/par"
)

type box struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	ch   chan int
	subs map[chan int]struct{}
}

// sendWhileLocked is the basic true positive.
func (b *box) sendWhileLocked(v int) {
	b.mu.Lock()
	b.ch <- v // want "channel send while b.mu is held"
	b.mu.Unlock()
}

// recvUnderDefer: defer Unlock holds the lock to function exit, so the
// receive still blocks inside the critical section.
func (b *box) recvUnderDefer() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return <-b.ch // want "channel receive while b.mu is held"
}

// selectNoDefault blocks until a case fires.
func (b *box) selectNoDefault() {
	b.rw.Lock()
	select { // want "select with no default case while b.rw is held"
	case v := <-b.ch:
		_ = v
	}
	b.rw.Unlock()
}

// publish is the serve idiom: select WITH default never blocks — the
// sends are comm cases of a non-blocking dispatch. Must stay silent.
func (b *box) publish(v int) {
	b.mu.Lock()
	for ch := range b.subs {
		select {
		case ch <- v:
		default:
		}
	}
	b.mu.Unlock()
}

// unlockFirst releases before blocking. Must stay silent.
func (b *box) unlockFirst(v int) {
	b.mu.Lock()
	b.subs[b.ch] = struct{}{}
	b.mu.Unlock()
	b.ch <- v
}

// branchRelease unlocks on every path before the blocking op, including
// an early return; the path-sensitive fact must not leak across.
func (b *box) branchRelease(ok bool, v int) {
	b.mu.Lock()
	if !ok {
		b.mu.Unlock()
		return
	}
	b.mu.Unlock()
	b.ch <- v
}

// oneArmStillLocked releases on only one branch: the send after the
// merge blocks while the lock may still be held.
func (b *box) oneArmStillLocked(ok bool, v int) {
	b.mu.Lock()
	if ok {
		b.mu.Unlock()
	}
	b.ch <- v // want "channel send while b.mu is held"
	if !ok {
		b.mu.Unlock()
	}
}

// phaseUnderLock dispatches a Team phase inside a critical section: the
// workers can outlive the section and a worker that needs the lock
// deadlocks.
func (b *box) phaseUnderLock(t *par.Team, body func(int)) {
	b.mu.Lock()
	t.Run(body) // want "Team.Run phase dispatch while b.mu is held"
	b.mu.Unlock()
}

// goroutineBody: the launched goroutine has its own empty lock set; its
// send does not block the locker. Must stay silent.
func (b *box) goroutineBody(v int) {
	b.mu.Lock()
	go func() {
		b.ch <- v
	}()
	b.mu.Unlock()
}

// rangeChanLocked iterates a channel while holding the lock.
func (b *box) rangeChanLocked() {
	b.mu.Lock()
	defer b.mu.Unlock()
	for v := range b.ch { // want "range over a channel while b.mu is held"
		_ = v
	}
}

// twoLocks reports every held lock in the message.
func (b *box) twoLocks(v int) {
	b.mu.Lock()
	b.rw.RLock()
	b.ch <- v // want "channel send while b.mu, b.rw is held"
	b.rw.RUnlock()
	b.mu.Unlock()
}
