package lockhold_test

import (
	"testing"

	"pmsf/internal/analysis/antest"
	"pmsf/internal/analysis/lockhold"
)

func TestFixtures(t *testing.T) {
	antest.Run(t, lockhold.Analyzer, antest.Fixture("a"))
}
