// Package sorts implements the sorting routines the paper's compact-graph
// steps are built on: an O(n²) insertion sort for the many short
// adjacency lists of very sparse graphs, a non-recursive (bottom-up)
// O(n log n) merge sort for long lists, a hybrid of the two, a parallel
// sample sort in the style of Helman and JáJá for the global edge sort of
// Bor-EL, and a parallel counting sort for grouping vertices by
// supervertex label.
package sorts

import (
	"sync/atomic"

	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/rng"
)

// counted wraps less with a comparison counter flushed into the
// obs.SortComparisons counter when the returned flush func runs. When
// metrics are disabled it returns less unchanged and a no-op flush.
func counted[T any](less func(x, y T) bool) (func(x, y T) bool, func()) {
	if !obs.MetricsOn() {
		return less, func() {}
	}
	var cmps atomic.Int64
	wrapped := func(x, y T) bool {
		cmps.Add(1)
		return less(x, y)
	}
	return wrapped, func() { obs.SortComparisons.Add(cmps.Load()) }
}

// InsertionCutoff is the default list length below which insertion sort is
// used instead of merge sort. Profiling in the paper showed ~80% of
// per-vertex lists of a 1M-vertex, 6M-edge random graph have at most 100
// elements, where insertion sort wins.
const InsertionCutoff = 32

// Insertion sorts a in place with insertion sort.
func Insertion[T any](a []T, less func(x, y T) bool) {
	for i := 1; i < len(a); i++ {
		v := a[i]
		j := i - 1
		for j >= 0 && less(v, a[j]) {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = v
	}
}

// MergeBottomUp sorts a in place with a non-recursive bottom-up merge
// sort, using buf (which must be at least len(a) long) as scratch. Runs
// of insertionBase elements are first sorted with insertion sort, then
// doubled-width merge passes alternate between a and buf.
func MergeBottomUp[T any](a, buf []T, less func(x, y T) bool) {
	n := len(a)
	const insertionBase = 16
	if n <= insertionBase {
		Insertion(a, less)
		return
	}
	if len(buf) < n {
		panic("sorts: merge buffer too small")
	}
	buf = buf[:n]
	for lo := 0; lo < n; lo += insertionBase {
		hi := lo + insertionBase
		if hi > n {
			hi = n
		}
		Insertion(a[lo:hi], less)
	}
	src, dst := a, buf
	for width := insertionBase; width < n; width *= 2 {
		for lo := 0; lo < n; lo += 2 * width {
			mid := lo + width
			hi := lo + 2*width
			if mid > n {
				mid = n
			}
			if hi > n {
				hi = n
			}
			mergeInto(dst[lo:hi], src[lo:mid], src[mid:hi], less)
		}
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// mergeInto merges sorted x and y into out (len(out) == len(x)+len(y)).
// The merge is stable: ties are taken from x first.
func mergeInto[T any](out, x, y []T, less func(a, b T) bool) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if less(y[j], x[i]) {
			out[k] = y[j]
			j++
		} else {
			out[k] = x[i]
			i++
		}
		k++
	}
	for i < len(x) {
		out[k] = x[i]
		i++
		k++
	}
	for j < len(y) {
		out[k] = y[j]
		j++
		k++
	}
}

// Hybrid sorts a with insertion sort when len(a) < cutoff and bottom-up
// merge sort otherwise; buf is scratch for the merge path and may be nil
// when len(a) < cutoff. This is the per-adjacency-list sort of Bor-AL.
func Hybrid[T any](a, buf []T, cutoff int, less func(x, y T) bool) {
	if len(a) < cutoff {
		Insertion(a, less)
		return
	}
	MergeBottomUp(a, buf, less)
}

// IsSorted reports whether a is non-decreasing under less.
func IsSorted[T any](a []T, less func(x, y T) bool) bool {
	for i := 1; i < len(a); i++ {
		if less(a[i], a[i-1]) {
			return false
		}
	}
	return true
}

// SampleSort sorts a with p workers using sample sort: oversample, select
// p-1 splitters, scatter into buckets with a count/scan/scatter pass, and
// sort buckets independently. Falls back to sequential merge sort for
// small inputs or p == 1. seed determines splitter sampling only; the
// result is always exactly sorted.
func SampleSort[T any](p int, a []T, less func(x, y T) bool, seed uint64) {
	n := len(a)
	if obs.MetricsOn() {
		obs.SortElements.Add(int64(n))
	}
	less, flush := counted(less)
	defer flush()
	const seqCutoff = 1 << 14
	if p <= 1 || n < seqCutoff {
		buf := make([]T, n)
		MergeBottomUp(a, buf, less)
		return
	}
	p = par.Clamp(p, n)

	// Oversample: c*p candidates, sort them, take every c-th as splitter.
	const oversample = 32
	r := rng.New(seed)
	sampleN := oversample * p
	sample := make([]T, sampleN)
	for i := range sample {
		sample[i] = a[r.Intn(n)]
	}
	sbuf := make([]T, sampleN)
	MergeBottomUp(sample, sbuf, less)
	splitters := make([]T, p-1)
	for i := 1; i < p; i++ {
		splitters[i-1] = sample[i*oversample-1]
	}

	// Classify: per-worker bucket counts.
	nb := p
	counts := make([][]int64, p)
	ranges := par.Split(n, p)
	par.Do(p, func(w int) {
		c := make([]int64, nb)
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			c[bucketOf(a[i], splitters, less)]++
		}
		counts[w] = c
	})

	// Offsets: bucket-major exclusive scan over (bucket, worker).
	bucketStart := make([]int64, nb+1)
	for b := 0; b < nb; b++ {
		var total int64
		for w := 0; w < p; w++ {
			total += counts[w][b]
		}
		bucketStart[b+1] = bucketStart[b] + total
	}
	offsets := make([][]int64, p)
	for w := 0; w < p; w++ {
		offsets[w] = make([]int64, nb)
	}
	for b := 0; b < nb; b++ {
		pos := bucketStart[b]
		for w := 0; w < p; w++ {
			offsets[w][b] = pos
			pos += counts[w][b]
		}
	}

	// Scatter into the shared output buffer.
	out := make([]T, n)
	par.Do(p, func(w int) {
		off := offsets[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			b := bucketOf(a[i], splitters, less)
			out[off[b]] = a[i]
			off[b]++
		}
	})

	// Sort buckets independently; dynamic scheduling absorbs skew.
	par.ForDynamic(p, nb, 1, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			seg := out[bucketStart[b]:bucketStart[b+1]]
			buf := make([]T, len(seg))
			MergeBottomUp(seg, buf, less)
		}
	})
	copy(a, out)
}

// bucketOf returns the index of the first splitter >= v (binary search),
// i.e. the bucket that v belongs to.
func bucketOf[T any](v T, splitters []T, less func(x, y T) bool) int {
	lo, hi := 0, len(splitters)
	for lo < hi {
		mid := (lo + hi) / 2
		if less(splitters[mid], v) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// CountingGroup groups the keys 0..k-1: given keys[i] in [0, k), it
// returns order (a permutation of [0, len(keys)) such that keys are
// non-decreasing along order, stable within a key) and starts (length
// k+1) with group g occupying order[starts[g]:starts[g+1]]. The pass is
// parallelized over p workers with per-worker count arrays.
func CountingGroup(p int, keys []int32, k int) (order []int32, starts []int64) {
	n := len(keys)
	p = par.Clamp(p, n)
	if p > 8 {
		p = 8 // per-worker count arrays are O(k); cap the memory blowup
	}
	counts := make([][]int64, p)
	ranges := par.Split(n, p)
	par.Do(p, func(w int) {
		c := make([]int64, k)
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			c[keys[i]]++
		}
		counts[w] = c
	})
	starts = make([]int64, k+1)
	for g := 0; g < k; g++ {
		var total int64
		for w := 0; w < p; w++ {
			total += counts[w][g]
		}
		starts[g+1] = starts[g] + total
	}
	offsets := make([][]int64, p)
	for w := 0; w < p; w++ {
		offsets[w] = make([]int64, k)
	}
	for g := 0; g < k; g++ {
		pos := starts[g]
		for w := 0; w < p; w++ {
			offsets[w][g] = pos
			pos += counts[w][g]
		}
	}
	order = make([]int32, n)
	par.Do(p, func(w int) {
		off := offsets[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			g := keys[i]
			order[off[g]] = int32(i)
			off[g]++
		}
	})
	return order, starts
}
