package sorts

// The paper's Kruskal baseline uses a NON-recursive merge sort after the
// authors measured it against qsort, GNU quicksort and recursive merge
// sort and found it superior for large inputs (Section 5.2). This file
// provides the competitors so the claim is reproducible
// (BenchmarkAblationKruskalSort).

// Quicksort sorts a in place with a median-of-three quicksort that falls
// back to insertion sort below a small cutoff — the classic qsort
// engineering.
func Quicksort[T any](a []T, less func(x, y T) bool) {
	const cutoff = 12
	for len(a) > cutoff {
		p := partition(a, less)
		// Recurse into the smaller half; loop on the larger to bound the
		// stack at O(log n).
		if p < len(a)-p-1 {
			Quicksort(a[:p], less)
			a = a[p+1:]
		} else {
			Quicksort(a[p+1:], less)
			a = a[:p]
		}
	}
	Insertion(a, less)
}

// partition performs a Hoare-style partition around the median of the
// first, middle and last elements and returns the pivot's final index.
func partition[T any](a []T, less func(x, y T) bool) int {
	n := len(a)
	mid := n / 2
	// Median-of-three into a[0].
	if less(a[mid], a[0]) {
		a[mid], a[0] = a[0], a[mid]
	}
	if less(a[n-1], a[0]) {
		a[n-1], a[0] = a[0], a[n-1]
	}
	if less(a[n-1], a[mid]) {
		a[n-1], a[mid] = a[mid], a[n-1]
	}
	// Pivot (the median) to position n-2; a[n-1] is a sentinel >= pivot.
	a[mid], a[n-2] = a[n-2], a[mid]
	pivot := a[n-2]
	i, j := 0, n-2
	for {
		for i++; less(a[i], pivot); i++ {
		}
		for j--; less(pivot, a[j]); j-- {
		}
		if i >= j {
			break
		}
		a[i], a[j] = a[j], a[i]
	}
	a[i], a[n-2] = a[n-2], a[i]
	return i
}

// MergeRecursive sorts a with the textbook top-down recursive merge sort,
// using buf (>= len(a)) as scratch. Included as the baseline the paper's
// authors rejected in favor of the bottom-up variant.
func MergeRecursive[T any](a, buf []T, less func(x, y T) bool) {
	if len(a) < 2 {
		return
	}
	if len(buf) < len(a) {
		panic("sorts: merge buffer too small")
	}
	mid := len(a) / 2
	MergeRecursive(a[:mid], buf, less)
	MergeRecursive(a[mid:], buf, less)
	copy(buf, a[:mid])
	// Merging the copied left half with the in-place right half is safe:
	// the write position i+j never passes the right-half read position
	// mid+j because i <= mid.
	mergeInto(a, buf[:mid:mid], a[mid:], less)
}
