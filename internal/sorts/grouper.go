package sorts

import (
	"pmsf/internal/par"
)

// Grouper is the reusable, team-based counterpart of CountingGroup: a
// stable counting sort of int32 keys in [0, k) that writes the
// grouped order and the k+1 segment starts into caller-owned buffers.
// The per-worker count slab is grown on demand and reused, so once a
// run has seen its largest k (the first Borůvka round), subsequent
// Group calls allocate nothing.
type Grouper struct {
	p    int
	team *par.Team

	counts []int64 // per-worker counts, worker-major, p*k in use

	keys   []int32
	k      int
	n      int
	order  []int32
	starts []int64

	countBody   func(int)
	scatterBody func(int)
}

// NewGrouper returns a grouper running its phases on team (of size p).
func NewGrouper(p int, team *par.Team) *Grouper {
	g := &Grouper{p: p, team: team}
	g.countBody = g.countWork
	g.scatterBody = g.scatterWork
	return g
}

// Group computes the stable grouped order of keys (values in [0, k))
// into order (length len(keys)) and the segment boundaries into starts
// (length k+1): group g occupies order[starts[g]:starts[g+1]].
func (g *Grouper) Group(keys []int32, k int, order []int32, starts []int64) {
	g.keys, g.k, g.n, g.order, g.starts = keys, k, len(keys), order, starts
	if need := g.p * k; cap(g.counts) < need {
		g.counts = make([]int64, need)
	} else {
		g.counts = g.counts[:need]
	}
	g.team.Run(g.countBody)
	// Exclusive scan in (group, worker) order: starts per group, then
	// per-worker scatter offsets left in place of the counts.
	var pos int64
	for grp := 0; grp < k; grp++ {
		starts[grp] = pos
		for w := 0; w < g.p; w++ {
			i := w*k + grp
			v := g.counts[i]
			g.counts[i] = pos
			pos += v
		}
	}
	starts[k] = pos
	g.team.Run(g.scatterBody)
	g.keys = nil
}

//msf:noalloc
func (g *Grouper) countWork(w int) {
	lo, hi := par.Block(g.n, g.p, w)
	c := g.counts[w*g.k : (w+1)*g.k]
	for i := range c {
		c[i] = 0
	}
	keys := g.keys
	for i := lo; i < hi; i++ {
		c[keys[i]]++
	}
}

//msf:noalloc
func (g *Grouper) scatterWork(w int) {
	lo, hi := par.Block(g.n, g.p, w)
	off := g.counts[w*g.k : (w+1)*g.k]
	keys, order := g.keys, g.order
	for i := lo; i < hi; i++ {
		k := keys[i]
		order[off[k]] = int32(i)
		off[k]++
	}
}
