package sorts

import (
	"math"

	"pmsf/internal/graph"
)

// RadixSortWEdges sorts the Bor-EL working list by (U, V, W, ID) with a
// least-significant-digit radix sort over 16-bit digits: two passes for
// the edge id, four for the monotone-mapped weight bits, two for V and
// two for U — ten stable counting-sort passes, O(n) each. No
// comparisons, no branches on keys: on large lists this trades the
// sample sort's n·log n branch-missing comparisons for 10 linear sweeps.
// buf must be at least len(a); the sorted result ends in a.
//
// It is exposed through boruvka.SortRadix and compared against the
// comparison sorts by BenchmarkAblationELSortEngine.
func RadixSortWEdges(a, buf []graph.WEdge) {
	n := len(a)
	if n < 2 {
		return
	}
	if len(buf) < n {
		panic("sorts: radix buffer too small")
	}
	buf = buf[:n]

	src, dst := a, buf
	// Pass plan: least significant key first.
	// ID: bits 0-15, 16-31 (int32, non-negative).
	for shift := 0; shift < 32; shift += 16 {
		radixPass(src, dst, func(e graph.WEdge) int {
			return int(uint32(e.ID)>>shift) & 0xffff
		})
		src, dst = dst, src
	}
	// W: monotone uint64 mapping of the float64 bits, 4×16-bit digits.
	for shift := 0; shift < 64; shift += 16 {
		radixPass(src, dst, func(e graph.WEdge) int {
			return int(floatKey(e.W)>>shift) & 0xffff
		})
		src, dst = dst, src
	}
	// V then U (int32 vertex ids, non-negative).
	for _, field := range []func(graph.WEdge) uint32{
		func(e graph.WEdge) uint32 { return uint32(e.V) },
		func(e graph.WEdge) uint32 { return uint32(e.U) },
	} {
		f := field
		for shift := 0; shift < 32; shift += 16 {
			radixPass(src, dst, func(e graph.WEdge) int {
				return int(f(e)>>shift) & 0xffff
			})
			src, dst = dst, src
		}
	}
	// Ten passes (even) land the result back in a; keep the copy as a
	// safeguard against plan changes.
	if &src[0] != &a[0] {
		copy(a, src)
	}
}

// radixPass stable-scatters src into dst by a 16-bit digit.
func radixPass(src, dst []graph.WEdge, digit func(graph.WEdge) int) {
	var counts [1 << 16]int32
	for _, e := range src {
		counts[digit(e)]++
	}
	var sum int32
	for i := range counts {
		c := counts[i]
		counts[i] = sum
		sum += c
	}
	for _, e := range src {
		d := digit(e)
		dst[counts[d]] = e
		counts[d]++
	}
}

// floatKey maps a float64 to a uint64 whose unsigned order matches the
// float order (NaN excluded by graph validation): positive values get
// the sign bit set, negative values are bit-flipped.
func floatKey(w float64) uint64 {
	if w == 0 {
		w = 0 // collapse -0.0 onto +0.0 so ties break by id, like the comparators
	}
	b := math.Float64bits(w)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}
