package sorts

import (
	"fmt"
	"sort"
	"testing"

	"pmsf/internal/rng"
)

func benchInput(n int) []int {
	r := rng.New(42)
	a := make([]int, n)
	for i := range a {
		a[i] = int(r.Uint64() >> 1)
	}
	return a
}

func BenchmarkSequentialSorts(b *testing.B) {
	const n = 1 << 16
	base := benchInput(n)
	runs := []struct {
		name string
		run  func([]int)
	}{
		{"merge-bottomup", func(a []int) { MergeBottomUp(a, make([]int, len(a)), intLess) }},
		{"merge-recursive", func(a []int) { MergeRecursive(a, make([]int, len(a)), intLess) }},
		{"quicksort", func(a []int) { Quicksort(a, intLess) }},
		{"stdlib", func(a []int) { sort.Ints(a) }},
	}
	for _, r := range runs {
		b.Run(r.name, func(b *testing.B) {
			a := make([]int, n)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(a, base)
				b.StartTimer()
				r.run(a)
			}
		})
	}
}

func BenchmarkParallelSorts(b *testing.B) {
	const n = 1 << 18
	base := benchInput(n)
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("sample/p=%d", p), func(b *testing.B) {
			a := make([]int, n)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(a, base)
				b.StartTimer()
				SampleSort(p, a, intLess, 1)
			}
		})
		b.Run(fmt.Sprintf("merge/p=%d", p), func(b *testing.B) {
			a := make([]int, n)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(a, base)
				b.StartTimer()
				ParallelMergeSort(p, a, intLess)
			}
		})
	}
}

func BenchmarkCountingGroup(b *testing.B) {
	const n, k = 1 << 18, 1 << 12
	r := rng.New(7)
	keys := make([]int32, n)
	for i := range keys {
		keys[i] = int32(r.Intn(k))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountingGroup(4, keys, k)
	}
}

func BenchmarkInsertionCutover(b *testing.B) {
	// Where insertion sort stops beating merge sort — the measurement
	// behind InsertionCutoff.
	for _, n := range []int{8, 16, 32, 64, 128} {
		base := benchInput(n)
		b.Run(fmt.Sprintf("insertion/n=%d", n), func(b *testing.B) {
			a := make([]int, n)
			for i := 0; i < b.N; i++ {
				copy(a, base)
				Insertion(a, intLess)
			}
		})
		b.Run(fmt.Sprintf("merge/n=%d", n), func(b *testing.B) {
			a := make([]int, n)
			buf := make([]int, n)
			for i := 0; i < b.N; i++ {
				copy(a, base)
				MergeBottomUp(a, buf, intLess)
			}
		})
	}
}
