package sorts

// The packed-key parallel radix compactor is the engine behind the
// default Bor-EL compact-graph step. The paper's formulation sorts the
// working edge list by the full (U, V, W, ID) key and keeps the head of
// every duplicate run; profiling shows that sort dominating every
// iteration. Two observations shrink it:
//
//  1. Only (U, V) needs to be SORTED. The weight and the id merely pick
//     the representative of each duplicate run, so a per-run (W, ID)
//     min-reduction replaces six of the ten radix passes outright.
//  2. Both endpoints are supervertex ids below the current supervertex
//     count n, so (U, V) packs into a single uint64 of 2·ceil(log2 n)
//     significant bits. The digit width is chosen from that bit count:
//     early rounds of a 1M-vertex graph need 3 passes, and late rounds
//     (n ≤ 256) need exactly 1 — against the fixed 10 passes of
//     RadixSortWEdges and the n·log n comparisons of the sample sort.
//
// Every pass runs as a per-worker-histogram counting sort on a
// persistent par.Team, and all state lives in buffers the caller
// (boruvka.Workspace) reuses across rounds, so the steady-state
// iteration performs zero heap allocations.

import (
	"math/bits"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
)

// maxDigitBits caps the radix digit width; the histogram slab holds
// p << maxDigitBits counters.
const maxDigitBits = 16

// PackWidth returns the bit width b such that every vertex id in [0, n)
// fits in b bits (at least 1). The packed (U, V) key is U<<b | V, a
// 2b-bit integer whose unsigned order is the lexicographic (U, V) order.
func PackWidth(n int) uint {
	if n < 2 {
		return 1
	}
	return uint(bits.Len32(uint32(n - 1)))
}

// RadixPlan returns the pass count and uniform digit width the compactor
// uses for supervertex count n: passes = ceil(2b/16) and digitBits =
// ceil(2b/passes), which balances the digits (e.g. 2b=40 gives three
// 14-bit passes instead of two 16-bit and one 8-bit).
func RadixPlan(n int) (passes int, digitBits uint) {
	total := 2 * PackWidth(n)
	passes = int((total + maxDigitBits - 1) / maxDigitBits)
	digitBits = (total + uint(passes) - 1) / uint(passes)
	return passes, digitBits
}

// Compactor is the reusable parallel packed-key radix compaction engine.
// Create one per run with NewCompactor and call Compact once per Borůvka
// round; the per-worker histogram slab and the prebound phase bodies are
// allocated once, so steady-state calls allocate nothing.
//
// A Compactor is owned by a single goroutine; the parallelism comes from
// the team it runs its phases on.
type Compactor struct {
	p    int
	team *par.Team

	hist   []int32 // per-worker histograms, worker-major, p << digitBits in use
	wcount []int64 // per-worker counts / exclusive offsets for the head pack

	// Per-call state read by the prebound worker bodies.
	src, dst  []graph.WEdge
	m         int
	width     uint
	shift     uint
	digitBits uint
	mask      uint64
	keepIdx   []int32
	kept      int
	out       []graph.WEdge
	starts    []int64
	n         int

	countBody       func(int)
	scatterBody     func(int)
	headCountBody   func(int)
	headScatterBody func(int)
	reduceBody      func(worker, lo, hi int)
	startsClearBody func(int)
	startsMarkBody  func(int)

	// Passes and LastDigitBits describe the most recent Compact call
	// (recorded as span attributes by the caller).
	Passes        int
	LastDigitBits uint
}

// NewCompactor returns a compactor running its phases on team (whose
// size must be p).
func NewCompactor(p int, team *par.Team) *Compactor {
	c := &Compactor{
		p:      p,
		team:   team,
		hist:   make([]int32, p<<maxDigitBits),
		wcount: make([]int64, p),
	}
	c.countBody = c.countWork
	c.scatterBody = c.scatterWork
	c.headCountBody = c.headCountWork
	c.headScatterBody = c.headScatterWork
	c.reduceBody = c.reduceWork
	c.startsClearBody = c.startsClearWork
	c.startsMarkBody = c.startsMarkWork
	return c
}

// Compact sorts edges by the packed (U, V) key, drops self-loops,
// reduces every duplicate (U, V) run to its minimum-(W, ID) edge, and
// fills starts (length n+1) with the per-vertex segment boundaries. It
// returns the compacted list and the buffer to pass as spare next round
// (the two ping-pong across calls).
//
// Requirements: cap(spare) >= len(edges), len(keepIdx) >= len(edges),
// len(starts) == n+1, and every endpoint in [0, n).
//
//msf:noalloc
func (c *Compactor) Compact(edges, spare []graph.WEdge, n int, keepIdx []int32, starts []int64) (out, newSpare []graph.WEdge) {
	m := len(edges)
	c.m, c.n, c.starts, c.keepIdx = m, n, starts, keepIdx
	c.width = PackWidth(n)
	passes, digitBits := RadixPlan(n)
	c.digitBits = digitBits
	c.mask = uint64(1)<<digitBits - 1
	c.Passes, c.LastDigitBits = passes, digitBits
	if m == 0 {
		for i := range starts {
			starts[i] = 0
		}
		return edges, spare
	}

	src, dst := edges, spare[:m]
	nd := 1 << digitBits
	for pass := 0; pass < passes; pass++ {
		c.shift = uint(pass) * digitBits
		c.src, c.dst = src, dst
		c.team.Run(c.countBody)
		// Offsets: digit-major exclusive scan over (digit, worker), so
		// workers scatter their contiguous blocks in order — a stable pass.
		var sum int32
		for d := 0; d < nd; d++ {
			for w := 0; w < c.p; w++ {
				i := w<<digitBits + d
				v := c.hist[i]
				c.hist[i] = sum
				sum += v
			}
		}
		c.team.Run(c.scatterBody)
		src, dst = dst, src
	}

	// src is sorted by (U, V); pack the heads of the non-self-loop runs.
	c.src = src
	c.team.Run(c.headCountBody)
	var total int64
	for w := 0; w < c.p; w++ {
		v := c.wcount[w]
		c.wcount[w] = total
		total += v
	}
	c.kept = int(total)
	c.team.Run(c.headScatterBody)

	// Min-reduce each run into the spare buffer.
	c.out = dst[:c.kept]
	c.team.ForDynamic(c.kept, 256, c.reduceBody)

	// Segment starts: first occurrence of each U, then backward fill.
	c.team.Run(c.startsClearBody)
	starts[n] = total
	c.team.Run(c.startsMarkBody)
	for v := n - 1; v >= 0; v-- {
		if starts[v] < 0 {
			starts[v] = starts[v+1]
		}
	}

	if obs.MetricsOn() {
		obs.RadixPasses.Add(int64(passes))
		obs.SortElements.Add(int64(m))
		// Bytes that the sort-allocating engines would have taken fresh
		// from the heap: both edge buffers, the keep indices, the starts.
		const wedgeBytes = 24
		obs.WorkspaceReused.Add(int64(m)*2*wedgeBytes + int64(m)*4 + int64(n+1)*8)
	}
	return c.out, src
}

// packedKey builds the 2·width-bit sort key of a working edge.
//
//msf:noalloc
func packedKey(e graph.WEdge, width uint) uint64 {
	return uint64(uint32(e.U))<<width | uint64(uint32(e.V))
}

//msf:noalloc
func (c *Compactor) countWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	h := c.hist[w<<c.digitBits : (w+1)<<c.digitBits]
	for i := range h {
		h[i] = 0
	}
	width, shift, mask := c.width, c.shift, c.mask
	src := c.src
	for i := lo; i < hi; i++ {
		h[(packedKey(src[i], width)>>shift)&mask]++
	}
}

//msf:noalloc
func (c *Compactor) scatterWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	h := c.hist[w<<c.digitBits : (w+1)<<c.digitBits]
	width, shift, mask := c.width, c.shift, c.mask
	src, dst := c.src, c.dst
	for i := lo; i < hi; i++ {
		e := src[i]
		d := (packedKey(e, width) >> shift) & mask
		dst[h[d]] = e
		h[d]++
	}
}

//msf:noalloc
func (c *Compactor) headCountWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	src := c.src
	var cnt int64
	for i := lo; i < hi; i++ {
		e := src[i]
		if e.U == e.V {
			continue
		}
		if i == 0 || src[i-1].U != e.U || src[i-1].V != e.V {
			cnt++
		}
	}
	c.wcount[w] = cnt
}

//msf:noalloc
func (c *Compactor) headScatterWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	src, keep := c.src, c.keepIdx
	pos := c.wcount[w]
	for i := lo; i < hi; i++ {
		e := src[i]
		if e.U == e.V {
			continue
		}
		if i == 0 || src[i-1].U != e.U || src[i-1].V != e.V {
			keep[pos] = int32(i)
			pos++
		}
	}
}

//msf:noalloc
func (c *Compactor) reduceWork(_, lo, hi int) {
	src, out, keep := c.src, c.out, c.keepIdx
	m := c.m
	for j := lo; j < hi; j++ {
		s := int(keep[j])
		e := src[s]
		for i := s + 1; i < m; i++ {
			x := src[i]
			if x.U != e.U || x.V != e.V {
				break
			}
			if x.W < e.W || (x.W == e.W && x.ID < e.ID) {
				e = x
			}
		}
		out[j] = e
	}
}

//msf:noalloc
func (c *Compactor) startsClearWork(w int) {
	lo, hi := par.Block(c.n, c.p, w)
	starts := c.starts
	for v := lo; v < hi; v++ {
		starts[v] = -1
	}
}

//msf:noalloc
func (c *Compactor) startsMarkWork(w int) {
	lo, hi := par.Block(c.kept, c.p, w)
	out, starts := c.out, c.starts
	for i := lo; i < hi; i++ {
		if i == 0 || out[i-1].U != out[i].U {
			starts[out[i].U] = int64(i)
		}
	}
}
