package sorts

// The packed-key parallel radix compactor is the engine behind the
// default Bor-EL compact-graph step. The paper's formulation sorts the
// working edge list by the full (U, V, W, ID) key and keeps the head of
// every duplicate run; profiling shows that sort dominating every
// iteration. Two observations shrink it:
//
//  1. Only (U, V) needs to be SORTED. The weight and the id merely pick
//     the representative of each duplicate run, so a per-run (W, ID)
//     min-reduction replaces six of the ten radix passes outright.
//  2. Both endpoints are supervertex ids below the current supervertex
//     count n, so (U, V) packs into a single uint64 of 2·ceil(log2 n)
//     significant bits, and the digit plan is chosen from that bit
//     count (and from the per-worker element count; see RadixPlanFor).
//
// Four further changes make the kernel scale with p instead of merely
// running on p workers:
//
//   - One-shot histogramming: a pass's GLOBAL histogram depends only on
//     the key multiset, but the per-worker histograms that make a
//     parallel pass stable depend on which elements land in each
//     worker's block — which earlier passes change. So the single-read
//     formulation splits by p: at p = 1 the lone worker's histograms
//     for every pass are computed in one read of the input; at p > 1
//     pass 0 is counted up front and each later pass's histogram is
//     FUSED into the previous pass's scatter (the writer already holds
//     the element and knows its destination, so it bills the next-pass
//     digit to the destination's future reader). Either way the edge
//     array is streamed once per scatter instead of twice.
//   - Team-parallel offset computation: the digit-major exclusive scan
//     over the p<<digitBits histogram slab (up to 65536·p entries per
//     pass) and the backward fill of the per-vertex starts array both
//     run on the worker team via par.Scanner instead of serially on the
//     coordinator.
//   - Write-combining scatter: with narrow digits each worker stages
//     edges in small per-digit buffers and flushes them to dst in bulk,
//     so p workers stop interleaving single-edge writes into shared
//     cache lines (false sharing) and touch far fewer pages per step.
//   - Adaptive digit width: RadixPlanFor shrinks digitBits when m/p is
//     small, keeping the histogram slab cache-resident in the late
//     small-m rounds instead of always paying the 16-bit 256KB/worker
//     worst case (and enabling the buffered scatter, which needs a
//     bounded digit space).
//
// All state lives in buffers the caller (boruvka.Workspace) reuses
// across rounds, so the steady-state iteration performs zero heap
// allocations.

import (
	"math/bits"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
)

// maxDigitBits caps the radix digit width.
const maxDigitBits = 16

// minDigitBits floors the adaptive digit width: below this the pass
// count grows faster than the histogram shrinks.
const minDigitBits = 6

// maxHistPerWorker bounds passes<<digitBits over every plan RadixPlanFor
// can emit (the maximum is the 4-pass 16-bit plan for 62-bit keys), so
// the one-shot histogram slab is allocated once, worst case, per run.
const maxHistPerWorker = 4 << maxDigitBits

// scatterBufDigitBits is the widest digit for which the scatter stages
// writes in per-digit buffers; beyond it the staging area itself would
// blow the cache the buffering is meant to protect.
const scatterBufDigitBits = 11

// scatterBufEdges is the number of edges staged per digit before a bulk
// flush: 8 edges = 192 bytes = 3 cache lines per flush.
const scatterBufEdges = 8

// fusedDigitBits is the widest digit for which a p > 1 multi-pass plan
// fuses the next pass's counting into the current scatter. The fused
// counts live in a p×p<<digitBits slab (writer × future-reader rows),
// so wider digits would make that slab larger than the array re-read it
// avoids; beyond it the kernel falls back to one counting read per
// pass.
const fusedDigitBits = 14

// PackWidth returns the bit width b such that every vertex id in [0, n)
// fits in b bits (at least 1). The packed (U, V) key is U<<b | V, a
// 2b-bit integer whose unsigned order is the lexicographic (U, V) order.
func PackWidth(n int) uint {
	if n < 2 {
		return 1
	}
	return uint(bits.Len32(uint32(n - 1)))
}

// RadixPlan returns the minimum-pass uniform plan for supervertex count
// n: passes = ceil(2b/16) and digitBits = ceil(2b/passes), which
// balances the digits (e.g. 2b=40 gives three 14-bit passes instead of
// two 16-bit and one 8-bit). It is the fewest-passes end of the plan
// space RadixPlanFor searches.
func RadixPlan(n int) (passes int, digitBits uint) {
	total := 2 * PackWidth(n)
	passes = int((total + maxDigitBits - 1) / maxDigitBits)
	digitBits = (total + uint(passes) - 1) / uint(passes)
	return passes, digitBits
}

// RadixPlanFor returns the adaptive pass count and digit width for
// compacting m elements over n supervertices with p workers. Candidate
// plans are the balanced k-pass plans from RadixPlan's minimum up to
// the minDigitBits floor; the cost model charges each pass its
// per-worker element traffic (scatter reads and writes) plus its
// per-worker histogram traffic (zeroing, counting and the offset scan
// all walk the 1<<digitBits slab). Large m/p amortizes wide digits and
// gets the fewest passes; small m/p (the late Borůvka rounds, where n
// has contracted but the fixed plan still burned 64K-entry histograms)
// shifts to narrower digits whose slabs stay cache-resident.
func RadixPlanFor(n, m, p int) (passes int, digitBits uint) {
	total := 2 * PackWidth(n)
	if p < 1 {
		p = 1
	}
	per := int64(m / p)
	minPasses, _ := RadixPlan(n)
	bestCost := int64(-1)
	for k := minPasses; ; k++ {
		db := (total + uint(k) - 1) / uint(k)
		if k > minPasses && db < minDigitBits {
			break
		}
		cost := int64(k) * (per + 2*(int64(1)<<db))
		if bestCost < 0 || cost < bestCost {
			bestCost = cost
			passes, digitBits = k, db
		}
	}
	return passes, digitBits
}

// Compactor is the reusable parallel packed-key radix compaction engine.
// Create one per run with NewCompactor and call Compact once per Borůvka
// round; the per-worker histogram slab, the scatter staging buffers and
// the prebound phase bodies are allocated once, so steady-state calls
// allocate nothing.
//
// A Compactor is owned by a single goroutine; the parallelism comes from
// the team it runs its phases on.
type Compactor struct {
	p    int
	team *par.Team
	scn  *par.Scanner

	hist    []int32       // per-pass per-worker histograms, pass-major then worker-major
	wcount  []int64       // per-worker counts / exclusive offsets for the head pack
	sbuf    []graph.WEdge // per-worker per-digit scatter staging, p>1 only
	sbufLen []int32       // staged-edge counts per (worker, digit)
	flushes []int64       // per-worker flush counts of the current call

	// Fused next-pass counting state, p>1 only: next holds the
	// writer×reader count slabs, owner maps a current-pass digit to the
	// reader that owns its output range next pass, digitStart captures
	// the global digit starts of the pass about to scatter, and
	// rbound/nrbound are the per-reader element bounds of the current
	// and next pass (digit-aligned for fused passes, Block otherwise).
	next       []int32
	owner      []int32
	digitStart []int32
	rbound     []int
	nrbound    []int

	// Per-call state read by the prebound worker bodies.
	src, dst  []graph.WEdge
	m         int
	width     uint
	shift     uint
	digitBits uint
	mask      uint64
	pass      int
	cntPasses int
	buffered  bool
	fuse      bool
	keepIdx   []int32
	kept      int
	out       []graph.WEdge
	starts    []int64
	n         int

	countAllBody    func(int)
	countPassBody   func(int)
	scatterBody     func(int)
	scatterBufBody  func(int)
	aggBody         func(int)
	headCountBody   func(int)
	headScatterBody func(int)
	reduceBody      func(worker, lo, hi int)
	startsClearBody func(int)
	startsMarkBody  func(int)

	// Passes, LastDigitBits, LastScatterBuffered, LastScanParallel and
	// LastFlushes describe the most recent Compact call (recorded as
	// span attributes by the caller).
	Passes              int
	LastDigitBits       uint
	LastScatterBuffered bool
	LastScanParallel    bool
	LastFlushes         int64
}

// NewCompactor returns a compactor running its phases on team (whose
// size must be p).
func NewCompactor(p int, team *par.Team) *Compactor {
	c := &Compactor{
		p:       p,
		team:    team,
		scn:     par.NewScanner(p, team),
		hist:    make([]int32, p*maxHistPerWorker),
		wcount:  make([]int64, p),
		flushes: make([]int64, p),
	}
	if p > 1 {
		// The buffered scatter and the fused next-pass counting only run
		// with p > 1 (a single worker has no false sharing to combine
		// away, and its one-shot histograms are valid for every pass).
		c.sbuf = make([]graph.WEdge, (p<<scatterBufDigitBits)*scatterBufEdges)
		c.sbufLen = make([]int32, p<<scatterBufDigitBits)
		c.next = make([]int32, (p*p)<<fusedDigitBits)
		c.owner = make([]int32, 1<<fusedDigitBits)
		c.digitStart = make([]int32, (1<<fusedDigitBits)+1)
	}
	c.rbound = make([]int, p+1)
	c.nrbound = make([]int, p+1)
	c.countAllBody = c.countAllWork
	c.countPassBody = c.countPassWork
	c.scatterBody = c.scatterWork
	c.scatterBufBody = c.scatterBufWork
	c.aggBody = c.aggWork
	c.headCountBody = c.headCountWork
	c.headScatterBody = c.headScatterWork
	c.reduceBody = c.reduceWork
	c.startsClearBody = c.startsClearWork
	c.startsMarkBody = c.startsMarkWork
	return c
}

// Compact sorts edges by the packed (U, V) key, drops self-loops,
// reduces every duplicate (U, V) run to its minimum-(W, ID) edge, and
// fills starts (length n+1) with the per-vertex segment boundaries. It
// returns the compacted list and the buffer to pass as spare next round
// (the two ping-pong across calls).
//
// Requirements: cap(spare) >= len(edges), len(keepIdx) >= len(edges),
// len(starts) == n+1, and every endpoint in [0, n).
//
//msf:noalloc
func (c *Compactor) Compact(edges, spare []graph.WEdge, n int, keepIdx []int32, starts []int64) (out, newSpare []graph.WEdge) {
	m := len(edges)
	c.m, c.n, c.starts, c.keepIdx = m, n, starts, keepIdx
	c.width = PackWidth(n)
	passes, digitBits := RadixPlanFor(n, m, c.p)
	c.digitBits = digitBits
	c.mask = uint64(1)<<digitBits - 1
	c.Passes, c.LastDigitBits = passes, digitBits
	c.buffered = c.p > 1 && digitBits <= scatterBufDigitBits
	c.LastScatterBuffered = c.buffered
	c.LastScanParallel = false
	c.LastFlushes = 0
	if m == 0 {
		for i := range starts {
			starts[i] = 0
		}
		return edges, spare
	}

	src, dst := edges, spare[:m]
	nd := 1 << digitBits

	// Histogramming strategy (see the package comment): p == 1 counts
	// every pass in one read; p > 1 counts pass 0 up front and either
	// fuses each later pass's count into the previous scatter (narrow
	// digits) or re-counts it per pass (wide digits).
	fuseOK := c.p > 1 && digitBits <= fusedDigitBits
	c.cntPasses = 1
	if c.p == 1 {
		c.cntPasses = passes
	}
	c.src = src
	c.team.Run(c.countAllBody)

	// Pass 0 readers are the uniform blocks countAllWork counted.
	for w := 0; w < c.p; w++ {
		c.rbound[w], _ = par.Block(m, c.p, w)
	}
	c.rbound[c.p] = m

	for pass := 0; pass < passes; pass++ {
		c.pass = pass
		c.shift = uint(pass) * digitBits
		c.src, c.dst = src, dst
		if c.p > 1 && !fuseOK && pass > 0 {
			// Wide digits: the fused slab would outweigh the read it
			// saves, so re-count this pass from the current array.
			c.team.Run(c.countPassBody)
		}
		// Offsets: digit-major exclusive scan over (digit, reader), so
		// readers scatter their contiguous blocks in order — a stable
		// pass. Team-parallel over the digit space (Θ(nd·p) entries).
		base := (pass * c.p) << digitBits
		c.scn.TransposedExclusiveSum(c.hist[base:base+(c.p<<digitBits)], c.p, nd)
		if c.scn.LastParallel {
			c.LastScanParallel = true
		}
		c.fuse = fuseOK && pass+1 < passes
		if c.fuse {
			// The scan just wrote reader 0's offsets, i.e. the global
			// digit starts, into row 0; capture them before the scatter
			// advances them and derive the next pass's digit-aligned
			// reader partition (owner table + element bounds).
			c.planNextReaders(base, nd)
		}
		if c.buffered {
			c.team.Run(c.scatterBufBody)
		} else {
			c.team.Run(c.scatterBody)
		}
		if c.fuse {
			// Sum the writer×reader fused counts into the next pass's
			// per-reader histogram rows and adopt its reader bounds.
			c.team.Run(c.aggBody)
			copy(c.rbound, c.nrbound)
		}
		src, dst = dst, src
	}

	// src is sorted by (U, V); pack the heads of the non-self-loop runs.
	// (The offset scan over wcount is O(p) coordinator work — serial by
	// design, unlike the Θ(nd·p) histogram scans above.)
	c.src = src
	c.team.Run(c.headCountBody)
	var total int64
	for w := 0; w < c.p; w++ {
		v := c.wcount[w]
		c.wcount[w] = total
		total += v
	}
	c.kept = int(total)
	c.team.Run(c.headScatterBody)

	// Min-reduce each run into the spare buffer.
	c.out = dst[:c.kept]
	c.team.ForDynamic(c.kept, 256, c.reduceBody)

	// Segment starts: first occurrence of each U, then a team-parallel
	// backward fill of the empty vertices.
	c.team.Run(c.startsClearBody)
	starts[n] = total
	c.team.Run(c.startsMarkBody)
	c.scn.BackfillNegative(starts[:n+1])

	if c.buffered {
		var fl int64
		for w := 0; w < c.p; w++ {
			fl += c.flushes[w]
		}
		c.LastFlushes = fl
	}
	if obs.MetricsOn() {
		obs.RadixPasses.Add(int64(passes))
		obs.SortElements.Add(int64(m))
		obs.ScatterFlushes.Add(c.LastFlushes)
		// Bytes that the sort-allocating engines would have taken fresh
		// from the heap: both edge buffers, the keep indices, the starts.
		const wedgeBytes = 24
		obs.WorkspaceReused.Add(int64(m)*2*wedgeBytes + int64(m)*4 + int64(n+1)*8)
	}
	return c.out, src
}

// packedKey builds the 2·width-bit sort key of a working edge.
//
//msf:noalloc
func packedKey(e graph.WEdge, width uint) uint64 {
	return uint64(uint32(e.U))<<width | uint64(uint32(e.V))
}

// countAllWork zeroes and fills this worker's histogram for the first
// cntPasses passes in one sweep of its input block: per element, one
// key computation and cntPasses increments into cache-resident slabs.
// At p = 1 that is every pass of the plan (one read replaces passes
// reads); at p > 1 only pass 0 — later passes' per-worker counts depend
// on the reordered array and are produced by the fused scatter or by
// countPassWork.
//
//msf:noalloc
func (c *Compactor) countAllWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	p, db, passes := c.p, c.digitBits, c.cntPasses
	hist := c.hist
	for k := 0; k < passes; k++ {
		h := hist[(k*p+w)<<db : (k*p+w+1)<<db]
		for i := range h {
			h[i] = 0
		}
	}
	width, mask := c.width, c.mask
	src := c.src
	for i := lo; i < hi; i++ {
		key := packedKey(src[i], width)
		for k := 0; k < passes; k++ {
			hist[((k*p+w)<<db)+int((key>>(uint(k)*db))&mask)]++
		}
	}
	c.flushes[w] = 0
}

// countPassWork zeroes and fills this worker's histogram for the
// current pass from the current array: the p > 1 wide-digit fallback,
// where the fused writer-side counting is disabled.
//
//msf:noalloc
func (c *Compactor) countPassWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	base := (c.pass*c.p + w) << c.digitBits
	h := c.hist[base : base+(1<<c.digitBits)]
	for i := range h {
		h[i] = 0
	}
	width, shift, mask := c.width, c.shift, c.mask
	src := c.src
	for i := lo; i < hi; i++ {
		h[(packedKey(src[i], width)>>shift)&mask]++
	}
}

// planNextReaders derives the next pass's reader partition from the
// global digit starts of the pass about to scatter (reader 0's freshly
// scanned offset row): each next-pass reader owns a contiguous range of
// WHOLE current-pass digits, so a writer scattering an element to digit
// d knows — via owner[d] — which reader will stream it next pass and
// can bill the element's next-pass digit to that reader's fused count
// row. O(nd) coordinator work with nd <= 1<<fusedDigitBits.
//
// Digits are split at the p uniform element quantiles, so the partition
// tracks Block's balance except when a single digit's run exceeds m/p
// (skew the digit-aligned scheme cannot subdivide).
//
//msf:noalloc
func (c *Compactor) planNextReaders(base, nd int) {
	ds := c.digitStart[: nd+1 : nd+1]
	copy(ds[:nd], c.hist[base:base+nd])
	ds[nd] = int32(c.m)
	u := 0
	c.nrbound[0] = 0
	m64, p64 := int64(c.m), int64(c.p)
	for d := 0; d < nd; d++ {
		for u+1 < c.p && int64(ds[d])*p64 >= m64*int64(u+1) {
			u++
			c.nrbound[u] = int(ds[d])
		}
		c.owner[d] = int32(u)
	}
	for w := u + 1; w <= c.p; w++ {
		c.nrbound[w] = c.m
	}
}

// aggWork sums the writer×reader fused count slabs into reader w's
// histogram row for the next pass.
//
//msf:noalloc
func (c *Compactor) aggWork(w int) {
	p, db := c.p, c.digitBits
	nd := 1 << db
	next := c.next
	h := c.hist[((c.pass+1)*p+w)<<db : ((c.pass+1)*p+w+1)<<db]
	for d := 0; d < nd; d++ {
		var s int32
		for wr := 0; wr < p; wr++ {
			s += next[((wr*p+w)<<db)+d]
		}
		h[d] = s
	}
}

// scatterWork is the direct scatter: each edge goes straight to its
// offset slot. Used when the digit space is too wide for staging
// buffers (and for p = 1, where there is no false sharing to avoid).
// When fused counting is on, each written element's NEXT-pass digit is
// billed to the future reader of its destination range.
//
//msf:noalloc
func (c *Compactor) scatterWork(w int) {
	lo, hi := c.rbound[w], c.rbound[w+1]
	h := c.hist[(c.pass*c.p+w)<<c.digitBits : (c.pass*c.p+w+1)<<c.digitBits]
	width, shift, mask := c.width, c.shift, c.mask
	db := c.digitBits
	fuse := c.fuse
	var next []int32
	var owner []int32
	if fuse {
		next = c.next[(w*c.p)<<db : ((w+1)*c.p)<<db]
		for i := range next {
			next[i] = 0
		}
		owner = c.owner
	}
	src, dst := c.src, c.dst
	for i := lo; i < hi; i++ {
		e := src[i]
		key := packedKey(e, width)
		d := (key >> shift) & mask
		dst[h[d]] = e
		h[d]++
		if fuse {
			next[(int(owner[d])<<db)+int((key>>(shift+db))&mask)]++
		}
	}
}

// scatterBufWork is the write-combining scatter: edges are staged in
// per-digit buffers of scatterBufEdges entries and flushed to dst in
// bulk, so concurrent workers write multi-line blocks instead of
// interleaving single 24-byte edges into shared cache lines. Within a
// digit each worker's staging is FIFO and its destination block is
// contiguous, so the pass stays stable. The staged counts are drained
// back to zero at the end of the pass, keeping the slab reusable across
// passes and calls without re-clearing.
//
//msf:noalloc
func (c *Compactor) scatterBufWork(w int) {
	lo, hi := c.rbound[w], c.rbound[w+1]
	nd := 1 << c.digitBits
	h := c.hist[(c.pass*c.p+w)<<c.digitBits : (c.pass*c.p+w)<<c.digitBits+nd]
	buf := c.sbuf[(w<<scatterBufDigitBits)*scatterBufEdges:]
	buf = buf[:nd*scatterBufEdges]
	blen := c.sbufLen[w<<scatterBufDigitBits:]
	blen = blen[:nd]
	width, shift, mask := c.width, c.shift, c.mask
	db := c.digitBits
	fuse := c.fuse
	var next []int32
	var owner []int32
	if fuse {
		next = c.next[(w*c.p)<<db : ((w+1)*c.p)<<db]
		for i := range next {
			next[i] = 0
		}
		owner = c.owner
	}
	src, dst := c.src, c.dst
	var flushed int64
	for i := lo; i < hi; i++ {
		e := src[i]
		key := packedKey(e, width)
		d := int((key >> shift) & mask)
		if fuse {
			next[(int(owner[d])<<db)+int((key>>(shift+db))&mask)]++
		}
		s := d * scatterBufEdges
		l := int(blen[d])
		buf[s+l] = e
		l++
		if l == scatterBufEdges {
			copy(dst[h[d]:int(h[d])+scatterBufEdges], buf[s:s+scatterBufEdges])
			h[d] += scatterBufEdges
			l = 0
			flushed++
		}
		blen[d] = int32(l)
	}
	for d := 0; d < nd; d++ {
		if l := int(blen[d]); l > 0 {
			copy(dst[h[d]:int(h[d])+l], buf[d*scatterBufEdges:d*scatterBufEdges+l])
			h[d] += int32(l)
			blen[d] = 0
			flushed++
		}
	}
	c.flushes[w] += flushed
}

//msf:noalloc
func (c *Compactor) headCountWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	src := c.src
	var cnt int64
	for i := lo; i < hi; i++ {
		e := src[i]
		if e.U == e.V {
			continue
		}
		if i == 0 || src[i-1].U != e.U || src[i-1].V != e.V {
			cnt++
		}
	}
	c.wcount[w] = cnt
}

//msf:noalloc
func (c *Compactor) headScatterWork(w int) {
	lo, hi := par.Block(c.m, c.p, w)
	src, keep := c.src, c.keepIdx
	pos := c.wcount[w]
	for i := lo; i < hi; i++ {
		e := src[i]
		if e.U == e.V {
			continue
		}
		if i == 0 || src[i-1].U != e.U || src[i-1].V != e.V {
			keep[pos] = int32(i)
			pos++
		}
	}
}

//msf:noalloc
func (c *Compactor) reduceWork(_, lo, hi int) {
	src, out, keep := c.src, c.out, c.keepIdx
	m := c.m
	for j := lo; j < hi; j++ {
		s := int(keep[j])
		e := src[s]
		for i := s + 1; i < m; i++ {
			x := src[i]
			if x.U != e.U || x.V != e.V {
				break
			}
			if x.W < e.W || (x.W == e.W && x.ID < e.ID) {
				e = x
			}
		}
		out[j] = e
	}
}

//msf:noalloc
func (c *Compactor) startsClearWork(w int) {
	lo, hi := par.Block(c.n, c.p, w)
	starts := c.starts
	for v := lo; v < hi; v++ {
		starts[v] = -1
	}
}

//msf:noalloc
func (c *Compactor) startsMarkWork(w int) {
	lo, hi := par.Block(c.kept, c.p, w)
	out, starts := c.out, c.starts
	for i := lo; i < hi; i++ {
		if i == 0 || out[i-1].U != out[i].U {
			starts[out[i].U] = int64(i)
		}
	}
}
