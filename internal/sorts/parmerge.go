package sorts

import (
	"pmsf/internal/obs"
	"pmsf/internal/par"
)

// ParallelMergeSort sorts a with p workers: the input is split into p
// runs sorted concurrently, then merged pairwise in log2(p) parallel
// rounds. It is the classic alternative to sample sort that Helman and
// JáJá's sorting study weighs it against — merge sort moves every
// element log p times but needs no sampling pass and has no bucket-skew
// risk; sample sort moves every element twice but pays for splitter
// selection. BenchmarkAblationParallelSort compares the two on the
// Bor-EL edge-sort workload.
func ParallelMergeSort[T any](p int, a []T, less func(x, y T) bool) {
	n := len(a)
	if obs.MetricsOn() {
		obs.SortElements.Add(int64(n))
	}
	less, flush := counted(less)
	defer flush()
	const seqCutoff = 1 << 13
	if p <= 1 || n < seqCutoff {
		buf := make([]T, n)
		MergeBottomUp(a, buf, less)
		return
	}
	p = par.Clamp(p, n)
	// Round p down to a power of two so merge rounds pair up evenly.
	for p&(p-1) != 0 {
		p--
	}

	ranges := par.Split(n, p)
	buf := make([]T, n)
	// Phase 1: sort each run in place, concurrently.
	par.Do(p, func(w int) {
		lo, hi := ranges[w].Lo, ranges[w].Hi
		MergeBottomUp(a[lo:hi], buf[lo:hi], less)
	})

	// Phase 2: log2(p) rounds of pairwise merges, ping-ponging between a
	// and buf. Each round merges adjacent run pairs; each merge is
	// handled by one worker (runs shrink in count but grow in size, so
	// the last rounds are the expensive ones — the known weakness merge
	// path algorithms fix; see the package comment).
	src, dst := a, buf
	runs := make([]par.Range, p)
	copy(runs, ranges)
	for len(runs) > 1 {
		half := len(runs) / 2
		next := make([]par.Range, half)
		par.Do(half, func(i int) {
			left, right := runs[2*i], runs[2*i+1]
			mergeInto(dst[left.Lo:right.Hi], src[left.Lo:left.Hi], src[left.Hi:right.Hi], less)
			next[i] = par.Range{Lo: left.Lo, Hi: right.Hi}
		})
		runs = next
		src, dst = dst, src
	}
	if &src[0] != &a[0] {
		copy(a, src)
	}
}
