package sorts

import (
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

func TestQuicksortProperty(t *testing.T) {
	f := func(a []int) bool {
		got := append([]int(nil), a...)
		Quicksort(got, intLess)
		return equal(got, sortedCopy(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeRecursiveProperty(t *testing.T) {
	f := func(a []int) bool {
		got := append([]int(nil), a...)
		buf := make([]int, len(got))
		MergeRecursive(got, buf, intLess)
		return equal(got, sortedCopy(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuicksortAdversarial(t *testing.T) {
	// Sorted, reverse-sorted, all-equal, organ-pipe: the classic
	// quicksort killers; median-of-three must keep them O(n log n) (we
	// just check correctness and that it terminates promptly).
	n := 1 << 15
	inputs := map[string]func(i int) int{
		"sorted":     func(i int) int { return i },
		"reverse":    func(i int) int { return n - i },
		"equal":      func(int) int { return 7 },
		"organ-pipe": func(i int) int { return min(i, n-i) },
		"two-values": func(i int) int { return i & 1 },
	}
	for name, gen := range inputs {
		a := make([]int, n)
		for i := range a {
			a[i] = gen(i)
		}
		want := sortedCopy(a)
		Quicksort(a, intLess)
		if !equal(a, want) {
			t.Fatalf("%s: incorrect", name)
		}
	}
}

func TestMergeRecursiveStable(t *testing.T) {
	r := rng.New(1)
	a := make([]kv, 1000)
	for i := range a {
		a[i] = kv{k: r.Intn(10), seq: i}
	}
	buf := make([]kv, len(a))
	MergeRecursive(a, buf, func(x, y kv) bool { return x.k < y.k })
	for i := 1; i < len(a); i++ {
		if a[i-1].k == a[i].k && a[i-1].seq > a[i].seq {
			t.Fatalf("instability at %d", i)
		}
	}
}

func TestMergeRecursiveSmallBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	MergeRecursive(make([]int, 50), make([]int, 10), intLess)
}

func TestAllSortsAgree(t *testing.T) {
	r := rng.New(2)
	for _, n := range []int{0, 1, 13, 100, 5000} {
		base := make([]int, n)
		for i := range base {
			base[i] = r.Intn(1000)
		}
		want := sortedCopy(base)
		type namedSort struct {
			name string
			run  func([]int)
		}
		sorts := []namedSort{
			{"insertion", func(a []int) { Insertion(a, intLess) }},
			{"bottom-up", func(a []int) { MergeBottomUp(a, make([]int, len(a)), intLess) }},
			{"recursive", func(a []int) { MergeRecursive(a, make([]int, len(a)), intLess) }},
			{"quick", func(a []int) { Quicksort(a, intLess) }},
			{"sample", func(a []int) { SampleSort(4, a, intLess, 1) }},
		}
		for _, s := range sorts {
			a := append([]int(nil), base...)
			s.run(a)
			if !equal(a, want) {
				t.Fatalf("n=%d: %s incorrect", n, s.name)
			}
		}
	}
}
