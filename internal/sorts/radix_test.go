package sorts

import (
	"math"
	"testing"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

func wedgeLessRef(a, b graph.WEdge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.ID < b.ID
}

func randomWEdges(n int, seed uint64, weights func(*rng.Xoshiro256) float64) []graph.WEdge {
	r := rng.New(seed)
	out := make([]graph.WEdge, n)
	for i := range out {
		out[i] = graph.WEdge{
			U:  int32(r.Intn(1 << 20)),
			V:  int32(r.Intn(1 << 20)),
			ID: int32(r.Intn(1 << 28)),
			W:  weights(r),
		}
	}
	return out
}

func TestRadixMatchesComparison(t *testing.T) {
	cases := map[string]func(*rng.Xoshiro256) float64{
		"uniform":  func(r *rng.Xoshiro256) float64 { return r.Float64() },
		"negative": func(r *rng.Xoshiro256) float64 { return r.Float64() - 0.5 },
		"ties":     func(r *rng.Xoshiro256) float64 { return float64(r.Intn(3)) },
		"huge":     func(r *rng.Xoshiro256) float64 { return math.Exp(40 * (r.Float64() - 0.5)) },
		"zeros": func(r *rng.Xoshiro256) float64 {
			if r.Bool() {
				return math.Copysign(0, -1)
			}
			return 0
		},
	}
	for name, wf := range cases {
		for _, n := range []int{0, 1, 2, 1000, 1 << 15} {
			a := randomWEdges(n, 7, wf)
			b := append([]graph.WEdge(nil), a...)
			RadixSortWEdges(a, make([]graph.WEdge, n))
			buf := make([]graph.WEdge, n)
			MergeBottomUp(b, buf, wedgeLessRef)
			for i := range a {
				// -0.0 vs +0.0 compare equal; compare fields via keys.
				if a[i].U != b[i].U || a[i].V != b[i].V || a[i].ID != b[i].ID || a[i].W != b[i].W {
					t.Fatalf("%s n=%d: order differs at %d: %+v vs %+v", name, n, i, a[i], b[i])
				}
			}
		}
	}
}

func TestRadixSmallBufferPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	RadixSortWEdges(make([]graph.WEdge, 10), make([]graph.WEdge, 5))
}

func TestFloatKeyMonotone(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e30, -1, -1e-300, math.Copysign(0, -1), 0, 1e-300, 1, 1e30, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		a, b := floatKey(vals[i-1]), floatKey(vals[i])
		if vals[i-1] == vals[i] {
			if a != b {
				t.Fatalf("equal floats %g/%g got different keys", vals[i-1], vals[i])
			}
			continue
		}
		if a >= b {
			t.Fatalf("keys not monotone at %g < %g", vals[i-1], vals[i])
		}
	}
}
