package sorts

import (
	"testing"

	"pmsf/internal/rng"
)

func TestParallelMergeSortMatchesSequential(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 100, 1 << 13, 1<<14 + 3, 1 << 16} {
		for _, p := range []int{1, 2, 3, 4, 7, 8} {
			a := make([]int, n)
			for i := range a {
				a[i] = r.Intn(1 << 20)
			}
			want := sortedCopy(a)
			ParallelMergeSort(p, a, intLess)
			if !equal(a, want) {
				t.Fatalf("n=%d p=%d: incorrect", n, p)
			}
		}
	}
}

func TestParallelMergeSortStable(t *testing.T) {
	r := rng.New(2)
	a := make([]kv, 1<<15)
	for i := range a {
		a[i] = kv{k: r.Intn(8), seq: i}
	}
	ParallelMergeSort(4, a, func(x, y kv) bool { return x.k < y.k })
	for i := 1; i < len(a); i++ {
		if a[i-1].k == a[i].k && a[i-1].seq > a[i].seq {
			t.Fatalf("instability at %d", i)
		}
	}
}

func TestParallelMergeSortAllEqual(t *testing.T) {
	a := make([]int, 1<<14)
	for i := range a {
		a[i] = 5
	}
	ParallelMergeSort(8, a, intLess)
	for _, v := range a {
		if v != 5 {
			t.Fatal("corrupted")
		}
	}
}

func TestParallelMergeSortAgainstSampleSort(t *testing.T) {
	r := rng.New(3)
	n := 1 << 15
	a := make([]int, n)
	b := make([]int, n)
	for i := range a {
		a[i] = r.Intn(1000)
		b[i] = a[i]
	}
	ParallelMergeSort(8, a, intLess)
	SampleSort(8, b, intLess, 9)
	if !equal(a, b) {
		t.Fatal("parallel sorts disagree")
	}
}
