package sorts

import (
	"sort"
	"testing"

	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/rng"
)

// referenceCompact is the naive model of Compact: stable-sort by
// (U, V), drop self-loops, keep the minimum-(W, ID) edge of every run,
// and record the per-vertex segment starts.
func referenceCompact(edges []graph.WEdge, n int) ([]graph.WEdge, []int64) {
	s := append([]graph.WEdge(nil), edges...)
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].U != s[j].U {
			return s[i].U < s[j].U
		}
		return s[i].V < s[j].V
	})
	var out []graph.WEdge
	for i := 0; i < len(s); {
		j := i
		best := s[i]
		for j < len(s) && s[j].U == s[i].U && s[j].V == s[i].V {
			if s[j].W < best.W || (s[j].W == best.W && s[j].ID < best.ID) {
				best = s[j]
			}
			j++
		}
		if best.U != best.V {
			out = append(out, best)
		}
		i = j
	}
	starts := make([]int64, n+1)
	starts[n] = int64(len(out))
	for v := 0; v < n; v++ {
		starts[v] = -1
	}
	for i := len(out) - 1; i >= 0; i-- {
		starts[out[i].U] = int64(i)
	}
	for v := n - 1; v >= 0; v-- {
		if starts[v] < 0 {
			starts[v] = starts[v+1]
		}
	}
	return out, starts
}

func runCompact(t *testing.T, p int, edges []graph.WEdge, n int) (*Compactor, []graph.WEdge, []graph.WEdge, []int64) {
	t.Helper()
	team := par.NewTeam(p)
	defer team.Close()
	c := NewCompactor(p, team)
	work := append([]graph.WEdge(nil), edges...)
	spare := make([]graph.WEdge, len(edges))
	keep := make([]int32, len(edges))
	starts := make([]int64, n+1)
	out, sorted := c.Compact(work, spare, n, keep, starts)
	return c, out, sorted, starts
}

func checkAgainstReference(t *testing.T, name string, p int, edges []graph.WEdge, n int) {
	t.Helper()
	wantOut, wantStarts := referenceCompact(edges, n)
	c, out, sorted, starts := runCompact(t, p, edges, n)
	if len(out) != len(wantOut) {
		t.Fatalf("%s p=%d (passes=%d db=%d): kept %d edges, want %d", name, p, c.Passes, c.LastDigitBits, len(out), len(wantOut))
	}
	for i := range wantOut {
		if out[i] != wantOut[i] {
			t.Fatalf("%s p=%d (passes=%d db=%d): out[%d]=%+v, want %+v", name, p, c.Passes, c.LastDigitBits, i, out[i], wantOut[i])
		}
	}
	for i := range wantStarts {
		if starts[i] != wantStarts[i] {
			t.Fatalf("%s p=%d: starts[%d]=%d, want %d", name, p, i, starts[i], wantStarts[i])
		}
	}
	// The full sorted array (the returned spare) must be sorted by the
	// packed key and STABLE: with ID = original index, equal (U, V) runs
	// must keep ascending ids — this is what validates the multi-pass
	// offset/scatter machinery (fused counts, digit-aligned readers,
	// staging buffers) beyond the min-reduced view.
	width := PackWidth(n)
	for i := 1; i < len(sorted); i++ {
		ka, kb := packedKey(sorted[i-1], width), packedKey(sorted[i], width)
		if ka > kb {
			t.Fatalf("%s p=%d: sorted[%d..%d] out of order: %+v > %+v", name, p, i-1, i, sorted[i-1], sorted[i])
		}
		if ka == kb && sorted[i-1].ID >= sorted[i].ID {
			t.Fatalf("%s p=%d: unstable at %d: id %d before %d on equal keys", name, p, i, sorted[i-1].ID, sorted[i].ID)
		}
	}
}

func randomEdges(r *rng.Xoshiro256, n, m, dupRuns int) []graph.WEdge {
	edges := make([]graph.WEdge, m)
	for i := range edges {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if dupRuns > 0 && i%dupRuns != 0 && i > 0 {
			// Heavy duplication: repeat the previous endpoint pair so
			// every run exercises the stability requirement.
			u, v = edges[i-1].U, edges[i-1].V
		}
		edges[i] = graph.WEdge{U: u, V: v, W: graph.Weight(r.Float64()), ID: int32(i)}
	}
	return edges
}

// TestCompactorPackWidthBoundaries covers supervertex counts straddling
// every pack-width step (n = 2^k-1, 2^k, 2^k+1): the packed key gains a
// bit exactly there, which moves the plan between pass counts.
func TestCompactorPackWidthBoundaries(t *testing.T) {
	r := rng.New(11)
	for _, k := range []uint{1, 2, 3, 5, 7, 10} {
		for _, n := range []int{1<<k - 1, 1 << k, 1<<k + 1} {
			if n < 1 {
				continue
			}
			m := 4 * n
			edges := randomEdges(r, n, m, 3)
			for _, p := range []int{1, 3, 4} {
				checkAgainstReference(t, "boundary", p, edges, n)
			}
		}
	}
}

// TestCompactorMultiPassStability pins the stability of multi-pass
// plans under heavy duplicate packed keys, for every scatter flavour:
// fused+buffered (narrow digits, p > 1), the p = 1 one-shot, and the
// wide-digit recount fallback.
func TestCompactorMultiPassStability(t *testing.T) {
	r := rng.New(12)
	// n = 40 gives a 12-bit key: small m/p makes RadixPlanFor split it
	// into two 6-bit passes (the parity bug class this test pins).
	edges := randomEdges(r, 40, 200, 2)
	for _, p := range []int{1, 2, 3, 8} {
		c, _, _, _ := runCompact(t, p, edges, 40)
		if c.Passes < 2 {
			t.Fatalf("p=%d: plan has %d passes, want >= 2 for this test to bite", p, c.Passes)
		}
		checkAgainstReference(t, "multipass", p, edges, 40)
	}
}

// TestCompactorWideDigitRecount forces the p > 1 wide-digit path
// (digitBits > fusedDigitBits), where each later pass re-counts from
// the current array instead of fusing.
func TestCompactorWideDigitRecount(t *testing.T) {
	if testing.Short() {
		t.Skip("large input")
	}
	r := rng.New(13)
	n := 20000 // width 15 -> 30-bit key
	m := 600000
	edges := randomEdges(r, n, m, 5)
	c, _, _, _ := runCompact(t, 2, edges, n)
	if c.LastDigitBits <= fusedDigitBits {
		t.Fatalf("plan db=%d does not exceed fusedDigitBits=%d; test is vacuous", c.LastDigitBits, fusedDigitBits)
	}
	checkAgainstReference(t, "wide", 2, edges, n)
}

// TestRadixPlanForBounds checks the adaptive plan invariants over the
// (n, m, p) space: the digits cover the key, stay within the histogram
// slab NewCompactor allocates, and never exceed the uniform maximum.
func TestRadixPlanForBounds(t *testing.T) {
	for _, n := range []int{1, 2, 3, 31, 32, 33, 1000, 1 << 15, 1 << 20, 1 << 24} {
		total := 2 * PackWidth(n)
		for _, m := range []int{0, 1, 100, 10000, 10_000_000} {
			for _, p := range []int{1, 2, 4, 8, 64} {
				passes, db := RadixPlanFor(n, m, p)
				if passes < 1 || db < 1 || db > maxDigitBits {
					t.Fatalf("n=%d m=%d p=%d: plan %d x %d out of range", n, m, p, passes, db)
				}
				if uint(passes)*db < total {
					t.Fatalf("n=%d m=%d p=%d: %d passes x %d bits < %d key bits", n, m, p, passes, db, total)
				}
				if passes<<db > maxHistPerWorker {
					t.Fatalf("n=%d m=%d p=%d: %d<<%d exceeds histogram slab", n, m, p, passes, db)
				}
				minPasses, _ := RadixPlan(n)
				if passes < minPasses {
					t.Fatalf("n=%d m=%d p=%d: %d passes below uniform minimum %d", n, m, p, passes, minPasses)
				}
			}
		}
	}
}

// TestCompactorEmptyAndTiny covers the degenerate sizes.
func TestCompactorEmptyAndTiny(t *testing.T) {
	for _, p := range []int{1, 4} {
		checkAgainstReference(t, "empty", p, nil, 5)
		checkAgainstReference(t, "one-self-loop", p, []graph.WEdge{{U: 2, V: 2, W: 1, ID: 0}}, 5)
		checkAgainstReference(t, "one-edge", p, []graph.WEdge{{U: 4, V: 0, W: 1, ID: 0}}, 5)
	}
}
