package sorts

import (
	"sort"
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

func intLess(a, b int) bool { return a < b }

func sortedCopy(a []int) []int {
	out := append([]int(nil), a...)
	sort.Ints(out)
	return out
}

func equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestInsertionProperty(t *testing.T) {
	f := func(a []int) bool {
		got := append([]int(nil), a...)
		Insertion(got, intLess)
		return equal(got, sortedCopy(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeBottomUpProperty(t *testing.T) {
	f := func(a []int) bool {
		got := append([]int(nil), a...)
		buf := make([]int, len(got))
		MergeBottomUp(got, buf, intLess)
		return equal(got, sortedCopy(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeBottomUpSizes(t *testing.T) {
	// Hit boundary sizes around the insertion base and power-of-two merge
	// widths.
	r := rng.New(1)
	for _, n := range []int{0, 1, 2, 15, 16, 17, 31, 32, 33, 64, 100, 1000, 4096, 4097} {
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(50)
		}
		want := sortedCopy(a)
		buf := make([]int, n)
		MergeBottomUp(a, buf, intLess)
		if !equal(a, want) {
			t.Fatalf("n=%d: not sorted", n)
		}
	}
}

type kv struct{ k, seq int }

func TestMergeBottomUpStable(t *testing.T) {
	r := rng.New(2)
	a := make([]kv, 2000)
	for i := range a {
		a[i] = kv{k: r.Intn(10), seq: i}
	}
	buf := make([]kv, len(a))
	MergeBottomUp(a, buf, func(x, y kv) bool { return x.k < y.k })
	for i := 1; i < len(a); i++ {
		if a[i-1].k == a[i].k && a[i-1].seq > a[i].seq {
			t.Fatalf("instability at %d: (%d,%d) before (%d,%d)",
				i, a[i-1].k, a[i-1].seq, a[i].k, a[i].seq)
		}
	}
}

func TestMergeBottomUpPanicsOnSmallBuffer(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic with undersized buffer")
		}
	}()
	a := make([]int, 100)
	MergeBottomUp(a, make([]int, 10), intLess)
}

func TestHybrid(t *testing.T) {
	r := rng.New(3)
	for _, n := range []int{0, 5, 31, 32, 33, 500} {
		a := make([]int, n)
		for i := range a {
			a[i] = r.Intn(1000)
		}
		want := sortedCopy(a)
		var buf []int
		if n >= InsertionCutoff {
			buf = make([]int, n)
		}
		Hybrid(a, buf, InsertionCutoff, intLess)
		if !equal(a, want) {
			t.Fatalf("n=%d: hybrid failed", n)
		}
	}
}

func TestIsSorted(t *testing.T) {
	if !IsSorted([]int{1, 2, 2, 3}, intLess) {
		t.Fatal("sorted slice reported unsorted")
	}
	if IsSorted([]int{2, 1}, intLess) {
		t.Fatal("unsorted slice reported sorted")
	}
	if !IsSorted([]int{}, intLess) || !IsSorted([]int{1}, intLess) {
		t.Fatal("trivial slices must be sorted")
	}
}

func TestSampleSortMatchesSequential(t *testing.T) {
	r := rng.New(4)
	for _, n := range []int{0, 1, 100, 1 << 14, 1<<15 + 13, 1 << 17} {
		for _, p := range []int{1, 2, 4, 8} {
			a := make([]int, n)
			for i := range a {
				a[i] = r.Intn(1 << 20)
			}
			want := sortedCopy(a)
			SampleSort(p, a, intLess, 42)
			if !equal(a, want) {
				t.Fatalf("n=%d p=%d: sample sort incorrect", n, p)
			}
		}
	}
}

func TestSampleSortSkewedKeys(t *testing.T) {
	// Heavily duplicated keys stress splitter selection and bucket skew.
	r := rng.New(5)
	n := 1 << 16
	a := make([]int, n)
	for i := range a {
		a[i] = r.Intn(3)
	}
	want := sortedCopy(a)
	SampleSort(8, a, intLess, 7)
	if !equal(a, want) {
		t.Fatal("sample sort incorrect on skewed keys")
	}
}

func TestSampleSortAllEqual(t *testing.T) {
	n := 1 << 15
	a := make([]int, n)
	for i := range a {
		a[i] = 7
	}
	SampleSort(8, a, intLess, 1)
	for _, v := range a {
		if v != 7 {
			t.Fatal("values corrupted")
		}
	}
}

func TestSampleSortAlreadySorted(t *testing.T) {
	n := 1 << 15
	a := make([]int, n)
	for i := range a {
		a[i] = i
	}
	SampleSort(4, a, intLess, 9)
	for i := range a {
		if a[i] != i {
			t.Fatalf("a[%d] = %d", i, a[i])
		}
	}
}

func TestCountingGroup(t *testing.T) {
	r := rng.New(6)
	for _, p := range []int{1, 4, 16} {
		const n, k = 5000, 37
		keys := make([]int32, n)
		for i := range keys {
			keys[i] = int32(r.Intn(k))
		}
		order, starts := CountingGroup(p, keys, k)
		if len(order) != n || len(starts) != k+1 {
			t.Fatalf("p=%d: bad output sizes %d/%d", p, len(order), len(starts))
		}
		if starts[0] != 0 || starts[k] != int64(n) {
			t.Fatalf("p=%d: bad boundary starts", p)
		}
		seen := make([]bool, n)
		for g := 0; g < k; g++ {
			for i := starts[g]; i < starts[g+1]; i++ {
				idx := order[i]
				if seen[idx] {
					t.Fatalf("p=%d: index %d appears twice", p, idx)
				}
				seen[idx] = true
				if keys[idx] != int32(g) {
					t.Fatalf("p=%d: index %d in group %d has key %d", p, idx, g, keys[idx])
				}
			}
			// Stability: indices within a group are increasing.
			for i := starts[g] + 1; i < starts[g+1]; i++ {
				if order[i-1] >= order[i] {
					t.Fatalf("p=%d: group %d not stable", p, g)
				}
			}
		}
	}
}

func TestCountingGroupEmpty(t *testing.T) {
	order, starts := CountingGroup(4, nil, 5)
	if len(order) != 0 || len(starts) != 6 {
		t.Fatalf("empty group sizes: %d/%d", len(order), len(starts))
	}
	for _, s := range starts {
		if s != 0 {
			t.Fatal("non-zero start in empty grouping")
		}
	}
}

func TestBucketOf(t *testing.T) {
	splitters := []int{10, 20, 30}
	cases := []struct{ v, want int }{
		{5, 0}, {10, 0}, {11, 1}, {20, 1}, {25, 2}, {30, 2}, {31, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := bucketOf(c.v, splitters, intLess); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}
