package sorts

import (
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

// Hybrid equals MergeBottomUp equals Quicksort on arbitrary inputs for
// every cutoff — the behaviour-preservation property behind ablation A1.
func TestHybridCutoffProperty(t *testing.T) {
	f := func(raw []int16, cutoff uint8) bool {
		a := make([]int, len(raw))
		for i, v := range raw {
			a[i] = int(v)
		}
		want := sortedCopy(a)
		c := int(cutoff)%128 + 1
		var buf []int
		if len(a) >= c {
			buf = make([]int, len(a))
		}
		Hybrid(a, buf, c, intLess)
		return equal(a, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// SampleSort determinism: equal inputs and seeds produce equal outputs
// at every worker count (the bucket boundaries are seed-driven but the
// sorted result is unique up to the less function, which is total here).
func TestSampleSortDeterministicProperty(t *testing.T) {
	r := rng.New(5)
	n := 1 << 15
	base := make([]int, n)
	for i := range base {
		base[i] = r.Intn(1 << 30) // effectively distinct
	}
	first := append([]int(nil), base...)
	SampleSort(4, first, intLess, 11)
	for _, p := range []int{1, 2, 8} {
		for _, seed := range []uint64{11, 99} {
			a := append([]int(nil), base...)
			SampleSort(p, a, intLess, seed)
			if !equal(a, first) {
				t.Fatalf("p=%d seed=%d: output differs", p, seed)
			}
		}
	}
}
