package cashook

import (
	"math"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

// constWeights returns a copy of g with every edge at weight w — the
// single-bucket extreme for the bucket loop.
func constWeights(g *graph.EdgeList, w float64) *graph.EdgeList {
	out := g.Clone()
	for i := range out.Edges {
		out.Edges[i].W = w
	}
	return out
}

// parity checks a run against the sequential Kruskal reference: equal
// weight, equal component count, and full structural verification.
func parity(t *testing.T, name string, g *graph.EdgeList, opt Options) {
	t.Helper()
	f, stats := Run(g, opt)
	ref := seq.Kruskal(g)
	if f.Components != ref.Components || f.Size() != ref.Size() {
		t.Fatalf("%s: got %d components / %d edges, Kruskal %d / %d",
			name, f.Components, f.Size(), ref.Components, ref.Size())
	}
	if math.Abs(f.Weight-ref.Weight) > 1e-9*(1+math.Abs(ref.Weight)) {
		t.Fatalf("%s: weight %v, Kruskal %v", name, f.Weight, ref.Weight)
	}
	if err := verify.Forest(g, f); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if stats.Algorithm != "Bor-CAS" {
		t.Fatalf("stats algorithm %q", stats.Algorithm)
	}
}

func TestKruskalParity(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.EdgeList
	}{
		{"empty", &graph.EdgeList{N: 0}},
		{"isolated", &graph.EdgeList{N: 9}},
		{"single", &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 3}}}},
		{"self-loops", &graph.EdgeList{N: 3, Edges: []graph.Edge{
			{U: 0, V: 0, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 2, W: 0}}}},
		{"random", gen.Random(500, 2500, 1)},
		{"random-sparse", gen.Random(600, 300, 2)},
		{"geometric", gen.Geometric(400, 5, 3)},
		{"star", gen.Star(800, 4)},
		{"path", gen.Path(800, 5)},
		{"tied", gen.Reweight(gen.Random(400, 2400, 6), gen.WeightsSmallInts, 7)},
		{"all-equal", constWeights(gen.Random(400, 2000, 8), 2.5)},
		{"negative", constWeights(gen.Random(300, 1200, 9), -1)},
		{"mesh", gen.Mesh2D(22, 22, 10)},
	}
	for _, tc := range cases {
		for _, p := range []int{1, 2, 8} {
			parity(t, tc.name, tc.g, Options{Workers: p, Stats: true, Seed: uint64(p)})
		}
	}
}

func TestTiedBucketsGoParallel(t *testing.T) {
	// Small-int weights pile every edge into 8 buckets, all far beyond
	// parCutoff — the parallel hook path must engage and stay correct.
	g := gen.Reweight(gen.Random(3000, 18000, 11), gen.WeightsSmallInts, 12)
	f, stats := Run(g, Options{Workers: 4, Stats: true})
	if stats.ParallelBuckets == 0 {
		t.Fatalf("no bucket took the parallel path (buckets=%d max=%d)",
			stats.Buckets, stats.MaxBucket)
	}
	ref := seq.Kruskal(g)
	if math.Abs(f.Weight-ref.Weight) > 1e-9 {
		t.Fatalf("weight %v, Kruskal %v", f.Weight, ref.Weight)
	}
	if err := verify.Forest(g, f); err != nil {
		t.Fatal(err)
	}
}

func TestDistinctWeightsBucketPerEdge(t *testing.T) {
	g := gen.Random(300, 900, 13) // uniform [0,1) weights: ties ~impossible
	_, stats := Run(g, Options{Workers: 2, Stats: true})
	if stats.Buckets != len(g.Edges) {
		t.Fatalf("%d buckets for %d distinct-weight edges", stats.Buckets, len(g.Edges))
	}
	if stats.MaxBucket != 1 {
		t.Fatalf("max bucket %d, want 1", stats.MaxBucket)
	}
}

func TestTraceSpans(t *testing.T) {
	c := obs.NewCollector()
	g := gen.Random(200, 800, 14)
	Run(g, Options{Workers: 2, Trace: c})
	names := map[string]bool{}
	for _, s := range c.Spans() {
		names[s.Name] = true
	}
	for _, want := range []string{"Bor-CAS", "sort", "hook", "collect"} {
		if !names[want] {
			t.Fatalf("missing span %q (got %v)", want, names)
		}
	}
}
