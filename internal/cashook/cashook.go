// Package cashook implements Bor-CAS, a lock-free CAS-hook minimum
// spanning forest engine in the style of the GBBS nd.h spanning-forest
// algorithm. The edge list is sorted once by (weight, id) — the library's
// canonical total order — and partitioned into weight buckets (maximal
// runs of equal weight). Buckets are processed in increasing weight
// order; inside a bucket every edge races concurrently through
// uf.Concurrent.UnionEdge, whose CAS-hook protocol records the winning
// edge id into a per-vertex hook slot. Because all edges of a bucket
// share one weight, any maximal acyclic subset the races select has the
// same total weight, edge count and resulting component partition as
// Kruskal's choice (the matroid exchange property), so the forest weight
// is exactly the MSF weight under arbitrary interleavings.
//
// Unlike the Borůvka variants there is no round loop over the graph at
// all: no find-min scans, no connect-components, no compact-graph. The
// only superlinear work is the single setup sort; the hook phase is
// near-linear in m with the inverted-Ackermann union-find factor. On
// inputs with heavy weight ties (small-integer or quantized weights)
// whole buckets hook in parallel; with fully distinct weights buckets
// degenerate to singletons and the engine becomes a lock-free-UF Kruskal
// behind a parallel sort.
package cashook

import (
	"time"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
	"pmsf/internal/uf"
)

// Options configures a Bor-CAS run.
type Options struct {
	// Workers is the number of parallel workers p; 0 means GOMAXPROCS.
	Workers int
	// Stats enables the phase instrumentation returned in Stats.
	Stats bool
	// Seed drives the setup sample sort's splitter selection only; the
	// result is identical for every seed.
	Seed uint64
	// Trace, when non-nil, receives the setup/sort/hook/collect spans.
	Trace *obs.Collector
}

// Stats is the instrumentation record of a run.
type Stats struct {
	Algorithm string
	Workers   int
	// Buckets is the number of equal-weight runs processed; MaxBucket is
	// the longest run and ParallelBuckets counts the runs long enough to
	// be hooked on the worker team rather than inline.
	Buckets         int
	MaxBucket       int
	ParallelBuckets int
	// Sort, Hook and Collect are the wall times of the three phases.
	Sort    time.Duration
	Hook    time.Duration
	Collect time.Duration
}

// parCutoff is the bucket length at which hooking moves onto the worker
// team; shorter buckets are hooked inline by the calling goroutine (the
// team barrier costs more than a handful of CAS loops).
const parCutoff = 512

// hookGrain is the ForDynamic chunk size of the parallel hook phase.
const hookGrain = 256

// run is the bucket-loop state: everything is allocated in newRun and
// round() (one bucket per call) performs no heap allocation, pinned by
// TestBorCASRoundZeroAllocs.
type run struct {
	p     int
	team  *par.Team
	u     *uf.Concurrent
	hooks []int32 // CAS-hook slots, mutated only through uf.UnionEdge
	edges []graph.WEdge
	cur   int

	buckets, maxBucket, parBuckets int

	lo       int // current bucket start, read by hookBody
	hookBody func(worker, lo, hi int)
}

func workers(opt Options) int {
	if opt.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return opt.Workers
}

// weightLess is the canonical (weight, id) total order.
func weightLess(a, b graph.WEdge) bool {
	if a.W != b.W {
		return a.W < b.W
	}
	return a.ID < b.ID
}

// newRun sorts the edge list and prepares the hook state.
func newRun(g *graph.EdgeList, opt Options, root obs.Span, stats *Stats) *run {
	p := workers(opt)
	r := &run{p: p, team: par.NewTeam(p)}
	r.hookBody = r.hookWork

	edges := make([]graph.WEdge, 0, len(g.Edges))
	for id, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		edges = append(edges, graph.WEdge{U: e.U, V: e.V, ID: int32(id), W: e.W})
	}

	sp := root.Child("sort")
	sp.SetInt("elements", int64(len(edges)))
	start := time.Now()
	labeled(opt.Trace, "Bor-CAS", "sort", func() {
		sorts.SampleSort(p, edges, weightLess, opt.Seed)
	})
	stats.Sort = time.Since(start)
	sp.End()
	r.edges = edges

	r.u = uf.NewConcurrent(g.N)
	r.hooks = make([]int32, g.N)
	par.For(p, g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			r.hooks[v] = uf.NoEdge
		}
	})
	return r
}

// close releases the worker team.
func (r *run) close() { r.team.Close() }

// round processes the next weight bucket (the maximal run of equal
// weight at the cursor) and reports whether one existed. Long buckets
// hook concurrently on the team; short ones inline on the caller.
//
//msf:noalloc
func (r *run) round() bool {
	m := len(r.edges)
	if r.cur >= m {
		return false
	}
	lo := r.cur
	w := r.edges[lo].W
	hi := lo + 1
	for hi < m && r.edges[hi].W == w {
		hi++
	}
	r.cur = hi
	r.buckets++
	if hi-lo > r.maxBucket {
		r.maxBucket = hi - lo
	}
	if hi-lo >= parCutoff && r.p > 1 {
		r.parBuckets++
		r.lo = lo
		r.team.ForDynamic(hi-lo, hookGrain, r.hookBody)
		return true
	}
	for i := lo; i < hi; i++ {
		e := r.edges[i]
		r.u.UnionEdge(e.U, e.V, e.ID, r.hooks)
	}
	return true
}

//msf:noalloc
func (r *run) hookWork(_, lo, hi int) {
	edges, hooks := r.edges[r.lo:], r.hooks
	for i := lo; i < hi; i++ {
		e := edges[i]
		r.u.UnionEdge(e.U, e.V, e.ID, hooks)
	}
}

// Run computes the minimum spanning forest of g.
func Run(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	p := workers(opt)
	stats := &Stats{Algorithm: "Bor-CAS", Workers: p}
	root := obs.StartUnder(opt.Trace, obs.Span{}, "Bor-CAS", "Bor-CAS")
	root.SetInt("workers", int64(p))

	r := newRun(g, opt, root, stats)
	defer r.close()

	hp := root.Child("hook")
	start := time.Now()
	labeled(opt.Trace, "Bor-CAS", "hook", func() {
		for r.round() {
		}
	})
	stats.Hook = time.Since(start)
	stats.Buckets, stats.MaxBucket, stats.ParallelBuckets = r.buckets, r.maxBucket, r.parBuckets
	hp.SetInt("buckets", int64(r.buckets))
	hp.SetInt("max_bucket", int64(r.maxBucket))
	hp.SetInt("parallel_buckets", int64(r.parBuckets))
	hp.End()

	cp := root.Child("collect")
	start = time.Now()
	var f *graph.Forest
	labeled(opt.Trace, "Bor-CAS", "collect", func() {
		f = collect(p, g, r.hooks)
	})
	stats.Collect = time.Since(start)
	cp.SetInt("forest_edges", int64(len(f.EdgeIDs)))
	cp.End()
	root.End()
	return f, stats
}

// collect gathers the claimed hook slots into the Forest: the hooked ids
// are the forest edges and every unhooked vertex is the root of one
// component. The hook phase has quiesced behind the team barrier, so
// plain reads are safe here.
func collect(p int, g *graph.EdgeList, hooks []int32) *graph.Forest {
	picked := par.PackIndices(p, len(hooks), func(v int) bool {
		return hooks[v] != uf.NoEdge
	})
	f := &graph.Forest{
		EdgeIDs:    make([]int32, len(picked)),
		Components: len(hooks) - len(picked),
	}
	for i, v := range picked {
		id := hooks[v]
		f.EdgeIDs[i] = id
		f.Weight += g.Edges[id].W
	}
	return f
}

// labeled runs fn under the collector's pprof phase label when tracing
// is live, and directly otherwise.
func labeled(c *obs.Collector, algo, phase string, fn func()) {
	if c != nil {
		c.Labeled(algo, phase, fn)
		return
	}
	fn()
}
