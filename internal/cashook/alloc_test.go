package cashook

import (
	"runtime"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/obs"
)

// Zero-allocation contract of the bucket loop: all state is allocated in
// newRun (sorted edge copy, hook slots, worker team), so every round() —
// one weight bucket, whether hooked inline or on the team — must run
// without touching the heap.

// roundAllocs runs next() until it reports completion (or maxRounds) and
// returns the per-round heap allocation counts.
func roundAllocs(next func() bool, maxRounds int) []uint64 {
	var out []uint64
	var before, after runtime.MemStats
	for i := 0; i < maxRounds; i++ {
		runtime.ReadMemStats(&before)
		ok := next()
		runtime.ReadMemStats(&after)
		if !ok {
			break
		}
		out = append(out, after.Mallocs-before.Mallocs)
	}
	return out
}

// pinZeroAfterWarmup asserts every round after the first allocated
// nothing.
func pinZeroAfterWarmup(t *testing.T, name string, allocs []uint64) {
	t.Helper()
	if len(allocs) < 3 {
		t.Fatalf("%s: only %d rounds ran; input too small to observe a steady state", name, len(allocs))
	}
	for i, a := range allocs[1:] {
		if a != 0 {
			t.Errorf("%s: round %d allocated %d objects (want 0)", name, i+2, a)
		}
	}
}

func TestBorCASRoundZeroAllocs(t *testing.T) {
	// Small-int weights give 8 fat buckets, all beyond parCutoff, so the
	// pin covers the team-dispatch path as well as the inline one.
	g := gen.Reweight(gen.Random(6000, 36000, 11), gen.WeightsSmallInts, 12)
	var stats Stats
	r := newRun(g, Options{Workers: 4}, obs.StartUnder(nil, obs.Span{}, "pin", "pin"), &stats)
	defer r.close()
	pinZeroAfterWarmup(t, "Bor-CAS", roundAllocs(r.round, 64))
}
