package par

import (
	"testing"

	"pmsf/internal/rng"
)

// The Scanner tests exercise both strategies of every method: the
// sequential small-input fallback as-is, and the team-parallel path by
// lowering seqCutoff to 1 so even tiny inputs (including p > len(a))
// take the barrier-and-partial-sums route.

func naiveExclusiveSum(a []int64) int64 {
	var sum int64
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

func naiveTransposedSum(a []int32, rows, cols int) int64 {
	var sum int32
	for d := 0; d < cols; d++ {
		for r := 0; r < rows; r++ {
			i := r*cols + d
			v := a[i]
			a[i] = sum
			sum += v
		}
	}
	return int64(sum)
}

func naiveBackfill(a []int64) {
	for i := len(a) - 2; i >= 0; i-- {
		if a[i] < 0 {
			a[i] = a[i+1]
		}
	}
}

func scannerForTest(t *testing.T, p int, forcePar bool) (*Scanner, func()) {
	t.Helper()
	team := NewTeam(p)
	s := NewScanner(p, team)
	if forcePar {
		s.seqCutoff = 1
	}
	return s, team.Close
}

func TestScannerExclusiveSum(t *testing.T) {
	r := rng.New(7)
	for _, p := range []int{1, 2, 3, 8} {
		for _, forcePar := range []bool{false, true} {
			s, done := scannerForTest(t, p, forcePar)
			// Sizes below, at, and above the worker count, plus large.
			for _, n := range []int{0, 1, 2, p - 1, p, p + 1, 100, 5000} {
				if n < 0 {
					continue
				}
				a := make([]int64, n)
				b := make([]int64, n)
				for i := range a {
					a[i] = int64(r.Intn(1000)) - 500
					b[i] = a[i]
				}
				wantTotal := naiveExclusiveSum(a)
				gotTotal := s.ExclusiveSum(b)
				if gotTotal != wantTotal {
					t.Fatalf("p=%d force=%v n=%d: total %d, want %d", p, forcePar, n, gotTotal, wantTotal)
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("p=%d force=%v n=%d: scan[%d]=%d, want %d", p, forcePar, n, i, b[i], a[i])
					}
				}
				wantPar := p > 1 && (forcePar || n >= scannerSeqCutoff)
				if n > 0 && s.LastParallel != wantPar {
					t.Fatalf("p=%d force=%v n=%d: LastParallel=%v, want %v", p, forcePar, n, s.LastParallel, wantPar)
				}
			}
			done()
		}
	}
}

func TestScannerTransposedExclusiveSum(t *testing.T) {
	r := rng.New(8)
	for _, p := range []int{1, 3, 8} {
		for _, forcePar := range []bool{false, true} {
			s, done := scannerForTest(t, p, forcePar)
			for _, rows := range []int{1, 2, p, 8} {
				// Cols below p covers the p > work edge of the column split.
				for _, cols := range []int{1, 2, p - 1, 64, 300} {
					if cols < 1 {
						continue
					}
					a := make([]int32, rows*cols)
					b := make([]int32, rows*cols)
					for i := range a {
						a[i] = int32(r.Intn(100))
					}
					copy(b, a)
					wantTotal := naiveTransposedSum(a, rows, cols)
					gotTotal := s.TransposedExclusiveSum(b, rows, cols)
					if gotTotal != wantTotal {
						t.Fatalf("p=%d force=%v %dx%d: total %d, want %d", p, forcePar, rows, cols, gotTotal, wantTotal)
					}
					for i := range a {
						if a[i] != b[i] {
							t.Fatalf("p=%d force=%v %dx%d: [%d]=%d, want %d", p, forcePar, rows, cols, i, b[i], a[i])
						}
					}
				}
			}
			done()
		}
	}
}

func TestScannerBackfillNegative(t *testing.T) {
	r := rng.New(9)
	for _, p := range []int{1, 2, 3, 8} {
		for _, forcePar := range []bool{false, true} {
			s, done := scannerForTest(t, p, forcePar)
			for _, n := range []int{1, 2, p, p + 1, 100, 5000} {
				a := make([]int64, n)
				for i := range a {
					if r.Intn(3) == 0 {
						a[i] = int64(r.Intn(1000))
					} else {
						a[i] = -1
					}
				}
				// The contract: the last element (the starts sentinel) is
				// non-negative.
				a[n-1] = int64(r.Intn(1000))
				b := append([]int64(nil), a...)
				naiveBackfill(a)
				s.BackfillNegative(b)
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("p=%d force=%v n=%d: [%d]=%d, want %d", p, forcePar, n, i, b[i], a[i])
					}
				}
			}
			// All-negative prefix: every slot inherits the sentinel.
			a := make([]int64, 64)
			for i := range a {
				a[i] = -1
			}
			a[63] = 42
			s.BackfillNegative(a)
			for i, v := range a {
				if v != 42 {
					t.Fatalf("p=%d force=%v: all-neg [%d]=%d, want 42", p, forcePar, i, v)
				}
			}
			s.BackfillNegative(nil)
			done()
		}
	}
}
