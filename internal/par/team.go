package par

import "sync"

// Team is a persistent SPMD worker group: p goroutines created once and
// reused across many phases, mirroring the paper's SIMPLE runtime (POSIX
// threads living for the whole algorithm, synchronized by barriers)
// rather than the fork-join Do/For primitives. For iteration-heavy
// algorithms the team amortizes goroutine creation across the O(log n)
// Borůvka rounds; BenchmarkAblationTeam quantifies the difference.
//
// Usage:
//
//	team := par.NewTeam(p)
//	defer team.Close()
//	team.Run(func(w int) { ... })   // phase 1, all workers
//	team.Run(func(w int) { ... })   // phase 2 ...
//
// Run blocks until every worker has finished the phase (an implicit
// barrier). Nested Run calls from inside a phase deadlock by
// construction; use the plain Do/For primitives for nested parallelism.
type Team struct {
	p       int
	work    []chan func(int)
	done    chan struct{}
	closing bool
	mu      sync.Mutex
}

// NewTeam starts a team of p persistent workers. p must be >= 1.
func NewTeam(p int) *Team {
	if p < 1 {
		panic("par: team size must be >= 1")
	}
	t := &Team{
		p:    p,
		work: make([]chan func(int), p),
		done: make(chan struct{}, p),
	}
	for w := 1; w < p; w++ {
		t.work[w] = make(chan func(int))
		go func(w int) {
			for fn := range t.work[w] {
				fn(w)
				t.done <- struct{}{}
			}
		}(w)
	}
	return t
}

// P returns the team size.
func (t *Team) P() int { return t.p }

// Run executes body(w) for w in [0, p) — worker 0 on the calling
// goroutine — and waits for all of them.
func (t *Team) Run(body func(worker int)) {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		panic("par: Run on closed team")
	}
	t.mu.Unlock()
	for w := 1; w < t.p; w++ {
		t.work[w] <- body
	}
	body(0)
	for w := 1; w < t.p; w++ {
		<-t.done
	}
}

// For runs body over [0, n) split into p contiguous blocks on the team.
func (t *Team) For(n int, body func(worker, lo, hi int)) {
	ranges := Split(n, t.p)
	t.Run(func(w int) {
		body(w, ranges[w].Lo, ranges[w].Hi)
	})
}

// Close shuts the workers down. The team must not be used afterwards.
// Close is idempotent.
func (t *Team) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return
	}
	t.closing = true
	for w := 1; w < t.p; w++ {
		close(t.work[w])
	}
}
