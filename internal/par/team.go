package par

import (
	"sync"
	"sync/atomic"

	"pmsf/internal/obs"
)

// Team is a persistent SPMD worker group: p goroutines created once and
// reused across many phases, mirroring the paper's SIMPLE runtime (POSIX
// threads living for the whole algorithm, synchronized by barriers)
// rather than the fork-join Do/For primitives. For iteration-heavy
// algorithms the team amortizes goroutine creation across the O(log n)
// Borůvka rounds; BenchmarkAblationTeam quantifies the difference.
//
// Usage:
//
//	team := par.NewTeam(p)
//	defer team.Close()
//	team.Run(func(w int) { ... })   // phase 1, all workers
//	team.Run(func(w int) { ... })   // phase 2 ...
//
// Run blocks until every worker has finished the phase (an implicit
// barrier). Nested Run calls from inside a phase deadlock by
// construction; use the plain Do/For primitives for nested parallelism.
//
// A phase body that is created once and reused (a method value stored at
// setup) makes Run and ForDynamic allocation-free, which is what the
// Borůvka steady-state loops rely on for their zero-allocs-per-round
// contract.
type Team struct {
	p       int
	work    []chan func(int)
	done    chan struct{}
	closing bool
	mu      sync.Mutex

	// ForDynamic state: the prebound dynWork wrapper reads these, so a
	// ForDynamic call allocates nothing beyond what its body does.
	dynNext   atomic.Int64
	dynChunks atomic.Int64
	dynN      int
	dynGrain  int
	dynBody   func(worker, lo, hi int)
	dynRun    func(int)
}

// NewTeam starts a team of p persistent workers. p must be >= 1.
func NewTeam(p int) *Team {
	if p < 1 {
		panic("par: team size must be >= 1")
	}
	t := &Team{
		p:    p,
		work: make([]chan func(int), p),
		done: make(chan struct{}, p),
	}
	t.dynRun = t.dynWork
	for w := 1; w < p; w++ {
		t.work[w] = make(chan func(int))
		go func(w int) {
			for fn := range t.work[w] {
				fn(w)
				t.done <- struct{}{}
			}
		}(w)
	}
	return t
}

// P returns the team size.
func (t *Team) P() int { return t.p }

// Run executes body(w) for w in [0, p) — worker 0 on the calling
// goroutine — and waits for all of them. Run panics if the team has been
// closed; the workers are gone, so no body could ever execute.
//
//msf:noalloc
func (t *Team) Run(body func(worker int)) {
	t.mu.Lock()
	if t.closing {
		t.mu.Unlock()
		panic("par: Run on closed team")
	}
	t.mu.Unlock()
	if obs.MetricsOn() {
		obs.ParPhases.Add(1)
	}
	for w := 1; w < t.p; w++ {
		t.work[w] <- body
	}
	body(0)
	for w := 1; w < t.p; w++ {
		<-t.done
	}
}

// For runs body over [0, n) split into p contiguous blocks on the team.
func (t *Team) For(n int, body func(worker, lo, hi int)) {
	ranges := Split(n, t.p)
	t.Run(func(w int) {
		body(w, ranges[w].Lo, ranges[w].Hi)
	})
}

// ForDynamic runs body over [0, n) with the team's workers pulling
// grain-sized chunks from a shared atomic counter — the Team counterpart
// of the package-level ForDynamic, with the same chunk metrics. Use it
// when per-index cost is irregular (per-vertex adjacency lists, skewed
// duplicate runs). body must not call back into the team.
//
//msf:noalloc
func (t *Team) ForDynamic(n, grain int, body func(worker, lo, hi int)) {
	if grain < 1 {
		grain = 1
	}
	t.dynN, t.dynGrain, t.dynBody = n, grain, body
	t.dynNext.Store(0)
	t.dynChunks.Store(0)
	t.Run(t.dynRun)
	t.dynBody = nil
	if obs.MetricsOn() {
		obs.ParChunks.Add(t.dynChunks.Load())
	}
}

// dynWork is the persistent per-worker chunk-claim loop behind
// ForDynamic; it is bound once in NewTeam so ForDynamic never creates a
// closure.
//
//msf:noalloc
func (t *Team) dynWork(w int) {
	n, grain := t.dynN, t.dynGrain
	metrics := obs.MetricsOn()
	for {
		lo := int(t.dynNext.Add(int64(grain))) - grain
		if lo >= n {
			return
		}
		hi := lo + grain
		if hi > n {
			hi = n
		}
		if metrics {
			t.dynChunks.Add(1)
		}
		t.dynBody(w, lo, hi)
	}
}

// Close shuts the workers down. The team must not be used afterwards.
// Close is idempotent.
func (t *Team) Close() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closing {
		return
	}
	t.closing = true
	for w := 1; w < t.p; w++ {
		close(t.work[w])
	}
}
