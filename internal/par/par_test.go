package par

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSplitProperties(t *testing.T) {
	f := func(n, p uint8) bool {
		ranges := Split(int(n), int(p))
		wantP := int(p)
		if wantP < 1 {
			wantP = 1
		}
		if len(ranges) != wantP {
			return false
		}
		// Contiguous cover of [0, n), sizes differ by at most 1.
		pos, minLen, maxLen := 0, int(n)+1, -1
		for _, r := range ranges {
			if r.Lo != pos || r.Hi < r.Lo {
				return false
			}
			pos = r.Hi
			if l := r.Len(); l < minLen {
				minLen = l
			}
			if l := r.Len(); l > maxLen {
				maxLen = l
			}
		}
		return pos == int(n) && maxLen-minLen <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestClamp(t *testing.T) {
	cases := []struct{ p, n, want int }{
		{0, 10, 1}, {-3, 10, 1}, {4, 10, 4}, {20, 10, 10}, {4, 0, 4}, {0, 0, 1},
	}
	for _, c := range cases {
		if got := Clamp(c.p, c.n); got != c.want {
			t.Errorf("Clamp(%d,%d) = %d, want %d", c.p, c.n, got, c.want)
		}
	}
}

func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 3, 8, 100} {
		for _, n := range []int{0, 1, 7, 100, 1000} {
			hits := make([]int32, n)
			For(p, n, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d: index %d hit %d times", p, n, i, h)
				}
			}
		}
	}
}

func TestForDynamicCoversEveryIndexOnce(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		for _, grain := range []int{1, 3, 64, 10_000} {
			const n = 1000
			hits := make([]int32, n)
			ForDynamic(p, n, grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d grain=%d: index %d hit %d times", p, grain, i, h)
				}
			}
		}
	}
}

func TestDoRunsAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 16} {
		seen := make([]int32, p)
		Do(p, func(w int) { atomic.AddInt32(&seen[w], 1) })
		for w, c := range seen {
			if c != 1 {
				t.Fatalf("p=%d: worker %d ran %d times", p, w, c)
			}
		}
	}
}

func TestReduceInt64(t *testing.T) {
	const n = 12345
	got := ReduceInt64(7, n, func(_, lo, hi int) int64 {
		var s int64
		for i := lo; i < hi; i++ {
			s += int64(i)
		}
		return s
	})
	want := int64(n) * (n - 1) / 2
	if got != want {
		t.Fatalf("sum = %d, want %d", got, want)
	}
}

func TestMinFloat64(t *testing.T) {
	vals := []float64{5, 3, 8, 1.5, 9, 2}
	got := MinFloat64(3, len(vals), 1e18, func(_, lo, hi int) float64 {
		m := 1e18
		for i := lo; i < hi; i++ {
			if vals[i] < m {
				m = vals[i]
			}
		}
		return m
	})
	if got != 1.5 {
		t.Fatalf("min = %g, want 1.5", got)
	}
	if got := MinFloat64(3, 0, 42, func(_, _, _ int) float64 { return 0 }); got != 42 {
		t.Fatalf("empty min = %g, want init 42", got)
	}
}

func TestBarrier(t *testing.T) {
	const p, rounds = 8, 50
	b := NewBarrier(p)
	var phase atomic.Int64
	var violations atomic.Int64
	Do(p, func(w int) {
		for r := 0; r < rounds; r++ {
			// Everyone bumps, then waits; after the barrier all p bumps
			// of this round must be visible.
			phase.Add(1)
			b.Wait()
			if got := phase.Load(); got < int64((r+1)*p) {
				violations.Add(1)
			}
			b.Wait()
		}
	})
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d barrier violations", v)
	}
	if got := phase.Load(); got != int64(p*rounds) {
		t.Fatalf("phase = %d, want %d", phase.Load(), p*rounds)
	}
}

func TestNewBarrierPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewBarrier(0) did not panic")
		}
	}()
	NewBarrier(0)
}

func TestDefaultWorkersPositive(t *testing.T) {
	if DefaultWorkers() < 1 {
		t.Fatal("DefaultWorkers < 1")
	}
}

func TestDoPropagatesWorkerPanic(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic not propagated")
		}
		if r != "boom-3" {
			t.Fatalf("unexpected panic value %v", r)
		}
	}()
	Do(8, func(w int) {
		if w == 3 {
			panic("boom-3")
		}
	})
}

func TestDoPropagatesCallerPanicLast(t *testing.T) {
	// Worker 0 runs on the caller; its panic must still wait for all
	// other workers to finish (no goroutine leaks) before re-raising.
	var finished atomic.Int32
	defer func() {
		if recover() == nil {
			t.Fatal("panic lost")
		}
		if finished.Load() != 7 {
			t.Fatalf("only %d workers finished before the re-raise", finished.Load())
		}
	}()
	Do(8, func(w int) {
		if w == 0 {
			panic("main-worker")
		}
		finished.Add(1)
	})
}
