// Package par provides the fork-join parallel primitives on which the
// parallel MSF algorithms are built: parallel-for over index ranges,
// reductions, prefix sums, reusable barriers, and a static work
// partitioner.
//
// The package deliberately mirrors the SPMD structure of the SIMPLE
// primitives library used by the paper (Bader & JáJá): each phase forks p
// workers over a contiguous range, and phases are separated by implicit
// barriers (the join). Worker identifiers are stable within a phase so
// per-worker scratch space can be preallocated.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"

	"pmsf/internal/obs"
)

// DefaultWorkers returns the default parallelism for the library:
// GOMAXPROCS at the time of the call.
func DefaultWorkers() int {
	return runtime.GOMAXPROCS(0)
}

// Clamp bounds p to [1, n] when n > 0 (no point in more workers than
// items), and to at least 1 otherwise.
func Clamp(p, n int) int {
	if p < 1 {
		p = 1
	}
	if n > 0 && p > n {
		p = n
	}
	return p
}

// Range describes a half-open index interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Block returns the w-th of p nearly equal contiguous ranges of [0, n)
// without allocating: Block(n, p, w) equals Split(n, p)[w]. Phase bodies
// that run on a persistent Team use it to compute their own range, which
// keeps the steady-state loop free of the []Range allocation Split
// performs.
//
//msf:noalloc
func Block(n, p, w int) (lo, hi int) {
	base := n / p
	extra := n % p
	lo = w * base
	if w < extra {
		lo += w
		hi = lo + base + 1
		return lo, hi
	}
	lo += extra
	return lo, lo + base
}

// Split partitions [0, n) into p nearly equal contiguous ranges. The first
// n%p ranges receive one extra element. Empty ranges are possible when
// p > n.
func Split(n, p int) []Range {
	if p < 1 {
		p = 1
	}
	ranges := make([]Range, p)
	base := n / p
	extra := n % p
	lo := 0
	for i := 0; i < p; i++ {
		size := base
		if i < extra {
			size++
		}
		ranges[i] = Range{lo, lo + size}
		lo += size
	}
	return ranges
}

// Do runs body(worker) on p goroutines with worker IDs 0..p-1 and waits
// for all of them. It is the bare SPMD fork-join.
//
// A panic in any worker is captured and re-raised on the calling
// goroutine after every worker has finished, so callers see library
// panics as ordinary panics with a usable stack instead of a crashed
// runtime. When several workers panic, the lowest worker id wins.
func Do(p int, body func(worker int)) {
	if obs.MetricsOn() {
		obs.ParPhases.Add(1)
	}
	if p <= 1 {
		body(0)
		return
	}
	panics := make([]any, p)
	var wg sync.WaitGroup
	wg.Add(p - 1)
	for w := 1; w < p; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[w] = r
				}
			}()
			body(w)
		}(w)
	}
	func() {
		defer func() {
			if r := recover(); r != nil {
				panics[0] = r
			}
		}()
		body(0)
	}()
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
}

// For runs body over [0, n) split into p contiguous blocks, one per
// worker: body(worker, lo, hi). Workers with empty ranges are still
// invoked (with lo == hi) so per-worker side effects remain uniform.
func For(p, n int, body func(worker, lo, hi int)) {
	p = Clamp(p, n)
	if p == 1 {
		body(0, 0, n)
		return
	}
	ranges := Split(n, p)
	Do(p, func(w int) {
		body(w, ranges[w].Lo, ranges[w].Hi)
	})
}

// ForDynamic runs body(i) for each i in [0, n) using p workers pulling
// grain-sized chunks from a shared atomic counter. Use it when per-index
// cost is irregular (e.g. per-vertex adjacency list sorts).
func ForDynamic(p, n, grain int, body func(worker, lo, hi int)) {
	p = Clamp(p, n)
	if grain < 1 {
		grain = 1
	}
	if p == 1 {
		body(0, 0, n)
		return
	}
	var next, chunks atomic.Int64
	metrics := obs.MetricsOn()
	Do(p, func(w int) {
		for {
			lo := int(next.Add(int64(grain))) - grain
			if lo >= n {
				return
			}
			hi := lo + grain
			if hi > n {
				hi = n
			}
			if metrics {
				chunks.Add(1)
			}
			body(w, lo, hi)
		}
	})
	if metrics {
		obs.ParChunks.Add(chunks.Load())
	}
}

// ReduceInt64 computes the sum of per-worker partial results of body over
// [0, n) split into p blocks.
func ReduceInt64(p, n int, body func(worker, lo, hi int) int64) int64 {
	p = Clamp(p, n)
	partial := make([]int64, p)
	For(p, n, func(w, lo, hi int) {
		partial[w] = body(w, lo, hi)
	})
	var sum int64
	for _, v := range partial {
		sum += v
	}
	return sum
}

// MinFloat64 computes the minimum of per-worker partial minima of body
// over [0, n), seeded with init. Workers whose range is empty do not
// contribute, so init is returned when n == 0.
func MinFloat64(p, n int, init float64, body func(worker, lo, hi int) float64) float64 {
	p = Clamp(p, n)
	partial := make([]float64, p)
	empty := make([]bool, p)
	For(p, n, func(w, lo, hi int) {
		if lo == hi {
			empty[w] = true
			return
		}
		partial[w] = body(w, lo, hi)
	})
	min := init
	for w, v := range partial {
		if !empty[w] && v < min {
			min = v
		}
	}
	return min
}

// Barrier is a reusable p-party barrier for long-lived SPMD worker teams.
// All p parties must call Wait; the b-th use of the barrier completes when
// the last party arrives.
type Barrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	phase  uint64
	inited bool
}

// NewBarrier returns a barrier for n parties. n must be >= 1.
func NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("par: barrier size must be >= 1")
	}
	b := &Barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	b.inited = true
	return b
}

// Wait blocks until all n parties have called Wait for the current phase.
func (b *Barrier) Wait() {
	b.mu.Lock()
	phase := b.phase
	b.count++
	if b.count == b.n {
		b.count = 0
		b.phase++
		b.cond.Broadcast()
		b.mu.Unlock()
		return
	}
	for phase == b.phase {
		b.cond.Wait()
	}
	b.mu.Unlock()
}
