package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestTeamRunAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		team := NewTeam(p)
		seen := make([]int32, p)
		for round := 0; round < 10; round++ {
			team.Run(func(w int) { atomic.AddInt32(&seen[w], 1) })
		}
		team.Close()
		for w, c := range seen {
			if c != 10 {
				t.Fatalf("p=%d: worker %d ran %d phases, want 10", p, w, c)
			}
		}
	}
}

func TestTeamRunIsBarrier(t *testing.T) {
	team := NewTeam(8)
	defer team.Close()
	var counter atomic.Int64
	for round := 1; round <= 20; round++ {
		team.Run(func(int) { counter.Add(1) })
		if got := counter.Load(); got != int64(8*round) {
			t.Fatalf("after round %d: counter %d, want %d", round, got, 8*round)
		}
	}
}

func TestTeamFor(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	const n = 1003
	hits := make([]int32, n)
	team.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestTeamCloseIdempotent(t *testing.T) {
	team := NewTeam(3)
	team.Close()
	team.Close() // must not panic
}

func TestTeamRunAfterClosePanics(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	team.Run(func(int) {})
}

func TestNewTeamZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTeam(0)
}

func TestTeamSizeOne(t *testing.T) {
	team := NewTeam(1)
	defer team.Close()
	ran := false
	team.Run(func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if team.P() != 1 {
		t.Fatal("P wrong")
	}
}

func TestTeamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		team := NewTeam(8)
		team.Run(func(int) {})
		team.Close()
	}
	// Give the workers a moment to exit.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}
