package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"pmsf/internal/obs"
)

func TestTeamRunAllWorkers(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		team := NewTeam(p)
		seen := make([]int32, p)
		for round := 0; round < 10; round++ {
			team.Run(func(w int) { atomic.AddInt32(&seen[w], 1) })
		}
		team.Close()
		for w, c := range seen {
			if c != 10 {
				t.Fatalf("p=%d: worker %d ran %d phases, want 10", p, w, c)
			}
		}
	}
}

func TestTeamRunIsBarrier(t *testing.T) {
	team := NewTeam(8)
	defer team.Close()
	var counter atomic.Int64
	for round := 1; round <= 20; round++ {
		team.Run(func(int) { counter.Add(1) })
		if got := counter.Load(); got != int64(8*round) {
			t.Fatalf("after round %d: counter %d, want %d", round, got, 8*round)
		}
	}
}

func TestTeamFor(t *testing.T) {
	team := NewTeam(4)
	defer team.Close()
	const n = 1003
	hits := make([]int32, n)
	team.For(n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			atomic.AddInt32(&hits[i], 1)
		}
	})
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d hit %d times", i, h)
		}
	}
}

func TestTeamCloseIdempotent(t *testing.T) {
	team := NewTeam(3)
	team.Close()
	team.Close() // must not panic
}

func TestTeamRunAfterClosePanics(t *testing.T) {
	team := NewTeam(2)
	team.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Run after Close did not panic")
		}
	}()
	team.Run(func(int) {}) //msf:ignore teamlifecycle this test deliberately runs after Close to pin the panic
}

func TestNewTeamZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewTeam(0)
}

func TestTeamSizeOne(t *testing.T) {
	team := NewTeam(1)
	defer team.Close()
	ran := false
	team.Run(func(w int) {
		if w != 0 {
			t.Errorf("worker id %d", w)
		}
		ran = true
	})
	if !ran {
		t.Fatal("body did not run")
	}
	if team.P() != 1 {
		t.Fatal("P wrong")
	}
}

func TestTeamNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		team := NewTeam(8)
		team.Run(func(int) {})
		team.Close()
	}
	// Give the workers a moment to exit.
	for i := 0; i < 100; i++ {
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before, %d after", before, runtime.NumGoroutine())
}

func TestTeamForDynamicCoversAll(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		team := NewTeam(p)
		for _, tc := range []struct{ n, grain int }{
			{0, 16}, {1, 16}, {17, 16}, {1000, 1}, {1000, 7}, {1000, 4096}, {5, 0},
		} {
			hits := make([]int32, tc.n)
			team.ForDynamic(tc.n, tc.grain, func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("p=%d n=%d grain=%d: index %d hit %d times", p, tc.n, tc.grain, i, h)
				}
			}
		}
		team.Close()
	}
}

func TestTeamForDynamicIrregular(t *testing.T) {
	// Skewed per-index cost: dynamic chunking must still cover every
	// index exactly once and use more than one worker's chunks.
	team := NewTeam(4)
	defer team.Close()
	const n = 400
	var sum atomic.Int64
	workers := make([]int32, 4)
	team.ForDynamic(n, 8, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			// index 0 is 400x the cost of the rest
			spin := 1
			if i == 0 {
				spin = 400
			}
			for s := 0; s < spin; s++ {
				sum.Add(1)
			}
		}
		atomic.AddInt32(&workers[w], 1)
	})
	if got := sum.Load(); got != n-1+400 {
		t.Fatalf("sum %d, want %d", got, n-1+400)
	}
}

// Every entry point must refuse a closed team from the caller's
// goroutine — the workers are gone, so no body could ever run.
func TestTeamAfterClosePanicsEveryPath(t *testing.T) {
	paths := map[string]func(*Team){
		"Run":        func(tm *Team) { tm.Run(func(int) {}) },
		"For":        func(tm *Team) { tm.For(10, func(_, _, _ int) {}) },
		"ForDynamic": func(tm *Team) { tm.ForDynamic(10, 2, func(_, _, _ int) {}) },
	}
	for name, call := range paths {
		for _, p := range []int{1, 3} {
			team := NewTeam(p)
			team.Close()
			func() {
				defer func() {
					if recover() == nil {
						t.Fatalf("%s (p=%d) after Close did not panic", name, p)
					}
				}()
				call(team)
			}()
		}
	}
}

func TestTeamForDynamicChunkMetrics(t *testing.T) {
	team := NewTeam(3)
	defer team.Close()
	obs.EnableMetrics(true)
	defer obs.EnableMetrics(false)
	phases0, chunks0 := obs.ParPhases.Value(), obs.ParChunks.Value()
	const n, grain = 1000, 64
	team.ForDynamic(n, grain, func(_, _, _ int) {})
	if got := obs.ParPhases.Value() - phases0; got != 1 {
		t.Fatalf("phases counted %d, want 1", got)
	}
	want := int64((n + grain - 1) / grain)
	if got := obs.ParChunks.Value() - chunks0; got != want {
		t.Fatalf("chunks counted %d, want %d", got, want)
	}
}

func TestTeamForDynamicZeroAlloc(t *testing.T) {
	// The prebound chunk-claim loop must keep ForDynamic itself off the
	// heap when the body is a reused value.
	team := NewTeam(2)
	defer team.Close()
	body := func(_, _, _ int) {}
	team.ForDynamic(100, 8, body) // warm up
	allocs := testing.AllocsPerRun(50, func() {
		team.ForDynamic(100, 8, body)
	})
	if allocs != 0 {
		t.Fatalf("ForDynamic allocated %.1f objects per call, want 0", allocs)
	}
}
