package par

import (
	"fmt"
	"testing"
)

func BenchmarkForOverhead(b *testing.B) {
	// Fork-join cost of an (almost) empty body at various p — the
	// per-phase overhead every Borůvka iteration pays.
	for _, p := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			sink := make([]int64, p)
			for i := 0; i < b.N; i++ {
				For(p, p, func(w, lo, hi int) { sink[w]++ })
			}
		})
	}
}

func BenchmarkScanInt64(b *testing.B) {
	const n = 1 << 20
	a := make([]int64, n)
	for i := range a {
		a[i] = int64(i & 7)
	}
	for _, p := range []int{1, 4} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			work := make([]int64, n)
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				copy(work, a)
				b.StartTimer()
				ScanInt64(p, work)
			}
		})
	}
}

func BenchmarkPackIndices(b *testing.B) {
	const n = 1 << 20
	for i := 0; i < b.N; i++ {
		PackIndices(4, n, func(i int) bool { return i%3 == 0 })
	}
}

func BenchmarkTeamVsDo(b *testing.B) {
	const phases = 32
	b.Run("do", func(b *testing.B) {
		sink := make([]int64, 4)
		for i := 0; i < b.N; i++ {
			for ph := 0; ph < phases; ph++ {
				Do(4, func(w int) { sink[w]++ })
			}
		}
	})
	b.Run("team", func(b *testing.B) {
		team := NewTeam(4)
		defer team.Close()
		sink := make([]int64, 4)
		for i := 0; i < b.N; i++ {
			for ph := 0; ph < phases; ph++ {
				team.Run(func(w int) { sink[w]++ })
			}
		}
	})
}
