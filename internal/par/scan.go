package par

// Prefix sums ("scans") are the glue of the Borůvka compact-graph step:
// after a sort brings duplicate edges together, an exclusive scan over
// per-segment counts computes the write offsets of the merged output.

// ExclusiveSumInt32 computes, in place, the exclusive prefix sum of a and
// returns the total. a[i] becomes sum(a[0:i]).
func ExclusiveSumInt32(a []int32) int32 {
	var sum int32
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

// ExclusiveSumInt64 is ExclusiveSumInt32 for int64 slices.
func ExclusiveSumInt64(a []int64) int64 {
	var sum int64
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

// ScanInt64 computes the exclusive prefix sum of a in parallel with p
// workers using the classic two-pass (local-sum, offset, local-scan)
// scheme, and returns the total. For small inputs it falls back to the
// sequential scan.
func ScanInt64(p int, a []int64) int64 {
	n := len(a)
	const seqCutoff = 1 << 12
	p = Clamp(p, n/seqCutoff)
	if p <= 1 {
		return ExclusiveSumInt64(a)
	}
	ranges := Split(n, p)
	partial := make([]int64, p)
	// Pass 1: per-block totals.
	Do(p, func(w int) {
		var sum int64
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			sum += a[i]
		}
		partial[w] = sum
	})
	total := ExclusiveSumInt64(partial)
	// Pass 2: per-block exclusive scans seeded with the block offset.
	Do(p, func(w int) {
		sum := partial[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			v := a[i]
			a[i] = sum
			sum += v
		}
	})
	return total
}

// CountTrue returns the number of true values in mask using p workers.
func CountTrue(p int, mask []bool) int {
	return int(ReduceInt64(p, len(mask), func(_, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			if mask[i] {
				c++
			}
		}
		return c
	}))
}

// PackIndices returns the indices i in [0, n) for which keep(i) is true,
// preserving order, computed with p workers via count + scan + scatter.
func PackIndices(p, n int, keep func(i int) bool) []int32 {
	p = Clamp(p, n)
	counts := make([]int64, p)
	ranges := Split(n, p)
	Do(p, func(w int) {
		var c int64
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[w] = c
	})
	total := ExclusiveSumInt64(counts)
	out := make([]int32, total)
	Do(p, func(w int) {
		pos := counts[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			if keep(i) {
				out[pos] = int32(i)
				pos++
			}
		}
	})
	return out
}
