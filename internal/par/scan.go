package par

import "pmsf/internal/obs"

// Prefix sums ("scans") are the glue of the Borůvka compact-graph step:
// after a sort brings duplicate edges together, an exclusive scan over
// per-segment counts computes the write offsets of the merged output.
//
// Two kinds of scans appear in the hot loops:
//
//   - O(p) coordinator scans over per-worker counters (harvest offsets,
//     filter offsets, the compactor's head pack). p is tiny, so these
//     stay sequential on the coordinator by design — parallelizing them
//     would cost more in barriers than the handful of adds they do.
//   - Θ(nd·p) scans over per-worker histogram slabs (up to 65536·p
//     entries per radix pass) and Θ(n) fills over the per-vertex starts
//     array. These are real serial bottlenecks at scale; Scanner below
//     runs them on the persistent worker team.

// ExclusiveSumInt32 computes, in place, the exclusive prefix sum of a and
// returns the total. a[i] becomes sum(a[0:i]).
func ExclusiveSumInt32(a []int32) int32 {
	var sum int32
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

// ExclusiveSumInt64 is ExclusiveSumInt32 for int64 slices.
func ExclusiveSumInt64(a []int64) int64 {
	var sum int64
	for i, v := range a {
		a[i] = sum
		sum += v
	}
	return sum
}

// ScanInt64 computes the exclusive prefix sum of a in parallel with p
// workers using the classic two-pass (local-sum, offset, local-scan)
// scheme, and returns the total. For small inputs it falls back to the
// sequential scan.
func ScanInt64(p int, a []int64) int64 {
	n := len(a)
	const seqCutoff = 1 << 12
	p = Clamp(p, n/seqCutoff)
	if p <= 1 {
		return ExclusiveSumInt64(a)
	}
	ranges := Split(n, p)
	partial := make([]int64, p)
	// Pass 1: per-block totals.
	Do(p, func(w int) {
		var sum int64
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			sum += a[i]
		}
		partial[w] = sum
	})
	total := ExclusiveSumInt64(partial)
	// Pass 2: per-block exclusive scans seeded with the block offset.
	Do(p, func(w int) {
		sum := partial[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			v := a[i]
			a[i] = sum
			sum += v
		}
	})
	return total
}

// scannerSeqCutoff is the input size below which Scanner methods fall
// back to the sequential loop: two team barriers cost more than a few
// thousand adds on one core.
const scannerSeqCutoff = 1 << 12

// Scanner is the reusable team-based scan engine behind the packed-radix
// compactor's offset computation: the classic two-pass (per-block sum,
// coordinator scan of p partials, per-block rescan) scheme, with the
// phase bodies prebound at construction so steady-state calls perform
// zero heap allocations — the same contract as sorts.Grouper.
//
// A Scanner is owned by a single goroutine; the parallelism comes from
// the team its phases run on. Small inputs take a sequential fallback
// (two barriers cost more than a few thousand adds); LastParallel
// reports which strategy the most recent call used, for span
// attribution.
type Scanner struct {
	p    int
	team *Team

	partial []int64 // per-worker block totals / seeds

	// Per-call state read by the prebound worker bodies.
	a64        []int64
	a32        []int32
	rows, cols int

	sumBody, scanBody   func(int)
	tsumBody, tscanBody func(int)
	seedBody, fillBody  func(int)

	// seqCutoff is scannerSeqCutoff; tests lower it to force the
	// parallel path on small inputs.
	seqCutoff int

	// LastParallel reports whether the most recent call took the
	// team-parallel path (false: sequential fallback).
	LastParallel bool
}

// NewScanner returns a scanner running its phases on team (of size p).
func NewScanner(p int, team *Team) *Scanner {
	s := &Scanner{p: p, team: team, partial: make([]int64, p), seqCutoff: scannerSeqCutoff}
	s.sumBody = s.sumWork
	s.scanBody = s.scanWork
	s.tsumBody = s.tsumWork
	s.tscanBody = s.tscanWork
	s.seedBody = s.seedWork
	s.fillBody = s.fillWork
	return s
}

// ExclusiveSum computes, in place, the exclusive prefix sum of a on the
// team and returns the total.
//
//msf:noalloc
func (s *Scanner) ExclusiveSum(a []int64) int64 {
	if s.p == 1 || len(a) < s.seqCutoff {
		s.LastParallel = false
		return ExclusiveSumInt64(a)
	}
	s.LastParallel = true
	if obs.MetricsOn() {
		obs.ParScans.Add(1)
	}
	s.a64 = a
	s.team.Run(s.sumBody)
	total := ExclusiveSumInt64(s.partial)
	s.team.Run(s.scanBody)
	s.a64 = nil
	return total
}

//msf:noalloc
func (s *Scanner) sumWork(w int) {
	lo, hi := Block(len(s.a64), s.p, w)
	var sum int64
	for i := lo; i < hi; i++ {
		sum += s.a64[i]
	}
	s.partial[w] = sum
}

//msf:noalloc
func (s *Scanner) scanWork(w int) {
	lo, hi := Block(len(s.a64), s.p, w)
	a := s.a64
	sum := s.partial[w]
	for i := lo; i < hi; i++ {
		v := a[i]
		a[i] = sum
		sum += v
	}
}

// TransposedExclusiveSum scans a rows×cols row-major int32 matrix in
// COLUMN-major (transposed) order, in place, and returns the total.
// This is exactly the radix offset computation: row w holds worker w's
// per-digit histogram, and the digit-major exclusive scan turns counts
// into scatter offsets such that workers write their contiguous blocks
// in worker order within each digit — a stable pass. The team
// partitions the column space, so the Θ(rows·cols) scan that was
// coordinator-serial runs at full parallelism.
//
// The total must fit in int32 (histogram counts sum to the element
// count, which the compactor already bounds by int32 offsets).
//
//msf:noalloc
func (s *Scanner) TransposedExclusiveSum(a []int32, rows, cols int) int64 {
	if s.p == 1 || rows*cols < s.seqCutoff {
		s.LastParallel = false
		var sum int32
		for d := 0; d < cols; d++ {
			for r := 0; r < rows; r++ {
				i := r*cols + d
				v := a[i]
				a[i] = sum
				sum += v
			}
		}
		return int64(sum)
	}
	s.LastParallel = true
	if obs.MetricsOn() {
		obs.ParScans.Add(1)
	}
	s.a32, s.rows, s.cols = a, rows, cols
	s.team.Run(s.tsumBody)
	total := ExclusiveSumInt64(s.partial)
	s.team.Run(s.tscanBody)
	s.a32 = nil
	return total
}

//msf:noalloc
func (s *Scanner) tsumWork(w int) {
	lo, hi := Block(s.cols, s.p, w)
	a, rows, cols := s.a32, s.rows, s.cols
	var sum int64
	for d := lo; d < hi; d++ {
		for r := 0; r < rows; r++ {
			sum += int64(a[r*cols+d])
		}
	}
	s.partial[w] = sum
}

//msf:noalloc
func (s *Scanner) tscanWork(w int) {
	lo, hi := Block(s.cols, s.p, w)
	a, rows, cols := s.a32, s.rows, s.cols
	pos := s.partial[w]
	for d := lo; d < hi; d++ {
		for r := 0; r < rows; r++ {
			i := r*cols + d
			v := a[i]
			a[i] = int32(pos)
			pos += int64(v)
		}
	}
}

// BackfillNegative replaces every negative a[i] with the nearest
// following non-negative value, in place: the per-vertex segment-starts
// fill of the compact-graph step (empty vertices inherit the next
// segment boundary). The last element must be non-negative (it is the
// starts sentinel). The team partitions the index space; each block's
// seed is the first non-negative value to its right, computed from p
// per-block "first non-negative" summaries.
//
//msf:noalloc
func (s *Scanner) BackfillNegative(a []int64) {
	n := len(a)
	if n == 0 {
		return
	}
	if s.p == 1 || n < s.seqCutoff {
		s.LastParallel = false
		for i := n - 2; i >= 0; i-- {
			if a[i] < 0 {
				a[i] = a[i+1]
			}
		}
		return
	}
	s.LastParallel = true
	if obs.MetricsOn() {
		obs.ParScans.Add(1)
	}
	s.a64 = a
	s.team.Run(s.seedBody)
	// Right-to-left over the p block summaries: each block's fill seed
	// is the nearest first-non-negative to its right (the sentinel when
	// none exists).
	cur := a[n-1]
	for w := s.p - 1; w >= 0; w-- {
		first := s.partial[w]
		s.partial[w] = cur
		if first >= 0 {
			cur = first
		}
	}
	s.team.Run(s.fillBody)
	s.a64 = nil
}

//msf:noalloc
func (s *Scanner) seedWork(w int) {
	lo, hi := Block(len(s.a64)-1, s.p, w)
	a := s.a64
	first := int64(-1)
	for i := lo; i < hi; i++ {
		if a[i] >= 0 {
			first = a[i]
			break
		}
	}
	s.partial[w] = first
}

//msf:noalloc
func (s *Scanner) fillWork(w int) {
	lo, hi := Block(len(s.a64)-1, s.p, w)
	a := s.a64
	run := s.partial[w]
	for i := hi - 1; i >= lo; i-- {
		if a[i] < 0 {
			a[i] = run
		} else {
			run = a[i]
		}
	}
}

// CountTrue returns the number of true values in mask using p workers.
func CountTrue(p int, mask []bool) int {
	return int(ReduceInt64(p, len(mask), func(_, lo, hi int) int64 {
		var c int64
		for i := lo; i < hi; i++ {
			if mask[i] {
				c++
			}
		}
		return c
	}))
}

// PackIndices returns the indices i in [0, n) for which keep(i) is true,
// preserving order, computed with p workers via count + scan + scatter.
func PackIndices(p, n int, keep func(i int) bool) []int32 {
	p = Clamp(p, n)
	counts := make([]int64, p)
	ranges := Split(n, p)
	Do(p, func(w int) {
		var c int64
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			if keep(i) {
				c++
			}
		}
		counts[w] = c
	})
	total := ExclusiveSumInt64(counts)
	out := make([]int32, total)
	Do(p, func(w int) {
		pos := counts[w]
		for i := ranges[w].Lo; i < ranges[w].Hi; i++ {
			if keep(i) {
				out[pos] = int32(i)
				pos++
			}
		}
	})
	return out
}
