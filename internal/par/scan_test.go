package par

import (
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

func TestExclusiveSumInt32(t *testing.T) {
	a := []int32{3, 1, 4, 1, 5}
	total := ExclusiveSumInt32(a)
	want := []int32{0, 3, 4, 8, 9}
	if total != 14 {
		t.Fatalf("total = %d, want 14", total)
	}
	for i := range want {
		if a[i] != want[i] {
			t.Fatalf("a[%d] = %d, want %d", i, a[i], want[i])
		}
	}
}

func TestScanInt64MatchesSequential(t *testing.T) {
	r := rng.New(1)
	for _, n := range []int{0, 1, 100, 1 << 12, 1<<16 + 7} {
		a := make([]int64, n)
		b := make([]int64, n)
		for i := range a {
			a[i] = int64(r.Intn(1000)) - 500
			b[i] = a[i]
		}
		totalSeq := ExclusiveSumInt64(a)
		totalPar := ScanInt64(8, b)
		if totalSeq != totalPar {
			t.Fatalf("n=%d: totals differ: %d vs %d", n, totalSeq, totalPar)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("n=%d: scan[%d] = %d, want %d", n, i, b[i], a[i])
			}
		}
	}
}

func TestScanInt64Property(t *testing.T) {
	f := func(vals []int16) bool {
		a := make([]int64, len(vals))
		for i, v := range vals {
			a[i] = int64(v)
		}
		b := append([]int64(nil), a...)
		t1 := ExclusiveSumInt64(a)
		t2 := ScanInt64(4, b)
		if t1 != t2 {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCountTrue(t *testing.T) {
	mask := make([]bool, 1000)
	want := 0
	r := rng.New(2)
	for i := range mask {
		if r.Bool() {
			mask[i] = true
			want++
		}
	}
	if got := CountTrue(4, mask); got != want {
		t.Fatalf("CountTrue = %d, want %d", got, want)
	}
}

func TestPackIndices(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		const n = 997
		got := PackIndices(p, n, func(i int) bool { return i%3 == 0 })
		want := 0
		for i := 0; i < n; i += 3 {
			if int(got[want]) != i {
				t.Fatalf("p=%d: got[%d] = %d, want %d", p, want, got[want], i)
			}
			want++
		}
		if len(got) != want {
			t.Fatalf("p=%d: packed %d indices, want %d", p, len(got), want)
		}
	}
	if got := PackIndices(4, 0, func(int) bool { return true }); len(got) != 0 {
		t.Fatalf("empty pack returned %d entries", len(got))
	}
	if got := PackIndices(4, 100, func(int) bool { return false }); len(got) != 0 {
		t.Fatalf("all-false pack returned %d entries", len(got))
	}
}
