package seq

import (
	"pmsf/internal/graph"
	"pmsf/internal/heap"
)

// PrimPQ selects the priority queue behind Prim's algorithm. Moret and
// Shapiro's empirical MST study — the methodological ancestor of the
// paper's sequential baselines — compares exactly these alternatives.
type PrimPQ int

const (
	// PQBinary is the indexed binary heap (the library default).
	PQBinary PrimPQ = iota
	// PQPairing is the indexed pairing heap.
	PQPairing
	// PQDary4 is an indexed 4-ary heap (shallower tree, cache-friendlier
	// sift-up on decrease-key-heavy workloads).
	PQDary4
)

// String names the queue for benchmarks.
func (q PrimPQ) String() string {
	switch q {
	case PQBinary:
		return "binary-heap"
	case PQPairing:
		return "pairing-heap"
	case PQDary4:
		return "4-ary-heap"
	}
	return "unknown"
}

// PrimPQs lists the available queues.
func PrimPQs() []PrimPQ { return []PrimPQ{PQBinary, PQPairing, PQDary4} }

// primQueue is the subset of heap operations Prim needs.
type primQueue interface {
	Len() int
	PushOrDecrease(int32, float64, int32)
	PopMin() (int32, float64, int32)
}

// PrimWithHeap is Prim's algorithm with a selectable priority queue; all
// variants produce identical forests.
func PrimWithHeap(g *graph.EdgeList, pq PrimPQ) *graph.Forest {
	adj := graph.BuildAdj(g)
	n := g.N
	var h primQueue
	switch pq {
	case PQPairing:
		h = heap.NewPairing(n)
	case PQDary4:
		h = heap.NewDary(4, n)
	default:
		h = heap.New(n)
	}
	visited := make([]bool, n)
	forest := &graph.Forest{}
	components := 0
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		components++
		visited[start] = true
		for _, arc := range adj.Adj(graph.Vertex(start)) {
			if !visited[arc.To] {
				h.PushOrDecrease(arc.To, arc.W, arc.EID)
			}
		}
		for h.Len() > 0 {
			v, w, eid := h.PopMin()
			if visited[v] {
				continue
			}
			visited[v] = true
			forest.EdgeIDs = append(forest.EdgeIDs, eid)
			forest.Weight += w
			for _, arc := range adj.Adj(v) {
				if !visited[arc.To] {
					h.PushOrDecrease(arc.To, arc.W, arc.EID)
				}
			}
		}
	}
	forest.Components = components
	return forest
}
