package seq_test

import (
	"testing"
	"testing/quick"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

func TestFilterKruskalOnFamilies(t *testing.T) {
	inputs := []*graph.EdgeList{
		{N: 0},
		{N: 3},
		{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}},
		{N: 2, Edges: []graph.Edge{{U: 0, V: 0, W: 1}}},
		gen.Random(2000, 12000, 1),
		gen.Random(500, 50000, 2), // dense: the filter's home turf
		gen.Random(1500, 900, 3),  // disconnected
		gen.Mesh2D(40, 40, 4),
		gen.Str0(512, 5),
		gen.Geometric(800, 6, 6),
	}
	for i, g := range inputs {
		f := seq.FilterKruskal(g)
		if err := verify.Full(g, f); err != nil {
			t.Fatalf("input %d: %v", i, err)
		}
	}
}

func TestFilterKruskalMatchesKruskalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%200)
		maxM := n * (n - 1) / 2
		m := int(seed>>8) % (maxM + 1)
		g := gen.Random(n, m, seed)
		a := seq.Kruskal(g)
		b := seq.FilterKruskal(g)
		return eqWeight(a.Weight, b.Weight) &&
			a.Components == b.Components &&
			len(a.EdgeIDs) == len(b.EdgeIDs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterKruskalDuplicateWeights(t *testing.T) {
	g := gen.Random(600, 30000, 7)
	for i := range g.Edges {
		g.Edges[i].W = float64(i % 2) // extreme ties stress the pivot logic
	}
	f := seq.FilterKruskal(g)
	if err := verify.Forest(g, f); err != nil {
		t.Fatal(err)
	}
	ref := seq.Kruskal(g)
	if !eqWeight(f.Weight, ref.Weight) {
		t.Fatalf("weight %g != %g", f.Weight, ref.Weight)
	}
}

func TestFilterKruskalAllEqualWeights(t *testing.T) {
	// All keys tie on weight; (w, id) uniqueness must keep the recursion
	// finite and exact.
	g := gen.Random(400, 20000, 8)
	for i := range g.Edges {
		g.Edges[i].W = 1
	}
	f := seq.FilterKruskal(g)
	if err := verify.Forest(g, f); err != nil {
		t.Fatal(err)
	}
	if len(f.EdgeIDs) != g.N-f.Components {
		t.Fatal("not spanning")
	}
}
