package seq_test

import (
	"testing"
	"testing/quick"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

func baselines() map[string]func(*graph.EdgeList) *graph.Forest {
	return map[string]func(*graph.EdgeList) *graph.Forest{
		"Prim":    seq.Prim,
		"Kruskal": seq.Kruskal,
		"Boruvka": seq.Boruvka,
	}
}

func TestBaselinesOnKnownGraph(t *testing.T) {
	// Weighted square with diagonal: MST = {0-1:1, 1-2:2, 0-3:3}, w=6.
	g := &graph.EdgeList{N: 4, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 2, V: 3, W: 4},
		{U: 0, V: 3, W: 3},
		{U: 0, V: 2, W: 5},
	}}
	for name, run := range baselines() {
		f := run(g)
		if f.Weight != 6 {
			t.Errorf("%s: weight %g, want 6", name, f.Weight)
		}
		if f.Components != 1 || len(f.EdgeIDs) != 3 {
			t.Errorf("%s: shape %d/%d", name, f.Components, len(f.EdgeIDs))
		}
	}
}

func TestBaselinesEdgeCases(t *testing.T) {
	cases := []*graph.EdgeList{
		{N: 0},
		{N: 1},
		{N: 3}, // all isolated
		{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}},
		{N: 2, Edges: []graph.Edge{{U: 0, V: 0, W: 1}}},                     // self-loop only
		{N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 2}, {U: 0, V: 1, W: 1}}}, // parallel
	}
	for i, g := range cases {
		for name, run := range baselines() {
			f := run(g)
			if err := verify.Forest(g, f); err != nil {
				t.Errorf("case %d %s: %v", i, name, err)
			}
		}
	}
}

// All three baselines agree on the MSF weight for arbitrary random
// graphs — with distinct weights the MSF is unique.
func TestBaselinesAgreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%300)
		maxM := n * (n - 1) / 2
		m := int(seed>>8) % (maxM + 1)
		g := gen.Random(n, m, seed)
		fp := seq.Prim(g)
		fk := seq.Kruskal(g)
		fb := seq.Boruvka(g)
		return eqWeight(fp.Weight, fk.Weight) && eqWeight(fk.Weight, fb.Weight) &&
			fp.Components == fk.Components && fk.Components == fb.Components &&
			len(fp.EdgeIDs) == len(fk.EdgeIDs) && len(fk.EdgeIDs) == len(fb.EdgeIDs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func eqWeight(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-9*(1+a+b)
}

func TestBaselinesVerifyOnFamilies(t *testing.T) {
	inputs := []*graph.EdgeList{
		gen.Random(1500, 6000, 1),
		gen.Random(1500, 1000, 2), // disconnected
		gen.Mesh2D(30, 30, 3),
		gen.Mesh2D60(30, 30, 4),
		gen.Mesh3D40(10, 5),
		gen.Geometric(600, 6, 6),
		gen.Str0(512, 7),
		gen.Str1(500, 8),
		gen.Str2(500, 9),
		gen.Str3(500, 10),
	}
	for i, g := range inputs {
		ref := seq.Kruskal(g)
		for name, run := range baselines() {
			f := run(g)
			if err := verify.Forest(g, f); err != nil {
				t.Fatalf("input %d %s: %v", i, name, err)
			}
			if !eqWeight(f.Weight, ref.Weight) {
				t.Fatalf("input %d %s: weight %g != reference %g", i, name, f.Weight, ref.Weight)
			}
		}
	}
}

// With duplicate weights all baselines must still produce valid minimum
// forests of equal weight (ties broken internally by edge id).
func TestDuplicateWeights(t *testing.T) {
	g := gen.Random(400, 2000, 11)
	for i := range g.Edges {
		g.Edges[i].W = float64(i % 5) // heavy ties
	}
	ref := seq.Kruskal(g)
	for name, run := range baselines() {
		f := run(g)
		if err := verify.Forest(g, f); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !eqWeight(f.Weight, ref.Weight) {
			t.Fatalf("%s: weight %g != %g under ties", name, f.Weight, ref.Weight)
		}
	}
}

func TestPrimAdjReuse(t *testing.T) {
	g := gen.Random(300, 900, 12)
	adj := graph.BuildAdj(g)
	f1 := seq.PrimAdj(adj, g.N)
	f2 := seq.Prim(g)
	if f1.Weight != f2.Weight || len(f1.EdgeIDs) != len(f2.EdgeIDs) {
		t.Fatal("PrimAdj differs from Prim")
	}
}

func TestKruskalNegativeWeights(t *testing.T) {
	g := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		{U: 0, V: 1, W: -5},
		{U: 1, V: 2, W: -1},
		{U: 0, V: 2, W: 2},
	}}
	for name, run := range baselines() {
		f := run(g)
		if f.Weight != -6 {
			t.Errorf("%s: weight %g, want -6", name, f.Weight)
		}
	}
}
