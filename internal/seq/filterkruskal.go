package seq

import (
	"pmsf/internal/graph"
	"pmsf/internal/rng"
	"pmsf/internal/sorts"
	"pmsf/internal/uf"
)

// FilterKruskal implements the filter-Kruskal algorithm of Osipov,
// Sanders and Singler — the direct sequential descendant of the
// cycle-property filtering ideas the paper's Section 3 points at.
// Instead of sorting all m edges, the edge set is quicksort-partitioned
// around a pivot weight; the light half is solved recursively first, and
// the heavy half is then FILTERED through the union-find (edges whose
// endpoints are already connected can never join the forest) before
// being solved. On random weights the expected work is
// O(m + n log n log(m/n)), beating full-sort Kruskal whenever most edges
// are heavier than the forest's heaviest edge.
//
// Included as the modern sequential baseline: `msf-bench -exp ablation`
// and BenchmarkAblationKruskalSort put it next to the paper's
// merge-sort Kruskal.
func FilterKruskal(g *graph.EdgeList) *graph.Forest {
	m := len(g.Edges)
	order := make([]kedge, 0, m)
	for i, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		order = append(order, kedge{w: e.W, id: int32(i)})
	}
	u := uf.New(g.N)
	forest := &graph.Forest{}
	r := rng.New(0x6b72)
	fkRecurse(g, order, u, forest, r)
	forest.Components = u.Count()
	return forest
}

// kruskalThreshold is the subproblem size below which sorting + plain
// Kruskal is faster than further partitioning.
const kruskalThreshold = 2048

func fkRecurse(g *graph.EdgeList, edges []kedge, u *uf.UnionFind, forest *graph.Forest, r *rng.Xoshiro256) {
	if len(edges) == 0 {
		return
	}
	if len(edges) <= kruskalThreshold {
		buf := make([]kedge, len(edges))
		sorts.MergeBottomUp(edges, buf, func(a, b kedge) bool {
			if a.w != b.w {
				return a.w < b.w
			}
			return a.id < b.id
		})
		for _, ke := range edges {
			e := g.Edges[ke.id]
			if u.Union(e.U, e.V) {
				forest.EdgeIDs = append(forest.EdgeIDs, ke.id)
				forest.Weight += e.W
			}
		}
		return
	}
	// Partition around a random pivot edge's (w, id) key.
	pivot := edges[r.Intn(len(edges))]
	lessOrEq := func(ke kedge) bool {
		if ke.w != pivot.w {
			return ke.w < pivot.w
		}
		return ke.id <= pivot.id
	}
	lo, hi := 0, len(edges)
	for lo < hi {
		if lessOrEq(edges[lo]) {
			lo++
		} else {
			hi--
			edges[lo], edges[hi] = edges[hi], edges[lo]
		}
	}
	light, heavy := edges[:lo], edges[lo:]
	if len(heavy) == 0 {
		// Degenerate pivot: the pivot was the maximum (w, id) key, so
		// everything landed in the light half ((w, id) keys are unique,
		// so this has probability 1/len). Sort-and-solve directly — the
		// only fallback that preserves Kruskal's increasing-weight
		// processing order.
		buf := make([]kedge, len(edges))
		sorts.MergeBottomUp(edges, buf, func(a, b kedge) bool {
			if a.w != b.w {
				return a.w < b.w
			}
			return a.id < b.id
		})
		for _, ke := range edges {
			e := g.Edges[ke.id]
			if u.Union(e.U, e.V) {
				forest.EdgeIDs = append(forest.EdgeIDs, ke.id)
				forest.Weight += e.W
			}
		}
		return
	}
	fkRecurse(g, light, u, forest, r)
	// Filter: drop heavy edges already intra-component.
	kept := heavy[:0]
	for _, ke := range heavy {
		e := g.Edges[ke.id]
		if u.Find(e.U) != u.Find(e.V) {
			kept = append(kept, ke)
		}
	}
	fkRecurse(g, kept, u, forest, r)
}
