// Package seq implements the three sequential MSF baselines the paper
// measures against (Section 5.2): Prim's algorithm with a binary heap,
// Kruskal's algorithm with a non-recursive merge sort, and the m log m
// Borůvka algorithm. Every parallel run in the experiment harness reports
// speedup relative to the best of these on the same input, exactly as the
// paper does.
package seq

import (
	"pmsf/internal/graph"
	"pmsf/internal/heap"
)

// Prim computes the minimum spanning forest with Prim's algorithm using
// an indexed binary heap with decrease-key. Disconnected inputs are
// handled by restarting from every unvisited vertex, so the result is a
// spanning forest.
func Prim(g *graph.EdgeList) *graph.Forest {
	adj := graph.BuildAdj(g)
	return PrimAdj(adj, g.N)
}

// PrimAdj is Prim over a prebuilt adjacency structure. n is the vertex
// count (equal to adj.N; passed for symmetry with other baselines).
func PrimAdj(adj *graph.AdjArray, n int) *graph.Forest {
	visited := make([]bool, n)
	h := heap.New(n)
	forest := &graph.Forest{}
	components := 0
	for start := 0; start < n; start++ {
		if visited[start] {
			continue
		}
		components++
		visited[start] = true
		for _, arc := range adj.Adj(graph.Vertex(start)) {
			if !visited[arc.To] {
				h.PushOrDecrease(arc.To, arc.W, arc.EID)
			}
		}
		for h.Len() > 0 {
			v, w, eid := h.PopMin()
			if visited[v] {
				continue
			}
			visited[v] = true
			forest.EdgeIDs = append(forest.EdgeIDs, eid)
			forest.Weight += w
			for _, arc := range adj.Adj(v) {
				if !visited[arc.To] {
					h.PushOrDecrease(arc.To, arc.W, arc.EID)
				}
			}
		}
	}
	forest.Components = components
	return forest
}
