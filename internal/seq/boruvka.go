package seq

import (
	"pmsf/internal/graph"
	"pmsf/internal/uf"
)

// Boruvka computes the minimum spanning forest with the classic
// m log n sequential Borůvka algorithm: each round scans all edges to
// find the cheapest edge leaving every component (components tracked with
// union-find rather than explicit contraction), then merges along those
// edges. This is the sequential baseline the earlier parallel studies
// (Chung & Condon) compared against.
func Boruvka(g *graph.EdgeList) *graph.Forest {
	n := g.N
	u := uf.New(n)
	forest := &graph.Forest{}
	cheapest := make([]int32, n)
	for {
		for i := range cheapest {
			cheapest[i] = -1
		}
		found := false
		for id, e := range g.Edges {
			if e.U == e.V {
				continue
			}
			ru, rv := u.Find(e.U), u.Find(e.V)
			if ru == rv {
				continue
			}
			found = true
			if better(g, int32(id), cheapest[ru]) {
				cheapest[ru] = int32(id)
			}
			if better(g, int32(id), cheapest[rv]) {
				cheapest[rv] = int32(id)
			}
		}
		if !found {
			break
		}
		progress := false
		for _, id := range cheapest {
			if id < 0 {
				continue
			}
			e := g.Edges[id]
			if u.Union(e.U, e.V) {
				forest.EdgeIDs = append(forest.EdgeIDs, id)
				forest.Weight += e.W
				progress = true
			}
		}
		if !progress {
			break
		}
	}
	forest.Components = u.Count()
	return forest
}

// better reports whether edge a is lighter than edge b (b may be -1,
// meaning "no candidate yet"). Ties break on the smaller edge id, which
// also makes the algorithm deterministic and safe for duplicate weights.
func better(g *graph.EdgeList, a, b int32) bool {
	if b < 0 {
		return true
	}
	ea, eb := g.Edges[a], g.Edges[b]
	if ea.W != eb.W {
		return ea.W < eb.W
	}
	return a < b
}
