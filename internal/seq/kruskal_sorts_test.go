package seq_test

import (
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

func TestKruskalSortVariantsAgree(t *testing.T) {
	g := gen.Random(1500, 8000, 1)
	ref := seq.Kruskal(g)
	for _, es := range seq.EdgeSorts() {
		f := seq.KruskalWithSort(g, es)
		if err := verify.Forest(g, f); err != nil {
			t.Fatalf("%v: %v", es, err)
		}
		if !eqWeight(f.Weight, ref.Weight) {
			t.Fatalf("%v: weight %g != %g", es, f.Weight, ref.Weight)
		}
		// Identical tie-breaking: the exact edge sets must match.
		if len(f.EdgeIDs) != len(ref.EdgeIDs) {
			t.Fatalf("%v: %d edges, want %d", es, len(f.EdgeIDs), len(ref.EdgeIDs))
		}
		ids := map[int32]bool{}
		for _, id := range ref.EdgeIDs {
			ids[id] = true
		}
		for _, id := range f.EdgeIDs {
			if !ids[id] {
				t.Fatalf("%v: edge %d not in reference forest", es, id)
			}
		}
	}
}

func TestEdgeSortNames(t *testing.T) {
	seen := map[string]bool{}
	for _, es := range seq.EdgeSorts() {
		n := es.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("bad or duplicate name %q", n)
		}
		seen[n] = true
	}
	if seq.EdgeSort(99).String() != "unknown" {
		t.Fatal("unknown sort must stringify as unknown")
	}
}
