package seq

import (
	"pmsf/internal/graph"
	"pmsf/internal/sorts"
	"pmsf/internal/uf"
)

// kedge pairs an edge id with its weight for the Kruskal sort.
type kedge struct {
	w  graph.Weight
	id int32
}

// Kruskal computes the minimum spanning forest with Kruskal's algorithm.
// Following the paper's engineering choice, the edge sort is a
// non-recursive bottom-up merge sort (which the authors found superior to
// qsort, GNU quicksort and recursive merge sort for large inputs).
func Kruskal(g *graph.EdgeList) *graph.Forest {
	m := len(g.Edges)
	order := make([]kedge, m)
	for i, e := range g.Edges {
		order[i] = kedge{w: e.W, id: int32(i)}
	}
	buf := make([]kedge, m)
	sorts.MergeBottomUp(order, buf, func(a, b kedge) bool {
		if a.w != b.w {
			return a.w < b.w
		}
		return a.id < b.id
	})
	u := uf.New(g.N)
	forest := &graph.Forest{}
	need := g.N - 1
	for _, ke := range order {
		e := g.Edges[ke.id]
		if e.U == e.V {
			continue
		}
		if u.Union(e.U, e.V) {
			forest.EdgeIDs = append(forest.EdgeIDs, ke.id)
			forest.Weight += e.W
			need--
			if need == 0 {
				break
			}
		}
	}
	forest.Components = u.Count()
	return forest
}
