package seq_test

import (
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

func TestPrimWithHeapMatchesPrim(t *testing.T) {
	inputs := map[string]*graph.EdgeList{
		"random":       gen.Random(1500, 7000, 1),
		"disconnected": gen.Random(1000, 600, 2),
		"mesh":         gen.Mesh2D(30, 30, 3),
		"str0":         gen.Str0(256, 4),
		"empty":        {N: 0},
		"isolated":     {N: 4},
	}
	for name, g := range inputs {
		ref := seq.Prim(g)
		for _, pq := range seq.PrimPQs() {
			f := seq.PrimWithHeap(g, pq)
			if err := verify.Forest(g, f); err != nil {
				t.Fatalf("%s/%v: %v", name, pq, err)
			}
			if f.Weight != ref.Weight || f.Size() != ref.Size() {
				t.Fatalf("%s/%v: (%g,%d) != (%g,%d)",
					name, pq, f.Weight, f.Size(), ref.Weight, ref.Size())
			}
			// Identical tie-breaking: both queues order by (key, id), so
			// the exact pop sequence — and hence the edge set — matches.
			for i := range f.EdgeIDs {
				if f.EdgeIDs[i] != ref.EdgeIDs[i] {
					t.Fatalf("%s/%v: edge sequence diverges at %d", name, pq, i)
				}
			}
		}
	}
}

func TestPrimPQNames(t *testing.T) {
	seen := map[string]bool{}
	for _, pq := range seq.PrimPQs() {
		n := pq.String()
		if n == "unknown" || seen[n] {
			t.Fatalf("bad name %q", n)
		}
		seen[n] = true
	}
	if seq.PrimPQ(9).String() != "unknown" {
		t.Fatal("unknown PQ must stringify as unknown")
	}
}
