package seq

import (
	"sort"

	"pmsf/internal/graph"
	"pmsf/internal/sorts"
	"pmsf/internal/uf"
)

// EdgeSort selects the sorting routine Kruskal uses — the engineering
// comparison of Section 5.2, where the authors found the non-recursive
// merge sort superior to qsort, GNU quicksort and recursive merge sort
// for large inputs.
type EdgeSort int

const (
	// SortMergeBottomUp is the paper's choice (and Kruskal's default).
	SortMergeBottomUp EdgeSort = iota
	// SortMergeRecursive is the textbook top-down merge sort.
	SortMergeRecursive
	// SortQuick is a median-of-three quicksort (the qsort analogue).
	SortQuick
	// SortStdlib is Go's sort.Slice (introspective quicksort), the
	// modern "system sort" baseline.
	SortStdlib
)

// String returns a short name for benchmarks and tables.
func (s EdgeSort) String() string {
	switch s {
	case SortMergeBottomUp:
		return "merge-bottomup"
	case SortMergeRecursive:
		return "merge-recursive"
	case SortQuick:
		return "quicksort"
	case SortStdlib:
		return "stdlib"
	}
	return "unknown"
}

// EdgeSorts lists all comparison candidates.
func EdgeSorts() []EdgeSort {
	return []EdgeSort{SortMergeBottomUp, SortMergeRecursive, SortQuick, SortStdlib}
}

// KruskalWithSort is Kruskal's algorithm with a selectable edge sort.
// All variants produce identical forests; only the constant factors of
// the dominating sort differ.
func KruskalWithSort(g *graph.EdgeList, es EdgeSort) *graph.Forest {
	m := len(g.Edges)
	order := make([]kedge, m)
	for i, e := range g.Edges {
		order[i] = kedge{w: e.W, id: int32(i)}
	}
	less := func(a, b kedge) bool {
		if a.w != b.w {
			return a.w < b.w
		}
		return a.id < b.id
	}
	switch es {
	case SortMergeBottomUp:
		sorts.MergeBottomUp(order, make([]kedge, m), less)
	case SortMergeRecursive:
		sorts.MergeRecursive(order, make([]kedge, m), less)
	case SortQuick:
		sorts.Quicksort(order, less)
	case SortStdlib:
		sort.Slice(order, func(i, j int) bool { return less(order[i], order[j]) })
	}
	u := uf.New(g.N)
	forest := &graph.Forest{}
	need := g.N - 1
	for _, ke := range order {
		e := g.Edges[ke.id]
		if e.U == e.V {
			continue
		}
		if u.Union(e.U, e.V) {
			forest.EdgeIDs = append(forest.EdgeIDs, ke.id)
			forest.Weight += e.W
			need--
			if need == 0 {
				break
			}
		}
	}
	forest.Components = u.Count()
	return forest
}
