package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestForestRoundTrip(t *testing.T) {
	f := &Forest{EdgeIDs: []int32{5, 2, 9, 0}, Components: 3, Weight: 12.25}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Components != 3 || got.Weight != 12.25 || len(got.EdgeIDs) != 4 {
		t.Fatalf("got %+v", got)
	}
	for i, id := range f.EdgeIDs {
		if got.EdgeIDs[i] != id {
			t.Fatalf("id %d: %d != %d", i, got.EdgeIDs[i], id)
		}
	}
}

func TestForestRoundTripEmpty(t *testing.T) {
	f := &Forest{Components: 5}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.EdgeIDs) != 0 || got.Components != 5 {
		t.Fatalf("got %+v", got)
	}
}

func TestForestWeightPrecision(t *testing.T) {
	// %.17g must round-trip float64 exactly.
	f := &Forest{EdgeIDs: []int32{1}, Components: 1, Weight: 0.1 + 0.2}
	var buf bytes.Buffer
	if err := WriteForest(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadForest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Weight != f.Weight {
		t.Fatalf("weight %v != %v", got.Weight, f.Weight)
	}
}

func TestReadForestErrors(t *testing.T) {
	cases := []string{
		"",                               // empty
		"wrong 1 1 0\n1\n",               // bad magic
		"msf-forest 1 1\n1\n",            // short header
		"msf-forest x 1 0\n1\n",          // bad count
		"msf-forest 1 y 0\n1\n",          // bad components
		"msf-forest 1 1 z\n1\n",          // bad weight
		"msf-forest 2 1 0\n1\n",          // count mismatch
		"msf-forest 1 1 0\nnot-an-int\n", // bad id
	}
	for i, in := range cases {
		if _, err := ReadForest(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
