package graph

// The flexible adjacency list (Section 2.3 of the paper) augments the
// adjacency array by letting every supervertex own a *linked list of
// adjacency arrays*. The underlying arc storage of the original graph is
// never moved: contracting a component appends the members' chains with
// O(1) pointer operations, and a vertex→supervertex lookup table lets
// find-min filter self-loops and multi-edges on the fly.

// Block is one segment of a supervertex's flexible adjacency list: the
// arc range [Lo, Hi) of the base CSR that belonged to one original
// vertex, plus the index of the next block in the chain (-1 terminates).
type Block struct {
	Lo, Hi int64
	Next   int32
}

// FlexAdj is the flexible adjacency list over a fixed base CSR.
//
// Invariants:
//   - Base is immutable; arcs always name original vertices.
//   - Lookup[v] is the current supervertex of original vertex v.
//   - Head[s]/Tail[s] delimit supervertex s's block chain for s < N.
type FlexAdj struct {
	Base   *AdjArray
	Blocks []Block
	Head   []int32
	Tail   []int32
	Lookup []Vertex // original vertex -> current supervertex
	N      int      // current number of supervertices
}

// NewFlexAdj initializes the flexible adjacency list from a base CSR:
// every original vertex is its own supervertex owning a single block.
func NewFlexAdj(base *AdjArray) *FlexAdj {
	n := base.N
	f := &FlexAdj{
		Base:   base,
		Blocks: make([]Block, n),
		Head:   make([]int32, n),
		Tail:   make([]int32, n),
		Lookup: make([]Vertex, n),
		N:      n,
	}
	for v := 0; v < n; v++ {
		f.Blocks[v] = Block{Lo: base.Off[v], Hi: base.Off[v+1], Next: -1}
		f.Head[v] = int32(v)
		f.Tail[v] = int32(v)
		f.Lookup[v] = Vertex(v)
	}
	return f
}

// Chain calls fn for every arc in supervertex s's chain. fn receives the
// arc; the target is an ORIGINAL vertex id that must be mapped through
// Lookup by the caller. Iteration is purely sequential per chain.
func (f *FlexAdj) Chain(s Vertex, fn func(AdjEntry)) {
	for b := f.Head[s]; b >= 0; b = f.Blocks[b].Next {
		blk := f.Blocks[b]
		for i := blk.Lo; i < blk.Hi; i++ {
			fn(f.Base.Arcs[i])
		}
	}
}

// ChainLen returns the total number of arcs in s's chain.
func (f *FlexAdj) ChainLen(s Vertex) int64 {
	var total int64
	for b := f.Head[s]; b >= 0; b = f.Blocks[b].Next {
		total += f.Blocks[b].Hi - f.Blocks[b].Lo
	}
	return total
}

// AppendChain links supervertex src's chain onto dst's chain and empties
// src. Both must be valid current supervertices. The caller serializes
// concurrent appends onto the same dst.
func (f *FlexAdj) AppendChain(dst, src Vertex) {
	if f.Head[src] < 0 {
		return
	}
	if f.Head[dst] < 0 {
		f.Head[dst] = f.Head[src]
		f.Tail[dst] = f.Tail[src]
	} else {
		f.Blocks[f.Tail[dst]].Next = f.Head[src]
		f.Tail[dst] = f.Tail[src]
	}
	f.Head[src] = -1
	f.Tail[src] = -1
}
