package graph

import (
	"bytes"
	"strings"
	"testing"
)

func TestDIMACSRoundTrip(t *testing.T) {
	g := randomEL(40, 100, 9)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("DIMACS round trip mismatch")
	}
}

func TestReadDIMACSFormat(t *testing.T) {
	in := `c a comment line
c another

p edge 4 3
e 1 2 0.5
e 2 3 2
a 3 4 7.25
`
	g, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || len(g.Edges) != 3 {
		t.Fatalf("parsed n=%d m=%d", g.N, len(g.Edges))
	}
	if g.Edges[0] != (Edge{U: 0, V: 1, W: 0.5}) {
		t.Fatalf("first edge %+v", g.Edges[0])
	}
	if g.Edges[2] != (Edge{U: 2, V: 3, W: 7.25}) {
		t.Fatalf("arc line %+v", g.Edges[2])
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := []string{
		"",                             // no problem line
		"e 1 2 3\n",                    // edge before p
		"p edge 2 1\np edge 2 1\n",     // duplicate p
		"p edge\n",                     // short p
		"p edge x 1\n",                 // bad n
		"p edge 2 y\n",                 // bad m
		"p edge 2 1\ne 1 2\n",          // short edge
		"p edge 2 1\ne 0 2 1\n",        // 0-indexed vertex
		"p edge 2 1\ne 1 9 1\n",        // out of range
		"p edge 2 1\ne a 2 1\n",        // bad vertex
		"p edge 2 1\ne 1 2 w\n",        // bad weight
		"p edge 2 1\nq something123\n", // unknown line
	}
	for i, in := range cases {
		if _, err := ReadDIMACS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
