package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Forest serialization: a small text format so computed forests can be
// saved by cmd/msf and consumed by downstream tools.
//
//	msf-forest <edges> <components> <weight>
//	<edge id>
//	...
//
// one id per line, in selection order.

// WriteForest writes f in the forest text format.
func WriteForest(w io.Writer, f *Forest) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "msf-forest %d %d %.17g\n",
		len(f.EdgeIDs), f.Components, f.Weight); err != nil {
		return err
	}
	for _, id := range f.EdgeIDs {
		if _, err := fmt.Fprintf(bw, "%d\n", id); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadForest reads the forest text format. The result is structurally
// unvalidated; pair with the verify package and the original graph.
func ReadForest(r io.Reader) (*Forest, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty forest input")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 4 || fields[0] != "msf-forest" {
		return nil, fmt.Errorf("graph: bad forest header %q", sc.Text())
	}
	edges, err := strconv.Atoi(fields[1])
	if err != nil {
		return nil, fmt.Errorf("graph: forest header: %w", err)
	}
	comps, err := strconv.Atoi(fields[2])
	if err != nil {
		return nil, fmt.Errorf("graph: forest header: %w", err)
	}
	weight, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return nil, fmt.Errorf("graph: forest header: %w", err)
	}
	f := &Forest{Components: comps, Weight: weight, EdgeIDs: make([]int32, 0, edges)}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		id, err := strconv.ParseInt(line, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: forest edge line %q: %w", line, err)
		}
		f.EdgeIDs = append(f.EdgeIDs, int32(id))
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.EdgeIDs) != edges {
		return nil, fmt.Errorf("graph: forest has %d ids, header says %d", len(f.EdgeIDs), edges)
	}
	return f, nil
}
