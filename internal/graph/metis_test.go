package graph

import (
	"bytes"
	"sort"
	"strings"
	"testing"
)

func TestMETISRoundTrip(t *testing.T) {
	g := randomEL(40, 120, 13)
	// METIS cannot hold self-loops or (faithfully) parallel edges; strip
	// loops and dedupe first.
	seen := map[[2]int32]bool{}
	var edges []Edge
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		a, b := e.U, e.V
		if a > b {
			a, b = b, a
		}
		if seen[[2]int32{a, b}] {
			continue
		}
		seen[[2]int32{a, b}] = true
		edges = append(edges, Edge{U: a, V: b, W: e.W})
	}
	clean := &EdgeList{N: g.N, Edges: edges}

	var buf bytes.Buffer
	if err := WriteMETIS(&buf, clean); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != clean.N || len(got.Edges) != len(clean.Edges) {
		t.Fatalf("shape n=%d m=%d, want n=%d m=%d", got.N, len(got.Edges), clean.N, len(clean.Edges))
	}
	// Edge multisets match (order may differ).
	key := func(e Edge) [3]float64 { return [3]float64{float64(e.U), float64(e.V), e.W} }
	a := make([][3]float64, len(clean.Edges))
	b := make([][3]float64, len(got.Edges))
	for i := range clean.Edges {
		a[i] = key(clean.Edges[i])
		b[i] = key(got.Edges[i])
	}
	lessK := func(x, y [3]float64) bool {
		for i := 0; i < 3; i++ {
			if x[i] != y[i] {
				return x[i] < y[i]
			}
		}
		return false
	}
	sort.Slice(a, func(i, j int) bool { return lessK(a[i], a[j]) })
	sort.Slice(b, func(i, j int) bool { return lessK(b[i], b[j]) })
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestReadMETISUnweighted(t *testing.T) {
	in := `% a comment
4 3
2 3
1
1 4
3
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4 || len(g.Edges) != 3 {
		t.Fatalf("shape n=%d m=%d", g.N, len(g.Edges))
	}
	for _, e := range g.Edges {
		if e.W != 1 {
			t.Fatalf("unweighted edge got weight %g", e.W)
		}
	}
}

func TestReadMETISVertexWeights(t *testing.T) {
	// fmt "011": vertex weights AND edge weights.
	in := `3 2 011
5 2 1.5
7 1 1.5 3 2.5
9 2 2.5
`
	g, err := ReadMETIS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Edges) != 2 {
		t.Fatalf("m = %d", len(g.Edges))
	}
	if g.Edges[0].W != 1.5 || g.Edges[1].W != 2.5 {
		t.Fatalf("weights %g %g", g.Edges[0].W, g.Edges[1].W)
	}
}

func TestReadMETISErrors(t *testing.T) {
	cases := []string{
		"",                      // empty
		"2\n",                   // short header
		"x 1\n1\n2\n",           // bad n
		"2 z\n2\n1\n",           // bad m
		"2 1\n2\n1\n3\n",        // too many vertex lines (3 out of range triggers first)
		"2 1\n5\n1\n",           // neighbor out of range
		"2 1\n2\n",              // too few vertex lines
		"2 2\n2\n1\n",           // edge count mismatch
		"2 1 001\n2\n1 0.5\n",   // missing weight on first line
		"2 1 001\n2 q\n1 0.5\n", // bad weight
	}
	for i, in := range cases {
		if _, err := ReadMETIS(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}

func TestWriteMETISRejectsSelfLoop(t *testing.T) {
	g := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 0, W: 1}}}
	var buf bytes.Buffer
	if err := WriteMETIS(&buf, g); err == nil {
		t.Fatal("self-loop accepted")
	}
}
