package graph

import (
	"fmt"
	"io"
	"strings"
)

// Format names a graph file format.
type Format int

const (
	// FormatBinary is the library's native binary format (see io.go).
	FormatBinary Format = iota
	// FormatText is the "n m" + "u v w" text format.
	FormatText
	// FormatDIMACS is the DIMACS edge/arc challenge format.
	FormatDIMACS
	// FormatMETIS is the METIS adjacency format.
	FormatMETIS
)

// ParseFormat resolves "binary", "text" or "dimacs" (case insensitive).
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "binary", "bin", "":
		return FormatBinary, nil
	case "text", "txt":
		return FormatText, nil
	case "dimacs", "gr":
		return FormatDIMACS, nil
	case "metis":
		return FormatMETIS, nil
	}
	return 0, fmt.Errorf("graph: unknown format %q (want binary, text, dimacs or metis)", s)
}

// String returns the canonical format name.
func (f Format) String() string {
	switch f {
	case FormatBinary:
		return "binary"
	case FormatText:
		return "text"
	case FormatDIMACS:
		return "dimacs"
	case FormatMETIS:
		return "metis"
	}
	return fmt.Sprintf("Format(%d)", int(f))
}

// Read reads a graph from r in the format.
func (f Format) Read(r io.Reader) (*EdgeList, error) {
	switch f {
	case FormatBinary:
		return ReadBinary(r)
	case FormatText:
		return ReadText(r)
	case FormatDIMACS:
		return ReadDIMACS(r)
	case FormatMETIS:
		return ReadMETIS(r)
	}
	return nil, fmt.Errorf("graph: unknown format %v", f)
}

// Write writes g to w in the format.
func (f Format) Write(w io.Writer, g *EdgeList) error {
	switch f {
	case FormatBinary:
		return WriteBinary(w, g)
	case FormatText:
		return WriteText(w, g)
	case FormatDIMACS:
		return WriteDIMACS(w, g)
	case FormatMETIS:
		return WriteMETIS(w, g)
	}
	return fmt.Errorf("graph: unknown format %v", f)
}
