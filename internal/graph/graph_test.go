package graph

import (
	"math"
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
)

func smallGraph() *EdgeList {
	return &EdgeList{N: 4, Edges: []Edge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 2, V: 3, W: 3},
		{U: 3, V: 0, W: 4},
		{U: 1, V: 1, W: 5}, // self-loop
	}}
}

func TestValidate(t *testing.T) {
	if err := smallGraph().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 5, W: 1}}}
	if bad.Validate() == nil {
		t.Fatal("out-of-range edge accepted")
	}
	neg := &EdgeList{N: -1}
	if neg.Validate() == nil {
		t.Fatal("negative N accepted")
	}
	if (&EdgeList{N: 0}).Validate() != nil {
		t.Fatal("empty graph rejected")
	}
}

func TestClone(t *testing.T) {
	g := smallGraph()
	c := g.Clone()
	c.Edges[0].W = 99
	if g.Edges[0].W == 99 {
		t.Fatal("clone shares storage")
	}
	if c.N != g.N || len(c.Edges) != len(g.Edges) {
		t.Fatal("clone shape wrong")
	}
}

func TestBuildAdj(t *testing.T) {
	g := smallGraph()
	a := BuildAdj(g)
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	// Self-loop dropped: 4 undirected edges -> 8 arcs.
	if len(a.Arcs) != 8 {
		t.Fatalf("arcs = %d, want 8", len(a.Arcs))
	}
	if a.M() != 4 {
		t.Fatalf("M = %d, want 4", a.M())
	}
	if a.Degree(0) != 2 || a.Degree(1) != 2 {
		t.Fatalf("degrees wrong: %d %d", a.Degree(0), a.Degree(1))
	}
	// Each arc's EID must point at an edge with matching endpoints.
	for v := 0; v < a.N; v++ {
		for _, arc := range a.Adj(int32(v)) {
			e := g.Edges[arc.EID]
			if !((e.U == int32(v) && e.V == arc.To) || (e.V == int32(v) && e.U == arc.To)) {
				t.Fatalf("arc (%d->%d) EID %d mismatches edge %+v", v, arc.To, arc.EID, e)
			}
			if e.W != arc.W {
				t.Fatalf("arc weight %g != edge weight %g", arc.W, e.W)
			}
		}
	}
}

func TestBuildAdjProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		n := 2 + int(seed%50)
		m := int(seed % 200)
		g := &EdgeList{N: n}
		for i := 0; i < m; i++ {
			g.Edges = append(g.Edges, Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Float64(),
			})
		}
		a := BuildAdj(g)
		if a.Validate() != nil {
			return false
		}
		// Arc count = 2 × non-self-loop edges.
		nonLoop := 0
		for _, e := range g.Edges {
			if e.U != e.V {
				nonLoop++
			}
		}
		return len(a.Arcs) == 2*nonLoop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAdjValidateCatchesCorruption(t *testing.T) {
	a := BuildAdj(smallGraph())
	a.Off[2] = a.Off[3] + 5
	if a.Validate() == nil {
		t.Fatal("non-monotone offsets accepted")
	}
	a = BuildAdj(smallGraph())
	a.Arcs[0].To = 100
	if a.Validate() == nil {
		t.Fatal("out-of-range target accepted")
	}
	a = BuildAdj(smallGraph())
	a.Off = a.Off[:2]
	if a.Validate() == nil {
		t.Fatal("truncated offsets accepted")
	}
}

func TestDirectedWorkList(t *testing.T) {
	g := smallGraph()
	wl := DirectedWorkList(g)
	if len(wl) != 8 { // self-loop dropped, 4 edges × 2 directions
		t.Fatalf("len = %d, want 8", len(wl))
	}
	// Both directions present with identical W and ID.
	byPair := map[[2]int32]WEdge{}
	for _, e := range wl {
		byPair[[2]int32{e.U, e.V}] = e
	}
	for _, e := range wl {
		rev, ok := byPair[[2]int32{e.V, e.U}]
		if !ok || rev.W != e.W || rev.ID != e.ID {
			t.Fatalf("missing or inconsistent reverse of %+v", e)
		}
	}
}

func TestComponentCount(t *testing.T) {
	cases := []struct {
		g    *EdgeList
		want int
	}{
		{&EdgeList{N: 0}, 0},
		{&EdgeList{N: 3}, 3},
		{smallGraph(), 1},
		{&EdgeList{N: 4, Edges: []Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1}}}, 2},
		{&EdgeList{N: 2, Edges: []Edge{{U: 0, V: 0, W: 1}}}, 2},
	}
	for i, c := range cases {
		if got := ComponentCount(c.g); got != c.want {
			t.Errorf("case %d: components = %d, want %d", i, got, c.want)
		}
	}
}

func TestForestHelpers(t *testing.T) {
	g := smallGraph()
	f := &Forest{EdgeIDs: []int32{0, 2}, Weight: 4, Components: 2}
	if f.Size() != 2 {
		t.Fatalf("size %d", f.Size())
	}
	edges := f.Edges(g)
	if edges[0] != g.Edges[0] || edges[1] != g.Edges[2] {
		t.Fatal("materialized edges wrong")
	}
	if w := f.SumWeights(g); w != 4 {
		t.Fatalf("SumWeights = %g, want 4", w)
	}
}

func TestValidateRejectsNaN(t *testing.T) {
	g := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 1, W: math.NaN()}}}
	if g.Validate() == nil {
		t.Fatal("NaN weight accepted")
	}
	inf := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 1, W: math.Inf(1)}}}
	if inf.Validate() != nil {
		t.Fatal("infinite weight rejected (should be allowed)")
	}
}

func TestDisjointUnion(t *testing.T) {
	a := &EdgeList{N: 2, Edges: []Edge{{U: 0, V: 1, W: 1}}}
	b := &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 2, W: 2}}}
	u := DisjointUnion(a, b)
	if u.N != 5 || len(u.Edges) != 2 {
		t.Fatalf("shape n=%d m=%d", u.N, len(u.Edges))
	}
	if u.Edges[1].U != 2 || u.Edges[1].V != 4 {
		t.Fatalf("second graph not shifted: %+v", u.Edges[1])
	}
	// a is one component; b has {0,2} joined and vertex 1 isolated.
	if ComponentCount(u) != 3 {
		t.Fatalf("components %d", ComponentCount(u))
	}
	if DisjointUnion().N != 0 {
		t.Fatal("empty union broken")
	}
}
