package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// METIS graph format support. The METIS format is adjacency-based: a
// header "n m [fmt]" followed by one line per vertex listing its
// neighbors (1-indexed); with fmt containing the edge-weight bit ("1" in
// the last position, e.g. "1" or "001"), each neighbor is followed by
// the edge weight. Every undirected edge appears in both endpoint
// lines; ReadMETIS keeps one copy.

// ReadMETIS reads a graph in METIS format. Vertex weights (fmt "10" /
// "11") are skipped. Comment lines start with '%'.
func ReadMETIS(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	var g *EdgeList
	expectM := 0
	hasEdgeWeights := false
	hasVertexWeights := false
	vertex := int32(0)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if g == nil {
			if len(fields) < 2 || len(fields) > 4 {
				return nil, fmt.Errorf("graph: line %d: want METIS header \"n m [fmt [ncon]]\"", lineNo)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative count in header", lineNo)
			}
			if len(fields) >= 3 {
				f := fields[2]
				hasEdgeWeights = strings.HasSuffix(f, "1")
				hasVertexWeights = len(f) >= 2 && f[len(f)-2] == '1'
			}
			g = &EdgeList{N: n, Edges: make([]Edge, 0, preallocEdges(m))}
			expectM = m
			continue
		}
		if int(vertex) >= g.N {
			if line == "" {
				continue
			}
			return nil, fmt.Errorf("graph: line %d: more vertex lines than n=%d", lineNo, g.N)
		}
		i := 0
		if hasVertexWeights && len(fields) > 0 {
			i = 1 // skip the vertex weight
		}
		for i < len(fields) {
			nb, err := strconv.ParseInt(fields[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if nb < 1 || int(nb) > g.N {
				return nil, fmt.Errorf("graph: line %d: neighbor %d out of range [1,%d]", lineNo, nb, g.N)
			}
			i++
			w := 1.0
			if hasEdgeWeights {
				if i >= len(fields) {
					return nil, fmt.Errorf("graph: line %d: missing edge weight", lineNo)
				}
				w, err = strconv.ParseFloat(fields[i], 64)
				if err != nil {
					return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
				}
				i++
			}
			to := int32(nb - 1)
			// Keep each undirected edge once (from its smaller endpoint);
			// self-loops are kept as written.
			if vertex <= to {
				g.Edges = append(g.Edges, Edge{U: vertex, V: to, W: w})
			}
		}
		vertex++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: empty METIS input")
	}
	if int(vertex) != g.N {
		return nil, fmt.Errorf("graph: %d vertex lines, header says %d", vertex, g.N)
	}
	if len(g.Edges) != expectM {
		return nil, fmt.Errorf("graph: parsed %d edges, header says %d", len(g.Edges), expectM)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteMETIS writes g in METIS format with edge weights (fmt "001").
// Self-loops are not representable in METIS and cause an error.
func WriteMETIS(w io.Writer, g *EdgeList) error {
	adj := make([][]AdjEntry, g.N)
	for id, e := range g.Edges {
		if e.U == e.V {
			return fmt.Errorf("graph: METIS cannot represent self-loop edge %d", id)
		}
		adj[e.U] = append(adj[e.U], AdjEntry{To: e.V, W: e.W})
		adj[e.V] = append(adj[e.V], AdjEntry{To: e.U, W: e.W})
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d 001\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for v := 0; v < g.N; v++ {
		for i, a := range adj[v] {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(bw, "%d %g", a.To+1, a.W); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}
