package graph

import (
	"bytes"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// Full parser fuzzing: whatever a reader accepts must validate, survive a
// Write→Read round trip, and come back as the same graph. Malformed
// inputs must produce errors, never panics. Seed corpora come from
// testdata plus inline adversarial cases (negative header counts, NaN
// weights, truncated lines).

// addSeeds feeds every testdata file with the extension into the corpus.
func addSeeds(f *testing.F, ext string) {
	f.Helper()
	paths, err := filepath.Glob(filepath.Join("testdata", "*"+ext))
	if err != nil {
		f.Fatal(err)
	}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(data))
	}
}

// canonical returns the edge multiset with endpoints normalized to
// (min, max), sorted — the equality notion for formats that reorder
// edges.
func canonical(g *EdgeList) []Edge {
	out := make([]Edge, len(g.Edges))
	for i, e := range g.Edges {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		out[i] = e
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.U != b.U {
			return a.U < b.U
		}
		if a.V != b.V {
			return a.V < b.V
		}
		return a.W < b.W
	})
	return out
}

func sameGraph(t *testing.T, want, got *EdgeList, ordered bool) {
	t.Helper()
	if got.N != want.N {
		t.Fatalf("round trip changed N: %d -> %d", want.N, got.N)
	}
	if len(got.Edges) != len(want.Edges) {
		t.Fatalf("round trip changed edge count: %d -> %d", len(want.Edges), len(got.Edges))
	}
	a, b := want.Edges, got.Edges
	if !ordered {
		a, b = canonical(want), canonical(got)
	}
	for i := range a {
		if a[i].U != b[i].U || a[i].V != b[i].V || a[i].W != b[i].W {
			t.Fatalf("round trip changed edge %d: %+v -> %+v", i, a[i], b[i])
		}
	}
}

func FuzzParseGraphText(f *testing.F) {
	addSeeds(f, ".txt")
	f.Add("3 2\n0 1 0.5\n1 2 1.5\n")
	f.Add("0 0\n")
	f.Add("-1 0\n")
	f.Add("3 -7\n")
	f.Add("2 1\n0 1 nan\n")
	f.Add("2 1\n0 1 inf\n")
	f.Add("2 1\n0 9 1\n")
	f.Add("3 2\n0 1\n")
	f.Add("1 999999999999999\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		sameGraph(t, g, g2, true)
	})
}

func FuzzParseGraphDIMACS(f *testing.F) {
	addSeeds(f, ".dimacs")
	f.Add("p edge 3 2\ne 1 2 0.5\ne 2 3 1\n")
	f.Add("p edge -1 -1\n")
	f.Add("p edge 2 1\ne 1 2 nan\n")
	f.Add("p edge 2 1\ne 0 2 1\n")
	f.Add("p edge 1 99999999999999\n")
	f.Add("e 1 2 3\n")
	f.Add("p edge 2 1\np edge 2 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteDIMACS(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadDIMACS(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		sameGraph(t, g, g2, true)
	})
}

func FuzzParseGraphMETIS(f *testing.F) {
	addSeeds(f, ".metis")
	f.Add("2 1\n2\n1\n")
	f.Add("3 2 001\n2 0.5\n1 0.5 3 1\n2 1\n")
	f.Add("-2 -1\n")
	f.Add("2 1 001\n2 nan\n1 nan\n")
	f.Add("2 1\n2\n")
	f.Add("1 99999999999999\n\n")
	f.Add("2 1 011\n9 2\n4 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteMETIS(&buf, g); err != nil {
			// Self-loops are not representable in METIS; nothing else may
			// fail on an accepted graph.
			if strings.Contains(err.Error(), "self-loop") {
				return
			}
			t.Fatalf("write rejected accepted graph: %v", err)
		}
		g2, err := ReadMETIS(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		sameGraph(t, g, g2, false)
	})
}

// TestParsersRejectNaN pins the boundary Validate calls: NaN weights
// must be rejected by every text-based reader, not passed through to
// the comparison-based algorithms.
func TestParsersRejectNaN(t *testing.T) {
	cases := map[string]func() (*EdgeList, error){
		"text": func() (*EdgeList, error) {
			return ReadText(strings.NewReader("2 1\n0 1 nan\n"))
		},
		"dimacs": func() (*EdgeList, error) {
			return ReadDIMACS(strings.NewReader("p edge 2 1\ne 1 2 nan\n"))
		},
		"metis": func() (*EdgeList, error) {
			return ReadMETIS(strings.NewReader("2 1 001\n2 nan\n1 nan\n"))
		},
	}
	for name, read := range cases {
		if _, err := read(); err == nil {
			t.Errorf("%s reader accepted a NaN weight", name)
		}
	}
}

// TestParsersRejectNegativeHeader pins the negative-count guards: a
// hostile header must error, not panic in make().
func TestParsersRejectNegativeHeader(t *testing.T) {
	cases := map[string]func() (*EdgeList, error){
		"text": func() (*EdgeList, error) {
			return ReadText(strings.NewReader("3 -7\n"))
		},
		"dimacs": func() (*EdgeList, error) {
			return ReadDIMACS(strings.NewReader("p edge 3 -7\n"))
		},
		"metis": func() (*EdgeList, error) {
			return ReadMETIS(strings.NewReader("3 -7\n\n\n\n"))
		},
	}
	for name, read := range cases {
		if _, err := read(); err == nil {
			t.Errorf("%s reader accepted a negative edge count", name)
		}
	}
}

// TestTestdataSeedsParse keeps the seed corpus valid: every testdata
// file must parse with its format's reader.
func TestTestdataSeedsParse(t *testing.T) {
	readers := map[string]func(data []byte) error{
		".txt": func(data []byte) error {
			_, err := ReadText(bytes.NewReader(data))
			return err
		},
		".dimacs": func(data []byte) error {
			_, err := ReadDIMACS(bytes.NewReader(data))
			return err
		},
		".metis": func(data []byte) error {
			_, err := ReadMETIS(bytes.NewReader(data))
			return err
		},
	}
	for ext, read := range readers {
		paths, err := filepath.Glob(filepath.Join("testdata", "*"+ext))
		if err != nil {
			t.Fatal(err)
		}
		if len(paths) == 0 {
			t.Fatalf("no %s seeds in testdata", ext)
		}
		for _, path := range paths {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := read(data); err != nil {
				t.Errorf("%s: %v", path, err)
			}
		}
	}
}
