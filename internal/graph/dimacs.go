package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS reads a graph in the DIMACS format used by the MST and
// shortest-path implementation challenges:
//
//	c <comment>
//	p <edge|sp> <n> <m>
//	e <u> <v> <w>     (or "a" arc lines; duplicate arcs are kept)
//
// Vertices are 1-indexed in the file and converted to 0-indexed. Weights
// may be integers or floats.
func ReadDIMACS(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var g *EdgeList
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "p":
			if g != nil {
				return nil, fmt.Errorf("graph: line %d: duplicate problem line", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want \"p <type> n m\"", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			m, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative count in problem line", lineNo)
			}
			g = &EdgeList{N: n, Edges: make([]Edge, 0, preallocEdges(m))}
		case "e", "a":
			if g == nil {
				return nil, fmt.Errorf("graph: line %d: edge before problem line", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("graph: line %d: want \"%s u v w\"", lineNo, fields[0])
			}
			u, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			v, err := strconv.ParseInt(fields[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			w, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if u < 1 || int(u) > g.N || v < 1 || int(v) > g.N {
				return nil, fmt.Errorf("graph: line %d: vertex out of range [1,%d]", lineNo, g.N)
			}
			g.Edges = append(g.Edges, Edge{U: int32(u - 1), V: int32(v - 1), W: w})
		default:
			return nil, fmt.Errorf("graph: line %d: unknown line type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g == nil {
		return nil, fmt.Errorf("graph: no problem line")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteDIMACS writes g in the DIMACS edge format (1-indexed vertices).
func WriteDIMACS(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "p edge %d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "e %d %d %g\n", e.U+1, e.V+1, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}
