package graph

import (
	"bytes"
	"testing"
)

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"binary": FormatBinary, "bin": FormatBinary, "": FormatBinary,
		"text": FormatText, "TXT": FormatText,
		"dimacs": FormatDIMACS, "gr": FormatDIMACS,
		"metis": FormatMETIS,
	}
	for in, want := range cases {
		got, err := ParseFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseFormat(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseFormat("xml"); err == nil {
		t.Error("unknown format accepted")
	}
}

func TestFormatStringRoundTrip(t *testing.T) {
	for _, f := range []Format{FormatBinary, FormatText, FormatDIMACS, FormatMETIS} {
		got, err := ParseFormat(f.String())
		if err != nil || got != f {
			t.Errorf("round trip of %v failed", f)
		}
	}
	if Format(9).String() == "" {
		t.Error("unknown format stringifies empty")
	}
}

func TestFormatReadWriteAll(t *testing.T) {
	g := randomEL(30, 80, 11)
	for _, f := range []Format{FormatBinary, FormatText, FormatDIMACS} {
		var buf bytes.Buffer
		if err := f.Write(&buf, g); err != nil {
			t.Fatalf("%v write: %v", f, err)
		}
		got, err := f.Read(&buf)
		if err != nil {
			t.Fatalf("%v read: %v", f, err)
		}
		if !graphsEqual(g, got) {
			t.Fatalf("%v round trip mismatch", f)
		}
	}
}

func TestFormatUnknownErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := Format(9).Write(&buf, &EdgeList{N: 1}); err == nil {
		t.Error("unknown write format accepted")
	}
	if _, err := Format(9).Read(&buf); err == nil {
		t.Error("unknown read format accepted")
	}
}

func TestEdgeListM(t *testing.T) {
	g := &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1}, {U: 1, V: 2}}}
	if g.M() != 2 {
		t.Fatalf("M = %d", g.M())
	}
}
