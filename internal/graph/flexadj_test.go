package graph

import (
	"testing"
)

func flexFixture() (*EdgeList, *FlexAdj) {
	// The paper's Fig. 1 graph: 6 vertices, edges
	// (1,5) (1,2) (2,6) (5,3) (3,4) (4,6) — renumbered to 0-based.
	g := &EdgeList{N: 6, Edges: []Edge{
		{U: 0, V: 4, W: 1},
		{U: 0, V: 1, W: 2},
		{U: 1, V: 5, W: 3},
		{U: 4, V: 2, W: 4},
		{U: 2, V: 3, W: 5},
		{U: 3, V: 5, W: 6},
	}}
	return g, NewFlexAdj(BuildAdj(g))
}

func TestNewFlexAdjInitialChains(t *testing.T) {
	g, f := flexFixture()
	if f.N != g.N {
		t.Fatalf("N = %d", f.N)
	}
	total := int64(0)
	for s := int32(0); s < int32(f.N); s++ {
		seen := 0
		f.Chain(s, func(e AdjEntry) {
			seen++
			// Every arc of s's initial chain is incident to s.
			edge := g.Edges[e.EID]
			if edge.U != s && edge.V != s {
				t.Fatalf("vertex %d chain holds foreign edge %+v", s, edge)
			}
		})
		if int64(seen) != f.ChainLen(s) {
			t.Fatalf("vertex %d: Chain visited %d, ChainLen %d", s, seen, f.ChainLen(s))
		}
		total += f.ChainLen(s)
	}
	if total != int64(2*len(g.Edges)) {
		t.Fatalf("total arcs %d, want %d", total, 2*len(g.Edges))
	}
}

func TestAppendChain(t *testing.T) {
	_, f := flexFixture()
	l0, l1 := f.ChainLen(0), f.ChainLen(1)
	f.AppendChain(0, 1)
	if f.ChainLen(0) != l0+l1 {
		t.Fatalf("appended chain len %d, want %d", f.ChainLen(0), l0+l1)
	}
	if f.Head[1] != -1 || f.Tail[1] != -1 {
		t.Fatal("source chain not emptied")
	}
	// Appending an empty chain is a no-op.
	before := f.ChainLen(0)
	f.AppendChain(0, 1)
	if f.ChainLen(0) != before {
		t.Fatal("append of empty chain changed dst")
	}
	// Appending onto an empty dst adopts the source chain.
	l2 := f.ChainLen(2)
	f.AppendChain(1, 2)
	if f.ChainLen(1) != l2 || f.ChainLen(2) != 0 {
		t.Fatal("append onto empty dst broken")
	}
}

func TestChainOrderPreserved(t *testing.T) {
	// After appends, the chain visits blocks in append order and each
	// block's arcs in base order — the property the paper's Fig. 1 shows.
	_, f := flexFixture()
	var want []AdjEntry
	f.Chain(0, func(e AdjEntry) { want = append(want, e) })
	f.Chain(3, func(e AdjEntry) { want = append(want, e) })
	f.Chain(5, func(e AdjEntry) { want = append(want, e) })
	f.AppendChain(0, 3)
	f.AppendChain(0, 5)
	var got []AdjEntry
	f.Chain(0, func(e AdjEntry) { got = append(got, e) })
	if len(got) != len(want) {
		t.Fatalf("chain len %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chain order differs at %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestFlexAdjLookupIdentity(t *testing.T) {
	_, f := flexFixture()
	for v, s := range f.Lookup {
		if int32(v) != s {
			t.Fatalf("initial lookup[%d] = %d", v, s)
		}
	}
}
