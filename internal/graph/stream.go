package graph

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// MutationBatch is one batch of edge mutations against a graph: edges
// to add and edges to delete. Deletions identify edges by value
// (endpoints in either orientation plus exact weight), not by index, so
// a batch is meaningful against any equal-content copy of the graph.
type MutationBatch struct {
	Add []Edge
	Del []Edge
}

// EdgeStream is a reproducible mutation workload: an ordered sequence
// of batches against a graph with N vertices. It is the on-disk unit of
// the dynamic-MSF tooling (graphgen -mutations emits one, msf-verify
// -replay and msf-bench's dynamic mode consume one).
type EdgeStream struct {
	N       int
	Batches []MutationBatch
}

// Mutations returns the total add+del count across all batches.
func (s *EdgeStream) Mutations() int {
	total := 0
	for _, b := range s.Batches {
		total += len(b.Add) + len(b.Del)
	}
	return total
}

// WriteEdgeStream writes s in the library's text stream format:
//
//	pmsf-stream 1
//	n <vertices>
//	batch <adds> <dels>
//	+ <u> <v> <w>      (adds, one per line)
//	- <u> <v> <w>      (dels, one per line)
//	batch ...
//
// Weights are printed with %g round-tripping through strconv, vertices
// are 0-indexed, and '#' starts a comment line.
func WriteEdgeStream(w io.Writer, s *EdgeStream) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "pmsf-stream 1\nn %d\n", s.N); err != nil {
		return err
	}
	for _, b := range s.Batches {
		if _, err := fmt.Fprintf(bw, "batch %d %d\n", len(b.Add), len(b.Del)); err != nil {
			return err
		}
		for _, e := range b.Add {
			if _, err := fmt.Fprintf(bw, "+ %d %d %s\n", e.U, e.V, formatWeight(e.W)); err != nil {
				return err
			}
		}
		for _, e := range b.Del {
			if _, err := fmt.Fprintf(bw, "- %d %d %s\n", e.U, e.V, formatWeight(e.W)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// formatWeight renders w so ParseFloat round-trips it exactly.
func formatWeight(w Weight) string {
	return strconv.FormatFloat(w, 'g', -1, 64)
}

// ReadEdgeStream parses the text stream format written by
// WriteEdgeStream. Structural errors (unknown line types, counts not
// matching the batch header, out-of-range vertices once n is known, NaN
// weights) are rejected with line numbers.
func ReadEdgeStream(r io.Reader) (*EdgeStream, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	s := &EdgeStream{N: -1}
	var cur *MutationBatch
	wantAdd, wantDel := 0, 0
	lineNo := 0
	sawHeader := false
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "pmsf-stream":
			if sawHeader {
				return nil, fmt.Errorf("stream: line %d: duplicate header", lineNo)
			}
			if len(fields) != 2 || fields[1] != "1" {
				return nil, fmt.Errorf("stream: line %d: unsupported version %q", lineNo, line)
			}
			sawHeader = true
		case "n":
			if !sawHeader {
				return nil, fmt.Errorf("stream: line %d: missing pmsf-stream header", lineNo)
			}
			if s.N >= 0 {
				return nil, fmt.Errorf("stream: line %d: duplicate n line", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("stream: line %d: want \"n <vertices>\"", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("stream: line %d: bad vertex count %q", lineNo, fields[1])
			}
			s.N = n
		case "batch":
			if s.N < 0 {
				return nil, fmt.Errorf("stream: line %d: batch before n line", lineNo)
			}
			if wantAdd != 0 || wantDel != 0 {
				return nil, fmt.Errorf("stream: line %d: previous batch short by %d adds, %d dels", lineNo, wantAdd, wantDel)
			}
			if len(fields) != 3 {
				return nil, fmt.Errorf("stream: line %d: want \"batch <adds> <dels>\"", lineNo)
			}
			a, err1 := strconv.Atoi(fields[1])
			d, err2 := strconv.Atoi(fields[2])
			if err1 != nil || err2 != nil || a < 0 || d < 0 {
				return nil, fmt.Errorf("stream: line %d: bad batch counts %q", lineNo, line)
			}
			s.Batches = append(s.Batches, MutationBatch{})
			cur = &s.Batches[len(s.Batches)-1]
			wantAdd, wantDel = a, d
		case "+", "-":
			if cur == nil {
				return nil, fmt.Errorf("stream: line %d: mutation before batch line", lineNo)
			}
			e, err := parseStreamEdge(fields, s.N)
			if err != nil {
				return nil, fmt.Errorf("stream: line %d: %w", lineNo, err)
			}
			if fields[0] == "+" {
				if wantAdd == 0 {
					return nil, fmt.Errorf("stream: line %d: more adds than the batch header declared", lineNo)
				}
				cur.Add = append(cur.Add, e)
				wantAdd--
			} else {
				if wantDel == 0 {
					return nil, fmt.Errorf("stream: line %d: more dels than the batch header declared", lineNo)
				}
				cur.Del = append(cur.Del, e)
				wantDel--
			}
		default:
			return nil, fmt.Errorf("stream: line %d: unknown line type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("stream: missing pmsf-stream header")
	}
	if s.N < 0 {
		return nil, fmt.Errorf("stream: missing n line")
	}
	if wantAdd != 0 || wantDel != 0 {
		return nil, fmt.Errorf("stream: final batch short by %d adds, %d dels", wantAdd, wantDel)
	}
	return s, nil
}

func parseStreamEdge(fields []string, n int) (Edge, error) {
	if len(fields) != 4 {
		return Edge{}, fmt.Errorf("want \"%s <u> <v> <w>\"", fields[0])
	}
	u, err := strconv.ParseInt(fields[1], 10, 32)
	if err != nil {
		return Edge{}, err
	}
	v, err := strconv.ParseInt(fields[2], 10, 32)
	if err != nil {
		return Edge{}, err
	}
	w, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return Edge{}, err
	}
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return Edge{}, fmt.Errorf("vertex out of range [0,%d)", n)
	}
	if math.IsNaN(w) {
		return Edge{}, fmt.Errorf("NaN weight")
	}
	return Edge{U: int32(u), V: int32(v), W: w}, nil
}
