package graph

import (
	"bytes"
	"strings"
	"testing"
)

func sampleStream() *EdgeStream {
	return &EdgeStream{
		N: 5,
		Batches: []MutationBatch{
			{Add: []Edge{{U: 0, V: 1, W: 1.5}, {U: 2, V: 3, W: -2.25}}},
			{Add: []Edge{{U: 4, V: 0, W: 0.1234567890123}}, Del: []Edge{{U: 0, V: 1, W: 1.5}}},
			{Del: []Edge{{U: 2, V: 3, W: -2.25}}},
		},
	}
}

func TestEdgeStreamRoundTrip(t *testing.T) {
	s := sampleStream()
	var buf bytes.Buffer
	if err := WriteEdgeStream(&buf, s); err != nil {
		t.Fatal(err)
	}
	got, err := ReadEdgeStream(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != s.N || len(got.Batches) != len(s.Batches) {
		t.Fatalf("round trip: got n=%d batches=%d, want n=%d batches=%d",
			got.N, len(got.Batches), s.N, len(s.Batches))
	}
	for i, b := range s.Batches {
		gb := got.Batches[i]
		if len(gb.Add) != len(b.Add) || len(gb.Del) != len(b.Del) {
			t.Fatalf("batch %d: got %d/%d, want %d/%d", i, len(gb.Add), len(gb.Del), len(b.Add), len(b.Del))
		}
		for j := range b.Add {
			if gb.Add[j] != b.Add[j] {
				t.Fatalf("batch %d add %d: got %+v, want %+v (weights must round-trip exactly)", i, j, gb.Add[j], b.Add[j])
			}
		}
		for j := range b.Del {
			if gb.Del[j] != b.Del[j] {
				t.Fatalf("batch %d del %d: got %+v, want %+v", i, j, gb.Del[j], b.Del[j])
			}
		}
	}
	if m := got.Mutations(); m != 5 {
		t.Fatalf("Mutations() = %d, want 5", m)
	}
}

func TestEdgeStreamRejectsMalformed(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"no header", "n 5\n", "header"},
		{"bad version", "pmsf-stream 9\n", "version"},
		{"batch before n", "pmsf-stream 1\nbatch 0 0\n", "before n"},
		{"short batch", "pmsf-stream 1\nn 5\nbatch 2 0\n+ 0 1 1\n", "short by 1 adds"},
		{"extra add", "pmsf-stream 1\nn 5\nbatch 0 0\n+ 0 1 1\n", "more adds"},
		{"vertex range", "pmsf-stream 1\nn 2\nbatch 1 0\n+ 0 7 1\n", "out of range"},
		{"nan weight", "pmsf-stream 1\nn 2\nbatch 1 0\n+ 0 1 NaN\n", "NaN"},
		{"mutation before batch", "pmsf-stream 1\nn 2\n+ 0 1 1\n", "before batch"},
		{"unknown line", "pmsf-stream 1\nn 2\nzzz\n", "unknown line"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeStream(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestEdgeStreamCommentsAndBlanks(t *testing.T) {
	in := "# workload\npmsf-stream 1\n\nn 3\n# first batch\nbatch 1 0\n+ 0 2 3.5\n"
	s, err := ReadEdgeStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || len(s.Batches) != 1 || s.Batches[0].Add[0] != (Edge{U: 0, V: 2, W: 3.5}) {
		t.Fatalf("parsed %+v", s)
	}
}
