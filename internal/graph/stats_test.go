package graph

import "testing"

func TestComputeStats(t *testing.T) {
	g := &EdgeList{N: 5, Edges: []Edge{
		{U: 0, V: 1, W: 1},
		{U: 1, V: 2, W: 2},
		{U: 3, V: 3, W: 9}, // self-loop
	}}
	s := ComputeStats(g)
	if s.N != 5 || s.M != 3 || s.SelfLoops != 1 {
		t.Fatalf("shape %+v", s)
	}
	if s.Components != 3 { // {0,1,2}, {3}, {4}
		t.Fatalf("components %d", s.Components)
	}
	if s.Isolated != 2 { // 3 (self-loop only) and 4
		t.Fatalf("isolated %d", s.Isolated)
	}
	if s.MinDegree != 0 || s.MaxDegree != 2 {
		t.Fatalf("degrees %d..%d", s.MinDegree, s.MaxDegree)
	}
	if s.AvgDegree != 4.0/5 {
		t.Fatalf("avg %g", s.AvgDegree)
	}
	if s.MinWeight != 1 || s.MaxWeight != 9 || s.TotalWeight != 12 {
		t.Fatalf("weights %g %g %g", s.MinWeight, s.MaxWeight, s.TotalWeight)
	}
	// Degrees: v0=1, v1=2, v2=1, v3=0 (self-loop excluded), v4=0.
	if s.DegreeHistogram[0] != 2 || s.DegreeHistogram[1] != 2 || s.DegreeHistogram[2] != 1 {
		t.Fatalf("histogram %v", s.DegreeHistogram)
	}
	if s.MedianDegree != 1 {
		t.Fatalf("median %d", s.MedianDegree)
	}
}

func TestComputeStatsEmpty(t *testing.T) {
	s := ComputeStats(&EdgeList{N: 0})
	if s.N != 0 || s.M != 0 || s.Components != 0 || s.AvgDegree != 0 {
		t.Fatalf("empty stats %+v", s)
	}
}

func TestComputeStatsHistogramOverflowBucket(t *testing.T) {
	// A star: center has degree 40 (>= the last bucket).
	g := &EdgeList{N: 41}
	for i := int32(1); i <= 40; i++ {
		g.Edges = append(g.Edges, Edge{U: 0, V: i, W: 1})
	}
	s := ComputeStats(g)
	last := s.DegreeHistogram[len(s.DegreeHistogram)-1]
	if last != 1 {
		t.Fatalf("overflow bucket %d, want 1", last)
	}
	if s.MaxDegree != 40 {
		t.Fatalf("max degree %d", s.MaxDegree)
	}
}
