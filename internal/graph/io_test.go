package graph

import (
	"bytes"
	"strings"
	"testing"

	"pmsf/internal/rng"
)

func randomEL(n, m int, seed uint64) *EdgeList {
	r := rng.New(seed)
	g := &EdgeList{N: n}
	for i := 0; i < m; i++ {
		g.Edges = append(g.Edges, Edge{
			U: int32(r.Intn(n)), V: int32(r.Intn(n)), W: r.Float64(),
		})
	}
	return g
}

func graphsEqual(a, b *EdgeList) bool {
	if a.N != b.N || len(a.Edges) != len(b.Edges) {
		return false
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			return false
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*EdgeList{
		{N: 0},
		{N: 5},
		randomEL(100, 300, 1),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !graphsEqual(g, got) {
			t.Fatal("binary round trip mismatch")
		}
	}
}

func TestTextRoundTrip(t *testing.T) {
	g := randomEL(50, 120, 2)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !graphsEqual(g, got) {
		t.Fatal("text round trip mismatch")
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("not a graph")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadBinary(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	// Truncated edge section.
	var buf bytes.Buffer
	if err := WriteBinary(&buf, randomEL(10, 5, 3)); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-8]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Fatal("truncated input accepted")
	}
}

func TestReadTextComments(t *testing.T) {
	in := `# a comment
c DIMACS-style comment

3 2
0 1 0.5
1 2 1.5
`
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 3 || len(g.Edges) != 2 || g.Edges[1].W != 1.5 {
		t.Fatalf("parsed %+v", g)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",               // empty
		"3\n",            // bad header
		"3 1\n0 1\n",     // bad edge arity
		"3 1\nx 1 0.5\n", // bad vertex
		"3 1\n0 y 0.5\n", // bad vertex
		"3 1\n0 1 z\n",   // bad weight
		"2 1\n0 7 0.5\n", // out of range (Validate)
		"-1 0\n",         // negative N
	}
	for i, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted: %q", i, in)
		}
	}
}
