// Package graph defines the graph representations used by the MSF
// algorithms: the undirected edge list (the canonical input form), the
// cache-friendly adjacency array (CSR), and the paper's flexible adjacency
// list (a linked list of adjacency arrays per supervertex).
//
// Vertices are dense int32 identifiers in [0, N). Every undirected edge
// has a stable int32 edge identifier (its index in the canonical edge
// list) so that algorithms can report the exact set of selected edges
// regardless of how many times the graph has been contracted.
package graph

import (
	"errors"
	"fmt"
	"math"
)

// Vertex is a dense vertex identifier.
type Vertex = int32

// Weight is an edge weight. The paper assumes distinct weights; the
// library breaks ties by edge identifier so arbitrary weights are safe.
type Weight = float64

// Edge is one undirected edge of the canonical input edge list.
type Edge struct {
	U, V Vertex
	W    Weight
}

// EdgeList is the canonical undirected graph: N vertices and one record
// per undirected edge. Self-loops are permitted in the input (they are
// never part of any MSF) but parallel edges are allowed and handled.
type EdgeList struct {
	N     int
	Edges []Edge
}

// M returns the number of undirected edges.
func (g *EdgeList) M() int { return len(g.Edges) }

// Validate checks structural invariants: endpoint ranges and finite N.
func (g *EdgeList) Validate() error {
	if g.N < 0 {
		return errors.New("graph: negative vertex count")
	}
	for i, e := range g.Edges {
		if e.U < 0 || int(e.U) >= g.N || e.V < 0 || int(e.V) >= g.N {
			return fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, e.U, e.V, g.N)
		}
		if math.IsNaN(e.W) {
			// NaN breaks every weight comparator (sorting becomes
			// undefined behaviour), so it is rejected at the boundary.
			return fmt.Errorf("graph: edge %d has NaN weight", i)
		}
	}
	return nil
}

// Clone returns a deep copy of the edge list.
func (g *EdgeList) Clone() *EdgeList {
	edges := make([]Edge, len(g.Edges))
	copy(edges, g.Edges)
	return &EdgeList{N: g.N, Edges: edges}
}

// AdjEntry is one directed arc of an adjacency array: the target vertex,
// the weight, and the identifier of the underlying undirected edge. Each
// undirected edge (u,v) contributes two entries, one in u's list and one
// in v's list, sharing the same EID.
type AdjEntry struct {
	To  Vertex
	EID int32
	W   Weight
}

// AdjArray is the adjacency-array (CSR) representation: Off has length
// N+1 and vertex v's arcs are Arcs[Off[v]:Off[v+1]].
type AdjArray struct {
	N    int
	Off  []int64
	Arcs []AdjEntry
}

// Degree returns the number of arcs incident to v.
func (a *AdjArray) Degree(v Vertex) int { return int(a.Off[v+1] - a.Off[v]) }

// Adj returns the arc slice of v.
func (a *AdjArray) Adj(v Vertex) []AdjEntry { return a.Arcs[a.Off[v]:a.Off[v+1]] }

// M returns the number of undirected edges (arcs / 2).
func (a *AdjArray) M() int { return len(a.Arcs) / 2 }

// BuildAdj converts an edge list to adjacency arrays with a counting-sort
// pass. Self-loops in the input are dropped here: they contribute nothing
// to any spanning forest and the CSR form is the working form of every
// algorithm in this library.
func BuildAdj(g *EdgeList) *AdjArray {
	n := g.N
	off := make([]int64, n+1)
	for _, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		off[e.U+1]++
		off[e.V+1]++
	}
	for i := 0; i < n; i++ {
		off[i+1] += off[i]
	}
	arcs := make([]AdjEntry, off[n])
	next := make([]int64, n)
	copy(next, off[:n])
	for id, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		arcs[next[e.U]] = AdjEntry{To: e.V, EID: int32(id), W: e.W}
		next[e.U]++
		arcs[next[e.V]] = AdjEntry{To: e.U, EID: int32(id), W: e.W}
		next[e.V]++
	}
	return &AdjArray{N: n, Off: off, Arcs: arcs}
}

// Validate checks CSR structural invariants.
func (a *AdjArray) Validate() error {
	if len(a.Off) != a.N+1 {
		return fmt.Errorf("graph: offset array has length %d, want %d", len(a.Off), a.N+1)
	}
	if a.N > 0 && a.Off[0] != 0 {
		return errors.New("graph: offsets must start at 0")
	}
	for v := 0; v < a.N; v++ {
		if a.Off[v] > a.Off[v+1] {
			return fmt.Errorf("graph: offsets not monotone at vertex %d", v)
		}
	}
	if a.N >= 0 && len(a.Off) > 0 && a.Off[a.N] != int64(len(a.Arcs)) {
		return fmt.Errorf("graph: final offset %d != arc count %d", a.Off[a.N], len(a.Arcs))
	}
	for i, arc := range a.Arcs {
		if arc.To < 0 || int(arc.To) >= a.N {
			return fmt.Errorf("graph: arc %d targets out-of-range vertex %d", i, arc.To)
		}
	}
	return nil
}

// WEdge is a working edge used by the edge-list Borůvka variant: current
// supervertex endpoints plus weight and the original edge identifier.
type WEdge struct {
	U, V Vertex
	ID   int32
	W    Weight
}

// DirectedWorkList builds the Bor-EL working list: each undirected edge
// appears twice, (u,v) and (v,u), as the paper prescribes, so that a sort
// on the first endpoint groups every vertex's incident edges together.
// Self-loops are dropped.
func DirectedWorkList(g *EdgeList) []WEdge {
	out := make([]WEdge, 0, 2*len(g.Edges))
	for id, e := range g.Edges {
		if e.U == e.V {
			continue
		}
		out = append(out, WEdge{U: e.U, V: e.V, ID: int32(id), W: e.W})
		out = append(out, WEdge{U: e.V, V: e.U, ID: int32(id), W: e.W})
	}
	return out
}

// ComponentCount returns the number of connected components of g using a
// sequential union-find. It is used by tests and the verification oracle.
func ComponentCount(g *EdgeList) int {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	comps := g.N
	for _, e := range g.Edges {
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
			comps--
		}
	}
	return comps
}

// DisjointUnion concatenates the graphs as independent components: the
// vertices of each successive graph are shifted past the previous ones.
// Useful for building forests of known cluster structure (see
// examples/components).
func DisjointUnion(gs ...*EdgeList) *EdgeList {
	out := &EdgeList{}
	for _, g := range gs {
		base := Vertex(out.N)
		for _, e := range g.Edges {
			out.Edges = append(out.Edges, Edge{U: base + e.U, V: base + e.V, W: e.W})
		}
		out.N += g.N
	}
	return out
}
