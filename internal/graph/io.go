package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// File formats. The binary format is the library's native format:
//
//	magic "PMSF1\n" | uint64 n | uint64 m | m × (int32 u, int32 v, float64 w)
//
// little-endian throughout. The text format is one header line "n m"
// followed by m lines "u v w", compatible with quick shell inspection and
// easily produced from DIMACS-style inputs.

const binaryMagic = "PMSF1\n"

// preallocEdges caps an edge-count preallocation taken from an untrusted
// header: a corrupt or hostile count must not demand an arbitrarily
// large up-front allocation. Slices grow naturally past the cap.
func preallocEdges(m int) int {
	const cap = 1 << 22
	if m > cap {
		return cap
	}
	return m
}

// WriteBinary writes g in the native binary format.
func WriteBinary(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], uint64(g.N))
	binary.LittleEndian.PutUint64(hdr[8:16], uint64(len(g.Edges)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [16]byte
	for _, e := range g.Edges {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.U))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.V))
		binary.LittleEndian.PutUint64(rec[8:16], math.Float64bits(e.W))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads a graph in the native binary format.
func ReadBinary(r io.Reader) (*EdgeList, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: vertex count %d exceeds int32", n)
	}
	if m > math.MaxInt {
		return nil, fmt.Errorf("graph: edge count %d exceeds int", m)
	}
	g := &EdgeList{N: int(n), Edges: make([]Edge, 0, preallocEdges(int(m)))}
	var rec [16]byte
	for i := uint64(0); i < m; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d: %w", i, err)
		}
		g.Edges = append(g.Edges, Edge{
			U: int32(binary.LittleEndian.Uint32(rec[0:4])),
			V: int32(binary.LittleEndian.Uint32(rec[4:8])),
			W: math.Float64frombits(binary.LittleEndian.Uint64(rec[8:16])),
		})
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// WriteText writes g in the text format: "n m\n" then "u v w" per edge.
func WriteText(w io.Writer, g *EdgeList) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N, len(g.Edges)); err != nil {
		return err
	}
	for _, e := range g.Edges {
		if _, err := fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText reads the text format. Blank lines and lines starting with '#'
// or 'c' (DIMACS comments) are skipped.
func ReadText(r io.Reader) (*EdgeList, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	g := &EdgeList{N: -1}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == 'c' {
			continue
		}
		fields := strings.Fields(line)
		if g.N < 0 {
			if len(fields) != 2 {
				return nil, fmt.Errorf("graph: line %d: want header \"n m\"", lineNo)
			}
			n, err := strconv.Atoi(fields[0])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			m, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
			}
			if n < 0 || m < 0 {
				return nil, fmt.Errorf("graph: line %d: negative count in header", lineNo)
			}
			g.N = n
			g.Edges = make([]Edge, 0, preallocEdges(m))
			continue
		}
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want \"u v w\"", lineNo)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", lineNo, err)
		}
		g.Edges = append(g.Edges, Edge{U: int32(u), V: int32(v), W: w})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if g.N < 0 {
		return nil, fmt.Errorf("graph: empty input")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
