package graph

import "sort"

// Stats summarizes a graph's structure: the quantities the paper's
// Section 5.1 uses to characterize its input families (density, degree
// distribution, component structure).
type Stats struct {
	N, M       int
	SelfLoops  int
	Components int
	Isolated   int // degree-0 vertices
	MinDegree  int
	MaxDegree  int
	AvgDegree  float64
	// DegreeHistogram[d] counts vertices of degree d for d < len-1; the
	// final bucket counts everything at or above its index.
	DegreeHistogram []int64
	MinWeight       Weight
	MaxWeight       Weight
	TotalWeight     Weight
	// MedianDegree is the 50th-percentile degree.
	MedianDegree int
}

// ComputeStats calculates Stats in one pass plus a component count.
func ComputeStats(g *EdgeList) Stats {
	s := Stats{N: g.N, M: len(g.Edges)}
	deg := make([]int32, g.N)
	first := true
	for _, e := range g.Edges {
		if e.U == e.V {
			s.SelfLoops++
		} else {
			deg[e.U]++
			deg[e.V]++
		}
		if first {
			s.MinWeight, s.MaxWeight = e.W, e.W
			first = false
		}
		if e.W < s.MinWeight {
			s.MinWeight = e.W
		}
		if e.W > s.MaxWeight {
			s.MaxWeight = e.W
		}
		s.TotalWeight += e.W
	}
	const histMax = 16
	s.DegreeHistogram = make([]int64, histMax+1)
	if g.N > 0 {
		s.MinDegree = int(deg[0])
	}
	var sum int64
	for _, d := range deg {
		di := int(d)
		if di == 0 {
			s.Isolated++
		}
		if di < s.MinDegree {
			s.MinDegree = di
		}
		if di > s.MaxDegree {
			s.MaxDegree = di
		}
		if di >= histMax {
			s.DegreeHistogram[histMax]++
		} else {
			s.DegreeHistogram[di]++
		}
		sum += int64(di)
	}
	if g.N > 0 {
		s.AvgDegree = float64(sum) / float64(g.N)
		sorted := make([]int32, len(deg))
		copy(sorted, deg)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		s.MedianDegree = int(sorted[len(sorted)/2])
	}
	s.Components = ComponentCount(g)
	return s
}
