package graph

// Forest is the result of a minimum spanning forest computation: the
// identifiers of the selected edges (indices into the input edge list),
// the total weight, and the number of connected components of the input
// (isolated vertices each count as one component).
type Forest struct {
	EdgeIDs    []int32
	Weight     Weight
	Components int
}

// Size returns the number of selected edges, which for a correct
// spanning forest equals N - Components.
func (f *Forest) Size() int { return len(f.EdgeIDs) }

// Edges materializes the selected edges of the forest against the input
// graph g.
func (f *Forest) Edges(g *EdgeList) []Edge {
	out := make([]Edge, len(f.EdgeIDs))
	for i, id := range f.EdgeIDs {
		out[i] = g.Edges[id]
	}
	return out
}

// SumWeights recomputes the total weight from the edge ids against g.
func (f *Forest) SumWeights(g *EdgeList) Weight {
	var w Weight
	for _, id := range f.EdgeIDs {
		w += g.Edges[id].W
	}
	return w
}
