package graph

import (
	"bytes"
	"strings"
	"testing"
)

// The readers must never panic and must reject structurally invalid
// graphs; whatever they accept must round-trip.

func FuzzReadText(f *testing.F) {
	f.Add("3 2\n0 1 0.5\n1 2 1.5\n")
	f.Add("# comment\n2 1\n0 1 1\n")
	f.Add("0 0\n")
	f.Add("x")
	f.Add("3 2\n0 1")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadText(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteText(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadText(&buf)
		if err != nil {
			t.Fatalf("round trip rejected: %v", err)
		}
		if g2.N != g.N || len(g2.Edges) != len(g.Edges) {
			t.Fatal("round trip changed shape")
		}
	})
}

func FuzzReadDIMACS(f *testing.F) {
	f.Add("p edge 3 2\ne 1 2 0.5\ne 2 3 1\n")
	f.Add("c x\np edge 1 0\n")
	f.Add("p sp 2 1\na 1 2 3\n")
	f.Add("e 1 2 3\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadDIMACS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	var buf bytes.Buffer
	_ = WriteBinary(&buf, &EdgeList{N: 3, Edges: []Edge{{U: 0, V: 1, W: 1}}})
	f.Add(buf.Bytes())
	f.Add([]byte("PMSF1\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, in []byte) {
		g, err := ReadBinary(bytes.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}

func FuzzReadMETIS(f *testing.F) {
	f.Add("2 1\n2\n1\n")
	f.Add("3 2 001\n2 0.5\n1 0.5 3 1\n2 1\n")
	f.Add("% c\n1 0\n\n")
	f.Add("p edge 1 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		g, err := ReadMETIS(strings.NewReader(in))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("accepted invalid graph: %v", err)
		}
	})
}
