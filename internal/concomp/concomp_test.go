package concomp

import (
	"fmt"
	"testing"
	"testing/quick"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

func checkAgainstReference(t *testing.T, g *graph.EdgeList, labels []int32, k int) {
	t.Helper()
	if want := graph.ComponentCount(g); k != want {
		t.Fatalf("k = %d, want %d", k, want)
	}
	if len(labels) != g.N {
		t.Fatalf("labels length %d", len(labels))
	}
	for _, e := range g.Edges {
		if labels[e.U] != labels[e.V] {
			t.Fatalf("edge (%d,%d) crosses labels %d/%d", e.U, e.V, labels[e.U], labels[e.V])
		}
	}
	// Labels dense in [0,k).
	seen := make([]bool, k)
	for v, l := range labels {
		if l < 0 || int(l) >= k {
			t.Fatalf("label[%d] = %d", v, l)
		}
		seen[l] = true
	}
	for l, s := range seen {
		if !s {
			t.Fatalf("label %d unused", l)
		}
	}
	// Same-label vertices must be connected: count label classes == k is
	// enough together with the edge check above (labels refine true
	// components; equal counts force equality).
}

func testInputs() map[string]*graph.EdgeList {
	return map[string]*graph.EdgeList{
		"empty":        {N: 0},
		"isolated":     {N: 5},
		"one-edge":     {N: 3, Edges: []graph.Edge{{U: 0, V: 2, W: 1}}},
		"self-loops":   {N: 2, Edges: []graph.Edge{{U: 0, V: 0, W: 1}, {U: 1, V: 1, W: 1}}},
		"random":       gen.Random(2000, 6000, 1),
		"disconnected": gen.Random(3000, 1500, 2),
		"mesh":         gen.Mesh2D(40, 40, 3),
		"2d60":         gen.Mesh2D60(40, 40, 4),
		"str0":         gen.Str0(512, 5),
	}
}

func TestBothAlgorithms(t *testing.T) {
	algos := map[string]func(*graph.EdgeList, int) ([]int32, int){
		"SV":        SV,
		"UnionFind": UnionFind,
	}
	for aname, algo := range algos {
		for gname, g := range testInputs() {
			for _, p := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%s/p=%d", aname, gname, p), func(t *testing.T) {
					labels, k := algo(g, p)
					checkAgainstReference(t, g, labels, k)
				})
			}
		}
	}
}

func TestAlgorithmsAgreeProperty(t *testing.T) {
	r := rng.New(7)
	f := func(seed uint64) bool {
		n := 1 + int(seed%100)
		m := int(seed>>8) % 300
		g := &graph.EdgeList{N: n}
		for i := 0; i < m; i++ {
			g.Edges = append(g.Edges, graph.Edge{
				U: int32(r.Intn(n)), V: int32(r.Intn(n)),
			})
		}
		l1, k1 := SV(g, 4)
		l2, k2 := UnionFind(g, 4)
		if k1 != k2 {
			return false
		}
		// Partitions must agree (labels may differ only by renaming; SV
		// and UnionFind both order by root id = min id, so they actually
		// match exactly for SV; compare partition-wise to be robust).
		remap := map[int32]int32{}
		for v := 0; v < n; v++ {
			if want, ok := remap[l1[v]]; ok {
				if l2[v] != want {
					return false
				}
			} else {
				remap[l1[v]] = l2[v]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSVDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Random(3000, 4500, 9)
	ref, k1 := SV(g, 1)
	for _, p := range []int{2, 4, 8} {
		labels, k := SV(g, p)
		if k != k1 {
			t.Fatalf("p=%d: k=%d, want %d", p, k, k1)
		}
		for v := range labels {
			if labels[v] != ref[v] {
				t.Fatalf("p=%d: label[%d] differs", p, v)
			}
		}
	}
}
