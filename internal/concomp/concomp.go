// Package concomp computes connected components of undirected graphs on
// shared memory — the first of the follow-on problems the paper's
// conclusion targets ("we plan to apply the techniques discussed in this
// paper to ... connected components"). Two algorithms are provided:
//
//   - SV: the Shiloach-Vishkin style algorithm built from the same
//     primitives as the Borůvka variants — rounds of hooking (each vertex
//     grafts its root onto a neighbouring smaller root) followed by
//     pointer-jumping shortcuts.
//   - UnionFind: edge-parallel lock-free union-find, typically faster in
//     practice, used as the cross-check.
//
// Both return dense component labels and the component count.
package concomp

import (
	"sync/atomic"

	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/uf"
)

// UnionFind computes components by unioning every edge into a lock-free
// union-find with p workers.
func UnionFind(g *graph.EdgeList, p int) (labels []int32, k int) {
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	u := uf.NewConcurrent(g.N)
	par.For(p, len(g.Edges), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			e := g.Edges[i]
			if e.U != e.V {
				u.Union(e.U, e.V)
			}
		}
	})
	root := make([]int32, g.N)
	par.For(p, g.N, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			root[v] = u.Find(int32(v))
		}
	})
	return denseLabels(p, root)
}

// SV computes components with hooking + pointer jumping. parent[v]
// converges to the minimum vertex id of v's component, giving
// deterministic labels independent of p.
func SV(g *graph.EdgeList, p int) (labels []int32, k int) {
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	n := g.N
	parent := make([]int32, n)
	for v := range parent {
		parent[v] = int32(v)
	}
	if n == 0 {
		return nil, 0
	}
	for {
		// Hooking: for every edge (u,v), try to hang the larger root
		// under the smaller. CAS keeps each write consistent; losing a
		// race just defers the hook to the next round.
		hooked := par.ReduceInt64(p, len(g.Edges), func(_, lo, hi int) int64 {
			var c int64
			for i := lo; i < hi; i++ {
				e := g.Edges[i]
				if e.U == e.V {
					continue
				}
				ru := atomic.LoadInt32(&parent[e.U])
				rv := atomic.LoadInt32(&parent[e.V])
				if ru == rv {
					continue
				}
				// Only roots may be hooked, and only onto smaller ids —
				// this keeps the structure acyclic.
				small, big := ru, rv
				if small > big {
					small, big = big, small
				}
				if atomic.CompareAndSwapInt32(&parent[big], big, small) {
					c++
				}
			}
			return c
		})
		// Shortcutting: full pointer jumping to the roots.
		for {
			changed := par.ReduceInt64(p, n, func(_, lo, hi int) int64 {
				var c int64
				for v := lo; v < hi; v++ {
					pv := atomic.LoadInt32(&parent[v])
					gp := atomic.LoadInt32(&parent[pv])
					if gp != pv {
						atomic.StoreInt32(&parent[v], gp)
						c++
					}
				}
				return c
			})
			if changed == 0 {
				break
			}
		}
		if hooked == 0 {
			break
		}
	}
	return denseLabels(p, parent)
}

// denseLabels converts a root-per-vertex array into dense labels ordered
// by root id (so labels are deterministic).
func denseLabels(p int, root []int32) ([]int32, int) {
	n := len(root)
	roots := par.PackIndices(p, n, func(i int) bool { return int(root[i]) == i })
	k := len(roots)
	rootLabel := make([]int32, n)
	par.For(p, k, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rootLabel[roots[i]] = int32(i)
		}
	})
	labels := make([]int32, n)
	par.For(p, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			labels[v] = rootLabel[root[v]]
		}
	})
	return labels, k
}
