package concomp

// Additional properties: deletion stability (removing an edge can only
// split), label determinism, and agreement with the MSF component count
// across worker counts and input families.

import (
	"testing"
	"testing/quick"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

func TestComponentMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(150)
		m := r.Intn(3 * n)
		if max := n * (n - 1) / 2; m > max {
			m = max
		}
		g := gen.Random(n, m, r.Uint64())
		_, k := SV(g, 2)
		if len(g.Edges) == 0 {
			return k == g.N
		}
		// Remove one random edge: component count can only stay or grow
		// by exactly one.
		cut := r.Intn(len(g.Edges))
		g2 := &graph.EdgeList{N: g.N}
		for i, e := range g.Edges {
			if i != cut {
				g2.Edges = append(g2.Edges, e)
			}
		}
		_, k2 := SV(g2, 2)
		return k2 == k || k2 == k+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestStructuredFamiliesSingleComponent(t *testing.T) {
	inputs := []*graph.EdgeList{
		gen.Str0(256, 1), gen.Str1(300, 2), gen.Str2(300, 3), gen.Str3(300, 4),
		gen.Star(200, 5), gen.Path(200, 6), gen.Cycle(200, 7),
		gen.Caterpillar(20, 4, 8), gen.Binary(255, 9),
	}
	for i, g := range inputs {
		for _, p := range []int{1, 4} {
			if _, k := SV(g, p); k != 1 {
				t.Fatalf("input %d p=%d: %d components, want 1", i, p, k)
			}
			if _, k := UnionFind(g, p); k != 1 {
				t.Fatalf("input %d p=%d (UF): %d components", i, p, k)
			}
		}
	}
}
