// Package cc implements the connect-components step of the Borůvka
// iteration: given each supervertex's chosen minimum edge as a pointer to
// its other endpoint, the pseudo-forest is collapsed by pointer jumping,
// and the resulting roots are relabelled to a dense range.
//
// All parallel phases are double-buffered (workers read one generation
// and write only their own indices of the next), so the package is free
// of data races by construction, not merely benign ones.
package cc

import (
	"pmsf/internal/par"
)

// Resolve runs the complete connect-components step on a chosen-neighbor
// array: break the 2-cycles that minimum-edge selection creates (when u
// and v select each other the smaller id becomes the root), pointer-jump
// every vertex to its root, and relabel roots densely. It returns dense
// component labels (labels[v] in [0,k)) and the component count k.
// parent is consumed as scratch and left in a jumped state.
func Resolve(p int, parent []int32) (labels []int32, k int) {
	n := len(parent)
	if n == 0 {
		return nil, 0
	}
	cur := parent
	next := make([]int32, n)

	// Round 0: break mutual pairs while performing the first jump.
	par.For(p, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			w := cur[v]
			if int(cur[w]) == v {
				// Mutual pair (or self-loop): smaller id becomes root.
				if int(w) >= v {
					next[v] = int32(v)
				} else {
					next[v] = w
				}
				continue
			}
			next[v] = cur[w]
		}
	})
	cur, next = next, cur

	// Jump rounds until a fixpoint: cur[v] == cur[cur[v]] everywhere.
	// Each round at least halves every vertex's distance to its root, so
	// legal inputs need at most ~log2(n) rounds; the cap turns a
	// violated precondition (a cycle longer than 2 in the pointer graph,
	// which find-min can never produce) into a loud failure.
	maxRounds := 2
	for x := n; x > 0; x >>= 1 {
		maxRounds++
	}
	rounds := 0
	for {
		if rounds++; rounds > maxRounds {
			panic("cc: pointer graph contains a cycle longer than 2 (invalid find-min input)")
		}
		changed := par.ReduceInt64(p, n, func(_, lo, hi int) int64 {
			var c int64
			for v := lo; v < hi; v++ {
				gp := cur[cur[v]]
				next[v] = gp
				if gp != cur[v] {
					c++
				}
			}
			return c
		})
		cur, next = next, cur
		if changed == 0 {
			break
		}
	}

	// Relabel roots densely.
	roots := par.PackIndices(p, n, func(i int) bool { return int(cur[i]) == i })
	k = len(roots)
	rootLabel := next // reuse the spare buffer
	par.For(p, k, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			rootLabel[roots[i]] = int32(i)
		}
	})
	labels = make([]int32, n)
	par.For(p, n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			labels[v] = rootLabel[cur[v]]
		}
	})
	return labels, k
}

// JumpRounds reports how many jump rounds Resolve would need for the
// given chosen-neighbor array without modifying it; exported for tests
// and the cost-model validation (pointer jumping is O(log n) rounds).
func JumpRounds(p int, parent []int32) int {
	cur := make([]int32, len(parent))
	copy(cur, parent)
	next := make([]int32, len(parent))
	par.For(p, len(cur), func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			w := cur[v]
			if int(cur[w]) == v {
				if int(w) >= v {
					next[v] = int32(v)
				} else {
					next[v] = w
				}
				continue
			}
			next[v] = cur[w]
		}
	})
	cur, next = next, cur
	rounds := 1
	for {
		changed := par.ReduceInt64(p, len(cur), func(_, lo, hi int) int64 {
			var c int64
			for v := lo; v < hi; v++ {
				gp := cur[cur[v]]
				next[v] = gp
				if gp != cur[v] {
					c++
				}
			}
			return c
		})
		cur, next = next, cur
		rounds++
		if changed == 0 {
			return rounds
		}
	}
}
