package cc

import (
	"fmt"
	"testing"
	"testing/quick"

	"pmsf/internal/rng"
	"pmsf/internal/uf"
)

// checkLabels validates that labels form a dense consistent labelling of
// the pseudo-forest's components: same component ⇔ same label, labels in
// [0, k).
func checkLabels(t *testing.T, parent0, labels []int32, k int) {
	t.Helper()
	n := len(parent0)
	// Reference partition via union-find over the v—parent0[v] pairs.
	u := uf.New(n)
	for v, p := range parent0 {
		u.Union(int32(v), p)
	}
	rep := map[int32]int32{} // component root -> label
	seen := make([]bool, k)
	for v := 0; v < n; v++ {
		if labels[v] < 0 || int(labels[v]) >= k {
			t.Fatalf("label[%d] = %d out of [0,%d)", v, labels[v], k)
		}
		seen[labels[v]] = true
		r := u.Find(int32(v))
		if want, ok := rep[r]; ok {
			if labels[v] != want {
				t.Fatalf("vertices of one component got labels %d and %d", want, labels[v])
			}
		} else {
			rep[r] = labels[v]
		}
	}
	if len(rep) != k {
		t.Fatalf("component count %d, k = %d", len(rep), k)
	}
	for l, s := range seen {
		if !s {
			t.Fatalf("label %d unused", l)
		}
	}
}

func TestResolveHandBuilt(t *testing.T) {
	cases := []struct {
		name   string
		parent []int32
		k      int
	}{
		{"empty", nil, 0},
		{"singleton", []int32{0}, 1},
		{"pair", []int32{1, 0}, 1},
		{"two-pairs", []int32{1, 0, 3, 2}, 2},
		{"chain", []int32{1, 2, 3, 3}, 1}, // 0->1->2->3, 3 self
		{"star", []int32{0, 0, 0, 0, 0}, 1},
		{"mutual-star", []int32{1, 0, 0, 0, 0}, 1},
		{"isolated", []int32{0, 1, 2}, 3},
		{"mixed", []int32{1, 0, 2, 4, 3, 3}, 3}, // pair {0,1}, singleton {2}, triple {3,4,5}
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, p := range []int{1, 4} {
				parent := append([]int32(nil), c.parent...)
				labels, k := Resolve(p, parent)
				if k != c.k {
					t.Fatalf("p=%d: k = %d, want %d", p, k, c.k)
				}
				checkLabels(t, c.parent, labels, k)
			}
		})
	}
}

// Random chosen-neighbor structures with the shape find-min actually
// produces: the pointer graph is a pseudo-forest whose only cycles are
// mutual pairs (both endpoints of a component's minimum edge select each
// other) or self-pointers (isolated vertices). Property: Resolve's labels
// must agree with the union-find partition of the pointer pairs.
func TestResolveProperty(t *testing.T) {
	r := rng.New(1)
	f := func(seed uint64) bool {
		n := 1 + int(seed%200)
		parent := make([]int32, n)
		for v := range parent {
			switch {
			case v == 0 || r.Intn(5) == 0:
				parent[v] = int32(v) // isolated / root
			default:
				parent[v] = int32(r.Intn(v)) // acyclic downward pointer
			}
		}
		// Convert some self-roots into mutual pairs with a predecessor.
		for v := 1; v < n; v++ {
			if parent[v] == int32(v) && r.Bool() {
				w := r.Intn(v)
				parent[v] = int32(w)
				parent[w] = int32(v)
				// w's old subtree pointers may now pass through the pair;
				// that is exactly the legal structure (one 2-cycle per
				// component).
			}
		}
		parent0 := append([]int32(nil), parent...)
		labels, k := Resolve(4, parent)
		// Inline the checks (can't t.Fatal inside quick).
		u := uf.New(n)
		for v, p := range parent0 {
			u.Union(int32(v), p)
		}
		rep := map[int32]int32{}
		for v := 0; v < n; v++ {
			if labels[v] < 0 || int(labels[v]) >= k {
				return false
			}
			root := u.Find(int32(v))
			if want, ok := rep[root]; ok && want != labels[v] {
				return false
			}
			rep[root] = labels[v]
		}
		return len(rep) == k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestResolveLongChain(t *testing.T) {
	// A single long path exercises the O(log n) jumping depth.
	const n = 1 << 15
	parent := make([]int32, n)
	for v := 1; v < n; v++ {
		parent[v] = int32(v - 1)
	}
	parent[0] = 1 // mutual pair at the head
	labels, k := Resolve(8, parent)
	if k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
	for v, l := range labels {
		if l != 0 {
			t.Fatalf("label[%d] = %d", v, l)
		}
	}
}

func TestJumpRoundsLogarithmic(t *testing.T) {
	for _, exp := range []int{8, 12, 16} {
		n := 1 << exp
		parent := make([]int32, n)
		for v := 1; v < n; v++ {
			parent[v] = int32(v - 1)
		}
		parent[0] = 1
		rounds := JumpRounds(4, parent)
		if rounds > exp+2 {
			t.Fatalf("n=2^%d: %d rounds, want <= %d", exp, rounds, exp+2)
		}
	}
}

func TestResolveDeterministicAcrossP(t *testing.T) {
	r := rng.New(2)
	const n = 5000
	base := make([]int32, n)
	for v := range base {
		if v == 0 || r.Intn(4) == 0 {
			base[v] = int32(v)
		} else {
			base[v] = int32(r.Intn(v))
		}
	}
	for v := 1; v < n; v++ {
		if base[v] == int32(v) && r.Bool() {
			w := r.Intn(v)
			base[v] = int32(w)
			base[w] = int32(v)
		}
	}
	var ref []int32
	for _, p := range []int{1, 2, 4, 8} {
		parent := append([]int32(nil), base...)
		labels, _ := Resolve(p, parent)
		if ref == nil {
			ref = labels
			continue
		}
		for v := range labels {
			if labels[v] != ref[v] {
				t.Fatalf("p=%d: labels differ from p=1 at %d", p, v)
			}
		}
	}
}

func TestResolveAllSelf(t *testing.T) {
	parent := []int32{0, 1, 2, 3, 4}
	labels, k := Resolve(2, parent)
	if k != 5 {
		t.Fatalf("k = %d", k)
	}
	for v, l := range labels {
		if int(l) != v {
			t.Fatalf("label[%d] = %d", v, l)
		}
	}
}

func ExampleResolve() {
	// Vertices 0 and 1 chose each other; 2 chose 1; 3 is isolated.
	parent := []int32{1, 0, 1, 3}
	labels, k := Resolve(1, parent)
	fmt.Println(k, labels)
	// Output: 2 [0 0 0 1]
}
