package cc

import (
	"pmsf/internal/par"
)

// Resolver is the reusable, team-based counterpart of Resolve. Its
// scratch buffers (the double-buffer spare, the dense label output, the
// per-worker counters) are grown on demand and reused, so after the
// first Borůvka round — the largest n a run will ever see — every
// Resolve call is allocation-free. The returned labels slice aliases
// the resolver's internal buffer and is valid until the next call.
type Resolver struct {
	p    int
	team *par.Team

	spare   []int32
	labels  []int32
	wcount  []int64 // per-worker root counts / scatter offsets
	changed []int64 // per-worker jump-round change counts

	// Per-call state read by the prebound worker bodies.
	cur, next []int32
	rootLabel []int32
	n         int

	breakBody       func(int)
	jumpBody        func(int)
	rootCountBody   func(int)
	rootScatterBody func(int)
	labelBody       func(int)
}

// NewResolver returns a resolver running its phases on team (of size p).
func NewResolver(p int, team *par.Team) *Resolver {
	r := &Resolver{
		p:       p,
		team:    team,
		wcount:  make([]int64, p),
		changed: make([]int64, p),
	}
	r.breakBody = r.breakWork
	r.jumpBody = r.jumpWork
	r.rootCountBody = r.rootCountWork
	r.rootScatterBody = r.rootScatterWork
	r.labelBody = r.labelWork
	return r
}

// Resolve performs the same connect-components step as the package-level
// Resolve — break mutual pairs, pointer-jump to fixpoint, relabel roots
// densely — but on the team and out of reused buffers. parent is
// consumed as scratch and left in a jumped state.
func (r *Resolver) Resolve(parent []int32) (labels []int32, k int) {
	n := len(parent)
	if n == 0 {
		return nil, 0
	}
	if cap(r.spare) < n {
		r.spare = make([]int32, n)
		r.labels = make([]int32, n)
	}
	r.n = n
	r.cur, r.next = parent, r.spare[:n]

	r.team.Run(r.breakBody)
	r.cur, r.next = r.next, r.cur

	maxRounds := 2
	for x := n; x > 0; x >>= 1 {
		maxRounds++
	}
	rounds := 0
	for {
		if rounds++; rounds > maxRounds {
			panic("cc: pointer graph contains a cycle longer than 2 (invalid find-min input)")
		}
		r.team.Run(r.jumpBody)
		r.cur, r.next = r.next, r.cur
		var changed int64
		for w := 0; w < r.p; w++ {
			changed += r.changed[w]
		}
		if changed == 0 {
			break
		}
	}

	// Dense root relabel: per-worker root counts, exclusive scan, then a
	// scatter into the spare buffer and a final gather through cur.
	r.team.Run(r.rootCountBody)
	var total int64
	for w := 0; w < r.p; w++ {
		v := r.wcount[w]
		r.wcount[w] = total
		total += v
	}
	k = int(total)
	r.rootLabel = r.next
	r.team.Run(r.rootScatterBody)
	r.team.Run(r.labelBody)
	return r.labels[:n], k
}

//msf:noalloc
func (r *Resolver) breakWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	cur, next := r.cur, r.next
	for v := lo; v < hi; v++ {
		t := cur[v]
		if int(cur[t]) == v {
			if int(t) >= v {
				next[v] = int32(v)
			} else {
				next[v] = t
			}
			continue
		}
		next[v] = cur[t]
	}
}

//msf:noalloc
func (r *Resolver) jumpWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	cur, next := r.cur, r.next
	var c int64
	for v := lo; v < hi; v++ {
		gp := cur[cur[v]]
		next[v] = gp
		if gp != cur[v] {
			c++
		}
	}
	r.changed[w] = c
}

//msf:noalloc
func (r *Resolver) rootCountWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	cur := r.cur
	var c int64
	for v := lo; v < hi; v++ {
		if int(cur[v]) == v {
			c++
		}
	}
	r.wcount[w] = c
}

//msf:noalloc
func (r *Resolver) rootScatterWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	cur, rootLabel := r.cur, r.rootLabel
	pos := r.wcount[w]
	for v := lo; v < hi; v++ {
		if int(cur[v]) == v {
			rootLabel[v] = int32(pos)
			pos++
		}
	}
}

//msf:noalloc
func (r *Resolver) labelWork(w int) {
	lo, hi := par.Block(r.n, r.p, w)
	cur, rootLabel, labels := r.cur, r.rootLabel, r.labels
	for v := lo; v < hi; v++ {
		labels[v] = rootLabel[cur[v]]
	}
}
