package filter

import (
	"fmt"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/verify"
)

func TestFilterProducesMSF(t *testing.T) {
	inputs := map[string]*graph.EdgeList{
		"empty":        {N: 0},
		"isolated":     {N: 5},
		"one-edge":     {N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 1}}},
		"random":       gen.Random(2000, 10000, 1),
		"dense":        gen.Random(500, 20000, 2),
		"disconnected": gen.Random(1500, 900, 3),
		"mesh":         gen.Mesh2D(30, 30, 4),
		"geometric":    gen.Geometric(600, 6, 5),
		"str0":         gen.Str0(256, 6),
	}
	for name, g := range inputs {
		for _, p := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/p=%d", name, p), func(t *testing.T) {
				f, _ := Run(g, Options{Workers: p, Seed: 42})
				if err := verify.Full(g, f); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestFilterWithTies(t *testing.T) {
	g := gen.Random(800, 6000, 7)
	for i := range g.Edges {
		g.Edges[i].W = float64(i % 4)
	}
	for seed := uint64(0); seed < 5; seed++ {
		f, _ := Run(g, Options{Workers: 4, Seed: seed})
		if err := verify.Full(g, f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// The KKT filter's point: the final phase sees O(n/p) expected edges, so
// on a dense input the survivor count must be far below m.
func TestFilterReducesDenseInput(t *testing.T) {
	g := gen.Random(1000, 50000, 8) // m/n = 50
	f, stats := Run(g, Options{Workers: 4, Seed: 1, Stats: true})
	if err := verify.Minimum(g, f); err != nil {
		t.Fatal(err)
	}
	if stats.FinalM >= stats.M/4 {
		t.Fatalf("filter kept %d of %d edges; expected a large reduction", stats.FinalM, stats.M)
	}
	// Expected survivors <= sampled (about m/2) forest part + ~n/p heavy
	// survivors; sanity bound at 4n.
	if stats.FinalM > 4*g.N {
		t.Fatalf("final %d edges exceeds 4n", stats.FinalM)
	}
	if stats.Sampled == 0 || stats.Discarded == 0 {
		t.Fatalf("stats incomplete: %+v", stats)
	}
	if stats.SampleMSF == nil || stats.FinalMSF == nil {
		t.Fatal("inner stats missing")
	}
}

func TestFilterSampleProbabilities(t *testing.T) {
	g := gen.Random(1000, 20000, 9)
	for _, prob := range []float64{0.1, 0.25, 0.5, 0.9} {
		f, stats := Run(g, Options{Workers: 2, Seed: 3, SampleP: prob, Stats: true})
		if err := verify.Minimum(g, f); err != nil {
			t.Fatalf("p=%g: %v", prob, err)
		}
		ratio := float64(stats.Sampled) / float64(stats.M)
		if ratio < prob-0.05 || ratio > prob+0.05 {
			t.Fatalf("p=%g: sampled fraction %.3f", prob, ratio)
		}
	}
	// Out-of-range probabilities default to 0.5.
	_, stats := Run(g, Options{Workers: 2, Seed: 3, SampleP: 7, Stats: true})
	if stats.SampleProb != 0.5 {
		t.Fatalf("prob defaulted to %g", stats.SampleProb)
	}
}

func TestFilterManySeeds(t *testing.T) {
	g := gen.Random(700, 5000, 10)
	for seed := uint64(0); seed < 10; seed++ {
		f, _ := Run(g, Options{Workers: 3, Seed: seed})
		if err := verify.Minimum(g, f); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestFilterRecursive(t *testing.T) {
	g := gen.Random(2000, 60000, 11) // dense enough to trigger recursion
	f, stats := Run(g, Options{
		Workers: 4, Seed: 2, Stats: true,
		MaxLevels: 3, RecurseBelow: 5000,
	})
	if err := verify.Full(g, f); err != nil {
		t.Fatal(err)
	}
	if stats.Levels < 2 {
		t.Fatalf("recursion did not engage: %d levels", stats.Levels)
	}
	// Single level must also still work and agree.
	f1, s1 := Run(g, Options{Workers: 4, Seed: 2})
	if s1.Levels != 1 {
		t.Fatalf("default levels = %d", s1.Levels)
	}
	if d := f.Weight - f1.Weight; d > 1e-9 || d < -1e-9 {
		t.Fatal("recursive and single-level filters disagree")
	}
}

func TestFilterRecursionDepthBounded(t *testing.T) {
	g := gen.Random(1500, 40000, 12)
	_, stats := Run(g, Options{Workers: 2, Seed: 1, Stats: true, MaxLevels: 2, RecurseBelow: 100})
	if stats.Levels > 2 {
		t.Fatalf("depth %d exceeds MaxLevels", stats.Levels)
	}
}
