// Package filter implements a sampling-based edge-elimination MSF
// algorithm — the direction the paper's Section 3 points to after
// observing (Table 1) that for m/n >= 2 more than half the edges are not
// in the MSF: "if we can exclude heavy edges in the early stages of the
// algorithm and decrease m, we may have a more efficient parallel
// implementation", citing the cycle-property algorithms of Cole, Klein &
// Tarjan and of Katriel, Sanders & Träff.
//
// The algorithm (a practical single-level instance of the KKT scheme):
//
//  1. Sample each edge independently with probability SampleP.
//  2. Compute the minimum spanning forest F' of the sample with Bor-FAL.
//  3. Discard every non-sampled edge that is F'-heavy (its weight is at
//     least the maximum weight on the F'-path between its endpoints —
//     the cycle property guarantees such edges are not in any MSF).
//     Heaviness is decided with the binary-lifting path-max index,
//     queried in parallel.
//  4. Compute the final MSF of the surviving edges (the sample's forest
//     edges plus the non-heavy remainder) with Bor-FAL.
//
// By the KKT sampling lemma the expected number of survivors in step 3
// is at most n/SampleP, so the final phase runs on a graph of expected
// size O(n) regardless of the input density.
package filter

import (
	"fmt"

	"pmsf/internal/boruvka"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/pathmax"
	"pmsf/internal/rng"
)

// Options configures a filtered MSF run.
type Options struct {
	// Workers is the parallelism; 0 means GOMAXPROCS.
	Workers int
	// SampleP is the edge sampling probability; 0 means 0.5.
	SampleP float64
	// Seed drives the sampling and the inner Bor-FAL runs.
	Seed uint64
	// Stats enables instrumentation.
	Stats bool
	// MaxLevels bounds the filtering recursion: the sample's MSF is
	// itself computed with the filter while the sample still has more
	// than RecurseBelow edges and the depth budget lasts (the full
	// Karger-Klein-Tarjan recursion instead of a single level). 0 means
	// one level, the practical default.
	MaxLevels int
	// RecurseBelow is the sample size under which recursion stops and
	// Bor-FAL solves directly; 0 means 1<<16.
	RecurseBelow int
	// Trace, when non-nil, receives hierarchical spans for every filter
	// stage and the inner Bor-FAL runs.
	Trace *obs.Collector
	// Parent, when live, nests the run's spans under an enclosing span;
	// it implies the parent's collector and overrides Trace.
	Parent obs.Span
}

// Stats instruments a filtered run.
type Stats struct {
	M          int // input edges
	Sampled    int // edges in the sample
	Discarded  int // non-sample edges eliminated as F'-heavy
	FinalM     int // edges entering the final MSF computation
	Levels     int // recursion depth actually used (1 = single level)
	SampleMSF  *boruvka.Stats
	FinalMSF   *boruvka.Stats
	SampleProb float64
}

// Run computes the minimum spanning forest of g with the sampling
// filter.
func Run(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	p := opt.Workers
	if p <= 0 {
		p = par.DefaultWorkers()
	}
	prob := opt.SampleP
	if prob <= 0 || prob >= 1 {
		prob = 0.5
	}
	stats := &Stats{M: len(g.Edges), SampleProb: prob}

	c := opt.Trace
	if opt.Parent.Live() {
		c = opt.Parent.Collector()
	}
	const name = "Filter"
	root := obs.StartUnder(c, opt.Parent, name, name)
	root.SetInt("workers", int64(p))
	root.SetInt("m", int64(len(g.Edges)))
	defer root.End()

	m := len(g.Edges)
	if m == 0 {
		f, _ := boruvka.FAL(g, boruvka.Options{Workers: p, Seed: opt.Seed, Parent: root})
		return f, stats
	}

	// Step 1: sample. Per-worker split RNG streams keep this
	// deterministic for a fixed worker count; the RESULT (the MSF) is
	// correct for any sample, so p only influences which sample is used.
	sampleSpan := root.Child("sample")
	inSample := make([]bool, m)
	var sampleIDs []int32
	var sample *graph.EdgeList
	c.Labeled(name, "sample", func() {
		base := rng.New(opt.Seed)
		streams := make([]*rng.Xoshiro256, par.Clamp(p, m))
		for i := range streams {
			streams[i] = base.Split()
		}
		par.For(len(streams), m, func(w, lo, hi int) {
			r := streams[w]
			for i := lo; i < hi; i++ {
				inSample[i] = r.Float64() < prob
			}
		})

		sampleIDs = par.PackIndices(p, m, func(i int) bool { return inSample[i] })
		stats.Sampled = len(sampleIDs)
		sample = &graph.EdgeList{N: g.N, Edges: make([]graph.Edge, len(sampleIDs))}
		par.For(p, len(sampleIDs), func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				sample.Edges[i] = g.Edges[sampleIDs[i]]
			}
		})
	})
	sampleSpan.SetInt("sampled", int64(len(sampleIDs)))
	sampleSpan.End()

	// Step 2: MSF of the sample — recursively through the filter while
	// the sample is large and the depth budget lasts (full KKT), else
	// directly with Bor-FAL.
	recurseBelow := opt.RecurseBelow
	if recurseBelow <= 0 {
		recurseBelow = 1 << 16
	}
	stats.Levels = 1
	var sf *graph.Forest
	sampleMSF := root.Child("sample-msf")
	if opt.MaxLevels > 1 && len(sample.Edges) > recurseBelow {
		childOpt := opt
		childOpt.MaxLevels = opt.MaxLevels - 1
		childOpt.Seed = opt.Seed + 0x9e37
		childOpt.Parent = sampleMSF
		var childStats *Stats
		sf, childStats = Run(sample, childOpt)
		stats.Levels = childStats.Levels + 1
		if opt.Stats {
			stats.SampleMSF = childStats.SampleMSF
		}
	} else {
		var sfStats *boruvka.Stats
		sf, sfStats = boruvka.FAL(sample, boruvka.Options{Workers: p, Seed: opt.Seed, Stats: opt.Stats, Parent: sampleMSF})
		if opt.Stats {
			stats.SampleMSF = sfStats
		}
	}
	sampleMSF.End()
	// Map the sample forest's local ids back to input ids.
	forestIDs := make([]int32, len(sf.EdgeIDs))
	for i, local := range sf.EdgeIDs {
		forestIDs[i] = sampleIDs[local]
	}

	// Step 3: eliminate F'-heavy non-sample edges with parallel path-max
	// queries. Edges joining different F' trees are always kept.
	filterSpan := root.Child("filter")
	keep := make([]bool, m)
	c.Labeled(name, "filter", func() {
		idx, err := pathmax.Build(g, forestIDs)
		if err != nil {
			// forestIDs come from an engine-produced sample MSF; a
			// non-forest here is a library bug, not an input condition.
			panic(fmt.Sprintf("filter: sample MSF is not a forest: %v", err))
		}
		for _, id := range forestIDs {
			keep[id] = true
		}
		par.For(p, m, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				if inSample[i] || keep[i] {
					continue // sampled non-forest edges are F'-heavy by definition of F'... see note below
				}
				e := g.Edges[i]
				if e.U == e.V {
					continue
				}
				hm := idx.Query(e.U, e.V)
				// Keep the edge unless it is F'-heavy under the perturbed
				// total order (W, id) — the same order every tie-break in the
				// library uses, which keeps duplicate weights safe.
				if hm < 0 || e.W < g.Edges[hm].W ||
					(e.W == g.Edges[hm].W && int32(i) < hm) {
					keep[i] = true
				}
			}
		})
	})
	// Note: sampled edges NOT in F' are F'-heavy by the correctness of
	// the sample MSF (they close a cycle within the sample in which they
	// are maximal), so they can be discarded outright — this is the core
	// saving of the KKT filter.

	keptIDs := par.PackIndices(p, m, func(i int) bool { return keep[i] })
	stats.Discarded = m - len(keptIDs)
	stats.FinalM = len(keptIDs)
	filterSpan.SetInt("discarded", int64(stats.Discarded))
	filterSpan.End()
	if stats.Discarded > 0 && obs.MetricsOn() {
		obs.EdgesRetired.Add(int64(stats.Discarded))
	}

	// Step 4: final MSF over the survivors.
	finalMSF := root.Child("final-msf")
	final := &graph.EdgeList{N: g.N, Edges: make([]graph.Edge, len(keptIDs))}
	par.For(p, len(keptIDs), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			final.Edges[i] = g.Edges[keptIDs[i]]
		}
	})
	ff, ffStats := boruvka.FAL(final, boruvka.Options{Workers: p, Seed: opt.Seed + 1, Stats: opt.Stats, Parent: finalMSF})
	finalMSF.End()
	if opt.Stats {
		stats.FinalMSF = ffStats
	}
	out := &graph.Forest{Components: ff.Components, Weight: ff.Weight}
	out.EdgeIDs = make([]int32, len(ff.EdgeIDs))
	for i, local := range ff.EdgeIDs {
		out.EdgeIDs[i] = keptIDs[local]
	}
	return out, stats
}
