package model

import (
	"testing"
	"testing/quick"
)

func params(n, m, p float64) Params { return Params{N: n, M: m, P: p} }

// The paper's Section 3 conclusion: Bor-AL's first iteration is cheaper
// than Bor-EL's (the "bucketing" saves comparisons between edges with no
// common vertex). The model must reproduce this for every sparse regime.
func TestALBeatsELFirstIteration(t *testing.T) {
	for _, n := range []float64{1e4, 1e5, 1e6} {
		for _, ratio := range []float64{2, 4, 6, 10, 20} {
			for _, p := range []float64{1, 2, 4, 8} {
				pr := params(n, ratio*n, p)
				al, el := BorALFirstIter(pr), BorELFirstIter(pr)
				if al.ME >= el.ME {
					t.Errorf("n=%g m/n=%g p=%g: ME(AL)=%g >= ME(EL)=%g",
						n, ratio, p, al.ME, el.ME)
				}
			}
		}
	}
}

// Eq. 7/8: Bor-FAL's total cost beats Bor-EL's total (Eq. 4) on sparse
// graphs — the compact-graph step no longer pays per-edge sorting each
// iteration.
func TestFALBeatsELTotal(t *testing.T) {
	for _, n := range []float64{1e4, 1e6} {
		for _, ratio := range []float64{4, 6, 10, 20} {
			pr := params(n, ratio*n, 8)
			fal, el := BorFAL(pr), BorEL(pr)
			if fal.ME >= el.ME {
				t.Errorf("n=%g m/n=%g: ME(FAL)=%g >= ME(EL)=%g", n, ratio, fal.ME, el.ME)
			}
			if fal.TC >= el.TC {
				t.Errorf("n=%g m/n=%g: TC(FAL)=%g >= TC(EL)=%g", n, ratio, fal.TC, el.TC)
			}
		}
	}
}

// Costs scale down with p (the model's 1/p work terms).
func TestMonotoneInP(t *testing.T) {
	forms := map[string]func(Params) Cost{
		"FindMinConnect": FindMinConnect,
		"CompactEL":      CompactEL,
		"BorEL":          BorEL,
		"BorALFirstIter": BorALFirstIter,
		"BorELFirstIter": BorELFirstIter,
		"FALCompact":     FALCompact,
		"BorFAL":         BorFAL,
	}
	for name, f := range forms {
		prev := f(params(1e5, 6e5, 1))
		for _, p := range []float64{2, 4, 8, 16} {
			cur := f(params(1e5, 6e5, p))
			if cur.ME >= prev.ME || cur.TC > prev.TC {
				t.Errorf("%s: cost did not decrease from p/2 to p=%g", name, p)
			}
			prev = cur
		}
	}
}

// Costs grow with problem size.
func TestMonotoneInSize(t *testing.T) {
	small := BorEL(params(1e4, 6e4, 8))
	big := BorEL(params(1e6, 6e6, 8))
	if big.ME <= small.ME || big.TC <= small.TC {
		t.Error("BorEL cost not increasing in size")
	}
}

func TestSampleSortPositive(t *testing.T) {
	f := func(raw uint32) bool {
		l := float64(raw%1_000_000) + 2
		c := SampleSort(l, params(1e5, 6e5, 4))
		return c.ME > 0 && c.TC > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaults(t *testing.T) {
	// Zero machine constants and p are defaulted, not divide-by-zero.
	c := BorEL(Params{N: 1000, M: 6000})
	if c.ME <= 0 || c.TC <= 0 {
		t.Fatalf("defaulted params produced %+v", c)
	}
}

func TestAdd(t *testing.T) {
	got := Cost{1, 2}.Add(Cost{10, 20})
	if got != (Cost{11, 22}) {
		t.Fatalf("Add = %+v", got)
	}
}

func TestPredictedIterations(t *testing.T) {
	cases := []struct{ n, want int }{
		{0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {1024, 10}, {1025, 11},
	}
	for _, c := range cases {
		if got := PredictedIterations(c.n); got != c.want {
			t.Errorf("PredictedIterations(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}
