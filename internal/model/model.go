// Package model implements the Helman–JáJá SMP complexity model analysis
// of Section 3 of the paper. Under the model an algorithm's cost is the
// pair T(n,p) = <ME ; TC>, where ME counts non-contiguous memory accesses
// (the dominant cost on SMPs) and TC is computation time. The package
// evaluates the paper's closed forms (Equations 1-8) so the experiment
// harness can put predicted and measured behaviour side by side, and so
// tests can check the paper's analytical claims (e.g. Bor-AL's first
// iteration is cheaper than Bor-EL's, Eq. 5 vs Eq. 6).
package model

import "math"

// Cost is one <ME ; TC> pair. Both components are expressed in abstract
// units (memory accesses and operations); only ratios between algorithms
// are meaningful.
type Cost struct {
	ME float64 // non-contiguous memory accesses
	TC float64 // computation
}

// Add returns the componentwise sum.
func (c Cost) Add(o Cost) Cost { return Cost{c.ME + o.ME, c.TC + o.TC} }

// Params are the model parameters: problem size, processors, and the two
// machine constants of the sample-sort analysis (Eq. 2): c relates cache
// line transfers to accesses and z is the sampling ratio base.
type Params struct {
	N, M float64 // vertices, undirected edges
	P    float64 // processors
	C    float64 // cache constant c (paper: machine dependent; default 1)
	Z    float64 // sampling base z  (paper: related to sampling ratio; default 2)
}

// Defaults fills in the machine constants when unset.
func (pr Params) defaults() Params {
	if pr.C == 0 {
		pr.C = 1
	}
	if pr.Z < 2 {
		pr.Z = 2
	}
	if pr.P < 1 {
		pr.P = 1
	}
	return pr
}

func log2(x float64) float64 {
	if x < 2 {
		return 1
	}
	return math.Log2(x)
}

// FindMinConnect is Eq. 1: the aggregate find-min + connect-components
// cost of one Bor-EL iteration,
// <(n + n log n)/p ; O((m + n log n)/p)>.
func FindMinConnect(pr Params) Cost {
	pr = pr.defaults()
	return Cost{
		ME: (pr.N + pr.N*log2(pr.N)) / pr.P,
		TC: (pr.M + pr.N*log2(pr.N)) / pr.P,
	}
}

// SampleSort is Eq. 2: the parallel sample sort of a list of length l,
// <(4 + 2c·log(l/p)/log z)·l/p ; O((l/p)·log l)>.
func SampleSort(l float64, pr Params) Cost {
	pr = pr.defaults()
	return Cost{
		ME: (4 + 2*pr.C*log2(l/pr.P)/log2(pr.Z)) * l / pr.P,
		TC: l / pr.P * log2(l),
	}
}

// CompactEL is Eq. 3: the Bor-EL compact-graph cost for an iteration,
// the sample sort of the 2m-long edge list plus data-structure work.
func CompactEL(pr Params) Cost {
	pr = pr.defaults()
	return SampleSort(2*pr.M, pr)
}

// BorEL is Eq. 4: total Bor-EL cost over log n iterations with m held at
// its initial value (the paper's justified upper bound; see Table 1),
// <(8m + n + n log n)/p + 4mc·log(2m/p)/(p log z))·log n ; O((m/p)·log m·log n)>.
func BorEL(pr Params) Cost {
	pr = pr.defaults()
	iters := log2(pr.N)
	return Cost{
		ME: ((8*pr.M+pr.N+pr.N*log2(pr.N))/pr.P +
			4*pr.M*pr.C*log2(2*pr.M/pr.P)/(pr.P*log2(pr.Z))) * iters,
		TC: pr.M / pr.P * log2(pr.M) * iters,
	}
}

// BorALFirstIter is Eq. 5: the first-iteration cost of Bor-AL,
// <(8n + 5m + n log n)/p + (2nc·log(n/p) + 2mc·log(m/n))/(p log z) ;
//
//	O((n/p)·log m + (m/p)·log(m/n))>.
func BorALFirstIter(pr Params) Cost {
	pr = pr.defaults()
	mn := pr.M / pr.N
	if mn < 2 {
		mn = 2
	}
	return Cost{
		ME: (8*pr.N+5*pr.M+pr.N*log2(pr.N))/pr.P +
			(2*pr.N*pr.C*log2(pr.N/pr.P)+2*pr.M*pr.C*log2(mn))/(pr.P*log2(pr.Z)),
		TC: pr.N/pr.P*log2(pr.M) + pr.M/pr.P*log2(mn),
	}
}

// BorELFirstIter is Eq. 6: the first-iteration cost of Bor-EL,
// <(8m + n + n log n)/p + 4mc·log(2m/p)/(p log z) ; O((m/p)·log m)>.
func BorELFirstIter(pr Params) Cost {
	pr = pr.defaults()
	return Cost{
		ME: (8*pr.M+pr.N+pr.N*log2(pr.N))/pr.P +
			4*pr.M*pr.C*log2(2*pr.M/pr.P)/(pr.P*log2(pr.Z)),
		TC: pr.M / pr.P * log2(pr.M),
	}
}

// FALCompact is Eq. 7: the aggregate Bor-FAL compact-graph cost across
// all iterations, TC = O((n log n)/p) and ME <= 8n/p + 4cn·log(n/p)/(p log z).
func FALCompact(pr Params) Cost {
	pr = pr.defaults()
	return Cost{
		ME: 8*pr.N/pr.P + 4*pr.C*pr.N*log2(pr.N/pr.P)/(pr.P*log2(pr.Z)),
		TC: pr.N * log2(pr.N) / pr.P,
	}
}

// BorFAL is Eq. 8: the total Bor-FAL cost,
// <(8n + 2n log n + m log n)/p + 4cn·log(n/p)/(p log z) ; O((m+n)/p·log n)>.
func BorFAL(pr Params) Cost {
	pr = pr.defaults()
	return Cost{
		ME: (8*pr.N+2*pr.N*log2(pr.N)+pr.M*log2(pr.N))/pr.P +
			4*pr.C*pr.N*log2(pr.N/pr.P)/(pr.P*log2(pr.Z)),
		TC: (pr.M + pr.N) / pr.P * log2(pr.N),
	}
}

// PredictedIterations returns the model's iteration bound for Borůvka:
// the vertex count at least halves every iteration, so ceil(log2 n).
func PredictedIterations(n int) int {
	if n <= 1 {
		return 0
	}
	return int(math.Ceil(math.Log2(float64(n))))
}
