package dynmsf

import (
	"fmt"
	"sync"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/rng"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

// weightMode parameterizes the differential matrix: the adversarial
// weight distributions that stress the perturbed (W, id) tie-breaking.
type weightMode struct {
	name string
	draw func(r *rng.Xoshiro256) float64
}

var weightModes = []weightMode{
	{"uniform", func(r *rng.Xoshiro256) float64 { return r.Float64() }},
	{"duplicates", func(r *rng.Xoshiro256) float64 { return float64(r.Intn(4)) }},
	{"all-equal", func(r *rng.Xoshiro256) float64 { return 1.0 }},
	{"negative", func(r *rng.Xoshiro256) float64 { return r.Float64()*4 - 3 }},
}

// TestRandomDifferential replays random mutation batches through a
// handle and checks after every batch that the maintained forest is the
// exact MSF of the live graph (verify.Minimum recomputes a reference
// Kruskal), across the weight matrix and across handle configurations
// that force the incremental path and the fallback path respectively.
func TestRandomDifferential(t *testing.T) {
	configs := []struct {
		name string
		opt  Options
	}{
		{"incremental", Options{}},
		{"forced-fallback", Options{CutoffFrac: 1e-9, RebuildLimit: 1}},
	}
	for _, wm := range weightModes {
		for _, cfg := range configs {
			t.Run(wm.name+"/"+cfg.name, func(t *testing.T) {
				runDifferential(t, wm, cfg.opt, 0xD0+uint64(len(wm.name)))
			})
		}
	}
}

func runDifferential(t *testing.T, wm weightMode, opt Options, seed uint64) {
	t.Helper()
	const (
		n       = 60
		baseM   = 150
		batches = 30
	)
	r := rng.New(seed)
	base := &graph.EdgeList{N: n}
	for i := 0; i < baseM; i++ {
		base.Edges = append(base.Edges, randomTestEdge(n, r, wm.draw))
	}
	h, err := New(base, seq.Kruskal(base), opt)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]graph.Edge(nil), base.Edges...)

	for b := 0; b < batches; b++ {
		var add, del []graph.Edge
		// Heavy-deletion batches periodically force disconnections; the
		// following batch's adds tend to reconnect.
		delWant := r.Intn(20)
		if b%7 == 3 {
			delWant = len(live) / 2
		}
		for i := 0; i < delWant && len(live) > 0; i++ {
			j := r.Intn(len(live))
			del = append(del, live[j])
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		addWant := r.Intn(25)
		if b%7 == 4 {
			addWant = 80 // reconnection burst
		}
		for i := 0; i < addWant; i++ {
			e := randomTestEdge(n, r, wm.draw)
			if i%9 == 5 {
				e.U = e.V // exercise self-loops
			}
			add = append(add, e)
			live = append(live, e)
		}

		d, err := h.ApplyEdges(add, del)
		if err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
		g, f := h.SnapshotWithForest()
		if len(g.Edges) != len(live) {
			t.Fatalf("batch %d: snapshot has %d edges, reference has %d", b, len(g.Edges), len(live))
		}
		if !sameMultiset(g.Edges, live) {
			t.Fatalf("batch %d: snapshot edge multiset diverged from reference", b)
		}
		if err := verify.Minimum(g, f); err != nil {
			t.Fatalf("batch %d (%s): %v\ndelta %+v", b, wm.name, err, d)
		}
		if d.Components != f.Components {
			t.Fatalf("batch %d: delta components %d, forest reports %d", b, d.Components, f.Components)
		}
	}
}

func randomTestEdge(n int, r *rng.Xoshiro256, draw func(*rng.Xoshiro256) float64) graph.Edge {
	u := int32(r.Intn(n))
	v := int32(r.Intn(n - 1))
	if v >= u {
		v++
	}
	return graph.Edge{U: u, V: v, W: draw(r)}
}

// sameMultiset compares edge multisets up to orientation: deletion by
// value is orientation-insensitive (the graph is undirected), so the
// handle may consume a (v,u,w) copy where the reference removed (u,v,w).
func sameMultiset(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	canon := func(e graph.Edge) graph.Edge {
		if e.U > e.V {
			e.U, e.V = e.V, e.U
		}
		return e
	}
	count := make(map[graph.Edge]int, len(a))
	for _, e := range a {
		count[canon(e)]++
	}
	for _, e := range b {
		ce := canon(e)
		count[ce]--
		if count[ce] < 0 {
			return false
		}
	}
	return true
}

// TestReplayAgainstScratchRecompute drives a generated sliding-window
// stream through a handle and cross-checks the weight against a
// from-scratch sequential Kruskal after every batch — the same contract
// msf-verify -replay enforces.
func TestReplayAgainstScratchRecompute(t *testing.T) {
	base := gen.Random(300, 1200, 17)
	stream := gen.SlidingWindowStream(base, 600, len(base.Edges), 120, 99)
	h, err := New(base, seq.Kruskal(base), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range stream.Batches {
		if _, err := h.ApplyEdges(b.Add, b.Del); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		g, f := h.SnapshotWithForest()
		ref := seq.Kruskal(g)
		if diff := f.Weight - ref.Weight; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("batch %d: dynamic weight %.12g vs scratch %.12g", i, f.Weight, ref.Weight)
		}
		if f.Components != ref.Components {
			t.Fatalf("batch %d: components %d vs %d", i, f.Components, ref.Components)
		}
	}
}

// TestConcurrentReaders hammers the handle with queries while a writer
// applies batches. Queries block on the handle's read lock during
// ApplyEdges (the documented semantics), so under -race this must be
// clean, and every observed snapshot must be internally consistent.
func TestConcurrentReaders(t *testing.T) {
	base := gen.Random(120, 500, 5)
	h, err := New(base, seq.Kruskal(base), Options{})
	if err != nil {
		t.Fatal(err)
	}
	stream := gen.SlidingWindowStream(base, 400, len(base.Edges), 40, 6)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				g, f := h.SnapshotWithForest()
				if err := verify.Forest(g, f); err != nil {
					select {
					case errc <- fmt.Errorf("inconsistent snapshot: %w", err):
					default:
					}
					return
				}
				st := h.Stats()
				if ff := h.Forest(); len(ff.EdgeIDs) != st.ForestSize {
					select {
					case errc <- fmt.Errorf("forest size %d vs stats %d", len(ff.EdgeIDs), st.ForestSize):
					default:
					}
					return
				}
			}
		}()
	}
	for i, b := range stream.Batches {
		if _, err := h.ApplyEdges(b.Add, b.Del); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}
	checkMinimum(t, h)
}
