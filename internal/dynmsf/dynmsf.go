// Package dynmsf maintains the minimum spanning forest of a graph under
// batches of edge insertions and deletions, without recomputing from
// scratch on every change.
//
// The handle keeps three structures in sync:
//
//   - an append-only edge store with tombstones (the live graph),
//   - the forest itself, as an adjacency list over tree edges, and
//   - an incrementally maintained pathmax.Index: the binary-lifting
//     path-maximum structure promoted from a one-shot verification
//     oracle to a runtime structure with per-tree dirty tracking and
//     region rebuilds.
//
// Insertions use the cycle rule: a new edge (u,v,w) joins the forest
// iff it beats the maximum-weight edge on the current tree path between
// u and v under the library's perturbed total order (W, id); the beaten
// edge drops back into the non-tree pool. Deletions of tree edges run a
// replacement-edge search: the affected trees are re-fragmented with a
// BFS, candidate non-tree edges are gathered from the smaller fragments'
// incidence pools, sorted by (W, id), and a scoped Kruskal over the
// fragment graph promotes the lightest reconnectors.
//
// When a batch invalidates more than Options.CutoffFrac of a tree
// (counted upfront per tree), or keeps forcing index rebuilds through
// repeated swaps, the handle gives up on per-edge maintenance for that
// tree and recomputes it with one scoped sequential Kruskal over the
// tree's current edges plus the buffered insertions — correct because
// under the cycle property every old non-tree edge stays beaten by the
// tree path it closes.
package dynmsf

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/pathmax"
	"pmsf/internal/seq"
)

// Options configures a dynamic-MSF handle.
type Options struct {
	// CutoffFrac is the fraction of a tree's vertex count that a single
	// batch's intra-tree insertions may reach before the tree is handed
	// to the scoped-recompute fallback instead of per-edge cycle-rule
	// maintenance. 0 means 0.25.
	CutoffFrac float64
	// RebuildLimit bounds how many times one batch may rebuild a single
	// tree's path-max rows because of insertion swaps; past it the tree
	// falls back to the scoped recompute. Each rebuild is O(tree), so on
	// swap-heavy streams a low limit trades per-swap index maintenance
	// for one batched Kruskal over the tree. 0 means 1.
	RebuildLimit int
	// Trace, when non-nil, receives one span per ApplyEdges batch with
	// children for the delete/repair/insert/fallback phases.
	Trace *obs.Collector
}

const (
	defaultCutoffFrac   = 0.25
	defaultRebuildLimit = 1

	// walksPerRebuild scales the rebuild-on-threshold rule for dirty
	// trees: once the batch-local QueryWalk count times this factor
	// reaches the tree size, one O(tree) rebuild pays for itself
	// against the O(depth) walks it replaces.
	walksPerRebuild = 32

	// compactMinDead is the tombstone count below which the store is
	// never compacted, so small graphs don't churn.
	compactMinDead = 4096
)

// ErrBroken is wrapped by every error returned after an internal
// invariant failure has left the handle unusable.
var ErrBroken = errors.New("dynmsf: handle is broken by an earlier internal error")

// Delta reports what one ApplyEdges batch did to the forest.
type Delta struct {
	Added   int // edge insertions applied
	Deleted int // edge deletions applied

	Links        int // insertions that joined two trees
	Swaps        int // insertions that displaced a heavier tree edge (cycle rule)
	Replacements int // non-tree edges promoted by the deletion repair
	Splits       int // net new components left by deletions after repair

	Rebuilds           int // incremental path-max region rebuilds
	FallbackRecomputes int // trees recomputed with the scoped Kruskal

	Weight     float64 // forest weight after the batch
	ForestSize int     // forest edges after the batch
	Components int     // components (incl. isolated vertices) after the batch
}

// Stats is a point-in-time view of the handle, for observability.
type Stats struct {
	N          int
	LiveEdges  int
	DeadEdges  int
	StoreEdges int
	Trees      int
	ForestSize int
	Weight     float64
}

// Handle is a dynamic minimum-spanning-forest maintainer. All methods
// are safe for concurrent use: ApplyEdges takes the write lock, queries
// (Forest, SnapshotWithForest, Stats) take the read lock and therefore
// block — rather than race — while a batch is being applied.
type Handle struct {
	mu  sync.RWMutex
	opt Options

	// broken, once set, poisons the handle: an internal invariant broke
	// mid-batch and the structures may be inconsistent.
	broken error

	live       *graph.EdgeList // the store: N plus every edge ever added
	alive      []bool          // tombstones; false = deleted
	inForest   []bool
	dead       int
	weight     float64
	forestSize int
	trees      int

	// fadj is the forest adjacency (tree edges only); nadj the non-tree
	// incidence pools, with lazy deletion: entries are validated on scan
	// (alive and not currently in the forest) and compacted when their
	// vertex is swept by a repair.
	fadj [][]pathmax.Arc
	nadj [][]pathmax.Arc

	idx       *pathmax.Index
	treeVerts map[int32][]int32 // tree root -> member vertices, root first
	// dirty marks trees whose level-0 path-max rows (parent + parent
	// edge) are exact but whose depth and lifted rows are stale:
	// queries must go through QueryWalk until the next rebuild.
	dirty map[int32]bool

	// Scratch for repairs and scoped recomputes, epoch-stamped so
	// clearing is O(1).
	frag      []int32
	fragStamp []int32
	fragEpoch int32
	seenEdge  []int32
	seenEpoch int32
}

// New builds a handle for g, seeded with an already computed minimum
// spanning forest of g (ids into g.Edges). The edge list is copied; the
// caller's graph is never mutated. Returns an error if g is invalid or
// initial is not a forest of g.
func New(g *graph.EdgeList, initial *graph.Forest, opt Options) (*Handle, error) {
	if g == nil || initial == nil {
		return nil, errors.New("dynmsf: nil graph or forest")
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("dynmsf: %w", err)
	}
	if opt.CutoffFrac <= 0 || opt.CutoffFrac > 1 {
		opt.CutoffFrac = defaultCutoffFrac
	}
	if opt.RebuildLimit <= 0 {
		opt.RebuildLimit = defaultRebuildLimit
	}
	h := &Handle{opt: opt}
	edges := make([]graph.Edge, len(g.Edges))
	copy(edges, g.Edges)
	ids := make([]int32, len(initial.EdgeIDs))
	copy(ids, initial.EdgeIDs)
	if err := h.init(g.N, edges, ids); err != nil {
		return nil, err
	}
	return h, nil
}

// init (re)builds every derived structure from a live-only edge store.
// Used by New and by compaction.
func (h *Handle) init(n int, edges []graph.Edge, forestIDs []int32) error {
	live := &graph.EdgeList{N: n, Edges: edges}
	idx, err := pathmax.Build(live, forestIDs)
	if err != nil {
		return fmt.Errorf("dynmsf: %w", err)
	}
	h.live = live
	h.idx = idx
	m := len(edges)
	h.alive = make([]bool, m)
	for i := range h.alive {
		h.alive[i] = true
	}
	h.inForest = make([]bool, m)
	h.dead = 0
	h.fadj = make([][]pathmax.Arc, n)
	h.nadj = make([][]pathmax.Arc, n)
	h.weight = 0
	h.forestSize = len(forestIDs)
	for _, id := range forestIDs {
		e := edges[id]
		h.inForest[id] = true
		h.fadj[e.U] = append(h.fadj[e.U], pathmax.Arc{To: e.V, EID: id})
		h.fadj[e.V] = append(h.fadj[e.V], pathmax.Arc{To: e.U, EID: id})
		h.weight += e.W
	}
	for id, e := range edges {
		if h.inForest[id] {
			continue
		}
		h.nadj[e.U] = append(h.nadj[e.U], pathmax.Arc{To: e.V, EID: int32(id)})
		if e.U != e.V {
			h.nadj[e.V] = append(h.nadj[e.V], pathmax.Arc{To: e.U, EID: int32(id)})
		}
	}
	// Vertices are scanned in ascending order and every tree's root is
	// its smallest member, so each tree's root lands first in its list —
	// the invariant region rebuilds rely on.
	h.treeVerts = make(map[int32][]int32)
	for v := 0; v < n; v++ {
		root := idx.Comp(int32(v))
		h.treeVerts[root] = append(h.treeVerts[root], int32(v))
	}
	h.trees = len(h.treeVerts)
	h.dirty = make(map[int32]bool)
	h.frag = make([]int32, n)
	h.fragStamp = make([]int32, n)
	h.fragEpoch = 0
	h.seenEdge = make([]int32, m)
	h.seenEpoch = 0
	return nil
}

// N returns the (fixed) vertex count.
func (h *Handle) N() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.live.N
}

// ApplyEdges applies one batch: del edges are removed, add edges are
// inserted, and the maintained forest is updated to the exact minimum
// spanning forest (under the perturbed order (W, id)) of the mutated
// graph. Batches are atomic: the batch is validated upfront and on any
// validation error nothing is mutated.
//
// Deletions identify edges by value — endpoints in either orientation
// plus exact weight — against the edges live BEFORE the batch; deleting
// an edge added by the same batch is an error. When several live edges
// share the same value, each matching deletion consumes one of them.
func (h *Handle) ApplyEdges(add, del []graph.Edge) (Delta, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.broken != nil {
		return Delta{}, h.broken
	}
	n := h.live.N
	for i, e := range add {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return Delta{}, fmt.Errorf("dynmsf: add %d: vertex out of range [0,%d)", i, n)
		}
		if math.IsNaN(e.W) {
			return Delta{}, fmt.Errorf("dynmsf: add %d: NaN weight", i)
		}
	}
	delIDs, err := h.resolveDeletions(del)
	if err != nil {
		return Delta{}, err
	}
	if len(h.live.Edges)+len(add) > math.MaxInt32 {
		return Delta{}, errors.New("dynmsf: edge store would exceed int32 ids")
	}

	span := h.opt.Trace.Start("apply-batch", "dynmsf")
	span.SetInt("adds", int64(len(add))).SetInt("dels", int64(len(del)))
	defer span.End()
	metricsOn := obs.MetricsOn()
	if metricsOn {
		obs.DynAppliedEdges.Add(int64(len(add) + len(del)))
	}

	d := Delta{Added: len(add), Deleted: len(del)}

	// Phase 1: deletions. Tombstone every deleted edge; cutting a tree
	// edge marks its tree as needing repair.
	delSpan := span.Child("delete")
	affected := make(map[int32]bool)
	for _, id := range delIDs {
		e := h.live.Edges[id]
		h.alive[id] = false
		h.dead++
		if h.inForest[id] {
			h.unlinkForest(id)
			affected[h.idx.Comp(e.U)] = true
		}
	}
	delSpan.End()

	// Phase 2: replacement-edge search plus region rebuild.
	if len(affected) > 0 {
		repSpan := span.Child("repair")
		h.repair(affected, &d)
		repSpan.SetInt("replacements", int64(d.Replacements)).SetInt("splits", int64(d.Splits))
		repSpan.End()
	}

	// Phase 3: insertions, lightest first (cycle rule), with per-tree
	// fallback to the scoped recompute.
	if len(add) > 0 {
		insSpan := span.Child("insert")
		h.insertPhase(add, &d, insSpan)
		insSpan.SetInt("links", int64(d.Links)).SetInt("swaps", int64(d.Swaps))
		insSpan.End()
	}

	// Compact the store once tombstones dominate it.
	if h.dead > compactMinDead && h.dead*2 > len(h.live.Edges) {
		if err := h.compact(); err != nil {
			h.broken = fmt.Errorf("%w: %v", ErrBroken, err)
			return d, h.broken
		}
	}

	if metricsOn {
		obs.DynReplacements.Add(int64(d.Replacements))
		obs.DynRebuilds.Add(int64(d.Rebuilds))
		obs.DynFallbackRecomputes.Add(int64(d.FallbackRecomputes))
	}
	d.Weight = h.weight
	d.ForestSize = h.forestSize
	d.Components = h.trees
	return d, nil
}

// resolveDeletions maps value-identified deletions to store ids without
// mutating anything, so a bad batch can be rejected atomically. Non-tree
// matches are preferred over tree matches (deleting the copy that is not
// in the forest needs no repair).
func (h *Handle) resolveDeletions(del []graph.Edge) ([]int32, error) {
	if len(del) == 0 {
		return nil, nil
	}
	n := h.live.N
	taken := make(map[int32]bool, len(del))
	ids := make([]int32, 0, len(del))
	for i, e := range del {
		if e.U < 0 || int(e.U) >= n || e.V < 0 || int(e.V) >= n {
			return nil, fmt.Errorf("dynmsf: delete %d: vertex out of range [0,%d)", i, n)
		}
		id, ok := h.findLiveEdge(e, taken)
		if !ok {
			return nil, fmt.Errorf("dynmsf: delete %d: no live edge (%d,%d,w=%v); deletions must name edges live before the batch", i, e.U, e.V, e.W)
		}
		taken[id] = true
		ids = append(ids, id)
	}
	return ids, nil
}

// findLiveEdge scans u's incidence (non-tree pool first, then the
// forest adjacency) for a live, not-yet-taken edge matching e by value.
func (h *Handle) findLiveEdge(e graph.Edge, taken map[int32]bool) (int32, bool) {
	for _, a := range h.nadj[e.U] {
		if a.To == e.V && !taken[a.EID] && h.alive[a.EID] && !h.inForest[a.EID] &&
			h.live.Edges[a.EID].W == e.W {
			return a.EID, true
		}
	}
	for _, a := range h.fadj[e.U] {
		if a.To == e.V && !taken[a.EID] && h.live.Edges[a.EID].W == e.W {
			return a.EID, true
		}
	}
	return 0, false
}

// linkForest promotes edge id into the forest.
func (h *Handle) linkForest(id int32) {
	e := h.live.Edges[id]
	h.inForest[id] = true
	h.fadj[e.U] = append(h.fadj[e.U], pathmax.Arc{To: e.V, EID: id})
	h.fadj[e.V] = append(h.fadj[e.V], pathmax.Arc{To: e.U, EID: id})
	h.weight += e.W
	h.forestSize++
}

// unlinkForest demotes edge id out of the forest. It does NOT return
// the edge to the non-tree pools — the caller does that iff the edge is
// still alive (a swap), not when it was just deleted.
func (h *Handle) unlinkForest(id int32) {
	e := h.live.Edges[id]
	h.inForest[id] = false
	h.weight -= e.W
	h.forestSize--
	h.fadj[e.U] = removeArc(h.fadj[e.U], id)
	h.fadj[e.V] = removeArc(h.fadj[e.V], id)
}

// poolAdd records a live non-tree edge in the incidence pools.
func (h *Handle) poolAdd(id int32) {
	e := h.live.Edges[id]
	h.nadj[e.U] = append(h.nadj[e.U], pathmax.Arc{To: e.V, EID: id})
	if e.U != e.V {
		h.nadj[e.V] = append(h.nadj[e.V], pathmax.Arc{To: e.U, EID: id})
	}
}

func removeArc(arcs []pathmax.Arc, id int32) []pathmax.Arc {
	for i, a := range arcs {
		if a.EID == id {
			last := len(arcs) - 1
			arcs[i] = arcs[last]
			return arcs[:last]
		}
	}
	return arcs
}

// arcs is the forest adjacency closure handed to pathmax rebuilds.
func (h *Handle) arcs(v int32) []pathmax.Arc { return h.fadj[v] }

// repair reconnects the trees that lost edges: fragment the affected
// region with a BFS over the surviving forest adjacency, gather
// candidate non-tree edges from every fragment but the largest (an edge
// crossing the largest fragment is incident to the smaller side too),
// and Kruskal them over the fragment graph in (W, id) order. Finally
// the region's path-max rows are rebuilt and the tree bookkeeping
// re-keyed to the new roots.
func (h *Handle) repair(affected map[int32]bool, d *Delta) {
	region := make([]int32, 0, 64)
	for t := range affected {
		region = append(region, h.treeVerts[t]...)
	}

	// Fragment labeling over the post-deletion forest.
	h.fragEpoch++
	ep := h.fragEpoch
	var frags [][]int32
	queue := make([]int32, 0, 64)
	for _, start := range region {
		if h.fragStamp[start] == ep {
			continue
		}
		fid := int32(len(frags))
		list := []int32{start}
		h.fragStamp[start] = ep
		h.frag[start] = fid
		queue = append(queue[:0], start)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, a := range h.fadj[v] {
				if h.fragStamp[a.To] != ep {
					h.fragStamp[a.To] = ep
					h.frag[a.To] = fid
					list = append(list, a.To)
					queue = append(queue, a.To)
				}
			}
		}
		frags = append(frags, list)
	}

	// Candidate gathering from every fragment except the largest, with
	// in-place compaction of the scanned pools (lazy-deleted entries are
	// dropped as a side effect).
	largest := 0
	for i, f := range frags {
		if len(f) > len(frags[largest]) {
			largest = i
		}
	}
	h.seenEpoch++
	sep := h.seenEpoch
	var cand []int32
	for fi, list := range frags {
		if fi == largest {
			continue
		}
		for _, v := range list {
			pool := h.nadj[v]
			kept := pool[:0]
			for _, a := range pool {
				if !h.alive[a.EID] || h.inForest[a.EID] {
					continue
				}
				kept = append(kept, a)
				if h.seenEdge[a.EID] != sep {
					h.seenEdge[a.EID] = sep
					cand = append(cand, a.EID)
				}
			}
			h.nadj[v] = kept
		}
	}
	sort.Slice(cand, func(i, j int) bool {
		a, b := cand[i], cand[j]
		ea, eb := h.live.Edges[a], h.live.Edges[b]
		return ea.W < eb.W || (ea.W == eb.W && a < b)
	})

	// Kruskal over the fragment graph.
	parent := make([]int32, len(frags))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	remaining := len(frags) - 1
	for _, id := range cand {
		if remaining == 0 {
			break
		}
		e := h.live.Edges[id]
		if e.U == e.V {
			continue
		}
		fu, fv := find(h.frag[e.U]), find(h.frag[e.V])
		if fu == fv {
			continue
		}
		parent[fu] = fv
		h.linkForest(id)
		d.Replacements++
		remaining--
	}

	// Rebuild the region's rows and re-key the per-tree bookkeeping.
	trees := h.idx.RebuildRegion(region, h.arcs)
	d.Rebuilds++
	for t := range affected {
		delete(h.treeVerts, t)
		delete(h.dirty, t)
	}
	for _, tr := range trees {
		h.treeVerts[tr.Root] = tr.Verts
		delete(h.dirty, tr.Root)
	}
	d.Splits = len(trees) - len(affected)
	h.trees += d.Splits
}

// insertPhase appends the batch's insertions to the store and works
// them into the forest in (W, id) order.
func (h *Handle) insertPhase(add []graph.Edge, d *Delta, span obs.Span) {
	start := int32(len(h.live.Edges))
	h.live.Edges = append(h.live.Edges, add...)
	for range add {
		h.alive = append(h.alive, true)
		h.inForest = append(h.inForest, false)
		h.seenEdge = append(h.seenEdge, 0)
	}
	ids := make([]int32, 0, len(add))
	for i, e := range add {
		id := start + int32(i)
		if e.U == e.V {
			h.poolAdd(id) // self-loops sit in the pool so deletion finds them
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		a, b := ids[i], ids[j]
		ea, eb := h.live.Edges[a], h.live.Edges[b]
		return ea.W < eb.W || (ea.W == eb.W && a < b)
	})

	// Upfront cutoff: trees receiving more intra-tree insertions than
	// CutoffFrac of their size go straight to the scoped recompute.
	intra := make(map[int32]int)
	for _, id := range ids {
		e := h.live.Edges[id]
		tu, tv := h.idx.Comp(e.U), h.idx.Comp(e.V)
		if tu == tv {
			intra[tu]++
		}
	}
	recompute := make(map[int32]bool)
	buffered := make(map[int32][]int32)
	for t, k := range intra {
		if float64(k) > h.opt.CutoffFrac*float64(len(h.treeVerts[t])) {
			recompute[t] = true
		}
	}
	rebuilds := make(map[int32]int)
	walked := make(map[int32]int)

	for _, id := range ids {
		e := h.live.Edges[id]
		tu, tv := h.idx.Comp(e.U), h.idx.Comp(e.V)
		if tu != tv {
			h.link(id, tu, tv, recompute, buffered, intra)
			d.Links++
			continue
		}
		if recompute[tu] {
			buffered[tu] = append(buffered[tu], id)
			continue
		}
		if h.dirty[tu] && walked[tu]*walksPerRebuild >= len(h.treeVerts[tu]) {
			// Rebuild-on-threshold: enough level-0 walks have accumulated
			// on this dirty tree that one O(tree) rebuild pays for itself.
			if rebuilds[tu] >= h.opt.RebuildLimit {
				// This batch keeps invalidating the tree; stop paying
				// rebuilds and recompute it once at the end.
				recompute[tu] = true
				buffered[tu] = append(buffered[tu], id)
				continue
			}
			h.refresh(tu)
			rebuilds[tu]++
			d.Rebuilds++
			walked[tu] = 0
		}
		var q int32
		if h.dirty[tu] {
			// The tree mutated this batch: its lifted rows are stale but
			// level 0 is exact, so walk the parent chains.
			q = h.idx.QueryWalk(e.U, e.V)
			walked[tu]++
		} else {
			q = h.idx.Query(e.U, e.V)
		}
		qe := h.live.Edges[q]
		if e.W < qe.W || (e.W == qe.W && id < q) {
			// Cycle rule: the new edge beats the path maximum; swap. The
			// level-0 rows are patched in O(path) — cut q, re-root its
			// child side at the new edge's endpoint inside it — so the
			// tree stays exactly queryable without a rebuild.
			b := h.idx.ChildEnd(q)
			x, y := e.U, e.V
			if !h.idx.InSubtree(x, b) {
				x, y = e.V, e.U
			}
			h.idx.Rehang(x, b, y, id)
			h.unlinkForest(q)
			h.poolAdd(q)
			h.linkForest(id)
			h.dirty[tu] = true
			d.Swaps++
		} else {
			h.poolAdd(id)
		}
	}

	for t := range recompute {
		fb := span.Child("fallback")
		h.scopedRecompute(t, buffered[t], d)
		fb.SetInt("tree", int64(t)).SetInt("buffered", int64(len(buffered[t])))
		fb.End()
	}
}

// link joins the trees tu and tv with edge id: the smaller tree is
// relabeled into the larger (union by size), re-rooted onto it at
// level 0 (O(loser depth)), and the batch-local bookkeeping (recompute
// membership, buffered insertions, intra counts) follows the merge.
// The lifted rows become stale, so the merged tree is dirty.
func (h *Handle) link(id, tu, tv int32, recompute map[int32]bool, buffered map[int32][]int32, intra map[int32]int) {
	wi, lo := tu, tv
	if len(h.treeVerts[lo]) > len(h.treeVerts[wi]) {
		wi, lo = lo, wi
	}
	e := h.live.Edges[id]
	x, y := e.U, e.V
	if h.idx.Comp(x) != lo {
		x, y = y, x
	}
	h.idx.Rehang(x, h.treeVerts[lo][0], y, id)
	h.linkForest(id)
	h.idx.Assign(h.treeVerts[lo], wi)
	h.treeVerts[wi] = append(h.treeVerts[wi], h.treeVerts[lo]...)
	delete(h.treeVerts, lo)
	h.dirty[wi] = true
	delete(h.dirty, lo)
	if recompute[lo] {
		recompute[wi] = true
		delete(recompute, lo)
	}
	if b := buffered[lo]; len(b) > 0 {
		buffered[wi] = append(buffered[wi], b...)
		delete(buffered, lo)
	}
	if k := intra[lo]; k > 0 {
		intra[wi] += k
		delete(intra, lo)
	}
	h.trees--
}

// refresh rebuilds the path-max rows of one dirty tree. The tree's
// membership is already exact (Assign keeps comp labels eager), and its
// root is the first entry of its vertex list, so the rebuild's BFS
// re-roots it under the same label.
func (h *Handle) refresh(t int32) {
	trees := h.idx.RebuildRegion(h.treeVerts[t], h.arcs)
	delete(h.dirty, t)
	if len(trees) == 1 && trees[0].Root == t {
		h.treeVerts[t] = trees[0].Verts
		return
	}
	// Defensive: a dirty "tree" that is no longer connected means an
	// invariant broke upstream; re-key what the rebuild found.
	delete(h.treeVerts, t)
	for _, tr := range trees {
		h.treeVerts[tr.Root] = tr.Verts
		delete(h.dirty, tr.Root)
	}
	h.trees += len(trees) - 1
}

// scopedRecompute replaces tree t's edge set with the Kruskal MSF of
// its current tree edges plus the buffered insertions. Old non-tree
// edges need not be reconsidered: each is beaten by its tree path, and
// insertions only make paths lighter.
func (h *Handle) scopedRecompute(t int32, bufferedIDs []int32, d *Delta) {
	verts := h.treeVerts[t]
	h.fragEpoch++
	ep := h.fragEpoch
	for i, v := range verts {
		h.fragStamp[v] = ep
		h.frag[v] = int32(i)
	}
	// Candidates: current tree edges (taken once, from their U side)
	// plus the buffered insertions, in ascending global id so the local
	// Kruskal's (W, id) tie-break mirrors the global order.
	gids := make([]int32, 0, len(verts)+len(bufferedIDs))
	for _, v := range verts {
		for _, a := range h.fadj[v] {
			if h.live.Edges[a.EID].U == v {
				gids = append(gids, a.EID)
			}
		}
	}
	gids = append(gids, bufferedIDs...)
	sort.Slice(gids, func(i, j int) bool { return gids[i] < gids[j] })

	local := &graph.EdgeList{N: len(verts), Edges: make([]graph.Edge, len(gids))}
	for i, gid := range gids {
		e := h.live.Edges[gid]
		local.Edges[i] = graph.Edge{U: h.frag[e.U], V: h.frag[e.V], W: e.W}
	}
	f := seq.Kruskal(local)

	h.seenEpoch++
	sep := h.seenEpoch
	for _, lid := range f.EdgeIDs {
		h.seenEdge[gids[lid]] = sep
	}
	wasBuffered := make(map[int32]bool, len(bufferedIDs))
	for _, id := range bufferedIDs {
		wasBuffered[id] = true
	}
	for _, gid := range gids {
		selected := h.seenEdge[gid] == sep
		if wasBuffered[gid] {
			if selected {
				h.linkForest(gid)
			} else {
				h.poolAdd(gid)
			}
		} else if !selected {
			h.unlinkForest(gid)
			h.poolAdd(gid)
		}
	}
	// The recompute rewired the forest without maintaining level-0 rows,
	// so the tree cannot stay merely dirty (dirty promises an exact
	// level 0): rebuild it clean right away.
	h.dirty[t] = true
	h.refresh(t)
	d.Rebuilds++
	d.FallbackRecomputes++
}

// compact rebuilds the handle over a live-only store once tombstones
// dominate. Pool order is irrelevant (pools are unsorted incidence
// lists), so a monotone id remap suffices.
func (h *Handle) compact() error {
	n := h.live.N
	liveEdges := make([]graph.Edge, 0, len(h.live.Edges)-h.dead)
	forestIDs := make([]int32, 0, h.forestSize)
	for id, e := range h.live.Edges {
		if !h.alive[id] {
			continue
		}
		nid := int32(len(liveEdges))
		liveEdges = append(liveEdges, e)
		if h.inForest[id] {
			forestIDs = append(forestIDs, nid)
		}
	}
	return h.init(n, liveEdges, forestIDs)
}

// Forest returns the current minimum spanning forest as ids into the
// handle's store (the graph returned by SnapshotWithForest uses
// compacted ids instead; prefer that pairing for external consumers).
// The weight is resummed exactly.
func (h *Handle) Forest() *graph.Forest {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ids := make([]int32, 0, h.forestSize)
	var w float64
	for id := range h.inForest {
		if h.inForest[id] {
			ids = append(ids, int32(id))
			w += h.live.Edges[id].W
		}
	}
	return &graph.Forest{EdgeIDs: ids, Weight: w, Components: h.trees}
}

// SnapshotWithForest returns a compacted copy of the live graph and the
// maintained forest with ids into that copy — the pair external
// consumers (verification, the serve layer) want.
func (h *Handle) SnapshotWithForest() (*graph.EdgeList, *graph.Forest) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	g := &graph.EdgeList{N: h.live.N, Edges: make([]graph.Edge, 0, len(h.live.Edges)-h.dead)}
	f := &graph.Forest{EdgeIDs: make([]int32, 0, h.forestSize), Components: h.trees}
	for id, e := range h.live.Edges {
		if !h.alive[id] {
			continue
		}
		nid := int32(len(g.Edges))
		g.Edges = append(g.Edges, e)
		if h.inForest[id] {
			f.EdgeIDs = append(f.EdgeIDs, nid)
			f.Weight += e.W
		}
	}
	return g, f
}

// Stats returns a point-in-time view of the handle.
func (h *Handle) Stats() Stats {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return Stats{
		N:          h.live.N,
		LiveEdges:  len(h.live.Edges) - h.dead,
		DeadEdges:  h.dead,
		StoreEdges: len(h.live.Edges),
		Trees:      h.trees,
		ForestSize: h.forestSize,
		Weight:     h.weight,
	}
}
