package dynmsf

import (
	"strings"
	"testing"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/seq"
	"pmsf/internal/verify"
)

// newHandle seeds a handle with the sequential Kruskal MSF of g.
func newHandle(t *testing.T, g *graph.EdgeList, opt Options) *Handle {
	t.Helper()
	h, err := New(g, seq.Kruskal(g), opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return h
}

// checkMinimum asserts the maintained forest is the exact MSF of the
// handle's live graph.
func checkMinimum(t *testing.T, h *Handle) {
	t.Helper()
	g, f := h.SnapshotWithForest()
	if err := verify.Minimum(g, f); err != nil {
		t.Fatalf("maintained forest is not the MSF: %v", err)
	}
}

func pathGraph(n int) *graph.EdgeList {
	g := &graph.EdgeList{N: n}
	for i := 0; i < n-1; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1), W: float64(i + 1)})
	}
	return g
}

func TestNewRejectsBadInput(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil input accepted")
	}
	g := pathGraph(4)
	if _, err := New(g, &graph.Forest{EdgeIDs: []int32{0, 0}}, Options{}); err == nil {
		t.Fatal("duplicate forest id accepted")
	}
	bad := &graph.EdgeList{N: 2, Edges: []graph.Edge{{U: 0, V: 5, W: 1}}}
	if _, err := New(bad, &graph.Forest{}, Options{}); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func TestInsertSwapsHeavierTreeEdge(t *testing.T) {
	// Path 0-1-2-3 with weights 1,2,3; adding (0,3,w=0.5) must displace
	// the heaviest cycle edge (2-3, w=3).
	h := newHandle(t, pathGraph(4), Options{})
	d, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 3, W: 0.5}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Swaps != 1 || d.Links != 0 {
		t.Fatalf("delta = %+v, want exactly one swap", d)
	}
	if want := 1 + 2 + 0.5; d.Weight != want {
		t.Fatalf("weight = %g, want %g", d.Weight, want)
	}
	checkMinimum(t, h)
}

func TestInsertHeavyEdgeGoesToPool(t *testing.T) {
	h := newHandle(t, pathGraph(4), Options{})
	d, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 3, W: 99}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Swaps != 0 || d.Links != 0 || d.ForestSize != 3 {
		t.Fatalf("delta = %+v, want a pure pool insert", d)
	}
	checkMinimum(t, h)
}

func TestInsertLinksTrees(t *testing.T) {
	// Two disjoint paths; a cross edge must link them whatever its weight.
	g := &graph.EdgeList{N: 4, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 1},
	}}
	h := newHandle(t, g, Options{})
	d, err := h.ApplyEdges([]graph.Edge{{U: 1, V: 2, W: 1e6}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Links != 1 || d.Components != 1 {
		t.Fatalf("delta = %+v, want one link down to one component", d)
	}
	checkMinimum(t, h)
}

func TestDeleteTreeEdgeFindsReplacement(t *testing.T) {
	// Cycle 0-1-2-3-0: MSF drops the heaviest edge (3-0, w=4). Deleting
	// tree edge 1-2 must promote 3-0 back in.
	g := &graph.EdgeList{N: 4, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
	}}
	h := newHandle(t, g, Options{})
	d, err := h.ApplyEdges(nil, []graph.Edge{{U: 1, V: 2, W: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Replacements != 1 || d.Splits != 0 || d.Components != 1 {
		t.Fatalf("delta = %+v, want one replacement and no split", d)
	}
	if want := 1.0 + 3 + 4; d.Weight != want {
		t.Fatalf("weight = %g, want %g", d.Weight, want)
	}
	checkMinimum(t, h)
}

func TestDeleteDisconnectsThenReconnects(t *testing.T) {
	h := newHandle(t, pathGraph(5), Options{})
	d, err := h.ApplyEdges(nil, []graph.Edge{{U: 2, V: 3, W: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Splits != 1 || d.Components != 2 {
		t.Fatalf("delta = %+v, want a split into two components", d)
	}
	checkMinimum(t, h)
	d, err = h.ApplyEdges([]graph.Edge{{U: 0, V: 4, W: 10}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Links != 1 || d.Components != 1 {
		t.Fatalf("delta = %+v, want a relink", d)
	}
	checkMinimum(t, h)
}

func TestDeleteByValueEitherOrientation(t *testing.T) {
	h := newHandle(t, pathGraph(4), Options{})
	if _, err := h.ApplyEdges(nil, []graph.Edge{{U: 2, V: 1, W: 2}}); err != nil {
		t.Fatalf("reversed-orientation delete failed: %v", err)
	}
	checkMinimum(t, h)
}

func TestDeleteDuplicateValuesConsumesOneEach(t *testing.T) {
	// Two parallel (0,1,w=5) edges: one in the forest, one in the pool.
	g := &graph.EdgeList{N: 2, Edges: []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 0, V: 1, W: 5},
	}}
	h := newHandle(t, g, Options{})
	d, err := h.ApplyEdges(nil, []graph.Edge{{U: 0, V: 1, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	// The non-forest copy must have been consumed: still connected.
	if d.Components != 1 || d.Replacements != 0 {
		t.Fatalf("delta = %+v, want the pool copy deleted with no repair", d)
	}
	checkMinimum(t, h)
	// Deleting the same value again removes the tree copy and disconnects.
	d, err = h.ApplyEdges(nil, []graph.Edge{{U: 0, V: 1, W: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Components != 2 || d.Splits != 1 {
		t.Fatalf("delta = %+v, want a disconnect", d)
	}
	// A third delete has nothing left to match.
	if _, err := h.ApplyEdges(nil, []graph.Edge{{U: 0, V: 1, W: 5}}); err == nil {
		t.Fatal("deleting a missing edge succeeded")
	}
}

func TestBatchValidationIsAtomic(t *testing.T) {
	h := newHandle(t, pathGraph(4), Options{})
	before := h.Stats()
	// Valid delete plus an out-of-range add: nothing may change.
	_, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 99, W: 1}}, []graph.Edge{{U: 0, V: 1, W: 1}})
	if err == nil {
		t.Fatal("out-of-range add accepted")
	}
	// Valid add plus an unresolvable delete: nothing may change.
	_, err = h.ApplyEdges([]graph.Edge{{U: 0, V: 2, W: 1}}, []graph.Edge{{U: 0, V: 3, W: 123}})
	if err == nil {
		t.Fatal("unresolvable delete accepted")
	}
	if after := h.Stats(); after != before {
		t.Fatalf("failed batch mutated the handle: %+v -> %+v", before, after)
	}
	checkMinimum(t, h)
}

func TestDeleteOfSameBatchAddErrors(t *testing.T) {
	h := newHandle(t, pathGraph(3), Options{})
	_, err := h.ApplyEdges(
		[]graph.Edge{{U: 0, V: 2, W: 7}},
		[]graph.Edge{{U: 0, V: 2, W: 7}},
	)
	if err == nil || !strings.Contains(err.Error(), "live before the batch") {
		t.Fatalf("err = %v, want the pre-batch liveness contract spelled out", err)
	}
}

func TestSelfLoopsAreInertButDeletable(t *testing.T) {
	h := newHandle(t, pathGraph(3), Options{})
	d, err := h.ApplyEdges([]graph.Edge{{U: 1, V: 1, W: 0.001}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Swaps != 0 || d.Links != 0 || d.ForestSize != 2 {
		t.Fatalf("delta = %+v, self-loop must not enter the forest", d)
	}
	checkMinimum(t, h)
	if _, err := h.ApplyEdges(nil, []graph.Edge{{U: 1, V: 1, W: 0.001}}); err != nil {
		t.Fatalf("self-loop delete failed: %v", err)
	}
	checkMinimum(t, h)
}

func TestCutoffFallbackRecompute(t *testing.T) {
	// A tiny cutoff forces the scoped recompute for any intra-tree batch.
	h := newHandle(t, pathGraph(10), Options{CutoffFrac: 0.01})
	add := []graph.Edge{
		{U: 0, V: 5, W: 0.5}, {U: 2, V: 8, W: 0.25}, {U: 1, V: 9, W: 50},
	}
	d, err := h.ApplyEdges(add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.FallbackRecomputes != 1 {
		t.Fatalf("delta = %+v, want exactly one scoped recompute", d)
	}
	checkMinimum(t, h)
}

func TestRebuildLimitEscalatesToRecompute(t *testing.T) {
	// Chain of improving inserts on one tree: each swap dirties the tree,
	// so with RebuildLimit 1 the batch must escalate after two rebuilds.
	h := newHandle(t, pathGraph(12), Options{RebuildLimit: 1})
	add := []graph.Edge{
		{U: 0, V: 11, W: 0.9}, {U: 1, V: 10, W: 0.8}, {U: 2, V: 9, W: 0.7},
		{U: 3, V: 8, W: 0.6}, {U: 4, V: 7, W: 0.5},
	}
	d, err := h.ApplyEdges(add, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.FallbackRecomputes == 0 {
		t.Fatalf("delta = %+v, want the rebuild limit to force a recompute", d)
	}
	checkMinimum(t, h)
}

func TestCompactionShrinksStore(t *testing.T) {
	g := pathGraph(64)
	h := newHandle(t, g, Options{})
	// Churn well past compactMinDead tombstones.
	var live []graph.Edge
	for round := 0; round < 12; round++ {
		var add []graph.Edge
		for i := 0; i < 512; i++ {
			u := int32((round*7 + i) % 63)
			add = append(add, graph.Edge{U: u, V: u + 1, W: 1000 + float64(round*512+i)})
		}
		if _, err := h.ApplyEdges(add, live); err != nil {
			t.Fatal(err)
		}
		live = add
	}
	st := h.Stats()
	// Without compaction the store would hold every edge ever appended.
	if total := 63 + 12*512; st.StoreEdges >= total {
		t.Fatalf("store was never compacted: %+v", st)
	}
	if want := 63 + 512; st.LiveEdges != want {
		t.Fatalf("live edges = %d, want %d", st.LiveEdges, want)
	}
	checkMinimum(t, h)
}

func TestForestMatchesSnapshot(t *testing.T) {
	h := newHandle(t, pathGraph(6), Options{})
	if _, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 4, W: 0.5}}, []graph.Edge{{U: 1, V: 2, W: 2}}); err != nil {
		t.Fatal(err)
	}
	f := h.Forest()
	_, sf := h.SnapshotWithForest()
	if len(f.EdgeIDs) != len(sf.EdgeIDs) || f.Components != sf.Components {
		t.Fatalf("Forest %+v disagrees with snapshot forest %+v", f, sf)
	}
	if diff := f.Weight - sf.Weight; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("weights differ: %g vs %g", f.Weight, sf.Weight)
	}
	// Forest ids index the handle's store.
	for _, id := range f.EdgeIDs {
		if int(id) >= h.Stats().StoreEdges {
			t.Fatalf("forest id %d out of store range", id)
		}
	}
}

func TestObsCountersAdvance(t *testing.T) {
	obs.EnableMetrics(true)
	defer obs.EnableMetrics(false)
	applied := obs.DynAppliedEdges.Value()
	reps := obs.DynReplacements.Value()
	g := &graph.EdgeList{N: 4, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3}, {U: 3, V: 0, W: 4},
	}}
	h := newHandle(t, g, Options{})
	if _, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 2, W: 9}}, []graph.Edge{{U: 1, V: 2, W: 2}}); err != nil {
		t.Fatal(err)
	}
	if obs.DynAppliedEdges.Value() != applied+2 {
		t.Fatalf("dyn_applied_edges advanced by %d, want 2", obs.DynAppliedEdges.Value()-applied)
	}
	if obs.DynReplacements.Value() != reps+1 {
		t.Fatalf("dyn_replacements advanced by %d, want 1", obs.DynReplacements.Value()-reps)
	}
}

func TestTraceSpansEmitted(t *testing.T) {
	c := obs.NewCollector()
	h := newHandle(t, pathGraph(4), Options{Trace: c})
	if _, err := h.ApplyEdges([]graph.Edge{{U: 0, V: 3, W: 0.5}}, nil); err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, s := range c.Spans() {
		names[s.Name] = true
	}
	if !names["apply-batch"] || !names["insert"] {
		t.Fatalf("spans = %v, want apply-batch with an insert child", names)
	}
}
