package pathmax

// Tests of the PR 10 promotion: explicit Build errors on non-forest
// input and the incremental RebuildRegion/Assign/Comp API the dynamic
// MSF layer relies on.

import (
	"strings"
	"testing"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// mustBuild is the test-side shim over the error-returning Build.
func mustBuild(t *testing.T, g *graph.EdgeList, ids []int32) *Index {
	t.Helper()
	idx, err := Build(g, ids)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return idx
}

func TestBuildRejectsNonForest(t *testing.T) {
	line := &graph.EdgeList{N: 4, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 0, W: 3}, {U: 2, V: 3, W: 4},
		{U: 1, V: 1, W: 5},
	}}
	cases := []struct {
		name string
		ids  []int32
		want string
	}{
		{"cycle", []int32{0, 1, 2}, "not a forest"},
		{"duplicate id", []int32{0, 0}, "not a forest"},
		{"out of range", []int32{99}, "out of range"},
		{"negative id", []int32{-1}, "out of range"},
		{"self-loop", []int32{4}, "self-loop"},
		{"edges on empty graph", nil, "empty graph"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := line
			ids := tc.ids
			if tc.name == "edges on empty graph" {
				g = &graph.EdgeList{N: 0}
				ids = []int32{0}
			}
			if _, err := Build(g, ids); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Build(%v) error = %v, want containing %q", ids, err, tc.want)
			}
		})
	}
	if _, err := Build(line, []int32{0, 1, 3}); err != nil {
		t.Fatalf("valid forest rejected: %v", err)
	}
}

// forestAdj materializes the adjacency closure RebuildRegion consumes.
func forestAdj(g *graph.EdgeList, ids []int32) func(int32) []Arc {
	adj := make([][]Arc, g.N)
	for _, id := range ids {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], Arc{To: e.V, EID: id})
		adj[e.V] = append(adj[e.V], Arc{To: e.U, EID: id})
	}
	return func(v int32) []Arc { return adj[v] }
}

// TestRebuildRegionMatchesFullBuild mutates one tree of a two-tree
// forest and checks that rebuilding only that tree's region yields the
// same answers as a from-scratch Build, while the untouched tree's rows
// were never recomputed.
func TestRebuildRegionMatchesFullBuild(t *testing.T) {
	// Tree A: 0-1-2-3 path. Tree B: 4-5, 4-6 star.
	g := &graph.EdgeList{N: 7, Edges: []graph.Edge{
		{U: 0, V: 1, W: 5}, {U: 1, V: 2, W: 3}, {U: 2, V: 3, W: 8},
		{U: 4, V: 5, W: 2}, {U: 4, V: 6, W: 9},
		{U: 0, V: 2, W: 1}, // replacement edge for the mutation below
	}}
	idx := mustBuild(t, g, []int32{0, 1, 2, 3, 4})

	// Mutate tree A: swap edge 0 (0-1 w5) for edge 5 (0-2 w1).
	newIDs := []int32{5, 1, 2, 3, 4}
	trees := idx.RebuildRegion([]int32{0, 1, 2, 3}, forestAdj(g, newIDs))
	if len(trees) != 1 {
		t.Fatalf("region rebuild found %d trees, want 1", len(trees))
	}
	if len(trees[0].Verts) != 4 || trees[0].Verts[0] != trees[0].Root {
		t.Fatalf("tree = %+v, want 4 verts with root first", trees[0])
	}

	ref := mustBuild(t, g, newIDs)
	for u := int32(0); u < 7; u++ {
		for v := int32(0); v < 7; v++ {
			if got, want := idx.Query(u, v), ref.Query(u, v); got != want {
				t.Fatalf("Query(%d,%d) = %d after region rebuild, want %d", u, v, got, want)
			}
		}
	}
}

// TestRebuildRegionSplit cuts a tree edge and verifies the rebuild
// reports both fragments with exact membership.
func TestRebuildRegionSplit(t *testing.T) {
	g := &graph.EdgeList{N: 6, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 4, W: 4}, {U: 4, V: 5, W: 5},
	}}
	idx := mustBuild(t, g, []int32{0, 1, 2, 3, 4})
	// Cut edge 2 (2-3): fragments {0,1,2} and {3,4,5}.
	cut := []int32{0, 1, 3, 4}
	trees := idx.RebuildRegion([]int32{0, 1, 2, 3, 4, 5}, forestAdj(g, cut))
	if len(trees) != 2 {
		t.Fatalf("got %d trees after cut, want 2", len(trees))
	}
	sizes := map[int32]int{}
	for _, tr := range trees {
		sizes[tr.Root] = len(tr.Verts)
		for _, v := range tr.Verts {
			if idx.Comp(v) != tr.Root {
				t.Fatalf("Comp(%d) = %d, want %d", v, idx.Comp(v), tr.Root)
			}
		}
	}
	if idx.SameTree(0, 3) {
		t.Fatal("vertices 0 and 3 still report one tree after the cut")
	}
	if idx.Query(0, 2) != 1 {
		t.Fatalf("Query(0,2) = %d, want 1", idx.Query(0, 2))
	}
	if idx.Query(0, 5) != -1 {
		t.Fatalf("Query(0,5) = %d across fragments, want -1", idx.Query(0, 5))
	}
	_ = sizes
}

func TestAssignRelabelsMembershipOnly(t *testing.T) {
	g := &graph.EdgeList{N: 4, Edges: []graph.Edge{{U: 0, V: 1, W: 1}, {U: 2, V: 3, W: 2}}}
	idx := mustBuild(t, g, []int32{0, 1})
	if idx.SameTree(0, 2) {
		t.Fatal("distinct trees reported equal")
	}
	// Pretend a link merged {2,3} into 0's tree.
	idx.Assign([]int32{2, 3}, idx.Comp(0))
	if !idx.SameTree(0, 2) || idx.Comp(3) != idx.Comp(0) {
		t.Fatal("Assign did not relabel membership")
	}
}

// TestRebuildRegionRandomAgainstFullBuild drives random edit sessions:
// random forests, random single-tree edits, region rebuild vs full
// rebuild equivalence over all pairs.
func TestRebuildRegionRandomAgainstFullBuild(t *testing.T) {
	r := rng.New(12345)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(40)
		g := &graph.EdgeList{N: n}
		var ids []int32
		for v := 1; v < n; v++ {
			if r.Intn(4) == 0 {
				continue
			}
			u := int32(r.Intn(v))
			g.Edges = append(g.Edges, graph.Edge{U: u, V: int32(v), W: r.Float64()})
			ids = append(ids, int32(len(g.Edges)-1))
		}
		idx := mustBuild(t, g, ids)
		// Drop a random forest edge, rebuild the whole vertex set as one
		// region (a legal region: union of all trees).
		if len(ids) > 0 {
			drop := r.Intn(len(ids))
			ids = append(ids[:drop], ids[drop+1:]...)
		}
		all := make([]int32, n)
		for i := range all {
			all[i] = int32(i)
		}
		idx.RebuildRegion(all, forestAdj(g, ids))
		ref := mustBuild(t, g, ids)
		for q := 0; q < 60; q++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if got, want := idx.Query(u, v), ref.Query(u, v); got != want {
				t.Fatalf("n=%d trial=%d: Query(%d,%d) = %d, want %d", n, trial, u, v, got, want)
			}
		}
	}
}
