// Package pathmax answers maximum-weight-edge queries over the paths of
// a spanning forest: given a forest F of a weighted graph, Query(u, v)
// returns the heaviest F-edge on the tree path between u and v. It is
// the engine behind the cycle-property verification oracle, the
// sampling-based edge filter (the "exclude heavy edges early" idea the
// paper discusses alongside Cole et al.'s and Katriel et al.'s
// cycle-property algorithms), and — since the dynamic-MSF subsystem —
// an incrementally maintainable runtime structure: RebuildRegion
// recomputes only the rows of the trees a batch of edge updates
// touched, so the rest of the index stays valid across mutations.
//
// Construction is O(n log n) (BFS rooting + binary lifting); each query
// is O(log n); a region rebuild is O(|region| log n).
package pathmax

import (
	"fmt"
	"math"

	"pmsf/internal/graph"
)

// Arc is one directed half of a forest edge, the adjacency unit the
// incremental rebuild API consumes.
type Arc struct {
	To  int32
	EID int32
}

// Tree describes one tree produced by a region rebuild: its root (the
// comp label of every member) and its vertices, root first.
type Tree struct {
	Root  int32
	Verts []int32
}

// Index is a built path-maximum structure over one spanning forest.
type Index struct {
	g      *graph.EdgeList
	depth  []int32
	up     [][]int32 // up[k][v]: 2^k-th ancestor
	maxe   [][]int32 // maxe[k][v]: heaviest edge id on that path (-1 none)
	comp   []int32   // tree id per vertex (root id)
	levels int

	// Epoch-stamped visit marks for RebuildRegion: stamp[v] == epoch
	// means visited in the current rebuild, so clearing is O(1).
	stamp []int32
	epoch int32
}

// Build constructs the index for the forest given by edge ids into g.
// The ids must describe a forest: every id in range, no id repeated,
// and no cycle. Build returns an explicit error otherwise, so callers
// holding long-lived state (the dynamic-MSF layer, the serve daemon)
// can surface a corrupt forest instead of crashing.
func Build(g *graph.EdgeList, forestIDs []int32) (*Index, error) {
	n := g.N
	idx := &Index{g: g}
	if n == 0 {
		if len(forestIDs) != 0 {
			return nil, fmt.Errorf("pathmax: %d forest edges on an empty graph", len(forestIDs))
		}
		return idx, nil
	}
	deg := make([]int32, n)
	for _, id := range forestIDs {
		if id < 0 || int(id) >= len(g.Edges) {
			return nil, fmt.Errorf("pathmax: forest edge id %d out of range [0,%d)", id, len(g.Edges))
		}
		e := g.Edges[id]
		if e.U == e.V {
			return nil, fmt.Errorf("pathmax: forest edge %d is a self-loop at vertex %d", id, e.U)
		}
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	arcs := make([]Arc, off[n])
	next := make([]int32, n)
	copy(next, off[:n])
	for _, id := range forestIDs {
		e := g.Edges[id]
		arcs[next[e.U]] = Arc{e.V, id}
		next[e.U]++
		arcs[next[e.V]] = Arc{e.U, id}
		next[e.V]++
	}

	idx.depth = make([]int32, n)
	idx.comp = make([]int32, n)
	idx.stamp = make([]int32, n)
	levels := 1
	for 1<<levels < n {
		levels++
	}
	idx.levels = levels
	idx.up = make([][]int32, levels)
	idx.maxe = make([][]int32, levels)
	for k := 0; k < levels; k++ {
		idx.up[k] = make([]int32, n)
		idx.maxe[k] = make([]int32, n)
	}

	parent := idx.up[0]
	parentEdge := idx.maxe[0]
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, 64)
	trees := 0
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		trees++
		visited[root] = true
		parent[root] = int32(root)
		parentEdge[root] = -1
		idx.depth[root] = 0
		idx.comp[root] = int32(root)
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for i := off[v]; i < off[v+1]; i++ {
				a := arcs[i]
				if visited[a.To] {
					continue
				}
				visited[a.To] = true
				parent[a.To] = v
				parentEdge[a.To] = a.EID
				idx.depth[a.To] = idx.depth[v] + 1
				idx.comp[a.To] = int32(root)
				queue = append(queue, a.To)
			}
		}
	}
	// A forest has exactly n - trees edges; a duplicate id or a cycle
	// leaves extra ids whose arcs the BFS skipped.
	if len(forestIDs) != n-trees {
		return nil, fmt.Errorf("pathmax: %d forest edges over %d vertices span only %d trees: input is not a forest (cycle or duplicate id)",
			len(forestIDs), n, trees)
	}

	for k := 1; k < levels; k++ {
		up, maxe := idx.up[k], idx.maxe[k]
		prevUp, prevMax := idx.up[k-1], idx.maxe[k-1]
		for _, v := range order {
			mid := prevUp[v]
			up[v] = prevUp[mid]
			maxe[v] = idx.heavier(prevMax[v], prevMax[mid])
		}
	}
	return idx, nil
}

// RebuildRegion recomputes the rows (parent pointers, lifted ancestor
// and max-edge tables, depth, comp) of exactly the given vertices from
// the forest adjacency provided by adj. The caller must pass a closed
// region: the union of entire trees (every vertex reachable from a
// region vertex through adj must itself be in verts). Rows of vertices
// outside the region are untouched, which is what makes the index
// incrementally maintainable: a batch that dirties a few trees costs
// O(|dirty region| log n), not O(n log n).
//
// It returns the trees of the region. Each tree's comp label is its BFS
// root: the first vertex of verts (in order) that reaches it.
func (idx *Index) RebuildRegion(verts []int32, adj func(v int32) []Arc) []Tree {
	if len(verts) == 0 {
		return nil
	}
	epoch := idx.bumpEpoch()
	parent := idx.up[0]
	parentEdge := idx.maxe[0]
	var trees []Tree
	order := make([]int32, 0, len(verts))
	queue := make([]int32, 0, 64)
	for _, root := range verts {
		if idx.stamp[root] == epoch {
			continue
		}
		idx.stamp[root] = epoch
		parent[root] = root
		parentEdge[root] = -1
		idx.depth[root] = 0
		idx.comp[root] = root
		treeStart := len(order)
		queue = append(queue[:0], root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for _, a := range adj(v) {
				if idx.stamp[a.To] == epoch {
					continue
				}
				idx.stamp[a.To] = epoch
				parent[a.To] = v
				parentEdge[a.To] = a.EID
				idx.depth[a.To] = idx.depth[v] + 1
				idx.comp[a.To] = root
				queue = append(queue, a.To)
			}
		}
		tverts := make([]int32, len(order)-treeStart)
		copy(tverts, order[treeStart:])
		trees = append(trees, Tree{Root: root, Verts: tverts})
	}
	for k := 1; k < idx.levels; k++ {
		up, maxe := idx.up[k], idx.maxe[k]
		prevUp, prevMax := idx.up[k-1], idx.maxe[k-1]
		for _, v := range order {
			mid := prevUp[v]
			up[v] = prevUp[mid]
			maxe[v] = idx.heavier(prevMax[v], prevMax[mid])
		}
	}
	return trees
}

// bumpEpoch advances the visit-mark epoch, clearing the stamps on the
// (once per 2^31 operations) wrap so stale marks can never alias.
func (idx *Index) bumpEpoch() int32 {
	if idx.epoch == math.MaxInt32 {
		idx.epoch = 0
		for i := range idx.stamp {
			idx.stamp[i] = 0
		}
	}
	idx.epoch++
	return idx.epoch
}

// Comp returns the tree label of v (the root id assigned by the last
// build or rebuild that touched v, or the last Assign).
func (idx *Index) Comp(v int32) int32 { return idx.comp[v] }

// Assign relabels the comp of the given vertices to root without
// touching the lifted rows. The dynamic layer uses it when two trees
// are linked: membership is updated eagerly (so SameTree stays exact)
// while the rows are rebuilt lazily by the next RebuildRegion.
func (idx *Index) Assign(verts []int32, root int32) {
	for _, v := range verts {
		idx.comp[v] = root
	}
}

// heavier returns the heavier edge id (-1 means no edge). Ties break
// toward the LARGER id, so the result is the maximum under the library's
// perturbed total order (W, id) — the order every algorithm's tie-break
// induces. Weight-only consumers (the verification oracle) are
// unaffected; order-sensitive consumers (the sampling filter, the
// dynamic insert rule) rely on it.
func (idx *Index) heavier(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	wa, wb := idx.g.Edges[a].W, idx.g.Edges[b].W
	if wa != wb {
		if wa > wb {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}

// SameTree reports whether u and v belong to one forest tree.
func (idx *Index) SameTree(u, v int32) bool { return idx.comp[u] == idx.comp[v] }

// Query returns the id of the heaviest forest edge on the path from u to
// v, or -1 when u == v or they are in different trees.
func (idx *Index) Query(u, v int32) int32 {
	if u == v || idx.comp[u] != idx.comp[v] {
		return -1
	}
	best := int32(-1)
	if idx.depth[u] < idx.depth[v] {
		u, v = v, u
	}
	diff := idx.depth[u] - idx.depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 != 0 {
			best = idx.heavier(best, idx.maxe[k][u])
			u = idx.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return best
	}
	for k := idx.levels - 1; k >= 0; k-- {
		if idx.up[k][u] != idx.up[k][v] {
			best = idx.heavier(best, idx.maxe[k][u])
			best = idx.heavier(best, idx.maxe[k][v])
			u = idx.up[k][u]
			v = idx.up[k][v]
		}
	}
	best = idx.heavier(best, idx.maxe[0][u])
	best = idx.heavier(best, idx.maxe[0][v])
	return best
}

// QueryWeight returns the weight of Query(u, v), or -Inf-like semantics
// via ok=false when no path exists.
func (idx *Index) QueryWeight(u, v int32) (graph.Weight, bool) {
	id := idx.Query(u, v)
	if id < 0 {
		return 0, false
	}
	return idx.g.Edges[id].W, true
}

// The level-0 maintenance surface. The dynamic-MSF layer keeps the
// level-0 rows (parent pointer + parent edge) exact through every
// forest mutation — Rehang re-roots a re-attached piece in O(path) —
// while depth and the lifted rows of a mutated tree go stale until the
// next RebuildRegion. QueryWalk answers exactly on such trees from
// level 0 alone, so a mutated tree never forces an O(tree) rebuild just
// to be queried.

// ChildEnd returns the endpoint of forest edge eid that is the child in
// the current level-0 rooting (the vertex whose parent edge is eid).
// The edge must be in the forest.
func (idx *Index) ChildEnd(eid int32) int32 {
	e := idx.g.Edges[eid]
	if idx.maxe[0][e.U] == eid {
		return e.U
	}
	return e.V
}

// InSubtree reports whether x lies in the level-0 subtree rooted at
// top, by walking x's parent chain. O(depth of x).
func (idx *Index) InSubtree(x, top int32) bool {
	parent := idx.up[0]
	for w := x; ; {
		if w == top {
			return true
		}
		if parent[w] == w {
			return false
		}
		w = parent[w]
	}
}

// Rehang re-roots the tree piece whose highest vertex is stop at x and
// hangs x under y with edge eid, reversing the parent chain from x up
// to stop. Only level-0 rows are touched: depth and the lifted rows of
// the tree become stale, so the caller must mark the tree dirty and
// answer its queries with QueryWalk until a rebuild. x must lie in
// stop's subtree (stop is the child endpoint of a just-cut edge, or the
// tree root when attaching a whole tree).
func (idx *Index) Rehang(x, stop, y, eid int32) {
	parent := idx.up[0]
	parentEdge := idx.maxe[0]
	prev, prevE := y, eid
	for w := x; ; {
		pw, pe := parent[w], parentEdge[w]
		parent[w] = prev
		parentEdge[w] = prevE
		if w == stop || pw == w {
			return
		}
		prev, prevE = w, pe
		w = pw
	}
}

// QueryWalk is Query computed from the level-0 rows alone: exact on
// trees whose lifted rows are stale, at O(depth(u) + depth(v)) per
// query. The LCA is found by stamping u's ancestor chain and walking
// v's chain until it hits a stamp.
func (idx *Index) QueryWalk(u, v int32) int32 {
	if u == v || idx.comp[u] != idx.comp[v] {
		return -1
	}
	parent := idx.up[0]
	parentEdge := idx.maxe[0]
	epoch := idx.bumpEpoch()
	for w := u; ; {
		idx.stamp[w] = epoch
		if parent[w] == w {
			break
		}
		w = parent[w]
	}
	best := int32(-1)
	lca := v
	for idx.stamp[lca] != epoch {
		best = idx.heavier(best, parentEdge[lca])
		lca = parent[lca]
	}
	for w := u; w != lca; w = parent[w] {
		best = idx.heavier(best, parentEdge[w])
	}
	return best
}
