// Package pathmax answers maximum-weight-edge queries over the paths of
// a spanning forest: given a forest F of a weighted graph, Query(u, v)
// returns the heaviest F-edge on the tree path between u and v. It is
// the engine behind both the cycle-property verification oracle and the
// sampling-based edge filter (the "exclude heavy edges early" idea the
// paper discusses alongside Cole et al.'s and Katriel et al.'s
// cycle-property algorithms).
//
// Construction is O(n log n) (BFS rooting + binary lifting); each query
// is O(log n).
package pathmax

import (
	"pmsf/internal/graph"
)

// Index is a built path-maximum structure over one spanning forest.
type Index struct {
	g      *graph.EdgeList
	depth  []int32
	up     [][]int32 // up[k][v]: 2^k-th ancestor
	maxe   [][]int32 // maxe[k][v]: heaviest edge id on that path (-1 none)
	comp   []int32   // tree id per vertex (root id)
	levels int
}

// Build constructs the index for the forest given by edge ids into g.
// The ids must describe a forest (no cycles); Build panics otherwise
// only indirectly (callers validate first — see verify.Forest).
func Build(g *graph.EdgeList, forestIDs []int32) *Index {
	n := g.N
	idx := &Index{g: g}
	if n == 0 {
		return idx
	}
	deg := make([]int32, n)
	for _, id := range forestIDs {
		e := g.Edges[id]
		deg[e.U]++
		deg[e.V]++
	}
	off := make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + deg[v]
	}
	type arc struct {
		to  int32
		eid int32
	}
	arcs := make([]arc, off[n])
	next := make([]int32, n)
	copy(next, off[:n])
	for _, id := range forestIDs {
		e := g.Edges[id]
		arcs[next[e.U]] = arc{e.V, id}
		next[e.U]++
		arcs[next[e.V]] = arc{e.U, id}
		next[e.V]++
	}

	parent := make([]int32, n)
	parentEdge := make([]int32, n)
	idx.depth = make([]int32, n)
	idx.comp = make([]int32, n)
	order := make([]int32, 0, n)
	visited := make([]bool, n)
	queue := make([]int32, 0, 64)
	for root := 0; root < n; root++ {
		if visited[root] {
			continue
		}
		visited[root] = true
		parent[root] = int32(root)
		parentEdge[root] = -1
		idx.depth[root] = 0
		idx.comp[root] = int32(root)
		queue = append(queue[:0], int32(root))
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			order = append(order, v)
			for i := off[v]; i < off[v+1]; i++ {
				a := arcs[i]
				if visited[a.to] {
					continue
				}
				visited[a.to] = true
				parent[a.to] = v
				parentEdge[a.to] = a.eid
				idx.depth[a.to] = idx.depth[v] + 1
				idx.comp[a.to] = int32(root)
				queue = append(queue, a.to)
			}
		}
	}

	levels := 1
	for 1<<levels < n {
		levels++
	}
	idx.levels = levels
	idx.up = make([][]int32, levels)
	idx.maxe = make([][]int32, levels)
	idx.up[0] = parent
	idx.maxe[0] = parentEdge
	for k := 1; k < levels; k++ {
		idx.up[k] = make([]int32, n)
		idx.maxe[k] = make([]int32, n)
		prevUp, prevMax := idx.up[k-1], idx.maxe[k-1]
		for _, v := range order {
			mid := prevUp[v]
			idx.up[k][v] = prevUp[mid]
			idx.maxe[k][v] = idx.heavier(prevMax[v], prevMax[mid])
		}
	}
	return idx
}

// heavier returns the heavier edge id (-1 means no edge). Ties break
// toward the LARGER id, so the result is the maximum under the library's
// perturbed total order (W, id) — the order every algorithm's tie-break
// induces. Weight-only consumers (the verification oracle) are
// unaffected; order-sensitive consumers (the sampling filter) rely on
// it.
func (idx *Index) heavier(a, b int32) int32 {
	if a < 0 {
		return b
	}
	if b < 0 {
		return a
	}
	wa, wb := idx.g.Edges[a].W, idx.g.Edges[b].W
	if wa != wb {
		if wa > wb {
			return a
		}
		return b
	}
	if a > b {
		return a
	}
	return b
}

// SameTree reports whether u and v belong to one forest tree.
func (idx *Index) SameTree(u, v int32) bool { return idx.comp[u] == idx.comp[v] }

// Query returns the id of the heaviest forest edge on the path from u to
// v, or -1 when u == v or they are in different trees.
func (idx *Index) Query(u, v int32) int32 {
	if u == v || idx.comp[u] != idx.comp[v] {
		return -1
	}
	best := int32(-1)
	if idx.depth[u] < idx.depth[v] {
		u, v = v, u
	}
	diff := idx.depth[u] - idx.depth[v]
	for k := 0; diff != 0; k++ {
		if diff&1 != 0 {
			best = idx.heavier(best, idx.maxe[k][u])
			u = idx.up[k][u]
		}
		diff >>= 1
	}
	if u == v {
		return best
	}
	for k := idx.levels - 1; k >= 0; k-- {
		if idx.up[k][u] != idx.up[k][v] {
			best = idx.heavier(best, idx.maxe[k][u])
			best = idx.heavier(best, idx.maxe[k][v])
			u = idx.up[k][u]
			v = idx.up[k][v]
		}
	}
	best = idx.heavier(best, idx.maxe[0][u])
	best = idx.heavier(best, idx.maxe[0][v])
	return best
}

// QueryWeight returns the weight of Query(u, v), or -Inf-like semantics
// via ok=false when no path exists.
func (idx *Index) QueryWeight(u, v int32) (graph.Weight, bool) {
	id := idx.Query(u, v)
	if id < 0 {
		return 0, false
	}
	return idx.g.Edges[id].W, true
}
