package pathmax

import (
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/rng"
	"pmsf/internal/seq"
)

// bruteMax finds the heaviest edge on the forest path u..v by DFS.
func bruteMax(g *graph.EdgeList, forestIDs []int32, u, v int32) int32 {
	adj := map[int32][][2]int32{} // vertex -> (to, eid)
	for _, id := range forestIDs {
		e := g.Edges[id]
		adj[e.U] = append(adj[e.U], [2]int32{e.V, id})
		adj[e.V] = append(adj[e.V], [2]int32{e.U, id})
	}
	// DFS from u to v tracking the max edge under the (W, id) order.
	type frame struct {
		vertex int32
		best   int32
	}
	heavierOf := func(a, b int32) int32 {
		if a < 0 {
			return b
		}
		if b < 0 {
			return a
		}
		if g.Edges[a].W != g.Edges[b].W {
			if g.Edges[a].W > g.Edges[b].W {
				return a
			}
			return b
		}
		if a > b {
			return a
		}
		return b
	}
	seen := map[int32]bool{u: true}
	stack := []frame{{u, -1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.vertex == v {
			return f.best
		}
		for _, a := range adj[f.vertex] {
			if !seen[a[0]] {
				seen[a[0]] = true
				stack = append(stack, frame{a[0], heavierOf(f.best, a[1])})
			}
		}
	}
	return -1
}

func TestQueryMatchesBruteForce(t *testing.T) {
	g := gen.Random(300, 1200, 1)
	f := seq.Kruskal(g)
	idx := mustBuild(t, g, f.EdgeIDs)
	r := rng.New(2)
	for trial := 0; trial < 2000; trial++ {
		u := int32(r.Intn(g.N))
		v := int32(r.Intn(g.N))
		got := idx.Query(u, v)
		want := bruteMax(g, f.EdgeIDs, u, v)
		if u == v {
			want = -1
		}
		if got != want {
			t.Fatalf("Query(%d,%d) = %d, brute force %d", u, v, got, want)
		}
	}
}

func TestQueryDisconnected(t *testing.T) {
	g := gen.Random(400, 250, 3) // many components
	f := seq.Kruskal(g)
	idx := mustBuild(t, g, f.EdgeIDs)
	r := rng.New(4)
	for trial := 0; trial < 500; trial++ {
		u := int32(r.Intn(g.N))
		v := int32(r.Intn(g.N))
		same := idx.SameTree(u, v)
		q := idx.Query(u, v)
		if !same && q != -1 {
			t.Fatalf("cross-tree query returned %d", q)
		}
		if same && u != v && q < 0 {
			t.Fatalf("same-tree query (%d,%d) returned -1", u, v)
		}
	}
}

func TestQuerySelf(t *testing.T) {
	g := gen.Random(50, 100, 5)
	f := seq.Kruskal(g)
	idx := mustBuild(t, g, f.EdgeIDs)
	if idx.Query(7, 7) != -1 {
		t.Fatal("self query must be -1")
	}
	if w, ok := idx.QueryWeight(7, 7); ok || w != 0 {
		t.Fatal("self QueryWeight must be !ok")
	}
}

func TestQueryWeight(t *testing.T) {
	g := &graph.EdgeList{N: 3, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 5},
	}}
	idx := mustBuild(t, g, []int32{0, 1})
	w, ok := idx.QueryWeight(0, 2)
	if !ok || w != 5 {
		t.Fatalf("QueryWeight = %g,%v", w, ok)
	}
}

func TestEmptyGraph(t *testing.T) {
	idx := mustBuild(t, &graph.EdgeList{N: 0}, nil)
	_ = idx // no panic
}

func TestDeepPath(t *testing.T) {
	const n = 1 << 13
	g := &graph.EdgeList{N: n}
	for i := 0; i < n-1; i++ {
		g.Edges = append(g.Edges, graph.Edge{U: int32(i), V: int32(i + 1), W: float64(i)})
	}
	ids := make([]int32, n-1)
	for i := range ids {
		ids[i] = int32(i)
	}
	idx := mustBuild(t, g, ids)
	// Max on the path 0..n-1 is the last edge.
	if got := idx.Query(0, n-1); got != int32(n-2) {
		t.Fatalf("deep path max = %d", got)
	}
	// Max on a middle segment.
	if got := idx.Query(100, 200); got != 199 {
		t.Fatalf("segment max = %d", got)
	}
}
