package pathmax

// Tests of the level-0 maintenance surface (ChildEnd / InSubtree /
// Rehang / QueryWalk) the dynamic-MSF layer uses to keep mutated trees
// queryable without an O(tree) rebuild per mutation.

import (
	"testing"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

func TestChildEndIsDeeperEndpoint(t *testing.T) {
	g := &graph.EdgeList{N: 5, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 1, V: 3, W: 3}, {U: 3, V: 4, W: 4},
	}}
	idx := mustBuild(t, g, []int32{0, 1, 2, 3})
	for eid := int32(0); eid < 4; eid++ {
		b := idx.ChildEnd(eid)
		e := g.Edges[eid]
		other := e.U + e.V - b
		// The child is the endpoint whose parent is the other endpoint.
		if idx.up[0][b] != other {
			t.Fatalf("ChildEnd(%d) = %d, but its parent is %d, want %d", eid, b, idx.up[0][b], other)
		}
	}
}

func TestInSubtree(t *testing.T) {
	// Path 0-1-2-3-4 plus a separate tree 5-6.
	g := &graph.EdgeList{N: 7, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 2, V: 3, W: 3},
		{U: 3, V: 4, W: 4}, {U: 5, V: 6, W: 5},
	}}
	idx := mustBuild(t, g, []int32{0, 1, 2, 3, 4})
	// Whatever the rooting, exactly one endpoint of the path is the
	// root, and every vertex is in the root's subtree.
	root := idx.Comp(0)
	for v := int32(0); v < 5; v++ {
		if !idx.InSubtree(v, root) {
			t.Fatalf("InSubtree(%d, root %d) = false", v, root)
		}
		if !idx.InSubtree(v, v) {
			t.Fatalf("InSubtree(%d, %d) = false, want true for self", v, v)
		}
	}
	// A deeper vertex's subtree never contains its own ancestor.
	for v := int32(0); v < 5; v++ {
		p := idx.up[0][v]
		if p != v && idx.InSubtree(p, v) {
			t.Fatalf("InSubtree(parent %d, child %d) = true", p, v)
		}
	}
	// Cross-tree membership walks off the other root and returns false.
	if idx.InSubtree(5, root) || idx.InSubtree(0, 5) {
		t.Fatal("InSubtree crossed trees")
	}
}

func TestQueryWalkMatchesQueryOnCleanIndex(t *testing.T) {
	r := rng.New(777)
	for trial := 0; trial < 30; trial++ {
		n := 2 + r.Intn(30)
		g := &graph.EdgeList{N: n}
		var ids []int32
		for v := 1; v < n; v++ {
			if r.Intn(5) == 0 {
				continue
			}
			g.Edges = append(g.Edges, graph.Edge{U: int32(r.Intn(v)), V: int32(v), W: r.Float64()})
			ids = append(ids, int32(len(g.Edges)-1))
		}
		idx := mustBuild(t, g, ids)
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				if got, want := idx.QueryWalk(u, v), idx.Query(u, v); got != want {
					t.Fatalf("n=%d trial=%d: QueryWalk(%d,%d) = %d, Query = %d", n, trial, u, v, got, want)
				}
			}
		}
	}
}

// TestRehangSwapKeepsLevel0Exact performs cycle-rule swaps exactly the
// way the dynamic layer does — cut tree edge q, Rehang the cut-off side
// under the new edge — and checks QueryWalk against a from-scratch
// Build on the post-swap forest, without ever rebuilding the index.
func TestRehangSwapKeepsLevel0Exact(t *testing.T) {
	r := rng.New(424242)
	for trial := 0; trial < 40; trial++ {
		n := 3 + r.Intn(30)
		g := &graph.EdgeList{N: n}
		ids := make([]int32, 0, n-1)
		for v := 1; v < n; v++ { // spanning tree: every vertex attached
			g.Edges = append(g.Edges, graph.Edge{U: int32(r.Intn(v)), V: int32(v), W: r.Float64()})
			ids = append(ids, int32(len(g.Edges)-1))
		}
		idx := mustBuild(t, g, ids)
		live := map[int32]bool{}
		for _, id := range ids {
			live[id] = true
		}
		for swap := 0; swap < 8; swap++ {
			u, v := int32(r.Intn(n)), int32(r.Intn(n))
			if u == v {
				continue
			}
			q := idx.QueryWalk(u, v)
			qe := g.Edges[q]
			// A new edge lighter than the path max displaces it.
			g.Edges = append(g.Edges, graph.Edge{U: u, V: v, W: qe.W * r.Float64()})
			id := int32(len(g.Edges) - 1)
			if g.Edges[id].W >= qe.W {
				continue
			}
			b := idx.ChildEnd(q)
			x, y := u, v
			if !idx.InSubtree(x, b) {
				x, y = v, u
			}
			idx.Rehang(x, b, y, id)
			delete(live, q)
			live[id] = true
		}
		cur := make([]int32, 0, len(live))
		for id := range live {
			cur = append(cur, id)
		}
		ref := mustBuild(t, g, cur)
		for u := int32(0); u < int32(n); u++ {
			for v := int32(0); v < int32(n); v++ {
				if got, want := idx.QueryWalk(u, v), ref.Query(u, v); got != want {
					t.Fatalf("n=%d trial=%d: QueryWalk(%d,%d) = %d after swaps, want %d", n, trial, u, v, got, want)
				}
			}
		}
	}
}

// TestRehangLinkMergesTrees exercises the other Rehang caller: linking
// two trees by reversing the loser root's chain onto the winner.
func TestRehangLinkMergesTrees(t *testing.T) {
	// Two paths: 0-1-2 and 3-4-5.
	g := &graph.EdgeList{N: 6, Edges: []graph.Edge{
		{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2},
		{U: 3, V: 4, W: 3}, {U: 4, V: 5, W: 4},
	}}
	idx := mustBuild(t, g, []int32{0, 1, 2, 3})
	// Link with a new edge 2-3; hang tree B (root = Comp(3)) under 2.
	g.Edges = append(g.Edges, graph.Edge{U: 2, V: 3, W: 0.5})
	id := int32(len(g.Edges) - 1)
	idx.Rehang(3, idx.Comp(3), 2, id)
	idx.Assign([]int32{3, 4, 5}, idx.Comp(0))
	ref := mustBuild(t, g, []int32{0, 1, 2, 3, 4})
	for u := int32(0); u < 6; u++ {
		for v := int32(0); v < 6; v++ {
			if got, want := idx.QueryWalk(u, v), ref.Query(u, v); got != want {
				t.Fatalf("QueryWalk(%d,%d) = %d after link, want %d", u, v, got, want)
			}
		}
	}
}
