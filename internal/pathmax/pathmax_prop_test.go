package pathmax

// Property tests driving the index with random forests built directly
// (not via an MSF), including unbalanced shapes.

import (
	"testing"
	"testing/quick"

	"pmsf/internal/graph"
	"pmsf/internal/rng"
)

// randomForest builds a random spanning structure: each vertex v > 0
// attaches to a random earlier vertex with probability attach, so the
// result is a forest with geometric depth variety.
func randomForest(n int, seed uint64) (*graph.EdgeList, []int32) {
	r := rng.New(seed)
	g := &graph.EdgeList{N: n}
	var ids []int32
	for v := 1; v < n; v++ {
		if r.Intn(5) == 0 {
			continue // new root
		}
		u := int32(r.Intn(v))
		g.Edges = append(g.Edges, graph.Edge{U: u, V: int32(v), W: r.Float64()})
		ids = append(ids, int32(len(g.Edges)-1))
	}
	return g, ids
}

func TestQueryPropertyOnRandomForests(t *testing.T) {
	f := func(seed uint64) bool {
		n := 2 + int(seed%120)
		g, ids := randomForest(n, seed)
		idx := mustBuild(t, g, ids)
		r := rng.New(seed ^ 0xf00)
		for trial := 0; trial < 50; trial++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			q := idx.Query(u, v)
			if u == v {
				if q != -1 {
					return false
				}
				continue
			}
			if !idx.SameTree(u, v) {
				if q != -1 {
					return false
				}
				continue
			}
			if q < 0 {
				return false
			}
			// The reported edge must lie on the u..v path: removing it
			// must separate u and v.
			if !separates(g, ids, q, u, v) {
				return false
			}
			// And no path edge may be heavier.
			if w, ok := idx.QueryWeight(u, v); !ok || w != g.Edges[q].W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// separates reports whether removing edge cut from the forest
// disconnects u and v.
func separates(g *graph.EdgeList, ids []int32, cut, u, v int32) bool {
	parent := make([]int32, g.N)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, id := range ids {
		if id == cut {
			continue
		}
		e := g.Edges[id]
		ru, rv := find(e.U), find(e.V)
		if ru != rv {
			parent[ru] = rv
		}
	}
	return find(u) != find(v)
}
