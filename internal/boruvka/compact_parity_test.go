package boruvka

import (
	"math"
	"math/rand/v2"
	"testing"

	"pmsf/internal/graph"
)

// Parity tests for the packed-key parallel radix compactor: on every
// input, CompactWorkListWith(SortParallelRadix, ...) must reproduce the
// reference comparator-based CompactWorkList element for element,
// including the segment starts. The weights are chosen adversarially:
// the kernel sorts on (U, V) only and picks the representative with a
// (W, ID) min-reduction, so any divergence between '<' on float64 and
// the comparator ordering (negative zero, infinities, denormals, exact
// ties) would show up here.

// adversarialWeights is the pool the property tests draw from.
var adversarialWeights = []graph.Weight{
	0.0,
	math.Copysign(0, -1), // -0.0: == 0.0 under <, distinct bit pattern
	math.Inf(1),
	math.Inf(-1),
	5e-324,  // smallest positive denormal
	-5e-324, // largest negative denormal
	1.0,
	-1.0,
	math.MaxFloat64,
	-math.MaxFloat64,
}

// checkCompactParity asserts the packed-key kernel and the reference
// engine agree exactly on one input, at several worker counts.
func checkCompactParity(t *testing.T, name string, edges []graph.WEdge, n int) {
	t.Helper()
	ref := make([]graph.WEdge, len(edges))
	copy(ref, edges)
	wantOut, wantStarts := CompactWorkList(1, ref, n, 7)
	for _, p := range []int{1, 3, 8} {
		work := make([]graph.WEdge, len(edges))
		copy(work, edges)
		gotOut, gotStarts := CompactWorkListWith(SortParallelRadix, p, work, n, 7)
		if len(gotOut) != len(wantOut) {
			t.Fatalf("%s p=%d: %d edges, reference kept %d", name, p, len(gotOut), len(wantOut))
		}
		for i := range wantOut {
			g, w := gotOut[i], wantOut[i]
			// Compare W by bit pattern: the representative must be the
			// same edge, so even -0.0 vs +0.0 must match exactly.
			if g.U != w.U || g.V != w.V || g.ID != w.ID ||
				math.Float64bits(float64(g.W)) != math.Float64bits(float64(w.W)) {
				t.Fatalf("%s p=%d: edge %d is %+v, reference has %+v", name, p, i, g, w)
			}
		}
		if len(gotStarts) != len(wantStarts) {
			t.Fatalf("%s p=%d: %d starts, reference has %d", name, p, len(gotStarts), len(wantStarts))
		}
		for i := range wantStarts {
			if gotStarts[i] != wantStarts[i] {
				t.Fatalf("%s p=%d: starts[%d]=%d, reference has %d", name, p, i, gotStarts[i], wantStarts[i])
			}
		}
	}
}

// TestCompactParityAdversarial covers the handcrafted corner cases.
func TestCompactParityAdversarial(t *testing.T) {
	type tc struct {
		name  string
		n     int
		edges []graph.WEdge
	}
	cases := []tc{
		{"empty", 4, nil},
		{"all-self-loops", 3, []graph.WEdge{
			{U: 0, V: 0, W: 1, ID: 0}, {U: 2, V: 2, W: 2, ID: 1},
		}},
		{"negative-zero-tie", 2, []graph.WEdge{
			// -0.0 and +0.0 compare equal; the smaller ID must win and
			// its exact weight bits must be kept.
			{U: 0, V: 1, W: 0, ID: 5},
			{U: 0, V: 1, W: graph.Weight(math.Copysign(0, -1)), ID: 2},
			{U: 1, V: 0, W: graph.Weight(math.Copysign(0, -1)), ID: 9},
			{U: 1, V: 0, W: 0, ID: 1},
		}},
		{"infinities", 3, []graph.WEdge{
			{U: 0, V: 1, W: graph.Weight(math.Inf(1)), ID: 0},
			{U: 0, V: 1, W: graph.Weight(math.Inf(-1)), ID: 1},
			{U: 0, V: 2, W: graph.Weight(math.Inf(1)), ID: 2},
			{U: 0, V: 2, W: graph.Weight(math.Inf(1)), ID: 3},
			{U: 2, V: 0, W: 4, ID: 4},
		}},
		{"denormals", 2, []graph.WEdge{
			{U: 0, V: 1, W: 5e-324, ID: 0},
			{U: 0, V: 1, W: -5e-324, ID: 1},
			{U: 0, V: 1, W: 0, ID: 2},
			{U: 1, V: 0, W: -5e-324, ID: 3},
		}},
		{"all-equal-weights", 4, func() []graph.WEdge {
			var es []graph.WEdge
			id := int32(0)
			for u := int32(0); u < 4; u++ {
				for v := int32(0); v < 4; v++ {
					for r := 0; r < 3; r++ { // duplicate (U, V) runs
						es = append(es, graph.WEdge{U: u, V: v, W: 1.5, ID: id})
						id++
					}
				}
			}
			// Shuffle deterministically so ids arrive out of order.
			rng := rand.New(rand.NewPCG(1, 2))
			rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
			return es
		}()},
		{"single-vertex", 1, []graph.WEdge{{U: 0, V: 0, W: 3, ID: 0}}},
	}
	for _, c := range cases {
		checkCompactParity(t, c.name, c.edges, c.n)
	}
}

// TestCompactParityRandom is the randomized property test: many small
// graphs with heavy (U, V) duplication and weights drawn from the
// adversarial pool, so exact ties and sign-of-zero cases occur
// constantly.
func TestCompactParityRandom(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	iters := 200
	if testing.Short() {
		iters = 40
	}
	for it := 0; it < iters; it++ {
		n := 1 + rng.IntN(40)
		m := rng.IntN(6 * n)
		edges := make([]graph.WEdge, m)
		for i := range edges {
			edges[i] = graph.WEdge{
				U:  int32(rng.IntN(n)),
				V:  int32(rng.IntN(n)),
				W:  adversarialWeights[rng.IntN(len(adversarialWeights))],
				ID: int32(i),
			}
		}
		checkCompactParity(t, "random", edges, n)
	}
}

// FuzzCompactParity lets the fuzzer search for divergences between the
// packed-key kernel and the comparator-based reference.
func FuzzCompactParity(f *testing.F) {
	f.Add(uint64(1), uint8(5), uint16(30))
	f.Add(uint64(77), uint8(1), uint16(0))
	f.Add(uint64(3), uint8(40), uint16(400))
	f.Fuzz(func(t *testing.T, seed uint64, nRaw uint8, mRaw uint16) {
		n := 1 + int(nRaw)%64
		m := int(mRaw) % 512
		rng := rand.New(rand.NewPCG(seed, 0))
		edges := make([]graph.WEdge, m)
		for i := range edges {
			edges[i] = graph.WEdge{
				U:  int32(rng.IntN(n)),
				V:  int32(rng.IntN(n)),
				W:  adversarialWeights[rng.IntN(len(adversarialWeights))],
				ID: int32(i),
			}
		}
		checkCompactParity(t, "fuzz", edges, n)
	})
}
