package boruvka

import (
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/model"
)

// Every Borůvka variant must at least halve the count of ACTIVE
// supervertices per iteration (each supervertex that still has an
// outgoing edge merges with at least one other; fully contracted
// components sit out), which bounds the iteration count by ceil(log2 n).
func TestVertexCountAtLeastHalves(t *testing.T) {
	g := gen.Random(4096, 16384, 1)
	comps := graph.ComponentCount(g)
	for _, v := range variants() {
		_, stats := v.run(g, Options{Stats: true})
		if len(stats.Iters) == 0 {
			t.Fatalf("%s: no iterations", v.name)
		}
		for i := 1; i < len(stats.Iters); i++ {
			prev, cur := stats.Iters[i-1].N-comps, stats.Iters[i].N-comps
			if cur > (prev+1)/2 {
				t.Errorf("%s: iteration %d: %d -> %d active (not halved)", v.name, i, prev, cur)
			}
		}
		if bound := model.PredictedIterations(g.N); len(stats.Iters) > bound {
			t.Errorf("%s: %d iterations exceed bound %d", v.name, len(stats.Iters), bound)
		}
		if stats.Algorithm != v.name {
			t.Errorf("stats algorithm %q, want %q", stats.Algorithm, v.name)
		}
	}
}

// For EL/AL the working list shrinks every iteration (self-loops and
// duplicates are merged away). For FAL the chained-arc count includes
// stale entries and only shrinks when isolated chains disappear, so only
// non-increase is guaranteed there.
func TestListSizeShrinks(t *testing.T) {
	g := gen.Random(2048, 8192, 2)
	for _, v := range variants() {
		_, stats := v.run(g, Options{Stats: true})
		for i := 1; i < len(stats.Iters); i++ {
			prev, cur := stats.Iters[i-1].ListSize, stats.Iters[i].ListSize
			switch v.name {
			case "Bor-FAL":
				if cur > prev {
					t.Errorf("%s: list grew %d -> %d", v.name, prev, cur)
				}
			default:
				if cur >= prev {
					t.Errorf("%s: list did not shrink %d -> %d", v.name, prev, cur)
				}
			}
		}
	}
}

// Results are identical regardless of worker count: the algorithms are
// deterministic given the tie-breaking by edge id.
func TestDeterministicAcrossWorkers(t *testing.T) {
	g := gen.Random(3000, 12000, 3)
	for _, v := range variants() {
		var refWeight float64
		var refSize int
		for i, p := range []int{1, 2, 3, 8, 17} {
			f, _ := v.run(g, Options{Workers: p, Seed: uint64(p)})
			if i == 0 {
				refWeight, refSize = f.Weight, f.Size()
				continue
			}
			if f.Weight != refWeight || f.Size() != refSize {
				t.Errorf("%s: p=%d result differs", v.name, p)
			}
		}
	}
}

// Duplicate weights: correctness must not depend on distinctness.
func TestDuplicateWeights(t *testing.T) {
	g := gen.Random(1000, 5000, 4)
	for i := range g.Edges {
		g.Edges[i].W = float64(i % 3)
	}
	want, _ := EL(g, Options{})
	for _, v := range variants() {
		f, _ := v.run(g, Options{Workers: 4})
		if f.Weight != want.Weight {
			t.Errorf("%s: weight %g, want %g", v.name, f.Weight, want.Weight)
		}
	}
}

// The stats' first iteration must see the full graph.
func TestStatsFirstIteration(t *testing.T) {
	g := gen.Random(1024, 4096, 5)
	_, stats := EL(g, Options{Stats: true})
	it := stats.Iters[0]
	if it.N != g.N {
		t.Fatalf("first iteration N = %d, want %d", it.N, g.N)
	}
	if it.ListSize != int64(2*len(g.Edges)) {
		t.Fatalf("first iteration list = %d, want %d", it.ListSize, 2*len(g.Edges))
	}
	// Step-time totals match the per-iteration sums.
	var sum StepTimes
	for _, it := range stats.Iters {
		sum.Add(it.Steps)
	}
	if sum != stats.Total {
		t.Fatalf("total %+v != sum %+v", stats.Total, sum)
	}
}

// The paper's Fig. 2 claims, checked as work counters rather than wall
// time: Bor-FAL's compact-graph does O(n) pointer work instead of O(m)
// sorting, so its *find-min* carries the filtering cost — its total
// scanned arcs exceed Bor-AL's.
func TestFALShiftsWorkToFindMin(t *testing.T) {
	g := gen.Random(4096, 40960, 6)
	_, sAL := AL(g, Options{Stats: true})
	_, sFAL := FAL(g, Options{Stats: true})
	var alArcs, falArcs int64
	for _, it := range sAL.Iters {
		alArcs += it.ListSize
	}
	for _, it := range sFAL.Iters {
		falArcs += it.ListSize
	}
	if falArcs <= alArcs {
		t.Fatalf("FAL scanned %d arcs <= AL's %d; filtering cost should exceed compaction savings in scans",
			falArcs, alArcs)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}
	if o.workers() <= 0 {
		t.Fatal("default workers must be positive")
	}
	if o.cutoff() <= 0 {
		t.Fatal("default cutoff must be positive")
	}
	o = Options{Workers: 3, InsertionCutoff: 7}
	if o.workers() != 3 || o.cutoff() != 7 {
		t.Fatal("explicit options ignored")
	}
}

func TestStepTimesTotal(t *testing.T) {
	s := StepTimes{FindMin: 1, ConnectComponents: 2, CompactGraph: 3}
	if s.Total() != 6 {
		t.Fatalf("total %v", s.Total())
	}
}

// Insertion cutoff is behaviour-preserving: any cutoff yields the same
// forest.
func TestCutoffInvariance(t *testing.T) {
	g := gen.Random(1000, 6000, 7)
	ref, _ := AL(g, Options{InsertionCutoff: 2})
	for _, cutoff := range []int{4, 64, 1 << 20} {
		f, _ := AL(g, Options{InsertionCutoff: cutoff})
		if f.Weight != ref.Weight {
			t.Errorf("cutoff %d changed the result", cutoff)
		}
	}
}

func TestCompactWorkListProperties(t *testing.T) {
	g := gen.Random(500, 3000, 8)
	edges := graph.DirectedWorkList(g)
	out, starts := CompactWorkList(4, edges, g.N, 1)
	if len(starts) != g.N+1 {
		t.Fatalf("starts length %d", len(starts))
	}
	if starts[0] != 0 || starts[g.N] != int64(len(out)) {
		t.Fatal("boundary starts wrong")
	}
	for i := 1; i < len(out); i++ {
		if wedgeLess(out[i], out[i-1]) {
			t.Fatalf("output not sorted at %d", i)
		}
		if out[i].U == out[i-1].U && out[i].V == out[i-1].V {
			t.Fatalf("duplicate (U,V) pair survived at %d", i)
		}
	}
	for _, e := range out {
		if e.U == e.V {
			t.Fatal("self-loop survived")
		}
	}
	// Segment starts delimit exactly the runs of U.
	for v := 0; v < g.N; v++ {
		for i := starts[v]; i < starts[v+1]; i++ {
			if out[i].U != int32(v) {
				t.Fatalf("edge %d in segment of %d has U=%d", i, v, out[i].U)
			}
		}
	}
}

// The sort engine is behaviour-preserving for Bor-EL.
func TestSortEngineInvariance(t *testing.T) {
	g := gen.Random(3000, 30000, 13)
	ref, _ := EL(g, Options{SortEngine: SortSampleSort})
	for _, engine := range []SortEngine{SortParallelRadix, SortParallelMerge, SortRadix} {
		alt, _ := EL(g, Options{SortEngine: engine, Workers: 4})
		if ref.Weight != alt.Weight || ref.Size() != alt.Size() {
			t.Fatalf("%v changed the result", engine)
		}
	}
	if SortSampleSort.String() == SortParallelMerge.String() {
		t.Fatal("engine names collide")
	}
	if SortEngine(9).String() != "unknown" {
		t.Fatal("unknown engine name")
	}
}
