package boruvka

import (
	"pmsf/internal/cc"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// wedgeLess orders working edges by (U, V, W, ID): the sample-sort key of
// the paper's compact-graph step (supervertex of the first endpoint as
// primary key, supervertex of the second as secondary, weight as
// tertiary). The edge id is the deterministic tie-break.
func wedgeLess(a, b graph.WEdge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.ID < b.ID
}

// EL computes the minimum spanning forest with the Bor-EL variant:
// parallel Borůvka over an edge-list representation whose compact-graph
// step is a single global parallel sample sort followed by a prefix-sum
// merge of self-loops and duplicate edges.
func EL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	p := opt.workers()
	const name = "Bor-EL"
	c, root := obsStart(opt, name, p)

	edges := graph.DirectedWorkList(g)
	n := g.N
	// Initial compaction: sort and merge parallel edges, compute vertex
	// segment starts. (Counted as setup, not as an iteration.)
	var starts []int64
	setup := root.Child("setup")
	c.Labeled(name, "setup", func() {
		before := int64(len(edges))
		edges, starts = compactWorkListSpan(opt.SortEngine, p, edges, n, opt.Seed, setup)
		retire(before - int64(len(edges)))
	})
	setup.End()

	var ids []int32
	iter := 0
	for len(edges) > 0 {
		it := root.Child("iteration")
		it.SetInt("n", int64(n))
		it.SetInt("list_size", int64(len(edges)))

		// Step 1: find-min. Segments are contiguous after the sort, so
		// each vertex scans its own run of the edge list.
		step := it.Child("find-min")
		parent := make([]int32, n)
		sel := make([]int32, n)
		c.Labeled(name, "find-min", func() {
			par.ForDynamic(p, n, 1024, func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					segLo, segHi := starts[v], starts[v+1]
					if segLo == segHi {
						parent[v] = int32(v)
						continue
					}
					best := segLo
					for i := segLo + 1; i < segHi; i++ {
						if edges[i].W < edges[best].W ||
							(edges[i].W == edges[best].W && edges[i].ID < edges[best].ID) {
							best = i
						}
					}
					parent[v] = edges[best].V
					sel[v] = edges[best].ID
				}
			})
			ids = harvest(p, parent, sel, ids)
		})
		step.End()

		// Step 2: connect-components by pointer jumping.
		step = it.Child("connect-components")
		var labels []int32
		var k int
		c.Labeled(name, "connect-components", func() {
			labels, k = cc.Resolve(p, parent)
		})
		step.End()

		// Step 3: compact-graph — relabel, global sample sort, merge.
		step = it.Child("compact-graph")
		c.Labeled(name, "compact-graph", func() {
			par.For(p, len(edges), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					edges[i].U = labels[edges[i].U]
					edges[i].V = labels[edges[i].V]
				}
			})
			n = k
			before := int64(len(edges))
			edges, starts = compactWorkListSpan(opt.SortEngine, p, edges, n, opt.Seed+uint64(iter)+1, step)
			retire(before - int64(len(edges)))
		})
		step.End()
		contracted(n)

		it.End()
		iter++
	}
	root.End()
	return finish(g, ids, n), statsView(c, root, name, p, opt.Stats)
}

// CompactWorkList sorts the directed working edge list by (U, V, W, ID), drops
// self-loops, merges duplicate (U, V) runs down to their minimum-weight
// representative, and computes the per-vertex segment starts (length
// n+1). It returns the compacted list and the starts array.
func CompactWorkList(p int, edges []graph.WEdge, n int, seed uint64) ([]graph.WEdge, []int64) {
	return CompactWorkListWith(SortSampleSort, p, edges, n, seed)
}

// CompactWorkListWith is CompactWorkList with a selectable parallel sort
// engine.
func CompactWorkListWith(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64) ([]graph.WEdge, []int64) {
	return compactWorkListSpan(engine, p, edges, n, seed, obs.Span{})
}

// CompactWorkListSpan is CompactWorkListWith with the sort kernel
// recorded as a child span of parent (inert parents record nothing).
func CompactWorkListSpan(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64, parent obs.Span) ([]graph.WEdge, []int64) {
	return compactWorkListSpan(engine, p, edges, n, seed, parent)
}

func compactWorkListSpan(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64, parent obs.Span) ([]graph.WEdge, []int64) {
	sp := parent.Child("sort")
	sp.SetInt("elements", int64(len(edges)))
	switch engine {
	case SortParallelMerge:
		sorts.ParallelMergeSort(p, edges, wedgeLess)
	case SortRadix:
		sorts.RadixSortWEdges(edges, make([]graph.WEdge, len(edges)))
	default:
		sorts.SampleSort(p, edges, wedgeLess, seed)
	}
	sp.End()

	// Keep an edge iff it is not a self-loop and is the head of its
	// (U, V) run: with the sort order above, the head is the minimum.
	keepIdx := par.PackIndices(p, len(edges), func(i int) bool {
		e := edges[i]
		if e.U == e.V {
			return false
		}
		if i == 0 {
			return true
		}
		prev := edges[i-1]
		return prev.U != e.U || prev.V != e.V
	})
	out := make([]graph.WEdge, len(keepIdx))
	par.For(p, len(keepIdx), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = edges[keepIdx[i]]
		}
	})

	// Segment starts: first occurrence of each U, then backward fill for
	// vertices with no edges.
	starts := make([]int64, n+1)
	for i := range starts {
		starts[i] = -1
	}
	starts[n] = int64(len(out))
	par.For(p, len(out), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 || out[i-1].U != out[i].U {
				starts[out[i].U] = int64(i)
			}
		}
	})
	for v := n - 1; v >= 0; v-- {
		if starts[v] < 0 {
			starts[v] = starts[v+1]
		}
	}
	return out, starts
}
