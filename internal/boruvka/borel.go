package boruvka

import (
	"pmsf/internal/cc"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// wedgeLess orders working edges by (U, V, W, ID): the sample-sort key of
// the paper's compact-graph step (supervertex of the first endpoint as
// primary key, supervertex of the second as secondary, weight as
// tertiary). The edge id is the deterministic tie-break.
func wedgeLess(a, b graph.WEdge) bool {
	if a.U != b.U {
		return a.U < b.U
	}
	if a.V != b.V {
		return a.V < b.V
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.ID < b.ID
}

// EL computes the minimum spanning forest with the Bor-EL variant:
// parallel Borůvka over an edge-list representation whose compact-graph
// step is a global sort of the working list. With the default
// SortParallelRadix engine the whole iteration runs on a persistent
// worker team out of a reusable round workspace — packed-key parallel
// radix compaction, zero heap allocations per steady-state round. The
// comparator engines (sample sort, parallel merge, sequential radix)
// keep the paper's original formulation for the ablation benchmarks.
func EL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	if opt.SortEngine == SortParallelRadix {
		return elTeam(g, opt)
	}
	return elSorted(g, opt)
}

// elRun is the team-based Bor-EL loop state: every buffer is allocated
// in newELRun (sized for the first round, the largest the run will see)
// and the phase bodies are prebound method values, so round() allocates
// nothing in steady state. Tests drive round() directly to pin that.
type elRun struct {
	name string
	p    int
	c    *obs.Collector
	root obs.Span
	ws   *Workspace
	comp *sorts.Compactor

	edges, spare []graph.WEdge
	keepIdx      []int32
	starts       []int64
	labels       []int32
	n, k         int
	iter         int

	findMinBody func(worker, lo, hi int)
	relabelBody func(int)
	findMinFn   func()
	connectFn   func()
	compactFn   func()
}

func newELRun(g *graph.EdgeList, opt Options) *elRun {
	p := opt.workers()
	c, root := obsStart(opt, "Bor-EL", p)
	r := &elRun{name: "Bor-EL", p: p, c: c, root: root, n: g.N}
	r.ws = newWorkspace(p, g.N)
	r.comp = sorts.NewCompactor(p, r.ws.team)
	r.findMinBody = r.findMinWork
	r.relabelBody = r.relabelWork
	r.findMinFn = r.findMinPhase
	r.connectFn = r.connectPhase
	r.compactFn = r.compactPhase

	r.edges = graph.DirectedWorkList(g)
	m := len(r.edges)
	r.spare = make([]graph.WEdge, m)
	r.keepIdx = make([]int32, m)
	r.starts = make([]int64, g.N+1)

	// Initial compaction: merge input parallel edges and compute the
	// vertex segment starts. (Counted as setup, not as an iteration.)
	setup := root.Child("setup")
	labeled(c, r.name, "setup", func() {
		before := int64(len(r.edges))
		r.edges, r.spare = r.comp.Compact(r.edges, r.spare, r.n, r.keepIdx, r.starts[:r.n+1])
		retire(before - int64(len(r.edges)))
	})
	setup.SetInt("radix_passes", int64(r.comp.Passes))
	setup.End()
	return r
}

// round runs one Borůvka iteration and reports whether the working list
// still had edges (i.e. whether an iteration actually ran).
//
//msf:noalloc
func (r *elRun) round() bool {
	if len(r.edges) == 0 {
		return false
	}
	it := r.root.Child("iteration")
	it.SetInt("n", int64(r.n))
	it.SetInt("list_size", int64(len(r.edges)))

	step := it.Child("find-min")
	labeled(r.c, r.name, "find-min", r.findMinFn)
	step.End()

	step = it.Child("connect-components")
	labeled(r.c, r.name, "connect-components", r.connectFn)
	step.End()

	step = it.Child("compact-graph")
	before := int64(len(r.edges))
	labeled(r.c, r.name, "compact-graph", r.compactFn)
	retire(before - int64(len(r.edges)))
	step.SetInt("radix_passes", int64(r.comp.Passes))
	step.SetInt("digit_bits", int64(r.comp.LastDigitBits))
	step.SetInt("scatter_flushes", r.comp.LastFlushes)
	step.SetInt("scatter_buffered", boolArg(r.comp.LastScatterBuffered))
	step.SetInt("scan_parallel", boolArg(r.comp.LastScanParallel))
	step.End()
	contracted(r.n)

	it.End()
	r.iter++
	return true
}

func elTeam(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	r := newELRun(g, opt)
	for r.round() {
	}
	r.root.End()
	f := finish(g, r.ws.forestIDs(), r.n)
	stats := statsView(r.c, r.root, r.name, r.p, opt.Stats)
	r.ws.Close()
	return f, stats
}

// findMinPhase: each vertex scans its contiguous segment of the sorted
// working list for its minimum edge, then the round's selections are
// harvested into the forest.
//
//msf:noalloc
func (r *elRun) findMinPhase() {
	r.ws.team.ForDynamic(r.n, 1024, r.findMinBody)
	r.ws.harvest(r.n)
}

//msf:noalloc
func (r *elRun) findMinWork(_, lo, hi int) {
	edges, starts := r.edges, r.starts
	parent, sel := r.ws.parent, r.ws.sel
	for v := lo; v < hi; v++ {
		segLo, segHi := starts[v], starts[v+1]
		if segLo == segHi {
			parent[v] = int32(v)
			continue
		}
		best := segLo
		for i := segLo + 1; i < segHi; i++ {
			if edges[i].W < edges[best].W ||
				(edges[i].W == edges[best].W && edges[i].ID < edges[best].ID) {
				best = i
			}
		}
		parent[v] = edges[best].V
		sel[v] = edges[best].ID
	}
}

//msf:noalloc
func (r *elRun) connectPhase() {
	r.labels, r.k = r.ws.res.Resolve(r.ws.parent[:r.n])
}

// compactPhase: relabel both endpoints to the new supervertex ids, then
// run the packed-key radix compaction into the ping-pong buffers.
//
//msf:noalloc
func (r *elRun) compactPhase() {
	r.ws.team.Run(r.relabelBody)
	r.n = r.k
	r.edges, r.spare = r.comp.Compact(r.edges, r.spare, r.n, r.keepIdx, r.starts[:r.n+1])
}

//msf:noalloc
func (r *elRun) relabelWork(w int) {
	lo, hi := par.Block(len(r.edges), r.p, w)
	edges, labels := r.edges, r.labels
	for i := lo; i < hi; i++ {
		edges[i].U = labels[edges[i].U]
		edges[i].V = labels[edges[i].V]
	}
}

// elSorted is the comparator-engine Bor-EL loop (sample sort, parallel
// merge, sequential radix): the paper's original formulation, kept for
// the sort-engine ablation. The sequential-radix scratch buffer is
// allocated once and reused across rounds.
func elSorted(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	p := opt.workers()
	const name = "Bor-EL"
	c, root := obsStart(opt, name, p)

	edges := graph.DirectedWorkList(g)
	n := g.N
	var scratch []graph.WEdge
	// Initial compaction: sort and merge parallel edges, compute vertex
	// segment starts. (Counted as setup, not as an iteration.)
	var starts []int64
	setup := root.Child("setup")
	c.Labeled(name, "setup", func() {
		before := int64(len(edges))
		edges, starts, scratch = compactWorkListInto(opt.SortEngine, p, edges, n, opt.Seed, setup, scratch)
		retire(before - int64(len(edges)))
	})
	setup.End()

	var ids []int32
	iter := 0
	for len(edges) > 0 {
		it := root.Child("iteration")
		it.SetInt("n", int64(n))
		it.SetInt("list_size", int64(len(edges)))

		// Step 1: find-min. Segments are contiguous after the sort, so
		// each vertex scans its own run of the edge list.
		step := it.Child("find-min")
		parent := make([]int32, n)
		sel := make([]int32, n)
		c.Labeled(name, "find-min", func() {
			par.ForDynamic(p, n, 1024, func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					segLo, segHi := starts[v], starts[v+1]
					if segLo == segHi {
						parent[v] = int32(v)
						continue
					}
					best := segLo
					for i := segLo + 1; i < segHi; i++ {
						if edges[i].W < edges[best].W ||
							(edges[i].W == edges[best].W && edges[i].ID < edges[best].ID) {
							best = i
						}
					}
					parent[v] = edges[best].V
					sel[v] = edges[best].ID
				}
			})
			ids = harvest(p, parent, sel, ids)
		})
		step.End()

		// Step 2: connect-components by pointer jumping.
		step = it.Child("connect-components")
		var labels []int32
		var k int
		c.Labeled(name, "connect-components", func() {
			labels, k = cc.Resolve(p, parent)
		})
		step.End()

		// Step 3: compact-graph — relabel, global sort, merge.
		step = it.Child("compact-graph")
		c.Labeled(name, "compact-graph", func() {
			par.For(p, len(edges), func(_, lo, hi int) {
				for i := lo; i < hi; i++ {
					edges[i].U = labels[edges[i].U]
					edges[i].V = labels[edges[i].V]
				}
			})
			n = k
			before := int64(len(edges))
			edges, starts, scratch = compactWorkListInto(opt.SortEngine, p, edges, n, opt.Seed+uint64(iter)+1, step, scratch)
			retire(before - int64(len(edges)))
		})
		step.End()
		contracted(n)

		it.End()
		iter++
	}
	root.End()
	return finish(g, ids, n), statsView(c, root, name, p, opt.Stats)
}

// CompactWorkList sorts the directed working edge list by (U, V, W, ID), drops
// self-loops, merges duplicate (U, V) runs down to their minimum-weight
// representative, and computes the per-vertex segment starts (length
// n+1). It returns the compacted list and the starts array.
func CompactWorkList(p int, edges []graph.WEdge, n int, seed uint64) ([]graph.WEdge, []int64) {
	return CompactWorkListWith(SortSampleSort, p, edges, n, seed)
}

// CompactWorkListWith is CompactWorkList with a selectable sort engine
// (including the packed-key parallel radix compactor).
func CompactWorkListWith(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64) ([]graph.WEdge, []int64) {
	return CompactWorkListSpan(engine, p, edges, n, seed, obs.Span{})
}

// CompactWorkListSpan is CompactWorkListWith with the sort kernel
// recorded as a child span of parent (inert parents record nothing).
func CompactWorkListSpan(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64, parent obs.Span) ([]graph.WEdge, []int64) {
	out, starts, _ := compactWorkListInto(engine, p, edges, n, seed, parent, nil)
	return out, starts
}

// compactWorkListInto is the engine-dispatched compaction with scratch
// threading: scratch is reused as the radix/compactor double buffer when
// large enough (grown otherwise) and the grown buffer is returned, so
// loop callers allocate the scratch once instead of every round.
func compactWorkListInto(engine SortEngine, p int, edges []graph.WEdge, n int, seed uint64, parent obs.Span, scratch []graph.WEdge) ([]graph.WEdge, []int64, []graph.WEdge) {
	if engine == SortParallelRadix {
		// One-shot use of the packed-key kernel (the team-based EL loop
		// owns a persistent compactor instead of coming through here).
		if cap(scratch) < len(edges) {
			scratch = make([]graph.WEdge, len(edges))
		}
		sp := parent.Child("sort")
		sp.SetInt("elements", int64(len(edges)))
		team := par.NewTeam(p)
		comp := sorts.NewCompactor(p, team)
		keepIdx := make([]int32, len(edges))
		starts := make([]int64, n+1)
		out, newScratch := comp.Compact(edges, scratch[:len(edges)], n, keepIdx, starts)
		team.Close()
		sp.SetInt("radix_passes", int64(comp.Passes))
		sp.End()
		return out, starts, newScratch
	}

	sp := parent.Child("sort")
	sp.SetInt("elements", int64(len(edges)))
	switch engine {
	case SortParallelMerge:
		sorts.ParallelMergeSort(p, edges, wedgeLess)
	case SortRadix:
		if cap(scratch) < len(edges) {
			scratch = make([]graph.WEdge, len(edges))
		}
		sorts.RadixSortWEdges(edges, scratch[:len(edges)])
	default:
		sorts.SampleSort(p, edges, wedgeLess, seed)
	}
	sp.End()

	// Keep an edge iff it is not a self-loop and is the head of its
	// (U, V) run: with the sort order above, the head is the minimum.
	keepIdx := par.PackIndices(p, len(edges), func(i int) bool {
		e := edges[i]
		if e.U == e.V {
			return false
		}
		if i == 0 {
			return true
		}
		prev := edges[i-1]
		return prev.U != e.U || prev.V != e.V
	})
	out := make([]graph.WEdge, len(keepIdx))
	par.For(p, len(keepIdx), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = edges[keepIdx[i]]
		}
	})

	// Segment starts: first occurrence of each U, then backward fill for
	// vertices with no edges.
	starts := make([]int64, n+1)
	for i := range starts {
		starts[i] = -1
	}
	starts[n] = int64(len(out))
	par.For(p, len(out), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			if i == 0 || out[i-1].U != out[i].U {
				starts[out[i].U] = int64(i)
			}
		}
	})
	for v := n - 1; v >= 0; v-- {
		if starts[v] < 0 {
			starts[v] = starts[v+1]
		}
	}
	return out, starts, scratch
}
