package boruvka

import (
	"testing"

	"pmsf/internal/gen"
)

func TestProfileListLengths(t *testing.T) {
	g := gen.Random(5000, 30000, 1) // the paper's 1M/6M profile, scaled
	hists := ProfileListLengths(g, Options{})
	if len(hists) == 0 {
		t.Fatal("no iterations profiled")
	}
	// First iteration: every vertex with degree > 0 is a list; bucket
	// counts must sum to the list count.
	h0 := hists[0]
	var sum int64
	for _, b := range h0.UpTo {
		sum += b.Count
	}
	if sum != h0.Lists {
		t.Fatalf("bucket sum %d != lists %d", sum, h0.Lists)
	}
	if h0.Lists != int64(g.N) { // random 6x graph: no isolated vertices at n=5000 w.h.p.
		t.Logf("first iteration lists = %d of %d vertices", h0.Lists, g.N)
	}
	// The paper's observation: the overwhelming majority of lists are
	// short. For a 6x random graph, essentially all first-iteration lists
	// have <= 100 entries.
	if frac := ShortListFraction(hists[:1], 100); frac < 0.8 {
		t.Fatalf("short-list fraction %.2f < 0.8", frac)
	}
	// Iterations must show the supervertex count collapsing.
	for i := 1; i < len(hists); i++ {
		if hists[i].Lists >= hists[i-1].Lists {
			t.Fatalf("iteration %d: lists %d did not shrink from %d",
				i+1, hists[i].Lists, hists[i-1].Lists)
		}
	}
}

func TestShortListFractionEmpty(t *testing.T) {
	if ShortListFraction(nil, 100) != 0 {
		t.Fatal("empty profile should report 0")
	}
}

func TestSortCutoffSuggestion(t *testing.T) {
	g := gen.Random(3000, 18000, 2)
	hists := ProfileListLengths(g, Options{})
	cut := SortCutoffSuggestion(hists, 0.8)
	found := false
	for _, m := range DefaultBucketMaxes {
		if cut == m {
			found = true
		}
	}
	if !found {
		t.Fatalf("suggestion %d is not a bucket boundary", cut)
	}
	if SortCutoffSuggestion(nil, 0.8) <= 0 {
		t.Fatal("empty profile suggestion must be positive")
	}
}
