package boruvka

import (
	"runtime"
	"testing"

	"pmsf/internal/gen"
)

// Zero-allocation contract of the workspace-threaded round loops: after
// the first round has warmed the lazily grown buffers (resolver spare,
// grouper count slab), every further round must run without touching
// the heap. Bor-EL (packed-key engine), Bor-ALM and Bor-FAL are pinned
// at exactly zero; plain Bor-AL intentionally allocates per round (it
// is the paper's shared-heap ablation baseline against Bor-ALM), and
// Bor-ALM's per-worker sort scratch may grow geometrically as merged
// adjacency lists lengthen mid-run, so its pin tolerates the rare
// capacity-growth round and requires every other round to be clean.

// roundAllocs runs next() until it reports completion (or maxRounds)
// and returns the per-round heap allocation counts.
func roundAllocs(next func() bool, maxRounds int) []uint64 {
	var out []uint64
	var before, after runtime.MemStats
	for i := 0; i < maxRounds; i++ {
		runtime.ReadMemStats(&before)
		ok := next()
		runtime.ReadMemStats(&after)
		if !ok {
			break
		}
		out = append(out, after.Mallocs-before.Mallocs)
	}
	return out
}

// pinZeroAfterWarmup asserts every round after the first allocated
// nothing. tolerate is the number of non-clean steady-state rounds
// accepted (Bor-ALM capacity growth); pass 0 for a strict pin.
func pinZeroAfterWarmup(t *testing.T, name string, allocs []uint64, tolerate int) {
	t.Helper()
	if len(allocs) < 3 {
		t.Fatalf("%s: only %d rounds ran; input too small to observe a steady state", name, len(allocs))
	}
	dirty := 0
	for i, a := range allocs[1:] {
		if a != 0 {
			dirty++
			if dirty > tolerate {
				t.Errorf("%s: round %d allocated %d objects (want 0)", name, i+2, a)
			}
		}
	}
}

func TestELRoundZeroAllocs(t *testing.T) {
	g := gen.Random(6000, 36000, 11)
	r := newELRun(g, Options{Workers: 4})
	defer r.ws.Close()
	pinZeroAfterWarmup(t, "Bor-EL", roundAllocs(r.round, 64), 0)
}

func TestALMRoundZeroAllocs(t *testing.T) {
	g := gen.Random(6000, 36000, 11)
	r := newALRun(g, Options{Workers: 4}, true, "Bor-ALM")
	defer r.ws.Close()
	pinZeroAfterWarmup(t, "Bor-ALM", roundAllocs(r.round, 64), 2)
}

func TestFALRoundZeroAllocs(t *testing.T) {
	g := gen.Random(6000, 36000, 11)
	r := newFALRun(g, Options{Workers: 4})
	defer r.ws.Close()
	pinZeroAfterWarmup(t, "Bor-FAL", roundAllocs(r.round, 64), 0)
}
