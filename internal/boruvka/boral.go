package boruvka

import (
	"pmsf/internal/arena"
	"pmsf/internal/cc"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// AL computes the minimum spanning forest with the Bor-AL variant:
// parallel Borůvka over adjacency arrays whose compact-graph step is a
// two-level sort — a parallel group sort of the vertex array by
// supervertex label, then concurrent sequential sorts of each vertex's
// adjacency list — followed by a merge of each group's sorted lists.
func AL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	return runAL(g, opt, false, "Bor-AL")
}

// ALM computes the minimum spanning forest with the Bor-ALM variant: the
// identical algorithm and data structures as Bor-AL, but all transient
// memory (per-list sort scratch, iteration output buffers) comes from
// private per-worker buffers that are reused across iterations instead of
// fresh shared-heap allocations — the Go analogue of the paper's
// per-thread memory segments replacing the contended system malloc.
func ALM(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	return runAL(g, opt, true, "Bor-ALM")
}

// adjLess orders adjacency entries by (To, W, EID): target supervertex as
// the key (the paper's per-list sort key), weight and edge id as
// tie-breaks so the head of every target run is the minimum edge.
func adjLess(a, b graph.AdjEntry) bool {
	if a.To != b.To {
		return a.To < b.To
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.EID < b.EID
}

// alState is the "loose CSR" working form: vertex v's adjacency list is
// arcs[off[v] : off[v]+deg[v]]. Regions may be over-allocated so that a
// merged group can be written in place of its bound without a second
// compaction pass.
type alState struct {
	n    int
	off  []int64
	deg  []int32
	arcs []graph.AdjEntry
}

func (s *alState) adj(v int32) []graph.AdjEntry {
	o := s.off[v]
	return s.arcs[o : o+int64(s.deg[v])]
}

func (s *alState) totalArcs(p int) int64 {
	return par.ReduceInt64(p, s.n, func(_, lo, hi int) int64 {
		var t int64
		for v := lo; v < hi; v++ {
			t += int64(s.deg[v])
		}
		return t
	})
}

// alMem serves the variant-dependent memory policy. In heap mode every
// request is a fresh allocation; in arena mode per-worker buffers and the
// iteration output buffer are reused, and the per-iteration vertex
// arrays (chosen-neighbor, selected-edge, degree) come from reusable
// backing slices as well.
type alMem struct {
	arena   bool
	sortBuf [][]graph.AdjEntry // per worker: merge-sort scratch
	// concatSlabs serve the group-merge concat fallback from per-worker
	// slab allocators (internal/arena): allocations within an iteration
	// stack up in private pages and a Reset at the next compact-graph
	// reuses them — the paper's per-thread memory segments.
	concatSlabs []*arena.Slab[graph.AdjEntry]
	spare       []graph.AdjEntry // ping-pong iteration output buffer
	i32Bufs     [4][]int32       // reusable vertex-sized arrays
	degSlot     int              // ping-pong slot (2 or 3) for the degree array
}

func newALMem(arenaMode bool, p int) *alMem {
	m := &alMem{arena: arenaMode}
	if arenaMode {
		m.sortBuf = make([][]graph.AdjEntry, p)
		m.concatSlabs = make([]*arena.Slab[graph.AdjEntry], p)
		for w := range m.concatSlabs {
			m.concatSlabs[w] = arena.NewSlab[graph.AdjEntry](1 << 14)
		}
	}
	return m
}

// resetIteration recycles the per-worker slab pages for the next
// compact-graph pass.
func (m *alMem) resetIteration() {
	for _, s := range m.concatSlabs {
		s.Reset()
	}
}

func (m *alMem) sortScratch(w, n int) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	if cap(m.sortBuf[w]) < n {
		m.sortBuf[w] = make([]graph.AdjEntry, n+n/2)
	}
	return m.sortBuf[w][:n]
}

func (m *alMem) concatScratch(w, n int) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	return m.concatSlabs[w].Alloc(n)
}

// vertexInts returns a zeroed int32 slice of length n. In arena mode
// slot selects one of the reusable backing arrays (callers use distinct
// slots for arrays that are alive simultaneously); in heap mode every
// call allocates.
func (m *alMem) vertexInts(slot, n int) []int32 {
	if !m.arena {
		return make([]int32, n)
	}
	buf := m.i32Bufs[slot]
	if cap(buf) < n {
		buf = make([]int32, n+n/2)
		m.i32Bufs[slot] = buf
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// output returns a buffer of n entries for the iteration's merged arcs
// and retains old (the previous arcs array) for reuse.
func (m *alMem) output(n int, old []graph.AdjEntry) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	buf := m.spare
	if cap(buf) < n {
		buf = make([]graph.AdjEntry, n)
	}
	m.spare = old
	return buf[:n]
}

func runAL(g *graph.EdgeList, opt Options, arenaMode bool, name string) (*graph.Forest, *Stats) {
	p := opt.workers()
	cutoff := opt.cutoff()
	c, root := obsStart(opt, name, p)
	mem := newALMem(arenaMode, p)

	adj := graph.BuildAdj(g)
	st := &alState{n: adj.N, off: adj.Off, arcs: adj.Arcs}
	st.deg = make([]int32, adj.N)
	for v := 0; v < adj.N; v++ {
		st.deg[v] = int32(adj.Off[v+1] - adj.Off[v])
	}
	// The initial CSR may contain parallel edges from the input; they are
	// merged by the first compact-graph like in the paper.

	var ids []int32
	for {
		total := st.totalArcs(p)
		if total == 0 {
			break
		}
		it := root.Child("iteration")
		it.SetInt("n", int64(st.n))
		it.SetInt("list_size", total)

		// Step 1: find-min over each adjacency list.
		step := it.Child("find-min")
		parent := mem.vertexInts(0, st.n)
		sel := mem.vertexInts(1, st.n)
		c.Labeled(name, "find-min", func() {
			par.ForDynamic(p, st.n, 512, func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					list := st.adj(int32(v))
					if len(list) == 0 {
						parent[v] = int32(v)
						continue
					}
					best := 0
					for i := 1; i < len(list); i++ {
						if list[i].W < list[best].W ||
							(list[i].W == list[best].W && list[i].EID < list[best].EID) {
							best = i
						}
					}
					parent[v] = list[best].To
					sel[v] = list[best].EID
				}
			})
			ids = harvest(p, parent, sel, ids)
		})
		step.End()

		// Step 2: connect-components.
		step = it.Child("connect-components")
		var labels []int32
		var k int
		c.Labeled(name, "connect-components", func() {
			labels, k = cc.Resolve(p, parent)
		})
		step.End()

		// Step 3: compact-graph (two-level sort + group merge).
		step = it.Child("compact-graph")
		c.Labeled(name, "compact-graph", func() {
			mem.resetIteration()
			st = compactAL(p, cutoff, st, labels, k, mem)
		})
		step.End()
		if obs.MetricsOn() {
			retire(total - st.totalArcs(p))
			contracted(st.n)
		}

		it.End()
	}
	root.End()
	return finish(g, ids, st.n), statsView(c, root, name, p, opt.Stats)
}

// compactAL performs the Bor-AL compact-graph step: relabel arc targets,
// group vertices by supervertex label (parallel counting sort), sort each
// vertex's list (insertion sort below cutoff, bottom-up merge sort
// above), and merge every group's sorted lists into the new supervertex's
// list, dropping self-loops and keeping the minimum edge per target.
func compactAL(p, cutoff int, st *alState, labels []int32, k int, mem *alMem) *alState {
	// Relabel arc targets to new supervertex ids.
	par.For(p, st.n, func(_, lo, hi int) {
		for v := lo; v < hi; v++ {
			list := st.adj(int32(v))
			for i := range list {
				list[i].To = labels[list[i].To]
			}
		}
	})

	// Level-1 sort: group the vertex array by supervertex label.
	order, gstarts := sorts.CountingGroup(p, labels, k)

	// Level-2 sort: each vertex's list, concurrently.
	par.ForDynamic(p, st.n, 256, func(w, lo, hi int) {
		for v := lo; v < hi; v++ {
			list := st.adj(int32(v))
			if len(list) < cutoff {
				sorts.Insertion(list, adjLess)
			} else {
				sorts.MergeBottomUp(list, mem.sortScratch(w, len(list)), adjLess)
			}
		}
	})

	// Bound each group's output region by the sum of member degrees, then
	// turn the sizes into region starts with an exclusive prefix sum.
	newOff := make([]int64, k+1)
	par.For(p, k, func(_, lo, hi int) {
		for g := lo; g < hi; g++ {
			var sum int64
			for i := gstarts[g]; i < gstarts[g+1]; i++ {
				sum += int64(st.deg[order[i]])
			}
			newOff[g] = sum
		}
	})
	newOff[k] = par.ScanInt64(p, newOff[:k])

	newArcs := mem.output(int(newOff[k]), st.arcs)
	// The degree array must not alias the previous iteration's (still
	// being read below), so arena mode ping-pongs between two slots.
	degSlot := 2 + mem.degSlot
	mem.degSlot = 1 - mem.degSlot
	newDeg := mem.vertexInts(degSlot, k)

	// Merge each group's sorted member lists.
	par.ForDynamic(p, k, 64, func(w, lo, hi int) {
		for g := lo; g < hi; g++ {
			members := order[gstarts[g]:gstarts[g+1]]
			dst := newArcs[newOff[g]:newOff[g+1]]
			newDeg[g] = mergeGroup(st, members, int32(g), dst, w, mem)
		}
	})

	return &alState{n: k, off: newOff[:k], deg: newDeg, arcs: newArcs}
}

// mergeGroup merges the sorted adjacency lists of the member vertices
// into dst, skipping self-loops (To == self) and collapsing duplicate
// targets to their first (minimum) entry. It returns the merged length.
// Small groups use a direct k-way merge; large groups fall back to
// concatenate-and-sort.
func mergeGroup(st *alState, members []int32, self int32, dst []graph.AdjEntry, w int, mem *alMem) int32 {
	const kwayLimit = 16
	if len(members) == 1 {
		// Isolated supervertex (no chosen edge): list must be empty.
		return filterCopy(st.adj(members[0]), self, dst)
	}
	if len(members) > kwayLimit {
		var total int
		for _, v := range members {
			total += int(st.deg[v])
		}
		buf := mem.concatScratch(w, total)
		pos := 0
		for _, v := range members {
			pos += copy(buf[pos:], st.adj(v))
		}
		sorts.MergeBottomUp(buf, dst[:len(buf)], adjLess)
		return filterCopy(buf, self, dst)
	}
	// K-way merge with linear head scan (groups are small).
	lists := make([][]graph.AdjEntry, 0, len(members))
	for _, v := range members {
		if l := st.adj(v); len(l) > 0 {
			lists = append(lists, l)
		}
	}
	var out int32
	lastTo := int32(-1)
	for len(lists) > 0 {
		best := 0
		for i := 1; i < len(lists); i++ {
			if adjLess(lists[i][0], lists[best][0]) {
				best = i
			}
		}
		e := lists[best][0]
		lists[best] = lists[best][1:]
		if len(lists[best]) == 0 {
			lists[best] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
		if e.To != self && e.To != lastTo {
			dst[out] = e
			out++
			lastTo = e.To
		}
	}
	return out
}

// filterCopy copies src into dst dropping self-loops and duplicate
// targets (src must be sorted by adjLess); returns the kept count.
func filterCopy(src []graph.AdjEntry, self int32, dst []graph.AdjEntry) int32 {
	var out int32
	lastTo := int32(-1)
	for _, e := range src {
		if e.To == self || e.To == lastTo {
			continue
		}
		dst[out] = e
		out++
		lastTo = e.To
	}
	return out
}
