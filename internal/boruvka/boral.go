package boruvka

import (
	"pmsf/internal/arena"
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// AL computes the minimum spanning forest with the Bor-AL variant:
// parallel Borůvka over adjacency arrays whose compact-graph step is a
// two-level sort — a parallel group sort of the vertex array by
// supervertex label, then concurrent sequential sorts of each vertex's
// adjacency list — followed by a merge of each group's sorted lists.
func AL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	return runAL(g, opt, false, "Bor-AL")
}

// ALM computes the minimum spanning forest with the Bor-ALM variant: the
// identical algorithm and data structures as Bor-AL, but all transient
// memory (per-list sort scratch, iteration output buffers, k-way merge
// heads) comes from private per-worker buffers that are reused across
// iterations instead of fresh shared-heap allocations — the Go analogue
// of the paper's per-thread memory segments replacing the contended
// system malloc. Together with the shared round workspace this makes the
// ALM steady-state round allocation-free, which is the whole point of
// the variant; plain AL deliberately keeps the heap allocations so the
// A2 ablation retains its contrast.
func ALM(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	return runAL(g, opt, true, "Bor-ALM")
}

// adjLess orders adjacency entries by (To, W, EID): target supervertex as
// the key (the paper's per-list sort key), weight and edge id as
// tie-breaks so the head of every target run is the minimum edge.
func adjLess(a, b graph.AdjEntry) bool {
	if a.To != b.To {
		return a.To < b.To
	}
	if a.W != b.W {
		return a.W < b.W
	}
	return a.EID < b.EID
}

// alState is the "loose CSR" working form: vertex v's adjacency list is
// arcs[off[v] : off[v]+deg[v]]. Regions may be over-allocated so that a
// merged group can be written in place of its bound without a second
// compaction pass.
type alState struct {
	n    int
	off  []int64
	deg  []int32
	arcs []graph.AdjEntry
}

func (s *alState) adj(v int32) []graph.AdjEntry {
	o := s.off[v]
	return s.arcs[o : o+int64(s.deg[v])]
}

// kwayLimit is the group size above which mergeGroup falls back from a
// direct k-way merge to concatenate-and-sort.
const kwayLimit = 16

// alMem serves the variant-dependent memory policy. In heap mode every
// request is a fresh allocation; in arena mode per-worker buffers and the
// iteration output buffer are reused, and the per-iteration vertex
// arrays (degree, k-way merge heads) come from reusable backing slices
// as well.
type alMem struct {
	arena   bool
	sortBuf [][]graph.AdjEntry // per worker: merge-sort scratch
	// concatSlabs serve the group-merge concat fallback from per-worker
	// slab allocators (internal/arena): allocations within an iteration
	// stack up in private pages and a Reset at the next compact-graph
	// reuses them — the paper's per-thread memory segments.
	concatSlabs []*arena.Slab[graph.AdjEntry]
	kwayBuf     [][][]graph.AdjEntry // per worker: reusable k-way merge heads
	spare       []graph.AdjEntry     // ping-pong iteration output buffer
	i32Bufs     [4][]int32           // reusable vertex-sized arrays
	degSlot     int                  // ping-pong slot (2 or 3) for the degree array
}

func newALMem(arenaMode bool, p int) *alMem {
	m := &alMem{arena: arenaMode}
	if arenaMode {
		m.sortBuf = make([][]graph.AdjEntry, p)
		m.concatSlabs = make([]*arena.Slab[graph.AdjEntry], p)
		m.kwayBuf = make([][][]graph.AdjEntry, p)
		for w := range m.concatSlabs {
			m.concatSlabs[w] = arena.NewSlab[graph.AdjEntry](1 << 14)
			m.kwayBuf[w] = make([][]graph.AdjEntry, 0, kwayLimit)
		}
	}
	return m
}

// resetIteration recycles the per-worker slab pages for the next
// compact-graph pass.
func (m *alMem) resetIteration() {
	for _, s := range m.concatSlabs {
		s.Reset()
	}
}

func (m *alMem) sortScratch(w, n int) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	if cap(m.sortBuf[w]) < n {
		m.sortBuf[w] = make([]graph.AdjEntry, n+n/2)
	}
	return m.sortBuf[w][:n]
}

func (m *alMem) concatScratch(w, n int) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	return m.concatSlabs[w].Alloc(n)
}

// kwayLists returns an empty slice of list heads with room for
// kwayLimit entries; arena mode reuses a per-worker backing array.
func (m *alMem) kwayLists(w int) [][]graph.AdjEntry {
	if !m.arena {
		return make([][]graph.AdjEntry, 0, kwayLimit)
	}
	return m.kwayBuf[w][:0]
}

// vertexInts returns a zeroed int32 slice of length n. In arena mode
// slot selects one of the reusable backing arrays (callers use distinct
// slots for arrays that are alive simultaneously); in heap mode every
// call allocates.
func (m *alMem) vertexInts(slot, n int) []int32 {
	if !m.arena {
		return make([]int32, n)
	}
	buf := m.i32Bufs[slot]
	if cap(buf) < n {
		buf = make([]int32, n+n/2)
		m.i32Bufs[slot] = buf
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// output returns a buffer of n entries for the iteration's merged arcs
// and retains old (the previous arcs array) for reuse.
func (m *alMem) output(n int, old []graph.AdjEntry) []graph.AdjEntry {
	if !m.arena {
		return make([]graph.AdjEntry, n)
	}
	buf := m.spare
	if cap(buf) < n {
		buf = make([]graph.AdjEntry, n)
	}
	m.spare = old
	return buf[:n]
}

// alRun is the team-based Bor-AL/ALM loop state. All loop-level arrays
// (off ping-pong, grouping order/starts, per-worker totals) are sized
// for the first round and reused; the variant-dependent transient
// memory goes through alMem. With the arena policy (Bor-ALM) the
// steady-state round allocates nothing.
type alRun struct {
	name      string
	p, cutoff int
	c         *obs.Collector
	root      obs.Span
	ws        *Workspace
	mem       *alMem
	st        alState

	offSpare  []int64 // ping-pong partner of st.off's backing array
	order     []int32
	gstarts   []int64
	arcTotals []int64 // per-worker arc counts for totalArcs
	labels    []int32
	k         int
	total     int64

	// Compact-phase scratch published to the worker bodies.
	newOff  []int64
	newArcs []graph.AdjEntry
	newDeg  []int32

	findMinBody   func(worker, lo, hi int)
	sortListsBody func(worker, lo, hi int)
	mergeBody     func(worker, lo, hi int)
	relabelBody   func(int)
	boundBody     func(int)
	totalBody     func(int)
	findMinFn     func()
	connectFn     func()
	compactFn     func()
}

func newALRun(g *graph.EdgeList, opt Options, arenaMode bool, name string) *alRun {
	p := opt.workers()
	c, root := obsStart(opt, name, p)
	r := &alRun{
		name:   name,
		p:      p,
		cutoff: opt.cutoff(),
		c:      c,
		root:   root,
		mem:    newALMem(arenaMode, p),
	}
	r.ws = newWorkspace(p, g.N)
	r.findMinBody = r.findMinWork
	r.sortListsBody = r.sortListsWork
	r.mergeBody = r.mergeWork
	r.relabelBody = r.relabelWork
	r.boundBody = r.boundWork
	r.totalBody = r.totalWork
	r.findMinFn = r.findMinPhase
	r.connectFn = r.connectPhase
	r.compactFn = r.compactPhase

	adj := graph.BuildAdj(g)
	r.st = alState{n: adj.N, off: adj.Off, arcs: adj.Arcs}
	r.st.deg = make([]int32, adj.N)
	for v := 0; v < adj.N; v++ {
		r.st.deg[v] = int32(adj.Off[v+1] - adj.Off[v])
	}
	// The initial CSR may contain parallel edges from the input; they are
	// merged by the first compact-graph like in the paper.
	r.offSpare = make([]int64, adj.N+1)
	r.order = make([]int32, adj.N)
	r.gstarts = make([]int64, adj.N+1)
	r.arcTotals = make([]int64, p)
	return r
}

//msf:noalloc
func (r *alRun) totalArcs() int64 {
	r.ws.team.Run(r.totalBody)
	var t int64
	for _, v := range r.arcTotals {
		t += v
	}
	return t
}

//msf:noalloc
func (r *alRun) round() bool {
	total := r.totalArcs()
	if total == 0 {
		return false
	}
	it := r.root.Child("iteration")
	it.SetInt("n", int64(r.st.n))
	it.SetInt("list_size", total)

	step := it.Child("find-min")
	labeled(r.c, r.name, "find-min", r.findMinFn)
	step.End()

	step = it.Child("connect-components")
	labeled(r.c, r.name, "connect-components", r.connectFn)
	step.End()

	step = it.Child("compact-graph")
	labeled(r.c, r.name, "compact-graph", r.compactFn)
	step.End()
	if obs.MetricsOn() {
		retire(total - r.totalArcs())
		contracted(r.st.n)
	}

	it.End()
	return true
}

//msf:noalloc
func (r *alRun) findMinPhase() {
	r.ws.team.ForDynamic(r.st.n, 512, r.findMinBody)
	r.ws.harvest(r.st.n)
}

// findMinWork scans each vertex's adjacency list for its minimum edge.
//
//msf:noalloc
func (r *alRun) findMinWork(_, lo, hi int) {
	parent, sel := r.ws.parent, r.ws.sel
	for v := lo; v < hi; v++ {
		list := r.st.adj(int32(v))
		if len(list) == 0 {
			parent[v] = int32(v)
			continue
		}
		best := 0
		for i := 1; i < len(list); i++ {
			if list[i].W < list[best].W ||
				(list[i].W == list[best].W && list[i].EID < list[best].EID) {
				best = i
			}
		}
		parent[v] = list[best].To
		sel[v] = list[best].EID
	}
}

//msf:noalloc
func (r *alRun) connectPhase() {
	r.labels, r.k = r.ws.res.Resolve(r.ws.parent[:r.st.n])
}

// compactPhase performs the Bor-AL compact-graph step: relabel arc
// targets, group vertices by supervertex label (team counting sort),
// sort each vertex's list (insertion sort below cutoff, bottom-up merge
// sort above), and merge every group's sorted lists into the new
// supervertex's list, dropping self-loops and keeping the minimum edge
// per target.
//
//msf:noalloc
func (r *alRun) compactPhase() {
	r.mem.resetIteration()
	k := r.k

	// Relabel arc targets to new supervertex ids.
	r.ws.team.Run(r.relabelBody)

	// Level-1 sort: group the vertex array by supervertex label.
	r.ws.grp.Group(r.labels, k, r.order[:r.st.n], r.gstarts[:k+1])

	// Level-2 sort: each vertex's list, concurrently.
	r.ws.team.ForDynamic(r.st.n, 256, r.sortListsBody)

	// Bound each group's output region by the sum of member degrees, then
	// turn the sizes into region starts with an exclusive prefix sum.
	r.newOff = r.offSpare[:k+1]
	r.ws.team.Run(r.boundBody)
	var pos int64
	for g := 0; g < k; g++ {
		v := r.newOff[g]
		r.newOff[g] = pos
		pos += v
	}
	r.newOff[k] = pos

	r.newArcs = r.mem.output(int(pos), r.st.arcs)
	// The degree array must not alias the previous iteration's (still
	// being read below), so arena mode ping-pongs between two slots.
	degSlot := 2 + r.mem.degSlot
	r.mem.degSlot = 1 - r.mem.degSlot
	r.newDeg = r.mem.vertexInts(degSlot, k)

	// Merge each group's sorted member lists.
	r.ws.team.ForDynamic(k, 64, r.mergeBody)

	r.offSpare = r.st.off[:cap(r.st.off)]
	r.st = alState{n: k, off: r.newOff[:k], deg: r.newDeg, arcs: r.newArcs}
	r.newOff, r.newArcs, r.newDeg = nil, nil, nil
}

//msf:noalloc
func (r *alRun) relabelWork(w int) {
	lo, hi := par.Block(r.st.n, r.p, w)
	labels := r.labels
	for v := lo; v < hi; v++ {
		list := r.st.adj(int32(v))
		for i := range list {
			list[i].To = labels[list[i].To]
		}
	}
}

//msf:noalloc
func (r *alRun) sortListsWork(w, lo, hi int) {
	for v := lo; v < hi; v++ {
		list := r.st.adj(int32(v))
		if len(list) < r.cutoff {
			sorts.Insertion(list, adjLess)
		} else {
			sorts.MergeBottomUp(list, r.mem.sortScratch(w, len(list)), adjLess)
		}
	}
}

//msf:noalloc
func (r *alRun) boundWork(w int) {
	lo, hi := par.Block(r.k, r.p, w)
	order, gstarts := r.order, r.gstarts
	for g := lo; g < hi; g++ {
		var sum int64
		for i := gstarts[g]; i < gstarts[g+1]; i++ {
			sum += int64(r.st.deg[order[i]])
		}
		r.newOff[g] = sum
	}
}

//msf:noalloc
func (r *alRun) mergeWork(w, lo, hi int) {
	for g := lo; g < hi; g++ {
		members := r.order[r.gstarts[g]:r.gstarts[g+1]]
		dst := r.newArcs[r.newOff[g]:r.newOff[g+1]]
		r.newDeg[g] = mergeGroup(&r.st, members, int32(g), dst, w, r.mem)
	}
}

//msf:noalloc
func (r *alRun) totalWork(w int) {
	lo, hi := par.Block(r.st.n, r.p, w)
	deg := r.st.deg
	var t int64
	for v := lo; v < hi; v++ {
		t += int64(deg[v])
	}
	r.arcTotals[w] = t
}

func runAL(g *graph.EdgeList, opt Options, arenaMode bool, name string) (*graph.Forest, *Stats) {
	r := newALRun(g, opt, arenaMode, name)
	for r.round() {
	}
	r.root.End()
	f := finish(g, r.ws.forestIDs(), r.st.n)
	stats := statsView(r.c, r.root, r.name, r.p, opt.Stats)
	r.ws.Close()
	return f, stats
}

// mergeGroup merges the sorted adjacency lists of the member vertices
// into dst, skipping self-loops (To == self) and collapsing duplicate
// targets to their first (minimum) entry. It returns the merged length.
// Small groups use a direct k-way merge; large groups fall back to
// concatenate-and-sort.
func mergeGroup(st *alState, members []int32, self int32, dst []graph.AdjEntry, w int, mem *alMem) int32 {
	if len(members) == 1 {
		// Isolated supervertex (no chosen edge): list must be empty.
		return filterCopy(st.adj(members[0]), self, dst)
	}
	if len(members) > kwayLimit {
		var total int
		for _, v := range members {
			total += int(st.deg[v])
		}
		buf := mem.concatScratch(w, total)
		pos := 0
		for _, v := range members {
			pos += copy(buf[pos:], st.adj(v))
		}
		sorts.MergeBottomUp(buf, dst[:len(buf)], adjLess)
		return filterCopy(buf, self, dst)
	}
	// K-way merge with linear head scan (groups are small).
	lists := mem.kwayLists(w)
	for _, v := range members {
		if l := st.adj(v); len(l) > 0 {
			lists = append(lists, l)
		}
	}
	var out int32
	lastTo := int32(-1)
	for len(lists) > 0 {
		best := 0
		for i := 1; i < len(lists); i++ {
			if adjLess(lists[i][0], lists[best][0]) {
				best = i
			}
		}
		e := lists[best][0]
		lists[best] = lists[best][1:]
		if len(lists[best]) == 0 {
			lists[best] = lists[len(lists)-1]
			lists = lists[:len(lists)-1]
		}
		if e.To != self && e.To != lastTo {
			dst[out] = e
			out++
			lastTo = e.To
		}
	}
	return out
}

// filterCopy copies src into dst dropping self-loops and duplicate
// targets (src must be sorted by adjLess); returns the kept count.
//
//msf:noalloc
func filterCopy(src []graph.AdjEntry, self int32, dst []graph.AdjEntry) int32 {
	var out int32
	lastTo := int32(-1)
	for _, e := range src {
		if e.To == self || e.To == lastTo {
			continue
		}
		dst[out] = e
		out++
		lastTo = e.To
	}
	return out
}
