package boruvka

import (
	"pmsf/internal/cc"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// Workspace is the reusable round state shared by the team-based Borůvka
// loops: the persistent worker team, the team-based connect-components
// resolver and counting grouper, the chosen-neighbor and selected-edge
// arrays, the growing forest-edge list, and the per-worker counters of
// the harvest step. Everything is allocated once per run, sized for the
// first (largest) round, and reused until the forest is done — the
// steady-state rounds of Bor-EL, Bor-ALM and Bor-FAL perform zero heap
// allocations on top of it.
type Workspace struct {
	p    int
	team *par.Team
	res  *cc.Resolver
	grp  *sorts.Grouper

	parent []int32
	sel    []int32

	ids    []int32 // forest edge ids accumulated across rounds
	idsLen int

	wcount []int64 // per-worker picked counts / scatter offsets

	n                  int // harvest range, set per call
	harvestCountBody   func(int)
	harvestScatterBody func(int)
}

// newWorkspace builds a workspace for a run over n0 original vertices
// with p workers. Close releases the team.
func newWorkspace(p, n0 int) *Workspace {
	ws := &Workspace{
		p:      p,
		team:   par.NewTeam(p),
		parent: make([]int32, n0),
		sel:    make([]int32, n0),
		ids:    make([]int32, n0), // a forest has at most n0-1 edges
		wcount: make([]int64, p),
	}
	ws.res = cc.NewResolver(p, ws.team)
	ws.grp = sorts.NewGrouper(p, ws.team)
	ws.harvestCountBody = ws.harvestCountWork
	ws.harvestScatterBody = ws.harvestScatterWork
	return ws
}

// Close shuts the worker team down.
func (ws *Workspace) Close() { ws.team.Close() }

// forestIDs returns the accumulated forest edge ids.
func (ws *Workspace) forestIDs() []int32 { return ws.ids[:ws.idsLen] }

// harvest appends the edge selected by each supervertex in [0, n) that
// found an outgoing minimum edge, deduplicating mutual pairs exactly
// like the package-level harvest, but out of the reused ids buffer: a
// per-worker count, an exclusive scan, and a scatter of sel values.
// parent must be the raw chosen-neighbor array BEFORE resolve.
//
//msf:noalloc
func (ws *Workspace) harvest(n int) {
	ws.n = n
	ws.team.Run(ws.harvestCountBody)
	total := int64(ws.idsLen)
	// O(p) coordinator scan, serial by design (see par/scan.go).
	for w := 0; w < ws.p; w++ {
		v := ws.wcount[w]
		ws.wcount[w] = total
		total += v
	}
	ws.team.Run(ws.harvestScatterBody)
	ws.idsLen = int(total)
}

// picked reports whether supervertex v owns its selected edge this
// round: it chose a neighbor, and in the mutual-pair case the smaller
// endpoint owns the shared edge.
//
//msf:noalloc
func picked(parent []int32, v int) bool {
	pv := parent[v]
	if int(pv) == v {
		return false
	}
	return int(parent[pv]) != v || int(pv) >= v
}

//msf:noalloc
func (ws *Workspace) harvestCountWork(w int) {
	lo, hi := par.Block(ws.n, ws.p, w)
	parent := ws.parent
	var c int64
	for v := lo; v < hi; v++ {
		if picked(parent, v) {
			c++
		}
	}
	ws.wcount[w] = c
}

//msf:noalloc
func (ws *Workspace) harvestScatterWork(w int) {
	lo, hi := par.Block(ws.n, ws.p, w)
	parent, sel, ids := ws.parent, ws.sel, ws.ids
	pos := ws.wcount[w]
	for v := lo; v < hi; v++ {
		if picked(parent, v) {
			ids[pos] = sel[v]
			pos++
		}
	}
}

// labeled runs fn under the collector's pprof phase label when tracing
// is live, and calls it directly (no closure, no allocation) otherwise.
//
//msf:noalloc
func labeled(c *obs.Collector, algo, phase string, fn func()) {
	if c != nil {
		c.Labeled(algo, phase, fn)
		return
	}
	fn()
}
