package boruvka

import (
	"pmsf/internal/cc"
	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// FAL computes the minimum spanning forest with the Bor-FAL variant:
// parallel Borůvka over the flexible adjacency list. The underlying arc
// arrays are never moved: compact-graph shrinks to a small parallel group
// sort plus O(1) pointer appends per merged vertex and an O(n/p)-per-
// worker lookup-table update, while find-min takes over the filtering of
// self-loops and multi-edges through the lookup table. This trades a
// (slightly) costlier find-min for a dramatically cheaper compact-graph —
// the paper's key observation for sparse random graphs.
func FAL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	p := opt.workers()
	const name = "Bor-FAL"
	c, root := obsStart(opt, name, p)

	base := graph.BuildAdj(g)
	f := graph.NewFlexAdj(base)

	var ids []int32
	for {
		it := root.Child("iteration")
		it.SetInt("n", int64(f.N))

		// Step 1: find-min with on-the-fly filtering. Every arc in every
		// chain is visited; arcs whose endpoints now share a supervertex
		// are skipped via the lookup table.
		step := it.Child("find-min")
		n := f.N
		parent := make([]int32, n)
		sel := make([]int32, n)
		// Dynamic scheduling: chain lengths grow skewed as supervertices
		// merge, so static vertex ranges would leave workers idle behind
		// the owner of the giant chains.
		chainArcs := make([]int64, par.Clamp(p, n))
		var selected int64
		c.Labeled(name, "find-min", func() {
			par.ForDynamic(p, n, 256, func(w, lo, hi int) {
				var visited int64
				for s := lo; s < hi; s++ {
					bestW := 0.0
					bestID := int32(-1)
					bestTo := int32(s)
					f.Chain(int32(s), func(e graph.AdjEntry) {
						visited++
						t := f.Lookup[e.To]
						if int(t) == s {
							return // self-loop inside the supervertex
						}
						if bestID < 0 || e.W < bestW || (e.W == bestW && e.EID < bestID) {
							bestW, bestID, bestTo = e.W, e.EID, t
						}
					})
					if bestID < 0 {
						parent[s] = int32(s)
					} else {
						parent[s] = bestTo
						sel[s] = bestID
					}
				}
				chainArcs[w] += visited
			})
			selected = par.ReduceInt64(p, n, func(_, lo, hi int) int64 {
				var c int64
				for v := lo; v < hi; v++ {
					if int(parent[v]) != v {
						c++
					}
				}
				return c
			})
			if selected > 0 {
				ids = harvest(p, parent, sel, ids)
			}
		})
		var listSize int64
		for _, v := range chainArcs {
			listSize += v
		}
		it.SetInt("list_size", listSize)
		step.End()
		if selected == 0 {
			// All remaining arcs are intra-supervertex: the forest is done.
			it.End()
			break
		}

		// Step 2: connect-components.
		step = it.Child("connect-components")
		var labels []int32
		var k int
		c.Labeled(name, "connect-components", func() {
			labels, k = cc.Resolve(p, parent)
		})
		step.End()

		// Step 3: compact-graph — group supervertices by new label (the
		// "smaller parallel sort"), append member chains with pointer
		// operations, and update the original-vertex lookup table.
		step = it.Child("compact-graph")
		c.Labeled(name, "compact-graph", func() {
			order, gstarts := sorts.CountingGroup(p, labels, k)
			newHead := make([]int32, k)
			newTail := make([]int32, k)
			par.ForDynamic(p, k, 256, func(_, lo, hi int) {
				for gidx := lo; gidx < hi; gidx++ {
					members := order[gstarts[gidx]:gstarts[gidx+1]]
					head, tail := int32(-1), int32(-1)
					for _, s := range members {
						if f.Head[s] < 0 {
							continue
						}
						if head < 0 {
							head, tail = f.Head[s], f.Tail[s]
						} else {
							f.Blocks[tail].Next = f.Head[s]
							tail = f.Tail[s]
						}
					}
					newHead[gidx] = head
					newTail[gidx] = tail
				}
			})
			// O(n_original / p) lookup-table update.
			par.For(p, len(f.Lookup), func(_, lo, hi int) {
				for v := lo; v < hi; v++ {
					f.Lookup[v] = labels[f.Lookup[v]]
				}
			})
			f.Head, f.Tail, f.N = newHead, newTail, k
		})
		step.End()
		contracted(f.N)

		it.End()
	}
	root.End()
	return finish(g, ids, f.N), statsView(c, root, name, p, opt.Stats)
}
