package boruvka

import (
	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
)

// FAL computes the minimum spanning forest with the Bor-FAL variant:
// parallel Borůvka over the flexible adjacency list. The underlying arc
// arrays are never moved: compact-graph shrinks to a small parallel group
// sort plus O(1) pointer appends per merged vertex and an O(n/p)-per-
// worker lookup-table update, while find-min takes over the filtering of
// self-loops and multi-edges through the lookup table. This trades a
// (slightly) costlier find-min for a dramatically cheaper compact-graph —
// the paper's key observation for sparse random graphs. The loop runs on
// a persistent worker team out of reused buffers, so the steady-state
// round performs zero heap allocations.
func FAL(g *graph.EdgeList, opt Options) (*graph.Forest, *Stats) {
	r := newFALRun(g, opt)
	for r.round() {
	}
	r.root.End()
	f := finish(g, r.ws.forestIDs(), r.f.N)
	stats := statsView(r.c, r.root, r.name, r.p, opt.Stats)
	r.ws.Close()
	return f, stats
}

// falRun is the team-based Bor-FAL loop state: the head/tail ping-pong
// arrays, the grouping buffers and the per-worker counters are all sized
// once for the original vertex count and reused every round.
type falRun struct {
	name string
	p    int
	c    *obs.Collector
	root obs.Span
	ws   *Workspace
	f    *graph.FlexAdj

	order     []int32
	gstarts   []int64
	chainArcs []int64 // per-worker visited-arc counts
	selCounts []int64 // per-worker selected-vertex counts

	headSpare, tailSpare []int32
	newHead, newTail     []int32
	labels               []int32
	k                    int
	selected             int64
	listSize             int64

	findMinBody func(worker, lo, hi int)
	appendBody  func(worker, lo, hi int)
	lookupBody  func(int)
	findMinFn   func()
	connectFn   func()
	compactFn   func()
}

func newFALRun(g *graph.EdgeList, opt Options) *falRun {
	p := opt.workers()
	c, root := obsStart(opt, "Bor-FAL", p)
	r := &falRun{name: "Bor-FAL", p: p, c: c, root: root}
	r.ws = newWorkspace(p, g.N)
	r.findMinBody = r.findMinWork
	r.appendBody = r.appendWork
	r.lookupBody = r.lookupWork
	r.findMinFn = r.findMinPhase
	r.connectFn = r.connectPhase
	r.compactFn = r.compactPhase

	base := graph.BuildAdj(g)
	r.f = graph.NewFlexAdj(base)
	r.order = make([]int32, g.N)
	r.gstarts = make([]int64, g.N+1)
	r.chainArcs = make([]int64, p)
	r.selCounts = make([]int64, p)
	r.headSpare = make([]int32, g.N)
	r.tailSpare = make([]int32, g.N)
	return r
}

//msf:noalloc
func (r *falRun) round() bool {
	it := r.root.Child("iteration")
	it.SetInt("n", int64(r.f.N))

	// Step 1: find-min with on-the-fly filtering. Every arc in every
	// chain is visited; arcs whose endpoints now share a supervertex are
	// skipped via the lookup table.
	step := it.Child("find-min")
	labeled(r.c, r.name, "find-min", r.findMinFn)
	it.SetInt("list_size", r.listSize)
	step.End()
	if r.selected == 0 {
		// All remaining arcs are intra-supervertex: the forest is done.
		it.End()
		return false
	}

	// Step 2: connect-components.
	step = it.Child("connect-components")
	labeled(r.c, r.name, "connect-components", r.connectFn)
	step.End()

	// Step 3: compact-graph — group supervertices by new label (the
	// "smaller parallel sort"), append member chains with pointer
	// operations, and update the original-vertex lookup table.
	step = it.Child("compact-graph")
	labeled(r.c, r.name, "compact-graph", r.compactFn)
	step.End()
	contracted(r.f.N)

	it.End()
	return true
}

//msf:noalloc
func (r *falRun) findMinPhase() {
	for w := 0; w < r.p; w++ {
		r.chainArcs[w] = 0
		r.selCounts[w] = 0
	}
	// Dynamic scheduling: chain lengths grow skewed as supervertices
	// merge, so static vertex ranges would leave workers idle behind the
	// owner of the giant chains.
	r.ws.team.ForDynamic(r.f.N, 256, r.findMinBody)
	r.listSize, r.selected = 0, 0
	for w := 0; w < r.p; w++ {
		r.listSize += r.chainArcs[w]
		r.selected += r.selCounts[w]
	}
	if r.selected > 0 {
		r.ws.harvest(r.f.N)
	}
}

// findMinWork walks each supervertex's block chain directly (the
// callback-free form of FlexAdj.Chain) so the hot loop stays free of
// per-vertex closures.
//
//msf:noalloc
func (r *falRun) findMinWork(w, lo, hi int) {
	f := r.f
	arcs := f.Base.Arcs
	parent, sel := r.ws.parent, r.ws.sel
	var visited, selCnt int64
	for s := lo; s < hi; s++ {
		bestW := 0.0
		bestID := int32(-1)
		bestTo := int32(s)
		for b := f.Head[s]; b >= 0; b = f.Blocks[b].Next {
			blk := f.Blocks[b]
			for i := blk.Lo; i < blk.Hi; i++ {
				e := arcs[i]
				visited++
				t := f.Lookup[e.To]
				if int(t) == s {
					continue // self-loop inside the supervertex
				}
				if bestID < 0 || e.W < bestW || (e.W == bestW && e.EID < bestID) {
					bestW, bestID, bestTo = e.W, e.EID, t
				}
			}
		}
		if bestID < 0 {
			parent[s] = int32(s)
		} else {
			parent[s] = bestTo
			sel[s] = bestID
			selCnt++
		}
	}
	r.chainArcs[w] += visited
	r.selCounts[w] += selCnt
}

//msf:noalloc
func (r *falRun) connectPhase() {
	r.labels, r.k = r.ws.res.Resolve(r.ws.parent[:r.f.N])
}

//msf:noalloc
func (r *falRun) compactPhase() {
	k := r.k
	r.ws.grp.Group(r.labels, k, r.order[:r.f.N], r.gstarts[:k+1])
	r.newHead = r.headSpare[:k]
	r.newTail = r.tailSpare[:k]
	r.ws.team.ForDynamic(k, 256, r.appendBody)
	// O(n_original / p) lookup-table update.
	r.ws.team.Run(r.lookupBody)
	oldHead := r.f.Head[:cap(r.f.Head)]
	oldTail := r.f.Tail[:cap(r.f.Tail)]
	r.f.Head, r.f.Tail, r.f.N = r.newHead, r.newTail, k
	r.headSpare, r.tailSpare = oldHead, oldTail
	r.newHead, r.newTail = nil, nil
}

//msf:noalloc
func (r *falRun) appendWork(_, lo, hi int) {
	f := r.f
	for gidx := lo; gidx < hi; gidx++ {
		members := r.order[r.gstarts[gidx]:r.gstarts[gidx+1]]
		head, tail := int32(-1), int32(-1)
		for _, s := range members {
			if f.Head[s] < 0 {
				continue
			}
			if head < 0 {
				head, tail = f.Head[s], f.Tail[s]
			} else {
				f.Blocks[tail].Next = f.Head[s]
				tail = f.Tail[s]
			}
		}
		r.newHead[gidx] = head
		r.newTail[gidx] = tail
	}
}

//msf:noalloc
func (r *falRun) lookupWork(w int) {
	f := r.f
	lo, hi := par.Block(len(f.Lookup), r.p, w)
	labels := r.labels
	for v := lo; v < hi; v++ {
		f.Lookup[v] = labels[f.Lookup[v]]
	}
}
