package boruvka

import (
	"fmt"
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/verify"
)

type variant struct {
	name string
	run  func(*graph.EdgeList, Options) (*graph.Forest, *Stats)
}

func variants() []variant {
	return []variant{
		{"Bor-EL", EL},
		{"Bor-AL", AL},
		{"Bor-ALM", ALM},
		{"Bor-FAL", FAL},
	}
}

func testGraphs(tb testing.TB) map[string]*graph.EdgeList {
	tb.Helper()
	return map[string]*graph.EdgeList{
		"empty":        {N: 0},
		"single":       {N: 1},
		"two-isolated": {N: 2},
		"one-edge":     {N: 2, Edges: []graph.Edge{{U: 0, V: 1, W: 0.5}}},
		"triangle": {N: 3, Edges: []graph.Edge{
			{U: 0, V: 1, W: 1}, {U: 1, V: 2, W: 2}, {U: 0, V: 2, W: 3},
		}},
		"parallel-edges": {N: 2, Edges: []graph.Edge{
			{U: 0, V: 1, W: 3}, {U: 0, V: 1, W: 1}, {U: 1, V: 0, W: 2},
		}},
		"self-loops": {N: 3, Edges: []graph.Edge{
			{U: 0, V: 0, W: 0.1}, {U: 0, V: 1, W: 1}, {U: 2, V: 2, W: 0.2}, {U: 1, V: 2, W: 2},
		}},
		"random-small":  gen.Random(64, 128, 1),
		"random-mid":    gen.Random(1000, 5000, 2),
		"random-sparse": gen.Random(2000, 2200, 3),
		"disconnected":  gen.Random(500, 300, 4),
		"mesh":          gen.Mesh2D(24, 24, 5),
		"mesh2d60":      gen.Mesh2D60(24, 24, 6),
		"mesh3d40":      gen.Mesh3D40(9, 7),
		"geometric":     gen.Geometric(400, 6, 8),
		"str0":          gen.Str0(256, 9),
		"str1":          gen.Str1(300, 10),
		"str2":          gen.Str2(300, 11),
		"str3":          gen.Str3(300, 12),
	}
}

func TestVariantsProduceMSF(t *testing.T) {
	for _, v := range variants() {
		for name, g := range testGraphs(t) {
			for _, p := range []int{1, 2, 4, 7} {
				t.Run(fmt.Sprintf("%s/%s/p=%d", v.name, name, p), func(t *testing.T) {
					f, _ := v.run(g, Options{Workers: p, Seed: 42})
					if err := verify.Full(g, f); err != nil {
						t.Fatal(err)
					}
				})
			}
		}
	}
}
