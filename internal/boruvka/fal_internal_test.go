package boruvka

// White-box tests of Bor-FAL's lookup-table and chain mechanics across
// iterations.

import (
	"testing"

	"pmsf/internal/gen"
	"pmsf/internal/graph"
	"pmsf/internal/uf"
)

// After a full FAL run the lookup table must label original vertices by
// connected component: the composition of per-iteration relabelings
// equals the component partition.
func TestFALLookupComposition(t *testing.T) {
	g := gen.Random(800, 1200, 21) // sparse, several components
	base := graph.BuildAdj(g)
	f := graph.NewFlexAdj(base)
	// Replay the FAL main loop manually so we can inspect f afterwards.
	forest, _ := FAL(g, Options{})
	// Reference partition.
	u := uf.New(g.N)
	for _, e := range g.Edges {
		if e.U != e.V {
			u.Union(e.U, e.V)
		}
	}
	// The public FAL rebuilt its own FlexAdj; check the invariant on a
	// fresh run driven through the same code path by re-running and
	// validating against the forest's component count instead.
	if got := forest.Components; got != graph.ComponentCount(g) {
		t.Fatalf("components %d, want %d", got, graph.ComponentCount(g))
	}
	_ = f
	// Chain conservation on the initial structure: total chained arcs
	// equals the arc count of the base CSR.
	var total int64
	for s := int32(0); s < int32(f.N); s++ {
		total += f.ChainLen(s)
	}
	if total != int64(len(base.Arcs)) {
		t.Fatalf("chained arcs %d, want %d", total, len(base.Arcs))
	}
}

// Chains are conserved under arbitrary append sequences: no arc is ever
// lost or duplicated.
func TestFALChainConservation(t *testing.T) {
	g := gen.Random(300, 900, 22)
	base := graph.BuildAdj(g)
	f := graph.NewFlexAdj(base)
	// Append chains pairwise like one Borůvka round would.
	for s := int32(1); s < int32(f.N); s += 2 {
		f.AppendChain(s-1, s)
	}
	var total int64
	for s := int32(0); s < int32(f.N); s += 2 {
		total += f.ChainLen(s)
	}
	if total != int64(len(base.Arcs)) {
		t.Fatalf("after appends: %d arcs, want %d", total, len(base.Arcs))
	}
}

// EL invariant across iterations: after every compaction the working
// list remains sorted, deduplicated and self-loop free. (CompactWorkList
// is tested directly elsewhere; this drives it through a real run by
// checking the final forest against each engine.)
func TestELInvariantAllEngines(t *testing.T) {
	g := gen.Random(1200, 7000, 23)
	ref, _ := EL(g, Options{})
	for _, engine := range SortEngines() {
		for _, p := range []int{1, 3, 8} {
			f, _ := EL(g, Options{SortEngine: engine, Workers: p, Seed: 9})
			if f.Weight != ref.Weight || f.Size() != ref.Size() {
				t.Fatalf("engine %v p=%d diverged", engine, p)
			}
		}
	}
}
