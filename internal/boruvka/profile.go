package boruvka

import (
	"pmsf/internal/graph"
	"pmsf/internal/sorts"
)

// ListLengthHistogram profiles the per-vertex adjacency-list lengths that
// Bor-AL's level-2 sorts encounter in one iteration — the measurement
// behind the paper's engineering choice of insertion sort for short
// lists ("for one of our input random graphs with 1M vertices, 6M edges,
// 80% of all 311,535 lists to be sorted have between 1 to 100
// elements").
type ListLengthHistogram struct {
	Iteration int
	Lists     int64 // non-empty lists sorted this iteration
	UpTo      []Bucket
}

// Bucket counts lists with length in (Prev.Max, Max].
type Bucket struct {
	Max   int
	Count int64
}

// DefaultBucketMaxes are the histogram boundaries (the last bucket is
// unbounded and reported with Max = -1).
var DefaultBucketMaxes = []int{1, 10, 100, 1000, 10000}

// ProfileListLengths runs the Bor-AL iteration structure on g and
// records, for every iteration, the distribution of adjacency-list
// lengths going into the per-list sorts.
func ProfileListLengths(g *graph.EdgeList, opt Options) []ListLengthHistogram {
	r := newALRun(g, opt, false, "Bor-AL")
	defer r.ws.Close()

	var out []ListLengthHistogram
	iter := 0
	for {
		if r.totalArcs() == 0 {
			break
		}
		// Record this iteration's list-length histogram.
		h := ListLengthHistogram{Iteration: iter + 1}
		for _, max := range DefaultBucketMaxes {
			h.UpTo = append(h.UpTo, Bucket{Max: max})
		}
		h.UpTo = append(h.UpTo, Bucket{Max: -1})
		for v := 0; v < r.st.n; v++ {
			d := int(r.st.deg[v])
			if d == 0 {
				continue
			}
			h.Lists++
			placed := false
			for i, b := range h.UpTo {
				if b.Max >= 0 && d <= b.Max {
					h.UpTo[i].Count++
					placed = true
					break
				}
			}
			if !placed {
				h.UpTo[len(h.UpTo)-1].Count++
			}
		}
		out = append(out, h)

		// One Bor-AL iteration (find-min + CC + compact).
		r.round()
		iter++
	}
	r.root.End()
	return out
}

// ShortListFraction returns the fraction of sorted lists whose length is
// at most maxLen, aggregated over all iterations.
func ShortListFraction(hists []ListLengthHistogram, maxLen int) float64 {
	var short, total int64
	for _, h := range hists {
		total += h.Lists
		for _, b := range h.UpTo {
			if b.Max >= 0 && b.Max <= maxLen {
				short += b.Count
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(short) / float64(total)
}

// SortCutoffSuggestion returns the smallest default bucket boundary that
// covers at least the target fraction of lists, mirroring how the paper
// chose its insertion-sort threshold from profiling. It returns
// sorts.InsertionCutoff when the profile is empty.
func SortCutoffSuggestion(hists []ListLengthHistogram, target float64) int {
	var total int64
	for _, h := range hists {
		total += h.Lists
	}
	if total == 0 {
		return sorts.InsertionCutoff
	}
	for _, max := range DefaultBucketMaxes {
		var covered int64
		for _, h := range hists {
			for _, b := range h.UpTo {
				if b.Max >= 0 && b.Max <= max {
					covered += b.Count
				}
			}
		}
		if float64(covered)/float64(total) >= target {
			return max
		}
	}
	return DefaultBucketMaxes[len(DefaultBucketMaxes)-1]
}
