// Package boruvka implements the paper's four parallel Borůvka variants
// for shared memory (Section 2):
//
//   - EL  (Bor-EL):  edge-list representation, compact-graph by one global
//     parallel sample sort of the edge list.
//   - AL  (Bor-AL):  adjacency-array representation, compact-graph by a
//     two-level sort (parallel group sort of the vertices
//     plus concurrent sequential sorts of each adjacency
//     list: insertion sort for short lists, non-recursive
//     merge sort for long ones).
//   - ALM (Bor-ALM): the AL algorithm with all transient memory served
//     from per-worker arenas and reused iteration buffers
//     instead of fresh shared-heap allocations.
//   - FAL (Bor-FAL): the paper's flexible adjacency list, which turns
//     compact-graph into a small sort plus O(n) pointer
//     appends and moves the filtering work into find-min.
//
// Every variant runs the same three-step iteration — find-min,
// connect-components, compact-graph — and can record per-step wall time
// and per-iteration sizes, which is what regenerates Table 1 and Fig. 2.
package boruvka

import (
	"time"

	"pmsf/internal/graph"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// Options configures a parallel Borůvka run.
type Options struct {
	// Workers is the number of parallel workers p; 0 means GOMAXPROCS.
	Workers int
	// Stats enables per-iteration instrumentation.
	Stats bool
	// InsertionCutoff is the list length below which the per-list sorts
	// of Bor-AL use insertion sort; 0 means sorts.InsertionCutoff.
	InsertionCutoff int
	// Seed drives sample-sort splitter selection (Bor-EL) only; results
	// are identical for any seed.
	Seed uint64
	// SortEngine selects the parallel sort behind Bor-EL's compact-graph
	// step; the default is the paper's sample sort.
	SortEngine SortEngine
}

// SortEngine names a parallel sorting algorithm for the Bor-EL edge
// sort.
type SortEngine int

const (
	// SortSampleSort is the Helman-JáJá parallel sample sort (the
	// paper's choice).
	SortSampleSort SortEngine = iota
	// SortParallelMerge is pairwise parallel merge sort.
	SortParallelMerge
	// SortRadix is a sequential 10-pass LSD radix sort specialized to the
	// working-edge key (U, V, weight bits, id) — no comparisons at all.
	SortRadix
)

// String names the engine.
func (e SortEngine) String() string {
	switch e {
	case SortSampleSort:
		return "sample-sort"
	case SortParallelMerge:
		return "parallel-merge"
	case SortRadix:
		return "radix"
	}
	return "unknown"
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return o.Workers
}

func (o Options) cutoff() int {
	if o.InsertionCutoff <= 0 {
		return sorts.InsertionCutoff
	}
	return o.InsertionCutoff
}

// StepTimes records wall time per Borůvka step.
type StepTimes struct {
	FindMin           time.Duration
	ConnectComponents time.Duration
	CompactGraph      time.Duration
}

// Add accumulates other into s.
func (s *StepTimes) Add(other StepTimes) {
	s.FindMin += other.FindMin
	s.ConnectComponents += other.ConnectComponents
	s.CompactGraph += other.CompactGraph
}

// Total returns the summed step time.
func (s StepTimes) Total() time.Duration {
	return s.FindMin + s.ConnectComponents + s.CompactGraph
}

// IterStats describes one Borůvka iteration.
type IterStats struct {
	// N is the number of supervertices at the start of the iteration.
	N int
	// ListSize is the size of the working edge structure at the start of
	// the iteration: directed edge-list entries for Bor-EL (the "2m"
	// column of Table 1), total adjacency entries for Bor-AL/ALM, and
	// total chained arcs (including not-yet-filtered self-loops and
	// multi-edges) for Bor-FAL.
	ListSize int64
	Steps    StepTimes
}

// Stats is the instrumentation record of a run.
type Stats struct {
	Algorithm string
	Workers   int
	Iters     []IterStats
	Total     StepTimes
}

// stopwatch measures a step when enabled.
type stopwatch struct {
	enabled bool
	start   time.Time
}

func (s *stopwatch) begin() {
	if s.enabled {
		s.start = time.Now()
	}
}

func (s *stopwatch) end(d *time.Duration) {
	if s.enabled {
		*d += time.Since(s.start)
	}
}

// harvest appends to ids the edge selected by each supervertex that found
// an outgoing minimum edge, deduplicating the mutual-pair case (when u
// and v select the same edge, the smaller endpoint owns it). parent must
// be the raw chosen-neighbor array BEFORE connected components resolves
// it. It returns the extended slice.
func harvest(p int, parent, sel []int32, ids []int32) []int32 {
	picked := par.PackIndices(p, len(parent), func(v int) bool {
		pv := parent[v]
		if int(pv) == v {
			return false
		}
		// Mutual pair: both endpoints chose the same undirected edge; the
		// smaller id owns it.
		if int(parent[pv]) == v && int(pv) < v {
			return false
		}
		return true
	})
	for _, v := range picked {
		ids = append(ids, sel[v])
	}
	return ids
}

// finish builds the Forest result from the selected edge ids, recomputing
// the weight against the original graph, and filling in the component
// count.
func finish(g *graph.EdgeList, ids []int32, components int) *graph.Forest {
	f := &graph.Forest{EdgeIDs: ids, Components: components}
	for _, id := range ids {
		f.Weight += g.Edges[id].W
	}
	return f
}
