// Package boruvka implements the paper's four parallel Borůvka variants
// for shared memory (Section 2):
//
//   - EL  (Bor-EL):  edge-list representation, compact-graph by one global
//     parallel sample sort of the edge list.
//   - AL  (Bor-AL):  adjacency-array representation, compact-graph by a
//     two-level sort (parallel group sort of the vertices
//     plus concurrent sequential sorts of each adjacency
//     list: insertion sort for short lists, non-recursive
//     merge sort for long ones).
//   - ALM (Bor-ALM): the AL algorithm with all transient memory served
//     from per-worker arenas and reused iteration buffers
//     instead of fresh shared-heap allocations.
//   - FAL (Bor-FAL): the paper's flexible adjacency list, which turns
//     compact-graph into a small sort plus O(n) pointer
//     appends and moves the filtering work into find-min.
//
// Every variant runs the same three-step iteration — find-min,
// connect-components, compact-graph — and can record per-step wall time
// and per-iteration sizes, which is what regenerates Table 1 and Fig. 2.
package boruvka

import (
	"time"

	"pmsf/internal/graph"
	"pmsf/internal/obs"
	"pmsf/internal/par"
	"pmsf/internal/sorts"
)

// Options configures a parallel Borůvka run.
type Options struct {
	// Workers is the number of parallel workers p; 0 means GOMAXPROCS.
	Workers int
	// Stats enables per-iteration instrumentation.
	Stats bool
	// InsertionCutoff is the list length below which the per-list sorts
	// of Bor-AL use insertion sort; 0 means sorts.InsertionCutoff.
	InsertionCutoff int
	// Seed drives sample-sort splitter selection (Bor-EL) only; results
	// are identical for any seed.
	Seed uint64
	// SortEngine selects the compact-graph engine of Bor-EL; the default
	// is the packed-key parallel radix compactor (SortParallelRadix).
	// The comparator engines keep the paper's original formulation for
	// the ablation benchmarks.
	SortEngine SortEngine
	// Trace, when non-nil, receives hierarchical spans for every
	// iteration and step. The returned Stats derive from the same span
	// tree, so both views of one run agree exactly.
	Trace *obs.Collector
	// Parent, when live, nests the run's spans under an enclosing span
	// (e.g. the sampling filter's inner MSF phases); it implies the
	// parent's collector and overrides Trace.
	Parent obs.Span
}

// SortEngine names a compact-graph sorting engine for the Bor-EL edge
// sort.
type SortEngine int

const (
	// SortParallelRadix is the packed-key parallel radix compactor: the
	// (U, V) pair packed into one uint64, parallel per-worker histogram
	// counting-sort passes with the digit width chosen from the current
	// supervertex count, and a per-run (W, ID) min-reduction instead of
	// sorting the full key. The zero value, i.e. the default engine.
	SortParallelRadix SortEngine = iota
	// SortSampleSort is the Helman-JáJá parallel sample sort (the
	// paper's choice).
	SortSampleSort
	// SortParallelMerge is pairwise parallel merge sort.
	SortParallelMerge
	// SortRadix is a sequential 10-pass LSD radix sort specialized to the
	// working-edge key (U, V, weight bits, id) — no comparisons at all.
	SortRadix
)

// SortEngines lists every engine in a stable order (for benchmarks and
// flag help).
func SortEngines() []SortEngine {
	return []SortEngine{SortParallelRadix, SortSampleSort, SortParallelMerge, SortRadix}
}

// String names the engine.
func (e SortEngine) String() string {
	switch e {
	case SortParallelRadix:
		return "parallel-radix"
	case SortSampleSort:
		return "sample-sort"
	case SortParallelMerge:
		return "parallel-merge"
	case SortRadix:
		return "radix"
	}
	return "unknown"
}

// ParseSortEngine resolves an engine name as printed by String.
func ParseSortEngine(s string) (SortEngine, bool) {
	for _, e := range SortEngines() {
		if e.String() == s {
			return e, true
		}
	}
	return 0, false
}

func (o Options) workers() int {
	if o.Workers <= 0 {
		return par.DefaultWorkers()
	}
	return o.Workers
}

func (o Options) cutoff() int {
	if o.InsertionCutoff <= 0 {
		return sorts.InsertionCutoff
	}
	return o.InsertionCutoff
}

// StepTimes records wall time per Borůvka step.
type StepTimes struct {
	FindMin           time.Duration
	ConnectComponents time.Duration
	CompactGraph      time.Duration
}

// Add accumulates other into s.
func (s *StepTimes) Add(other StepTimes) {
	s.FindMin += other.FindMin
	s.ConnectComponents += other.ConnectComponents
	s.CompactGraph += other.CompactGraph
}

// Total returns the summed step time.
func (s StepTimes) Total() time.Duration {
	return s.FindMin + s.ConnectComponents + s.CompactGraph
}

// IterStats describes one Borůvka iteration.
type IterStats struct {
	// N is the number of supervertices at the start of the iteration.
	N int
	// ListSize is the size of the working edge structure at the start of
	// the iteration: directed edge-list entries for Bor-EL (the "2m"
	// column of Table 1), total adjacency entries for Bor-AL/ALM, and
	// total chained arcs (including not-yet-filtered self-loops and
	// multi-edges) for Bor-FAL.
	ListSize int64
	Steps    StepTimes
}

// Stats is the instrumentation record of a run.
type Stats struct {
	Algorithm string
	Workers   int
	Iters     []IterStats
	Total     StepTimes
}

// obsStart resolves the span sink of a run: an explicit Parent span
// wins, then opt.Trace; when neither is set but Stats were requested, a
// private collector backs the Stats view. The returned root span carries
// the algorithm name and worker count. Both returns are nil-safe no-ops
// when observability is fully disabled.
func obsStart(opt Options, name string, p int) (*obs.Collector, obs.Span) {
	c := opt.Trace
	if opt.Parent.Live() {
		c = opt.Parent.Collector()
	}
	if c == nil && opt.Stats {
		c = obs.NewCollector()
	}
	root := obs.StartUnder(c, opt.Parent, name, name)
	root.SetInt("workers", int64(p))
	return c, root
}

// statsView materializes the Stats of a run as a view over its span
// tree: one IterStats per "iteration" child of root, sizes from the span
// args, step times from the step child spans. When collect is false only
// the identity fields are filled, matching the pre-span contract.
func statsView(c *obs.Collector, root obs.Span, name string, p int, collect bool) *Stats {
	stats := &Stats{Algorithm: name, Workers: p}
	if !collect || c == nil {
		return stats
	}
	spans := c.Spans()
	for _, r := range spans {
		if r.Parent != root.ID() || r.Name != "iteration" {
			continue
		}
		var it IterStats
		if v, ok := r.Arg("n"); ok {
			it.N = int(v)
		}
		if v, ok := r.Arg("list_size"); ok {
			it.ListSize = v
		}
		for _, step := range obs.ChildrenOf(spans, r.ID) {
			switch step.Name {
			case "find-min":
				it.Steps.FindMin = step.Dur
			case "connect-components":
				it.Steps.ConnectComponents = step.Dur
			case "compact-graph":
				it.Steps.CompactGraph = step.Dur
			}
		}
		stats.Iters = append(stats.Iters, it)
		stats.Total.Add(it.Steps)
	}
	return stats
}

// StatsView materializes a Stats view over the span tree recorded by any
// engine that follows this package's span schema — "iteration" children
// of root carrying n/list_size args with find-min, connect-components and
// compact-graph step children. Exported for engines outside this package
// (internal/writemin) that reuse the Borůvka Stats shape so reporting and
// benching treat them uniformly.
func StatsView(c *obs.Collector, root obs.Span, name string, p int, collect bool) *Stats {
	return statsView(c, root, name, p, collect)
}

// retire reports working-list entries eliminated by a compaction to the
// process-wide metrics.
func retire(n int64) {
	if n > 0 && obs.MetricsOn() {
		obs.EdgesRetired.Add(n)
	}
}

// contracted reports the post-contraction supervertex count to the
// process-wide metrics.
func contracted(k int) {
	if obs.MetricsOn() {
		obs.Supervertices.Set(int64(k))
	}
}

// boolArg renders a bool as a 0/1 span attribute.
//
//msf:noalloc
func boolArg(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// harvest appends to ids the edge selected by each supervertex that found
// an outgoing minimum edge, deduplicating the mutual-pair case (when u
// and v select the same edge, the smaller endpoint owns it). parent must
// be the raw chosen-neighbor array BEFORE connected components resolves
// it. It returns the extended slice.
func harvest(p int, parent, sel []int32, ids []int32) []int32 {
	picked := par.PackIndices(p, len(parent), func(v int) bool {
		pv := parent[v]
		if int(pv) == v {
			return false
		}
		// Mutual pair: both endpoints chose the same undirected edge; the
		// smaller id owns it.
		if int(parent[pv]) == v && int(pv) < v {
			return false
		}
		return true
	})
	for _, v := range picked {
		ids = append(ids, sel[v])
	}
	return ids
}

// finish builds the Forest result from the selected edge ids, recomputing
// the weight against the original graph, and filling in the component
// count.
func finish(g *graph.EdgeList, ids []int32, components int) *graph.Forest {
	f := &graph.Forest{EdgeIDs: ids, Components: components}
	for _, id := range ids {
		f.Weight += g.Edges[id].W
	}
	return f
}
